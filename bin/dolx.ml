(* dolx — command-line front end.

   Subcommands:
     generate     emit a synthetic XMark-like document
     stats        shape statistics of an XML document
     label        compile a policy file against a document; print DOL stats
     query        evaluate a twig query as a subject (streamed output)
     query-batch  evaluate a batch of queries on a domain pool (--jobs)
     serve        drive the multi-tenant streaming query service
                  (--socket PATH exposes it over a Unix-socket wire server)
     connect      wire-protocol client for a serve --socket server
     view         export a subject's secured view of a document
     filter       stream a document through the one-pass secure filter
     save-dol     compile a policy and persist the DOL
     inspect-dol  print statistics of a persisted DOL
     compile-db   compile document + policy into a one-file database
     query-db     query a compiled database file
     stats-db     print statistics of a compiled database file

   query and query-db accept --metrics[=json]: the default metrics
   registry and span trace are reset before the engine run and printed
   after it (JSON as the final stdout line).

   Policy files use the Dolx_policy.Policy_file language; node anchors
   written as @<xpath> are resolved against the document. *)

module Tree = Dolx_xml.Tree
module Parser = Dolx_xml.Parser
module Serializer = Dolx_xml.Serializer
module Tree_stats = Dolx_xml.Tree_stats
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Policy_file = Dolx_policy.Policy_file
module Propagate = Dolx_policy.Propagate
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Store = Dolx_core.Secure_store
module Secure_view = Dolx_core.Secure_view
module Cam = Dolx_cam.Cam
module Engine = Dolx_nok.Engine
module Exec = Dolx_exec.Exec
module Serve = Dolx_serve.Serve
module Tag_index = Dolx_index.Tag_index
module Xmark = Dolx_workload.Xmark
module Query_mix = Dolx_workload.Query_mix
module Metrics = Dolx_obs.Metrics
module Trace = Dolx_obs.Trace
module Wire_server = Dolx_wire.Server
module Wire_client = Dolx_wire.Client

(* reference the module so its commit.* counters register even in
   binaries that only read them by name (stats-db, --metrics) *)
let _link_group_commit : Dolx_core.Group_commit.t -> int =
  Dolx_core.Group_commit.max_batch

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let load_doc path = Parser.parse (read_file path)

(* Resolve @<xpath> policy anchors by evaluating the path insecurely. *)
let make_resolver tree =
  let index = lazy (Tag_index.build tree) in
  let store =
    lazy (Store.create tree (Dol.of_bool_array (Array.make (Tree.size tree) true)))
  in
  fun key ->
    match Engine.query (Lazy.force store) (Lazy.force index) key Engine.Insecure with
    | { Engine.answers = []; _ } ->
        failwith (Printf.sprintf "policy anchor %S matches no node" key)
    | { Engine.answers; _ } -> answers

let load_policy tree path =
  Policy_file.load ~resolve:(make_resolver tree) (read_file path)

let compile tree path ~mode =
  let subjects, modes, rules = load_policy tree path in
  let mode_id =
    match Mode.find_opt modes mode with
    | Some m -> m
    | None -> failwith (Printf.sprintf "mode %S not declared in policy" mode)
  in
  let labeling = Propagate.compile tree ~subjects ~mode:mode_id rules in
  (subjects, modes, labeling)

let subject_id subjects name =
  match Subject.find_opt subjects name with
  | Some s -> s
  | None -> failwith (Printf.sprintf "subject %S not declared in policy" name)

(* --- arguments --- *)

let doc_arg =
  Arg.(required & opt (some file) None & info [ "d"; "doc" ] ~docv:"FILE" ~doc:"XML document.")

let policy_arg =
  Arg.(required & opt (some file) None & info [ "p"; "policy" ] ~docv:"FILE" ~doc:"Policy file.")

let mode_arg =
  Arg.(value & opt string "read" & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"Action mode.")

let subject_arg =
  Arg.(required & opt (some string) None & info [ "s"; "subject" ] ~docv:"NAME" ~doc:"Subject.")

(* --metrics[=json]: observe the engine run through the default registry
   and print it afterwards.  JSON is emitted as the final stdout line so
   scripts can [tail -n 1 | parse]. *)
let metrics_arg =
  let fmt = Arg.enum [ ("human", `Human); ("json", `Json) ] in
  Arg.(value
       & opt ~vopt:(Some `Human) (some fmt) None
       & info [ "metrics" ] ~docv:"FORMAT"
           ~doc:"Print metrics for the query run ($(b,human) or $(b,json)).")

(* Reset both the registry and the store's legacy counters right before
   the measured run, so the two views agree (see docs/ARCHITECTURE.md,
   "Observability"); wall-clock spans need a real clock. *)
let metrics_begin fmt store =
  match fmt with
  | None -> ()
  | Some _ ->
      Trace.set_clock Unix.gettimeofday;
      Trace.set_enabled true;
      Trace.reset ();
      Store.reset_stats store;
      Metrics.reset Metrics.default;
      (* reset zeroed the structural-tier gauges; re-publish them *)
      Store.refresh_gauges store

let metrics_end fmt =
  match fmt with
  | None -> ()
  | Some `Human ->
      Fmt.pr "-- metrics --@.%a@." Metrics.pp Metrics.default;
      Fmt.pr "-- trace --@.%a@." (fun ppf () -> Trace.pp ppf ()) ()
  | Some `Json -> print_endline (Metrics.to_json_string Metrics.default)

(* --no-run-index: evaluate with the per-subject access-run index
   disabled, answering every check from the physical pages — the
   baseline side of `bench runs`. *)
let no_run_index_arg =
  Arg.(value & flag
       & info [ "no-run-index" ]
           ~doc:"Disable the per-subject access-run index; answer access \
                 checks from the physical pages.")

(* --no-succinct / --no-path-summary: the ablation sides of
   `bench succinct` — navigate via the pointer tree, and plan without
   DataGuide candidate pruning. *)
let no_succinct_arg =
  Arg.(value & flag
       & info [ "no-succinct" ]
           ~doc:"Disable the succinct balanced-parentheses tree tier; \
                 navigate via the pointer-based tree.")

let no_summary_arg =
  Arg.(value & flag
       & info [ "no-path-summary" ]
           ~doc:"Disable DataGuide (path-summary) candidate pruning and \
                 the summary-path plan in the engine.")

(* --- generate --- *)

let generate nodes seed output =
  let tree = Xmark.generate_nodes ~seed nodes in
  let xml = Serializer.to_string ~indent:true tree in
  (match output with
  | Some path -> write_file path xml
  | None -> print_string xml);
  Printf.eprintf "generated %d nodes\n" (Tree.size tree)

let generate_cmd =
  let nodes =
    Arg.(value & opt int 10_000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Approximate node count.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic XMark-like document")
    Term.(const generate $ nodes $ seed $ output)

(* --- stats --- *)

let stats doc =
  let tree = load_doc doc in
  Fmt.pr "%a@." Tree_stats.pp (Tree_stats.compute tree)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Document shape statistics")
    Term.(const stats $ doc_arg)

(* --- label --- *)

let label doc policy mode compare_cam =
  let tree = load_doc doc in
  let subjects, _, labeling = compile tree policy ~mode in
  let dol = Dol.of_labeling labeling in
  Fmt.pr "%a@." Dol.pp dol;
  Printf.printf "codebook: %d entries, %d bytes; embedded codes: %d bytes; density %.4f\n"
    (Codebook.count (Dol.codebook dol))
    (Dol.codebook_bytes dol) (Dol.embedded_bytes dol)
    (Dol.transition_density dol);
  if compare_cam then begin
    let total = ref 0 in
    for s = 0 to Subject.count subjects - 1 do
      let bools = Dolx_policy.Labeling.to_bool_array labeling ~subject:s in
      total := !total + Cam.label_count (Cam.build tree bools)
    done;
    Printf.printf "per-subject CAMs: %d labels total across %d subjects\n" !total
      (Subject.count subjects)
  end

let label_cmd =
  let cam = Arg.(value & flag & info [ "cam" ] ~doc:"Also build per-subject CAMs.") in
  Cmd.v (Cmd.info "label" ~doc:"Compile a policy into a DOL and report its size")
    Term.(const label $ doc_arg $ policy_arg $ mode_arg $ cam)

(* --- query --- *)

let node_path tree v =
  let rec go v acc =
    if v = Tree.nil then acc
    else go (Tree.parent tree v) ("/" ^ Tree.tag_name tree v ^ acc)
  in
  go v ""

(* Stream answers to stdout as the engine produces them: a chunked pull
   from Engine.stream, flushed per chunk, so output starts before the
   result set is complete and partial output survives a mid-query
   exception (the Fun.protect finalizer closes the stream — flushing its
   partial statistics — and flushes stdout).  Returns the answer count. *)
let print_stream tree store index q sem =
  let st = Engine.stream store index (Dolx_nok.Xpath.parse q) sem in
  Fun.protect
    ~finally:(fun () ->
      Engine.stream_close st;
      flush stdout)
    (fun () ->
      let rec pump () =
        match Engine.stream_next st with
        | [] -> ()
        | chunk ->
            List.iter
              (fun v ->
                let txt = Tree.text tree v in
                Printf.printf "%s%s\n" (node_path tree v)
                  (if txt = "" then "" else ": " ^ txt))
              chunk;
            flush stdout;
            pump ()
      in
      pump ());
  Engine.stream_emitted st

let query doc policy mode subject path_semantics no_run_index no_succinct
    no_summary metrics q =
  let tree = load_doc doc in
  let subjects, _, labeling = compile tree policy ~mode in
  let s = subject_id subjects subject in
  let dol = Dol.of_labeling labeling in
  let store =
    Store.create ~run_index:(not no_run_index) ~succinct:(not no_succinct)
      ~path_summary:(not no_summary) tree dol
  in
  let index = Tag_index.build tree in
  let sem = if path_semantics then Engine.Secure_path s else Engine.Secure s in
  metrics_begin metrics store;
  let n = print_stream tree store index q sem in
  Printf.eprintf "%d answers\n" n;
  metrics_end metrics

let query_cmd =
  let path_sem =
    Arg.(value & flag & info [ "path-semantics" ]
           ~doc:"Use the Gabillon-Bruno semantics (connecting paths must be accessible).")
  in
  let q = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate a twig query as a subject")
    Term.(const query $ doc_arg $ policy_arg $ mode_arg $ subject_arg $ path_sem
          $ no_run_index_arg $ no_succinct_arg $ no_summary_arg $ metrics_arg $ q)

(* --- query-batch --- *)

(* Batch evaluation on the Dolx_exec domain pool: queries come either
   from a file of "SUBJECT QUERY" lines (SUBJECT = policy subject name,
   or "*" for an unsecured evaluation) or from a deterministic
   Query_mix stream over the policy's subject population. *)

let parse_query_file subjects path_semantics text =
  text
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | None ->
               failwith
                 (Printf.sprintf
                    "query file: expected \"SUBJECT QUERY\", got %S" line)
           | Some i ->
               let subj = String.sub line 0 i in
               let q =
                 String.trim (String.sub line (i + 1) (String.length line - i - 1))
               in
               let sem =
                 if subj = "*" then Engine.Insecure
                 else
                   let s = subject_id subjects subj in
                   if path_semantics then Engine.Secure_path s else Engine.Secure s
               in
               Some (q, sem))

let engine_semantics = function
  | Query_mix.Insecure -> Engine.Insecure
  | Query_mix.Secure s -> Engine.Secure s
  | Query_mix.Secure_path s -> Engine.Secure_path s

let semantics_name = function
  | Engine.Insecure -> "*"
  | Engine.Secure s -> Printf.sprintf "s%d" s
  | Engine.Secure_path s -> Printf.sprintf "s%d/path" s

let query_batch doc policy mode jobs path_semantics no_run_index no_succinct
    no_summary metrics queries_file mix mix_seed =
  let tree = load_doc doc in
  let subjects, _, labeling = compile tree policy ~mode in
  let dol = Dol.of_labeling labeling in
  let store =
    Store.create ~run_index:(not no_run_index) ~succinct:(not no_succinct)
      ~path_summary:(not no_summary) tree dol
  in
  let index = Tag_index.build tree in
  let batch =
    match (queries_file, mix) with
    | Some path, _ -> parse_query_file subjects path_semantics (read_file path)
    | None, Some n ->
        Query_mix.generate ~n ~subjects:(Subject.count subjects) ~seed:mix_seed ()
        |> List.map (fun e ->
               (e.Query_mix.xpath, engine_semantics e.Query_mix.semantics))
    | None, None -> failwith "query-batch: provide --queries FILE or --mix N"
  in
  (* with_executor joins the worker domains and releases the readers'
     epoch pins even when a query raises mid-batch *)
  Exec.with_executor ~jobs store index (fun exec ->
      metrics_begin metrics store;
      let t0 = Unix.gettimeofday () in
      let results = Exec.query_batch exec batch in
      let dt = Unix.gettimeofday () -. t0 in
      List.iter2
        (fun (q, sem) r ->
          Printf.printf "%s\t%s\t%d answers\n" (semantics_name sem) q
            (List.length r.Engine.answers))
        batch results;
      Printf.eprintf "%d queries on %d worker(s): %.3fs wall (%.1f queries/s)\n"
        (List.length batch) (Exec.jobs exec) dt
        (float_of_int (List.length batch) /. Float.max dt 1e-9));
  metrics_end metrics

let query_batch_cmd =
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let path_sem =
    Arg.(value & flag & info [ "path-semantics" ]
           ~doc:"Use the Gabillon-Bruno semantics for file-sourced queries.")
  in
  let queries_file =
    Arg.(value & opt (some file) None
         & info [ "queries" ] ~docv:"FILE"
             ~doc:"File of $(i,SUBJECT QUERY) lines ($(b,*) = insecure).")
  in
  let mix =
    Arg.(value & opt (some int) None
         & info [ "mix" ] ~docv:"N"
             ~doc:"Generate $(docv) queries from the XMark benchmark mix.")
  in
  let mix_seed =
    Arg.(value & opt int 7
         & info [ "seed"; "mix-seed" ] ~docv:"SEED"
             ~doc:"Mix PRNG seed (reproducible workloads).")
  in
  Cmd.v
    (Cmd.info "query-batch"
       ~doc:"Evaluate a batch of twig queries on a worker-domain pool")
    Term.(const query_batch $ doc_arg $ policy_arg $ mode_arg $ jobs $ path_sem
          $ no_run_index_arg $ no_succinct_arg $ no_summary_arg $ metrics_arg
          $ queries_file $ mix $ mix_seed)

(* --- serve: the multi-tenant streaming query service --- *)

(* An in-process serving session: N tenants, each its own store instance
   over the compiled labeling (private buffer pool, disk, run index),
   driven with seeded Query_mix waves until the duration elapses.
   Latency is measured client-side per ticket (submit to fully drained)
   and fed into an obs histogram from this thread — histograms are
   single-writer. *)
(* serve --socket PATH: expose the service over the wire protocol and
   block until SIGINT/SIGTERM or the --duration watchdog fires.  After
   the wire server stops, every disconnect must already have closed its
   tickets, so the pinned-reader count is polled back to zero before the
   workers shut down — a leak here is a hard failure. *)
let serve_socket srv ~tenants ~jobs ~duration path =
  let wire = Wire_server.start srv ~path ~name:"dolx" in
  let stop = ref false in
  let handler _ = stop := true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handler) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handler) in
  Printf.printf "serving on %s: %d tenant(s), %d worker(s)\n%!" path tenants
    jobs;
  let deadline =
    if duration <= 0.0 then infinity else Unix.gettimeofday () +. duration
  in
  while (not !stop) && Unix.gettimeofday () < deadline do
    try Unix.sleepf 0.2 with Unix.Unix_error (EINTR, _, _) -> ()
  done;
  Wire_server.stop wire;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  (* tickets are closed; their workers release reader pins at the next
     chunk boundary — give them a moment before declaring a leak *)
  let rec await_pins tries =
    let pins = Serve.pinned_readers srv in
    if pins = 0 || tries = 0 then pins
    else begin
      Unix.sleepf 0.05;
      await_pins (tries - 1)
    end
  in
  let pins = await_pins 100 in
  let s = Serve.stats srv in
  Printf.printf
    "clean shutdown: served %d, shed %d, %d session(s) accepted, %d \
     disconnect(s), pinned readers %d\n\
     %!"
    s.Serve.served s.Serve.shed
    (Wire_server.accepted wire)
    (Wire_server.disconnects wire)
    pins;
  if pins <> 0 then begin
    Printf.eprintf "FAIL: %d reader pin(s) leaked past shutdown\n" pins;
    exit 1
  end

let serve doc policy mode tenants jobs seed duration chunk max_queued socket =
  if tenants < 1 then failwith "serve: need at least one tenant";
  let tree = load_doc doc in
  let subjects, _, labeling = compile tree policy ~mode in
  let dol = Dol.of_labeling labeling in
  let index = Tag_index.build tree in
  let n_subjects = Subject.count subjects in
  let tenant_name i = Printf.sprintf "tenant%d" i in
  Serve.with_service ~jobs ~chunk ~max_queued (fun srv ->
      for i = 0 to tenants - 1 do
        let store = Store.create tree dol in
        Serve.add_tenant srv (tenant_name i) (Serve.Mem (store, index))
      done;
      match socket with
      | Some path -> serve_socket srv ~tenants ~jobs ~duration path
      | None ->
      let lat = Metrics.histogram "serve.latency_ms" in
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. duration in
      (* One driver domain per tenant, each draining its own tickets in
         submission order — per-tenant in-order draining matches the
         scheduler's FIFO dispatch, so bounded ticket buffers always
         make progress. *)
      let driver i () =
        let served = ref 0 and shed = ref 0 and wave = ref 0 in
        let lats = ref [] in
        while Unix.gettimeofday () < deadline do
          incr wave;
          let entries =
            Query_mix.generate ~n:8 ~subjects:n_subjects
              ~seed:(seed + (1000 * !wave) + i)
              ()
          in
          let tickets =
            List.filter_map
              (fun e ->
                let t1 = Unix.gettimeofday () in
                match
                  Serve.submit srv ~tenant:(tenant_name i) e.Query_mix.xpath
                    (engine_semantics e.Query_mix.semantics)
                with
                | tk -> Some (t1, tk)
                | exception Serve.Overloaded ->
                    incr shed;
                    None)
              entries
          in
          List.iter
            (fun (t1, tk) ->
              ignore (Serve.collect tk);
              lats := ((Unix.gettimeofday () -. t1) *. 1000.) :: !lats;
              incr served)
            tickets
        done;
        (!served, !shed, !lats)
      in
      let drivers = Array.init tenants (fun i -> Domain.spawn (driver i)) in
      let per_tenant = Array.map Domain.join drivers in
      let served = ref 0 and client_shed = ref 0 in
      Array.iter
        (fun (n, shed, lats) ->
          served := !served + n;
          client_shed := !client_shed + shed;
          List.iter (Metrics.observe lat) lats)
        per_tenant;
      let dt = Unix.gettimeofday () -. t0 in
      let s = Serve.stats srv in
      let sum = Metrics.summary lat in
      Printf.printf
        "served %d queries for %d tenant(s) on %d worker(s) in %.1fs: %.1f \
         qps\n"
        !served tenants jobs dt
        (float_of_int !served /. Float.max dt 1e-9);
      Printf.printf "latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n"
        sum.Metrics.p50 sum.Metrics.p95 sum.Metrics.p99 sum.Metrics.max;
      Printf.printf
        "shed %d, peak buffered %d answers (chunk %d), open shards %d\n"
        (s.Serve.shed + !client_shed)
        s.Serve.peak_buffered chunk s.Serve.open_shards)

let serve_cmd =
  let tenants =
    Arg.(value & opt int 2
         & info [ "tenants" ] ~docv:"N" ~doc:"Tenant shards to register.")
  in
  let jobs =
    Arg.(value & opt int 2
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains draining the queues.")
  in
  let seed =
    Arg.(value & opt int 7
         & info [ "seed" ] ~docv:"SEED" ~doc:"Query-mix PRNG seed (reproducible load).")
  in
  let duration =
    Arg.(value & opt float 10.0
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"How long to drive the service.")
  in
  let chunk =
    Arg.(value & opt int 256
         & info [ "chunk" ] ~docv:"N" ~doc:"Answers per stream chunk.")
  in
  let max_queued =
    Arg.(value & opt int 1024
         & info [ "max-queued" ] ~docv:"N"
             ~doc:"Admission bound; excess submissions are shed.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Serve over the wire protocol on a Unix socket at \
                   $(docv) instead of driving a built-in mix; runs until \
                   SIGINT/SIGTERM or $(b,--duration) seconds elapse \
                   (0 = no watchdog).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Drive the multi-tenant streaming query service with a seeded mix")
    Term.(const serve $ doc_arg $ policy_arg $ mode_arg $ tenants $ jobs $ seed
          $ duration $ chunk $ max_queued $ socket)

(* --- connect: wire-protocol client --- *)

(* Drives a serve --socket server from a separate OS process: positional
   queries, or seeded Query_mix waves (--mix N), optionally repeated
   until --duration elapses.  --abort-after K slams the connection shut
   after the Kth chunk, mid-stream — the server must treat it as a
   disconnect and release the query's reader pin. *)
let connect socket tenant subject path_semantics mix mix_subjects seed duration
    show_stats print_ids abort_after report queries =
  let cl = Wire_client.connect ~retry_for:10.0 ~client:"dolx-connect" socket in
  let aborted = ref false in
  Fun.protect
    ~finally:(fun () -> if not !aborted then Wire_client.close cl)
    (fun () ->
      let served = ref 0 and shed = ref 0 and answers = ref 0 in
      let chunks_pulled = ref 0 in
      let sem_of_subject () =
        match subject with
        | None -> Engine.Insecure
        | Some s ->
            if path_semantics then Engine.Secure_path s else Engine.Secure s
      in
      (* Runs one query; returns false once the connection is gone. *)
      let run_one (q, sem) =
        let t1 = Unix.gettimeofday () in
        match Wire_client.submit cl ~tenant q sem with
        | exception Serve.Overloaded ->
            incr shed;
            true
        | st ->
            let ids = ref [] in
            let rec drain () =
              match Wire_client.next_chunk st with
              | [] -> true
              | chunk ->
                  ids := List.rev_append chunk !ids;
                  incr chunks_pulled;
                  if abort_after > 0 && !chunks_pulled >= abort_after then begin
                    (* no goodbye: what a killed client looks like *)
                    Wire_client.abort cl;
                    aborted := true;
                    Printf.eprintf "aborted connection after %d chunk(s)\n%!"
                      !chunks_pulled;
                    false
                  end
                  else drain ()
            in
            let finished = drain () in
            if finished then begin
              incr served;
              answers := !answers + List.length !ids;
              if report then
                Printf.printf "DOLX-LAT %.3f\n"
                  ((Unix.gettimeofday () -. t1) *. 1000.);
              if print_ids then
                Printf.printf "%s\t%s\n" q
                  (String.concat " "
                     (List.rev_map string_of_int !ids |> List.rev))
            end;
            finished
      in
      let batch wave =
        match (queries, mix) with
        | q :: _, _ ->
            if wave = 0 then
              List.map (fun q -> (q, sem_of_subject ())) (q :: List.tl queries)
            else []
        | [], Some n ->
            Query_mix.generate ~n ~subjects:mix_subjects
              ~seed:(seed + (1000 * wave))
              ()
            |> List.map (fun e ->
                   (e.Query_mix.xpath, engine_semantics e.Query_mix.semantics))
        | [], None -> []
      in
      let deadline =
        if duration <= 0.0 then 0.0 else Unix.gettimeofday () +. duration
      in
      let rec waves wave =
        match batch wave with
        | [] -> ()
        | entries ->
            if List.for_all run_one entries
               && deadline > 0.0
               && Unix.gettimeofday () < deadline
            then waves (wave + 1)
      in
      waves 0;
      if show_stats && not !aborted then
        List.iter
          (fun (k, v) -> Printf.printf "%s %d\n" k v)
          (Wire_client.stats cl);
      if report then
        Printf.printf "DOLX-DONE served=%d shed=%d answers=%d\n%!" !served
          !shed !answers)

let connect_cmd =
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Server socket to dial.")
  in
  let tenant =
    Arg.(value & opt string "tenant0"
         & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant shard to query.")
  in
  let subject =
    Arg.(value & opt (some int) None
         & info [ "subject" ] ~docv:"BIT"
             ~doc:"Subject bit for positional queries (omit = insecure).")
  in
  let path_sem =
    Arg.(value & flag & info [ "path-semantics" ]
           ~doc:"Use the Gabillon-Bruno semantics for positional queries.")
  in
  let mix =
    Arg.(value & opt (some int) None
         & info [ "mix" ] ~docv:"N"
             ~doc:"Drive $(docv) queries per wave from the benchmark mix.")
  in
  let mix_subjects =
    Arg.(value & opt int 16
         & info [ "subjects" ] ~docv:"N"
             ~doc:"Subject population for $(b,--mix) semantics draws.")
  in
  let seed =
    Arg.(value & opt int 7
         & info [ "seed" ] ~docv:"SEED" ~doc:"Mix PRNG seed.")
  in
  let duration =
    Arg.(value & opt float 0.0
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:"Repeat $(b,--mix) waves until $(docv) elapse (0 = one \
                   wave).")
  in
  let show_stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print server statistics as $(i,key value) lines after \
                   the queries (or alone, with no queries).")
  in
  let print_ids =
    Arg.(value & flag
         & info [ "print-ids" ] ~doc:"Print each query's answer ids.")
  in
  let abort_after =
    Arg.(value & opt int 0
         & info [ "abort-after" ] ~docv:"K"
             ~doc:"Slam the connection shut after the $(docv)th chunk, \
                   mid-stream (disconnect-handling test aid).")
  in
  let report =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"Print DOLX-LAT per-query latency lines and a final \
                   DOLX-DONE summary.")
  in
  let queries = Arg.(value & pos_all string [] & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Query a serve --socket server over the wire protocol")
    Term.(const connect $ socket $ tenant $ subject $ path_sem $ mix
          $ mix_subjects $ seed $ duration $ show_stats $ print_ids
          $ abort_after $ report $ queries)

(* --- view --- *)

let view doc policy mode subject lift =
  let tree = load_doc doc in
  let subjects, _, labeling = compile tree policy ~mode in
  let s = subject_id subjects subject in
  let dol = Dol.of_labeling labeling in
  let semantics =
    if lift then Secure_view.Lift_children else Secure_view.Prune_subtree
  in
  match Secure_view.view ~semantics tree dol ~subject:s with
  | v -> print_endline (Serializer.to_string ~indent:true v)
  | exception Secure_view.Root_inaccessible ->
      prerr_endline "subject cannot see the document root";
      exit 1

let view_cmd =
  let lift =
    Arg.(value & flag & info [ "lift" ]
           ~doc:"Keep accessible descendants of hidden nodes (Cho-style view).")
  in
  Cmd.v (Cmd.info "view" ~doc:"Export a subject's secured view")
    Term.(const view $ doc_arg $ policy_arg $ mode_arg $ subject_arg $ lift)

(* --- filter: stream a document through the secure filter --- *)

let filter doc policy mode subject lift output =
  let tree = load_doc doc in
  let subjects, _, labeling = compile tree policy ~mode in
  let s = subject_id subjects subject in
  let dol = Dol.of_labeling labeling in
  let semantics =
    if lift then Dolx_core.Stream_filter.Lift_children
    else Dolx_core.Stream_filter.Prune_subtree
  in
  let out =
    Dolx_core.Stream_filter.filter_string ~semantics dol ~subject:s (read_file doc)
  in
  match output with
  | Some path -> write_file path out
  | None -> print_endline out

let filter_cmd =
  let lift =
    Arg.(value & flag & info [ "lift" ] ~doc:"Keep accessible descendants of hidden nodes.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "filter" ~doc:"Stream a document through the one-pass secure filter")
    Term.(const filter $ doc_arg $ policy_arg $ mode_arg $ subject_arg $ lift $ output)

(* --- save-dol / inspect-dol: persistence --- *)

let save_dol doc policy mode output =
  let tree = load_doc doc in
  let _, _, labeling = compile tree policy ~mode in
  let dol = Dol.of_labeling labeling in
  Dolx_core.Persist.save output dol;
  Printf.eprintf "wrote %s: %d transitions, %d codebook entries, %d bytes\n" output
    (Dol.transition_count dol)
    (Codebook.count (Dol.codebook dol))
    (Dolx_core.Persist.serialized_bytes dol)

let save_dol_cmd =
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "save-dol" ~doc:"Compile a policy and persist the DOL to a file")
    Term.(const save_dol $ doc_arg $ policy_arg $ mode_arg $ output)

let inspect_dol path =
  let dol = Dolx_core.Persist.load path in
  Fmt.pr "%a@." Dol.pp dol;
  Printf.printf "codebook: %d entries over %d subjects; density %.4f\n"
    (Codebook.count (Dol.codebook dol))
    (Codebook.width (Dol.codebook dol))
    (Dol.transition_density dol)

let inspect_dol_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "inspect-dol" ~doc:"Print statistics of a persisted DOL")
    Term.(const inspect_dol $ path)

(* --- explain --- *)

let explain doc q =
  let tree = load_doc doc in
  let dol = Dol.of_bool_array (Array.make (Tree.size tree) true) in
  let store = Store.create tree dol in
  let index = Tag_index.build tree in
  print_endline (Engine.explain store index (Dolx_nok.Xpath.parse q))

let explain_cmd =
  let q = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the NoK decomposition and join plan for a query")
    Term.(const explain $ doc_arg $ q)

(* --- compile-db / query-db: the single-file database format --- *)

let compile_db doc policy mode output =
  let tree = load_doc doc in
  let subjects, modes, labeling = compile tree policy ~mode in
  let dol = Dol.of_labeling labeling in
  let store = Store.create tree dol in
  Dolx_core.Db_file.save ~subjects ~modes output store;
  Printf.eprintf "wrote %s: %d nodes, %d pages, %d codebook entries\n" output
    (Tree.size tree)
    (Dolx_storage.Nok_layout.page_count (Store.layout store))
    (Codebook.count (Dol.codebook dol))

let compile_db_cmd =
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "compile-db"
       ~doc:"Compile document + policy into a single-file secured database")
    Term.(const compile_db $ doc_arg $ policy_arg $ mode_arg $ output)

let query_db db subject path_semantics no_run_index no_succinct no_summary
    metrics q =
  let store, registries = Dolx_core.Db_file.load db in
  if no_run_index then Store.set_run_index store false;
  if no_succinct then Store.set_succinct store false;
  if no_summary then Store.set_summary store false;
  let tree = Store.tree store in
  let index = Tag_index.build tree in
  (* subject by name when the file embeds its registry, else a bit index *)
  let bit =
    match int_of_string_opt subject with
    | Some i -> i
    | None -> (
        match registries with
        | Some (subjects, _) -> subject_id subjects subject
        | None -> failwith "database file has no subject registry; use a bit index")
  in
  let sem = if path_semantics then Engine.Secure_path bit else Engine.Secure bit in
  metrics_begin metrics store;
  let n = print_stream tree store index q sem in
  Printf.eprintf "%d answers\n" n;
  metrics_end metrics

let query_db_cmd =
  let db = Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE") in
  let subject_bit =
    Arg.(required & opt (some string) None
         & info [ "s"; "subject" ] ~docv:"NAME|BIT"
             ~doc:"Subject name (when the file embeds its registry) or bit index.")
  in
  let path_sem = Arg.(value & flag & info [ "path-semantics" ]) in
  let q = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "query-db" ~doc:"Evaluate a twig query against a compiled database file")
    Term.(const query_db $ db $ subject_bit $ path_sem $ no_run_index_arg
          $ no_succinct_arg $ no_summary_arg $ metrics_arg $ q)

(* --- stats-db: database-file statistics --- *)

let stats_db db =
  let store, registries = Dolx_core.Db_file.load db in
  let tree = Store.tree store in
  let dol = Store.dol store in
  let layout = Store.layout store in
  let file_bytes = (Unix.stat db).Unix.st_size in
  Printf.printf "file: %s (%d bytes)\n" db file_bytes;
  Printf.printf "nodes: %d\n" (Tree.size tree);
  Printf.printf "pages: %d x %d bytes\n"
    (Dolx_storage.Nok_layout.page_count layout)
    (Dolx_storage.Disk.page_size (Store.disk store));
  Printf.printf "codebook: %d entries over %d subjects (%d bytes)\n"
    (Codebook.count (Dol.codebook dol))
    (Codebook.width (Dol.codebook dol))
    (Dol.codebook_bytes dol);
  Printf.printf "transitions: %d (density %.4f); embedded codes: %d bytes\n"
    (Dol.transition_count dol)
    (Dol.transition_density dol)
    (Dol.embedded_bytes dol);
  let succ = Store.succinct store in
  let module Succinct = Dolx_index.Succinct in
  let module Path_summary = Dolx_index.Path_summary in
  Printf.printf "succinct tier: %d bits (%.2f bits/node)\n"
    (Succinct.size_bits succ) (Succinct.bits_per_node succ);
  let ps = Store.path_summary store in
  let st = Tree_stats.compute tree in
  Printf.printf
    "path summary: %d classes (%d leaf paths), %d bytes; document: %d \
     distinct paths, %d leaf paths\n"
    (Path_summary.node_count ps)
    (Path_summary.leaf_path_count ps)
    (Path_summary.bytes ps) st.Tree_stats.distinct_paths
    st.Tree_stats.distinct_leaf_paths;
  (match registries with
  | Some (subjects, modes) ->
      let names n get count =
        String.concat ", " (List.init (count n) (fun i -> get n i))
      in
      Printf.printf "subjects: %s\n" (names subjects Subject.name Subject.count);
      Printf.printf "modes: %s\n" (names modes Mode.name Mode.count)
  | None -> print_endline "no embedded subject/mode registry");
  (match Store.quarantined store with
  | [] -> ()
  | qs ->
      Printf.printf "quarantined ranges (fail-secure): %s\n"
        (String.concat ", "
           (List.map (fun (lo, hi) -> Printf.sprintf "[%d,%d]" lo hi) qs)));
  (* run index: materialize every subject once so the report shows the
     full per-subject picture (bounded by the index's LRU capacity) *)
  let ri = Store.run_index store in
  let module Runs = Dolx_core.Access_runs in
  let n_subjects = Codebook.width (Dol.codebook dol) in
  Printf.printf "run index: capacity %d subject(s)\n" (Runs.capacity ri);
  for s = 0 to n_subjects - 1 do
    let r = Runs.runs ri ~subject:s in
    Printf.printf
      "  subject %d: %d run(s), %d node(s) accessible (%.1f%%), %d bytes\n" s
      (Runs.run_count r) (Runs.covered r)
      (100. *. Runs.accessible_fraction r)
      (Runs.bytes r)
  done;
  Printf.printf "  materialized: %d subject(s), %d bytes total\n"
    (Runs.materialized ri) (Runs.total_bytes ri);
  Printf.printf "  counters: builds=%d hits=%d evictions=%d\n"
    (Metrics.counter_value "runs.builds")
    (Metrics.counter_value "runs.hits")
    (Metrics.counter_value "runs.evictions");
  (* MVCC snapshot state: the epoch clock, pinned readers, and page
     versions retained for them; plus the group-commit counters *)
  let disk = Store.disk store in
  let ep = Dolx_storage.Disk.epoch disk in
  Printf.printf "mvcc: epoch %d, %d pinned reader(s), %d retained page version(s)\n"
    (Dolx_storage.Epoch.current ep)
    (Dolx_storage.Epoch.pin_count ep)
    (Dolx_storage.Disk.live_versions disk);
  Printf.printf "  counters: epoch.advances=%d versions_saved=%d versions_retired=%d\n"
    (Metrics.counter_value "epoch.advances")
    (Metrics.counter_value "disk.versions_saved")
    (Metrics.counter_value "disk.versions_retired");
  Printf.printf "group commit: batches=%d records=%d flushes=%d\n"
    (Metrics.counter_value "commit.batches")
    (Metrics.counter_value "commit.records")
    (Metrics.counter_value "commit.flushes");
  (* per-plan-strategy breakdown: which candidate access paths the
     engine chose this process (nonzero after --metrics query runs) *)
  Printf.printf
    "plans: index_join=%d subtree_scan=%d summary_prune=%d summary_path=%d\n"
    (Metrics.counter_value "engine.plan_index_join")
    (Metrics.counter_value "engine.plan_subtree_scan")
    (Metrics.counter_value "engine.plan_summary_prune")
    (Metrics.counter_value "engine.plan_summary_path");
  Printf.printf "  pruned: run_index=%d summary=%d\n"
    (Metrics.counter_value "engine.candidates_pruned")
    (Metrics.counter_value "engine.summary_pruned")

let stats_db_cmd =
  let db = Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "stats-db" ~doc:"Print statistics of a compiled database file")
    Term.(const stats_db $ db)

let main_cmd =
  Cmd.group
    (Cmd.info "dolx" ~version:"1.0.0"
       ~doc:"Compact access-control labeling for secure XML query evaluation")
    [
      generate_cmd; stats_cmd; label_cmd; query_cmd; query_batch_cmd; serve_cmd;
      connect_cmd;
      view_cmd;
      filter_cmd;
      save_dol_cmd; inspect_dol_cmd; compile_db_cmd; query_db_cmd;
      stats_db_cmd; explain_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
