#!/usr/bin/env bash
# Wire-protocol end-to-end smoke: a dolx serve --socket server driven by
# two OS-process mix clients for N seconds, plus one client that slams
# its connection mid-stream.  Asserts:
#   - both well-behaved clients finish and report DOLX-DONE with work done;
#   - the server's stats report pinned_readers 0 after the abort
#     (disconnect-driven pin release observable from outside the process);
#   - SIGTERM produces a clean shutdown (exit 0 and the shutdown line,
#     which itself re-checks for leaked pins) and removes the socket.
#
# Usage: ci/wire_smoke.sh [SECONDS]   (default 15)
set -euo pipefail

SECS="${1:-15}"

if command -v opam >/dev/null 2>&1; then
  DUNE=(opam exec -- dune)
else
  DUNE=(dune)
fi

# Build once, then invoke the binary directly: concurrent `dune exec`
# calls would serialize on the build lock under a running server.
"${DUNE[@]}" build bin/dolx.exe
DOLX="$(pwd)/_build/default/bin/dolx.exe"

tmp="$(mktemp -d)"
SRV=
cleanup() {
  [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

"$DOLX" generate -n 3000 --seed 11 -o "$tmp/doc.xml"
printf 'mode read\nuser alice\nuser bob\ngrant alice read @/site\ngrant bob read @/site\n' \
  > "$tmp/policy.txt"

"$DOLX" serve -d "$tmp/doc.xml" -p "$tmp/policy.txt" --tenants 2 --jobs 2 \
  --socket "$tmp/dolx.sock" --duration 300 > "$tmp/server.log" 2>&1 &
SRV=$!

"$DOLX" connect --socket "$tmp/dolx.sock" --tenant tenant0 \
  --mix 8 --subjects 2 --seed 1 --duration "$SECS" --report > "$tmp/c1.log" &
C1=$!
"$DOLX" connect --socket "$tmp/dolx.sock" --tenant tenant1 \
  --mix 8 --subjects 2 --seed 2 --duration "$SECS" --report > "$tmp/c2.log" &
C2=$!

# mid-run: a client that vanishes mid-stream with no goodbye
sleep 1
"$DOLX" connect --socket "$tmp/dolx.sock" --tenant tenant0 '//item' --abort-after 1

wait "$C1"
wait "$C2"
grep -q '^DOLX-DONE served=' "$tmp/c1.log"
grep -q '^DOLX-DONE served=' "$tmp/c2.log"
echo "client 1: $(grep '^DOLX-DONE' "$tmp/c1.log")"
echo "client 2: $(grep '^DOLX-DONE' "$tmp/c2.log")"

"$DOLX" connect --socket "$tmp/dolx.sock" --stats | tee "$tmp/stats.txt"
grep -q '^pinned_readers 0$' "$tmp/stats.txt" \
  || { echo "FAIL: reader pins leaked after mid-stream abort" >&2; exit 1; }
awk '$1 == "served" && $2 > 0 { ok = 1 } END { exit !ok }' "$tmp/stats.txt" \
  || { echo "FAIL: server served nothing" >&2; exit 1; }

kill -TERM "$SRV"
wait "$SRV"
SRV=
cat "$tmp/server.log"
grep -q 'clean shutdown' "$tmp/server.log" \
  || { echo "FAIL: no clean shutdown line" >&2; exit 1; }
[ ! -e "$tmp/dolx.sock" ] \
  || { echo "FAIL: socket not removed on shutdown" >&2; exit 1; }
echo "wire smoke OK"
