#!/usr/bin/env python3
"""Shape and gate checks for the bench harness's BENCH_*.json artifacts.

Usage:
    python3 ci/check_bench.py BENCH_parallel.json [BENCH_runs.json ...]
    python3 ci/check_bench.py           # checks every BENCH_*.json in cwd
    python3 ci/check_bench.py --metrics /tmp/metrics.json

Each document carries a "bench" discriminator; the matching validator
checks both shape (fields present, numeric where expected) and the CI
gate the bench is supposed to enforce (determinism, no regression, zero
mismatches).  Exits non-zero on the first failing file.
"""

import glob
import json
import os
import statistics
import sys


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def require(cond, msg):
    if not cond:
        raise AssertionError(msg)


def check_parallel(doc):
    require(doc["deterministic"] is True, "parallel run diverged from sequential")
    points = {p["jobs"]: p for p in doc["points"]}
    require(points, "no sweep points")
    for p in points.values():
        for key in ("wall_s", "sim_io_s", "modeled_s", "wall_qps", "modeled_qps"):
            require(is_num(p[key]), f"jobs={p['jobs']}: bad {key}")
    jobs = sorted(points)
    if len(jobs) > 1:
        lo, hi = jobs[0], jobs[-1]
        require(
            points[hi]["modeled_qps"] >= points[lo]["modeled_qps"],
            f"jobs={hi} modeled throughput regressed: "
            f"{points[hi]['modeled_qps']:.1f} < {points[lo]['modeled_qps']:.1f} q/s",
        )
    return {j: round(points[j]["modeled_qps"], 1) for j in jobs}


def check_runs(doc):
    require(doc["identical"] is True, "answers diverged with the run index on")
    require(doc["batch_identical"] is True, "4-domain batch diverged from baseline")
    require(doc["checks_elided"] > 0, "run index elided no page touches")
    points = doc["points"]
    require(points, "no measurement points")
    for p in points:
        for key in ("wall_off_s", "wall_on_s", "modeled_off_s", "modeled_on_s", "speedup"):
            require(is_num(p[key]), f"bad {key} in {p}")
        require(p["identical"] is True, f"point diverged: {p}")
    dense = [p["speedup"] for p in points if p["density"] == "dense"]
    require(dense, "no dense-policy points")
    med = statistics.median(dense)
    require(med >= 1.0, f"dense-policy median regressed vs runs-off: {med:.2f}x")
    return {
        "points": len(points),
        "elided": doc["checks_elided"],
        "dense_median": round(med, 2),
    }


def check_succinct(doc):
    require(doc["identical"] is True,
            "answers diverged with the succinct tier / path summary on")
    require(doc["batch_identical"] is True, "4-domain batch diverged from baseline")
    require(is_num(doc["bits_per_node"]) and doc["bits_per_node"] <= 4.0,
            f"succinct structure over budget: {doc['bits_per_node']} bits/node")
    require(doc["dense_summary_pruned"] > 0,
            "summary pruning elided no classes on the dense policy")
    points = doc["points"]
    require(points, "no measurement points")
    for p in points:
        for key in ("wall_off_s", "wall_on_s", "modeled_off_s", "modeled_on_s", "speedup"):
            require(is_num(p[key]), f"bad {key} in {p}")
        require(p["identical"] is True, f"point diverged: {p}")
    med = statistics.median(p["speedup"] for p in points)
    require(med >= 1.0, f"Table-1 median regressed vs tiers-off: {med:.2f}x")
    return {
        "points": len(points),
        "bits_per_node": round(doc["bits_per_node"], 2),
        "classes_pruned": doc["dense_summary_pruned"],
        "median": round(med, 2),
    }


def check_obs(doc):
    require(is_num(doc["nodes"]) and doc["nodes"] > 0, "bad node count")
    require(doc["queries"], "no per-query points")
    for q in doc["queries"]:
        for key in ("answers", "wall_ms", "page_touches", "access_checks"):
            require(is_num(q[key]), f"{q.get('id')}: bad {key}")
    require(is_num(doc["overhead"]["overhead_pct"]), "bad overhead_pct")
    return {"queries": len(doc["queries"]),
            "overhead_pct": round(doc["overhead"]["overhead_pct"], 2)}


def check_fuzz(doc):
    require(doc["mismatches"] == 0,
            f"differential fuzzing found {doc['mismatches']} mismatches: "
            f"{doc.get('failures')}")
    require(is_num(doc["cases"]) and doc["cases"] > 0, "no cases ran")
    require(is_num(doc["cases_per_s"]), "bad cases_per_s")
    lattice = doc["lattice"]
    require(isinstance(lattice, dict) and lattice, "no lattice coverage recorded")
    require(sum(lattice.values()) == doc["cases"], "lattice counts do not sum to cases")
    return {"cases": doc["cases"], "configs": len(lattice),
            "cases_per_s": round(doc["cases_per_s"], 1)}


def check_mvcc(doc):
    r = doc["readers"]
    require(r["answers_identical"] is True,
            "pinned readers observed in-flight updates (snapshot leak)")
    for key in ("idle_qps", "contended_qps", "ratio"):
        require(is_num(r[key]), f"readers: bad {key}")
    require(r["updates_during_run"] > 0, "writer applied no updates during the run")
    require(r["ratio"] >= 0.8,
            f"contended readers at {100 * r['ratio']:.1f}% of idle throughput "
            "(gate: 80%)")
    g = doc["group_commit"]
    require(g["images_identical"] is True,
            "group-commit image diverged from per-record flushing")
    for key in ("modeled_per_record_s", "modeled_batched_s", "speedup"):
        require(is_num(g[key]), f"group_commit: bad {key}")
    require(g["flushes_batched"] < g["flushes_per_record"],
            "batching did not reduce flushes")
    require(g["speedup"] >= 2.0,
            f"group commit speedup {g['speedup']:.2f}x (gate: 2x)")
    return {
        "reader_ratio": round(r["ratio"], 3),
        "updates": r["updates_during_run"],
        "commit_speedup": round(g["speedup"], 2),
        "flushes": f"{g['flushes_per_record']}->{g['flushes_batched']}",
    }


def check_serve(doc):
    require(doc["identical"] is True,
            "streamed answers diverged from materialized Engine.run")
    require(doc["tenants"] >= 4, "serve ran with fewer than 4 tenants")
    require(doc["total_subjects"] >= 1000,
            "serve mix covered fewer than 1000 subjects")
    require(doc["served"] > 0, "serve completed no queries")
    require(is_num(doc["qps"]) and doc["qps"] > 0, "bad qps")
    lat = doc["latency_ms"]
    for key in ("p50", "p95", "p99", "max"):
        require(is_num(lat[key]), f"latency_ms: bad {key}")
    require(lat["count"] > 0, "no latency observations")
    require(is_num(doc["shed"]), "shed count missing")
    require(doc["peak_ok"] is True,
            f"buffered answers {doc['peak_buffered']} exceeded the "
            f"chunk bound {doc['peak_bound']}")
    require(doc["max_answers"] > doc["peak_bound"],
            "largest result within the buffer bound — the memory bound "
            "was never exercised (grow DOLX_BENCH_SERVE_NODES)")
    require(is_num(doc["qps_ratio"]), "bad qps_ratio")
    require(doc["qps_ratio"] >= 0.25,
            f"streaming service at {100 * doc['qps_ratio']:.1f}% of the "
            "sequential materialized drain (gate: 25%)")
    return {
        "qps": round(doc["qps"], 1),
        "qps_ratio": round(doc["qps_ratio"], 3),
        "p99_ms": round(lat["p99"], 3),
        "served": doc["served"],
        "shed": doc["shed"],
        "peak": f"{doc['peak_buffered']}<={doc['peak_bound']}",
    }


def check_wire(doc):
    require(doc["identical"] is True,
            "socket answers diverged from materialized Engine.query")
    require(doc["served"] > 0, "no queries served over the socket")
    require(is_num(doc["qps"]) and doc["qps"] > 0, "bad qps")
    require(doc["clients"] >= 2, "wire bench ran with fewer than 2 clients")
    lat = doc["latency_ms"]
    require(lat["count"] > 0, "no latency observations")
    for key in ("p50", "p95", "p99", "max"):
        require(is_num(lat[key]), f"latency_ms: bad {key}")
    require(lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"],
            f"latency percentiles out of order: p50={lat['p50']} "
            f"p95={lat['p95']} p99={lat['p99']} max={lat['max']}")
    require(is_num(doc["shed"]), "shed count missing")
    require(doc["leaked_pins"] == 0,
            f"{doc['leaked_pins']} reader pin(s) leaked after client "
            "disconnects")
    require(doc["unclean_exits"] == 0,
            f"{doc['unclean_exits']} client process(es) exited unclean")
    return {
        "qps": round(doc["qps"], 1),
        "p99_ms": round(lat["p99"], 3),
        "served": doc["served"],
        "clients": f"{doc['clients']} ({doc['client_mode']})",
        "leaked_pins": doc["leaked_pins"],
    }


CHECKS = {
    "parallel": check_parallel,
    "runs": check_runs,
    "succinct": check_succinct,
    "obs": check_obs,
    "fuzz": check_fuzz,
    "mvcc": check_mvcc,
    "serve": check_serve,
    "wire": check_wire,
}


def check_metrics(path):
    doc = json.load(open(path))
    counters = doc["counters"]
    for key in ("pool.touches", "disk.reads", "store.access_checks", "engine.queries"):
        require(key in counters, f"missing counter {key}")
        require(isinstance(counters[key], int), f"{key} not an int")
    require(counters["engine.queries"] == 1, "expected exactly one query")
    require(counters["pool.touches"] > 0, "no page touches recorded")
    return {k: counters[k] for k in ("pool.touches", "disk.reads", "engine.queries")}


def main(argv):
    if argv and argv[0] == "--metrics":
        require(len(argv) == 2, "--metrics takes exactly one file")
        print(f"{argv[1]}: metrics JSON OK: {check_metrics(argv[1])}")
        return 0
    paths = argv or sorted(glob.glob("BENCH_*.json"))
    require(paths, "no BENCH_*.json files found")
    # Explicitly named artifacts must exist: a bench that crashed before
    # writing its JSON must fail the gate loudly, not be skipped.
    missing = [p for p in paths if not os.path.exists(p)]
    require(not missing,
            "expected bench artifact(s) missing: " + ", ".join(missing)
            + " (did the bench step run and write its JSON?)")
    for path in paths:
        doc = json.load(open(path))
        kind = doc.get("bench")
        require(kind in CHECKS, f"{path}: unknown bench kind {kind!r}")
        summary = CHECKS[kind](doc)
        print(f"{path}: {kind} bench OK: {summary}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except (AssertionError, KeyError, OSError, json.JSONDecodeError) as e:
        print(f"check_bench: FAIL: {e}", file=sys.stderr)
        sys.exit(1)
