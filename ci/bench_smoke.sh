#!/usr/bin/env bash
# CI bench smoke: run named bench experiments at CI scale and gate their
# BENCH_<name>.json artifacts with ci/check_bench.py.
#
# Usage: ci/bench_smoke.sh NAME [NAME...]
#
# One place owns the per-bench CI-scale environment, so adding a bench
# to the gate is one case line here plus its name in the workflow loop.
set -euo pipefail

if command -v opam >/dev/null 2>&1; then
  DUNE=(opam exec -- dune)
else
  DUNE=(dune)
fi

run_one() {
  local name="$1"
  local envs=()
  case "$name" in
    parallel) envs=(DOLX_BENCH_PARALLEL_JOBS=1,2) ;;
    runs)     envs=(DOLX_BENCH_RUNS_NODES=6000 DOLX_BENCH_RUNS_REPS=5) ;;
    succinct) envs=(DOLX_BENCH_SUCCINCT_NODES=6000 DOLX_BENCH_SUCCINCT_REPS=5) ;;
    fuzz)     envs=(DOLX_BENCH_FUZZ_CASES=300) ;;
    mvcc)     envs=() ;;
    serve)    envs=(DOLX_BENCH_SERVE_NODES=9000 DOLX_BENCH_SERVE_SUBJECTS=400
                    DOLX_BENCH_SERVE_SECS=4) ;;
    wire)     envs=(DOLX_BENCH_WIRE_NODES=6000 DOLX_BENCH_WIRE_SUBJECTS=200
                    DOLX_BENCH_WIRE_SECS=4) ;;
    *)
      echo "bench_smoke: unknown bench '$name'" >&2
      exit 2
      ;;
  esac
  echo "::group::bench $name ${envs[*]:-}"
  env "${envs[@]}" "${DUNE[@]}" exec bench/main.exe -- "$name"
  python3 ci/check_bench.py "BENCH_${name}.json"
  echo "::endgroup::"
}

if [ "$#" -eq 0 ]; then
  echo "usage: ci/bench_smoke.sh NAME [NAME...]" >&2
  exit 2
fi

for name in "$@"; do
  run_one "$name"
done
