(** Shared plumbing for the experiment harness. *)

let scale =
  match Sys.getenv_opt "DOLX_BENCH_SCALE" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

(** Wall-clock the thunk; returns (result, best seconds over [reps]). *)
let time ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let header title =
  Printf.printf "\n== %s ==\n%!" title

(** Print an aligned table: first row is the column names. *)
let table rows =
  match rows with
  | [] -> ()
  | first :: _ ->
      let cols = List.length first in
      let widths = Array.make cols 0 in
      List.iter
        (fun row ->
          List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
        rows;
      List.iteri
        (fun ri row ->
          List.iteri
            (fun i cell ->
              Printf.printf "%s%s" cell (String.make (widths.(i) - String.length cell + 2) ' '))
            row;
          print_newline ();
          if ri = 0 then begin
            List.iteri (fun i _ -> Printf.printf "%s  " (String.make widths.(i) '-')) row;
            print_newline ()
          end)
        rows;
      flush stdout

let fmt_f = Printf.sprintf "%.3f"

let fmt_f2 = Printf.sprintf "%.2f"

let fmt_i = string_of_int

let fmt_bytes b =
  if b >= 1 lsl 20 then Printf.sprintf "%.2fMB" (float_of_int b /. 1048576.0)
  else if b >= 1024 then Printf.sprintf "%.1fKB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%dB" b
