(** Figure 4 — single-subject compression: CAM labels vs DOL transition
    nodes.

    4(a): synthetic access controls on an XMark document, accessibility
    ratio 10–90%, propagation ratios 10/30/50%.  The paper's metric is
    the ratio (#CAM nodes) / (#DOL transition nodes): values < 1 favour
    CAM on node count.

    4(b): the LiveLink(-simulated) dataset, one average single user per
    action mode. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Cam = Dolx_cam.Cam
module Prng = Dolx_util.Prng
module Xmark = Dolx_workload.Xmark
module Synth_acl = Dolx_workload.Synth_acl
module Livelink = Dolx_workload.Livelink
module Labeling = Dolx_policy.Labeling
open Bench_common

let run_a () =
  header "Figure 4(a): CAM labels / DOL transition nodes (synthetic, XMark)";
  let n_nodes = 50_000 * scale in
  let tree = Xmark.generate_nodes ~seed:41 n_nodes in
  Printf.printf "XMark instance: %d nodes\n" (Tree.size tree);
  let accessibilities = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  let propagations = [ 0.1; 0.3; 0.5 ] in
  let rows =
    ("acc_ratio"
     :: List.concat_map
          (fun p ->
            let pc = int_of_float (p *. 100.0) in
            [ Printf.sprintf "cam(p=%d%%)" pc; Printf.sprintf "dol(p=%d%%)" pc;
              Printf.sprintf "ratio(p=%d%%)" pc ])
          propagations)
    :: List.map
         (fun a ->
           Printf.sprintf "%.0f%%" (a *. 100.0)
           :: List.concat_map
                (fun p ->
                  let params =
                    { Synth_acl.propagation_ratio = p; accessibility_ratio = a;
                      sibling_copy_p = 0.5 }
                  in
                  let bools = Synth_acl.generate_bool tree ~params (Prng.create 17) in
                  let cam = Cam.label_count (Cam.build tree bools) in
                  let dol = Dol.transition_count (Dol.of_bool_array bools) in
                  [ fmt_i cam; fmt_i dol; fmt_f2 (float_of_int cam /. float_of_int dol) ])
                propagations)
         accessibilities
  in
  table rows

let run_b () =
  header "Figure 4(b): CAM vs DOL labels per average single user, LiveLink (simulated), 10 modes";
  let ll =
    Livelink.generate
      ~config:
        { Livelink.default_config with seed = 42; target_nodes = 20_000 * scale;
          n_departments = 12; users_per_department = 20; n_modes = 10 }
      ()
  in
  Printf.printf "LiveLink sim: %d nodes, %d subjects, %d modes\n"
    (Tree.size ll.Livelink.tree)
    (Dolx_policy.Subject.count ll.Livelink.subjects)
    (Array.length ll.Livelink.labelings);
  let rng = Prng.create 4242 in
  let sample_users = 12 in
  let rows =
    [ "mode"; "avg CAM labels"; "avg DOL transitions"; "cam/dol" ]
    :: List.init (Array.length ll.Livelink.labelings) (fun m ->
           let lab = ll.Livelink.labelings.(m) in
           let users = Array.copy ll.Livelink.users in
           Prng.shuffle rng users;
           let take = min sample_users (Array.length users) in
           let cams = ref 0 and dols = ref 0 in
           for i = 0 to take - 1 do
             let bools = Labeling.to_bool_array lab ~subject:users.(i) in
             cams := !cams + Cam.label_count (Cam.build ll.Livelink.tree bools);
             dols := !dols + Dol.transition_count (Dol.of_bool_array bools)
           done;
           let avg x = float_of_int x /. float_of_int take in
           [
             Dolx_policy.Mode.name ll.Livelink.modes m;
             fmt_f2 (avg !cams);
             fmt_f2 (avg !dols);
             fmt_f2 (float_of_int !cams /. float_of_int (max 1 !dols));
           ])
  in
  table rows

let run () =
  run_a ();
  run_b ()
