(** Figures 5 and 6 — multi-subject growth.

    Fig. 5: codebook entries as a function of the number of subjects,
    for the LiveLink and Unix-file-system datasets ("we selected a number
    of subjects randomly and computed DOL codebooks for the selected
    subjects only").

    Fig. 6: DOL transition nodes as a function of the number of subjects.

    The paper's finding: both grow much slower than the uncorrelated
    worst case (exponential codebook, every-node-a-transition), because
    real subjects' rights are strongly correlated. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Prng = Dolx_util.Prng
module Labeling = Dolx_policy.Labeling
module Subject = Dolx_policy.Subject
module Livelink = Dolx_workload.Livelink
module Unixfs = Dolx_workload.Unixfs
open Bench_common

let subset_sizes total =
  List.filter (fun k -> k <= total) [ 1; 2; 5; 10; 25; 50; 100; 200; 400; 800; 1600 ]
  @ [ total ]
  |> List.sort_uniq compare

let measure name tree labeling all_subjects =
  ignore tree;
  let rng = Prng.create 56 in
  let total = Array.length all_subjects in
  let rows =
    [ "subjects"; "codebook entries"; "transition nodes"; "density"; "codebook bytes" ]
    :: List.map
         (fun k ->
           let subjects = Array.copy all_subjects in
           Prng.shuffle rng subjects;
           let chosen = Array.sub subjects 0 k in
           let projected = Labeling.project labeling chosen in
           let dol = Dol.of_labeling projected in
           [
             fmt_i k;
             fmt_i (Codebook.count (Dol.codebook dol));
             fmt_i (Dol.transition_count dol);
             Printf.sprintf "%.4f" (Dol.transition_density dol);
             fmt_bytes (Dol.codebook_bytes dol);
           ])
         (subset_sizes total)
  in
  header (Printf.sprintf "Figures 5/6: codebook entries & transition nodes vs #subjects — %s" name);
  table rows

let run () =
  let ll =
    Livelink.generate
      ~config:
        { Livelink.default_config with seed = 51; target_nodes = 30_000 * scale;
          n_departments = 20; users_per_department = 40; n_modes = 2 }
      ()
  in
  Printf.printf "\nLiveLink sim: %d nodes, %d subjects\n"
    (Tree.size ll.Livelink.tree)
    (Subject.count ll.Livelink.subjects);
  measure "LiveLink (simulated)" ll.Livelink.tree ll.Livelink.labelings.(0)
    (Livelink.all_subjects ll);
  let fs =
    Unixfs.generate
      ~config:{ Unixfs.seed = 52; target_nodes = 30_000 * scale; n_users = 182; n_groups = 65 }
      ()
  in
  Printf.printf "\nUnix FS sim: %d nodes, %d subjects (182 users + 65 groups)\n"
    (Tree.size fs.Unixfs.tree)
    (Subject.count fs.Unixfs.subjects);
  measure "Unix file system (simulated)" fs.Unixfs.tree fs.Unixfs.read_labeling
    (Unixfs.all_subjects fs)
