(** §5.1 storage-cost comparison: one multi-subject DOL vs one CAM per
    subject, for all subjects of a system under one action mode.

    The paper's headline: "for all 8639 subjects … DOL needs 18800
    transition nodes while CAM needs 6 × 10^7 labels, a difference of
    three orders of magnitude", and in bytes a ~4MB codebook + trivial
    embedded codes vs ~46.6MB of per-user CAMs. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Cam = Dolx_cam.Cam
module Labeling = Dolx_policy.Labeling
module Subject = Dolx_policy.Subject
module Livelink = Dolx_workload.Livelink
open Bench_common

let run () =
  header "Storage cost: multi-subject DOL vs per-subject CAMs (LiveLink sim, mode 0)";
  let ll =
    Livelink.generate
      ~config:
        { Livelink.default_config with seed = 61; target_nodes = 20_000 * scale;
          n_departments = 15; users_per_department = 30; n_modes = 1 }
      ()
  in
  let tree = ll.Livelink.tree in
  let lab = ll.Livelink.labelings.(0) in
  let subjects = Livelink.all_subjects ll in
  let n_subjects = Array.length subjects in
  Printf.printf "%d nodes, %d subjects\n" (Tree.size tree) n_subjects;
  (* multi-subject DOL *)
  let dol = Dol.of_labeling lab in
  (* per-subject CAMs and single-subject DOLs *)
  let cam_labels = ref 0 in
  let single_dol_transitions = ref 0 in
  Array.iter
    (fun s ->
      let bools = Labeling.to_bool_array lab ~subject:s in
      cam_labels := !cam_labels + Cam.label_count (Cam.build tree bools);
      single_dol_transitions :=
        !single_dol_transitions + Dol.transition_count (Dol.of_bool_array bools))
    subjects;
  let cam_bytes_paper = !cam_labels * 2 (* 2 bits acc + 1 byte ptr, paper's generous accounting *) in
  let cam_bytes_real = !cam_labels * 13 in
  let matrix_bytes = Tree.size tree * n_subjects / 8 in
  let rows =
    [
      [ "representation"; "label/transition count"; "bytes (paper acct)"; "bytes (realistic)" ];
      [
        "explicit matrix (subjects x nodes)";
        fmt_i (Tree.size tree);
        fmt_bytes matrix_bytes;
        fmt_bytes matrix_bytes;
      ];
      [
        "multi-subject DOL";
        fmt_i (Dol.transition_count dol);
        fmt_bytes (Dol.storage_bytes dol);
        fmt_bytes (Dol.storage_bytes dol);
      ];
      [
        Printf.sprintf "%d per-subject CAMs" n_subjects;
        fmt_i !cam_labels;
        fmt_bytes cam_bytes_paper;
        fmt_bytes cam_bytes_real;
      ];
      [
        Printf.sprintf "%d per-subject DOLs" n_subjects;
        fmt_i !single_dol_transitions;
        "-";
        "-";
      ];
    ]
  in
  table rows;
  Printf.printf
    "DOL: %d codebook entries (%s) + %d embedded transitions (%s); label-count advantage over per-subject CAMs: %.1fx\n"
    (Codebook.count (Dol.codebook dol))
    (fmt_bytes (Dol.codebook_bytes dol))
    (Dol.transition_count dol)
    (fmt_bytes (Dol.embedded_bytes dol))
    (float_of_int !cam_labels /. float_of_int (Dol.transition_count dol))
