bench/robustness.ml: Array Bench_common Dolx_core Dolx_index Dolx_nok Dolx_storage Dolx_util Dolx_workload Dolx_xml List Printf Unix
