bench/fig4.ml: Array Bench_common Dolx_cam Dolx_core Dolx_policy Dolx_util Dolx_workload Dolx_xml List Printf
