bench/micro.ml: Analyze Array Bechamel Bench_common Benchmark Dolx_cam Dolx_core Dolx_util Dolx_workload Dolx_xml Hashtbl Instance List Measure Printf Staged Test Time Toolkit
