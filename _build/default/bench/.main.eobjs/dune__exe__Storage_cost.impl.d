bench/storage_cost.ml: Array Bench_common Dolx_cam Dolx_core Dolx_policy Dolx_workload Dolx_xml Printf
