bench/updates_bench.ml: Array Bench_common Dolx_core Dolx_storage Dolx_util Dolx_workload Dolx_xml Fun List Printf
