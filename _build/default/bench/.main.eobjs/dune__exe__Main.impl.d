bench/main.ml: Ablation Array Bench_common Dolx_workload Fig4 Fig5_6 Fig7 List Micro Printf Robustness Storage_cost String Sys Updates_bench
