bench/bench_common.ml: Array List Option Printf String Sys Unix
