bench/main.mli:
