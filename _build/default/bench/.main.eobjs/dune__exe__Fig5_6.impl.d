bench/fig5_6.ml: Array Bench_common Dolx_core Dolx_policy Dolx_util Dolx_workload Dolx_xml List Printf
