(** §3.4 ablation — update costs and Proposition 1 in practice.

    Measures (a) page I/O of single-node accessibility updates ("a page
    read followed by a page write"), (b) subtree updates vs the naive
    per-node loop (the N/B claim), and (c) the empirical distribution of
    transition-count deltas, which Proposition 1 bounds by +2. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Store = Dolx_core.Secure_store
module Update = Dolx_core.Update
module Disk = Dolx_storage.Disk
module Prng = Dolx_util.Prng
module Xmark = Dolx_workload.Xmark
module Synth_acl = Dolx_workload.Synth_acl
open Bench_common

let build () =
  let tree = Xmark.generate_nodes ~seed:81 (30_000 * scale) in
  let bools =
    Synth_acl.generate_bool tree ~params:Synth_acl.default (Prng.create 82)
  in
  let dol = Dol.of_bool_array bools in
  let store = Store.create ~page_size:4096 ~pool_capacity:64 ~fill:0.85 tree dol in
  (tree, store)

let run () =
  header "Update costs (§3.4) and Proposition 1";
  let tree, store = build () in
  let n = Tree.size tree in
  Printf.printf "document: %d nodes, %d pages\n" n
    (Dolx_storage.Nok_layout.page_count (Store.layout store));
  let rng = Prng.create 83 in
  (* (a) single-node updates *)
  let n_ops = 500 in
  let total_reads = ref 0 and total_writes = ref 0 in
  let max_delta = ref min_int in
  let deltas = Array.make 5 0 in
  let _, secs =
    time ~reps:1 (fun () ->
        for _ = 1 to n_ops do
          let v = Prng.int rng n in
          let grant = Prng.bool rng ~p:0.5 in
          let before = Dol.transition_count (Store.dol store) in
          Disk.reset_stats (Store.disk store);
          ignore (Update.set_node_accessibility store ~subject:0 ~grant v);
          let ds = Disk.stats (Store.disk store) in
          total_reads := !total_reads + ds.Disk.reads;
          total_writes := !total_writes + ds.Disk.writes;
          let delta = Dol.transition_count (Store.dol store) - before in
          if delta > !max_delta then max_delta := delta;
          let bucket = max 0 (min 4 (delta + 2)) in
          deltas.(bucket) <- deltas.(bucket) + 1
        done)
  in
  Printf.printf
    "\nsingle-node updates: %d ops in %.1f ms; avg %.2f page reads, %.2f page writes per op\n"
    n_ops (secs *. 1000.0)
    (float_of_int !total_reads /. float_of_int n_ops)
    (float_of_int !total_writes /. float_of_int n_ops);
  Printf.printf "transition-count delta histogram (Proposition 1 bound: +2): ";
  Array.iteri (fun i c -> Printf.printf "[%+d]=%d " (i - 2) c) deltas;
  Printf.printf "max observed delta: %+d\n" !max_delta;
  assert (!max_delta <= 2);
  (* (b) subtree update vs per-node loop *)
  let subtree_roots =
    List.filter
      (fun v -> Tree.subtree_size tree v >= 500 && Tree.subtree_size tree v <= 5000)
      (List.init n Fun.id)
  in
  (match subtree_roots with
  | [] -> ()
  | v :: _ ->
      let size = Tree.subtree_size tree v in
      Disk.reset_stats (Store.disk store);
      let _, bulk_s =
        time ~reps:1 (fun () ->
            Update.set_subtree_accessibility store ~subject:0 ~grant:true v)
      in
      let bulk = Disk.stats (Store.disk store) in
      let bulk_writes = bulk.Disk.writes in
      (* naive: one update per node, after resetting the grant *)
      Update.set_subtree_accessibility store ~subject:0 ~grant:false v;
      Disk.reset_stats (Store.disk store);
      let _, naive_s =
        time ~reps:1 (fun () ->
            for u = v to Tree.subtree_end tree v do
              ignore (Update.set_node_accessibility store ~subject:0 ~grant:true u)
            done)
      in
      let naive = Disk.stats (Store.disk store) in
      header "Subtree accessibility update: bulk (N/B pages) vs per-node loop";
      table
        [
          [ "method"; "subtree nodes"; "page writes"; "time ms" ];
          [ "bulk subtree op"; fmt_i size; fmt_i bulk_writes; fmt_f (bulk_s *. 1000.0) ];
          [ "per-node loop"; fmt_i size; fmt_i naive.Disk.writes; fmt_f (naive_s *. 1000.0) ];
        ]);
  (* (c) structural updates: logical insert/delete obey Proposition 1 *)
  let dol = Store.dol store in
  let sub_bools = Array.init 64 (fun i -> i mod 3 = 0) in
  let sub = Dol.of_bool_array sub_bools in
  let trials = 200 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let at = 1 + Prng.int rng (Dol.n_nodes dol - 1) in
    let t0 = Dol.transition_count dol and ts = Dol.transition_count sub in
    let merged = Update.dol_insert dol ~at sub in
    if Dol.transition_count merged <= t0 + ts + 2 then incr ok
  done;
  Printf.printf "\nstructural inserts: %d/%d within the Proposition 1 bound\n" !ok trials
