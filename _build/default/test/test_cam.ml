(** Tests for the CAM baseline: correctness of lookup against the input
    accessibility vector, optimality sanity bounds, and the default-deny
    asymmetry the paper observes in Fig. 4. *)

module Tree = Dolx_xml.Tree
module Cam = Dolx_cam.Cam
module Dol = Dolx_core.Dol
module Prng = Dolx_util.Prng

let check = Alcotest.check

let verify _tree acc cam =
  Array.iteri
    (fun v expected ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d" v)
        expected (Cam.accessible cam v))
    acc

let test_all_inaccessible_zero_labels () =
  let tree = Fixtures.figure2_tree () in
  let acc = Array.make (Tree.size tree) false in
  let cam = Cam.build tree acc in
  check Alcotest.int "no labels needed under default deny" 0 (Cam.label_count cam);
  verify tree acc cam

let test_all_accessible_one_label () =
  let tree = Fixtures.figure2_tree () in
  let acc = Array.make (Tree.size tree) true in
  let cam = Cam.build tree acc in
  check Alcotest.int "one self+desc label at the root" 1 (Cam.label_count cam);
  verify tree acc cam

let test_single_subtree () =
  let tree = Fixtures.figure2_tree () in
  let acc = Array.make (Tree.size tree) false in
  for v = 4 to 11 do
    acc.(v) <- true
  done;
  let cam = Cam.build tree acc in
  check Alcotest.int "one label covers subtree e" 1 (Cam.label_count cam);
  verify tree acc cam

let test_subtree_with_hole () =
  let tree = Fixtures.figure2_tree () in
  let acc = Array.make (Tree.size tree) false in
  for v = 4 to 11 do
    acc.(v) <- true
  done;
  acc.(7) <- false (* h inaccessible, its children accessible *);
  let cam = Cam.build tree acc in
  (* needs the subtree label plus a self-override at h *)
  check Alcotest.int "two labels" 2 (Cam.label_count cam);
  verify tree acc cam

let test_figure1_example () =
  let tree = Fixtures.figure2_tree () in
  let acc = [| false; true; true; true; false; false; false; true; true; true; true; true |] in
  let cam = Cam.build tree acc in
  verify tree acc cam;
  (* b, c, d accessible (3 self labels or sibling coverage) + h subtree *)
  Alcotest.(check bool) "at most 4 labels" true (Cam.label_count cam <= 4)

let naive_mso_count tree acc =
  (* labels where accessibility differs from parent's, under a default-
     deny virtual parent of the root: an upper bound CAM must beat *)
  let count = ref 0 in
  Tree.iter
    (fun v ->
      let inherited = if v = Tree.root then false else acc.(Tree.parent tree v) in
      if acc.(v) <> inherited then incr count)
    tree;
  !count

let prop_cam_correct_and_no_worse_than_mso =
  Fixtures.qtest ~count:150 "CAM lookup correct; size <= naive MSO labeling"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 1 150) (int_range 1 9))
    (fun (seed, n, p10) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let acc = Fixtures.random_bools rng n (float_of_int p10 /. 10.0) in
      let cam = Cam.build tree acc in
      let ok = ref true in
      Array.iteri (fun v e -> if Cam.accessible cam v <> e then ok := false) acc;
      !ok && Cam.label_count cam <= naive_mso_count tree acc)

let test_fig4_direction () =
  (* Fig. 4(a)'s qualitative content: in node counts a single-subject CAM
     is smaller than the DOL transition list (ratios < 1 favour CAM), and
     DOL's transition count is symmetric around 50% accessibility.  Use
     the paper's synthetic generator (propagated seeds, not iid labels). *)
  let tree = Dolx_workload.Xmark.generate_nodes ~seed:3 4000 in
  let measure acc_ratio =
    let params =
      { Dolx_workload.Synth_acl.propagation_ratio = 0.1;
        accessibility_ratio = acc_ratio; sibling_copy_p = 0.5 }
    in
    let bools = Dolx_workload.Synth_acl.generate_bool tree ~params (Prng.create 99) in
    (Cam.label_count (Cam.build tree bools), Dol.transition_count (Dol.of_bool_array bools))
  in
  let cam_lo, dol_lo = measure 0.1 in
  let cam_mid, dol_mid = measure 0.5 in
  let cam_hi, dol_hi = measure 0.9 in
  ignore cam_mid;
  Alcotest.(check bool) "CAM <= DOL transitions at 10%" true (cam_lo <= dol_lo);
  Alcotest.(check bool) "CAM <= DOL transitions at 50%" true (cam_mid <= dol_mid);
  Alcotest.(check bool) "CAM <= DOL transitions at 90%" true (cam_hi <= dol_hi);
  (* DOL transitions peak near 50% accessibility *)
  Alcotest.(check bool) "DOL peaks mid" true (dol_mid >= dol_lo && dol_mid >= dol_hi)

let test_storage_accounting () =
  let tree = Fixtures.figure2_tree () in
  let acc = Array.make (Tree.size tree) true in
  let cam = Cam.build tree acc in
  check Alcotest.int "paper accounting: 2 bytes per label" 2
    (Cam.accounting_bytes ~pointer_bytes:1 cam);
  check Alcotest.int "realistic accounting" 13 (Cam.storage_bytes cam)

let suite =
  [
    Alcotest.test_case "all inaccessible -> 0 labels" `Quick test_all_inaccessible_zero_labels;
    Alcotest.test_case "all accessible -> 1 label" `Quick test_all_accessible_one_label;
    Alcotest.test_case "single subtree -> 1 label" `Quick test_single_subtree;
    Alcotest.test_case "subtree with hole -> 2 labels" `Quick test_subtree_with_hole;
    Alcotest.test_case "figure 1(a) data" `Quick test_figure1_example;
    prop_cam_correct_and_no_worse_than_mso;
    Alcotest.test_case "fig 4 direction" `Quick test_fig4_direction;
    Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
  ]
