(** Tests for the extension features: multi-mode DOL, the
    following-sibling axis, and the stack-cached ε-STD. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Multimode = Dolx_core.Multimode
module Store = Dolx_core.Secure_store
module Structural_join = Dolx_nok.Structural_join
module Engine = Dolx_nok.Engine
module Xpath = Dolx_nok.Xpath
module Pattern = Dolx_nok.Pattern
module Tag_index = Dolx_index.Tag_index
module Labeling = Dolx_policy.Labeling
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Rule = Dolx_policy.Rule
module Propagate = Dolx_policy.Propagate
module Prng = Dolx_util.Prng
module Livelink = Dolx_workload.Livelink

let check = Alcotest.check

(* --- multi-mode DOL --- *)

let multimode_setup () =
  let tree = Fixtures.figure2_tree () in
  let subjects = Subject.create () in
  let alice = Subject.add_user subjects "alice" in
  let bob = Subject.add_user subjects "bob" in
  let modes, read, write = Mode.read_write () in
  let rules =
    [
      Rule.grant ~subject:alice ~mode:read 0;
      Rule.grant ~subject:alice ~mode:write 4;
      Rule.grant ~subject:bob ~mode:read 7;
    ]
  in
  let labelings = Propagate.compile_all_modes tree ~subjects ~modes rules in
  (tree, labelings, alice, bob, read, write)

let test_multimode_agrees_with_per_mode () =
  let _, labelings, alice, bob, read, write = multimode_setup () in
  let combined = Multimode.combine labelings in
  let per_mode = Array.map Dol.of_labeling labelings in
  for v = 0 to 11 do
    List.iter
      (fun (s, m) ->
        Alcotest.(check bool)
          (Printf.sprintf "subject %d mode %d node %d" s m v)
          (Dol.accessible per_mode.(m) ~subject:s v)
          (Multimode.accessible combined ~subject:s ~mode:m v))
      [ (alice, read); (alice, write); (bob, read); (bob, write) ]
  done

let test_multimode_bit_layout () =
  let layout = { Multimode.n_subjects = 5; n_modes = 3 } in
  check Alcotest.int "bit" 7 (Multimode.bit layout ~subject:2 ~mode:1);
  Alcotest.check_raises "bad mode" (Invalid_argument "Multimode: mode") (fun () ->
      ignore (Multimode.bit layout ~subject:0 ~mode:3))

let test_multimode_exploits_mode_correlation () =
  (* On correlated LiveLink modes, the combined codebook must be far
     smaller than the sum of per-mode codebooks (shared structure), and
     combined transitions no more than the sum of per-mode transitions. *)
  let ll =
    Livelink.generate
      ~config:
        { Livelink.default_config with seed = 8; target_nodes = 5000;
          n_departments = 6; users_per_department = 8; n_modes = 5 }
      ()
  in
  let combined = Multimode.combine ll.Livelink.labelings in
  let _, dol = combined in
  let per_mode = Array.map Dol.of_labeling ll.Livelink.labelings in
  let sum_transitions =
    Array.fold_left (fun acc d -> acc + Dol.transition_count d) 0 per_mode
  in
  Alcotest.(check bool) "combined transitions below per-mode sum" true
    (Dol.transition_count dol <= sum_transitions);
  let sum_entries =
    Array.fold_left (fun acc d -> acc + Codebook.count (Dol.codebook d)) 0 per_mode
  in
  Alcotest.(check bool)
    (Printf.sprintf "codebook %d below per-mode naive product (sum %d)"
       (Codebook.count (Dol.codebook dol)) sum_entries)
    true
    (Codebook.count (Dol.codebook dol) < sum_entries * 4);
  Alcotest.(check bool) "combined bytes comparable" true
    (Multimode.combined_storage_bytes combined
     < 3 * Multimode.per_mode_storage_bytes ll.Livelink.labelings)

(* --- following-sibling axis --- *)

let test_fs_parse () =
  let p = Xpath.parse "/library/shelf/book/following-sibling::book" in
  let trunk = Pattern.trunk p in
  check Alcotest.int "trunk length" 4 (List.length trunk);
  let last = List.nth trunk 3 in
  Alcotest.(check bool) "fs axis" true (last.Pattern.axis = Pattern.Following_sibling);
  (match Xpath.parse "/following-sibling::x" with
  | exception Xpath.Parse_error _ -> ()
  | _ -> Alcotest.fail "leading following-sibling must be rejected")

let test_fs_engine_vs_reference () =
  let tree = Fixtures.library_tree () in
  let n = Tree.size tree in
  let all = Array.make n true in
  let dol = Dol.of_bool_array all in
  let store = Store.create tree dol in
  let index = Tag_index.build tree in
  List.iter
    (fun q ->
      let pattern = Xpath.parse q in
      let got = (Engine.run store index pattern Engine.Insecure).Engine.answers in
      let want = Reference.eval tree Reference.Any pattern in
      check Fixtures.int_list q want got)
    [
      "/library/shelf/book/following-sibling::book";
      "/library/shelf/book/following-sibling::box";
      "//book[following-sibling::book]";
      "//shelf/book/following-sibling::book/title";
      "/library/shelf/following-sibling::shelf/book";
    ]

let prop_fs_engine_vs_reference =
  Fixtures.qtest ~count:60 "following-sibling: engine = oracle on random data"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 2 100) (int_bound 3))
    (fun (seed, n, qpick) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let bools = Fixtures.random_bools rng n 0.6 in
      bools.(0) <- true;
      let dol = Dol.of_bool_array bools in
      let store = Store.create tree dol in
      let index = Tag_index.build tree in
      let q =
        [| "//a/following-sibling::b"; "//b[following-sibling::a]";
           "//a/b/following-sibling::c"; "//a/following-sibling::*" |].(qpick)
      in
      let pattern = Xpath.parse q in
      let acc v = bools.(v) in
      (Engine.run store index pattern Engine.Insecure).Engine.answers
      = Reference.eval tree Reference.Any pattern
      && (Engine.run store index pattern (Engine.Secure 0)).Engine.answers
         = Reference.eval tree (Reference.Bound acc) pattern)

(* --- ε-STD variants --- *)

let prop_secure_std_variants_agree =
  Fixtures.qtest ~count:80 "stack-cached ε-STD = naive ε-STD"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 2 150) (int_range 1 9))
    (fun (seed, n, p10) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let bools = Fixtures.random_bools rng n (float_of_int p10 /. 10.0) in
      let dol = Dol.of_bool_array bools in
      let store = Store.create tree dol in
      (* candidate lists: all "a" nodes / all "b" nodes *)
      let nodes_with tag =
        List.filter (fun v -> Tree.tag_name tree v = tag) (List.init n Fun.id)
      in
      let alist = nodes_with "a" and dlist = nodes_with "b" in
      let naive =
        Structural_join.secure_stack_tree_desc_naive store ~subject:0 ~alist ~dlist
      in
      let unmemo =
        Structural_join.secure_stack_tree_desc_unmemoized store ~subject:0 ~alist
          ~dlist
      in
      let stacked =
        Structural_join.secure_stack_tree_desc store ~subject:0 ~alist ~dlist
      in
      List.sort compare naive = List.sort compare stacked
      && List.sort compare naive = List.sort compare unmemo)

let test_stacked_std_fewer_checks () =
  (* nested ancestors sharing long paths: stack caching must check far
     fewer nodes *)
  let rng = Prng.create 1234 in
  let tree = Fixtures.random_tree rng 3000 in
  let n = Tree.size tree in
  let bools = Array.make n true in
  let dol = Dol.of_bool_array bools in
  let nodes_with tag =
    List.filter (fun v -> Tree.tag_name tree v = tag) (List.init n Fun.id)
  in
  let alist = nodes_with "a" and dlist = nodes_with "b" in
  (* measure via fresh stores to isolate counters *)
  let store1 = Store.create tree dol in
  ignore (Structural_join.secure_stack_tree_desc_naive store1 ~subject:0 ~alist ~dlist);
  let naive_checks = (Store.io_stats store1).Store.access_checks in
  let store2 = Store.create tree dol in
  ignore (Structural_join.secure_stack_tree_desc store2 ~subject:0 ~alist ~dlist);
  let stacked_checks = (Store.io_stats store2).Store.access_checks in
  Alcotest.(check bool)
    (Printf.sprintf "stacked (%d) <= naive (%d)" stacked_checks naive_checks)
    true
    (stacked_checks <= naive_checks)

let suite =
  [
    Alcotest.test_case "multimode agrees with per-mode DOLs" `Quick
      test_multimode_agrees_with_per_mode;
    Alcotest.test_case "multimode bit layout" `Quick test_multimode_bit_layout;
    Alcotest.test_case "multimode exploits correlation" `Quick
      test_multimode_exploits_mode_correlation;
    Alcotest.test_case "following-sibling: parse" `Quick test_fs_parse;
    Alcotest.test_case "following-sibling: engine vs oracle" `Quick
      test_fs_engine_vs_reference;
    prop_fs_engine_vs_reference;
    prop_secure_std_variants_agree;
    Alcotest.test_case "stacked ε-STD does fewer checks" `Quick
      test_stacked_std_fewer_checks;
  ]
