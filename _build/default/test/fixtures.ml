(** Shared test fixtures and generators. *)

module Tree = Dolx_xml.Tree
module Prng = Dolx_util.Prng

(* The data tree of the paper's Figure 2:
   (a(b)(c)(d)(e(f)(g)(h(i)(j)(k)(l)))) *)
let figure2_tree () =
  Tree.of_spec
    (Tree.El
       ( "a",
         [
           Tree.El ("b", []);
           Tree.El ("c", []);
           Tree.El ("d", []);
           Tree.El
             ( "e",
               [
                 Tree.El ("f", []);
                 Tree.El ("g", []);
                 Tree.El
                   ("h", [ Tree.El ("i", []); Tree.El ("j", []); Tree.El ("k", []); Tree.El ("l", []) ]);
               ] );
         ] ))

(* A small document with repeated tags, for query tests. *)
let library_tree () =
  let book title author =
    Tree.El ("book", [ Tree.Elt ("title", title, []); Tree.Elt ("author", author, []) ])
  in
  Tree.of_spec
    (Tree.El
       ( "library",
         [
           Tree.El
             ( "shelf",
               [
                 book "ocaml" "milner";
                 book "xml" "codd";
                 Tree.El ("box", [ book "secrets" "anon" ]);
               ] );
           Tree.El ("shelf", [ book "joins" "codd" ]);
         ] ))

(* Deterministic random tree with [n] nodes: random parent attachment
   biased toward recent nodes (gives realistic depth). *)
let random_tree rng n =
  let n = max 1 n in
  let tags = [| "a"; "b"; "c"; "d" |] in
  let b = Tree.Builder.create () in
  (* build a random shape via a recursive budget split *)
  let rec go budget depth =
    (* open one node, spend the rest on children *)
    ignore (Tree.Builder.open_element b (Prng.choose rng tags));
    let remaining = ref (budget - 1) in
    while !remaining > 0 do
      let child_budget = 1 + Prng.int rng !remaining in
      let child_budget = if depth > 30 then 1 else child_budget in
      go child_budget (depth + 1);
      remaining := !remaining - child_budget
    done;
    Tree.Builder.close_element b
  in
  go n 0;
  Tree.Builder.finish b

let random_bools rng n p = Array.init n (fun _ -> Prng.bool rng ~p)

(* Alcotest testable for int lists *)
let int_list = Alcotest.(list int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
