(** Tests for the NoK query processor: XPath parsing, decomposition,
    Algorithm 1, structural joins, and the engine against the naive
    reference evaluator under all three semantics. *)

module Tree = Dolx_xml.Tree
module Pattern = Dolx_nok.Pattern
module Xpath = Dolx_nok.Xpath
module Decompose = Dolx_nok.Decompose
module Nok_match = Dolx_nok.Nok_match
module Structural_join = Dolx_nok.Structural_join
module Engine = Dolx_nok.Engine
module Dol = Dolx_core.Dol
module Store = Dolx_core.Secure_store
module Tag_index = Dolx_index.Tag_index
module Labeling = Dolx_policy.Labeling
module Prng = Dolx_util.Prng
module Xmark = Dolx_workload.Xmark
module Synth_acl = Dolx_workload.Synth_acl

let check = Alcotest.check

(* --- XPath parsing --- *)

let test_parse_simple_path () =
  let p = Xpath.parse "/site/regions/africa" in
  let trunk = Pattern.trunk p in
  check Alcotest.int "trunk length" 3 (List.length trunk);
  let tags =
    List.map
      (fun (n : Pattern.pnode) ->
        match n.Pattern.test with Pattern.Tag t -> t | Pattern.Wildcard -> "*")
      trunk
  in
  check Alcotest.(list string) "tags" [ "site"; "regions"; "africa" ] tags;
  let returning = Pattern.returning_node p in
  Alcotest.(check bool) "last is returning" true
    (returning.Pattern.test = Pattern.Tag "africa")

let test_parse_predicates () =
  let p = Xpath.parse "/site/regions/africa/item[location][name][quantity]" in
  let returning = Pattern.returning_node p in
  check Alcotest.int "three predicates" 3 (List.length returning.Pattern.children);
  check Alcotest.int "node count" 7 (Pattern.node_count p)

let test_parse_descendant_and_wildcard () =
  let p = Xpath.parse "//listitem//keyword" in
  let trunk = Pattern.trunk p in
  check Alcotest.int "two steps" 2 (List.length trunk);
  List.iter
    (fun (n : Pattern.pnode) ->
      Alcotest.(check bool) "descendant axis" true (n.Pattern.axis = Pattern.Descendant))
    trunk;
  let w = Xpath.parse "/a/*/b" in
  check Alcotest.int "wildcard trunk" 3 (List.length (Pattern.trunk w))

let test_parse_value_predicate () =
  let p = Xpath.parse "/people/person[name=\"alice\"]/phone" in
  let trunk = Pattern.trunk p in
  let person = List.nth trunk 1 in
  (match person.Pattern.children with
  | [ name_pred ] -> (
      match (name_pred.Pattern.test, name_pred.Pattern.value) with
      | Pattern.Tag "name", Some "alice" -> ()
      | _ -> Alcotest.fail "wrong predicate")
  | l ->
      (* trunk child (phone) is also a child; filter non-trunk *)
      let non_trunk =
        List.filter (fun (c : Pattern.pnode) -> c.Pattern.test = Pattern.Tag "name") l
      in
      match non_trunk with
      | [ name_pred ] ->
          Alcotest.(check (option string)) "value" (Some "alice") name_pred.Pattern.value
      | _ -> Alcotest.fail "missing predicate");
  check Alcotest.int "trunk depth" 3 (List.length trunk)

let test_parse_errors () =
  let fails s =
    match Xpath.parse s with
    | exception Xpath.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  fails "";
  fails "site/foo";
  fails "/site[";
  fails "/site]extra";
  fails "/site/";
  fails "/site[pred"

let test_parse_queries_table1 () =
  List.iter
    (fun (name, q) ->
      match Xpath.parse q with
      | _ -> ()
      | exception e -> Alcotest.failf "%s failed to parse: %s" name (Printexc.to_string e))
    Xmark.queries

(* --- decomposition --- *)

let test_decompose_single_segment () =
  let p = Xpath.parse "/site/regions/africa/item[location][name]" in
  let plan = Decompose.plan p in
  check Alcotest.int "one NoK subtree" 1 (Decompose.segment_count plan);
  Alcotest.(check bool) "no join" false (Decompose.needs_join plan)

let test_decompose_join_queries () =
  let plan = Decompose.plan (Xpath.parse "//parlist//parlist") in
  check Alcotest.int "two segments" 2 (Decompose.segment_count plan);
  let plan3 = Decompose.plan (Xpath.parse "//a/b//c/d//e") in
  check Alcotest.int "three segments" 3 (Decompose.segment_count plan3)

(* --- engine vs reference oracle --- *)

let build_secured tree bools =
  let dol = Dol.of_bool_array bools in
  let store = Store.create ~page_size:256 ~pool_capacity:64 tree dol in
  let index = Tag_index.build tree in
  (store, index)

let compare_engine_to_reference tree bools query =
  let store, index = build_secured tree bools in
  let pattern = Xpath.parse query in
  let acc v = bools.(v) in
  let cases =
    [
      ("insecure", Engine.Insecure, Reference.Any);
      ("secure", Engine.Secure 0, Reference.Bound acc);
      ("secure-path", Engine.Secure_path 0, Reference.Path acc);
    ]
  in
  List.iter
    (fun (label, sem, ref_sem) ->
      let got = (Engine.run store index pattern sem).Engine.answers in
      let expected = Reference.eval tree ref_sem pattern in
      check Fixtures.int_list (Printf.sprintf "%s: %s" query label) expected got)
    cases

let test_engine_library_queries () =
  let tree = Fixtures.library_tree () in
  let n = Tree.size tree in
  let all = Array.make n true in
  List.iter
    (compare_engine_to_reference tree all)
    [
      "/library/shelf/book";
      "/library/shelf/book/title";
      "//book";
      "//book/title";
      "/library//book[author]";
      "//shelf//title";
      "/library/shelf/book[author=\"codd\"]/title";
      "//book[title=\"joins\"]";
      "/library/*/book";
      "//box//title";
    ]

let test_engine_secure_filtering () =
  let tree = Fixtures.library_tree () in
  let n = Tree.size tree in
  let bools = Array.make n true in
  (* hide the box subtree *)
  let box = 8 in
  Alcotest.(check string) "box preorder" "box" (Tree.tag_name tree box);
  for v = box to Tree.subtree_end tree box do
    bools.(v) <- false
  done;
  List.iter
    (compare_engine_to_reference tree bools)
    [ "//book"; "//book/title"; "/library/shelf/book"; "//box//title"; "//shelf//title" ]

let test_engine_path_vs_bound_semantics () =
  (* inaccessible intermediate node: Cho keeps the answer, path drops it *)
  let tree = Fixtures.library_tree () in
  let n = Tree.size tree in
  let bools = Array.make n true in
  let box = 8 in
  bools.(box) <- false (* the box itself; its book stays accessible *);
  let store, index = build_secured tree bools in
  let q = "//shelf//title" in
  let secure = (Engine.query store index q (Engine.Secure 0)).Engine.answers in
  let path = (Engine.query store index q (Engine.Secure_path 0)).Engine.answers in
  Alcotest.(check bool) "path semantics strictly smaller" true
    (List.length path < List.length secure);
  compare_engine_to_reference tree bools q

let prop_engine_vs_reference_random =
  Fixtures.qtest ~count:60 "engine = oracle on random trees/ACLs/semantics"
    QCheck2.Gen.(
      quad (int_bound 100_000) (int_range 2 120) (int_range 1 9)
        (int_bound 15))
    (fun (seed, n, p10, qpick) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let bools = Fixtures.random_bools rng n (float_of_int p10 /. 10.0) in
      bools.(0) <- true;
      let queries =
        [|
          "//a"; "//b/c"; "//a//b"; "//a[b]"; "//a/b[c]"; "//b//c//d";
          "//*[a]"; "//a[b][c]"; "//a[b/c]"; "//a[b//c]"; "//d"; "//c/d";
          "//a/following-sibling::b[c]"; "//a[following-sibling::b]//c";
          "//b[c//d]"; "//a/*//b";
        |]
      in
      let q = queries.(qpick) in
      let store, index = build_secured tree bools in
      let pattern = Xpath.parse q in
      let acc v = bools.(v) in
      let ok sem ref_sem =
        (Engine.run store index pattern sem).Engine.answers
        = Reference.eval tree ref_sem pattern
      in
      ok Engine.Insecure Reference.Any
      && ok (Engine.Secure 0) (Reference.Bound acc)
      && ok (Engine.Secure_path 0) (Reference.Path acc))

let test_header_skip_equivalence () =
  (* the §3.3 header optimization must not change answers *)
  let tree = Xmark.generate_nodes ~seed:5 3000 in
  let rng = Prng.create 21 in
  let bools =
    Synth_acl.generate_bool tree
      ~params:{ Synth_acl.default with accessibility_ratio = 0.3 }
      rng
  in
  let store, index = build_secured tree bools in
  List.iter
    (fun (_, q) ->
      let with_skip =
        Engine.query ~options:{ Engine.header_skip = true } store index q (Engine.Secure 0)
      in
      let without =
        Engine.query ~options:{ Engine.header_skip = false } store index q (Engine.Secure 0)
      in
      check Fixtures.int_list q without.Engine.answers with_skip.Engine.answers)
    Xmark.queries

let test_all_paper_queries_vs_oracle () =
  (* the strongest fidelity check: every Table-1 query on a real XMark
     instance with propagated ACLs, all three semantics, vs the oracle *)
  let tree = Xmark.generate_nodes ~seed:123 2_500 in
  let rng = Prng.create 124 in
  let bools =
    Synth_acl.generate_bool tree
      ~params:{ Synth_acl.default with accessibility_ratio = 0.6 }
      rng
  in
  bools.(0) <- true;
  let store, index = build_secured tree bools in
  let acc v = bools.(v) in
  List.iter
    (fun (name, q) ->
      let pattern = Xpath.parse q in
      List.iter
        (fun (label, sem, ref_sem) ->
          let got = (Engine.run store index pattern sem).Engine.answers in
          let want = Reference.eval tree ref_sem pattern in
          check Fixtures.int_list (Printf.sprintf "%s %s" name label) want got)
        [
          ("insecure", Engine.Insecure, Reference.Any);
          ("secure", Engine.Secure 0, Reference.Bound acc);
          ("path", Engine.Secure_path 0, Reference.Path acc);
        ])
    Xmark.queries

(* --- Algorithm 1 cross-check --- *)

let test_npm_agrees_with_engine_on_match_existence () =
  let tree = Xmark.generate_nodes ~seed:9 2000 in
  let rng = Prng.create 77 in
  let bools = Synth_acl.generate_bool tree ~params:Synth_acl.default rng in
  let store, index = build_secured tree bools in
  (* single NoK subtree rooted at item, returning the root *)
  let pattern = Xpath.parse "/site/regions/africa/item[location][name][quantity]" in
  let engine = (Engine.run store index pattern (Engine.Secure 0)).Engine.answers in
  (* run Algorithm 1 directly on each item with the item sub-pattern *)
  let item_pat =
    Pattern.of_root
      (Pattern.make ~returning:true (Pattern.Tag "item")
         [
           Pattern.make (Pattern.Tag "location") [];
           Pattern.make (Pattern.Tag "name") [];
           Pattern.make (Pattern.Tag "quantity") [];
         ])
  in
  let table = Tree.tag_table tree in
  let item_tag = Option.get (Dolx_xml.Tag.find_opt table "item") in
  let africa_items =
    (* items under africa whose trunk path (site/regions/africa) is
       accessible — the part of the query Algorithm 1 does not re-check *)
    List.filter
      (fun v ->
        let africa = Tree.parent tree v in
        let regions = Tree.parent tree africa in
        Tree.tag_name tree africa = "africa"
        && bools.(africa) && bools.(regions)
        && bools.(Tree.parent tree regions))
      (Tag_index.postings index item_tag)
  in
  let npm_matches =
    List.filter
      (fun v -> Nok_match.npm_run store (Nok_match.secure 0) item_pat v <> None)
      africa_items
  in
  check Fixtures.int_list "Algorithm 1 = engine" engine npm_matches

let prop_value_queries_vs_oracle =
  (* random text values; engine with and without the value index must
     both equal the oracle *)
  Fixtures.qtest ~count:50 "value queries = oracle (with and without value index)"
    QCheck2.Gen.(quad (int_bound 100_000) (int_range 2 100) (int_range 1 9) (int_bound 3))
    (fun (seed, n, p10, qpick) ->
      let rng = Prng.create seed in
      let tree0 = Fixtures.random_tree rng n in
      (* rebuild with random short texts on leaves *)
      let b = Tree.Builder.create () in
      let words = [| "x"; "y"; "z" |] in
      let rec copy v =
        ignore (Tree.Builder.open_element b (Tree.tag_name tree0 v));
        if Tree.is_leaf tree0 v then
          Tree.Builder.add_text b words.(Prng.int rng 3);
        Tree.iter_children copy tree0 v;
        Tree.Builder.close_element b
      in
      copy Tree.root;
      let tree = Tree.Builder.finish b in
      let bools = Fixtures.random_bools rng n (float_of_int p10 /. 10.0) in
      bools.(0) <- true;
      let dol = Dol.of_bool_array bools in
      let store = Store.create ~page_size:256 tree dol in
      let index = Tag_index.build tree in
      let vindex = Dolx_index.Value_index.build tree in
      let q =
        [| "//a=\"x\""; "//b=\"y\""; "//a[b=\"z\"]"; "//c=\"x\"" |].(qpick)
      in
      let pattern = Xpath.parse q in
      let acc v = bools.(v) in
      List.for_all
        (fun (sem, rsem) ->
          let plain = (Engine.run store index pattern sem).Engine.answers in
          let seeded =
            (Engine.run ~value_index:vindex store index pattern sem).Engine.answers
          in
          let want = Reference.eval tree rsem pattern in
          plain = want && seeded = want)
        [ (Engine.Insecure, Reference.Any); (Engine.Secure 0, Reference.Bound acc) ])

(* --- full binding tuples --- *)

let test_bindings_figure2 () =
  let tree = Fixtures.figure2_tree () in
  let bools = Array.make 12 true in
  let store, index = build_secured tree bools in
  (* //e/h: one tuple (e, h) *)
  let p = Xpath.parse "//e/h" in
  check
    Alcotest.(list (list int))
    "e/h" [ [ 4; 7 ] ]
    (Engine.bindings store index p Engine.Insecure);
  (* //a//h pairs *)
  let p2 = Xpath.parse "//a//h" in
  check Alcotest.(list (list int)) "a//h" [ [ 0; 7 ] ]
    (Engine.bindings store index p2 Engine.Insecure)

let test_bindings_join_pairs () =
  (* //parlist//parlist bindings = the STD pair count *)
  let tree = Xmark.generate_nodes ~seed:55 2000 in
  let n = Tree.size tree in
  let store, index = build_secured tree (Array.make n true) in
  let p = Xpath.parse "//parlist//parlist" in
  let tuples = Engine.bindings store index p Engine.Insecure in
  let table = Tree.tag_table tree in
  let parlist = Option.get (Dolx_xml.Tag.find_opt table "parlist") in
  let nodes = Tag_index.postings index parlist in
  let pairs = Structural_join.stack_tree_desc store ~alist:nodes ~dlist:nodes in
  check Alcotest.int "tuple count = STD pair count" (List.length pairs)
    (List.length tuples);
  (* under Cho semantics: pairs over the accessible candidate sets *)
  let bools2 = Array.init n (fun v -> v mod 3 <> 0) in
  bools2.(0) <- true;
  let store2, index2 = build_secured tree bools2 in
  let acc_nodes =
    List.filter (fun v -> bools2.(v)) (Tag_index.postings index2 parlist)
  in
  let sec_pairs =
    Structural_join.stack_tree_desc store2 ~alist:acc_nodes ~dlist:acc_nodes
  in
  let sec_tuples = Engine.bindings store2 index2 p (Engine.Secure 0) in
  check Alcotest.int "secure tuple count = secure pair count"
    (List.length sec_pairs) (List.length sec_tuples);
  (* projecting tuples onto the returning node = run's answers *)
  let answers = (Engine.run store index p Engine.Insecure).Engine.answers in
  check Fixtures.int_list "projection"
    answers
    (List.sort_uniq compare (List.map (fun t -> List.nth t 1) tuples))

let prop_bindings_project_to_answers =
  Fixtures.qtest ~count:50 "binding tuples project onto run answers"
    QCheck2.Gen.(quad (int_bound 100_000) (int_range 2 100) (int_range 1 9) (int_bound 5))
    (fun (seed, n, p10, qpick) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let bools = Fixtures.random_bools rng n (float_of_int p10 /. 10.0) in
      bools.(0) <- true;
      let store, index = build_secured tree bools in
      let q = [| "//a/b"; "//a//b"; "//a[b]/c"; "//b//c//d"; "//a/b/c"; "//a" |].(qpick) in
      let pattern = Xpath.parse q in
      List.for_all
        (fun sem ->
          let tuples = Engine.bindings store index pattern sem in
          let answers = (Engine.run store index pattern sem).Engine.answers in
          let last t = List.nth t (List.length t - 1) in
          List.sort_uniq compare (List.map last tuples) = answers
          (* every tuple is strictly increasing in preorder along the
             trunk (child/descendant steps go downward) *)
          && List.for_all
               (fun t ->
                 let rec incr_ok = function
                   | a :: (b :: _ as rest) -> a < b && incr_ok rest
                   | _ -> true
                 in
                 incr_ok t)
               tuples)
        [ Engine.Insecure; Engine.Secure 0; Engine.Secure_path 0 ])

let test_bindings_limit () =
  let tree = Xmark.generate_nodes ~seed:56 2000 in
  let n = Tree.size tree in
  let store, index = build_secured tree (Array.make n true) in
  let p = Xpath.parse "//listitem//keyword" in
  let all = Engine.bindings store index p Engine.Insecure in
  let five = Engine.bindings ~limit:5 store index p Engine.Insecure in
  Alcotest.(check bool) "has more than five" true (List.length all > 5);
  check Alcotest.int "limited" 5 (List.length five)

(* --- structural join --- *)

let test_std_pairs () =
  let tree = Fixtures.figure2_tree () in
  let bools = Array.make 12 true in
  let store, _ = build_secured tree bools in
  (* ancestors {a=0, e=4}, descendants {h=7, b=1} *)
  let pairs =
    Structural_join.stack_tree_desc store ~alist:[ 0; 4 ] ~dlist:[ 1; 7 ]
  in
  let sorted = List.sort compare pairs in
  check
    Alcotest.(list (pair int int))
    "pairs" [ (0, 1); (0, 7); (4, 7) ] sorted

let test_std_nested_candidates () =
  (* both lists can contain nested nodes *)
  let tree = Fixtures.figure2_tree () in
  let bools = Array.make 12 true in
  let store, _ = build_secured tree bools in
  let pairs =
    Structural_join.stack_tree_desc store ~alist:[ 0; 4; 7 ] ~dlist:[ 8; 11 ]
  in
  check Alcotest.int "all ancestor pairs" 6 (List.length pairs)

let test_secure_std_path_check () =
  let tree = Fixtures.figure2_tree () in
  let bools = Array.make 12 true in
  bools.(7) <- false (* h blocks paths from a/e down to i..l *);
  let store, _ = build_secured tree bools in
  let pairs =
    Structural_join.secure_stack_tree_desc store ~subject:0 ~alist:[ 0; 4 ]
      ~dlist:[ 5; 8 ]
  in
  (* (0,5) via e: e accessible so path a->f..: a->e->f? d=5 is f; path a..f
     passes e only. (4,5): direct child. pairs through h are pruned. *)
  let sorted = List.sort compare pairs in
  check Alcotest.(list (pair int int)) "pruned pairs" [ (0, 5); (4, 5) ] sorted

let suite =
  [
    Alcotest.test_case "parse simple path" `Quick test_parse_simple_path;
    Alcotest.test_case "parse predicates" `Quick test_parse_predicates;
    Alcotest.test_case "parse descendant + wildcard" `Quick test_parse_descendant_and_wildcard;
    Alcotest.test_case "parse value predicate" `Quick test_parse_value_predicate;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse Table 1 queries" `Quick test_parse_queries_table1;
    Alcotest.test_case "decompose single segment" `Quick test_decompose_single_segment;
    Alcotest.test_case "decompose join queries" `Quick test_decompose_join_queries;
    Alcotest.test_case "engine: library queries" `Quick test_engine_library_queries;
    Alcotest.test_case "engine: secure filtering" `Quick test_engine_secure_filtering;
    Alcotest.test_case "engine: path vs bound semantics" `Quick
      test_engine_path_vs_bound_semantics;
    prop_engine_vs_reference_random;
    Alcotest.test_case "header skip equivalence" `Slow test_header_skip_equivalence;
    Alcotest.test_case "all paper queries vs oracle" `Slow test_all_paper_queries_vs_oracle;
    Alcotest.test_case "Algorithm 1 agrees with engine" `Quick
      test_npm_agrees_with_engine_on_match_existence;
    prop_value_queries_vs_oracle;
    Alcotest.test_case "bindings: figure 2" `Quick test_bindings_figure2;
    Alcotest.test_case "bindings: join pairs" `Quick test_bindings_join_pairs;
    prop_bindings_project_to_answers;
    Alcotest.test_case "bindings: limit" `Quick test_bindings_limit;
    Alcotest.test_case "STD pairs" `Quick test_std_pairs;
    Alcotest.test_case "STD nested candidates" `Quick test_std_nested_candidates;
    Alcotest.test_case "secure STD path check" `Quick test_secure_std_path_check;
  ]
