(** Tests for the workload generators: XMark documents, synthetic ACLs,
    and the LiveLink / Unix-FS simulators. *)

module Tree = Dolx_xml.Tree
module Tree_stats = Dolx_xml.Tree_stats
module Prng = Dolx_util.Prng
module Labeling = Dolx_policy.Labeling
module Subject = Dolx_policy.Subject
module Acl = Dolx_policy.Acl
module Dol = Dolx_core.Dol
module Xmark = Dolx_workload.Xmark
module Synth_acl = Dolx_workload.Synth_acl
module Livelink = Dolx_workload.Livelink
module Unixfs = Dolx_workload.Unixfs
module Engine = Dolx_nok.Engine
module Store = Dolx_core.Secure_store
module Tag_index = Dolx_index.Tag_index

let check = Alcotest.check

(* --- XMark --- *)

let test_xmark_deterministic () =
  let a = Xmark.generate ~config:{ Xmark.default_config with seed = 5 } () in
  let b = Xmark.generate ~config:{ Xmark.default_config with seed = 5 } () in
  check Alcotest.int "same size" (Tree.size a) (Tree.size b);
  check Alcotest.string "same structure" (Tree.structure_string a) (Tree.structure_string b)

let test_xmark_target_nodes () =
  List.iter
    (fun target ->
      let t = Xmark.generate_nodes ~seed:1 target in
      let n = Tree.size t in
      let err = abs (n - target) in
      Alcotest.(check bool)
        (Printf.sprintf "size %d within 25%% of %d" n target)
        true
        (float_of_int err < 0.25 *. float_of_int target))
    [ 2000; 10_000; 40_000 ]

let test_xmark_queries_have_matches () =
  let tree = Xmark.generate_nodes ~seed:2 20_000 in
  let n = Tree.size tree in
  let dol = Dol.of_bool_array (Array.make n true) in
  let store = Store.create tree dol in
  let index = Tag_index.build tree in
  List.iter
    (fun (name, q) ->
      let r = Engine.query store index q Engine.Insecure in
      Alcotest.(check bool)
        (Printf.sprintf "%s (%s) has answers" name q)
        true
        (List.length r.Engine.answers > 0))
    Xmark.queries

let test_xmark_validates () =
  let t = Xmark.generate_nodes ~seed:3 5000 in
  Tree.validate t;
  let s = Tree_stats.compute t in
  Alcotest.(check bool) "depth reasonable" true (s.Tree_stats.max_depth >= 5);
  Alcotest.(check bool) "has many tags" true (s.Tree_stats.distinct_tags > 30)

(* --- synthetic ACLs --- *)

let test_synth_acl_ratio () =
  let tree = Xmark.generate_nodes ~seed:4 20_000 in
  List.iter
    (fun target ->
      let params =
        { Synth_acl.propagation_ratio = 0.1; accessibility_ratio = target; sibling_copy_p = 0.5 }
      in
      let bools = Synth_acl.generate_bool tree ~params (Prng.create 9) in
      let frac =
        float_of_int (Array.fold_left (fun a b -> if b then a + 1 else a) 0 bools)
        /. float_of_int (Array.length bools)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fraction %.2f near %.2f" frac target)
        true
        (Float.abs (frac -. target) < 0.2))
    [ 0.1; 0.5; 0.9 ]

let test_synth_acl_root_labeled () =
  let tree = Fixtures.figure2_tree () in
  (* propagation 0: only the root is a seed; the whole doc gets its label *)
  let params =
    { Synth_acl.propagation_ratio = 0.0; accessibility_ratio = 1.0; sibling_copy_p = 0.0 }
  in
  let bools = Synth_acl.generate_bool tree ~params (Prng.create 1) in
  Alcotest.(check bool) "all accessible" true (Array.for_all Fun.id bools)

let test_synth_acl_locality () =
  (* propagated ACLs must have far fewer transitions than iid ones *)
  let tree = Xmark.generate_nodes ~seed:5 20_000 in
  let n = Tree.size tree in
  let params =
    { Synth_acl.propagation_ratio = 0.05; accessibility_ratio = 0.5; sibling_copy_p = 0.5 }
  in
  let local = Synth_acl.generate_bool tree ~params (Prng.create 2) in
  let rng = Prng.create 3 in
  let iid = Fixtures.random_bools rng n 0.5 in
  let t_local = Dol.transition_count (Dol.of_bool_array local) in
  let t_iid = Dol.transition_count (Dol.of_bool_array iid) in
  Alcotest.(check bool)
    (Printf.sprintf "locality: %d << %d" t_local t_iid)
    true
    (t_local * 3 < t_iid)

let test_synth_multi_correlated () =
  let tree = Xmark.generate_nodes ~seed:6 5000 in
  let lab =
    Synth_acl.generate_multi tree ~seed:10 ~n_subjects:40 ~n_archetypes:4 ()
  in
  let dol = Dol.of_labeling lab in
  (* correlated subjects: codebook far below the 2^40 worst case and below
     the per-subject-independent expectation *)
  let entries = Dolx_core.Codebook.count (Dol.codebook dol) in
  Alcotest.(check bool)
    (Printf.sprintf "codebook small (%d)" entries)
    true (entries < 1000);
  Dol.verify_against dol lab

(* --- LiveLink simulator --- *)

let livelink_small () =
  Livelink.generate
    ~config:
      {
        Livelink.default_config with
        seed = 3;
        target_nodes = 4000;
        n_departments = 6;
        users_per_department = 10;
        n_modes = 4;
      }
    ()

let test_livelink_shape () =
  let ll = livelink_small () in
  Tree.validate ll.Livelink.tree;
  let s = Tree_stats.compute ll.Livelink.tree in
  Alcotest.(check bool)
    (Fmt.str "avg depth plausible (%a)" Tree_stats.pp s)
    true
    (s.Tree_stats.avg_depth > 3.0 && s.Tree_stats.avg_depth < 14.0);
  Alcotest.(check bool) "max depth <= 19" true (s.Tree_stats.max_depth <= 19);
  check Alcotest.int "subjects" (6 + (6 * 10)) (Subject.count ll.Livelink.subjects);
  check Alcotest.int "modes" 4 (Array.length ll.Livelink.labelings)

let test_livelink_department_rights () =
  let ll = livelink_small () in
  let lab = ll.Livelink.labelings.(0) in
  (* each department's users can see their own workspace root *)
  Array.iteri
    (fun d root ->
      let group = ll.Livelink.groups.(d) in
      Alcotest.(check bool)
        (Printf.sprintf "dept %d group sees its workspace" d)
        true
        (Labeling.accessible lab ~subject:group root))
    ll.Livelink.dept_roots

let test_livelink_correlation () =
  let ll = livelink_small () in
  let lab = ll.Livelink.labelings.(0) in
  let dol = Dol.of_labeling lab in
  let n_subjects = Subject.count ll.Livelink.subjects in
  let entries = Dolx_core.Codebook.count (Dol.codebook dol) in
  (* strong correlation: codebook entries far below node count and far
     below 2^S *)
  Alcotest.(check bool)
    (Printf.sprintf "codebook %d sublinear in subjects %d" entries n_subjects)
    true
    (entries < 20 * n_subjects);
  Dol.verify_against dol lab

(* --- Unix FS simulator --- *)

let unixfs_small () =
  Unixfs.generate
    ~config:{ Unixfs.seed = 4; target_nodes = 4000; n_users = 30; n_groups = 8 }
    ()

let test_unixfs_owner_reads_home () =
  let fs = unixfs_small () in
  let lab = fs.Unixfs.read_labeling in
  let tree = fs.Unixfs.tree in
  (* home dirs are children of /home (preorder 1); owner i = user index i *)
  let homes = Tree.children tree 1 in
  List.iteri
    (fun i home ->
      let owner = fs.Unixfs.users.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "user %d reads own home" i)
        true
        (Labeling.accessible lab ~subject:owner home))
    homes

let test_unixfs_semantics_brute_force () =
  let fs = unixfs_small () in
  let tree = fs.Unixfs.tree in
  let lab = fs.Unixfs.read_labeling in
  let rng = Prng.create 55 in
  (* spot-check 200 random (user, node) pairs against a direct permission
     evaluation *)
  let n = Tree.size tree in
  let user_in_group u g =
    List.exists
      (fun grp -> grp = fs.Unixfs.groups.(g))
      (Subject.direct_groups fs.Unixfs.subjects fs.Unixfs.users.(u))
  in
  let perm_ok u v ~shift =
    let p = fs.Unixfs.perms.(v) in
    let bit off = p.Unixfs.mode land (1 lsl off) <> 0 in
    if p.Unixfs.owner = u then bit (6 + shift)
    else if p.Unixfs.group >= 0 && user_in_group u p.Unixfs.group then bit (3 + shift)
    else bit shift
  in
  let readable u v =
    let rec exec_path x =
      x = Tree.nil || (perm_ok u x ~shift:0 && exec_path (Tree.parent tree x))
    in
    perm_ok u v ~shift:2 && exec_path (Tree.parent tree v)
  in
  for _ = 1 to 200 do
    let u = Prng.int rng (Array.length fs.Unixfs.users) in
    let v = Prng.int rng n in
    Alcotest.(check bool)
      (Printf.sprintf "user %d node %d" u v)
      (readable u v)
      (Labeling.accessible lab ~subject:fs.Unixfs.users.(u) v)
  done

let test_unixfs_correlation () =
  let fs = unixfs_small () in
  let dol = Dol.of_labeling fs.Unixfs.read_labeling in
  let entries = Dolx_core.Codebook.count (Dol.codebook dol) in
  let n = Tree.size fs.Unixfs.tree in
  Alcotest.(check bool)
    (Printf.sprintf "codebook %d << nodes %d" entries n)
    true
    (entries * 4 < n);
  (* transition density well below 1 (structural locality) *)
  Alcotest.(check bool) "sparse transitions" true (Dol.transition_density dol < 0.5)

let suite =
  [
    Alcotest.test_case "xmark deterministic" `Quick test_xmark_deterministic;
    Alcotest.test_case "xmark target size" `Quick test_xmark_target_nodes;
    Alcotest.test_case "xmark queries have matches" `Slow test_xmark_queries_have_matches;
    Alcotest.test_case "xmark validates" `Quick test_xmark_validates;
    Alcotest.test_case "synthetic ACL ratio" `Quick test_synth_acl_ratio;
    Alcotest.test_case "synthetic ACL root seed" `Quick test_synth_acl_root_labeled;
    Alcotest.test_case "synthetic ACL locality" `Quick test_synth_acl_locality;
    Alcotest.test_case "synthetic multi-subject correlation" `Quick test_synth_multi_correlated;
    Alcotest.test_case "livelink shape" `Quick test_livelink_shape;
    Alcotest.test_case "livelink department rights" `Quick test_livelink_department_rights;
    Alcotest.test_case "livelink correlation" `Quick test_livelink_correlation;
    Alcotest.test_case "unixfs owner reads home" `Quick test_unixfs_owner_reads_home;
    Alcotest.test_case "unixfs semantics brute force" `Quick test_unixfs_semantics_brute_force;
    Alcotest.test_case "unixfs correlation" `Quick test_unixfs_correlation;
  ]
