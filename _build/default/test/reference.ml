(** A naive, obviously-correct twig-query evaluator used as an oracle for
    the NoK engine.  It works directly on the in-memory tree with an
    accessibility predicate, enumerating candidates exhaustively — no
    index, no paging, no structural join. *)

module Tree = Dolx_xml.Tree
module Pattern = Dolx_nok.Pattern

type semantics =
  | Any                       (* no access control *)
  | Bound of (int -> bool)    (* Cho et al.: bound nodes accessible *)
  | Path of (int -> bool)     (* Gabillon-Bruno: + connecting paths *)

let access = function Any -> fun _ -> true | Bound f | Path f -> f

let test_ok tree (p : Pattern.pnode) v =
  (match p.Pattern.test with
  | Pattern.Wildcard -> true
  | Pattern.Tag name -> Tree.tag_name tree v = name)
  && match p.Pattern.value with None -> true | Some s -> Tree.text tree v = s

(* Candidate bindings for pattern node [p] relative to context [ctx]. *)
let axis_candidates tree sem (p : Pattern.pnode) ctx =
  match p.Pattern.axis with
  | Pattern.Child -> Tree.children tree ctx
  | Pattern.Following_sibling ->
      let rec later u acc =
        if u = Tree.nil then List.rev acc else later (Tree.next_sibling tree u) (u :: acc)
      in
      later (Tree.next_sibling tree ctx) []
  | Pattern.Descendant ->
      let last = Tree.subtree_end tree ctx in
      let ok_path u =
        match sem with
        | Path f ->
            (* all nodes strictly between ctx and u must be accessible *)
            let rec up v = v = ctx || (f v && up (Tree.parent tree v)) in
            up (Tree.parent tree u)
        | Any | Bound _ -> true
      in
      List.filter ok_path (List.init (last - ctx) (fun i -> ctx + 1 + i))

(* Does [v], bound to [p], satisfy p's test/value/access and all its
   pattern children existentially? *)
let rec sat tree sem (p : Pattern.pnode) v =
  test_ok tree p v
  && access sem v
  && List.for_all
       (fun c -> List.exists (fun u -> sat tree sem c u) (axis_candidates tree sem c v))
       p.Pattern.children

(** All bindings of the returning node, in document order. *)
let eval tree sem (pattern : Pattern.t) =
  let trunk = Pattern.trunk pattern in
  let trunk_ids = List.map (fun (p : Pattern.pnode) -> p.Pattern.id) trunk in
  let preds (p : Pattern.pnode) =
    List.filter (fun (c : Pattern.pnode) -> not (List.mem c.Pattern.id trunk_ids)) p.Pattern.children
  in
  let node_ok (p : Pattern.pnode) v =
    test_ok tree p v
    && access sem v
    && List.for_all
         (fun c -> List.exists (fun u -> sat tree sem c u) (axis_candidates tree sem c v))
         (preds p)
  in
  match trunk with
  | [] -> []
  | first :: rest ->
      let all_nodes = List.init (Tree.size tree) Fun.id in
      let start =
        match first.Pattern.axis with
        | Pattern.Child -> List.filter (node_ok first) [ Tree.root ]
        | Pattern.Following_sibling -> invalid_arg "Reference: leading following-sibling"
        | Pattern.Descendant ->
            (* leading // from the document: no path constraint above *)
            List.filter (node_ok first) all_nodes
      in
      let step bindings (p : Pattern.pnode) =
        List.sort_uniq compare
          (List.concat_map
             (fun v -> List.filter (node_ok p) (axis_candidates tree sem p v))
             bindings)
      in
      List.sort_uniq compare (List.fold_left step start rest)
