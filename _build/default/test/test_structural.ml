(** End-to-end structural updates: tree edits + DOL surgery + store
    rebuild, cross-checked against recompilation and the query oracle. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Update = Dolx_core.Update
module Store = Dolx_core.Secure_store
module Engine = Dolx_nok.Engine
module Xpath = Dolx_nok.Xpath
module Tag_index = Dolx_index.Tag_index
module Prng = Dolx_util.Prng

let check = Alcotest.check

let test_remove_subtree_tree () =
  let t = Fixtures.figure2_tree () in
  let t' = Tree.remove_subtree t 7 (* h and its children *) in
  Tree.validate t';
  check Alcotest.string "structure" "a(b)(c)(d)(e(f)(g))" (Tree.structure_string t');
  Alcotest.check_raises "root is not removable"
    (Invalid_argument "Tree.remove_subtree: cannot remove the root") (fun () ->
      ignore (Tree.remove_subtree t 0))

let test_insert_subtree_tree () =
  let t = Fixtures.figure2_tree () in
  let sub = Tree.of_spec (Tree.El ("x", [ Tree.El ("y", []) ])) in
  (* as first child of e *)
  let t1, pos1 = Tree.insert_subtree t ~parent:4 ~after:Tree.nil sub in
  Tree.validate t1;
  check Alcotest.int "lands right after e" 5 pos1;
  check Alcotest.string "structure" "a(b)(c)(d)(e(x(y))(f)(g)(h(i)(j)(k)(l)))"
    (Tree.structure_string t1);
  (* after sibling f *)
  let t2, pos2 = Tree.insert_subtree t ~parent:4 ~after:5 sub in
  Tree.validate t2;
  check Alcotest.int "lands after f" 6 pos2;
  check Alcotest.string "structure 2" "a(b)(c)(d)(e(f)(x(y))(g)(h(i)(j)(k)(l)))"
    (Tree.structure_string t2);
  (* text survives *)
  let td = Fixtures.library_tree () in
  let td', _ = Tree.insert_subtree td ~parent:0 ~after:Tree.nil sub in
  check Alcotest.string "text preserved" (Tree.text td 3) (Tree.text td' 5)

let test_structural_update_end_to_end () =
  (* delete a subtree: tree + DOL + store stay consistent *)
  let tree = Fixtures.figure2_tree () in
  let bools = [| true; true; false; true; true; false; true; true; false; true; false; true |] in
  let dol = Dol.of_bool_array bools in
  let store = Store.create ~page_size:128 tree dol in
  (* remove subtree e = range [4, 11] *)
  let tree' = Tree.remove_subtree tree 4 in
  let dol' = Update.dol_delete dol ~lo:4 ~hi:11 in
  let store' = Store.rebuild store tree' dol' in
  check Alcotest.int "sizes agree" (Tree.size tree') (Dol.n_nodes dol');
  for v = 0 to Tree.size tree' - 1 do
    Alcotest.(check bool) (Printf.sprintf "store node %d" v) bools.(v)
      (Store.accessible store' ~subject:0 v)
  done;
  (* insert it back in front of b: structure differs from the original
     (e goes first) but the node count is restored *)
  let sub_tree =
    (* rebuild the removed fragment as its own document *)
    Dolx_xml.Parser.parse (Dolx_xml.Serializer.to_string ~v:4 tree)
  in
  let sub_dol = Update.extract_range dol ~lo:4 ~hi:11 in
  let tree2, pos = Tree.insert_subtree tree' ~parent:0 ~after:Tree.nil sub_tree in
  let dol2 = Update.dol_insert dol' ~at:pos sub_dol in
  let store2 = Store.rebuild store' tree2 dol2 in
  check Alcotest.int "restored size" (Tree.size tree) (Tree.size tree2);
  check Alcotest.string "e moved to front" "a(e(f)(g)(h(i)(j)(k)(l)))(b)(c)(d)"
    (Tree.structure_string tree2);
  (* accessibility follows the moved nodes *)
  let expected_at v2 =
    (* nodes 1..8 are the old 4..11; nodes 9..11 are the old 1..3 *)
    if v2 = 0 then bools.(0)
    else if v2 <= 8 then bools.(v2 + 3)
    else bools.(v2 - 8)
  in
  for v = 0 to Tree.size tree2 - 1 do
    Alcotest.(check bool) (Printf.sprintf "moved node %d" v) (expected_at v)
      (Store.accessible store2 ~subject:0 v)
  done

let prop_structural_random =
  Fixtures.qtest ~count:60 "random subtree moves keep tree+DOL+queries consistent"
    QCheck2.Gen.(quad (int_bound 100_000) (int_range 3 120) (int_bound 1000) (int_bound 1000))
    (fun (seed, n, pick1, pick2) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let bools = Fixtures.random_bools rng n 0.5 in
      let dol = Dol.of_bool_array bools in
      (* remove a random non-root subtree *)
      let v = 1 + (pick1 mod (n - 1)) in
      let hi = Tree.subtree_end tree v in
      let sub_tree = Dolx_xml.Parser.parse (Dolx_xml.Serializer.to_string ~v tree) in
      let sub_dol = Update.extract_range dol ~lo:v ~hi in
      let tree' = Tree.remove_subtree tree v in
      let dol' = Update.dol_delete dol ~lo:v ~hi in
      Tree.validate tree';
      Dol.validate dol';
      (* re-insert under a random surviving node *)
      let parent = pick2 mod Tree.size tree' in
      let tree2, pos = Tree.insert_subtree tree' ~parent ~after:Tree.nil sub_tree in
      let dol2 = Update.dol_insert dol' ~at:pos sub_dol in
      Tree.validate tree2;
      Dol.validate dol2;
      Tree.size tree2 = Dol.n_nodes dol2
      && Tree.size tree2 = n
      (* every node's verdict matches its tag-based identity:
         cross-check by evaluating a query on a rebuilt store against
         the oracle with the new accessibility array *)
      &&
      let bools2 = Array.init n (fun u -> Dol.accessible dol2 ~subject:0 u) in
      let store2 = Store.create ~page_size:256 tree2 dol2 in
      let index2 = Tag_index.build tree2 in
      let pattern = Xpath.parse "//a[b]" in
      (Engine.run store2 index2 pattern (Engine.Secure 0)).Engine.answers
      = Reference.eval tree2 (Reference.Bound (fun u -> bools2.(u))) pattern)

let test_queries_after_structural_change () =
  (* delete a whole region from an XMark doc and check Q1 adapts *)
  let tree = Dolx_workload.Xmark.generate_nodes ~seed:31 3000 in
  let n = Tree.size tree in
  let dol = Dol.of_bool_array (Array.make n true) in
  let store = Store.create tree dol in
  let index = Tag_index.build tree in
  let q = "/site/regions/africa/item" in
  let before = Engine.query store index q Engine.Insecure in
  Alcotest.(check bool) "has items before" true (List.length before.Engine.answers > 0);
  (* find africa and delete it *)
  let africa = List.hd (Engine.query store index "/site/regions/africa" Engine.Insecure).Engine.answers in
  let hi = Tree.subtree_end tree africa in
  let tree' = Tree.remove_subtree tree africa in
  let dol' = Update.dol_delete dol ~lo:africa ~hi in
  let store' = Store.rebuild store tree' dol' in
  let index' = Tag_index.build tree' in
  let after = Engine.query store' index' q Engine.Insecure in
  check Fixtures.int_list "no africa items left" [] after.Engine.answers;
  (* the other regions still answer *)
  let asia = Engine.query store' index' "/site/regions/asia/item" Engine.Insecure in
  Alcotest.(check bool) "asia unaffected" true (List.length asia.Engine.answers > 0)

let suite =
  [
    Alcotest.test_case "tree: remove subtree" `Quick test_remove_subtree_tree;
    Alcotest.test_case "tree: insert subtree" `Quick test_insert_subtree_tree;
    Alcotest.test_case "structural update end to end" `Quick
      test_structural_update_end_to_end;
    prop_structural_random;
    Alcotest.test_case "queries after structural change" `Quick
      test_queries_after_structural_change;
  ]
