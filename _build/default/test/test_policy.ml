(** Tests for [Dolx_policy]: subjects, ACL interning, rule propagation
    (Most-Specific-Override), labelings. *)

module Tree = Dolx_xml.Tree
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Acl = Dolx_policy.Acl
module Rule = Dolx_policy.Rule
module Propagate = Dolx_policy.Propagate
module Labeling = Dolx_policy.Labeling
module Bitset = Dolx_util.Bitset
module Prng = Dolx_util.Prng

let check = Alcotest.check

(* Standard setup: figure-2 tree, two users in one group, read/write. *)
let setup () =
  let tree = Fixtures.figure2_tree () in
  let subjects = Subject.create () in
  let alice = Subject.add_user subjects "alice" in
  let bob = Subject.add_user subjects "bob" in
  let staff = Subject.add_group subjects "staff" in
  Subject.add_membership subjects ~child:alice ~group:staff;
  let modes, read, write = Mode.read_write () in
  (tree, subjects, alice, bob, staff, modes, read, write)

let test_subject_registry () =
  let _, subjects, alice, bob, staff, _, _, _ = setup () in
  check Alcotest.int "count" 3 (Subject.count subjects);
  check Alcotest.string "name" "alice" (Subject.name subjects alice);
  Alcotest.(check bool) "alice is user" true (Subject.kind subjects alice = Subject.User);
  Alcotest.(check bool) "staff is group" true (Subject.kind subjects staff = Subject.Group);
  check Fixtures.int_list "closure of alice" (List.sort compare [ alice; staff ])
    (Subject.closure subjects alice);
  check Fixtures.int_list "closure of bob" [ bob ] (Subject.closure subjects bob);
  check Fixtures.int_list "users" [ alice; bob ] (Subject.users subjects);
  check Fixtures.int_list "groups" [ staff ] (Subject.groups subjects)

let test_subject_closure_transitive () =
  let subjects = Subject.create () in
  let u = Subject.add_user subjects "u" in
  let g1 = Subject.add_group subjects "g1" in
  let g2 = Subject.add_group subjects "g2" in
  Subject.add_membership subjects ~child:u ~group:g1;
  Subject.add_membership subjects ~child:g1 ~group:g2;
  check Fixtures.int_list "transitive" (List.sort compare [ u; g1; g2 ])
    (Subject.closure subjects u)

let test_acl_interning () =
  let store = Acl.create ~width:4 in
  let a = Acl.intern store (Bitset.of_list 4 [ 0; 2 ]) in
  let b = Acl.intern store (Bitset.of_list 4 [ 0; 2 ]) in
  let c = Acl.intern store (Bitset.of_list 4 [ 1 ]) in
  check Alcotest.int "same bits same id" a b;
  Alcotest.(check bool) "distinct bits distinct id" true (a <> c);
  check Alcotest.int "count" 2 (Acl.count store);
  Alcotest.(check bool) "grants" true (Acl.grants store a 2);
  Alcotest.(check bool) "denies" false (Acl.grants store a 1);
  let d = Acl.with_bit store a 2 true in
  check Alcotest.int "with_bit no-op" a d;
  let e = Acl.with_bit store a 1 true in
  Alcotest.(check bool) "with_bit new id" true (e <> a);
  check Alcotest.int "count grew" 3 (Acl.count store)

let test_propagation_subtree () =
  let tree, subjects, alice, _, _, modes, read, _ = setup () in
  ignore modes;
  (* grant alice read on subtree e (preorder 4) *)
  let rules = [ Rule.grant ~subject:alice ~mode:read 4 ] in
  let lab = Propagate.compile tree ~subjects ~mode:read rules in
  for v = 0 to Tree.size tree - 1 do
    let expected = v >= 4 && v <= 11 in
    Alcotest.(check bool)
      (Printf.sprintf "node %d" v)
      expected
      (Labeling.accessible lab ~subject:alice v)
  done

let test_propagation_mso_override () =
  let tree, subjects, alice, _, _, _, read, _ = setup () in
  (* grant on root subtree, deny on subtree h: closest labeled ancestor wins *)
  let rules =
    [ Rule.grant ~subject:alice ~mode:read 0; Rule.deny ~subject:alice ~mode:read 7 ]
  in
  let lab = Propagate.compile tree ~subjects ~mode:read rules in
  Alcotest.(check bool) "root accessible" true (Labeling.accessible lab ~subject:alice 0);
  Alcotest.(check bool) "e accessible" true (Labeling.accessible lab ~subject:alice 4);
  Alcotest.(check bool) "h denied" false (Labeling.accessible lab ~subject:alice 7);
  Alcotest.(check bool) "l denied (inherits from h)" false
    (Labeling.accessible lab ~subject:alice 11)

let test_propagation_self_scope () =
  let tree, subjects, alice, _, _, _, read, _ = setup () in
  let rules = [ Rule.grant ~scope:Rule.Self ~subject:alice ~mode:read 4 ] in
  let lab = Propagate.compile tree ~subjects ~mode:read rules in
  Alcotest.(check bool) "e itself" true (Labeling.accessible lab ~subject:alice 4);
  Alcotest.(check bool) "f not affected" false (Labeling.accessible lab ~subject:alice 5)

let test_propagation_deny_precedence () =
  let tree, subjects, alice, _, _, _, read, _ = setup () in
  (* conflicting rules at the same node: deny wins *)
  let rules =
    [ Rule.grant ~subject:alice ~mode:read 4; Rule.deny ~subject:alice ~mode:read 4 ]
  in
  let lab = Propagate.compile tree ~subjects ~mode:read rules in
  Alcotest.(check bool) "deny beats grant" false (Labeling.accessible lab ~subject:alice 4)

let test_propagation_open_default () =
  let tree, subjects, alice, bob, _, _, read, _ = setup () in
  let rules = [ Rule.deny ~subject:alice ~mode:read 4 ] in
  let lab = Propagate.compile tree ~subjects ~mode:read ~default:Propagate.Open rules in
  Alcotest.(check bool) "default open" true (Labeling.accessible lab ~subject:bob 11);
  Alcotest.(check bool) "alice denied under e" false (Labeling.accessible lab ~subject:alice 5)

let test_propagation_mode_separation () =
  let tree, subjects, alice, _, _, modes, read, write = setup () in
  let rules = [ Rule.grant ~subject:alice ~mode:write 0 ] in
  let labs = Propagate.compile_all_modes tree ~subjects ~modes rules in
  Alcotest.(check bool) "write granted" true (Labeling.accessible labs.(write) ~subject:alice 3);
  Alcotest.(check bool) "read not granted" false (Labeling.accessible labs.(read) ~subject:alice 3)

let test_labeling_user_via_group () =
  let tree, subjects, alice, bob, staff, _, read, _ = setup () in
  let rules = [ Rule.grant ~subject:staff ~mode:read 0 ] in
  let lab = Propagate.compile tree ~subjects ~mode:read rules in
  (* alice is in staff; bob is not *)
  Alcotest.(check bool) "alice via group" true
    (Labeling.accessible_user lab ~registry:subjects ~user:alice 5);
  Alcotest.(check bool) "bob not" false
    (Labeling.accessible_user lab ~registry:subjects ~user:bob 5);
  Alcotest.(check bool) "alice's own bit clear" false
    (Labeling.accessible lab ~subject:alice 5)

let test_labeling_counts_and_project () =
  let tree, subjects, alice, bob, _, _, read, _ = setup () in
  let rules =
    [ Rule.grant ~subject:alice ~mode:read 4; Rule.grant ~subject:bob ~mode:read 0 ]
  in
  let lab = Propagate.compile tree ~subjects ~mode:read rules in
  check Alcotest.int "alice count" 8 (Labeling.count_accessible lab ~subject:alice);
  check Alcotest.int "bob count" 12 (Labeling.count_accessible lab ~subject:bob);
  (* project to [bob] only *)
  let p = Labeling.project lab [| bob |] in
  check Alcotest.int "projected width" 1 (Acl.width (Labeling.store p));
  Alcotest.(check bool) "bob now subject 0" true (Labeling.accessible p ~subject:0 11);
  check Alcotest.int "projected distinct ACLs" 1 (Labeling.distinct_acls p)

let prop_propagation_matches_bruteforce =
  Fixtures.qtest ~count:40 "propagation = per-node nearest-rule scan"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 2 60))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let subjects = Subject.create () in
      let s0 = Subject.add_user subjects "s0" in
      let modes = Mode.create () in
      let m = Mode.add modes "read" in
      let n_rules = 1 + Prng.int rng 8 in
      let rules =
        List.init n_rules (fun _ ->
            let node = Prng.int rng n in
            let sign = if Prng.bool rng ~p:0.5 then Rule.Grant else Rule.Deny in
            let scope = if Prng.bool rng ~p:0.8 then Rule.Subtree else Rule.Self in
            Rule.make ~subject:s0 ~mode:m ~node ~sign ~scope)
      in
      let lab = Propagate.compile tree ~subjects ~mode:m rules in
      (* Brute force: for node v, find nearest ancestor (or self) with an
         applicable rule; denies beat grants at equal distance. *)
      let expected v =
        (* Nearest node (self first, then ancestors) with an applicable
           rule decides.  At the node itself, Self rules are more specific
           than Subtree rules; within a class, Deny beats Grant. *)
        let verdict rs =
          if rs = [] then None
          else Some (List.for_all (fun (r : Rule.t) -> r.Rule.sign = Rule.Grant) rs)
        in
        let at u ~self =
          let here scope =
            List.filter (fun (r : Rule.t) -> r.Rule.node = u && r.Rule.scope = scope) rules
          in
          if self then
            match verdict (here Rule.Self) with
            | Some b -> Some b
            | None -> verdict (here Rule.Subtree)
          else verdict (here Rule.Subtree)
        in
        let rec up u ~self =
          if u = Tree.nil then false
          else
            match at u ~self with
            | Some b -> b
            | None -> up (Tree.parent tree u) ~self:false
        in
        up v ~self:true
      in
      let ok = ref true in
      for v = 0 to n - 1 do
        if Labeling.accessible lab ~subject:s0 v <> expected v then ok := false
      done;
      !ok)

let test_materialize_users () =
  let tree, subjects, alice, bob, staff, _, read, _ = setup () in
  let rules =
    [ Rule.grant ~subject:staff ~mode:read 4; Rule.grant ~subject:bob ~mode:read 7 ]
  in
  let lab = Propagate.compile tree ~subjects ~mode:read rules in
  let ulab, users = Labeling.materialize_users lab ~registry:subjects in
  check Fixtures.int_list "user order" [ alice; bob ] (Array.to_list users);
  (* alice (bit 0) gets staff's grant; bob (bit 1) keeps his own *)
  for v = 0 to Tree.size tree - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "alice effective at %d" v)
      (Labeling.accessible_user lab ~registry:subjects ~user:alice v)
      (Labeling.accessible ulab ~subject:0 v);
    Alcotest.(check bool)
      (Printf.sprintf "bob effective at %d" v)
      (Labeling.accessible_user lab ~registry:subjects ~user:bob v)
      (Labeling.accessible ulab ~subject:1 v)
  done;
  (* a DOL over the materialized labeling answers user queries directly *)
  let dol = Dolx_core.Dol.of_labeling ulab in
  Alcotest.(check bool) "alice reads 5 via group" true
    (Dolx_core.Dol.accessible dol ~subject:0 5)

let suite =
  [
    Alcotest.test_case "subject registry" `Quick test_subject_registry;
    Alcotest.test_case "subject closure transitive" `Quick test_subject_closure_transitive;
    Alcotest.test_case "acl interning" `Quick test_acl_interning;
    Alcotest.test_case "propagation subtree" `Quick test_propagation_subtree;
    Alcotest.test_case "propagation MSO override" `Quick test_propagation_mso_override;
    Alcotest.test_case "propagation self scope" `Quick test_propagation_self_scope;
    Alcotest.test_case "propagation deny precedence" `Quick test_propagation_deny_precedence;
    Alcotest.test_case "propagation open default" `Quick test_propagation_open_default;
    Alcotest.test_case "propagation mode separation" `Quick test_propagation_mode_separation;
    Alcotest.test_case "user rights via group" `Quick test_labeling_user_via_group;
    Alcotest.test_case "labeling counts + project" `Quick test_labeling_counts_and_project;
    prop_propagation_matches_bruteforce;
    Alcotest.test_case "materialize effective users" `Quick test_materialize_users;
  ]
