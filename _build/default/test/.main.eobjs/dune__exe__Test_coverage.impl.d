test/test_coverage.ml: Alcotest Array Bytes Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_storage Dolx_util Dolx_xml Fixtures Fmt List Option String
