test/test_xml.ml: Alcotest Dolx_util Dolx_xml Fixtures List QCheck2
