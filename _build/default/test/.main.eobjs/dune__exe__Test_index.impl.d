test/test_index.ml: Alcotest Array Dolx_core Dolx_index Dolx_nok Dolx_util Dolx_xml Fixtures Int List Map Option QCheck2
