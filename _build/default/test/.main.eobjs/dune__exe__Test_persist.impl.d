test/test_persist.ml: Alcotest Array Bytes Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_storage Dolx_util Dolx_workload Dolx_xml Filename Fixtures Fun List Option Printf QCheck2 Sys
