test/test_cam.ml: Alcotest Array Dolx_cam Dolx_core Dolx_util Dolx_workload Dolx_xml Fixtures Printf QCheck2
