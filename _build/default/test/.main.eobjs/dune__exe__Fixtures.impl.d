test/fixtures.ml: Alcotest Array Dolx_util Dolx_xml QCheck2 QCheck_alcotest
