test/test_edge.ml: Alcotest Array Bytes Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_storage Dolx_util Dolx_workload Dolx_xml Fixtures List Printf QCheck2
