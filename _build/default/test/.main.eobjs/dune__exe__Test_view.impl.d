test/test_view.ml: Alcotest Array Dolx_core Dolx_policy Dolx_util Dolx_xml Fixtures Fun List Option Printf QCheck2
