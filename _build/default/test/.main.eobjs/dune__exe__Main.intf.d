test/main.mli:
