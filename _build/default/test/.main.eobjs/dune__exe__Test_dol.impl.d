test/test_dol.ml: Alcotest Array Dolx_core Dolx_policy Dolx_util Dolx_xml Fixtures Fun List Printf QCheck2
