test/reference.ml: Dolx_nok Dolx_xml Fun List
