test/test_nok.ml: Alcotest Array Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_util Dolx_workload Dolx_xml Fixtures List Option Printexc Printf QCheck2 Reference
