test/test_policy.ml: Alcotest Array Dolx_core Dolx_policy Dolx_util Dolx_xml Fixtures List Printf QCheck2
