test/test_structural.ml: Alcotest Array Dolx_core Dolx_index Dolx_nok Dolx_util Dolx_workload Dolx_xml Fixtures List Printf QCheck2 Reference
