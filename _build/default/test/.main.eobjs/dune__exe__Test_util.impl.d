test/test_util.ml: Alcotest Array Bytes Dolx_util Fixtures Float Fun List QCheck2
