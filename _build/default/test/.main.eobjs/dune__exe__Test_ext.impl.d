test/test_ext.ml: Alcotest Array Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_util Dolx_workload Dolx_xml Fixtures Fun List Printf QCheck2 Reference
