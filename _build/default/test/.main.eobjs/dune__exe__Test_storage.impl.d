test/test_storage.ml: Alcotest Array Bytes Dolx_core Dolx_storage Dolx_util Dolx_xml Fixtures Fun List Printf QCheck2
