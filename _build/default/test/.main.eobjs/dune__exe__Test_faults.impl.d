test/test_faults.ml: Alcotest Array Bytes Char Dolx_core Dolx_storage Dolx_util Dolx_workload Dolx_xml Fixtures List Printexc Printf QCheck2 String
