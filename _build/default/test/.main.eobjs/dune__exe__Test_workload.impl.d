test/test_workload.ml: Alcotest Array Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_util Dolx_workload Dolx_xml Fixtures Float Fmt Fun List Printf
