test/test_secure.ml: Alcotest Array Dolx_core Dolx_index Dolx_nok Dolx_storage Dolx_util Dolx_workload Dolx_xml Fixtures List Printf QCheck2
