(** Tests for secure views and the policy-file language. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Secure_view = Dolx_core.Secure_view
module Policy_file = Dolx_policy.Policy_file
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Rule = Dolx_policy.Rule
module Propagate = Dolx_policy.Propagate
module Labeling = Dolx_policy.Labeling
module Prng = Dolx_util.Prng

let check = Alcotest.check

(* figure-2 tree with subtree e granted, node h revoked *)
let setup () =
  let tree = Fixtures.figure2_tree () in
  let bools = [| true; false; false; false; true; true; true; false; true; true; true; true |] in
  (tree, Dol.of_bool_array bools, bools)

let test_view_prune () =
  let tree, dol, _ = setup () in
  let v = Secure_view.view ~semantics:Secure_view.Prune_subtree tree dol ~subject:0 in
  (* root kept; b,c,d pruned; e,f,g kept; h pruned WITH its accessible
     descendants i..l *)
  check Alcotest.string "pruned structure" "a(e(f)(g))" (Tree.structure_string v)

let test_view_lift () =
  let tree, dol, _ = setup () in
  let v = Secure_view.view ~semantics:Secure_view.Lift_children tree dol ~subject:0 in
  (* i..l survive, lifted under e *)
  check Alcotest.string "lifted structure" "a(e(f)(g)(i)(j)(k)(l))" (Tree.structure_string v)

let test_view_root_inaccessible () =
  let tree = Fixtures.figure2_tree () in
  let dol = Dol.of_bool_array (Array.make 12 false) in
  (match Secure_view.view tree dol ~subject:0 with
  | exception Secure_view.Root_inaccessible -> ()
  | _ -> Alcotest.fail "expected Root_inaccessible")

let test_view_preserves_text () =
  let tree = Fixtures.library_tree () in
  let dol = Dol.of_bool_array (Array.make (Tree.size tree) true) in
  let v = Secure_view.view tree dol ~subject:0 in
  check Alcotest.string "identical structure" (Tree.structure_string tree)
    (Tree.structure_string v);
  for u = 0 to Tree.size tree - 1 do
    check Alcotest.string (Printf.sprintf "text %d" u) (Tree.text tree u) (Tree.text v u)
  done

let test_visible_nodes_counts () =
  let tree, dol, bools = setup () in
  let prune = Secure_view.visible_nodes tree dol ~subject:0 in
  check Fixtures.int_list "prune keeps reachable accessible" [ 0; 4; 5; 6 ] prune;
  let lift =
    Secure_view.visible_nodes ~semantics:Secure_view.Lift_children tree dol ~subject:0
  in
  let expected =
    List.filter (fun v -> bools.(v)) (List.init (Tree.size tree) Fun.id)
  in
  check Fixtures.int_list "lift keeps all accessible" expected lift;
  check Alcotest.int "count agrees" (List.length prune)
    (Secure_view.visible_count tree dol ~subject:0)

let prop_view_sizes =
  Fixtures.qtest ~count:80 "view node sets are consistent with the DOL"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 120))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let bools = Fixtures.random_bools rng n 0.6 in
      bools.(0) <- true;
      let dol = Dol.of_bool_array bools in
      let prune = Secure_view.visible_nodes tree dol ~subject:0 in
      let lift =
        Secure_view.visible_nodes ~semantics:Secure_view.Lift_children tree dol ~subject:0
      in
      (* prune ⊆ lift = accessible set; prune closed under parents *)
      List.for_all (fun v -> List.mem v lift) prune
      && List.for_all (fun v -> bools.(v)) lift
      && List.length lift = Array.fold_left (fun a b -> if b then a + 1 else a) 0 bools
      && List.for_all
           (fun v -> v = Tree.root || List.mem (Tree.parent tree v) prune)
           prune)

(* --- policy files --- *)

let sample_policy =
  {|# demo
    mode read
    mode write
    user alice
    group staff   # trailing comment
    member alice staff

    grant staff read 0
    deny  alice read 4
    grant alice write 7 self
  |}

let test_policy_parse () =
  let directives = Policy_file.parse_string sample_policy in
  check Alcotest.int "directive count" 8 (List.length directives)

let test_policy_compile () =
  let subjects, modes, rules = Policy_file.load sample_policy in
  check Alcotest.int "subjects" 2 (Subject.count subjects);
  check Alcotest.int "modes" 2 (Mode.count modes);
  check Alcotest.int "rules" 3 (List.length rules);
  let alice = Option.get (Subject.find_opt subjects "alice") in
  let staff = Option.get (Subject.find_opt subjects "staff") in
  check Fixtures.int_list "membership" (List.sort compare [ alice; staff ])
    (Subject.closure subjects alice);
  let tree = Fixtures.figure2_tree () in
  let lab = Propagate.compile tree ~subjects ~mode:0 rules in
  Alcotest.(check bool) "staff reads node 11" true (Labeling.accessible lab ~subject:staff 11);
  Alcotest.(check bool) "alice denied under 4" false (Labeling.accessible lab ~subject:alice 5);
  (* alice's own subject bit is clear; her effective rights come from the
     staff group through the subject hierarchy *)
  Alcotest.(check bool) "alice's own bit clear at node 1" false
    (Labeling.accessible lab ~subject:alice 1);
  Alcotest.(check bool) "alice reads node 1 via staff" true
    (Labeling.accessible_user lab ~registry:subjects ~user:alice 1)

let test_policy_resolver () =
  let resolved = ref [] in
  let resolve key =
    resolved := key :: !resolved;
    [ 3; 7 ]
  in
  let _, _, rules =
    Policy_file.load ~resolve "mode m\nuser u\ngrant u m @some/path\n"
  in
  check Alcotest.(list string) "resolver called" [ "some/path" ] !resolved;
  check Alcotest.int "one rule per anchor" 2 (List.length rules);
  check Fixtures.int_list "anchors" [ 3; 7 ]
    (List.map (fun (r : Rule.t) -> r.Rule.node) rules)

let test_policy_errors () =
  let syntax s =
    match Policy_file.parse_string s with
    | exception Policy_file.Syntax_error _ -> ()
    | _ -> Alcotest.failf "expected syntax error for %S" s
  in
  syntax "frobnicate x";
  syntax "grant onlytwo args";
  let fails s =
    match Policy_file.load s with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "expected failure for %S" s
  in
  fails "mode m\ngrant ghost m 0";
  fails "user u\ngrant u ghostmode 0";
  fails "mode m\nuser u\ngrant u m notanumber"

let prop_policy_print_parse_roundtrip =
  Fixtures.qtest ~count:100 "policy print/parse roundtrip"
    QCheck2.Gen.(
      list_size (int_bound 20)
        (oneof
           [
             map (fun i -> Policy_file.Mode (Printf.sprintf "m%d" i)) (int_bound 5);
             map (fun i -> Policy_file.User (Printf.sprintf "u%d" i)) (int_bound 5);
             map (fun i -> Policy_file.Group (Printf.sprintf "g%d" i)) (int_bound 5);
             map2
               (fun a b ->
                 Policy_file.Member (Printf.sprintf "u%d" a, Printf.sprintf "g%d" b))
               (int_bound 5) (int_bound 5);
             map
               (fun (a, m, node, (grant, self)) ->
                 Policy_file.Access
                   {
                     sign = (if grant then Rule.Grant else Rule.Deny);
                     subject = Printf.sprintf "u%d" a;
                     mode = Printf.sprintf "m%d" m;
                     node = string_of_int node;
                     scope = (if self then Rule.Self else Rule.Subtree);
                   })
               (quad (int_bound 5) (int_bound 5) (int_bound 100) (pair bool bool));
           ]))
    (fun directives ->
      Policy_file.parse_string (Policy_file.print directives) = directives)

let suite =
  [
    Alcotest.test_case "view: prune semantics" `Quick test_view_prune;
    Alcotest.test_case "view: lift semantics" `Quick test_view_lift;
    Alcotest.test_case "view: root inaccessible" `Quick test_view_root_inaccessible;
    Alcotest.test_case "view: preserves text" `Quick test_view_preserves_text;
    Alcotest.test_case "view: visible nodes" `Quick test_visible_nodes_counts;
    prop_view_sizes;
    Alcotest.test_case "policy: parse" `Quick test_policy_parse;
    Alcotest.test_case "policy: compile" `Quick test_policy_compile;
    Alcotest.test_case "policy: resolver" `Quick test_policy_resolver;
    Alcotest.test_case "policy: errors" `Quick test_policy_errors;
    prop_policy_print_parse_roundtrip;
  ]
