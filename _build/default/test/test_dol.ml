(** Tests for the DOL core: construction, lookup, codebook, streaming,
    updates and Proposition 1. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Update = Dolx_core.Update
module Labeling = Dolx_policy.Labeling
module Acl = Dolx_policy.Acl
module Bitset = Dolx_util.Bitset
module Prng = Dolx_util.Prng

let check = Alcotest.check

(* The single-subject example of Figure 1(a): on the figure-2 tree, make
   nodes b, c, d and the h-subtree accessible. *)
let figure1_bools = [| false; true; true; true; false; false; false; true; true; true; true; true |]

let test_single_subject_transitions () =
  let dol = Dol.of_bool_array figure1_bools in
  (* document order: a(-) b(+) c(+) d(+) e(-) f(-) g(-) h(+) ... l(+)
     transitions at 0(-), 1(+), 4(-), 7(+) *)
  check Alcotest.int "transition count" 4 (Dol.transition_count dol);
  check Fixtures.int_list "transition preorders" [ 0; 1; 4; 7 ]
    (List.map fst (Dol.transitions dol));
  Dol.validate dol

let test_lookup_all_nodes () =
  let dol = Dol.of_bool_array figure1_bools in
  Array.iteri
    (fun v expected ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d" v)
        expected
        (Dol.accessible dol ~subject:0 v))
    figure1_bools

let test_root_always_transition () =
  let dol = Dol.of_bool_array (Array.make 5 true) in
  check Alcotest.int "uniform doc has exactly one transition" 1 (Dol.transition_count dol);
  Alcotest.(check bool) "root is transition" true (Dol.is_transition dol 0);
  Alcotest.(check bool) "node 3 is not" false (Dol.is_transition dol 3)

(* Multi-subject: Figure 1(b)/(c) — two subjects, codebook compression. *)
let two_subject_labeling () =
  let store = Acl.create ~width:2 in
  let code l = Acl.intern store (Bitset.of_list 2 l) in
  (* node ACLs chosen to exercise repeated codes *)
  let node_acl =
    [|
      code [ 0 ];      (* a: subject 0 only *)
      code [ 0; 1 ];   (* b *)
      code [ 0; 1 ];   (* c: same as b -> no transition *)
      code [ 1 ];      (* d *)
      code [ 0 ];      (* e: same ACL as a -> code reused *)
      code [ 0 ];      (* f *)
      code [ 0; 1 ];   (* g *)
      code [ 0; 1 ];   (* h *)
      code [ 1 ];      (* i *)
      code [ 1 ];      (* j *)
      code [ 0 ];      (* k *)
      code [ 0 ];      (* l *)
    |]
  in
  Labeling.create ~store ~node_acl

let test_multi_subject_codebook () =
  let lab = two_subject_labeling () in
  let dol = Dol.of_labeling lab in
  (* transitions at 0,1,3,4,6,8,10 *)
  check Fixtures.int_list "transitions" [ 0; 1; 3; 4; 6; 8; 10 ]
    (List.map fst (Dol.transitions dol));
  (* only 3 distinct ACLs -> 3 codebook entries (paper Fig. 1(c): "the
     codebook itself contains three entries") *)
  check Alcotest.int "codebook entries" 3 (Codebook.count (Dol.codebook dol));
  Dol.verify_against dol lab

let test_streaming_equals_batch () =
  let lab = two_subject_labeling () in
  let batch = Dol.of_labeling lab in
  let b = Dol.Streaming.create ~width:2 in
  let emitted = ref 0 in
  for v = 0 to Labeling.size lab - 1 do
    match Dol.Streaming.push b (Labeling.acl lab v) with
    | Some _ -> incr emitted
    | None -> ()
  done;
  let streamed = Dol.Streaming.finish b in
  check Alcotest.int "same transition count" (Dol.transition_count batch)
    (Dol.transition_count streamed);
  check Alcotest.int "emitted = transitions" (Dol.transition_count batch) !emitted;
  check Fixtures.int_list "same preorders"
    (List.map fst (Dol.transitions batch))
    (List.map fst (Dol.transitions streamed));
  Dol.verify_against streamed lab

let prop_dol_agrees_with_labeling =
  Fixtures.qtest ~count:100 "DOL lookup = labeling on random data"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 1 300) (int_range 1 9))
    (fun (seed, n, p10) ->
      let rng = Prng.create seed in
      let bools = Fixtures.random_bools rng n (float_of_int p10 /. 10.0) in
      let dol = Dol.of_bool_array bools in
      Dol.validate dol;
      Array.for_all Fun.id
        (Array.mapi (fun v b -> Dol.accessible dol ~subject:0 v = b) bools))

let prop_transition_count_is_boundaries =
  Fixtures.qtest ~count:100 "transition count = boundary count"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 300))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let bools = Fixtures.random_bools rng n 0.5 in
      let dol = Dol.of_bool_array bools in
      let boundaries = ref 1 in
      for v = 1 to n - 1 do
        if bools.(v) <> bools.(v - 1) then incr boundaries
      done;
      Dol.transition_count dol = !boundaries)

let test_storage_accounting () =
  let lab = two_subject_labeling () in
  let dol = Dol.of_labeling lab in
  (* 3 entries of 1 byte each (2 subjects) *)
  check Alcotest.int "codebook bytes" 3 (Dol.codebook_bytes dol);
  (* 7 transitions, 1-byte codes (< 256 entries) *)
  check Alcotest.int "embedded bytes" 7 (Dol.embedded_bytes dol);
  check Alcotest.int "total" 10 (Dol.storage_bytes dol);
  Alcotest.(check (float 1e-9)) "density" (7.0 /. 12.0) (Dol.transition_density dol)

(* --- updates --- *)

let apply_bools_update bools ~lo ~hi b =
  let out = Array.copy bools in
  for v = lo to hi do
    out.(v) <- b
  done;
  out

let test_update_set_node () =
  let bools = Array.copy figure1_bools in
  let dol = Dol.of_bool_array bools in
  let before = Dol.transition_count dol in
  let changed = Update.dol_set_node dol ~subject:0 ~grant:true 5 in
  Alcotest.(check bool) "changed" true changed;
  let expected = apply_bools_update bools ~lo:5 ~hi:5 true in
  Array.iteri
    (fun v b ->
      Alcotest.(check bool) (Printf.sprintf "node %d" v) b (Dol.accessible dol ~subject:0 v))
    expected;
  Alcotest.(check bool) "proposition 1" true (Dol.transition_count dol <= before + 2);
  Dol.validate dol

let test_update_set_node_noop () =
  let dol = Dol.of_bool_array (Array.copy figure1_bools) in
  let before = Dol.transition_count dol in
  let changed = Update.dol_set_node dol ~subject:0 ~grant:true 1 in
  Alcotest.(check bool) "no-op detected" false changed;
  check Alcotest.int "unchanged" before (Dol.transition_count dol)

let test_update_set_node_merges () =
  (* setting the single inaccessible node in the middle of an accessible
     run must *reduce* transitions *)
  let bools = [| true; true; false; true; true |] in
  let dol = Dol.of_bool_array bools in
  check Alcotest.int "3 transitions initially" 3 (Dol.transition_count dol);
  ignore (Update.dol_set_node dol ~subject:0 ~grant:true 2);
  check Alcotest.int "collapses to 1" 1 (Dol.transition_count dol);
  Dol.validate dol

let test_update_set_subtree () =
  let tree = Fixtures.figure2_tree () in
  let bools = Array.copy figure1_bools in
  let dol = Dol.of_bool_array bools in
  let before = Dol.transition_count dol in
  (* grant the whole subtree of e (4..11) *)
  Update.dol_set_subtree dol tree ~subject:0 ~grant:true 4;
  let expected = apply_bools_update bools ~lo:4 ~hi:11 true in
  Array.iteri
    (fun v b ->
      Alcotest.(check bool) (Printf.sprintf "node %d" v) b (Dol.accessible dol ~subject:0 v))
    expected;
  Alcotest.(check bool) "proposition 1" true (Dol.transition_count dol <= before + 2);
  Dol.validate dol

let prop_update_node_semantics_and_prop1 =
  Fixtures.qtest ~count:150 "random node updates: semantics + Proposition 1"
    QCheck2.Gen.(quad (int_bound 100_000) (int_range 1 200) (int_bound 10_000) bool)
    (fun (seed, n, pos, grant) ->
      let rng = Prng.create seed in
      let bools = Fixtures.random_bools rng n 0.5 in
      let dol = Dol.of_bool_array bools in
      let before = Dol.transition_count dol in
      let v = pos mod n in
      ignore (Update.dol_set_node dol ~subject:0 ~grant v);
      Dol.validate dol;
      let expected = apply_bools_update bools ~lo:v ~hi:v grant in
      Dol.transition_count dol <= before + 2
      && Array.for_all Fun.id
           (Array.mapi (fun u b -> Dol.accessible dol ~subject:0 u = b) expected))

let prop_update_range_semantics_and_prop1 =
  Fixtures.qtest ~count:150 "random range updates: semantics + Proposition 1"
    QCheck2.Gen.(
      quad (int_bound 100_000) (int_range 1 200) (pair (int_bound 10_000) (int_bound 10_000)) bool)
    (fun (seed, n, (a, b), grant) ->
      let rng = Prng.create seed in
      let bools = Fixtures.random_bools rng n 0.5 in
      let dol = Dol.of_bool_array bools in
      let before = Dol.transition_count dol in
      let lo = min (a mod n) (b mod n) and hi = max (a mod n) (b mod n) in
      Update.dol_set_range dol ~subject:0 ~grant ~lo ~hi;
      Dol.validate dol;
      let expected = apply_bools_update bools ~lo ~hi grant in
      Dol.transition_count dol <= before + 2
      && Array.for_all Fun.id
           (Array.mapi (fun u x -> Dol.accessible dol ~subject:0 u = x) expected))

let test_update_multi_subject_range_preserves_others () =
  let lab = two_subject_labeling () in
  let dol = Dol.of_labeling lab in
  (* deny subject 1 on range 1..7; subject 0 bits must be untouched *)
  Update.dol_set_range dol ~subject:1 ~grant:false ~lo:1 ~hi:7;
  for v = 0 to 11 do
    Alcotest.(check bool)
      (Printf.sprintf "subject 0 at %d" v)
      (Labeling.accessible lab ~subject:0 v)
      (Dol.accessible dol ~subject:0 v);
    let expected1 = if v >= 1 && v <= 7 then false else Labeling.accessible lab ~subject:1 v in
    Alcotest.(check bool) (Printf.sprintf "subject 1 at %d" v) expected1
      (Dol.accessible dol ~subject:1 v)
  done

let test_insert_delete_move () =
  let bools = [| true; true; false; false; true |] in
  let dol = Dol.of_bool_array bools in
  let sub_bools = [| false; true |] in
  let sub = Dol.of_bool_array sub_bools in
  let t_main = Dol.transition_count dol and t_sub = Dol.transition_count sub in
  (* insert at position 2 *)
  let merged = Update.dol_insert dol ~at:2 sub in
  check Alcotest.int "size" 7 (Dol.n_nodes merged);
  let expected = [| true; true; false; true; false; false; true |] in
  Array.iteri
    (fun v b ->
      Alcotest.(check bool) (Printf.sprintf "ins node %d" v) b
        (Dol.accessible merged ~subject:0 v))
    expected;
  Alcotest.(check bool) "prop 1 (insert)" true
    (Dol.transition_count merged <= t_main + t_sub + 2);
  (* delete the inserted range back out *)
  let restored = Update.dol_delete merged ~lo:2 ~hi:3 in
  check Alcotest.int "restored size" 5 (Dol.n_nodes restored);
  Array.iteri
    (fun v b ->
      Alcotest.(check bool) (Printf.sprintf "del node %d" v) b
        (Dol.accessible restored ~subject:0 v))
    bools;
  Dol.validate restored

let prop_insert_then_delete_roundtrip =
  Fixtures.qtest ~count:100 "insert/delete roundtrip on random data"
    QCheck2.Gen.(
      quad (int_bound 100_000) (int_range 2 150) (int_range 1 50) (int_bound 10_000))
    (fun (seed, n, m, posr) ->
      let rng = Prng.create seed in
      let bools = Fixtures.random_bools rng n 0.5 in
      let sub_bools = Fixtures.random_bools rng m 0.5 in
      let dol = Dol.of_bool_array bools in
      let sub = Dol.of_bool_array sub_bools in
      let at = 1 + (posr mod n) in
      let t0 = Dol.transition_count dol and ts = Dol.transition_count sub in
      let merged = Update.dol_insert dol ~at sub in
      Dol.validate merged;
      let prop1 = Dol.transition_count merged <= t0 + ts + 2 in
      (* merged semantics *)
      let expected v =
        if v < at then bools.(v)
        else if v < at + m then sub_bools.(v - at)
        else bools.(v - m)
      in
      let sem_ok = ref true in
      for v = 0 to n + m - 1 do
        if Dol.accessible merged ~subject:0 v <> expected v then sem_ok := false
      done;
      let restored = Dol.of_bool_array bools in
      let deleted = Update.dol_delete merged ~lo:at ~hi:(at + m - 1) in
      Dol.validate deleted;
      let same = ref true in
      for v = 0 to n - 1 do
        if Dol.accessible deleted ~subject:0 v <> Dol.accessible restored ~subject:0 v then
          same := false
      done;
      prop1 && !sem_ok && !same)

let test_move () =
  let bools = [| true; false; false; true; true; false |] in
  let dol = Dol.of_bool_array bools in
  (* move range 1..2 to start at position 3 of the post-delete doc
     (post-delete = [t; t; t; f], insert at 3 -> [t; t; t; f; f; f]) *)
  let moved = Update.dol_move dol ~lo:1 ~hi:2 ~at:3 in
  let expected = [| true; true; true; false; false; false |] in
  Array.iteri
    (fun v b ->
      Alcotest.(check bool) (Printf.sprintf "moved %d" v) b
        (Dol.accessible moved ~subject:0 v))
    expected;
  Dol.validate moved

let test_add_remove_subject () =
  let lab = two_subject_labeling () in
  let dol = Dol.of_labeling lab in
  let entries_before = Codebook.count (Dol.codebook dol) in
  (* add a subject mirroring subject 1 *)
  let s2 = Update.add_subject dol ~like:1 () in
  check Alcotest.int "new subject index" 2 s2;
  check Alcotest.int "codebook width" 3 (Codebook.width (Dol.codebook dol));
  check Alcotest.int "entry count unchanged" entries_before
    (Codebook.count (Dol.codebook dol));
  for v = 0 to 11 do
    Alcotest.(check bool)
      (Printf.sprintf "mirrors subject 1 at %d" v)
      (Dol.accessible dol ~subject:1 v)
      (Dol.accessible dol ~subject:s2 v)
  done;
  (* remove subject 0; adjacent ACLs may become redundant *)
  Update.remove_subject dol 0;
  check Alcotest.int "narrowed" 2 (Codebook.width (Dol.codebook dol));
  (* old subject 1 is now subject 0 *)
  Alcotest.(check bool) "old s1 at node 3" true (Dol.accessible dol ~subject:0 3);
  Alcotest.(check bool) "old s1 at node 0" false (Dol.accessible dol ~subject:0 0);
  let before_compact = Dol.transition_count dol in
  Update.compact dol;
  Alcotest.(check bool) "compact only shrinks" true
    (Dol.transition_count dol <= before_compact);
  Dol.validate dol

let prop_compact_preserves_semantics =
  Fixtures.qtest ~count:80 "compact: same verdicts, never more transitions"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 1 150) (int_bound 500))
    (fun (seed, n, ops_seed) ->
      let rng = Prng.create seed in
      let bools = Fixtures.random_bools rng n 0.5 in
      let dol = Dol.of_bool_array bools in
      let oprng = Prng.create ops_seed in
      for _ = 1 to 10 do
        let v = Prng.int oprng n in
        ignore (Update.dol_set_node dol ~subject:0 ~grant:(Prng.bool oprng ~p:0.5) v)
      done;
      let before_count = Dol.transition_count dol in
      let before = Array.init n (fun v -> Dol.accessible dol ~subject:0 v) in
      Update.compact dol;
      Dol.validate dol;
      Dol.transition_count dol <= before_count
      && Array.for_all Fun.id
           (Array.mapi (fun v b -> Dol.accessible dol ~subject:0 v = b) before))

let test_codebook_code_bytes () =
  let cb = Codebook.create ~width:1 in
  for i = 0 to 4 do
    ignore (Codebook.intern cb (Bitset.of_list 1 (if i mod 2 = 0 then [] else [ 0 ])))
  done;
  check Alcotest.int "2 entries" 2 (Codebook.count cb);
  check Alcotest.int "1-byte codes" 1 (Codebook.code_bytes cb)

let suite =
  [
    Alcotest.test_case "figure 1(a) transitions" `Quick test_single_subject_transitions;
    Alcotest.test_case "lookup all nodes" `Quick test_lookup_all_nodes;
    Alcotest.test_case "root always transition" `Quick test_root_always_transition;
    Alcotest.test_case "figure 1(c) codebook" `Quick test_multi_subject_codebook;
    Alcotest.test_case "streaming = batch" `Quick test_streaming_equals_batch;
    prop_dol_agrees_with_labeling;
    prop_transition_count_is_boundaries;
    Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
    Alcotest.test_case "update: set node" `Quick test_update_set_node;
    Alcotest.test_case "update: set node no-op" `Quick test_update_set_node_noop;
    Alcotest.test_case "update: set node merges" `Quick test_update_set_node_merges;
    Alcotest.test_case "update: set subtree" `Quick test_update_set_subtree;
    prop_update_node_semantics_and_prop1;
    prop_update_range_semantics_and_prop1;
    Alcotest.test_case "update: multi-subject range" `Quick
      test_update_multi_subject_range_preserves_others;
    Alcotest.test_case "update: insert/delete" `Quick test_insert_delete_move;
    prop_insert_then_delete_roundtrip;
    Alcotest.test_case "update: move" `Quick test_move;
    Alcotest.test_case "update: add/remove subject" `Quick test_add_remove_subject;
    prop_compact_preserves_semantics;
    Alcotest.test_case "codebook code bytes" `Quick test_codebook_code_bytes;
  ]
