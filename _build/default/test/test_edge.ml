(** Edge-case and stress tests across the stack: wide tag vocabularies
    (multi-byte varints in page records), tiny buffer pools, capacity-1
    LRU, multi-mode DOLs over the Unix simulator, codebook redundancy,
    and engine behaviour under eviction pressure. *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Multimode = Dolx_core.Multimode
module Update = Dolx_core.Update
module Store = Dolx_core.Secure_store
module Nok_layout = Dolx_storage.Nok_layout
module Buffer_pool = Dolx_storage.Buffer_pool
module Disk = Dolx_storage.Disk
module Engine = Dolx_nok.Engine
module Xpath = Dolx_nok.Xpath
module Tag_index = Dolx_index.Tag_index
module Labeling = Dolx_policy.Labeling
module Bitset = Dolx_util.Bitset
module Prng = Dolx_util.Prng
module Unixfs = Dolx_workload.Unixfs

let check = Alcotest.check

(* A flat tree with [k] distinct tags, ids up to k — tag ids >= 128
   exercise multi-byte varints in the page records. *)
let wide_tag_tree k =
  let b = Tree.Builder.create () in
  ignore (Tree.Builder.open_element b "root");
  for i = 0 to k - 1 do
    ignore (Tree.Builder.leaf b (Printf.sprintf "tag%04d" i) "")
  done;
  Tree.Builder.close_element b;
  Tree.Builder.finish b

let test_layout_wide_tags () =
  let tree = wide_tag_tree 400 in
  let n = Tree.size tree in
  let rng = Prng.create 1 in
  let bools = Fixtures.random_bools rng n 0.5 in
  let dol = Dol.of_bool_array bools in
  let disk = Disk.create ~page_size:256 () in
  let layout =
    Nok_layout.build disk tree ~transitions:(Array.of_list (Dol.transitions dol))
  in
  let pool = Buffer_pool.create ~capacity:8 disk in
  let t2 = Nok_layout.decode_tree layout pool ~tag_table:(Tree.tag_table tree) in
  check Alcotest.string "wide tags roundtrip" (Tree.structure_string tree)
    (Tree.structure_string t2);
  let codes = Nok_layout.codes_of_all_nodes layout pool in
  Array.iteri
    (fun v c -> check Alcotest.int (Printf.sprintf "code %d" v) (Dol.code_at dol v) c)
    codes

let test_engine_under_eviction_pressure () =
  (* a pool of 2 frames forces constant eviction; answers must not
     change *)
  let tree = Dolx_workload.Xmark.generate_nodes ~seed:21 3000 in
  let n = Tree.size tree in
  let rng = Prng.create 22 in
  let bools = Fixtures.random_bools rng n 0.7 in
  bools.(0) <- true;
  let dol = Dol.of_bool_array bools in
  let index = Tag_index.build tree in
  let roomy = Store.create ~page_size:1024 ~pool_capacity:256 tree dol in
  let tiny = Store.create ~page_size:1024 ~pool_capacity:2 tree dol in
  List.iter
    (fun (name, q) ->
      List.iter
        (fun sem ->
          let a = (Engine.query roomy index q sem).Engine.answers in
          let b = (Engine.query tiny index q sem).Engine.answers in
          check Fixtures.int_list (name ^ " same answers under eviction") a b)
        [ Engine.Insecure; Engine.Secure 0; Engine.Secure_path 0 ])
    Dolx_workload.Xmark.queries;
  (* the tiny pool must have missed more *)
  Alcotest.(check bool) "tiny pool misses more" true
    ((Store.io_stats tiny).Store.pool_misses
    > (Store.io_stats roomy).Store.pool_misses)

let test_pool_capacity_one () =
  let d = Disk.create ~page_size:64 () in
  let a = Disk.allocate d and b = Disk.allocate d in
  let pool = Buffer_pool.create ~capacity:1 d in
  let fa = Buffer_pool.get pool a in
  Bytes.set_uint8 fa 0 7;
  Buffer_pool.mark_dirty pool a;
  ignore (Buffer_pool.get pool b) (* evicts and flushes a *);
  let fa' = Buffer_pool.get pool a in
  check Alcotest.int "dirty byte survived eviction" 7 (Bytes.get_uint8 fa' 0)

let test_multimode_unixfs_read_write () =
  let fs =
    Unixfs.generate
      ~config:{ Unixfs.seed = 23; target_nodes = 3000; n_users = 20; n_groups = 5 }
      ()
  in
  let labelings = [| fs.Unixfs.read_labeling; fs.Unixfs.write_labeling |] in
  let combined = Multimode.combine labelings in
  let n = Tree.size fs.Unixfs.tree in
  let rng = Prng.create 24 in
  for _ = 1 to 300 do
    let v = Prng.int rng n in
    let u = Prng.int rng (Array.length fs.Unixfs.users) in
    let subject = fs.Unixfs.users.(u) in
    Alcotest.(check bool) "read bit" (Labeling.accessible fs.Unixfs.read_labeling ~subject v)
      (Multimode.accessible combined ~subject ~mode:0 v);
    Alcotest.(check bool) "write bit" (Labeling.accessible fs.Unixfs.write_labeling ~subject v)
      (Multimode.accessible combined ~subject ~mode:1 v)
  done;
  (* write ⊆ read for permission-bit trees generated here is NOT
     guaranteed (0o660 vs 0o444), so just sanity-check the counts *)
  let _, dol = combined in
  Alcotest.(check bool) "combined has transitions" true (Dol.transition_count dol > 1)

let test_codebook_redundancy_after_removal () =
  let cb = Codebook.create ~width:2 in
  let c00 = Codebook.intern cb (Bitset.of_list 2 []) in
  let c01 = Codebook.intern cb (Bitset.of_list 2 [ 1 ]) in
  let c10 = Codebook.intern cb (Bitset.of_list 2 [ 0 ]) in
  ignore c00;
  ignore c01;
  ignore c10;
  check Alcotest.int "no redundancy yet" 0 (Codebook.redundant_entries cb);
  (* removing subject 1 makes {} and {1} collapse *)
  Codebook.remove_subject cb 1;
  check Alcotest.int "one redundant entry" 1 (Codebook.redundant_entries cb);
  (* interning the collapsed ACL maps to a single surviving code *)
  let c = Codebook.intern cb (Bitset.of_list 1 []) in
  Alcotest.(check bool) "existing code reused" true (c < 3)

let test_update_set_range_acl () =
  let lab =
    Dolx_workload.Synth_acl.generate_multi (Fixtures.figure2_tree ()) ~seed:3
      ~n_subjects:4 ~n_archetypes:2 ()
  in
  let dol = Dol.of_labeling lab in
  let bits = Bitset.of_list 4 [ 1; 3 ] in
  Update.dol_set_range_acl dol ~lo:4 ~hi:11 bits;
  for v = 4 to 11 do
    for s = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "node %d subject %d" v s)
        (Bitset.get bits s)
        (Dol.accessible dol ~subject:s v)
    done
  done;
  (* nodes outside the range untouched *)
  for v = 0 to 3 do
    for s = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "outside %d subject %d" v s)
        (Labeling.accessible lab ~subject:s v)
        (Dol.accessible dol ~subject:s v)
    done
  done;
  Dol.validate dol

let test_xpath_child_axis_spelled_out () =
  let p = Xpath.parse "/child::a/child::b" in
  check Alcotest.int "trunk" 2 (List.length (Dolx_nok.Pattern.trunk p))

let test_single_node_document () =
  let tree = Tree.of_spec (Tree.El ("only", [])) in
  let dol = Dol.of_bool_array [| true |] in
  let store = Store.create tree dol in
  let index = Tag_index.build tree in
  check Fixtures.int_list "self query" [ 0 ]
    (Engine.query store index "/only" (Engine.Secure 0)).Engine.answers;
  check Fixtures.int_list "denied"
    []
    (let dol2 = Dol.of_bool_array [| false |] in
     let store2 = Store.create tree dol2 in
     (Engine.query store2 index "/only" (Engine.Secure 0)).Engine.answers)

let test_deep_chain_document () =
  (* a 500-deep chain: recursion depths, closes_after at the end, page
     header depths *)
  let b = Tree.Builder.create () in
  for _ = 1 to 500 do
    ignore (Tree.Builder.open_element b "n")
  done;
  for _ = 1 to 500 do
    Tree.Builder.close_element b
  done;
  let tree = Tree.Builder.finish b in
  Tree.validate tree;
  check Alcotest.int "closes at leaf" 500 (Tree.closes_after tree 499);
  let bools = Array.init 500 (fun i -> i mod 7 <> 0) in
  let dol = Dol.of_bool_array bools in
  let store = Store.create ~page_size:256 tree dol in
  for v = 0 to 499 do
    Alcotest.(check bool) (Printf.sprintf "chain %d" v) bools.(v)
      (Store.accessible store ~subject:0 v)
  done;
  let index = Tag_index.build tree in
  let r = Engine.query store index "//n//n" (Engine.Secure 0) in
  Alcotest.(check bool) "deep join runs" true (List.length r.Engine.answers > 0)

let test_word_boundary_widths () =
  (* 62..66 subjects straddle the 63-bit word boundary of Bitset *)
  let tree = Fixtures.figure2_tree () in
  List.iter
    (fun width ->
      let lab =
        Dolx_workload.Synth_acl.generate_multi tree ~seed:(1000 + width)
          ~n_subjects:width ~n_archetypes:3 ()
      in
      let dol = Dol.of_labeling lab in
      Dol.verify_against dol lab;
      (* persistence across the boundary *)
      let dol' = Dolx_core.Persist.of_bytes (Dolx_core.Persist.to_bytes dol) in
      for v = 0 to Tree.size tree - 1 do
        for s = 0 to width - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "w=%d v=%d s=%d" width v s)
            (Labeling.accessible lab ~subject:s v)
            (Dol.accessible dol' ~subject:s v)
        done
      done;
      (* add/remove a subject across the boundary *)
      let s_new = Update.add_subject dol ~like:(width - 1) () in
      Alcotest.(check bool) "mirrored" true
        (Dol.accessible dol ~subject:s_new 5 = Dol.accessible dol ~subject:(width - 1) 5);
      Update.remove_subject dol 0;
      Update.compact dol;
      Dol.validate dol)
    [ 62; 63; 64; 65; 66 ]

let prop_bitset_boundary =
  Fixtures.qtest ~count:100 "bitset ops across word boundaries"
    QCheck2.Gen.(pair (int_range 60 130) (list_size (int_bound 30) (int_bound 129)))
    (fun (width, picks) ->
      let picks = List.filter (fun i -> i < width) picks in
      let b = Bitset.of_list width picks in
      let expected = List.sort_uniq compare picks in
      Bitset.to_list b = expected
      && Bitset.popcount b = List.length expected
      && Bitset.to_list (Bitset.resize b (width + 63)) = expected
      &&
      match expected with
      | [] -> true
      | first :: rest ->
          (* dropping the lowest set bit shifts every higher index down *)
          Bitset.to_list (Bitset.remove_bit b first)
          = List.map (fun i -> if i > first then i - 1 else i) rest)

let suite =
  [
    Alcotest.test_case "layout: wide tag vocabulary" `Quick test_layout_wide_tags;
    Alcotest.test_case "engine under eviction pressure" `Quick
      test_engine_under_eviction_pressure;
    Alcotest.test_case "buffer pool capacity 1" `Quick test_pool_capacity_one;
    Alcotest.test_case "multimode over unixfs read/write" `Quick
      test_multimode_unixfs_read_write;
    Alcotest.test_case "codebook redundancy after removal" `Quick
      test_codebook_redundancy_after_removal;
    Alcotest.test_case "update: set range ACL" `Quick test_update_set_range_acl;
    Alcotest.test_case "xpath: explicit child axis" `Quick test_xpath_child_axis_spelled_out;
    Alcotest.test_case "single-node document" `Quick test_single_node_document;
    Alcotest.test_case "deep chain document" `Quick test_deep_chain_document;
    Alcotest.test_case "word-boundary subject widths" `Quick test_word_boundary_widths;
    prop_bitset_boundary;
  ]
