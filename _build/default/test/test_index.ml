(** Tests for the B+-tree and the tag index. *)

module Btree = Dolx_index.Btree
module Tag_index = Dolx_index.Tag_index
module Tree = Dolx_xml.Tree
module Prng = Dolx_util.Prng

let check = Alcotest.check

let test_btree_basic () =
  let t = Btree.create ~order:4 () in
  List.iter (fun k -> Btree.insert t k (k * 10)) [ 5; 3; 8; 1; 9; 7; 2; 6; 4 ];
  check Alcotest.int "count" 9 (Btree.count t);
  check Alcotest.(option int) "find 7" (Some 70) (Btree.find t 7);
  check Alcotest.(option int) "find missing" None (Btree.find t 10);
  Btree.validate t;
  Alcotest.(check bool) "height grew" true (Btree.height t > 1)

let test_btree_overwrite () =
  let t = Btree.create () in
  Btree.insert t 1 10;
  Btree.insert t 1 20;
  check Alcotest.int "count stays 1" 1 (Btree.count t);
  check Alcotest.(option int) "latest value" (Some 20) (Btree.find t 1)

let test_btree_range () =
  let t = Btree.create ~order:4 () in
  for k = 0 to 99 do
    Btree.insert t (k * 2) k
  done;
  let r = Btree.range t ~lo:10 ~hi:20 in
  check
    Alcotest.(list (pair int int))
    "range" [ (10, 5); (12, 6); (14, 7); (16, 8); (18, 9); (20, 10) ]
    r;
  check Alcotest.(list (pair int int)) "empty range" [] (Btree.range t ~lo:301 ~hi:400)

let test_btree_remove () =
  let t = Btree.create ~order:4 () in
  for k = 0 to 50 do
    Btree.insert t k k
  done;
  Alcotest.(check bool) "removed" true (Btree.remove t 25);
  Alcotest.(check bool) "second remove fails" false (Btree.remove t 25);
  check Alcotest.(option int) "gone" None (Btree.find t 25);
  check Alcotest.int "count" 50 (Btree.count t);
  Btree.validate t

let prop_btree_vs_map =
  Fixtures.qtest ~count:60 "btree agrees with Map under random ops"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 500))
    (fun (seed, n_ops) ->
      let module M = Map.Make (Int) in
      let rng = Prng.create seed in
      let t = Btree.create ~order:4 () in
      let m = ref M.empty in
      for _ = 1 to n_ops do
        let k = Prng.int rng 200 in
        match Prng.int rng 3 with
        | 0 | 1 ->
            let v = Prng.int rng 1000 in
            Btree.insert t k v;
            m := M.add k v !m
        | _ ->
            let removed = Btree.remove t k in
            let expected = M.mem k !m in
            m := M.remove k !m;
            if removed <> expected then failwith "remove disagreement"
      done;
      Btree.validate t;
      Btree.count t = M.cardinal !m
      && M.for_all (fun k v -> Btree.find t k = Some v) !m
      && List.for_all
           (fun (k, v) -> M.find_opt k !m = Some v)
           (Btree.range t ~lo:min_int ~hi:max_int))

let prop_btree_range_vs_map =
  Fixtures.qtest ~count:60 "btree range = map filter"
    QCheck2.Gen.(
      triple (int_bound 100_000) (int_range 1 300) (pair (int_bound 250) (int_bound 250)))
    (fun (seed, n, (a, b)) ->
      let module M = Map.Make (Int) in
      let rng = Prng.create seed in
      let t = Btree.create ~order:4 () in
      let m = ref M.empty in
      for _ = 1 to n do
        let k = Prng.int rng 200 and v = Prng.int rng 100 in
        Btree.insert t k v;
        m := M.add k v !m
      done;
      let lo = min a b and hi = max a b in
      let expected =
        M.bindings (M.filter (fun k _ -> k >= lo && k <= hi) !m)
      in
      Btree.range t ~lo ~hi = expected)

let test_btree_large_sequential () =
  let t = Btree.create ~order:8 () in
  for k = 0 to 9999 do
    Btree.insert t k k
  done;
  Btree.validate t;
  check Alcotest.int "count" 10_000 (Btree.count t);
  Alcotest.(check bool) "reasonable height" true (Btree.height t <= 7);
  check Alcotest.(option int) "spot check" (Some 8888) (Btree.find t 8888)

let test_tag_index_postings () =
  let tree = Fixtures.library_tree () in
  let idx = Tag_index.build tree in
  let table = Tree.tag_table tree in
  let id name = Option.get (Dolx_xml.Tag.find_opt table name) in
  let expected name =
    let acc = ref [] in
    Tree.iter (fun v -> if Tree.tag_name tree v = name then acc := v :: !acc) tree;
    List.rev !acc
  in
  List.iter
    (fun name ->
      check Fixtures.int_list name (expected name) (Tag_index.postings idx (id name)))
    [ "book"; "title"; "shelf"; "library" ];
  check Alcotest.int "entry count = nodes" (Tree.size tree) (Tag_index.entry_count idx)

let test_tag_index_range () =
  let tree = Fixtures.library_tree () in
  let idx = Tag_index.build tree in
  let table = Tree.tag_table tree in
  let book = Option.get (Dolx_xml.Tag.find_opt table "book") in
  let all = Tag_index.postings idx book in
  (* restrict to first shelf's subtree *)
  let shelf1 = 1 in
  let last = Tree.subtree_end tree shelf1 in
  let expected = List.filter (fun v -> v > shelf1 && v <= last) all in
  check Fixtures.int_list "in-subtree postings" expected
    (Tag_index.postings_in idx book ~lo:(shelf1 + 1) ~hi:last)

let test_tag_index_maintenance () =
  let tree = Fixtures.library_tree () in
  let idx = Tag_index.build tree in
  let table = Tree.tag_table tree in
  let book = Option.get (Dolx_xml.Tag.find_opt table "book") in
  let before = Tag_index.postings idx book in
  Tag_index.remove idx book (List.hd before);
  check Alcotest.int "one fewer" (List.length before - 1)
    (List.length (Tag_index.postings idx book));
  Tag_index.insert idx book (List.hd before);
  check Fixtures.int_list "restored" before (Tag_index.postings idx book)

let prop_of_sorted_equals_inserts =
  Fixtures.qtest ~count:60 "bulk load = repeated inserts"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 0 600))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let keys = List.sort_uniq compare (List.init n (fun _ -> Prng.int rng 5000)) in
      let pairs = List.map (fun k -> (k, k * 3)) keys in
      let bulk = Btree.of_sorted ~order:8 pairs in
      Btree.validate bulk;
      let incr = Btree.create ~order:8 () in
      List.iter (fun (k, v) -> Btree.insert incr k v) pairs;
      Btree.count bulk = Btree.count incr
      && Btree.range bulk ~lo:min_int ~hi:max_int
         = Btree.range incr ~lo:min_int ~hi:max_int
      && List.for_all (fun (k, v) -> Btree.find bulk k = Some v) pairs)

let test_of_sorted_rejects_unsorted () =
  Alcotest.check_raises "unsorted input"
    (Invalid_argument "Btree.of_sorted: keys must be strictly increasing")
    (fun () -> ignore (Btree.of_sorted [ (2, 0); (1, 0) ]))

let test_of_sorted_then_insert () =
  let t = Btree.of_sorted ~order:4 (List.init 100 (fun i -> (i * 2, i))) in
  Btree.insert t 51 999;
  Btree.validate t;
  Alcotest.check Alcotest.(option int) "old key" (Some 25) (Btree.find t 50);
  Alcotest.check Alcotest.(option int) "new key" (Some 999) (Btree.find t 51)

(* --- value index --- *)

module Value_index = Dolx_index.Value_index

let test_value_index_postings () =
  let tree = Fixtures.library_tree () in
  let vi = Value_index.build tree in
  let table = Tree.tag_table tree in
  let author = Option.get (Dolx_xml.Tag.find_opt table "author") in
  let expected value =
    let acc = ref [] in
    Tree.iter
      (fun v ->
        if Tree.tag tree v = author && Tree.text tree v = value then acc := v :: !acc)
      tree;
    List.rev !acc
  in
  List.iter
    (fun value ->
      Alcotest.check Fixtures.int_list value (expected value)
        (Value_index.postings vi author ~value))
    [ "codd"; "milner"; "anon"; "nobody" ];
  (* wrong tag, right text *)
  let title = Option.get (Dolx_xml.Tag.find_opt table "title") in
  Alcotest.check Fixtures.int_list "no cross-tag hits" []
    (Value_index.postings vi title ~value:"codd")

let test_value_index_range_and_maintenance () =
  let tree = Fixtures.library_tree () in
  let vi = Value_index.build tree in
  let table = Tree.tag_table tree in
  let author = Option.get (Dolx_xml.Tag.find_opt table "author") in
  let all = Value_index.postings vi author ~value:"codd" in
  Alcotest.check Alcotest.int "two codd books" 2 (List.length all);
  let first = List.hd all in
  Alcotest.check Fixtures.int_list "restricted" [ first ]
    (Value_index.postings_in vi author ~value:"codd" ~lo:0 ~hi:first);
  Value_index.remove vi author ~value:"codd" first;
  Alcotest.check Alcotest.int "one left" 1
    (List.length (Value_index.postings vi author ~value:"codd"));
  Value_index.insert vi author ~value:"codd" first;
  Alcotest.check Fixtures.int_list "restored" all
    (Value_index.postings vi author ~value:"codd")

let test_engine_with_value_index () =
  let tree = Fixtures.library_tree () in
  let n = Tree.size tree in
  let dol = Dolx_core.Dol.of_bool_array (Array.make n true) in
  let store = Dolx_core.Secure_store.create tree dol in
  let index = Tag_index.build tree in
  let vi = Value_index.build tree in
  let module Engine = Dolx_nok.Engine in
  List.iter
    (fun q ->
      let plain = (Engine.query store index q (Engine.Secure 0)).Engine.answers in
      let seeded =
        (Engine.query ~value_index:vi store index q (Engine.Secure 0)).Engine.answers
      in
      Alcotest.check Fixtures.int_list q plain seeded)
    [ "//author=\"codd\""; "//title=\"joins\""; "//book[author=\"codd\"]/title" ]

let suite =
  [
    Alcotest.test_case "btree basic" `Quick test_btree_basic;
    Alcotest.test_case "btree overwrite" `Quick test_btree_overwrite;
    Alcotest.test_case "btree range" `Quick test_btree_range;
    Alcotest.test_case "btree remove" `Quick test_btree_remove;
    prop_btree_vs_map;
    prop_btree_range_vs_map;
    Alcotest.test_case "btree large sequential" `Quick test_btree_large_sequential;
    Alcotest.test_case "tag index postings" `Quick test_tag_index_postings;
    Alcotest.test_case "tag index range" `Quick test_tag_index_range;
    Alcotest.test_case "tag index maintenance" `Quick test_tag_index_maintenance;
    prop_of_sorted_equals_inserts;
    Alcotest.test_case "of_sorted rejects unsorted" `Quick test_of_sorted_rejects_unsorted;
    Alcotest.test_case "of_sorted then insert" `Quick test_of_sorted_then_insert;
    Alcotest.test_case "value index postings" `Quick test_value_index_postings;
    Alcotest.test_case "value index range + maintenance" `Quick
      test_value_index_range_and_maintenance;
    Alcotest.test_case "engine with value index" `Quick test_engine_with_value_index;
  ]
