(** Tests for DOL serialization, the streaming secure filter, and
    incremental accessibility-map maintenance. *)

module Tree = Dolx_xml.Tree
module Parser = Dolx_xml.Parser
module Serializer = Dolx_xml.Serializer
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Persist = Dolx_core.Persist
module Stream_filter = Dolx_core.Stream_filter
module Secure_view = Dolx_core.Secure_view
module Update = Dolx_core.Update
module Incremental = Dolx_policy.Incremental
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Rule = Dolx_policy.Rule
module Propagate = Dolx_policy.Propagate
module Labeling = Dolx_policy.Labeling
module Bitset = Dolx_util.Bitset
module Prng = Dolx_util.Prng
module Xmark = Dolx_workload.Xmark
module Synth_acl = Dolx_workload.Synth_acl

let check = Alcotest.check

(* --- persistence --- *)

let test_persist_roundtrip_small () =
  let lab =
    Synth_acl.generate_multi (Fixtures.figure2_tree ()) ~seed:1 ~n_subjects:5
      ~n_archetypes:2 ()
  in
  let dol = Dol.of_labeling lab in
  let dol' = Persist.of_bytes (Persist.to_bytes dol) in
  Dol.validate dol';
  check Alcotest.int "nodes" (Dol.n_nodes dol) (Dol.n_nodes dol');
  check Alcotest.int "transitions" (Dol.transition_count dol) (Dol.transition_count dol');
  Dol.verify_against dol' lab

let prop_persist_roundtrip =
  Fixtures.qtest ~count:80 "persist roundtrip preserves every verdict"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 1 200) (int_range 1 9))
    (fun (seed, n, p10) ->
      let rng = Prng.create seed in
      let bools = Fixtures.random_bools rng n (float_of_int p10 /. 10.0) in
      let dol = Dol.of_bool_array bools in
      let dol' = Persist.of_bytes (Persist.to_bytes dol) in
      Dol.validate dol';
      Array.for_all Fun.id
        (Array.mapi (fun v b -> Dol.accessible dol' ~subject:0 v = b) bools))

let test_persist_file () =
  let dol = Dol.of_bool_array [| true; false; true; true |] in
  let path = Filename.temp_file "dolx" ".dol" in
  Persist.save path dol;
  let dol' = Persist.load path in
  Sys.remove path;
  check Alcotest.int "transitions" (Dol.transition_count dol) (Dol.transition_count dol')

let test_persist_corrupt () =
  let dol = Dol.of_bool_array [| true; false; true |] in
  let good = Persist.to_bytes dol in
  let fails buf =
    match Persist.of_bytes buf with
    | exception Persist.Corrupt _ -> ()
    | _ -> Alcotest.fail "expected Corrupt"
  in
  fails (Bytes.of_string "JUNK");
  fails (Bytes.sub good 0 (Bytes.length good - 1));
  let bad_magic = Bytes.copy good in
  Bytes.set bad_magic 0 'X';
  fails bad_magic;
  let bad_version = Bytes.copy good in
  Bytes.set_uint8 bad_version 4 9;
  fails bad_version

let test_persist_delta_compression () =
  (* clustered transitions must serialize small *)
  let tree = Xmark.generate_nodes ~seed:2 10_000 in
  let bools =
    Synth_acl.generate_bool tree ~params:Synth_acl.default (Prng.create 3)
  in
  let dol = Dol.of_bool_array bools in
  let bytes = Persist.serialized_bytes dol in
  (* header + 1 byte/codebook entry + <= ~4 bytes per transition *)
  Alcotest.(check bool)
    (Printf.sprintf "%d bytes for %d transitions" bytes (Dol.transition_count dol))
    true
    (bytes < 16 + Codebook.count (Dol.codebook dol) + (5 * Dol.transition_count dol))

(* --- database files --- *)

module Db_file = Dolx_core.Db_file
module Store = Dolx_core.Secure_store
module Engine = Dolx_nok.Engine
module Tag_index = Dolx_index.Tag_index

let test_db_file_roundtrip () =
  let tree = Xmark.generate_nodes ~seed:61 1500 in
  let n = Tree.size tree in
  let rng = Prng.create 62 in
  let bools = Fixtures.random_bools rng n 0.6 in
  bools.(0) <- true;
  let dol = Dol.of_bool_array bools in
  let store = Store.create ~page_size:512 tree dol in
  (* apply a physical update so the file must reflect buffered state *)
  ignore (Update.set_node_accessibility store ~subject:0 ~grant:false 10);
  let store', _ = Db_file.of_bytes (Db_file.to_bytes store) in
  let tree' = Store.tree store' in
  check Alcotest.string "structure" (Tree.structure_string tree) (Tree.structure_string tree');
  for v = 0 to n - 1 do
    if Tree.text tree v <> "" then
      check Alcotest.string (Printf.sprintf "text %d" v) (Tree.text tree v)
        (Tree.text tree' v);
    Alcotest.(check bool)
      (Printf.sprintf "access %d" v)
      (Store.accessible store ~subject:0 v)
      (Store.accessible store' ~subject:0 v)
  done;
  (* queries behave identically on the reopened store *)
  let index = Tag_index.build tree and index' = Tag_index.build tree' in
  List.iter
    (fun (_, q) ->
      check Fixtures.int_list q
        (Engine.query store index q (Engine.Secure 0)).Engine.answers
        (Engine.query store' index' q (Engine.Secure 0)).Engine.answers)
    Xmark.queries

let test_db_file_pool_capacity_1 () =
  (* a reload must stay correct under maximal buffer-pool pressure: every
     page access evicts the previous frame *)
  let tree = Xmark.generate_nodes ~seed:71 800 in
  let n = Tree.size tree in
  let rng = Prng.create 72 in
  let bools = Fixtures.random_bools rng n 0.5 in
  bools.(0) <- true;
  let store = Store.create ~page_size:256 tree (Dol.of_bool_array bools) in
  let store', _ =
    Db_file.of_bytes ~pool_capacity:1 (Db_file.to_bytes store)
  in
  for v = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "access %d" v)
      (Store.accessible store ~subject:0 v)
      (Store.accessible store' ~subject:0 v)
  done;
  (* and it serializes back identically from the capacity-1 pool *)
  let store'', _ =
    Db_file.of_bytes ~pool_capacity:1 (Db_file.to_bytes store')
  in
  for v = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "re-roundtrip access %d" v)
      (Store.accessible store ~subject:0 v)
      (Store.accessible store'' ~subject:0 v)
  done

let test_db_file_on_disk () =
  let tree = Fixtures.library_tree () in
  let dol = Dol.of_bool_array (Array.make (Tree.size tree) true) in
  let store = Store.create tree dol in
  let path = Filename.temp_file "dolx" ".db" in
  Db_file.save path store;
  let store', registries = Db_file.load path in
  Alcotest.(check bool) "no registry section" true (registries = None);
  Sys.remove path;
  check Alcotest.string "reloaded structure" (Tree.structure_string tree)
    (Tree.structure_string (Store.tree store'))

let test_db_file_registry_roundtrip () =
  let tree = Fixtures.library_tree () in
  let subjects = Subject.create () in
  let alice = Subject.add_user subjects "alice" in
  let staff = Subject.add_group subjects "staff" in
  Subject.add_membership subjects ~child:alice ~group:staff;
  let modes = Mode.create () in
  ignore (Mode.add modes "read");
  let dol = Dol.of_bool_array (Array.make (Tree.size tree) true) in
  let store = Store.create tree dol in
  let store', registries =
    Db_file.of_bytes (Db_file.to_bytes ~subjects ~modes store)
  in
  ignore store';
  match registries with
  | None -> Alcotest.fail "registry lost"
  | Some (subjects', modes') ->
      check Alcotest.int "subject count" 2 (Subject.count subjects');
      check Alcotest.string "name" "alice" (Subject.name subjects' 0);
      Alcotest.(check bool) "kind" true (Subject.kind subjects' 1 = Subject.Group);
      check Fixtures.int_list "membership survives"
        (Subject.closure subjects alice)
        (Subject.closure subjects' 0);
      check Alcotest.(option int) "mode name" (Some 0) (Mode.find_opt modes' "read")

let test_db_file_after_splits () =
  (* pack pages full, force splits with updates, then round-trip the db
     file: logical page order must survive even though physical page ids
     are out of order after splits *)
  let rng = Prng.create 81 in
  let tree = Fixtures.random_tree rng 300 in
  let bools = Array.make 300 false in
  let dol = Dol.of_bool_array bools in
  let store = Store.create ~page_size:128 ~fill:1.0 tree dol in
  let before_pages =
    Dolx_storage.Nok_layout.page_count (Store.layout store)
  in
  for v = 0 to 299 do
    if v mod 2 = 0 then ignore (Update.set_node_accessibility store ~subject:0 ~grant:true v)
  done;
  let after_pages = Dolx_storage.Nok_layout.page_count (Store.layout store) in
  Alcotest.(check bool) "splits happened" true (after_pages > before_pages);
  let store', _ = Db_file.of_bytes (Db_file.to_bytes store) in
  check Alcotest.string "structure survives splits"
    (Tree.structure_string tree)
    (Tree.structure_string (Store.tree store'));
  for v = 0 to 299 do
    Alcotest.(check bool) (Printf.sprintf "access %d" v)
      (Store.accessible store ~subject:0 v)
      (Store.accessible store' ~subject:0 v)
  done

let test_db_file_corrupt () =
  let tree = Fixtures.library_tree () in
  let dol = Dol.of_bool_array (Array.make (Tree.size tree) true) in
  let store = Store.create tree dol in
  let good = Db_file.to_bytes store in
  let fails buf =
    match Db_file.of_bytes buf with
    | exception Db_file.Corrupt _ -> ()
    | _ -> Alcotest.fail "expected Corrupt"
  in
  fails (Bytes.of_string "NOTADB");
  fails (Bytes.sub good 0 (Bytes.length good / 2));
  let bad = Bytes.copy good in
  Bytes.set bad 0 'X';
  fails bad

(* --- streaming filter --- *)

let test_stream_filter_equals_view () =
  let tree = Fixtures.library_tree () in
  let n = Tree.size tree in
  let bools = Array.make n true in
  bools.(8) <- false (* hide the box subtree root *);
  bools.(9) <- false;
  bools.(10) <- false;
  bools.(11) <- false;
  let dol = Dol.of_bool_array bools in
  let xml = Serializer.to_string tree in
  List.iter
    (fun sem ->
      let filtered = Stream_filter.filter_string ~semantics:sem dol ~subject:0 xml in
      let expected = Serializer.to_string (Secure_view.view ~semantics:sem tree dol ~subject:0) in
      (* normalize by re-parsing: self-closing vs open/close differences *)
      check Alcotest.string
        (match sem with Stream_filter.Prune_subtree -> "prune" | _ -> "lift")
        (Tree.structure_string (Parser.parse expected))
        (Tree.structure_string (Parser.parse filtered)))
    [ Stream_filter.Prune_subtree; Stream_filter.Lift_children ]

let prop_stream_filter_equals_view =
  Fixtures.qtest ~count:60 "stream filter = secure view on random data"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 2 150) bool)
    (fun (seed, n, lift) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let bools = Fixtures.random_bools rng n 0.6 in
      bools.(0) <- true;
      let dol = Dol.of_bool_array bools in
      let sem = if lift then Stream_filter.Lift_children else Stream_filter.Prune_subtree in
      let xml = Serializer.to_string tree in
      let filtered = Stream_filter.filter_string ~semantics:sem dol ~subject:0 xml in
      let expected =
        Serializer.to_string (Secure_view.view ~semantics:sem tree dol ~subject:0)
      in
      Tree.structure_string (Parser.parse filtered)
      = Tree.structure_string (Parser.parse expected))

let test_stream_filter_event_counts () =
  let tree = Fixtures.figure2_tree () in
  let bools = [| true; false; false; false; true; true; true; false; true; true; true; true |] in
  let dol = Dol.of_bool_array bools in
  let count = ref 0 in
  let t = Stream_filter.create dol ~subject:0 ~emit:(fun _ -> incr count) in
  Parser.parse_events (Serializer.to_string tree) (Stream_filter.push t);
  check Alcotest.int "events in" 24 (Stream_filter.events_in t);
  (* prune view is a(e(f)(g)): 4 elements = 8 events *)
  check Alcotest.int "events out" 8 (Stream_filter.events_out t);
  check Alcotest.int "emit called" 8 !count

let test_stream_filter_overflow () =
  let dol = Dol.of_bool_array [| true |] in
  let t = Stream_filter.create dol ~subject:0 ~emit:(fun _ -> ()) in
  Stream_filter.push t (Parser.Start ("a", []));
  Alcotest.check_raises "too many elements"
    (Invalid_argument "Stream_filter: more elements than the DOL covers")
    (fun () -> Stream_filter.push t (Parser.Start ("b", [])))

let prop_stream_filter_multi_subject =
  Fixtures.qtest ~count:40 "stream filter per subject = per-subject view"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 2 80))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let lab =
        Synth_acl.generate_multi tree ~seed:(seed + 1) ~n_subjects:4
          ~n_archetypes:2 ()
      in
      let dol = Dol.of_labeling lab in
      let xml = Serializer.to_string tree in
      List.for_all
        (fun s ->
          if not (Dol.accessible dol ~subject:s 0) then true
          else
            let filtered = Stream_filter.filter_string dol ~subject:s xml in
            let view = Secure_view.view tree dol ~subject:s in
            Tree.structure_string (Parser.parse filtered)
            = Tree.structure_string view)
        [ 0; 1; 2; 3 ])

(* --- fully streaming construction: events -> DOL + pages in one pass --- *)

module Stream_layout = Dolx_storage.Stream_layout
module Nok_layout = Dolx_storage.Nok_layout
module Disk = Dolx_storage.Disk
module Buffer_pool = Dolx_storage.Buffer_pool

let test_stream_layout_equals_batch () =
  let tree = Xmark.generate_nodes ~seed:71 2000 in
  let n = Tree.size tree in
  let rng = Prng.create 72 in
  let bools = Fixtures.random_bools rng n 0.55 in
  let lab = Labeling.of_bool_array bools in
  (* batch path *)
  let dol_batch = Dol.of_labeling lab in
  let disk_b = Disk.create ~page_size:512 () in
  let layout_b =
    Nok_layout.build disk_b tree
      ~transitions:(Array.of_list (Dol.transitions dol_batch))
  in
  (* one-pass path: walk the serialized document's events, pushing the
     node ACL into the streaming DOL and the (tag, code) into the
     streaming layout *)
  let disk_s = Disk.create ~page_size:512 () in
  let slb = Stream_layout.create disk_s in
  let dolb = Dol.Streaming.create ~width:1 in
  let table = Tree.tag_table tree in
  let pre = ref 0 in
  Parser.parse_events (Serializer.to_string tree) (function
    | Parser.Start (name, _) ->
        let code = Dol.Streaming.push dolb (Labeling.acl lab !pre) in
        incr pre;
        Stream_layout.start_element slb
          ~tag:(Option.get (Dolx_xml.Tag.find_opt table name))
          ?code ()
    | Parser.End _ -> Stream_layout.end_element slb
    | Parser.Text _ -> ());
  let dol_stream = Dol.Streaming.finish dolb in
  let layout_s = Stream_layout.finish slb in
  (* the two paths agree on everything observable *)
  check Alcotest.int "page count" (Nok_layout.page_count layout_b)
    (Nok_layout.page_count layout_s);
  check Alcotest.int "node count" n (Nok_layout.node_count layout_s);
  let pool_b = Buffer_pool.create ~capacity:16 disk_b in
  let pool_s = Buffer_pool.create ~capacity:16 disk_s in
  check Fixtures.int_list "codes agree"
    (Array.to_list (Nok_layout.codes_of_all_nodes layout_b pool_b))
    (Array.to_list (Nok_layout.codes_of_all_nodes layout_s pool_s));
  let t_s = Nok_layout.decode_tree layout_s pool_s ~tag_table:table in
  check Alcotest.string "structure agrees" (Tree.structure_string tree)
    (Tree.structure_string t_s);
  for lp = 0 to Nok_layout.page_count layout_b - 1 do
    let hb = Nok_layout.header layout_b lp and hs = Nok_layout.header layout_s lp in
    check Alcotest.int (Printf.sprintf "first_pre %d" lp) hb.Nok_layout.first_pre
      hs.Nok_layout.first_pre;
    check Alcotest.int (Printf.sprintf "first_code %d" lp) hb.Nok_layout.first_code
      hs.Nok_layout.first_code;
    check Alcotest.int (Printf.sprintf "first_depth %d" lp) hb.Nok_layout.first_depth
      hs.Nok_layout.first_depth;
    Alcotest.(check bool) (Printf.sprintf "change %d" lp) hb.Nok_layout.change
      hs.Nok_layout.change
  done;
  Dol.verify_against dol_stream lab

let prop_stream_layout_random =
  Fixtures.qtest ~count:50 "streaming layout = batch layout on random trees"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range 1 250) (int_range 6 10))
    (fun (seed, n, psize_log) ->
      let rng = Prng.create seed in
      let tree = Fixtures.random_tree rng n in
      let bools = Fixtures.random_bools rng n 0.5 in
      let dol = Dol.of_bool_array bools in
      let page_size = 1 lsl psize_log in
      let disk_b = Disk.create ~page_size () in
      let layout_b =
        Nok_layout.build disk_b tree ~transitions:(Array.of_list (Dol.transitions dol))
      in
      let disk_s = Disk.create ~page_size () in
      let slb = Stream_layout.create disk_s in
      let dolb = Dol.Streaming.create ~width:1 in
      let lab = Labeling.of_bool_array bools in
      let rec walk v =
        let code = Dol.Streaming.push dolb (Labeling.acl lab v) in
        Stream_layout.start_element slb ~tag:(Tree.tag tree v) ?code ();
        Tree.iter_children walk tree v;
        Stream_layout.end_element slb
      in
      walk Tree.root;
      let layout_s = Stream_layout.finish slb in
      let pool_b = Buffer_pool.create ~capacity:16 disk_b in
      let pool_s = Buffer_pool.create ~capacity:16 disk_s in
      Nok_layout.page_count layout_b = Nok_layout.page_count layout_s
      && Nok_layout.codes_of_all_nodes layout_b pool_b
         = Nok_layout.codes_of_all_nodes layout_s pool_s
      && Tree.structure_string (Nok_layout.decode_tree layout_s pool_s
                                  ~tag_table:(Tree.tag_table tree))
         = Tree.structure_string tree)

(* --- incremental maintenance --- *)

let incr_setup n seed =
  let rng = Prng.create seed in
  let tree = Fixtures.random_tree rng n in
  let subjects = Subject.create () in
  let s0 = Subject.add_user subjects "u0" in
  let s1 = Subject.add_user subjects "u1" in
  let modes = Mode.create () in
  let m = Mode.add modes "read" in
  (tree, subjects, s0, s1, m, rng)

let random_rule rng n subjects m =
  let subject = Prng.choose_list rng subjects in
  Rule.make ~subject ~mode:m ~node:(Prng.int rng n)
    ~sign:(if Prng.bool rng ~p:0.6 then Rule.Grant else Rule.Deny)
    ~scope:(if Prng.bool rng ~p:0.7 then Rule.Subtree else Rule.Self)

let test_incremental_matches_recompile () =
  let tree, subjects, s0, s1, m, rng = incr_setup 300 7 in
  let n = Tree.size tree in
  let inc = Incremental.create tree ~subjects ~mode:m [] in
  let applied = ref [] in
  for _ = 1 to 40 do
    let r = random_rule rng n [ s0; s1 ] m in
    ignore (Incremental.add_rule inc r);
    applied := r :: !applied;
    (* occasionally remove a random earlier rule *)
    if Prng.bool rng ~p:0.3 && !applied <> [] then begin
      let victim = List.nth !applied (Prng.int rng (List.length !applied)) in
      ignore (Incremental.remove_rule inc victim);
      applied :=
        (let removed = ref false in
         List.filter (fun r -> if (not !removed) && r = victim then (removed := true; false) else true) !applied)
    end
  done;
  let expected = Propagate.compile tree ~subjects ~mode:m !applied in
  let got = Incremental.labeling inc in
  for v = 0 to n - 1 do
    List.iter
      (fun s ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d subject %d" v s)
          (Labeling.accessible expected ~subject:s v)
          (Labeling.accessible got ~subject:s v))
      [ s0; s1 ]
  done

let test_incremental_changed_runs_cover () =
  let tree, subjects, s0, _, m, _ = incr_setup 200 9 in
  let inc = Incremental.create tree ~subjects ~mode:m [] in
  let before = Array.init (Tree.size tree) (fun v ->
      Labeling.accessible (Incremental.labeling inc) ~subject:s0 v) in
  let anchor = 5 mod Tree.size tree in
  let runs = Incremental.add_rule inc (Rule.grant ~subject:s0 ~mode:m anchor) in
  let after = Array.init (Tree.size tree) (fun v ->
      Labeling.accessible (Incremental.labeling inc) ~subject:s0 v) in
  let in_runs v = List.exists (fun (lo, hi) -> v >= lo && v <= hi) runs in
  Array.iteri
    (fun v b ->
      if b <> after.(v) then
        Alcotest.(check bool) (Printf.sprintf "changed %d covered" v) true (in_runs v))
    before;
  (* runs must lie within the anchor's subtree *)
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check bool) "run in subtree" true
        (lo >= anchor && hi <= Tree.subtree_end tree anchor))
    runs

let test_incremental_sync_dol () =
  let tree, subjects, s0, s1, m, rng = incr_setup 250 11 in
  let n = Tree.size tree in
  let inc = Incremental.create tree ~subjects ~mode:m [] in
  let dol = Dol.of_labeling (Incremental.labeling inc) in
  for _ = 1 to 25 do
    let r = random_rule rng n [ s0; s1 ] m in
    let runs = Incremental.add_rule inc r in
    Update.sync_ranges dol (Incremental.labeling inc) runs
  done;
  Dol.validate dol;
  Dol.verify_against dol (Incremental.labeling inc)

let test_incremental_remove_not_found () =
  let tree, subjects, s0, _, m, _ = incr_setup 50 13 in
  let inc = Incremental.create tree ~subjects ~mode:m [] in
  Alcotest.check_raises "missing rule" Not_found (fun () ->
      ignore (Incremental.remove_rule inc (Rule.grant ~subject:s0 ~mode:m 3)))

let test_incremental_noop_runs_empty () =
  let tree, subjects, s0, _, m, _ = incr_setup 80 15 in
  let inc =
    Incremental.create tree ~subjects ~mode:m [ Rule.grant ~subject:s0 ~mode:m 0 ]
  in
  (* granting again changes nothing *)
  let runs = Incremental.add_rule inc (Rule.grant ~subject:s0 ~mode:m 0) in
  check Alcotest.int "no changed runs" 0 (List.length runs)

let suite =
  [
    Alcotest.test_case "persist: roundtrip (multi-subject)" `Quick test_persist_roundtrip_small;
    prop_persist_roundtrip;
    Alcotest.test_case "persist: file save/load" `Quick test_persist_file;
    Alcotest.test_case "persist: corrupt input" `Quick test_persist_corrupt;
    Alcotest.test_case "persist: delta compression" `Quick test_persist_delta_compression;
    Alcotest.test_case "db file: roundtrip" `Quick test_db_file_roundtrip;
    Alcotest.test_case "db file: pool capacity 1" `Quick
      test_db_file_pool_capacity_1;
    Alcotest.test_case "db file: on disk" `Quick test_db_file_on_disk;
    Alcotest.test_case "db file: registry roundtrip" `Quick test_db_file_registry_roundtrip;
    Alcotest.test_case "db file: after page splits" `Quick test_db_file_after_splits;
    Alcotest.test_case "db file: corrupt" `Quick test_db_file_corrupt;
    Alcotest.test_case "stream filter = secure view" `Quick test_stream_filter_equals_view;
    prop_stream_filter_equals_view;
    Alcotest.test_case "stream filter event counts" `Quick test_stream_filter_event_counts;
    Alcotest.test_case "stream filter overflow" `Quick test_stream_filter_overflow;
    prop_stream_filter_multi_subject;
    Alcotest.test_case "streaming layout = batch (xmark)" `Quick
      test_stream_layout_equals_batch;
    prop_stream_layout_random;
    Alcotest.test_case "incremental = full recompile" `Quick test_incremental_matches_recompile;
    Alcotest.test_case "incremental changed runs cover" `Quick
      test_incremental_changed_runs_cover;
    Alcotest.test_case "incremental syncs a DOL" `Quick test_incremental_sync_dol;
    Alcotest.test_case "incremental remove not found" `Quick
      test_incremental_remove_not_found;
    Alcotest.test_case "incremental no-op" `Quick test_incremental_noop_runs_empty;
  ]
