(** Tests for [Dolx_xml]: arena trees, builder, parser, serializer. *)

module Tree = Dolx_xml.Tree
module Tag = Dolx_xml.Tag
module Parser = Dolx_xml.Parser
module Serializer = Dolx_xml.Serializer
module Tree_stats = Dolx_xml.Tree_stats
module Prng = Dolx_util.Prng

let check = Alcotest.check

let test_figure2_structure () =
  let t = Fixtures.figure2_tree () in
  check Alcotest.int "12 nodes" 12 (Tree.size t);
  (* the compacted document-order string of §3.1 *)
  check Alcotest.string "structure string"
    "a(b)(c)(d)(e(f)(g)(h(i)(j)(k)(l)))" (Tree.structure_string t);
  Tree.validate t

let test_navigation () =
  let t = Fixtures.figure2_tree () in
  (* preorders: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10 l=11 *)
  check Alcotest.string "root tag" "a" (Tree.tag_name t 0);
  check Alcotest.int "first child of a" 1 (Tree.first_child t 0);
  check Alcotest.int "b's sibling" 2 (Tree.next_sibling t 1);
  check Alcotest.int "e = 4" 4 (Tree.next_sibling t 3);
  check Alcotest.int "parent of l" 7 (Tree.parent t 11);
  check Alcotest.int "subtree size of e" 8 (Tree.subtree_size t 4);
  check Alcotest.int "subtree end of e" 11 (Tree.subtree_end t 4);
  Alcotest.(check bool) "a ancestor of l" true (Tree.is_ancestor t 0 11);
  Alcotest.(check bool) "e ancestor of l" true (Tree.is_ancestor t 4 11);
  Alcotest.(check bool) "b not ancestor of l" false (Tree.is_ancestor t 1 11);
  Alcotest.(check bool) "not self-ancestor" false (Tree.is_ancestor t 4 4);
  check Alcotest.int "depth of l" 3 (Tree.depth t 11);
  check Fixtures.int_list "children of h" [ 8; 9; 10; 11 ] (Tree.children t 7)

let test_closes_after () =
  let t = Fixtures.figure2_tree () in
  (* l closes l, h, e, a -> 4 *)
  check Alcotest.int "l closes 4" 4 (Tree.closes_after t 11);
  check Alcotest.int "b closes 1" 1 (Tree.closes_after t 1);
  check Alcotest.int "a closes 0" 0 (Tree.closes_after t 0);
  check Alcotest.int "g closes 1" 1 (Tree.closes_after t 6);
  (* sum of closes = number of nodes *)
  let total = Tree.fold (fun acc v -> acc + Tree.closes_after t v) 0 t in
  check Alcotest.int "closes sum to node count" (Tree.size t) total

let test_builder_text_and_errors () =
  let b = Tree.Builder.create () in
  ignore (Tree.Builder.open_element b "r");
  Tree.Builder.add_text b "hello ";
  ignore (Tree.Builder.leaf b "kid" "txt");
  Tree.Builder.add_text b "world";
  Tree.Builder.close_element b;
  let t = Tree.Builder.finish b in
  check Alcotest.string "concatenated text" "hello world" (Tree.text t 0);
  check Alcotest.string "leaf text" "txt" (Tree.text t 1);
  Alcotest.check_raises "unclosed element" (Invalid_argument "Builder: unclosed elements remain")
    (fun () ->
      let b = Tree.Builder.create () in
      ignore (Tree.Builder.open_element b "x");
      ignore (Tree.Builder.finish b));
  Alcotest.check_raises "multiple roots" (Invalid_argument "Builder: document already finished")
    (fun () ->
      let b = Tree.Builder.create () in
      ignore (Tree.Builder.open_element b "x");
      Tree.Builder.close_element b;
      ignore (Tree.Builder.open_element b "y"))

let test_parser_basic () =
  let t = Parser.parse "<a><b>one</b><c attr=\"v\">two</c><d/></a>" in
  check Alcotest.int "4 nodes" 4 (Tree.size t);
  check Alcotest.string "structure" "a(b)(c)(d)" (Tree.structure_string t);
  check Alcotest.string "text b" "one" (Tree.text t 1);
  check Alcotest.string "text c" "two" (Tree.text t 2)

let test_parser_entities () =
  let t = Parser.parse "<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>" in
  check Alcotest.string "entities decoded" "x & y <z> AB" (Tree.text t 0)

let test_parser_skips () =
  let t =
    Parser.parse
      "<?xml version=\"1.0\"?><!DOCTYPE a><a><!-- comment --><b><![CDATA[1<2]]></b></a>"
  in
  check Alcotest.int "2 nodes" 2 (Tree.size t);
  check Alcotest.string "cdata preserved" "1<2" (Tree.text t 1)

let test_parser_errors () =
  let fails s =
    match Parser.parse s with
    | exception Parser.Parse_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  fails "<a><b></a>";
  fails "<a>";
  fails "no markup";
  fails "<a></a><b></b>";
  fails "<a>&unknown;</a>"

let test_serializer_roundtrip () =
  let t = Fixtures.library_tree () in
  let s = Serializer.to_string t in
  let t2 = Parser.parse s in
  check Alcotest.string "structure preserved" (Tree.structure_string t)
    (Tree.structure_string t2);
  check Alcotest.string "texts preserved" (Tree.text t 2) (Tree.text t2 2)

let test_serializer_escaping () =
  let t =
    Tree.of_spec (Tree.Elt ("a", "x & <y>", []))
  in
  let s = Serializer.to_string t in
  let t2 = Parser.parse s in
  check Alcotest.string "escaped text survives" "x & <y>" (Tree.text t2 0)

let prop_random_tree_valid =
  Fixtures.qtest ~count:50 "random trees satisfy arena invariants"
    QCheck2.Gen.(pair (int_bound 1000) (int_range 1 200))
    (fun (seed, n) ->
      let t = Fixtures.random_tree (Prng.create seed) n in
      Tree.validate t;
      Tree.size t = n)

let prop_parse_serialize_roundtrip =
  Fixtures.qtest ~count:50 "parse . serialize = id (structure)"
    QCheck2.Gen.(pair (int_bound 1000) (int_range 1 100))
    (fun (seed, n) ->
      let t = Fixtures.random_tree (Prng.create seed) n in
      let t2 = Parser.parse (Serializer.to_string t) in
      Tree.structure_string t = Tree.structure_string t2)

let prop_subtree_interval =
  Fixtures.qtest ~count:50 "is_ancestor agrees with parent chain"
    QCheck2.Gen.(triple (int_bound 1000) (int_range 2 100) (int_bound 10_000))
    (fun (seed, n, pick) ->
      let t = Fixtures.random_tree (Prng.create seed) n in
      let a = pick mod n and d = (pick / 7) mod n in
      let rec chain v = v <> Tree.nil && (v = a || chain (Tree.parent t v)) in
      Tree.is_ancestor t a d = (a <> d && chain (Tree.parent t d)))

let prop_parser_never_crashes =
  (* Fuzz: arbitrary byte soup must either parse or raise Parse_error /
     Invalid_argument — never a crash or another exception. *)
  Fixtures.qtest ~count:300 "parser total on arbitrary input"
    QCheck2.Gen.(string_size ~gen:(char_range '\x20' '\x7e') (int_bound 80))
    (fun s ->
      match Parser.parse s with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Invalid_argument _ -> true)

let prop_parser_never_crashes_markupish =
  (* Markup-shaped fuzz: higher density of <, >, /, &, quotes. *)
  Fixtures.qtest ~count:300 "parser total on markup-like input"
    QCheck2.Gen.(
      string_size
        ~gen:(oneofl [ '<'; '>'; '/'; '&'; '"'; 'a'; 'b'; ' '; '='; ';'; '!'; '-'; '[' ])
        (int_bound 60))
    (fun s ->
      match Parser.parse s with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Invalid_argument _ -> true)

let test_tag_interning () =
  let tbl = Tag.create () in
  let a = Tag.intern tbl "x" in
  let b = Tag.intern tbl "y" in
  let a' = Tag.intern tbl "x" in
  check Alcotest.int "stable ids" a a';
  Alcotest.(check bool) "distinct ids" true (a <> b);
  check Alcotest.string "name" "y" (Tag.name tbl b);
  check Alcotest.int "count" 2 (Tag.count tbl)

let test_tree_stats () =
  let t = Fixtures.figure2_tree () in
  let s = Tree_stats.compute t in
  check Alcotest.int "nodes" 12 s.Tree_stats.nodes;
  check Alcotest.int "max depth" 3 s.Tree_stats.max_depth;
  check Alcotest.int "leaves" 9 s.Tree_stats.leaves;
  check Alcotest.int "max fanout" 4 s.Tree_stats.max_fanout;
  check Alcotest.int "tags" 12 s.Tree_stats.distinct_tags

let test_iter_subtree () =
  let t = Fixtures.figure2_tree () in
  let acc = ref [] in
  Tree.iter_subtree (fun v -> acc := v :: !acc) t 4;
  check Fixtures.int_list "subtree of e" [ 4; 5; 6; 7; 8; 9; 10; 11 ] (List.rev !acc)

let suite =
  [
    Alcotest.test_case "figure 2 structure" `Quick test_figure2_structure;
    Alcotest.test_case "navigation" `Quick test_navigation;
    Alcotest.test_case "closes_after" `Quick test_closes_after;
    Alcotest.test_case "builder text + errors" `Quick test_builder_text_and_errors;
    Alcotest.test_case "parser basic" `Quick test_parser_basic;
    Alcotest.test_case "parser entities" `Quick test_parser_entities;
    Alcotest.test_case "parser skips" `Quick test_parser_skips;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "serializer roundtrip" `Quick test_serializer_roundtrip;
    Alcotest.test_case "serializer escaping" `Quick test_serializer_escaping;
    prop_random_tree_valid;
    prop_parse_serialize_roundtrip;
    prop_subtree_interval;
    prop_parser_never_crashes;
    prop_parser_never_crashes_markupish;
    Alcotest.test_case "tag interning" `Quick test_tag_interning;
    Alcotest.test_case "tree stats" `Quick test_tree_stats;
    Alcotest.test_case "iter subtree" `Quick test_iter_subtree;
  ]
