(** Coverage sweep: small, direct assertions for API surface the themed
    suites exercise only indirectly — error paths, pretty-printers,
    accessors, option handling. *)

module Tree = Dolx_xml.Tree
module Serializer = Dolx_xml.Serializer
module Parser = Dolx_xml.Parser
module Tree_stats = Dolx_xml.Tree_stats
module Prng = Dolx_util.Prng
module Stats = Dolx_util.Stats
module Bitset = Dolx_util.Bitset
module Varint = Dolx_util.Varint
module Int_vec = Dolx_util.Int_vec
module Lru = Dolx_util.Lru
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Acl = Dolx_policy.Acl
module Rule = Dolx_policy.Rule
module Labeling = Dolx_policy.Labeling
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Store = Dolx_core.Secure_store
module Secure_view = Dolx_core.Secure_view
module Nok_layout = Dolx_storage.Nok_layout
module Disk = Dolx_storage.Disk
module Btree = Dolx_index.Btree
module Pattern = Dolx_nok.Pattern
module Xpath = Dolx_nok.Xpath
module Decompose = Dolx_nok.Decompose
module Engine = Dolx_nok.Engine
module Tag_index = Dolx_index.Tag_index

let check = Alcotest.check

let test_serializer_variants () =
  let t = Fixtures.library_tree () in
  (* subtree serialization *)
  let shelf2 = 12 in
  let s = Serializer.to_string ~v:shelf2 t in
  let sub = Parser.parse s in
  check Alcotest.string "subtree only" "shelf(book(title)(author))"
    (Tree.structure_string sub);
  (* indented output still parses to the same structure *)
  let indented = Parser.parse (Serializer.to_string ~indent:true t) in
  check Alcotest.string "indent roundtrip" (Tree.structure_string t)
    (Tree.structure_string indented);
  check Alcotest.string "escape" "a &amp;&lt;&gt; b" (Serializer.escape_text "a &<> b")

let test_tree_misc () =
  let t = Fixtures.figure2_tree () in
  check Alcotest.int "fold counts nodes" 12 (Tree.fold (fun acc _ -> acc + 1) 0 t);
  Alcotest.(check bool) "leaf" true (Tree.is_leaf t 1);
  Alcotest.(check bool) "internal" false (Tree.is_leaf t 4);
  check Alcotest.int "root depth" 0 (Tree.depth t 0);
  Alcotest.check_raises "bad node" (Invalid_argument "Tree: node out of range")
    (fun () -> ignore (Tree.tag t 99))

let test_prng_misc () =
  let rng = Prng.create 5 in
  let twin = Prng.copy rng in
  check Alcotest.int "copy replays" (Prng.int rng 1000) (Prng.int twin 1000);
  let l = [ 10; 20; 30 ] in
  Alcotest.(check bool) "choose_list member" true (List.mem (Prng.choose_list rng l) l);
  for _ = 1 to 100 do
    let g = Prng.geometric rng ~p:0.5 ~max:7 in
    Alcotest.(check bool) "geometric bounded" true (g >= 0 && g <= 7)
  done;
  Alcotest.check_raises "empty choose" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (Prng.choose rng [||]))

let test_stats_misc () =
  check (Alcotest.float 1e-9) "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "mean_arr" 2.5 (Stats.mean_arr [| 2.0; 3.0 |]);
  check
    Alcotest.(list (pair int int))
    "histogram" [ (1, 2); (2, 1) ]
    (Stats.histogram [ 1; 2; 1 ]);
  check (Alcotest.float 1e-9) "ratio_int" 0.25 (Stats.ratio_int 1 4)

let test_bitset_misc () =
  let b = Bitset.of_list 5 [ 0; 3 ] in
  check Alcotest.string "render" "10010" (Bitset.to_string b);
  Alcotest.(check bool) "compare orders" true (Bitset.compare b (Bitset.full 5) <> 0);
  check Alcotest.int "compare self" 0 (Bitset.compare b (Bitset.copy b));
  Alcotest.check_raises "width mismatch" (Invalid_argument "Bitset.union: width mismatch")
    (fun () -> ignore (Bitset.union b (Bitset.create 6)))

let test_varint_errors () =
  Alcotest.check_raises "negative" (Invalid_argument "Varint.write: negative")
    (fun () -> ignore (Varint.write (Bytes.create 10) 0 (-1)))

let test_int_vec_misc () =
  let v = Int_vec.of_array [| 1; 2; 3 |] in
  Int_vec.clear v;
  Alcotest.(check bool) "cleared" true (Int_vec.is_empty v);
  Int_vec.push v 9;
  let seen = ref [] in
  Int_vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check Alcotest.(list (pair int int)) "iteri" [ (0, 9) ] !seen

let test_lru_mem () =
  let l = Lru.create () in
  Lru.touch l 3;
  Alcotest.(check bool) "mem" true (Lru.mem l 3);
  Alcotest.(check bool) "not mem" false (Lru.mem l 4)

let test_registry_errors () =
  let subjects = Subject.create () in
  ignore (Subject.add_user subjects "x");
  Alcotest.check_raises "dup subject" (Invalid_argument "Subject.add: duplicate x")
    (fun () -> ignore (Subject.add_user subjects "x"));
  let u = Option.get (Subject.find_opt subjects "x") in
  Alcotest.check_raises "membership in non-group"
    (Invalid_argument "Subject.add_membership: not a group") (fun () ->
      Subject.add_membership subjects ~child:u ~group:u);
  let modes = Mode.create () in
  ignore (Mode.add modes "m");
  Alcotest.check_raises "dup mode" (Invalid_argument "Mode.add: duplicate m")
    (fun () -> ignore (Mode.add modes "m"))

let test_acl_empty_full () =
  let store = Acl.create ~width:3 in
  Alcotest.(check bool) "empty denies" false (Acl.grants store (Acl.empty store) 1);
  Alcotest.(check bool) "full grants" true (Acl.grants store (Acl.full store) 2);
  check Alcotest.int "width" 3 (Acl.width store)

let test_pp_smoke () =
  (* the pretty-printers should render something non-empty and not raise *)
  let tree = Fixtures.figure2_tree () in
  let dol = Dol.of_bool_array (Array.make 12 true) in
  let non_empty s = Alcotest.(check bool) s true (String.length s > 0) in
  non_empty (Fmt.str "%a" Dol.pp dol);
  non_empty (Fmt.str "%a" Tree_stats.pp (Tree_stats.compute tree));
  let p = Xpath.parse "//a[b]/c" in
  non_empty (Fmt.str "%a" Pattern.pp p);
  non_empty (Fmt.str "%a" Decompose.pp (Decompose.plan p));
  let subjects = Subject.create () in
  let s = Subject.add_user subjects "s" in
  let modes = Mode.create () in
  let m = Mode.add modes "read" in
  non_empty (Fmt.str "%a" (Rule.pp subjects modes) (Rule.grant ~subject:s ~mode:m 0));
  let store = Store.create tree dol in
  non_empty (Fmt.str "%a" Store.pp_io (Store.io_stats store))

let test_store_create_mismatch () =
  let tree = Fixtures.figure2_tree () in
  let dol = Dol.of_bool_array (Array.make 5 true) in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Secure_store.create: tree / DOL size mismatch") (fun () ->
      ignore (Store.create tree dol))

let test_engine_count_and_parse_opt () =
  let tree = Fixtures.library_tree () in
  let dol = Dol.of_bool_array (Array.make (Tree.size tree) true) in
  let store = Store.create tree dol in
  let index = Tag_index.build tree in
  check Alcotest.int "count" 4 (Engine.count store index "//book" (Engine.Secure 0));
  Alcotest.(check bool) "parse_opt ok" true (Xpath.parse_opt "//a" <> None);
  Alcotest.(check bool) "parse_opt bad" true (Xpath.parse_opt "nope" = None)

let test_layout_accessors () =
  let tree = Fixtures.figure2_tree () in
  let dol = Dol.of_bool_array (Array.make 12 true) in
  let store = Store.create ~page_size:64 ~fill:0.5 tree dol in
  let layout = Store.layout store in
  check Alcotest.int "node count" 12 (Nok_layout.node_count layout);
  Alcotest.(check bool) "several pages" true (Nok_layout.page_count layout > 1);
  Alcotest.(check bool) "physical page exists" true
    (Nok_layout.physical_page layout 0 >= 0);
  Alcotest.(check bool) "storage bytes" true (Nok_layout.storage_bytes layout > 0);
  check Alcotest.int "record bytes" 3
    (Nok_layout.record_bytes { Nok_layout.pre = 0; tag = 1; closes = 1; code = None });
  Alcotest.check_raises "bad header index" (Invalid_argument "Nok_layout.header")
    (fun () -> ignore (Nok_layout.header layout 999))

let test_disk_errors () =
  let d = Disk.create ~page_size:64 () in
  Alcotest.check_raises "bad page id"
    (Invalid_argument "Disk.read: page 0 out of range (page count 0)")
    (fun () -> Disk.read d 0 (Bytes.create 64))

let test_btree_accessors () =
  let t = Btree.create ~order:4 () in
  Alcotest.(check bool) "empty mem" false (Btree.mem t 1);
  check Alcotest.int "empty height" 1 (Btree.height t);
  Alcotest.check_raises "tiny order" (Invalid_argument "Btree.create: order must be >= 4")
    (fun () -> ignore (Btree.create ~order:2 ()))

let test_labeling_ratio () =
  let lab = Labeling.of_bool_array [| true; true; false; false |] in
  check (Alcotest.float 1e-9) "ratio" 0.5 (Labeling.accessibility_ratio lab ~subject:0)

let test_view_count_lift () =
  let tree, dol =
    ( Fixtures.figure2_tree (),
      Dol.of_bool_array
        [| true; false; true; false; true; false; true; false; true; false; true; false |] )
  in
  check Alcotest.int "lift counts all accessible" 6
    (Secure_view.visible_count ~semantics:Secure_view.Lift_children tree dol ~subject:0)

let test_codebook_bytes () =
  let cb = Codebook.create ~width:16 in
  ignore (Codebook.intern cb (Bitset.full 16));
  ignore (Codebook.intern cb (Bitset.create 16));
  check Alcotest.int "2 entries x 2 bytes" 4 (Codebook.storage_bytes cb)

let test_pattern_helpers () =
  let p = Xpath.parse "//a[b]/c" in
  Alcotest.(check bool) "single NoK" true (Pattern.is_single_nok p);
  let pj = Xpath.parse "//a//c" in
  Alcotest.(check bool) "not single NoK" false (Pattern.is_single_nok pj);
  let r = Pattern.returning_node p in
  Alcotest.(check bool) "returning is c" true (r.Pattern.test = Pattern.Tag "c")

let test_engine_explain () =
  let tree = Fixtures.library_tree () in
  let dol = Dol.of_bool_array (Array.make (Tree.size tree) true) in
  let store = Store.create tree dol in
  let index = Tag_index.build tree in
  let s = Engine.explain store index (Xpath.parse "//shelf//title[book]") in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions join" true (contains s "structural join");
  Alcotest.(check bool) "mentions candidates" true (contains s "index candidates")

let test_insert_subtree_errors () =
  let t = Fixtures.figure2_tree () in
  let sub = Tree.of_spec (Tree.El ("x", [])) in
  Alcotest.check_raises "bad sibling"
    (Invalid_argument "Tree.insert_subtree: after is not a child of parent")
    (fun () -> ignore (Tree.insert_subtree t ~parent:4 ~after:1 sub))

let suite =
  [
    Alcotest.test_case "serializer variants" `Quick test_serializer_variants;
    Alcotest.test_case "tree misc" `Quick test_tree_misc;
    Alcotest.test_case "prng misc" `Quick test_prng_misc;
    Alcotest.test_case "stats misc" `Quick test_stats_misc;
    Alcotest.test_case "bitset misc" `Quick test_bitset_misc;
    Alcotest.test_case "varint errors" `Quick test_varint_errors;
    Alcotest.test_case "int_vec misc" `Quick test_int_vec_misc;
    Alcotest.test_case "lru mem" `Quick test_lru_mem;
    Alcotest.test_case "registry errors" `Quick test_registry_errors;
    Alcotest.test_case "acl empty/full" `Quick test_acl_empty_full;
    Alcotest.test_case "pretty-printers" `Quick test_pp_smoke;
    Alcotest.test_case "store size mismatch" `Quick test_store_create_mismatch;
    Alcotest.test_case "engine count + parse_opt" `Quick test_engine_count_and_parse_opt;
    Alcotest.test_case "layout accessors" `Quick test_layout_accessors;
    Alcotest.test_case "disk errors" `Quick test_disk_errors;
    Alcotest.test_case "btree accessors" `Quick test_btree_accessors;
    Alcotest.test_case "labeling ratio" `Quick test_labeling_ratio;
    Alcotest.test_case "view count (lift)" `Quick test_view_count_lift;
    Alcotest.test_case "codebook bytes" `Quick test_codebook_bytes;
    Alcotest.test_case "pattern helpers" `Quick test_pattern_helpers;
    Alcotest.test_case "engine explain" `Quick test_engine_explain;
    Alcotest.test_case "insert subtree errors" `Quick test_insert_subtree_errors;
  ]
