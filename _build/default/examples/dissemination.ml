(* Streaming dissemination: construct the DOL in a single pass while the
   document streams in (paper §2: "a document order encoding of access
   rights can be constructed on-the-fly using a single pass"), then push
   per-subscriber secured views out — the selective-dissemination
   use-case from the paper's conclusion.

     dune exec examples/dissemination.exe
*)

module Tree = Dolx_xml.Tree
module Parser = Dolx_xml.Parser
module Serializer = Dolx_xml.Serializer
module Bitset = Dolx_util.Bitset
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Secure_view = Dolx_core.Secure_view
module Prng = Dolx_util.Prng
module Xmark = Dolx_workload.Xmark
module Synth_acl = Dolx_workload.Synth_acl

let n_subscribers = 8

let () =
  (* A feed document (a small auction site) arriving as a stream of SAX
     events.  Subscribers 0..3 are "premium" (two archetype profiles),
     4..7 are regional. *)
  let tree = Xmark.generate_nodes ~seed:2024 2_500 in
  let labeling =
    Synth_acl.generate_multi tree ~seed:7 ~n_subjects:n_subscribers
      ~n_archetypes:3 ()
  in
  (* --- one pass over the stream builds BOTH the DOL and the on-disk
     pages: the publisher never materializes the document --- *)
  let builder = Dol.Streaming.create ~width:n_subscribers in
  let disk = Dolx_storage.Disk.create ~page_size:1024 () in
  let pages = Dolx_storage.Stream_layout.create disk in
  let control_chars = ref 0 in
  let rec stream v =
    (* each start-element consults the policy output for the node and may
       emit one "control character" (a transition code) into the stream
       and onto the current page *)
    let code = Dol.Streaming.push builder (Dolx_policy.Labeling.acl labeling v) in
    if code <> None then incr control_chars;
    Dolx_storage.Stream_layout.start_element pages ~tag:(Tree.tag tree v) ?code ();
    Tree.iter_children stream tree v;
    Dolx_storage.Stream_layout.end_element pages
  in
  stream Tree.root;
  let dol = Dol.Streaming.finish builder in
  let layout = Dolx_storage.Stream_layout.finish pages in
  Printf.printf
    "streamed %d elements; embedded %d access-control codes (%.2f%% of events) onto %d pages\n"
    (Tree.size tree) !control_chars
    (100.0 *. float_of_int !control_chars /. float_of_int (Tree.size tree))
    (Dolx_storage.Nok_layout.page_count layout);
  (* the streamed pages are immediately queryable *)
  let store = Dolx_core.Secure_store.assemble ~tree ~dol ~disk ~layout () in
  let index = Dolx_index.Tag_index.build tree in
  Printf.printf "secure query on the streamed store: subscriber 1 sees %d items\n"
    (Dolx_nok.Engine.count store index "//item" (Dolx_nok.Engine.Secure 1));
  Printf.printf "codebook: %d entries shared by %d subscribers (%d bytes)\n\n"
    (Codebook.count (Dol.codebook dol))
    n_subscribers (Dol.codebook_bytes dol);
  (* every subscriber may see the feed envelope itself: a per-subject
     single-node accessibility update on the root (§3.4) *)
  for s = 0 to n_subscribers - 1 do
    ignore (Dolx_core.Update.dol_set_node dol ~subject:s ~grant:true 0)
  done;
  (* --- fan the document out: one pruned copy per subscriber --- *)
  for s = 0 to n_subscribers - 1 do
    match Secure_view.view tree dol ~subject:s with
    | view ->
        let bytes = String.length (Serializer.to_string view) in
        Printf.printf "subscriber %d receives %5d of %d nodes (%5d bytes)\n" s
          (Tree.size view) (Tree.size tree) bytes
    | exception Secure_view.Root_inaccessible ->
        Printf.printf "subscriber %d receives nothing (root hidden)\n" s
  done;
  (* correlated subscribers share codes: show the three most common ACLs *)
  let usage = Hashtbl.create 16 in
  List.iter
    (fun (_, code) ->
      Hashtbl.replace usage code (1 + Option.value ~default:0 (Hashtbl.find_opt usage code)))
    (Dol.transitions dol);
  let top =
    Hashtbl.fold (fun c k acc -> (k, c) :: acc) usage []
    |> List.sort (fun a b -> compare b a)
  in
  Printf.printf "\nmost frequent access-control lists at transitions:\n";
  List.iteri
    (fun i (k, c) ->
      if i < 3 then
        Printf.printf "  %s used by %d transitions\n"
          (Bitset.to_string (Codebook.get (Dol.codebook dol) c))
          k)
    top
