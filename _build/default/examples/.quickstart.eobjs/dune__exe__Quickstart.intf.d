examples/quickstart.mli:
