examples/filesystem_audit.mli:
