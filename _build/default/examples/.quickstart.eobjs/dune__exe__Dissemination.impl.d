examples/dissemination.ml: Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_storage Dolx_util Dolx_workload Dolx_xml Hashtbl List Option Printf String
