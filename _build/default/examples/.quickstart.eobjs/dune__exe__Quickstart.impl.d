examples/quickstart.ml: Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_xml Fmt List Option Printf String
