examples/dissemination.mli:
