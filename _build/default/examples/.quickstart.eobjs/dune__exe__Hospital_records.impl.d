examples/hospital_records.ml: Dolx_core Dolx_index Dolx_nok Dolx_policy Dolx_xml List Printf
