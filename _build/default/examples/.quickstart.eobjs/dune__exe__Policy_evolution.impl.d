examples/policy_evolution.ml: Dolx_core Dolx_policy Dolx_util Dolx_workload Dolx_xml List Printf Unix
