examples/filesystem_audit.ml: Array Dolx_core Dolx_policy Dolx_util Dolx_workload Dolx_xml Hashtbl Printf
