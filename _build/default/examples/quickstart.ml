(* Quickstart: label an XML document with fine-grained access control,
   build its DOL, and run secure queries against the paged store.

     dune exec examples/quickstart.exe
*)

module Tree = Dolx_xml.Tree
module Parser = Dolx_xml.Parser
module Policy_file = Dolx_policy.Policy_file
module Propagate = Dolx_policy.Propagate
module Dol = Dolx_core.Dol
module Store = Dolx_core.Secure_store
module Engine = Dolx_nok.Engine
module Tag_index = Dolx_index.Tag_index

let document =
  {|<library>
      <shelf id="public">
        <book><title>XML Processing</title><price>30</price></book>
        <book><title>Query Optimization</title><price>45</price></book>
      </shelf>
      <shelf id="rare">
        <book><title>First Folio</title><price>99999</price></book>
      </shelf>
    </library>|}

let policy =
  {|# subjects and modes
    mode read
    user alice
    user bob
    group curators
    member alice curators

    # everyone may read the library, but the rare shelf is curator-only
    grant alice read @library
    grant bob   read @library
    deny  bob   read @rare-shelf
  |}

let () =
  (* 1. parse the document into an arena tree *)
  let tree = Parser.parse document in
  Printf.printf "document: %d nodes, structure %s\n\n" (Tree.size tree)
    (Tree.structure_string tree);
  (* 2. load the policy; @keys resolve to anchor nodes *)
  let resolve = function
    | "library" -> [ Tree.root ]
    | "rare-shelf" ->
        (* second shelf: preorder of the shelf whose first book is the
           folio; here simply the 2nd child of the root *)
        [ List.nth (Tree.children tree Tree.root) 1 ]
    | key -> failwith ("unknown key " ^ key)
  in
  let subjects, _modes, rules = Policy_file.load ~resolve policy in
  (* 3. compile rules into a per-node labeling and build the DOL *)
  let labeling = Propagate.compile tree ~subjects ~mode:0 rules in
  let dol = Dol.of_labeling labeling in
  Fmt.pr "%a@." Dol.pp dol;
  (* 4. lay the document + DOL out on (simulated) disk pages *)
  let store = Store.create ~page_size:4096 tree dol in
  let index = Tag_index.build tree in
  (* 5. run the same twig query as different subjects *)
  let query = "/library/shelf/book/title" in
  let show name subject =
    let result = Engine.query store index query (Engine.Secure subject) in
    Printf.printf "%-6s sees %d titles: %s\n" name
      (List.length result.Engine.answers)
      (String.concat ", "
         (List.map (fun v -> Tree.text tree v) result.Engine.answers))
  in
  Printf.printf "query: %s\n" query;
  let id name = Option.get (Dolx_policy.Subject.find_opt subjects name) in
  show "alice" (id "alice");
  show "bob" (id "bob");
  (* 6. revoke and observe — updates keep the physical pages in sync *)
  let rare = List.nth (Tree.children tree Tree.root) 1 in
  ignore
    (Dolx_core.Update.set_subtree_accessibility store ~subject:(id "alice")
       ~grant:false rare);
  Printf.printf "\nafter revoking alice on the rare shelf:\n";
  show "alice" (id "alice")
