(* Hospital records: the fine-grained, multi-subject, multi-mode scenario
   that motivates per-node XML access control.  Doctors see clinical
   data, billing sees invoices, patients see their own record — all
   enforced by one multi-subject DOL over one document.

     dune exec examples/hospital_records.exe
*)

module Tree = Dolx_xml.Tree
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Rule = Dolx_policy.Rule
module Propagate = Dolx_policy.Propagate
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Store = Dolx_core.Secure_store
module Secure_view = Dolx_core.Secure_view
module Engine = Dolx_nok.Engine
module Tag_index = Dolx_index.Tag_index
module Serializer = Dolx_xml.Serializer

(* Build a record for one patient. *)
let patient name diagnosis medication amount =
  Tree.El
    ( "patient",
      [
        Tree.Elt ("name", name, []);
        Tree.El
          ( "clinical",
            [
              Tree.Elt ("diagnosis", diagnosis, []);
              Tree.Elt ("medication", medication, []);
              Tree.El ("notes", [ Tree.Elt ("note", "stable", []) ]);
            ] );
        Tree.El
          ( "billing",
            [ Tree.Elt ("invoice", amount, []); Tree.Elt ("insurer", "ACME", []) ] );
      ] )

let () =
  let tree =
    Tree.of_spec
      (Tree.El
         ( "hospital",
           [
             patient "Ada" "fracture" "analgesic" "1200";
             patient "Grace" "arrhythmia" "betablocker" "3400";
             patient "Alan" "pneumonia" "antibiotic" "800";
           ] ))
  in
  (* subjects: roles as groups, people as users *)
  let subjects = Subject.create () in
  let doctors = Subject.add_group subjects "doctors" in
  let billing = Subject.add_group subjects "billing" in
  let dr_house = Subject.add_user subjects "dr_house" in
  Subject.add_membership subjects ~child:dr_house ~group:doctors;
  let clerk = Subject.add_user subjects "clerk" in
  Subject.add_membership subjects ~child:clerk ~group:billing;
  let ada = Subject.add_user subjects "ada" in
  let modes = Mode.create () in
  let read = Mode.add modes "read" in
  let patients = Tree.children tree Tree.root in
  let find_child v tag =
    List.find (fun c -> Tree.tag_name tree c = tag) (Tree.children tree v)
  in
  let rules =
    (* doctors read everything except billing *)
    [ Rule.grant ~subject:doctors ~mode:read Tree.root ]
    @ List.map (fun p -> Rule.deny ~subject:doctors ~mode:read (find_child p "billing")) patients
    (* billing reads the spine + billing sections only *)
    @ [ Rule.grant ~scope:Rule.Self ~subject:billing ~mode:read Tree.root ]
    @ List.concat_map
        (fun p ->
          [
            Rule.grant ~scope:Rule.Self ~subject:billing ~mode:read p;
            Rule.grant ~scope:Rule.Self ~subject:billing ~mode:read (find_child p "name");
            Rule.grant ~subject:billing ~mode:read (find_child p "billing");
          ])
        patients
    (* patient Ada reads her own record *)
    @ [
        Rule.grant ~scope:Rule.Self ~subject:ada ~mode:read Tree.root;
        Rule.grant ~subject:ada ~mode:read (List.nth patients 0);
      ]
  in
  let labeling = Propagate.compile tree ~subjects ~mode:read rules in
  let dol = Dol.of_labeling labeling in
  Printf.printf "%d nodes, %d subjects -> %d transitions, %d codebook entries\n\n"
    (Tree.size tree) (Subject.count subjects)
    (Dol.transition_count dol)
    (Codebook.count (Dol.codebook dol));
  let store = Store.create tree dol in
  let index = Tag_index.build tree in
  let count who subject q =
    let r = Engine.query store index q (Engine.Secure subject) in
    Printf.printf "%-9s %-32s -> %d answers\n" who q (List.length r.Engine.answers)
  in
  count "doctor" doctors "//diagnosis";
  count "doctor" doctors "//invoice";
  count "billing" billing "//invoice";
  count "billing" billing "//diagnosis";
  count "ada" ada "//diagnosis";
  (* users combine their own rights with their groups' (subject
     hierarchy): dr_house has no direct rules but inherits from doctors *)
  let effective =
    Dolx_policy.Labeling.accessible_user labeling ~registry:subjects ~user:dr_house
  in
  Printf.printf "\ndr_house (via doctors group) can read Grace's diagnosis: %b\n"
    (effective
       (find_child (find_child (List.nth patients 1) "clinical") "diagnosis"));
  (* per-subject secure views for dissemination *)
  Printf.printf "\nAda's view of the document (inaccessible subtrees pruned):\n%s\n"
    (Serializer.to_string ~indent:true (Secure_view.view tree dol ~subject:ada))
