(* Access audit over a Unix-like file system: the paper's second real
   dataset is a permission-bit file tree, and the DOL makes "who can read
   what" questions cheap to answer at scale without materializing the
   full subjects × files matrix.

     dune exec examples/filesystem_audit.exe
*)

module Tree = Dolx_xml.Tree
module Subject = Dolx_policy.Subject
module Labeling = Dolx_policy.Labeling
module Bitset = Dolx_util.Bitset
module Dol = Dolx_core.Dol
module Codebook = Dolx_core.Codebook
module Unixfs = Dolx_workload.Unixfs

let () =
  let fs =
    Unixfs.generate
      ~config:{ Unixfs.seed = 99; target_nodes = 15_000; n_users = 60; n_groups = 12 }
      ()
  in
  let tree = fs.Unixfs.tree in
  let n = Tree.size tree in
  let lab = fs.Unixfs.read_labeling in
  let dol = Dol.of_labeling lab in
  let subjects = Subject.count fs.Unixfs.subjects in
  Printf.printf "file system: %d files/dirs, %d subjects\n" n subjects;
  Printf.printf "naive accessibility matrix: %s;  DOL: %s (%.1fx smaller)\n\n"
    (Printf.sprintf "%.1f MB" (float_of_int (n * subjects) /. 8.0 /. 1048576.0))
    (Printf.sprintf "%.1f KB" (float_of_int (Dol.storage_bytes dol) /. 1024.0))
    (float_of_int (n * subjects / 8) /. float_of_int (Dol.storage_bytes dol));
  (* audit 1: world-readable files — nodes whose ACL grants every user *)
  let full = ref 0 and private_only = ref 0 in
  let cb = Dol.codebook dol in
  let popcounts = Hashtbl.create 64 in
  Codebook.iter (fun c bits -> Hashtbl.replace popcounts c (Bitset.popcount bits)) cb;
  for v = 0 to n - 1 do
    let k = Hashtbl.find popcounts (Dol.code_at dol v) in
    if k >= subjects - 1 then incr full;
    if k <= 2 then incr private_only
  done;
  Printf.printf "world-readable nodes: %d (%.1f%%)\n" !full
    (100.0 *. float_of_int !full /. float_of_int n);
  Printf.printf "private nodes (<=2 subjects): %d (%.1f%%)\n\n" !private_only
    (100.0 *. float_of_int !private_only /. float_of_int n);
  (* audit 2: per-user reach, straight off the labeling *)
  let reach u = Labeling.count_accessible lab ~subject:u in
  let users = fs.Unixfs.users in
  let widest = ref users.(0) and narrowest = ref users.(0) in
  Array.iter
    (fun u ->
      if reach u > reach !widest then widest := u;
      if reach u < reach !narrowest then narrowest := u)
    users;
  Printf.printf "widest reach:    %s reads %d nodes\n"
    (Subject.name fs.Unixfs.subjects !widest)
    (reach !widest);
  Printf.printf "narrowest reach: %s reads %d nodes\n\n"
    (Subject.name fs.Unixfs.subjects !narrowest)
    (reach !narrowest);
  (* audit 3: read vs write exposure *)
  let wdol = Dol.of_labeling fs.Unixfs.write_labeling in
  Printf.printf "read  DOL: %d transitions, %d codebook entries\n"
    (Dol.transition_count dol) (Codebook.count cb);
  Printf.printf "write DOL: %d transitions, %d codebook entries\n"
    (Dol.transition_count wdol)
    (Codebook.count (Dol.codebook wdol));
  (* audit 4: everything one compromised group could read *)
  let g0 = fs.Unixfs.groups.(0) in
  Printf.printf "\nif group %s is compromised it can read %d nodes (%.1f%%)\n"
    (Subject.name fs.Unixfs.subjects g0)
    (Labeling.count_accessible lab ~subject:g0)
    (100.0 *. Labeling.accessibility_ratio lab ~subject:g0)
