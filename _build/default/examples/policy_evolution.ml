(* Policy evolution: rules come and go while queries keep running.  The
   incremental maintainer relabels only the affected subtree and reports
   the changed preorder runs; the DOL is patched range-by-range instead
   of rebuilt (paper §1: "incrementally maintainable accessibility
   maps").

     dune exec examples/policy_evolution.exe
*)

module Tree = Dolx_xml.Tree
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Rule = Dolx_policy.Rule
module Propagate = Dolx_policy.Propagate
module Incremental = Dolx_policy.Incremental
module Dol = Dolx_core.Dol
module Update = Dolx_core.Update
module Prng = Dolx_util.Prng
module Xmark = Dolx_workload.Xmark

let () =
  let tree = Xmark.generate_nodes ~seed:404 30_000 in
  let n = Tree.size tree in
  let subjects = Subject.create () in
  let auditors = Subject.add_group subjects "auditors" in
  let interns = Subject.add_group subjects "interns" in
  let modes = Mode.create () in
  let read = Mode.add modes "read" in
  (* initial policy: auditors see everything, interns see the catalog *)
  let categories =
    (* first node tagged "categories" *)
    let found = ref Tree.nil in
    Tree.iter (fun v -> if !found = Tree.nil && Tree.tag_name tree v = "categories" then found := v) tree;
    !found
  in
  let initial =
    [
      Rule.grant ~subject:auditors ~mode:read Tree.root;
      Rule.grant ~subject:interns ~mode:read categories;
    ]
  in
  let inc = Incremental.create tree ~subjects ~mode:read initial in
  let dol = Dol.of_labeling (Incremental.labeling inc) in
  Printf.printf "document: %d nodes; initial DOL: %d transitions\n\n" n
    (Dol.transition_count dol);
  (* a quarter of compliance churn: 200 rule changes *)
  let rng = Prng.create 405 in
  let t0 = Unix.gettimeofday () in
  let touched = ref 0 in
  let changes = ref 0 in
  let live = ref [] in
  for _ = 1 to 200 do
    let runs =
      if !live <> [] && Prng.bool rng ~p:0.3 then begin
        let r = Prng.choose_list rng !live in
        live := List.filter (fun x -> x <> r) !live;
        Incremental.remove_rule inc r
      end
      else begin
        let r =
          Rule.make
            ~subject:(if Prng.bool rng ~p:0.5 then auditors else interns)
            ~mode:read ~node:(Prng.int rng n)
            ~sign:(if Prng.bool rng ~p:0.5 then Rule.Grant else Rule.Deny)
            ~scope:Rule.Subtree
        in
        live := r :: !live;
        Incremental.add_rule inc r
      end
    in
    incr changes;
    List.iter (fun (lo, hi) -> touched := !touched + hi - lo + 1) runs;
    Update.sync_ranges dol (Incremental.labeling inc) runs
  done;
  let incr_s = Unix.gettimeofday () -. t0 in
  Printf.printf "%d rule changes: touched %d node labels total (%.1f per change)\n"
    !changes !touched
    (float_of_int !touched /. float_of_int !changes);
  Printf.printf "incremental maintenance: %.1f ms (%.2f ms per change)\n" (incr_s *. 1000.0)
    (incr_s *. 1000.0 /. float_of_int !changes);
  (* compare with recompiling the whole policy every time *)
  let rules_now = Incremental.rules inc in
  let t1 = Unix.gettimeofday () in
  let full = Propagate.compile tree ~subjects ~mode:read rules_now in
  let full_s = Unix.gettimeofday () -. t1 in
  Printf.printf "one full recompile of the final policy: %.1f ms (x%d changes = %.0f ms)\n"
    (full_s *. 1000.0) !changes
    (full_s *. 1000.0 *. float_of_int !changes);
  (* the shortcut and the recompile agree, and the DOL tracked along *)
  Dol.verify_against dol (Incremental.labeling inc);
  Dol.verify_against dol full;
  Printf.printf "\nfinal DOL: %d transitions, %d codebook entries — verified against both paths\n"
    (Dol.transition_count dol)
    (Dolx_core.Codebook.count (Dol.codebook dol))
