(** Value index: nodes by (tag, text value) — §4.1's "B+ trees on the
    subtree root's value".  Hash-bucketed composite keys over the shared
    {!Btree}; lookups re-verify candidates, so results are exact. *)

type t

(** Index every non-empty-text node.
    @raise Invalid_argument on documents with >= 2^40 nodes. *)
val build : Dolx_xml.Tree.t -> t

(** Nodes with the tag and exactly this text, in document order. *)
val postings : t -> Dolx_xml.Tag.id -> value:string -> Dolx_xml.Tree.node list

(** {!postings} restricted to the preorder range [lo, hi]. *)
val postings_in :
  t -> Dolx_xml.Tag.id -> value:string -> lo:int -> hi:int -> Dolx_xml.Tree.node list

val insert : t -> Dolx_xml.Tag.id -> value:string -> int -> unit

val remove : t -> Dolx_xml.Tag.id -> value:string -> int -> unit

val entry_count : t -> int
