(** Tag index: for each element name, the document-order list of nodes
    carrying it.  Backed by the {!Btree} with composite keys
    [tag * 2^40 + preorder], so a posting scan is a B+-tree range scan —
    this is the "B+ trees on … tag names to start the matching" of §4.1.

    Documents here are < 2^40 nodes, and tag ids < 2^22, so the composite
    key fits comfortably in OCaml's 63-bit int. *)

module Tree = Dolx_xml.Tree

let shift = 40

let max_pre = 1 lsl shift

type t = { btree : Btree.t; n_tags : int }

let composite tag pre = (tag lsl shift) lor pre

(** Index every node of [tree] (bulk-loaded: one sort + one packing
    pass). *)
let build tree =
  let n_tags = ref 0 in
  let pairs = ref [] in
  Tree.iter
    (fun v ->
      let tag = Tree.tag tree v in
      if tag >= !n_tags then n_tags := tag + 1;
      if v >= max_pre then invalid_arg "Tag_index.build: document too large";
      pairs := (composite tag v, v) :: !pairs)
    tree;
  let pairs = List.sort (fun (a, _) (b, _) -> compare a b) !pairs in
  { btree = Btree.of_sorted ~order:64 pairs; n_tags = !n_tags }

(** All nodes with tag [tag], in document order. *)
let postings t tag =
  if tag < 0 then invalid_arg "Tag_index.postings";
  List.map snd (Btree.range t.btree ~lo:(composite tag 0) ~hi:(composite tag (max_pre - 1)))

(** Nodes with tag [tag] whose preorder lies in [lo, hi] — used to
    evaluate descendant steps inside a known subtree range. *)
let postings_in t tag ~lo ~hi =
  List.map snd (Btree.range t.btree ~lo:(composite tag lo) ~hi:(composite tag hi))

let count t tag =
  let c = ref 0 in
  Btree.iter_range t.btree ~lo:(composite tag 0) ~hi:(composite tag (max_pre - 1))
    (fun _ _ -> incr c);
  !c

(** Maintenance on structural updates. *)
let insert t tag pre = Btree.insert t.btree (composite tag pre) pre

let remove t tag pre = ignore (Btree.remove t.btree (composite tag pre))

let entry_count t = Btree.count t.btree
