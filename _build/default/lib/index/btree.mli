(** A B+-tree over int keys — the index structure behind {!Tag_index}
    ("B+ trees on the subtree root's value or tag names", paper §4.1).

    Keys are unique (duplicates are expressed with composite keys).
    Top-down insertion with preemptive splits; deletion removes from the
    leaf without eager merging (the strategy of production B-trees such
    as PostgreSQL's nbtree).  Leaves are chained for range scans. *)

type t

(** @raise Invalid_argument when [order < 4]. *)
val create : ?order:int -> unit -> t

(** Number of keys stored. *)
val count : t -> int

val height : t -> int

val find : t -> int -> int option

val mem : t -> int -> bool

(** Insert, overwriting any existing value for the key. *)
val insert : t -> int -> int -> unit

(** Bulk-load from strictly-increasing (key, value) pairs — O(n).
    @raise Invalid_argument on unsorted input or [order < 4]. *)
val of_sorted : ?order:int -> (int * int) list -> t

(** Remove [key] if present; returns whether it was. *)
val remove : t -> int -> bool

(** [iter_range t ~lo ~hi f] applies [f key value] to all entries with
    [lo <= key <= hi], ascending. *)
val iter_range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** Entries in [lo, hi], ascending. *)
val range : t -> lo:int -> hi:int -> (int * int) list

(** Structural invariants (ordering, separators, uniform leaf depth,
    count).  @raise Failure on violation. *)
val validate : t -> unit
