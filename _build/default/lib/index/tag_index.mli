(** Tag index: for each element name, the document-order list of nodes
    carrying it, backed by the {!Btree} with composite
    [tag * 2^40 + preorder] keys — the "B+ trees on … tag names to start
    the matching" of paper §4.1. *)

type t

(** Index every node of the document.
    @raise Invalid_argument on documents with >= 2^40 nodes. *)
val build : Dolx_xml.Tree.t -> t

(** All nodes with the tag, in document order. *)
val postings : t -> Dolx_xml.Tag.id -> Dolx_xml.Tree.node list

(** Postings restricted to the preorder range [lo, hi] — evaluates
    descendant steps inside a known subtree. *)
val postings_in : t -> Dolx_xml.Tag.id -> lo:int -> hi:int -> Dolx_xml.Tree.node list

val count : t -> Dolx_xml.Tag.id -> int

(** Maintenance on structural updates. *)
val insert : t -> Dolx_xml.Tag.id -> int -> unit

val remove : t -> Dolx_xml.Tag.id -> int -> unit

(** Total indexed entries (= document size after {!build}). *)
val entry_count : t -> int
