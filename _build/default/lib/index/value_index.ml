(** Value index: nodes by (tag, text value) — the other half of §4.1's
    "B+ trees on the subtree root's value or tag names to start the
    matching".

    Built on the same {!Btree} as the tag index, keyed by
    [hash(tag, value) * 2^40 + preorder].  Hash collisions are resolved
    by re-checking the candidate's actual tag and text, so lookups are
    exact; the index only narrows the candidate set. *)

module Tree = Dolx_xml.Tree

let shift = 40

let max_pre = 1 lsl shift

(* 22-bit hash of (tag id, value) — the key budget above the preorder
   bits.  FNV-1a over the value, mixed with the tag. *)
let bucket tag value =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) value;
  (!h lxor (tag * 0x9e3779b1)) land 0x3FFFFF

type t = { btree : Btree.t; tree : Tree.t }

let composite tag value pre = (bucket tag value lsl shift) lor pre

(** Index every non-empty-text node of [tree] (bulk-loaded). *)
let build tree =
  let pairs = ref [] in
  Tree.iter
    (fun v ->
      if v >= max_pre then invalid_arg "Value_index.build: document too large";
      let txt = Tree.text tree v in
      if txt <> "" then pairs := (composite (Tree.tag tree v) txt v, v) :: !pairs)
    tree;
  let pairs = List.sort (fun (a, _) (b, _) -> compare a b) !pairs in
  { btree = Btree.of_sorted ~order:64 pairs; tree }

(** Nodes with tag [tag] and text equal to [value], in document order.
    Exact: candidates from the hash bucket are re-verified. *)
let postings t tag ~value =
  let lo = composite tag value 0 and hi = composite tag value (max_pre - 1) in
  List.filter
    (fun v -> Tree.tag t.tree v = tag && Tree.text t.tree v = value)
    (List.map snd (Btree.range t.btree ~lo ~hi))

(** Like {!postings}, restricted to the preorder range [lo, hi]. *)
let postings_in t tag ~value ~lo ~hi =
  List.filter (fun v -> v >= lo && v <= hi) (postings t tag ~value)

(** Maintenance on text or structural updates. *)
let insert t tag ~value pre =
  if value <> "" then Btree.insert t.btree (composite tag value pre) pre

let remove t tag ~value pre = ignore (Btree.remove t.btree (composite tag value pre))

let entry_count t = Btree.count t.btree
