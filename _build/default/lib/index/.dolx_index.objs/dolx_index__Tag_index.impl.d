lib/index/tag_index.ml: Btree Dolx_xml List
