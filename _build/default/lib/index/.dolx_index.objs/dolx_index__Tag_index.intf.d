lib/index/tag_index.mli: Dolx_xml
