lib/index/value_index.mli: Dolx_xml
