lib/index/btree.mli:
