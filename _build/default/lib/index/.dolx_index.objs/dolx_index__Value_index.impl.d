lib/index/value_index.ml: Btree Char Dolx_xml List String
