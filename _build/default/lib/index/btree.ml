(** A B+-tree over int keys.

    The NoK query processor "uses B+ trees on the subtree root's value or
    tag names to start the matching" (paper §4.1); {!Tag_index} builds on
    this structure.  Keys are unique; duplicate logical entries are
    expressed by composite keys (see {!Tag_index}).

    Standard top-down insertion with preemptive splits; deletion removes
    the key from its leaf without eager merging (underflowed leaves are
    reclaimed only when empty), which is the strategy production B-trees
    such as PostgreSQL's nbtree use.  Leaves are chained for range
    scans. *)

type node = {
  mutable is_leaf : bool;
  mutable n : int;                 (* number of keys in use *)
  keys : int array;                (* capacity = order *)
  vals : int array;                (* leaves only *)
  children : node option array;    (* internal only; capacity = order + 1 *)
  mutable next : node option;      (* leaf chain *)
}

type t = {
  order : int; (* max keys per node; split at order *)
  mutable root : node;
  mutable count : int;
  mutable height : int;
}

let make_node ~order ~is_leaf =
  {
    is_leaf;
    n = 0;
    keys = Array.make order 0;
    vals = (if is_leaf then Array.make order 0 else [||]);
    children = (if is_leaf then [||] else Array.make (order + 1) None);
    next = None;
  }

let create ?(order = 64) () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  { order; root = make_node ~order ~is_leaf:true; count = 0; height = 1 }

let count t = t.count

let height t = t.height

(* Index of the first key in [node] that is >= [key]. *)
let lower_bound node key =
  let lo = ref 0 and hi = ref node.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if node.keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child to descend into for [key] in an internal node: first separator
   strictly greater than key determines the child. *)
let child_index node key =
  let lo = ref 0 and hi = ref node.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if node.keys.(mid) <= key then lo := mid + 1 else hi := mid
  done;
  !lo

let get_child node i =
  match node.children.(i) with
  | Some c -> c
  | None -> failwith "Btree: missing child (corrupt tree)"

(** Point lookup. *)
let find t key =
  let rec go node =
    if node.is_leaf then begin
      let i = lower_bound node key in
      if i < node.n && node.keys.(i) = key then Some node.vals.(i) else None
    end
    else go (get_child node (child_index node key))
  in
  go t.root

let mem t key = find t key <> None

(* Split full child [i] of internal (non-full) [parent].  The child has
   [order] keys; left keeps ceil(order/2). *)
let split_child t parent i =
  let child = get_child parent i in
  let order = t.order in
  let mid = order / 2 in
  let right = make_node ~order ~is_leaf:child.is_leaf in
  if child.is_leaf then begin
    (* all keys stay in leaves; separator = first key of right *)
    let move = order - mid in
    Array.blit child.keys mid right.keys 0 move;
    Array.blit child.vals mid right.vals 0 move;
    right.n <- move;
    child.n <- mid;
    right.next <- child.next;
    child.next <- Some right;
    (* shift parent entries *)
    for j = parent.n downto i + 1 do
      parent.keys.(j) <- parent.keys.(j - 1)
    done;
    for j = parent.n + 1 downto i + 2 do
      parent.children.(j) <- parent.children.(j - 1)
    done;
    parent.keys.(i) <- right.keys.(0);
    parent.children.(i + 1) <- Some right;
    parent.n <- parent.n + 1
  end
  else begin
    (* internal: middle key moves up *)
    let move = order - mid - 1 in
    Array.blit child.keys (mid + 1) right.keys 0 move;
    Array.blit child.children (mid + 1) right.children 0 (move + 1);
    right.n <- move;
    let sep = child.keys.(mid) in
    child.n <- mid;
    Array.fill child.children (mid + 1) (t.order - mid) None;
    for j = parent.n downto i + 1 do
      parent.keys.(j) <- parent.keys.(j - 1)
    done;
    for j = parent.n + 1 downto i + 2 do
      parent.children.(j) <- parent.children.(j - 1)
    done;
    parent.keys.(i) <- sep;
    parent.children.(i + 1) <- Some right;
    parent.n <- parent.n + 1
  end

(** Insert (or overwrite) [key -> value]. *)
let insert t key value =
  if t.root.n = t.order then begin
    let new_root = make_node ~order:t.order ~is_leaf:false in
    new_root.children.(0) <- Some t.root;
    t.root <- new_root;
    t.height <- t.height + 1;
    split_child t new_root 0
  end;
  let rec go node =
    if node.is_leaf then begin
      let i = lower_bound node key in
      if i < node.n && node.keys.(i) = key then node.vals.(i) <- value
      else begin
        for j = node.n downto i + 1 do
          node.keys.(j) <- node.keys.(j - 1);
          node.vals.(j) <- node.vals.(j - 1)
        done;
        node.keys.(i) <- key;
        node.vals.(i) <- value;
        node.n <- node.n + 1;
        t.count <- t.count + 1
      end
    end
    else begin
      let i = child_index node key in
      let child = get_child node i in
      if child.n = t.order then begin
        split_child t node i;
        go node (* re-route after split *)
      end
      else go child
    end
  in
  go t.root

(** Remove [key] if present; returns whether it was. *)
let remove t key =
  let rec go node =
    if node.is_leaf then begin
      let i = lower_bound node key in
      if i < node.n && node.keys.(i) = key then begin
        for j = i to node.n - 2 do
          node.keys.(j) <- node.keys.(j + 1);
          node.vals.(j) <- node.vals.(j + 1)
        done;
        node.n <- node.n - 1;
        t.count <- t.count - 1;
        true
      end
      else false
    end
    else go (get_child node (child_index node key))
  in
  go t.root

(** Bulk-load from strictly-increasing (key, value) pairs: leaves are
    packed left to right at ~85% occupancy and internal levels built
    bottom-up — O(n), versus O(n log n) repeated inserts.  This is how
    the document indexes are built, since a one-pass scan can sort its
    keys first. *)
let of_sorted ?(order = 64) pairs =
  if order < 4 then invalid_arg "Btree.of_sorted: order must be >= 4";
  let t = create ~order () in
  match pairs with
  | [] -> t
  | _ ->
      let target = max 2 (order * 85 / 100) in
      (* build the leaf level *)
      let leaves = ref [] in
      let current = ref (make_node ~order ~is_leaf:true) in
      let flush () =
        if !current.n > 0 then begin
          leaves := !current :: !leaves;
          current := make_node ~order ~is_leaf:true
        end
      in
      let last_key = ref min_int in
      List.iter
        (fun (k, v) ->
          if k <= !last_key then
            invalid_arg "Btree.of_sorted: keys must be strictly increasing";
          last_key := k;
          if !current.n >= target then flush ();
          !current.keys.(!current.n) <- k;
          !current.vals.(!current.n) <- v;
          !current.n <- !current.n + 1;
          t.count <- t.count + 1)
        pairs;
      flush ();
      let leaves = List.rev !leaves in
      (* chain the leaves *)
      let rec chain = function
        | a :: (b :: _ as rest) ->
            a.next <- Some b;
            chain rest
        | _ -> ()
      in
      chain leaves;
      (* build internal levels bottom-up; separator for a child = its
         smallest key (computed recursively) *)
      let rec smallest node =
        if node.is_leaf then node.keys.(0) else smallest (get_child node 0)
      in
      let rec build_level nodes height =
        match nodes with
        | [ root ] ->
            t.root <- root;
            t.height <- height
        | _ ->
            let parents = ref [] in
            let current = ref (make_node ~order ~is_leaf:false) in
            let child_count = ref 0 in
            let flush () =
              if !child_count > 0 then begin
                parents := !current :: !parents;
                current := make_node ~order ~is_leaf:false;
                child_count := 0
              end
            in
            List.iter
              (fun child ->
                if !child_count > target then flush ();
                if !child_count = 0 then !current.children.(0) <- Some child
                else begin
                  !current.keys.(!current.n) <- smallest child;
                  !current.n <- !current.n + 1;
                  !current.children.(!current.n) <- Some child
                end;
                incr child_count)
              nodes;
            flush ();
            (* A trailing parent with a single child (n = 0) is invalid:
               borrow the previous parent's last child. *)
            (match !parents with
            | last :: prev :: rest when last.n = 0 ->
                let borrowed = get_child prev prev.n in
                prev.children.(prev.n) <- None;
                prev.n <- prev.n - 1;
                let only = get_child last 0 in
                last.children.(0) <- Some borrowed;
                last.keys.(0) <- smallest only;
                last.children.(1) <- Some only;
                last.n <- 1;
                parents := last :: prev :: rest
            | _ -> ());
            build_level (List.rev !parents) (height + 1)
      in
      build_level leaves 1;
      t

(* Leftmost leaf whose range may contain [key]. *)
let rec seek_leaf node key =
  if node.is_leaf then node else seek_leaf (get_child node (child_index node key)) key

(** [iter_range t ~lo ~hi f] applies [f key value] to all entries with
    lo <= key <= hi, in ascending key order. *)
let iter_range t ~lo ~hi f =
  let leaf = seek_leaf t.root lo in
  let rec scan leaf i =
    if i >= leaf.n then
      match leaf.next with None -> () | Some nxt -> scan nxt 0
    else begin
      let k = leaf.keys.(i) in
      if k > hi then ()
      else begin
        if k >= lo then f k leaf.vals.(i);
        scan leaf (i + 1)
      end
    end
  in
  scan leaf (lower_bound leaf lo)

(** All entries in [lo, hi] as a list. *)
let range t ~lo ~hi =
  let acc = ref [] in
  iter_range t ~lo ~hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

(** Structural invariants, used by property tests: key ordering within
    nodes, separator correctness, leaf-chain ordering, and count. *)
let validate t =
  let seen = ref 0 in
  let rec go node ~lo ~hi ~depth =
    if node.n < 0 || node.n > t.order then failwith "Btree: bad fanout";
    for i = 0 to node.n - 1 do
      if i > 0 && node.keys.(i - 1) >= node.keys.(i) then
        failwith "Btree: keys not strictly increasing";
      (match lo with Some l -> if node.keys.(i) < l then failwith "Btree: key below range" | None -> ());
      match hi with Some h -> if node.keys.(i) >= h then failwith "Btree: key above range" | None -> ()
    done;
    if node.is_leaf then begin
      if depth <> t.height then failwith "Btree: leaves at different depths";
      seen := !seen + node.n
    end
    else begin
      if node.n = 0 then failwith "Btree: empty internal node";
      for i = 0 to node.n do
        let lo' = if i = 0 then lo else Some node.keys.(i - 1) in
        let hi' = if i = node.n then hi else Some node.keys.(i) in
        go (get_child node i) ~lo:lo' ~hi:hi' ~depth:(depth + 1)
      done
    end
  in
  go t.root ~lo:None ~hi:None ~depth:1;
  if !seen <> t.count then failwith "Btree: count mismatch"
