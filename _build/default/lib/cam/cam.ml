(** CAM — Compressed Accessibility Map (Yu, Srivastava, Lakshmanan,
    Jagadish, VLDB 2002), the paper's single-subject baseline (§5.1).

    A CAM is a set of labeled document nodes from which every node's
    accessibility can be derived: a label [(sign, scope)] at node [v]
    asserts accessibility [sign] for [v] itself (scope [Self]), for [v]'s
    proper descendants by default ([Desc]), or both ([Self_desc]); a
    node's effective accessibility is given by its own self-covering
    label, else by the descendant-default of its nearest labeled ancestor
    with a descendant-covering label, else by the global default (deny —
    CAM is an accessibility *map*, absence means inaccessible).

    Label placement is computed by an exact tree DP that minimizes the
    number of labels, matching the optimality claims of the CAM paper
    within this label family.  The asymmetry the paper observes in Fig. 4
    (CAM is much smaller at low accessibility ratios) falls out of the
    default-deny semantics. *)

module Tree = Dolx_xml.Tree

type sign = bool (* true = accessible *)

type scope = Self | Desc | Self_desc

type label = { sign : sign; scope : scope }

type t = {
  tree : Tree.t;
  labels : (int * label) array; (* sorted by preorder *)
  by_node : (int, label) Hashtbl.t;
}

(** Number of CAM labels (the paper's Fig. 4 metric: "the number of CAM
    nodes"). *)
let label_count t = Array.length t.labels

let labels t = Array.to_list t.labels

let infinity_cost = max_int / 4

(** Build the minimal CAM for accessibility vector [acc] (indexed by
    preorder).  The DP computes, bottom-up, [cost.(v).(d)] = the fewest
    labels needed in v's subtree given inherited descendant-default [d]
    (0 = inaccessible, 1 = accessible), together with the choice made. *)
type choice = No_label | L_self | L_desc of bool | L_self_desc

let build tree acc =
  let n = Tree.size tree in
  if Array.length acc <> n then invalid_arg "Cam.build: size mismatch";
  (* cost.(2*v + d), choice.(2*v + d) *)
  let cost = Array.make (2 * n) 0 in
  let choice = Array.make (2 * n) No_label in
  (* Process nodes in reverse preorder: all children of v have preorder
     > v, so they are already done. *)
  for v = n - 1 downto 0 do
    let sum_children d =
      let s = ref 0 in
      Tree.iter_children (fun c -> s := !s + cost.((2 * c) + d)) tree v;
      !s
    in
    let sum0 = sum_children 0 and sum1 = sum_children 1 in
    let sum_for d = if d = 0 then sum0 else sum1 in
    let av = if acc.(v) then 1 else 0 in
    for d = 0 to 1 do
      (* no label: own accessibility must equal the inherited default *)
      let best = ref (if av = d then sum_for d else infinity_cost) in
      let best_choice = ref No_label in
      (* self label (sign = av): children keep default d *)
      let c_self = 1 + sum_for d in
      if c_self < !best then begin
        best := c_self;
        best_choice := L_self
      end;
      (* desc label: own accessibility must equal d; pick best child default *)
      if av = d then begin
        let c_desc0 = 1 + sum0 and c_desc1 = 1 + sum1 in
        if c_desc0 < !best then begin
          best := c_desc0;
          best_choice := L_desc false
        end;
        if c_desc1 < !best then begin
          best := c_desc1;
          best_choice := L_desc true
        end
      end;
      (* self+desc label (sign = av): children default becomes av *)
      let c_sd = 1 + sum_for av in
      if c_sd < !best then begin
        best := c_sd;
        best_choice := L_self_desc
      end;
      cost.((2 * v) + d) <- !best;
      choice.((2 * v) + d) <- !best_choice
    done
  done;
  (* Reconstruct the labels top-down with root default = inaccessible. *)
  let by_node = Hashtbl.create 64 in
  let rec emit v d =
    let next_d =
      match choice.((2 * v) + d) with
      | No_label -> d
      | L_self ->
          Hashtbl.replace by_node v { sign = acc.(v); scope = Self };
          d
      | L_desc b ->
          Hashtbl.replace by_node v { sign = b; scope = Desc };
          if b then 1 else 0
      | L_self_desc ->
          Hashtbl.replace by_node v { sign = acc.(v); scope = Self_desc };
          if acc.(v) then 1 else 0
    in
    Tree.iter_children (fun c -> emit c next_d) tree v
  in
  emit Tree.root 0;
  let labels =
    Hashtbl.fold (fun v l lst -> (v, l) :: lst) by_node []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  { tree; labels; by_node }

(** Accessibility lookup: nearest self-covering label at [v], else nearest
    ancestor with a descendant-covering label, else deny. *)
let accessible t v =
  match Hashtbl.find_opt t.by_node v with
  | Some { sign; scope = Self | Self_desc } -> sign
  | Some { scope = Desc; _ } | None ->
      let rec up u =
        if u = Tree.nil then false (* global default: deny *)
        else
          match Hashtbl.find_opt t.by_node u with
          | Some { sign; scope = Desc | Self_desc } -> sign
          | Some { scope = Self; _ } | None -> up (Tree.parent t.tree u)
      in
      up (Tree.parent t.tree v)

(** {1 Space accounting}

    "Each CAM node must include a reference to a document node and
    pointers to the node's children in the CAM, in addition to the access
    control information itself" (paper §5.1).  [accounting_bytes] follows
    the paper's (generous-to-CAM) accounting: 2 bits of label + pointer
    bytes per label; [storage_bytes] uses a realistic 4-byte node
    reference + 2 × 4-byte child pointers. *)

let accounting_bytes ?(pointer_bytes = 1) t =
  (* round 2 bits up to a byte, as the paper effectively does *)
  label_count t * (1 + pointer_bytes)

let storage_bytes t = label_count t * (1 + 4 + 8)

let pp ppf t = Fmt.pf ppf "CAM: %d labels" (label_count t)
