(** CAM — Compressed Accessibility Map (Yu et al., VLDB 2002), the
    paper's single-subject baseline (§5.1).

    A CAM is a set of labeled document nodes: a label [(sign, scope)] at
    [v] asserts accessibility [sign] for [v] itself ([Self]), for [v]'s
    proper descendants by default ([Desc]), or both ([Self_desc]); a
    node's accessibility is its own self-covering label, else the nearest
    ancestor's descendant-default, else deny.  Label placement is an
    exact tree DP minimizing the label count. *)

module Tree = Dolx_xml.Tree

type sign = bool (** [true] = accessible *)

type scope = Self | Desc | Self_desc

type label = { sign : sign; scope : scope }

type t

(** Minimal CAM for accessibility vector [acc] (indexed by preorder).
    @raise Invalid_argument on size mismatch. *)
val build : Tree.t -> bool array -> t

(** Number of CAM labels — the paper's Fig. 4 metric. *)
val label_count : t -> int

(** The labels as sorted [(preorder, label)] pairs. *)
val labels : t -> (Tree.node * label) list

(** Accessibility lookup: nearest self-covering label, else nearest
    ancestor's descendant-covering label, else deny. *)
val accessible : t -> Tree.node -> bool

(** The paper's generous-to-CAM accounting: 2 bits of label (rounded to
    a byte) + [pointer_bytes] per label (default 1, as in §5.1). *)
val accounting_bytes : ?pointer_bytes:int -> t -> int

(** Realistic accounting: label byte + 4-byte node reference + two
    4-byte child pointers per label. *)
val storage_bytes : t -> int

val pp : Format.formatter -> t -> unit
