lib/cam/cam.ml: Array Dolx_xml Fmt Hashtbl List
