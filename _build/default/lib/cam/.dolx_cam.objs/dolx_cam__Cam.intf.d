lib/cam/cam.mli: Dolx_xml Format
