(** Access-control subjects: users and groups (paper §2, footnote 1),
    with the group-membership hierarchy maintained alongside. *)

type id = int

type kind = User | Group

type registry

val create : unit -> registry

val count : registry -> int

(** @raise Invalid_argument on a duplicate name. *)
val add : registry -> name:string -> kind:kind -> id

val add_user : registry -> string -> id

val add_group : registry -> string -> id

val name : registry -> id -> string

val kind : registry -> id -> kind

val find_opt : registry -> string -> id option

(** Declare [child] (a user or a group) a member of [group].
    @raise Invalid_argument when [group] is not a group. *)
val add_membership : registry -> child:id -> group:id -> unit

(** Groups [id] belongs to directly. *)
val direct_groups : registry -> id -> id list

(** All subjects whose rights apply to [id]: itself plus the transitive
    closure of its memberships (paper footnote 4), sorted ascending.
    Tolerates membership cycles. *)
val closure : registry -> id -> id list

val users : registry -> id list

val groups : registry -> id list
