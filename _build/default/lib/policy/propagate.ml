(** Rule propagation: compile a rule set into a labeling.

    Implements Most-Specific-Override (paper §5: "a node inherits its
    accessibility from its closest labeled ancestor"), the policy of
    Jajodia et al. cited as [12].  The engine walks the tree once in
    document order carrying the inherited ACL context; rules anchored at a
    node modify the context (for [Subtree] rules) or only that node's own
    ACL (for [Self] rules).  Because contexts are hash-consed ACL ids and
    rules are sparse, the walk is O(N + R·cost(intern)) regardless of the
    number of subjects — this is what makes million-node multi-thousand-
    subject experiments feasible.

    Conflict resolution at a single node: [Deny] beats [Grant] (rules are
    applied grants-first, denies-second). *)

module Tree = Dolx_xml.Tree

(** Default accessibility for subjects with no applicable rule. *)
type default = Closed | Open

let compile tree ~subjects ~mode ?(default = Closed) rules =
  let n = Tree.size tree in
  let width = Subject.count subjects in
  let store = Acl.create ~width in
  (* Bucket rules by anchor node, keeping only this mode's rules. *)
  let self_rules = Array.make n [] in
  let subtree_rules = Array.make n [] in
  List.iter
    (fun (r : Rule.t) ->
      if r.mode = mode then begin
        if r.node < 0 || r.node >= n then invalid_arg "Propagate.compile: rule anchored outside tree";
        match r.scope with
        | Rule.Self -> self_rules.(r.node) <- r :: self_rules.(r.node)
        | Rule.Subtree -> subtree_rules.(r.node) <- r :: subtree_rules.(r.node)
      end)
    rules;
  let apply_rules acl_id rules =
    (* grants first, then denies, so Deny wins on conflict at one node *)
    let grants, denies =
      List.partition (fun (r : Rule.t) -> r.sign = Rule.Grant) rules
    in
    let acl_id =
      List.fold_left (fun id (r : Rule.t) -> Acl.with_bit store id r.subject true) acl_id grants
    in
    List.fold_left (fun id (r : Rule.t) -> Acl.with_bit store id r.subject false) acl_id denies
  in
  let initial =
    match default with Closed -> Acl.empty store | Open -> Acl.full store
  in
  let node_acl = Array.make n 0 in
  (* DFS carrying the inherited context acl id. *)
  let rec go v ctx =
    let ctx' = apply_rules ctx subtree_rules.(v) in
    let own = apply_rules ctx' self_rules.(v) in
    node_acl.(v) <- own;
    Tree.iter_children (fun c -> go c ctx') tree v
  in
  go Tree.root initial;
  Labeling.create ~store ~node_acl

(** Compile one labeling per mode. *)
let compile_all_modes tree ~subjects ~modes ?default rules =
  Array.init (Mode.count modes) (fun m ->
      compile tree ~subjects ~mode:m ?default rules)
