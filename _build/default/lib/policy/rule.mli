(** Instance-level access-control rules in the style of Jajodia et al. /
    Bertino et al. (the paper's citations [12], [5]): a rule grants or
    denies a subject an action mode at a node, for the node alone
    ([Self]) or cascading over its subtree ([Subtree]).  Conflicts
    resolve by Most-Specific-Override with Deny beating Grant at equal
    specificity — see {!Propagate}. *)

type sign = Grant | Deny

type scope = Self | Subtree

type t = {
  subject : Subject.id;
  mode : Mode.id;
  node : Dolx_xml.Tree.node;
  sign : sign;
  scope : scope;
}

val make :
  subject:Subject.id -> mode:Mode.id -> node:Dolx_xml.Tree.node -> sign:sign ->
  scope:scope -> t

(** Cascading grant by default. *)
val grant : ?scope:scope -> subject:Subject.id -> mode:Mode.id -> Dolx_xml.Tree.node -> t

(** Cascading deny by default. *)
val deny : ?scope:scope -> subject:Subject.id -> mode:Mode.id -> Dolx_xml.Tree.node -> t

val pp : Subject.registry -> Mode.registry -> Format.formatter -> t -> unit
