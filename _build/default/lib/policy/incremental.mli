(** Incrementally maintained accessibility maps (paper §1): adding or
    removing a rule re-derives the labeling over the anchor's subtree
    only and reports the changed nodes as maximal preorder runs, so a
    DOL can be patched range-by-range ([Dolx_core.Update.sync_ranges])
    instead of rebuilt. *)

module Tree = Dolx_xml.Tree

type t

(** Compile an initial policy for one mode (rules for other modes are
    ignored). *)
val create :
  Tree.t -> subjects:Subject.registry -> mode:Mode.id ->
  ?default:Propagate.default -> Rule.t list -> t

(** The maintained labeling.  Mutates in place as rules change; do not
    cache derived structures across updates without re-syncing. *)
val labeling : t -> Labeling.t

val tree : t -> Tree.t

(** Add a rule; returns the changed preorder runs (possibly empty).
    @raise Invalid_argument for rules of another mode or anchored
    outside the tree. *)
val add_rule : t -> Rule.t -> (int * int) list

(** Remove one occurrence of a rule; returns the changed runs.
    @raise Not_found when the rule is not present. *)
val remove_rule : t -> Rule.t -> (int * int) list

(** Current rules, in no particular order. *)
val rules : t -> Rule.t list
