(** A small textual policy language so tools can keep access-control
    policies next to the documents they protect.

    Line-oriented; [#] starts a comment.  Directives:
    {v
      mode   <name>
      user   <name>
      group  <name>
      member <subject> <group>
      grant  <subject> <mode> <node> [self|subtree]
      deny   <subject> <mode> <node> [self|subtree]
    v}
    [<node>] is either a preorder number or a [@]-prefixed key resolved
    by the caller (e.g. an XPath string resolved against the document). *)

type directive =
  | Mode of string
  | User of string
  | Group of string
  | Member of string * string
  | Access of {
      sign : Rule.sign;
      subject : string;
      mode : string;
      node : string;  (** preorder literal or [@key] *)
      scope : Rule.scope;
    }

exception Syntax_error of { line : int; message : string }

(** Parse the directive list.  @raise Syntax_error on a malformed line. *)
val parse_string : string -> directive list

(** Compile directives into registries and rules.  [resolve key] maps
    each [@key] (without the [@]) to its anchor nodes; each anchor yields
    one rule.  @raise Failure on undeclared subjects/modes or unresolved
    references. *)
val compile :
  ?resolve:(string -> Dolx_xml.Tree.node list) -> directive list ->
  Subject.registry * Mode.registry * Rule.t list

(** {!parse_string} followed by {!compile}. *)
val load :
  ?resolve:(string -> Dolx_xml.Tree.node list) -> string ->
  Subject.registry * Mode.registry * Rule.t list

(** Render one directive in the concrete syntax {!parse_string} accepts. *)
val print_directive : directive -> string

(** Render a whole policy; [parse_string (print d) = d]. *)
val print : directive list -> string
