lib/policy/mode.ml: Array Hashtbl
