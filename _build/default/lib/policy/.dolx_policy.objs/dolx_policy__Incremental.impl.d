lib/policy/incremental.ml: Acl Array Dolx_xml Labeling List Mode Propagate Rule Subject
