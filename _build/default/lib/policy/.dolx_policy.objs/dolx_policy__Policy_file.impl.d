lib/policy/policy_file.ml: List Mode Printf Rule String Subject
