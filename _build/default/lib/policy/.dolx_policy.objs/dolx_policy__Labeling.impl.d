lib/policy/labeling.ml: Acl Array Dolx_util Dolx_xml Hashtbl List Subject
