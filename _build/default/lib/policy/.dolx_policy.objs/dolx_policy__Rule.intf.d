lib/policy/rule.mli: Dolx_xml Format Mode Subject
