lib/policy/propagate.ml: Acl Array Dolx_xml Labeling List Mode Rule Subject
