lib/policy/policy_file.mli: Dolx_xml Mode Rule Subject
