lib/policy/acl.ml: Array Dolx_util Hashtbl
