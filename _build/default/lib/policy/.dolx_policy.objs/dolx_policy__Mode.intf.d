lib/policy/mode.mli:
