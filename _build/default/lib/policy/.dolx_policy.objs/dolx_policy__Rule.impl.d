lib/policy/rule.ml: Dolx_xml Fmt Mode Subject
