lib/policy/acl.mli: Dolx_util
