lib/policy/subject.mli:
