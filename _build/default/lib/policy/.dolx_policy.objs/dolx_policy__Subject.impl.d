lib/policy/subject.ml: Array Hashtbl List
