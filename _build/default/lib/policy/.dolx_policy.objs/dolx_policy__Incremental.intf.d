lib/policy/incremental.mli: Dolx_xml Labeling Mode Propagate Rule Subject
