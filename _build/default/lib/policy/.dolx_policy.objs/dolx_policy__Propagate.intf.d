lib/policy/propagate.mli: Dolx_xml Labeling Mode Rule Subject
