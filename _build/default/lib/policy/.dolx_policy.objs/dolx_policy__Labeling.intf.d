lib/policy/labeling.mli: Acl Dolx_xml Subject
