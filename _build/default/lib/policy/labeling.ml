(** A labeling is the materialized accessibility function for one action
    mode: for every document node, the interned ACL describing which
    subjects can access it.  This is the paper's "accessibility map"
    (§1), the input from which DOLs and CAMs are built. *)

module Tree = Dolx_xml.Tree
module Bitset = Dolx_util.Bitset

type t = {
  store : Acl.store;
  node_acl : Acl.id array; (* indexed by preorder *)
}

let create ~store ~node_acl = { store; node_acl }

let store t = t.store

let size t = Array.length t.node_acl

let acl_id t v = t.node_acl.(v)

let acl t v = Acl.get t.store t.node_acl.(v)

(** Accessibility of node [v] for a single subject. *)
let accessible t ~subject v = Acl.grants t.store t.node_acl.(v) subject

(** Accessibility for a user given the subject hierarchy: the union of the
    user's own rights and those of all groups it belongs to. *)
let accessible_user t ~registry ~user v =
  let bits = acl t v in
  List.exists (fun s -> Bitset.get bits s) (Subject.closure registry user)

(** Number of nodes accessible to [subject]. *)
let count_accessible t ~subject =
  let n = ref 0 in
  Array.iter (fun id -> if Acl.grants t.store id subject then incr n) t.node_acl;
  !n

(** Fraction of nodes accessible to [subject]. *)
let accessibility_ratio t ~subject =
  float_of_int (count_accessible t ~subject) /. float_of_int (size t)

(** Per-subject boolean view, for baselines (CAM) that are single-subject. *)
let to_bool_array t ~subject =
  Array.map (fun id -> Acl.grants t.store id subject) t.node_acl

(** Build a single-subject labeling directly from a boolean array — used
    by tests and by the synthetic generators. *)
let of_bool_array bits =
  let store = Acl.create ~width:1 in
  let f = Acl.empty store in
  let t' = Acl.with_bit store f 0 true in
  let node_acl = Array.map (fun b -> if b then t' else f) bits in
  { store; node_acl }

(** Restrict a labeling to a subset of subjects (used to study codebook
    growth as a function of the number of subjects, paper §5.1).  Subjects
    are renumbered 0..k-1 in the order given. *)
let project t subjects =
  let k = Array.length subjects in
  let store = Acl.create ~width:k in
  let cache = Hashtbl.create 256 in
  let node_acl =
    Array.map
      (fun old_id ->
        match Hashtbl.find_opt cache old_id with
        | Some id -> id
        | None ->
            let bits = Acl.get t.store old_id in
            let nb = Bitset.create k in
            Array.iteri (fun i s -> if Bitset.get bits s then Bitset.set nb i true) subjects;
            let id = Acl.intern store nb in
            Hashtbl.replace cache old_id id;
            id)
      t.node_acl
  in
  { store; node_acl }

(** Materialize effective user rights: a labeling over the registry's
    users only (renumbered 0..U-1 in [Subject.users] order) where a
    user's bit is set iff the user or any group it transitively belongs
    to is granted — the operational semantics of paper footnote 4
    ("a user's access rights may include her own plus those of any
    groups of which she is a member"), precomputed so queries run under
    a single subject bit. *)
let materialize_users t ~registry =
  let users = Array.of_list (Subject.users registry) in
  let closures = Array.map (fun u -> Subject.closure registry u) users in
  let k = Array.length users in
  let store' = Acl.create ~width:k in
  let cache = Hashtbl.create 256 in
  let node_acl =
    Array.map
      (fun old_id ->
        match Hashtbl.find_opt cache old_id with
        | Some id -> id
        | None ->
            let bits = Acl.get t.store old_id in
            let nb = Bitset.create k in
            Array.iteri
              (fun i closure ->
                if List.exists (fun s -> Bitset.get bits s) closure then
                  Bitset.set nb i true)
              closures;
            let id = Acl.intern store' nb in
            Hashtbl.replace cache old_id id;
            id)
      t.node_acl
  in
  ({ store = store'; node_acl }, users)

(** Number of distinct ACLs that actually occur in the labeling (may be
    smaller than [Acl.count store] if the store is shared). *)
let distinct_acls t =
  let seen = Hashtbl.create 64 in
  Array.iter (fun id -> Hashtbl.replace seen id ()) t.node_acl;
  Hashtbl.length seen
