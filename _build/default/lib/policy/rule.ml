(** Instance-level access-control rules.

    The paper assumes a rule language whose "net effect … over a database
    instance can be captured by an accessibility function" (§2).  We
    provide the standard node-anchored rule model of Jajodia et al. and
    Bertino et al. (the papers cited there): a rule grants or denies a
    subject an action mode at a node, either for the node alone ([Self])
    or for its whole subtree ([Subtree], i.e. cascading propagation).
    Conflicts are resolved by Most-Specific-Override — the rule anchored
    at the closest ancestor wins — with denial taking precedence among
    rules anchored at the same node. *)

type sign = Grant | Deny

type scope = Self | Subtree

type t = {
  subject : Subject.id;
  mode : Mode.id;
  node : Dolx_xml.Tree.node;
  sign : sign;
  scope : scope;
}

let make ~subject ~mode ~node ~sign ~scope = { subject; mode; node; sign; scope }

let grant ?(scope = Subtree) ~subject ~mode node =
  { subject; mode; node; sign = Grant; scope }

let deny ?(scope = Subtree) ~subject ~mode node =
  { subject; mode; node; sign = Deny; scope }

let pp subjects modes ppf r =
  Fmt.pf ppf "%s %s@@node(%d) %s %s"
    (match r.sign with Grant -> "grant" | Deny -> "deny")
    (Mode.name modes r.mode) r.node
    (match r.scope with Self -> "self" | Subtree -> "subtree")
    (Subject.name subjects r.subject)
