(** Access-control subjects.

    Following the paper (§2, footnote 1): "we use subjects to denote both
    users and user groups … The subject hierarchy, which describes group
    membership, is assumed to be maintained separately."  A registry holds
    both kinds; membership edges map users to the groups they belong to,
    and the transitive closure gives a user's effective subject set
    (footnote 4: "a user's access rights may include her own plus those of
    any groups of which she is a member"). *)

type id = int

type kind = User | Group

type registry = {
  mutable names : string array;
  mutable kinds : kind array;
  by_name : (string, id) Hashtbl.t;
  mutable memberships : id list array; (* subject -> direct parent groups *)
  mutable count : int;
}

let create () =
  {
    names = Array.make 16 "";
    kinds = Array.make 16 User;
    by_name = Hashtbl.create 64;
    memberships = Array.make 16 [];
    count = 0;
  }

let count r = r.count

let grow r =
  if r.count >= Array.length r.names then begin
    let cap = 2 * Array.length r.names in
    let names = Array.make cap "" in
    let kinds = Array.make cap User in
    let memberships = Array.make cap [] in
    Array.blit r.names 0 names 0 r.count;
    Array.blit r.kinds 0 kinds 0 r.count;
    Array.blit r.memberships 0 memberships 0 r.count;
    r.names <- names;
    r.kinds <- kinds;
    r.memberships <- memberships
  end

let add r ~name ~kind =
  if Hashtbl.mem r.by_name name then invalid_arg ("Subject.add: duplicate " ^ name);
  grow r;
  let id = r.count in
  r.names.(id) <- name;
  r.kinds.(id) <- kind;
  Hashtbl.replace r.by_name name id;
  r.count <- id + 1;
  id

let add_user r name = add r ~name ~kind:User
let add_group r name = add r ~name ~kind:Group

let name r id =
  if id < 0 || id >= r.count then invalid_arg "Subject.name";
  r.names.(id)

let kind r id =
  if id < 0 || id >= r.count then invalid_arg "Subject.kind";
  r.kinds.(id)

let find_opt r name = Hashtbl.find_opt r.by_name name

(** Declare that [child] (a user or a group) is a member of [group]. *)
let add_membership r ~child ~group =
  if kind r group <> Group then invalid_arg "Subject.add_membership: not a group";
  r.memberships.(child) <- group :: r.memberships.(child)

let direct_groups r id = r.memberships.(id)

(** All subjects whose rights apply to [id]: itself plus the transitive
    closure of its group memberships.  Cycles are tolerated. *)
let closure r id =
  let seen = Hashtbl.create 8 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go r.memberships.(id)
    end
  in
  go id;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let users r =
  let acc = ref [] in
  for id = r.count - 1 downto 0 do
    if r.kinds.(id) = User then acc := id :: !acc
  done;
  !acc

let groups r =
  let acc = ref [] in
  for id = r.count - 1 downto 0 do
    if r.kinds.(id) = Group then acc := id :: !acc
  done;
  !acc
