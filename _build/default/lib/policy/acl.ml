(** Hash-consed access-control lists.

    An ACL is a bit-vector with one bit per subject (paper §2.1).  The
    propagation engine interns every distinct ACL it produces, so a
    labeling stores one small int per node and structurally equal ACLs are
    physically shared.  The DOL codebook (dictionary compression of
    distinct ACLs) is a re-numbering of exactly these interned values. *)

module Bitset = Dolx_util.Bitset

type id = int

module Tbl = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.hash
end)

type store = {
  mutable acls : Bitset.t array;
  ids : id Tbl.t;
  mutable count : int;
  mutable width : int;
}

let create ~width =
  { acls = Array.make 16 (Bitset.create width); ids = Tbl.create 64; count = 0; width }

let width s = s.width

(** Number of distinct interned ACLs. *)
let count s = s.count

(** Intern [bits], returning its dense id.  The bitset must not be mutated
    afterwards; use {!Bitset.with_bit} for updates. *)
let intern s bits =
  if Bitset.width bits <> s.width then invalid_arg "Acl.intern: width mismatch";
  match Tbl.find_opt s.ids bits with
  | Some id -> id
  | None ->
      if s.count >= Array.length s.acls then begin
        let acls = Array.make (2 * Array.length s.acls) bits in
        Array.blit s.acls 0 acls 0 s.count;
        s.acls <- acls
      end;
      let id = s.count in
      s.acls.(id) <- bits;
      Tbl.replace s.ids bits id;
      s.count <- id + 1;
      id

let get s id =
  if id < 0 || id >= s.count then invalid_arg "Acl.get: unknown id";
  s.acls.(id)

(** Does ACL [id] grant subject [subject]? *)
let grants s id subject = Bitset.get (get s id) subject

let empty s = intern s (Bitset.create s.width)

let full s = intern s (Bitset.full s.width)

(** Intern the ACL obtained from [id] by setting [subject]'s bit to [b]. *)
let with_bit s id subject b =
  let bits = get s id in
  if Bitset.get bits subject = b then id
  else intern s (Bitset.with_bit bits subject b)

let iter f s =
  for id = 0 to s.count - 1 do
    f id s.acls.(id)
  done
