(** Incrementally maintained accessibility maps (paper §1: "it is
    desirable to [compile] the net effect of these access control rules
    into incrementally maintainable accessibility maps").

    Under Most-Specific-Override, a rule anchored at node [v] can only
    influence [v]'s subtree, so adding or removing a rule re-derives the
    labeling over that subtree alone: the inherited context is recomputed
    from the rules on the root-to-parent path (O(depth) rule lookups) and
    the subtree is re-walked once.  The touched nodes are returned as
    maximal preorder runs so a DOL can be patched range-by-range instead
    of rebuilt. *)

module Tree = Dolx_xml.Tree

type t = {
  tree : Tree.t;
  subjects : Subject.registry;
  mode : Mode.id;
  default : Propagate.default;
  (* rules bucketed by anchor, split by scope — the compiled policy *)
  self_rules : Rule.t list array;
  subtree_rules : Rule.t list array;
  store : Acl.store;
  node_acl : Acl.id array; (* shared with [labeling] *)
  labeling : Labeling.t;
}

let labeling t = t.labeling

let tree t = t.tree

(* Deny-over-grant application of one node's rules onto a context id. *)
let apply_rules store acl_id rules =
  let grants, denies = List.partition (fun (r : Rule.t) -> r.Rule.sign = Rule.Grant) rules in
  let acl_id =
    List.fold_left (fun id (r : Rule.t) -> Acl.with_bit store id r.Rule.subject true) acl_id grants
  in
  List.fold_left (fun id (r : Rule.t) -> Acl.with_bit store id r.Rule.subject false) acl_id denies

let initial_context t =
  match t.default with
  | Propagate.Closed -> Acl.empty t.store
  | Propagate.Open -> Acl.full t.store

(* The subtree context in force when entering [v]: the initial context
   folded through the subtree rules of v's ancestors and of v itself. *)
let context_at t v =
  let rec ancestors u acc =
    if u = Tree.nil then acc else ancestors (Tree.parent t.tree u) (u :: acc)
  in
  List.fold_left
    (fun ctx u -> apply_rules t.store ctx t.subtree_rules.(u))
    (initial_context t)
    (ancestors v [])

(* Re-derive the labeling over [v]'s subtree; returns the changed nodes
   as maximal preorder runs [(lo, hi)]. *)
let relabel_subtree t v =
  let parent_ctx =
    let p = Tree.parent t.tree v in
    if p = Tree.nil then initial_context t else context_at t p
  in
  let changed = ref [] in
  let run_start = ref (-1) in
  let last_changed = ref (-2) in
  let note u =
    if u = !last_changed + 1 && !run_start >= 0 then last_changed := u
    else begin
      if !run_start >= 0 then changed := (!run_start, !last_changed) :: !changed;
      run_start := u;
      last_changed := u
    end
  in
  let rec go u ctx =
    let ctx' = apply_rules t.store ctx t.subtree_rules.(u) in
    let own = apply_rules t.store ctx' t.self_rules.(u) in
    if t.node_acl.(u) <> own then begin
      t.node_acl.(u) <- own;
      note u
    end;
    Tree.iter_children (fun c -> go c ctx') t.tree u
  in
  go v parent_ctx;
  if !run_start >= 0 then changed := (!run_start, !last_changed) :: !changed;
  List.rev !changed

let check_rule t (r : Rule.t) =
  if r.Rule.mode <> t.mode then invalid_arg "Incremental: rule for a different mode";
  if r.Rule.node < 0 || r.Rule.node >= Tree.size t.tree then
    invalid_arg "Incremental: rule anchored outside the tree"

(** Compile an initial policy.  Rules for other modes are ignored. *)
let create tree ~subjects ~mode ?(default = Propagate.Closed) rules =
  let n = Tree.size tree in
  let rules = List.filter (fun (r : Rule.t) -> r.Rule.mode = mode) rules in
  let base = Propagate.compile tree ~subjects ~mode ~default rules in
  (* Rebuild the per-node ACL ids in a store we own. *)
  let store = Labeling.store base in
  let node_acl = Array.init n (fun v -> Labeling.acl_id base v) in
  let labeling = Labeling.create ~store ~node_acl in
  let self_rules = Array.make n [] in
  let subtree_rules = Array.make n [] in
  List.iter
    (fun (r : Rule.t) ->
      match r.Rule.scope with
      | Rule.Self -> self_rules.(r.Rule.node) <- r :: self_rules.(r.Rule.node)
      | Rule.Subtree -> subtree_rules.(r.Rule.node) <- r :: subtree_rules.(r.Rule.node))
    rules;
  { tree; subjects; mode; default; self_rules; subtree_rules; store; node_acl; labeling }

(** Add a rule; returns the changed preorder runs (possibly empty). *)
let add_rule t (r : Rule.t) =
  check_rule t r;
  (match r.Rule.scope with
  | Rule.Self -> t.self_rules.(r.Rule.node) <- r :: t.self_rules.(r.Rule.node)
  | Rule.Subtree -> t.subtree_rules.(r.Rule.node) <- r :: t.subtree_rules.(r.Rule.node));
  relabel_subtree t r.Rule.node

(** Remove one occurrence of a rule; returns the changed runs.
    @raise Not_found when the rule is not present. *)
let remove_rule t (r : Rule.t) =
  check_rule t r;
  let remove_once l =
    let rec go acc = function
      | [] -> raise Not_found
      | x :: rest when x = r -> List.rev_append acc rest
      | x :: rest -> go (x :: acc) rest
    in
    go [] l
  in
  (match r.Rule.scope with
  | Rule.Self -> t.self_rules.(r.Rule.node) <- remove_once t.self_rules.(r.Rule.node)
  | Rule.Subtree ->
      t.subtree_rules.(r.Rule.node) <- remove_once t.subtree_rules.(r.Rule.node));
  relabel_subtree t r.Rule.node

(** Current rules, in no particular order. *)
let rules t =
  let acc = ref [] in
  Array.iter (fun l -> acc := l @ !acc) t.self_rules;
  Array.iter (fun l -> acc := l @ !acc) t.subtree_rules;
  !acc
