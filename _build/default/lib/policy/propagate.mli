(** Rule propagation: compile a rule set into a {!Labeling} under
    Most-Specific-Override (paper §5; Jajodia et al. [12]) — a node
    inherits its accessibility from the closest labeled ancestor; at a
    single node, [Self] rules beat [Subtree] rules and Deny beats Grant.

    One document-order pass carrying a hash-consed ACL context:
    O(nodes + rules · intern) regardless of the number of subjects. *)

(** Default accessibility for subjects no rule applies to. *)
type default = Closed | Open

(** Compile the rules of one action [mode].
    @raise Invalid_argument when a rule is anchored outside the tree. *)
val compile :
  Dolx_xml.Tree.t -> subjects:Subject.registry -> mode:Mode.id ->
  ?default:default -> Rule.t list -> Labeling.t

(** One labeling per registered mode, indexed by mode id. *)
val compile_all_modes :
  Dolx_xml.Tree.t -> subjects:Subject.registry -> modes:Mode.registry ->
  ?default:default -> Rule.t list -> Labeling.t array
