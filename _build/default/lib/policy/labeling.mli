(** A labeling is the materialized accessibility function for one action
    mode: for every document node, the interned ACL of subjects that may
    access it — the paper's "accessibility map" (§1), the input from
    which DOLs and CAMs are built. *)

type t

(** [node_acl.(v)] is the ACL id of preorder [v] in [store]. *)
val create : store:Acl.store -> node_acl:Acl.id array -> t

val store : t -> Acl.store

(** Number of nodes covered. *)
val size : t -> int

val acl_id : t -> Dolx_xml.Tree.node -> Acl.id

val acl : t -> Dolx_xml.Tree.node -> Acl.Bitset.t

(** The accessibility function of paper §2, for one subject. *)
val accessible : t -> subject:Subject.id -> Dolx_xml.Tree.node -> bool

(** A user's effective accessibility: own rights unioned with those of
    all groups it (transitively) belongs to (paper footnote 4). *)
val accessible_user :
  t -> registry:Subject.registry -> user:Subject.id -> Dolx_xml.Tree.node -> bool

val count_accessible : t -> subject:Subject.id -> int

(** Fraction of nodes accessible to [subject]. *)
val accessibility_ratio : t -> subject:Subject.id -> float

(** Per-subject boolean view, for single-subject baselines (CAM). *)
val to_bool_array : t -> subject:Subject.id -> bool array

(** Single-subject labeling from a boolean accessibility array. *)
val of_bool_array : bool array -> t

(** Restrict to a subject subset, renumbered 0..k-1 in the given order —
    used to study codebook growth vs subject count (paper Figs. 5/6). *)
val project : t -> Subject.id array -> t

(** Materialize effective user rights (paper footnote 4): a labeling
    over users only, bit set iff the user or any of its (transitive)
    groups is granted.  Returns the new labeling and the user ids in
    bit order. *)
val materialize_users : t -> registry:Subject.registry -> t * Subject.id array

(** Number of distinct ACLs that occur in the labeling. *)
val distinct_acls : t -> int
