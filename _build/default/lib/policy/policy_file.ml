(** A small textual policy language, so tools and examples can keep
    access-control policies next to the documents they protect.

    Line-oriented; [#] starts a comment.  Directives:
    {v
      mode   <name>                      declare an action mode
      user   <name>                      declare a user subject
      group  <name>                      declare a group subject
      member <subject> <group>           subject belongs to group
      grant  <subject> <mode> <node> [self]    grant, cascading by default
      deny   <subject> <mode> <node> [self]    deny, cascading by default
    v}

    [<node>] is a preorder number or [@]-prefixed later resolution key —
    tools that know the document resolve keys (e.g. XPath strings) to
    anchor nodes before compiling; see {!rules_with_resolver}. *)

type directive =
  | Mode of string
  | User of string
  | Group of string
  | Member of string * string
  | Access of {
      sign : Rule.sign;
      subject : string;
      mode : string;
      node : string; (* preorder literal or @key *)
      scope : Rule.scope;
    }

exception Syntax_error of { line : int; message : string }

let error line message = raise (Syntax_error { line; message })

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> None
  | [ "mode"; name ] -> Some (Mode name)
  | [ "user"; name ] -> Some (User name)
  | [ "group"; name ] -> Some (Group name)
  | [ "member"; subject; group ] -> Some (Member (subject, group))
  | ("grant" | "deny") :: rest as all -> (
      let sign = if List.hd all = "grant" then Rule.Grant else Rule.Deny in
      match rest with
      | [ subject; mode; node ] ->
          Some (Access { sign; subject; mode; node; scope = Rule.Subtree })
      | [ subject; mode; node; "self" ] ->
          Some (Access { sign; subject; mode; node; scope = Rule.Self })
      | [ subject; mode; node; "subtree" ] ->
          Some (Access { sign; subject; mode; node; scope = Rule.Subtree })
      | _ -> error lineno "expected: grant|deny <subject> <mode> <node> [self|subtree]")
  | word :: _ -> error lineno (Printf.sprintf "unknown directive %S" word)

let parse_string text =
  let lines = String.split_on_char '\n' text in
  List.filteri (fun _ _ -> true) lines
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) -> parse_line i l)

(** Compile directives into registries + rules.  [resolve] maps each
    [@key] (without the [@]) to the anchor nodes it denotes; plain
    integers need no resolution.  Each resolved anchor yields one rule. *)
let compile ?(resolve = fun key -> failwith ("unresolved node key @" ^ key))
    directives =
  let subjects = Subject.create () in
  let modes = Mode.create () in
  let pending_members = ref [] in
  let rules = ref [] in
  let subject_id name =
    match Subject.find_opt subjects name with
    | Some id -> id
    | None -> failwith ("undeclared subject " ^ name)
  in
  let mode_id name =
    match Mode.find_opt modes name with
    | Some id -> id
    | None -> failwith ("undeclared mode " ^ name)
  in
  List.iter
    (fun d ->
      match d with
      | Mode name -> ignore (Mode.add modes name)
      | User name -> ignore (Subject.add_user subjects name)
      | Group name -> ignore (Subject.add_group subjects name)
      | Member (child, group) -> pending_members := (child, group) :: !pending_members
      | Access { sign; subject; mode; node; scope } ->
          let anchors =
            if String.length node > 0 && node.[0] = '@' then
              resolve (String.sub node 1 (String.length node - 1))
            else
              match int_of_string_opt node with
              | Some v -> [ v ]
              | None -> failwith ("bad node reference " ^ node)
          in
          let subject = subject_id subject and mode = mode_id mode in
          List.iter
            (fun anchor ->
              rules := Rule.make ~subject ~mode ~node:anchor ~sign ~scope :: !rules)
            anchors)
    directives;
  List.iter
    (fun (child, group) ->
      Subject.add_membership subjects ~child:(subject_id child) ~group:(subject_id group))
    (List.rev !pending_members);
  (subjects, modes, List.rev !rules)

(** Parse + compile in one step. *)
let load ?resolve text = compile ?resolve (parse_string text)

(** Render one directive in the concrete syntax {!parse_string} accepts. *)
let print_directive = function
  | Mode name -> "mode " ^ name
  | User name -> "user " ^ name
  | Group name -> "group " ^ name
  | Member (subject, group) -> Printf.sprintf "member %s %s" subject group
  | Access { sign; subject; mode; node; scope } ->
      Printf.sprintf "%s %s %s %s%s"
        (match sign with Rule.Grant -> "grant" | Rule.Deny -> "deny")
        subject mode node
        (match scope with Rule.Self -> " self" | Rule.Subtree -> "")

(** Render a whole policy; [parse_string (print directives) = directives]. *)
let print directives = String.concat "\n" (List.map print_directive directives) ^ "\n"
