(** Hash-consed access-control lists: bit-vectors with one bit per
    subject (paper §2.1), interned to dense ids so that labelings store
    one int per node and structurally equal ACLs are shared.  The DOL
    codebook is a re-numbering of exactly these interned values. *)

module Bitset = Dolx_util.Bitset

type id = int

type store

(** [create ~width] — a store for ACLs over [width] subjects. *)
val create : width:int -> store

val width : store -> int

(** Number of distinct interned ACLs. *)
val count : store -> int

(** Intern [bits].  The bitset must not be mutated afterwards; use
    {!Bitset.with_bit} for updates. *)
val intern : store -> Bitset.t -> id

(** @raise Invalid_argument on an unknown id. *)
val get : store -> id -> Bitset.t

(** Does ACL [id] grant [subject]? *)
val grants : store -> id -> int -> bool

(** The all-clear ACL's id. *)
val empty : store -> id

(** The all-set ACL's id. *)
val full : store -> id

(** Id of the ACL equal to [id] with [subject]'s bit set to [b]. *)
val with_bit : store -> id -> int -> bool -> id

val iter : (id -> Bitset.t -> unit) -> store -> unit
