(** Action modes (paper §2: "a set of access control modes, such as read
    and write").  Labelings, DOLs and CAMs are all built per mode. *)

type id = int

type registry

val create : unit -> registry

(** @raise Invalid_argument on a duplicate name. *)
val add : registry -> string -> id

val count : registry -> int

val name : registry -> id -> string

val find_opt : registry -> string -> id option

(** A fresh registry holding the common read/write pair; returns
    [(registry, read, write)]. *)
val read_write : unit -> registry * id * id
