(** Action modes (paper §2: "a set of access control modes, such as read
    and write, denoted by M").  A registry of named modes with dense ids;
    labelings, DOLs and CAMs are all built per mode. *)

type id = int

type registry = {
  mutable names : string array;
  by_name : (string, id) Hashtbl.t;
  mutable count : int;
}

let create () = { names = Array.make 8 ""; by_name = Hashtbl.create 8; count = 0 }

let add r name =
  if Hashtbl.mem r.by_name name then invalid_arg ("Mode.add: duplicate " ^ name);
  if r.count >= Array.length r.names then begin
    let names = Array.make (2 * Array.length r.names) "" in
    Array.blit r.names 0 names 0 r.count;
    r.names <- names
  end;
  let id = r.count in
  r.names.(id) <- name;
  Hashtbl.replace r.by_name name id;
  r.count <- id + 1;
  id

let count r = r.count

let name r id =
  if id < 0 || id >= r.count then invalid_arg "Mode.name";
  r.names.(id)

let find_opt r name = Hashtbl.find_opt r.by_name name

(** The common read/write pair, for examples and tests. *)
let read_write () =
  let r = create () in
  let read = add r "read" in
  let write = add r "write" in
  (r, read, write)
