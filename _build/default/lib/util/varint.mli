(** LEB128-style variable-length integer coding for the NoK page
    records. *)

(** Upper bound on the encoded size of any int. *)
val max_len : int

(** Bytes {!write} will use for a non-negative int. *)
val encoded_length : int -> int

(** [write buf pos x] writes [x] at [pos]; returns the position after.
    @raise Invalid_argument on negative [x]. *)
val write : Bytes.t -> int -> int -> int

(** [read buf pos] returns [(value, position after)]. *)
val read : Bytes.t -> int -> int * int

(** Bounds- and overflow-checked read for untrusted input: decode at
    [pos] without touching [limit] or beyond.  [None] when the varint is
    truncated or its value would exceed 62 bits; deserializers map this
    to their [Corrupt] exception instead of letting {!read} raise
    [Invalid_argument] or wrap negative. *)
val read_opt : Bytes.t -> pos:int -> limit:int -> (int * int) option
