(** LEB128-style variable-length integer coding for the NoK page
    records. *)

(** Upper bound on the encoded size of any int. *)
val max_len : int

(** Bytes {!write} will use for a non-negative int. *)
val encoded_length : int -> int

(** [write buf pos x] writes [x] at [pos]; returns the position after.
    @raise Invalid_argument on negative [x]. *)
val write : Bytes.t -> int -> int -> int

(** [read buf pos] returns [(value, position after)]. *)
val read : Bytes.t -> int -> int * int
