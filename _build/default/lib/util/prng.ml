(** Deterministic pseudo-random number generation.

    All workload generators in this repository draw randomness from an
    explicit [Prng.t] seeded by the caller, so every experiment is exactly
    reproducible.  The core generator is splitmix64 (Steele, Lea, Flood,
    OOPSLA'14), which is fast, has a 64-bit state, and allows cheap
    "splitting" into independent streams for hierarchical generation. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One splitmix64 step: advance the state by the golden gamma and mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split t] returns a fresh generator whose stream is independent of
    subsequent draws from [t]. *)
let split t =
  let s = next_int64 t in
  { state = s }

(** Non-negative int drawn uniformly from the full 62-bit range. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] is uniform in [0, n).  Requires [n > 0]. *)
let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  bits t mod n

(** [int_in t lo hi] is uniform in the inclusive range [lo, hi]. *)
let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

(** Uniform float in [0, 1). *)
let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

(** Bernoulli draw: [true] with probability [p]. *)
let bool t ~p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

(** Pick a uniformly random element of a non-empty array. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

(** Pick a uniformly random element of a non-empty list. *)
let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

(** In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [sample t n k] draws [k] distinct ints from [0, n) (k <= n),
    returned in increasing order. *)
let sample t n k =
  if k < 0 || k > n then invalid_arg "Prng.sample";
  (* Floyd's algorithm: O(k) expected inserts into a hash set. *)
  let seen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem seen r then Hashtbl.replace seen j ()
    else Hashtbl.replace seen r ()
  done;
  let out = Hashtbl.fold (fun key () acc -> key :: acc) seen [] in
  List.sort compare out

(** Geometric-ish draw: number of successes before failure with
    continuation probability [p]; capped at [max]. *)
let geometric t ~p ~max =
  let rec go n = if n >= max then max else if bool t ~p then go (n + 1) else n in
  go 0

(** Zipf-distributed rank in [0, n) with skew [s] (s = 0 is uniform).
    Uses the rejection-free inverse-CDF over precomputed weights for small
    [n]; callers cache the sampler via [zipf_sampler]. *)
let zipf_sampler ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf_sampler";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i w ->
      total := !total +. w;
      cum.(i) <- !total)
    weights;
  let total = !total in
  fun t ->
    let x = float t *. total in
    (* binary search for first cum.(i) >= x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo
