(** CRC32C (Castagnoli) checksums, table-driven, no dependencies — the
    single checksum implementation shared by all on-disk formats (disk
    pages, persisted DOLs, database-file sections and journals).

    Values are 32-bit, returned as non-negative [int]s. *)

(** Checksum of [len] bytes of [buf] starting at [pos].
    @raise Invalid_argument on an out-of-range slice. *)
val digest_sub : Bytes.t -> pos:int -> len:int -> int

(** Checksum of a whole byte buffer. *)
val digest : Bytes.t -> int

(** Checksum of a string. *)
val digest_string : string -> int
