lib/util/bitset.ml: Array Fmt Int List Stdlib
