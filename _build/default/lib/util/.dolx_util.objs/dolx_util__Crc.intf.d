lib/util/crc.mli: Bytes
