lib/util/binsearch.mli:
