lib/util/prng.mli:
