lib/util/varint.ml: Bytes
