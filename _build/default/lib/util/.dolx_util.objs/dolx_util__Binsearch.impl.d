lib/util/binsearch.ml: Array
