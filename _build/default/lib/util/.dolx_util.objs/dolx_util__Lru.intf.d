lib/util/lru.mli:
