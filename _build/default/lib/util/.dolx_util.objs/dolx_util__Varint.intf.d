lib/util/varint.mli: Bytes
