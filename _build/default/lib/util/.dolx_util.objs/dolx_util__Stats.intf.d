lib/util/stats.mli:
