lib/util/crc.ml: Array Bytes Lazy
