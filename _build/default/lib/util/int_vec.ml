(** Growable int vector.

    Arena tree construction and DOL building append millions of ints; this
    avoids list-then-convert churn and boxes nothing. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let clear t = t.len <- 0

let ensure t needed =
  if needed > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.set";
  t.data.(i) <- x

let last t =
  if t.len = 0 then invalid_arg "Int_vec.last";
  t.data.(t.len - 1)

let pop t =
  if t.len = 0 then invalid_arg "Int_vec.pop";
  t.len <- t.len - 1;
  t.data.(t.len)

(** Copy out exactly the used prefix. *)
let to_array t = Array.sub t.data 0 t.len

let of_array arr = { data = Array.copy arr; len = Array.length arr }

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

(** Unsafe read for hot loops; caller guarantees bounds. *)
let unsafe_get t i = Array.unsafe_get t.data i
