(** Binary-search helpers over sorted int arrays.

    DOL lookups ("locate the transition node that precedes node d", paper
    §3.3) and the in-memory page table both reduce to predecessor search. *)

(** [predecessor keys x] is the greatest index [i] with [keys.(i) <= x],
    or [None] if all keys exceed [x].  [keys] must be sorted ascending. *)
let predecessor keys x =
  let n = Array.length keys in
  if n = 0 || keys.(0) > x then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: keys.(lo) <= x; keys.(hi+1) > x if hi+1 < n *)
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if keys.(mid) <= x then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

(** [successor keys x] is the least index [i] with [keys.(i) >= x]. *)
let successor keys x =
  let n = Array.length keys in
  if n = 0 || keys.(n - 1) < x then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if keys.(mid) >= x then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

(** Exact search: index of [x] in sorted [keys], if present. *)
let find keys x =
  match predecessor keys x with
  | Some i when keys.(i) = x -> Some i
  | _ -> None

(** Predecessor over a sorted array of pairs keyed by [fst]. *)
let predecessor_by f arr x =
  let n = Array.length arr in
  if n = 0 || f arr.(0) > x then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if f arr.(mid) <= x then lo := mid else hi := mid - 1
    done;
    Some !lo
  end
