(** Growable int vectors — unboxed append buffers for arena-tree and DOL
    construction. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

(** Reset to length 0 without releasing storage. *)
val clear : t -> unit

val push : t -> int -> unit

(** @raise Invalid_argument when out of bounds. *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** Last element.  @raise Invalid_argument when empty. *)
val last : t -> int

(** Remove and return the last element. *)
val pop : t -> int

(** Copy of the used prefix. *)
val to_array : t -> int array

val of_array : int array -> t

val iter : (int -> unit) -> t -> unit

val iteri : (int -> int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** Bounds-unchecked read for hot loops. *)
val unsafe_get : t -> int -> int
