(** LEB128-style variable-length integer coding.

    The NoK page layout stores per-node records (tag id, close-paren
    count, optional DOL code) as varints so that page capacity reflects
    realistic byte sizes rather than fixed slots. *)

let max_len = 10

(** Number of bytes [encode] will use for [x] (non-negative). *)
let encoded_length x =
  if x < 0 then invalid_arg "Varint.encoded_length: negative";
  let rec go x n = if x < 128 then n else go (x lsr 7) (n + 1) in
  go x 1

(** [write buf pos x] writes [x] at [pos], returns position after. *)
let write buf pos x =
  if x < 0 then invalid_arg "Varint.write: negative";
  let rec go pos x =
    if x < 128 then begin
      Bytes.set_uint8 buf pos x;
      pos + 1
    end
    else begin
      Bytes.set_uint8 buf pos (128 lor (x land 127));
      go (pos + 1) (x lsr 7)
    end
  in
  go pos x

(** [read buf pos] returns [(value, position after)]. *)
let read buf pos =
  let rec go pos shift acc =
    let b = Bytes.get_uint8 buf pos in
    let acc = acc lor ((b land 127) lsl shift) in
    if b < 128 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

(** Bounds- and overflow-checked read for untrusted input: decode a
    varint from [buf] at [pos] without touching [limit] or beyond.
    Returns [None] when the varint is truncated (a continuation byte runs
    into [limit]) or when the value would exceed 62 bits — either case
    would make {!read} raise [Invalid_argument] or silently wrap
    negative, which deserializers must surface as corruption instead. *)
let read_opt buf ~pos ~limit =
  let limit = min limit (Bytes.length buf) in
  let rec go pos shift acc =
    if pos >= limit || shift > 56 then None
    else
      let b = Bytes.get_uint8 buf pos in
      let v = b land 127 in
      if shift = 56 && v > 63 then None
      else
        let acc = acc lor (v lsl shift) in
        if b < 128 then Some (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0
