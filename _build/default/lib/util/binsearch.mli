(** Binary-search helpers over sorted int arrays — predecessor search is
    the core of DOL lookups (paper §3.3) and of the in-memory page
    table. *)

(** [predecessor keys x] is the greatest index [i] with [keys.(i) <= x],
    or [None] if every key exceeds [x].  [keys] must be sorted
    ascending. *)
val predecessor : int array -> int -> int option

(** [successor keys x] is the least index [i] with [keys.(i) >= x]. *)
val successor : int array -> int -> int option

(** Index of [x] in sorted [keys], if present. *)
val find : int array -> int -> int option

(** Predecessor over a sorted array keyed by [f]. *)
val predecessor_by : ('a -> int) -> 'a array -> int -> int option
