(** LRU eviction policy over int keys (page ids): O(1) touch, remove and
    evict. *)

type t

val create : ?capacity_hint:int -> unit -> t

(** Number of tracked keys. *)
val size : t -> int

val mem : t -> int -> bool

(** Mark [key] most-recently-used, inserting it if absent. *)
val touch : t -> int -> unit

(** Forget [key] (no-op when absent). *)
val remove : t -> int -> unit

(** Evict and return the least-recently-used key, if any. *)
val pop_lru : t -> int option

(** Keys from most- to least-recently used (for tests). *)
val to_list : t -> int list
