(** Fixed-width bitsets.

    ACLs are bit-vectors with one bit per access-control subject (paper
    §2.1).  They are treated as immutable once interned — equality and
    hashing are by value — but imperative [set] is provided for the
    construction phase. *)

type t

(** [create width] is the all-clear bitset over [width] bits. *)
val create : int -> t

(** [full width] has every bit in [0, width) set. *)
val full : int -> t

val width : t -> int

val copy : t -> t

(** [get t i] — bit [i].  @raise Invalid_argument when out of range. *)
val get : t -> int -> bool

(** In-place update; only for bitsets not yet shared or interned. *)
val set : t -> int -> bool -> unit

(** Functional update: a fresh bitset with bit [i] set to [b]. *)
val with_bit : t -> int -> bool -> t

(** Value equality (same width, same bits). *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** Value hash, consistent with {!equal}. *)
val hash : t -> int

(** Number of set bits. *)
val popcount : t -> int

val is_empty : t -> bool

val union : t -> t -> t

val inter : t -> t -> t

(** [diff a b] — bits set in [a] but not in [b]. *)
val diff : t -> t -> t

(** Grow to [new_width], new high bits cleared (paper §3.4: adding a
    subject column).  @raise Invalid_argument when shrinking. *)
val resize : t -> int -> t

(** Remove bit position [i], shifting higher bits down (subject
    deletion). *)
val remove_bit : t -> int -> t

(** Apply [f] to each set bit index, ascending. *)
val iter_set : (int -> unit) -> t -> unit

(** Indices of set bits, ascending. *)
val to_list : t -> int list

val of_list : int -> int list -> t

val pp : Format.formatter -> t -> unit

(** "0110…" rendering, one character per bit. *)
val to_string : t -> string

(** Bytes to store one ACL of this width (one bit per subject), matching
    the paper's space accounting. *)
val storage_bytes : t -> int
