(** Deterministic pseudo-random number generation (splitmix64).

    Every workload generator draws randomness from an explicit [Prng.t]
    seeded by the caller, so experiments reproduce exactly run-to-run. *)

type t

(** [create seed] — a generator with the given 63-bit seed. *)
val create : int -> t

(** A generator in the same state, advancing independently. *)
val copy : t -> t

(** [split t] is a fresh generator whose stream is independent of
    subsequent draws from [t]. *)
val split : t -> t

(** One raw splitmix64 step. *)
val next_int64 : t -> int64

(** Non-negative int drawn uniformly from the full 62-bit range. *)
val bits : t -> int

(** [int t n] is uniform in [0, n).  @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in the inclusive range [lo, hi]. *)
val int_in : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Bernoulli draw: [true] with probability [p]. *)
val bool : t -> p:float -> bool

(** Uniformly random element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** Uniformly random element of a non-empty list. *)
val choose_list : t -> 'a list -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [sample t n k] draws [k] distinct ints from [0, n), ascending. *)
val sample : t -> int -> int -> int list

(** Number of successes before failure with continuation probability
    [p], capped at [max]. *)
val geometric : t -> p:float -> max:int -> int

(** [zipf_sampler ~n ~s] precomputes a Zipf(s) distribution over ranks
    [0, n); the returned closure draws from it. *)
val zipf_sampler : n:int -> s:float -> t -> int
