(** Fixed-width bitsets.

    ACLs are bit-vectors with one bit per access-control subject (paper
    §2.1: "each codebook entry is an access control list, which we present
    as a bit vector with one bit for each access control subject").  They
    are treated as immutable once interned, so equality and hashing must be
    by value. *)

type t = { width : int; words : int array }

let words_for width = (width + 62) / 63

let create width =
  if width < 0 then invalid_arg "Bitset.create";
  { width; words = Array.make (max 1 (words_for width)) 0 }

let width t = t.width

let copy t = { width = t.width; words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.width then invalid_arg "Bitset: index out of range"

let get t i =
  check_index t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

(** In-place set; only used during construction before interning. *)
let set t i b =
  check_index t i;
  let w = i / 63 and m = 1 lsl (i mod 63) in
  if b then t.words.(w) <- t.words.(w) lor m
  else t.words.(w) <- t.words.(w) land lnot m

(** Functional update: a fresh bitset with bit [i] set to [b]. *)
let with_bit t i b =
  let u = copy t in
  set u i b;
  u

let equal a b = a.width = b.width && a.words = b.words

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t =
  let h = ref (t.width * 0x9e3779b1) in
  Array.iter (fun w -> h := (!h * 31) lxor w) t.words;
  !h land max_int

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  (* 63-bit words: a simple SWAR popcount *)
  ignore go;
  let w = w - ((w lsr 1) land 0x5555555555555555) in
  let w = (w land 0x3333333333333333) + ((w lsr 2) land 0x3333333333333333) in
  let w = (w + (w lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (w * 0x0101010101010101) lsr 56

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

(** All bits in [0, width) set. *)
let full width =
  let t = create width in
  for i = 0 to width - 1 do
    set t i true
  done;
  t

let union a b =
  if a.width <> b.width then invalid_arg "Bitset.union: width mismatch";
  { width = a.width; words = Array.init (Array.length a.words) (fun i -> a.words.(i) lor b.words.(i)) }

let inter a b =
  if a.width <> b.width then invalid_arg "Bitset.inter: width mismatch";
  { width = a.width; words = Array.init (Array.length a.words) (fun i -> a.words.(i) land b.words.(i)) }

let diff a b =
  if a.width <> b.width then invalid_arg "Bitset.diff: width mismatch";
  { width = a.width; words = Array.init (Array.length a.words) (fun i -> a.words.(i) land lnot b.words.(i)) }

(** Grow to a larger width, new bits cleared.  Used when a new subject is
    added to the system (paper §3.4: "adding an additional column to each
    entry in the in-memory codebook"). *)
let resize t new_width =
  if new_width < t.width then invalid_arg "Bitset.resize: cannot shrink";
  let u = create new_width in
  Array.blit t.words 0 u.words 0 (Array.length t.words);
  u

(** Remove bit position [i], shifting higher subject bits down by one.
    Used on subject deletion. *)
let remove_bit t i =
  check_index t i;
  let u = create (t.width - 1) in
  for j = 0 to t.width - 1 do
    if j < i then (if get t j then set u j true)
    else if j > i then if get t j then set u (j - 1) true
  done;
  u

let iter_set f t =
  for i = 0 to t.width - 1 do
    if get t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.width - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc

let of_list width l =
  let t = create width in
  List.iter (fun i -> set t i true) l;
  t

let pp ppf t =
  for i = 0 to t.width - 1 do
    Fmt.char ppf (if get t i then '1' else '0')
  done

let to_string t = Fmt.str "%a" pp t

(** Bytes needed to store one ACL of this width (one bit per subject),
    matching the paper's space accounting. *)
let storage_bytes t = (t.width + 7) / 8
