(** A small XML parser for the subset this system needs.

    Handles: element trees, text content (with the five standard entities
    and numeric character references), attributes (parsed and exposed as
    events but not stored in the arena — the paper's data model is
    element-only, §2), comments, processing instructions, CDATA sections,
    and an optional XML declaration / DOCTYPE which are skipped.

    The parser is a hand-rolled recursive-descent scanner producing SAX
    events in document order, which is exactly the access pattern under
    which a DOL "can be constructed on-the-fly using a single pass"
    (paper §2). *)

type event =
  | Start of string * (string * string) list  (** element name, attributes *)
  | Text of string
  | End of string

exception Parse_error of { position : int; message : string }

let error pos msg = raise (Parse_error { position = pos; message = msg })

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st.pos (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> error st.pos "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Decode &amp; &lt; &gt; &apos; &quot; and &#NN; / &#xHH; references. *)
let decode_entity st =
  expect st "&";
  let start = st.pos in
  let limit = min (String.length st.input) (st.pos + 12) in
  let semi = ref (-1) in
  (let i = ref st.pos in
   while !semi < 0 && !i < limit do
     if st.input.[!i] = ';' then semi := !i;
     incr i
   done);
  if !semi < 0 then error start "unterminated entity reference";
  let body = String.sub st.input start (!semi - start) in
  st.pos <- !semi + 1;
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
      if String.length body > 1 && body.[0] = '#' then begin
        let code =
          try
            if body.[1] = 'x' || body.[1] = 'X' then
              int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
            else int_of_string (String.sub body 1 (String.length body - 1))
          with _ -> error start "bad character reference"
        in
        if code < 0x80 then String.make 1 (Char.chr code)
        else begin
          (* Encode as UTF-8. *)
          let buf = Buffer.create 4 in
          let add b = Buffer.add_char buf (Char.chr b) in
          if code < 0x800 then begin
            add (0xC0 lor (code lsr 6));
            add (0x80 lor (code land 0x3F))
          end
          else if code < 0x10000 then begin
            add (0xE0 lor (code lsr 12));
            add (0x80 lor ((code lsr 6) land 0x3F));
            add (0x80 lor (code land 0x3F))
          end
          else begin
            add (0xF0 lor (code lsr 18));
            add (0x80 lor ((code lsr 12) land 0x3F));
            add (0x80 lor ((code lsr 6) land 0x3F));
            add (0x80 lor (code land 0x3F))
          end;
          Buffer.contents buf
        end
      end
      else error start ("unknown entity &" ^ body ^ ";")

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> advance st; q
    | _ -> error st.pos "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st.pos "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' -> Buffer.add_string buf (decode_entity st); go ()
    | Some c -> Buffer.add_char buf c; advance st; go ()
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
        let name = parse_name st in
        skip_space st;
        expect st "=";
        skip_space st;
        let value = parse_attr_value st in
        go ((name, value) :: acc)
    | _ -> List.rev acc
  in
  go []

let skip_until st marker =
  let idx =
    try
      let rec find i =
        if looking_at { st with pos = i } marker then i
        else if i >= String.length st.input then raise Not_found
        else find (i + 1)
      in
      find st.pos
    with Not_found -> error st.pos ("unterminated construct, expected " ^ marker)
  in
  st.pos <- idx + String.length marker

(** Run the parser, invoking [emit] on each event in document order. *)
let parse_events input emit =
  let st = { input; pos = 0 } in
  let depth = ref 0 in
  let seen_root = ref false in
  let text_buf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      let s = Buffer.contents text_buf in
      Buffer.clear text_buf;
      if !depth > 0 && String.exists (fun c -> not (is_space c)) s then
        emit (Text s)
    end
  in
  let rec loop () =
    match peek st with
    | None ->
        flush_text ();
        if !depth > 0 then error st.pos "unexpected end of input"
        else if not !seen_root then error st.pos "no root element"
    | Some '<' ->
        flush_text ();
        if looking_at st "<!--" then begin
          skip_until st "-->";
          loop ()
        end
        else if looking_at st "<![CDATA[" then begin
          st.pos <- st.pos + 9;
          let start = st.pos in
          skip_until st "]]>";
          if !depth > 0 then
            emit (Text (String.sub st.input start (st.pos - 3 - start)));
          loop ()
        end
        else if looking_at st "<?" then begin
          skip_until st "?>";
          loop ()
        end
        else if looking_at st "<!" then begin
          (* DOCTYPE without internal subset *)
          skip_until st ">";
          loop ()
        end
        else if looking_at st "</" then begin
          st.pos <- st.pos + 2;
          let name = parse_name st in
          skip_space st;
          expect st ">";
          if !depth = 0 then error st.pos "close tag without open";
          decr depth;
          emit (End name);
          loop ()
        end
        else begin
          advance st;
          let name = parse_name st in
          let attrs = parse_attributes st in
          skip_space st;
          if !seen_root && !depth = 0 then error st.pos "multiple root elements";
          seen_root := true;
          if looking_at st "/>" then begin
            st.pos <- st.pos + 2;
            emit (Start (name, attrs));
            emit (End name)
          end
          else begin
            expect st ">";
            emit (Start (name, attrs));
            incr depth
          end;
          loop ()
        end
    | Some '&' ->
        Buffer.add_string text_buf (decode_entity st);
        loop ()
    | Some c ->
        Buffer.add_char text_buf c;
        advance st;
        loop ()
  in
  loop ()

(** Parse a document string into an arena tree.  Element-name mismatches
    between open and close tags are rejected. *)
let parse ?table input =
  let b = Tree.Builder.create ?table () in
  let stack = ref [] in
  parse_events input (function
    | Start (name, _attrs) ->
        ignore (Tree.Builder.open_element b name);
        stack := name :: !stack
    | Text s -> Tree.Builder.add_text b s
    | End name -> (
        match !stack with
        | top :: rest when top = name ->
            stack := rest;
            Tree.Builder.close_element b
        | top :: _ ->
            error 0 (Printf.sprintf "mismatched close tag </%s>, open was <%s>" name top)
        | [] -> error 0 "close tag without open"));
  Tree.Builder.finish b
