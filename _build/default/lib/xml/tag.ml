(** Element-name interning.

    Tags are interned to dense int ids; trees, indexes and pattern trees
    all speak ids.  A table is per-document (documents built from the same
    [Tag.table] share ids, which the tag index relies on). *)

type id = int

type table = {
  by_name : (string, id) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let create () = { by_name = Hashtbl.create 64; names = Array.make 16 ""; count = 0 }

let count t = t.count

(** Intern [name], returning its id (allocating a fresh one if new). *)
let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      let id = t.count in
      if id >= Array.length t.names then begin
        let names = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 names 0 t.count;
        t.names <- names
      end;
      t.names.(id) <- name;
      Hashtbl.replace t.by_name name id;
      t.count <- id + 1;
      id

(** Lookup without interning. *)
let find_opt t name = Hashtbl.find_opt t.by_name name

let name t id =
  if id < 0 || id >= t.count then invalid_arg "Tag.name: unknown id";
  t.names.(id)

let iter f t =
  for id = 0 to t.count - 1 do
    f id t.names.(id)
  done
