(** XML parser for the subset this system needs: element trees, text
    content (standard entities + numeric character references),
    attributes (delivered as events, not stored — the paper's data model
    is element-only), comments, PIs, CDATA, XML declaration / DOCTYPE
    skipping.

    Events are produced in document order, which is the access pattern
    under which a DOL "can be constructed on-the-fly using a single pass"
    (paper §2). *)

type event =
  | Start of string * (string * string) list  (** element name, attributes *)
  | Text of string
  | End of string

exception Parse_error of { position : int; message : string }

(** Run the parser, invoking [emit] on each event in document order.
    @raise Parse_error on malformed input. *)
val parse_events : string -> (event -> unit) -> unit

(** Parse a document string into an arena tree.  Tag-mismatch between
    open and close tags is rejected.
    @raise Parse_error on malformed input. *)
val parse : ?table:Tag.table -> string -> Tree.t
