(** Serialize arena trees back to XML text. *)

(** Escape [&], [<], [>] in text content. *)
val escape_text : string -> string

(** Serialize the subtree rooted at [v] (default: the whole document).
    [indent]ed output is for humans; compact output round-trips through
    {!Parser.parse} up to insignificant whitespace. *)
val to_string : ?indent:bool -> ?v:Tree.node -> Tree.t -> string

val to_channel : ?indent:bool -> out_channel -> Tree.t -> unit
