lib/xml/serializer.ml: Buffer String Tree
