lib/xml/tree.ml: Array Buffer Dolx_util List Tag
