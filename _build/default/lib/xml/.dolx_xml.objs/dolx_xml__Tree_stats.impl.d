lib/xml/tree_stats.ml: Array Fmt List Tag Tree
