lib/xml/tree.mli: Tag
