lib/xml/tag.ml: Array Hashtbl
