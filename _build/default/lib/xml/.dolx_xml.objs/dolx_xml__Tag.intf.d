lib/xml/tag.mli:
