lib/xml/tree_stats.mli: Format Tree
