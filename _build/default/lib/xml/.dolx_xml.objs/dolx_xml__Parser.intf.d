lib/xml/parser.mli: Tag Tree
