(** Serialize arena trees back to XML text. *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Serialize the subtree rooted at [v] (default: whole document).
    [indent]ed output is for humans; compact output round-trips through
    {!Parser.parse} except for insignificant whitespace. *)
let to_string ?(indent = false) ?(v = Tree.root) tree =
  let buf = Buffer.create 1024 in
  let rec go v level =
    if indent then begin
      if v <> Tree.root then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ')
    end;
    let name = Tree.tag_name tree v in
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    let txt = Tree.text tree v in
    if Tree.is_leaf tree v && txt = "" then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      if txt <> "" then Buffer.add_string buf (escape_text txt);
      Tree.iter_children (fun c -> go c (level + 1)) tree v;
      if indent && not (Tree.is_leaf tree v) then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * level) ' ')
      end;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end
  in
  go v 0;
  Buffer.contents buf

let to_channel ?indent oc tree = output_string oc (to_string ?indent tree)
