(** Arena-encoded ordered XML trees.

    A node is identified with its preorder rank, which equals document
    order (paper §2): the document-order predecessor of [v] is [v - 1]
    and the subtree rooted at [v] is the contiguous preorder range
    [v, v + subtree_size v).  All structure lives in flat int arrays,
    giving O(1) first-child / next-sibling / parent / subtree-interval —
    exactly the primitives NoK navigation needs (paper Algorithm 1), and
    a faithful in-memory mirror of the succinct document-order string
    "(a(b)(c)…)" of §3.1. *)

type node = int

(** Sentinel for "no node" (absent parent/child/sibling). *)
val nil : node

type t

(** Alias for {!t}, usable inside {!Builder}'s signature where [t] names
    the builder. *)
type tree = t

(** Number of nodes. *)
val size : t -> int

(** The document root, always preorder 0. *)
val root : node

(** Interned tag id of [v]. *)
val tag : t -> node -> Tag.id

val tag_name : t -> node -> string

(** Parent of [v], or {!nil} for the root. *)
val parent : t -> node -> node

(** First child in document order, or {!nil}. *)
val first_child : t -> node -> node

(** Following sibling, or {!nil}. *)
val next_sibling : t -> node -> node

(** Nodes in [v]'s subtree, including [v]. *)
val subtree_size : t -> node -> int

(** Concatenated text content directly under [v] ("" when none). *)
val text : t -> node -> string

val tag_table : t -> Tag.table

(** Preorder of the last node in [v]'s subtree. *)
val subtree_end : t -> node -> node

val is_leaf : t -> node -> bool

(** Is [a] a proper ancestor of [d]?  O(1) via interval containment. *)
val is_ancestor : t -> node -> node -> bool

(** Distance from the root (root = 0). *)
val depth : t -> node -> int

val children : t -> node -> node list

val iter_children : (node -> unit) -> t -> node -> unit

(** Document-order (preorder) iteration over the whole tree. *)
val iter : (node -> unit) -> t -> unit

(** Document-order iteration over [v]'s subtree. *)
val iter_subtree : (node -> unit) -> t -> node -> unit

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a

(** Number of close-parens after [v] in the compacted NoK document-order
    string (§3.1): how many subtrees end exactly at [v]. *)
val closes_after : t -> node -> int

(** {1 Building} *)

(** SAX-style construction: [open_element]/[close_element] pairs in
    document order. *)
module Builder : sig
  type t

  (** [create ?table ()] — share an existing tag table to keep ids
      compatible across documents. *)
  val create : ?table:Tag.table -> unit -> t

  val tag_table : t -> Tag.table

  (** Open an element; returns its preorder rank. *)
  val open_element : t -> string -> node

  val close_element : t -> unit

  (** Append text content to the innermost open element. *)
  val add_text : t -> string -> unit

  (** A complete leaf element with text content. *)
  val leaf : t -> string -> string -> node

  (** Finish the document.  @raise Invalid_argument if elements remain
      open or nothing was built. *)
  val finish : t -> tree
end

(** Nested tree description for tests and examples. *)
type spec = El of string * spec list | Elt of string * string * spec list

val of_spec : ?table:Tag.table -> spec -> t

(** {1 Structural edits (functional)} *)

(** Remove the subtree rooted at [v] — O(n) replay into a fresh arena.
    The matching DOL operation is [Dolx_core.Update.dol_delete] over
    [v]'s preorder range.  @raise Invalid_argument on the root. *)
val remove_subtree : t -> node -> t

(** Insert [sub] (a whole document) as a child of [parent] directly
    after sibling [after] ({!nil} = first child); returns the new tree
    and the preorder the inserted root landed on — the [at] position for
    [Dolx_core.Update.dol_insert].
    @raise Invalid_argument when [after] is not a child of [parent]. *)
val insert_subtree : t -> parent:node -> after:node -> t -> t * node

(** The compacted document-order structure string of §3.1,
    e.g. ["a(b)(c)(d)(e(f)…)"]. *)
val structure_string : t -> string

(** Check all arena invariants; raises [Failure] on violation.  Used by
    property tests. *)
val validate : t -> unit
