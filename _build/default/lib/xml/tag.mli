(** Element-name interning: dense int ids per distinct tag.

    Trees, indexes and pattern compilation all speak ids; documents built
    against the same table share them, which the tag index relies on. *)

type id = int

type table

val create : unit -> table

(** Number of distinct interned names. *)
val count : table -> int

(** Intern [name], allocating a fresh id if new. *)
val intern : table -> string -> id

(** Lookup without interning. *)
val find_opt : table -> string -> id option

(** @raise Invalid_argument on an unknown id. *)
val name : table -> id -> string

val iter : (id -> string -> unit) -> table -> unit
