(** Arena-encoded ordered XML trees.

    A node is identified with its preorder rank (= document order, paper
    §2), so "document-order predecessor of [v]" is just [v - 1] and the
    subtree rooted at [v] is the contiguous range [v, v + size v).  All
    structure lives in flat int arrays:

    - [tags.(v)]          interned element name
    - [parents.(v)]       parent preorder, -1 for the root
    - [first_childs.(v)]  first child preorder, -1 if leaf
    - [next_siblings.(v)] following sibling preorder, -1 if last child
    - [sizes.(v)]         number of nodes in v's subtree (including v)
    - [texts.(v)]         concatenated text content directly under v ("")

    These are exactly the primitive accesses NoK navigation needs
    (FIRST-CHILD and FOLLOWING-SIBLING, paper Algorithm 1), and the layout
    mirrors the succinct document-order string "(a(b)(c)…)" of §3.1. *)

module Int_vec = Dolx_util.Int_vec

type node = int

let nil : node = -1

type t = {
  tag_table : Tag.table;
  tags : int array;
  parents : int array;
  first_childs : int array;
  next_siblings : int array;
  sizes : int array;
  texts : string array;
}

type tree = t

let size t = Array.length t.tags

let root : node = 0

let check t v =
  if v < 0 || v >= size t then invalid_arg "Tree: node out of range"

let tag t v = check t v; t.tags.(v)
let tag_name t v = Tag.name t.tag_table (tag t v)
let parent t v = check t v; t.parents.(v)
let first_child t v = check t v; t.first_childs.(v)
let next_sibling t v = check t v; t.next_siblings.(v)
let subtree_size t v = check t v; t.sizes.(v)
let text t v = check t v; t.texts.(v)
let tag_table t = t.tag_table

(** Preorder of the last node in v's subtree. *)
let subtree_end t v = v + subtree_size t v - 1

let is_leaf t v = first_child t v = nil

(** [is_ancestor t a d]: is [a] a proper ancestor of [d]?  O(1) via the
    preorder-interval containment test. *)
let is_ancestor t a d = a < d && d <= subtree_end t a

let depth t v =
  let rec go v acc = if v = nil then acc - 1 else go t.parents.(v) (acc + 1) in
  go v 0

let children t v =
  let rec go c acc = if c = nil then List.rev acc else go t.next_siblings.(c) (c :: acc) in
  go (first_child t v) []

let iter_children f t v =
  let c = ref (first_child t v) in
  while !c <> nil do
    f !c;
    c := t.next_siblings.(!c)
  done

(** Document-order (preorder) iteration over the whole tree. *)
let iter f t =
  for v = 0 to size t - 1 do
    f v
  done

(** Iterate the subtree of [v] in document order. *)
let iter_subtree f t v =
  let last = subtree_end t v in
  for u = v to last do
    f u
  done

let fold f init t =
  let acc = ref init in
  for v = 0 to size t - 1 do
    acc := f !acc v
  done;
  !acc

(** Number of close-parens emitted immediately after node [v] in the
    compacted NoK document-order string (open parens are elided, §3.1
    footnote): the number of subtrees that end exactly at [v]. *)
let closes_after t v =
  let rec go u acc =
    if u = nil then acc
    else if subtree_end t u = v then go t.parents.(u) (acc + 1)
    else acc
  in
  go v 0

(** {1 Building} *)

module Builder = struct
  (* SAX-style construction: [open_element]/[close_element] pairs in
     document order, O(total nodes) with an explicit ancestor stack. *)
  type builder = {
    table : Tag.table;
    tags : Int_vec.t;
    parents : Int_vec.t;
    first_childs : Int_vec.t;
    next_siblings : Int_vec.t;
    sizes : Int_vec.t;
    mutable texts : (int * string) list; (* sparse, reversed *)
    mutable stack : int list;            (* open ancestors, innermost first *)
    mutable last_closed : int;           (* preceding sibling candidate *)
    mutable finished : bool;
  }

  and t = builder

  let create ?table () =
    let table = match table with Some t -> t | None -> Tag.create () in
    {
      table;
      tags = Int_vec.create ();
      parents = Int_vec.create ();
      first_childs = Int_vec.create ();
      next_siblings = Int_vec.create ();
      sizes = Int_vec.create ();
      texts = [];
      stack = [];
      last_closed = nil;
      finished = false;
    }

  let tag_table b = b.table

  let open_element b name =
    if b.finished then invalid_arg "Builder: document already finished";
    if b.stack = [] && Int_vec.length b.tags > 0 then
      invalid_arg "Builder: multiple roots";
    let v = Int_vec.length b.tags in
    let tag_id = Tag.intern b.table name in
    Int_vec.push b.tags tag_id;
    Int_vec.push b.sizes 0;
    Int_vec.push b.first_childs nil;
    Int_vec.push b.next_siblings nil;
    (match b.stack with
    | [] -> Int_vec.push b.parents nil
    | p :: _ ->
        Int_vec.push b.parents p;
        if Int_vec.get b.first_childs p = nil then Int_vec.set b.first_childs p v);
    if b.last_closed <> nil then Int_vec.set b.next_siblings b.last_closed v;
    b.stack <- v :: b.stack;
    b.last_closed <- nil;
    v

  let close_element b =
    match b.stack with
    | [] -> invalid_arg "Builder: close without open"
    | v :: rest ->
        let next = Int_vec.length b.tags in
        Int_vec.set b.sizes v (next - v);
        b.stack <- rest;
        b.last_closed <- v;
        if rest = [] then b.finished <- true

  let add_text b s =
    match b.stack with
    | [] -> invalid_arg "Builder: text outside the root element"
    | v :: _ -> if s <> "" then b.texts <- (v, s) :: b.texts

  (** Convenience: a whole leaf element with text content. *)
  let leaf b name txt =
    let v = open_element b name in
    if txt <> "" then add_text b txt;
    close_element b;
    v

  let finish b =
    if b.stack <> [] then invalid_arg "Builder: unclosed elements remain";
    if Int_vec.length b.tags = 0 then invalid_arg "Builder: empty document";
    let n = Int_vec.length b.tags in
    let texts = Array.make n "" in
    List.iter (fun (v, s) -> texts.(v) <- s ^ texts.(v)) b.texts;
    {
      tag_table = b.table;
      tags = Int_vec.to_array b.tags;
      parents = Int_vec.to_array b.parents;
      first_childs = Int_vec.to_array b.first_childs;
      next_siblings = Int_vec.to_array b.next_siblings;
      sizes = Int_vec.to_array b.sizes;
      texts;
    }
end

(** Build a tree from a nested description, for tests and examples. *)
type spec = El of string * spec list | Elt of string * string * spec list

let of_spec ?table spec =
  let b = Builder.create ?table () in
  let rec go = function
    | El (name, kids) ->
        ignore (Builder.open_element b name);
        List.iter go kids;
        Builder.close_element b
    | Elt (name, txt, kids) ->
        ignore (Builder.open_element b name);
        Builder.add_text b txt;
        List.iter go kids;
        Builder.close_element b
  in
  go spec;
  Builder.finish b

(** {1 Structural edits (functional)}

    Arena trees are immutable; structural updates produce a new arena by
    replaying the document through a builder — O(n), one pass.  The DOL
    counterparts ([Dolx_core.Update.dol_delete] / [dol_insert]) take the
    matching preorder positions. *)

(* Replay [tree] into [b], except: subtree [skip] is omitted, and after
   emitting child [after_sib] of [parent] (or before [parent]'s first
   child when [after_sib] = nil) the whole of [inject] is emitted.
   Returns the preorder the injected root landed on, if any. *)
let replay b tree ~skip ~inject_at ~inject =
  let injected = ref nil in
  let emit_inject () =
    match inject with
    | None -> ()
    | Some sub ->
        let rec copy u =
          let v' = Builder.open_element b (tag_name sub u) in
          if !injected = nil && u = root then injected := v';
          let txt = text sub u in
          if txt <> "" then Builder.add_text b txt;
          iter_children (fun c -> copy c) sub u;
          Builder.close_element b
        in
        copy root
  in
  let rec copy v =
    if v <> skip then begin
      ignore (Builder.open_element b (tag_name tree v));
      let txt = text tree v in
      if txt <> "" then Builder.add_text b txt;
      (match inject_at with
      | Some (parent, after_sib) when parent = v && after_sib = nil -> emit_inject ()
      | _ -> ());
      iter_children
        (fun c ->
          copy c;
          match inject_at with
          | Some (_, after_sib) when after_sib = c -> emit_inject ()
          | _ -> ())
        tree v;
      Builder.close_element b
    end
  in
  copy root;
  !injected

(** Remove the subtree rooted at [v]; returns the new tree.
    @raise Invalid_argument when [v] is the root. *)
let remove_subtree tree v =
  check tree v;
  if v = root then invalid_arg "Tree.remove_subtree: cannot remove the root";
  let b = Builder.create ~table:tree.tag_table () in
  ignore (replay b tree ~skip:v ~inject_at:None ~inject:None);
  Builder.finish b

(** Insert [sub] (a whole document) as a child of [parent], directly
    after sibling [after] ([nil] = as the first child).  Returns the new
    tree and the preorder its root landed on.
    @raise Invalid_argument when [after] is not a child of [parent]. *)
let insert_subtree tree ~parent ~after sub =
  check tree parent;
  if after <> nil && (check tree after; tree.parents.(after) <> parent) then
    invalid_arg "Tree.insert_subtree: after is not a child of parent";
  let b = Builder.create ~table:tree.tag_table () in
  let pos = replay b tree ~skip:nil ~inject_at:(Some (parent, after)) ~inject:(Some sub) in
  (Builder.finish b, pos)

(** The compacted document-order structure string of §3.1, e.g.
    "a(b)(c)(d)(e(f)…)" — useful in tests and debugging. *)
let structure_string t =
  let buf = Buffer.create (4 * size t) in
  let rec go v =
    Buffer.add_string buf (tag_name t v);
    iter_children
      (fun c ->
        Buffer.add_char buf '(';
        go c;
        Buffer.add_char buf ')')
      t v
  in
  go root;
  Buffer.contents buf

(** Internal consistency check used by property tests. *)
let validate t =
  let n = size t in
  if n = 0 then failwith "empty tree";
  if t.parents.(0) <> nil then failwith "root has a parent";
  for v = 0 to n - 1 do
    let sz = t.sizes.(v) in
    if sz < 1 || v + sz > n then failwith "bad subtree size";
    let p = t.parents.(v) in
    if v > 0 then begin
      if p = nil then failwith "multiple roots";
      if not (is_ancestor t p v) then failwith "parent interval violation"
    end;
    let fc = t.first_childs.(v) in
    if fc <> nil && fc <> v + 1 then failwith "first child must follow in preorder";
    if fc = nil && sz <> 1 then failwith "leaf with size > 1";
    let ns = t.next_siblings.(v) in
    if ns <> nil then begin
      if ns <> v + sz then failwith "next sibling must follow subtree";
      if t.parents.(ns) <> p then failwith "sibling parent mismatch"
    end
  done
