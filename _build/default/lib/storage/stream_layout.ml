(** Streaming construction of the NoK page layout.

    The paper's DOL encoding "can be constructed on-the-fly using a
    single pass through a labeled XML document" (§2), and §7 notes the
    physical layout "makes it easy to embed into streaming XML data as
    control characters".  This module is the physical half of that
    claim: feed SAX-style start/end events, with the DOL transition code
    attached to the start events where [Dolx_core.Dol.Streaming.push]
    emits one, and pages are written to disk as they fill.

    Only one node of lookahead is buffered: a node's close-paren count
    becomes final when the next element starts (or the stream ends), so
    memory use is O(page), independent of document size. *)

type pending = {
  tag : int;
  code : int option;   (* transition code carried by this node, if any *)
  code_at_node : int;  (* code in force at this node *)
  depth : int;
  mutable closes : int;
}

type t = {
  disk : Disk.t;
  budget : int;
  page_size : int;
  (* current page accumulation *)
  mutable records : Nok_layout.record list; (* reversed *)
  mutable bytes : int;
  mutable first_pre : int;
  mutable first_code : int;
  mutable first_depth : int;
  mutable change : bool;
  mutable n_pages : int;
  (* stream state *)
  mutable pending : pending option;
  mutable next_pre : int;
  mutable depth : int;
  mutable open_elements : int;
  mutable code_now : int;
  mutable finished : bool;
}

let create ?(fill = 0.9) disk =
  if fill <= 0.0 || fill > 1.0 then invalid_arg "Stream_layout.create: fill";
  let page_size = Disk.page_size disk in
  if page_size < 64 then invalid_arg "Stream_layout.create: page size must be >= 64";
  let budget =
    min page_size
      (max (Nok_layout.header_bytes + 16)
         (int_of_float (float_of_int page_size *. fill)))
  in
  {
    disk;
    budget;
    page_size;
    records = [];
    bytes = Nok_layout.header_bytes;
    first_pre = 0;
    first_code = 0;
    first_depth = 0;
    change = false;
    n_pages = 0;
    pending = None;
    next_pre = 0;
    depth = 0;
    open_elements = 0;
    code_now = 0;
    finished = false;
  }

let flush_page t =
  if t.records <> [] then begin
    let records = List.rev t.records in
    let pid = Disk.allocate t.disk in
    let page = Page.create t.page_size in
    Nok_layout.encode_records page ~n:(List.length records) ~first_pre:t.first_pre
      ~first_code:t.first_code ~first_depth:t.first_depth ~change:t.change records;
    Disk.write t.disk pid page;
    t.n_pages <- t.n_pages + 1;
    t.records <- [];
    t.bytes <- Nok_layout.header_bytes;
    t.change <- false
  end

(* Append the buffered node now that its close count is final. *)
let emit t (p : pending) =
  let pre = t.next_pre in
  t.next_pre <- pre + 1;
  let start_page () =
    t.first_pre <- pre;
    t.first_code <- p.code_at_node;
    t.first_depth <- p.depth
  in
  let page_first = t.records = [] in
  if page_first then start_page ();
  let r =
    { Nok_layout.pre; tag = p.tag; closes = p.closes;
      code = (if page_first then None else p.code) }
  in
  let rb = Nok_layout.record_bytes r in
  if (not page_first) && t.bytes + rb > t.budget then begin
    flush_page t;
    start_page ();
    let r = { r with Nok_layout.code = None } in
    t.records <- [ r ];
    t.bytes <- t.bytes + Nok_layout.record_bytes r
  end
  else begin
    t.records <- r :: t.records;
    t.bytes <- t.bytes + rb;
    if r.Nok_layout.code <> None then t.change <- true
  end

(** A new element starts.  [code] is the DOL transition code when this
    node is a transition (the "control character"). *)
let start_element t ~tag ?code () =
  if t.finished then invalid_arg "Stream_layout: already finished";
  (match t.pending with Some p -> emit t p | None -> ());
  (match code with Some c -> t.code_now <- c | None -> ());
  t.pending <-
    Some { tag; code; code_at_node = t.code_now; depth = t.depth; closes = 0 };
  t.depth <- t.depth + 1;
  t.open_elements <- t.open_elements + 1

(** The innermost open element ends. *)
let end_element t =
  if t.finished then invalid_arg "Stream_layout: already finished";
  if t.open_elements <= 0 then invalid_arg "Stream_layout: unbalanced end_element";
  t.open_elements <- t.open_elements - 1;
  t.depth <- t.depth - 1;
  match t.pending with
  | Some p -> p.closes <- p.closes + 1
  | None -> invalid_arg "Stream_layout: end_element before any start_element"

(** Flush everything and return the layout over the pages written so
    far.  @raise Invalid_argument if elements remain open or nothing was
    streamed. *)
let finish t =
  if t.open_elements <> 0 then invalid_arg "Stream_layout: unclosed elements remain";
  (match t.pending with
  | Some p ->
      emit t p;
      t.pending <- None
  | None -> if t.next_pre = 0 then invalid_arg "Stream_layout: empty stream");
  flush_page t;
  t.finished <- true;
  Nok_layout.attach t.disk ~n_pages:t.n_pages

(** Nodes streamed so far. *)
let node_count t = t.next_pre + match t.pending with Some _ -> 1 | None -> 0
