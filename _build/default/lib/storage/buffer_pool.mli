(** A buffer pool over the simulated {!Disk} with LRU replacement.  The
    counters here are what demonstrate the paper's key claim that ε-NoK's
    access checks are served from already-resident pages (§3.3, §5.2). *)

type stats = {
  mutable touches : int;  (** logical page accesses *)
  mutable hits : int;
  mutable misses : int;
}

type t

(** @raise Invalid_argument when [capacity < 1]. *)
val create : ?capacity:int -> Disk.t -> t

val disk : t -> Disk.t

val stats : t -> stats

val reset_stats : t -> unit

(** Fetch a page, reading from disk on a miss (evicting LRU when full).
    The returned bytes are the pool's frame: read-only unless followed by
    {!mark_dirty}. *)
val get : t -> int -> Page.t

(** Declare the cached copy of page [id] modified in place.
    @raise Invalid_argument when the page is not resident. *)
val mark_dirty : t -> int -> unit

(** Write all dirty frames back to disk. *)
val flush_all : t -> unit

(** Flush and drop all frames (counters kept). *)
val clear : t -> unit

val resident : t -> int -> bool
