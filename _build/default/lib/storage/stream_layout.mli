(** Streaming construction of the NoK page layout — the physical half of
    the paper's one-pass claims (§2, §7): feed SAX-style start/end
    events with DOL transition codes attached to transition-node starts;
    pages are written as they fill, with one node of lookahead. *)

type t

(** Pages are written to [disk]; [fill] as in {!Nok_layout.build}. *)
val create : ?fill:float -> Disk.t -> t

(** A new element starts; [code] is its DOL transition code when the
    node is a transition. *)
val start_element : t -> tag:int -> ?code:int -> unit -> unit

(** The innermost open element ends.
    @raise Invalid_argument when unbalanced. *)
val end_element : t -> unit

(** Flush and return the layout over the written pages.
    @raise Invalid_argument on unclosed elements or an empty stream. *)
val finish : t -> Nok_layout.t

(** Nodes streamed so far (including the buffered one). *)
val node_count : t -> int
