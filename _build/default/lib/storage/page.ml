(** Fixed-size page buffers and primitive field accessors.

    The experiments use the paper's 4 KB pages ("The data is stored on
    disk with each page at 4K bytes", §5.2). *)

let default_size = 4096

type t = Bytes.t

let create size : t = Bytes.make size '\000'

let size (p : t) = Bytes.length p

let copy (p : t) : t = Bytes.copy p

let get_u8 (p : t) off = Bytes.get_uint8 p off

let set_u8 (p : t) off v = Bytes.set_uint8 p off v

let get_u16 (p : t) off = Bytes.get_uint16_le p off

let set_u16 (p : t) off v = Bytes.set_uint16_le p off v

let get_u32 (p : t) off = Int32.to_int (Bytes.get_int32_le p off) land 0xFFFFFFFF

let set_u32 (p : t) off v = Bytes.set_int32_le p off (Int32.of_int v)
