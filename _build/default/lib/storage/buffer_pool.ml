(** A buffer pool over the simulated {!Disk} with LRU replacement.

    Pages are fetched through the pool so every experiment can report
    logical page touches, buffer hits, and physical disk I/O separately.
    The ε-NoK evaluation result (≈2% overhead, paper §5.2) rests on the
    access-control check being buffer-resident ("piggy-backed") — the
    counters here are what demonstrate it. *)

module Lru = Dolx_util.Lru

type stats = {
  mutable touches : int; (* logical page accesses *)
  mutable hits : int;
  mutable misses : int;
}

type frame = { mutable page_id : int; data : Page.t; mutable dirty : bool }

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t; (* page_id -> frame *)
  lru : Lru.t;
  stats : stats;
}

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create";
  {
    disk;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    lru = Lru.create ~capacity_hint:capacity ();
    stats = { touches = 0; hits = 0; misses = 0 };
  }

let disk t = t.disk

let stats t = t.stats

let reset_stats t =
  t.stats.touches <- 0;
  t.stats.hits <- 0;
  t.stats.misses <- 0

let flush_frame t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.page_id frame.data;
    frame.dirty <- false
  end

let evict_one t =
  match Lru.pop_lru t.lru with
  | None -> failwith "Buffer_pool: all frames pinned (impossible: no pinning)"
  | Some victim ->
      let frame = Hashtbl.find t.frames victim in
      flush_frame t frame;
      Hashtbl.remove t.frames victim;
      frame

(** Fetch page [id], reading from disk on a miss.  The returned bytes are
    the pool's frame: treat as read-only unless followed by
    [mark_dirty]. *)
let get t id =
  t.stats.touches <- t.stats.touches + 1;
  match Hashtbl.find_opt t.frames id with
  | Some frame ->
      t.stats.hits <- t.stats.hits + 1;
      Lru.touch t.lru id;
      frame.data
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      let frame =
        if Hashtbl.length t.frames >= t.capacity then begin
          let f = evict_one t in
          f.page_id <- id;
          f
        end
        else { page_id = id; data = Page.create (Disk.page_size t.disk); dirty = false }
      in
      Disk.read t.disk id frame.data;
      frame.dirty <- false;
      Hashtbl.replace t.frames id frame;
      Lru.touch t.lru id;
      frame.data

(** Declare that the cached copy of [id] has been modified in place. *)
let mark_dirty t id =
  match Hashtbl.find_opt t.frames id with
  | Some frame -> frame.dirty <- true
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not resident"

(** Write all dirty frames back to disk. *)
let flush_all t = Hashtbl.iter (fun _ frame -> flush_frame t frame) t.frames

(** Drop everything (writing dirty pages back); resets residency but not
    counters. *)
let clear t =
  flush_all t;
  Hashtbl.reset t.frames;
  while Lru.pop_lru t.lru <> None do
    ()
  done

let resident t id = Hashtbl.mem t.frames id
