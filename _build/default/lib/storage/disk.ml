(** A simulated block device.

    Pages are stored in memory; the point is faithful accounting of page
    reads and writes (and an optional synthetic latency model) so that the
    paper's I/O arguments — "the access control check for d requires no
    additional I/O" (§3.3), "the cost for updating accessibility of a
    subtree with N nodes would be N/B page reads and writes" (§3.4) — can
    be measured rather than asserted. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable allocations : int;
}

type t = {
  page_size : int;
  mutable pages : Page.t array;
  mutable count : int;
  stats : stats;
  (* Synthetic cost model: simulated microseconds charged per page I/O,
     accumulated so experiments can report "disk time". *)
  read_cost_us : float;
  write_cost_us : float;
  mutable simulated_us : float;
}

let create ?(page_size = Page.default_size) ?(read_cost_us = 100.0)
    ?(write_cost_us = 120.0) () =
  {
    page_size;
    pages = Array.make 16 (Page.create 0);
    count = 0;
    stats = { reads = 0; writes = 0; allocations = 0 };
    read_cost_us;
    write_cost_us;
    simulated_us = 0.0;
  }

let page_size t = t.page_size

let page_count t = t.count

let stats t = t.stats

let simulated_us t = t.simulated_us

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.simulated_us <- 0.0

(** Allocate a fresh zeroed page, returning its id. *)
let allocate t =
  if t.count >= Array.length t.pages then begin
    let pages = Array.make (2 * Array.length t.pages) (Page.create 0) in
    Array.blit t.pages 0 pages 0 t.count;
    t.pages <- pages
  end;
  let id = t.count in
  t.pages.(id) <- Page.create t.page_size;
  t.count <- id + 1;
  t.stats.allocations <- t.stats.allocations + 1;
  id

let check t id =
  if id < 0 || id >= t.count then invalid_arg "Disk: page id out of range"

(** Read page [id] into [dst] (a full-page buffer). *)
let read t id dst =
  check t id;
  t.stats.reads <- t.stats.reads + 1;
  t.simulated_us <- t.simulated_us +. t.read_cost_us;
  Bytes.blit t.pages.(id) 0 dst 0 t.page_size

(** Write [src] to page [id]. *)
let write t id src =
  check t id;
  t.stats.writes <- t.stats.writes + 1;
  t.simulated_us <- t.simulated_us +. t.write_cost_us;
  Bytes.blit src 0 t.pages.(id) 0 t.page_size
