(** A simulated block device: in-memory pages with faithful accounting of
    reads, writes and a synthetic latency model, so the paper's I/O
    claims (§3.3, §3.4) are measured rather than asserted. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable allocations : int;
}

type t

(** [read_cost_us]/[write_cost_us]: simulated microseconds charged per
    page I/O (defaults 100/120, SSD-like). *)
val create :
  ?page_size:int -> ?read_cost_us:float -> ?write_cost_us:float -> unit -> t

val page_size : t -> int

val page_count : t -> int

val stats : t -> stats

(** Accumulated simulated I/O time in microseconds. *)
val simulated_us : t -> float

(** Zero the counters and the simulated clock. *)
val reset_stats : t -> unit

(** Allocate a fresh zeroed page; returns its id. *)
val allocate : t -> int

(** Read page [id] into [dst] (a full-page buffer). *)
val read : t -> int -> Page.t -> unit

(** Write [src] to page [id]. *)
val write : t -> int -> Page.t -> unit
