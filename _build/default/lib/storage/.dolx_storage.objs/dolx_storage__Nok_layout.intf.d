lib/storage/nok_layout.mli: Buffer_pool Disk Dolx_xml Page
