lib/storage/stream_layout.mli: Disk Nok_layout
