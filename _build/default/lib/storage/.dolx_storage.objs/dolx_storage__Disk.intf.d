lib/storage/disk.mli: Dolx_util Page
