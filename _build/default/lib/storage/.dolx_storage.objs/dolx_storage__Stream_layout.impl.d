lib/storage/stream_layout.ml: Disk List Nok_layout Page
