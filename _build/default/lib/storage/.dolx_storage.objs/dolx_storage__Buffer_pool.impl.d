lib/storage/buffer_pool.ml: Disk Dolx_util Hashtbl List Page Printexc Printf String
