lib/storage/nok_layout.ml: Array Buffer_pool Bytes Disk Dolx_util Dolx_xml Fun Hashtbl List Page
