lib/storage/disk.ml: Array Bytes Dolx_util Hashtbl Page Printexc Printf
