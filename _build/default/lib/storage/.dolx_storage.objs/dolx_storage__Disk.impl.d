lib/storage/disk.ml: Array Bytes Page
