(** Fixed-size page buffers and primitive field accessors.  Experiments
    use the paper's 4 KB pages (§5.2). *)

val default_size : int

type t = Bytes.t

val create : int -> t

val size : t -> int

val copy : t -> t

val get_u8 : t -> int -> int

val set_u8 : t -> int -> int -> unit

val get_u16 : t -> int -> int

val set_u16 : t -> int -> int -> unit

val get_u32 : t -> int -> int

val set_u32 : t -> int -> int -> unit
