(** Secure views: materialize the sub-document a subject may see — the
    dissemination use-case of the paper's conclusion.  Produced by one
    document-order scan consulting the DOL, so also suitable for
    streaming. *)

module Tree = Dolx_xml.Tree

type semantics =
  | Prune_subtree
      (** Gabillon–Bruno: an inaccessible node hides its whole subtree. *)
  | Lift_children
      (** Cho-style: an inaccessible node is elided, its accessible
          descendants re-attach to the nearest accessible ancestor. *)

exception Root_inaccessible

(** Build the view tree for [subject] (default {!Prune_subtree}).
    @raise Root_inaccessible when the subject cannot see the root. *)
val view : ?semantics:semantics -> Tree.t -> Dol.t -> subject:int -> Tree.t

(** Nodes of the original document visible in the view, document order. *)
val visible_nodes :
  ?semantics:semantics -> Tree.t -> Dol.t -> subject:int -> Tree.node list

val visible_count : ?semantics:semantics -> Tree.t -> Dol.t -> subject:int -> int
