(** Serialization of DOLs (codebook + transition list) to a compact byte
    format — for shipping secured documents (dissemination), restarts,
    and the streaming filter.  Transition preorders are delta-encoded;
    structural locality makes the deltas varint-friendly.

    Format v2 ends with a CRC32C over the whole body; {!of_bytes} treats
    input as untrusted and raises only {!Corrupt} on any malformation
    (bad magic/version, checksum mismatch, truncation, varint overflow,
    inconsistent counts, trailing garbage). *)

exception Corrupt of string

val to_bytes : Dol.t -> Bytes.t

(** Serialize the body only (no trailing CRC) into [buf] — for embedding
    a DOL inside an outer checksummed structure ({!Db_file}'s sections
    and journal). *)
val write_body : Buffer.t -> Dol.t -> unit

(** Parse an embedded body: bytes [0, limit) of [buf], no trailing CRC.
    The caller is responsible for having verified integrity.
    @raise Corrupt on malformed input. *)
val of_body : Bytes.t -> limit:int -> Dol.t

(** @raise Corrupt on malformed input. *)
val of_bytes : Bytes.t -> Dol.t

val save : string -> Dol.t -> unit

(** @raise Corrupt on malformed input; [Sys_error] on I/O failure. *)
val load : string -> Dol.t

(** Size of {!to_bytes} output. *)
val serialized_bytes : Dol.t -> int
