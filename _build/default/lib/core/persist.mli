(** Serialization of DOLs (codebook + transition list) to a compact byte
    format — for shipping secured documents (dissemination), restarts,
    and the streaming filter.  Transition preorders are delta-encoded;
    structural locality makes the deltas varint-friendly. *)

exception Corrupt of string

val to_bytes : Dol.t -> Bytes.t

(** @raise Corrupt on malformed input. *)
val of_bytes : Bytes.t -> Dol.t

val save : string -> Dol.t -> unit

(** @raise Corrupt on malformed input; [Sys_error] on I/O failure. *)
val load : string -> Dol.t

(** Size of {!to_bytes} output. *)
val serialized_bytes : Dol.t -> int
