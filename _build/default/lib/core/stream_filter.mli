(** Secure filtering of streaming XML (paper §7: "many one-pass
    algorithms on streaming XML data can be made secure"): consume SAX
    events in document order alongside the DOL's transition codes (the
    embedded "control characters") and re-emit only what the subject may
    see.  State is constant beyond the element stack. *)

module Parser = Dolx_xml.Parser

type semantics = Secure_view.semantics = Prune_subtree | Lift_children

type t

(** [create dol ~subject ~emit] — [emit] receives the surviving events. *)
val create :
  ?semantics:semantics -> Dol.t -> subject:int -> emit:(Parser.event -> unit) -> t

(** Events consumed so far. *)
val events_in : t -> int

(** Events emitted so far. *)
val events_out : t -> int

(** Feed one event (document order, well nested).
    @raise Invalid_argument when more elements arrive than the DOL
    covers or End events are unbalanced. *)
val push : t -> Parser.event -> unit

(** Filter a whole document string; returns the filtered serialization.
    Convenience for tests and tools — the filter itself is incremental. *)
val filter_string : ?semantics:semantics -> Dol.t -> subject:int -> string -> string
