(** Single-file database format: a complete secured store — page images,
    node values, tag names and the DOL — in one file, so a labeled
    document compiled once can be opened again (or shipped) without the
    source XML or the policy.

    Structure and values are stored separately, as in the paper's NoK
    storage ("the structure of the data tree is stored separately from
    the node values", §3.1): the page images carry structure + embedded
    access-control codes; a value section carries the text content.

    {v
      file := "DOLXDB" u8(version=1)
              varint page_size
              varint n_tags   (len-prefixed tag names, id order)
              varint dol_len  (Persist.to_bytes blob)
              varint n_pages  (page images, logical order)
              varint n_texts  (pairs: varint preorder, len-prefixed text;
                               only non-empty texts are stored)
              u8 has_registry
              if has_registry:
                varint n_subjects
                  per subject: len-prefixed name, u8 kind (0 user/1 group),
                               varint n_groups, varint group-id*
                varint n_modes (len-prefixed names)
    v} *)

module Tree = Dolx_xml.Tree
module Tag = Dolx_xml.Tag
module Disk = Dolx_storage.Disk
module Nok_layout = Dolx_storage.Nok_layout
module Varint = Dolx_util.Varint

let magic = "DOLXDB"

let version = 1

exception Corrupt of string

let add_varint buf x =
  let tmp = Bytes.create Varint.max_len in
  let len = Varint.write tmp 0 x in
  Buffer.add_subbytes buf tmp 0 len

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode

(** Serialize a store.  Buffered pages are flushed first so the images
    reflect all applied updates.  Passing the [subjects]/[modes]
    registries makes the file self-describing: tools can then address
    ACL bits by name. *)
let to_bytes ?subjects ?modes store =
  Dolx_storage.Buffer_pool.flush_all (Secure_store.pool store);
  let tree = Secure_store.tree store in
  let layout = Secure_store.layout store in
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf version;
  add_varint buf (Disk.page_size (Secure_store.disk store));
  let table = Tree.tag_table tree in
  add_varint buf (Tag.count table);
  Tag.iter (fun _ name -> add_string buf name) table;
  let dol_blob = Persist.to_bytes (Secure_store.dol store) in
  add_varint buf (Bytes.length dol_blob);
  Buffer.add_bytes buf dol_blob;
  add_varint buf (Nok_layout.page_count layout);
  for lp = 0 to Nok_layout.page_count layout - 1 do
    Buffer.add_bytes buf (Nok_layout.page_image layout lp)
  done;
  let texts = ref [] in
  let n_texts = ref 0 in
  Tree.iter
    (fun v ->
      let txt = Tree.text tree v in
      if txt <> "" then begin
        texts := (v, txt) :: !texts;
        incr n_texts
      end)
    tree;
  add_varint buf !n_texts;
  List.iter
    (fun (v, txt) ->
      add_varint buf v;
      add_string buf txt)
    (List.rev !texts);
  (match subjects with
  | None -> Buffer.add_uint8 buf 0
  | Some registry ->
      Buffer.add_uint8 buf 1;
      add_varint buf (Subject.count registry);
      for sid = 0 to Subject.count registry - 1 do
        add_string buf (Subject.name registry sid);
        Buffer.add_uint8 buf (match Subject.kind registry sid with
          | Subject.User -> 0
          | Subject.Group -> 1);
        let groups = Subject.direct_groups registry sid in
        add_varint buf (List.length groups);
        List.iter (add_varint buf) groups
      done;
      (match modes with
      | None -> add_varint buf 0
      | Some m ->
          add_varint buf (Mode.count m);
          for i = 0 to Mode.count m - 1 do
            add_string buf (Mode.name m i)
          done));
  Buffer.to_bytes buf

(** Load a store from bytes.  @raise Corrupt on malformed input. *)
let of_bytes ?pool_capacity buf =
  let pos = ref 0 in
  let need n =
    if !pos + n > Bytes.length buf then raise (Corrupt "truncated database file")
  in
  need (String.length magic + 1);
  if Bytes.sub_string buf 0 (String.length magic) <> magic then
    raise (Corrupt "bad magic");
  if Bytes.get_uint8 buf (String.length magic) <> version then
    raise (Corrupt "unsupported version");
  pos := String.length magic + 1;
  let read_varint () =
    need 1;
    let x, p = Varint.read buf !pos in
    pos := p;
    x
  in
  let read_string () =
    let len = read_varint () in
    need len;
    let s = Bytes.sub_string buf !pos len in
    pos := !pos + len;
    s
  in
  let page_size = read_varint () in
  if page_size < 64 then raise (Corrupt "bad page size");
  let n_tags = read_varint () in
  let table = Tag.create () in
  for _ = 1 to n_tags do
    ignore (Tag.intern table (read_string ()))
  done;
  let dol_len = read_varint () in
  need dol_len;
  let dol =
    try Persist.of_bytes (Bytes.sub buf !pos dol_len)
    with Persist.Corrupt m -> raise (Corrupt ("embedded DOL: " ^ m))
  in
  pos := !pos + dol_len;
  let n_pages = read_varint () in
  if n_pages <= 0 then raise (Corrupt "no pages");
  let disk = Disk.create ~page_size () in
  for _ = 1 to n_pages do
    need page_size;
    let img = Bytes.sub buf !pos page_size in
    pos := !pos + page_size;
    let pid = Disk.allocate disk in
    Disk.write disk pid img
  done;
  let layout =
    try Nok_layout.attach disk ~n_pages
    with Invalid_argument m -> raise (Corrupt m)
  in
  (* rebuild structure from the pages, then attach the values *)
  let skeleton =
    let pool = Dolx_storage.Buffer_pool.create ~capacity:8 disk in
    Nok_layout.decode_tree layout pool ~tag_table:table
  in
  if Tree.size skeleton <> Dol.n_nodes dol then
    raise (Corrupt "structure / DOL size mismatch");
  let n_texts = read_varint () in
  let texts = Array.make (Tree.size skeleton) "" in
  for _ = 1 to n_texts do
    let v = read_varint () in
    if v < 0 || v >= Tree.size skeleton then raise (Corrupt "text for unknown node");
    texts.(v) <- read_string ()
  done;
  (* replay the skeleton with texts to get the full tree *)
  let b = Tree.Builder.create ~table () in
  let rec copy v =
    ignore (Tree.Builder.open_element b (Tree.tag_name skeleton v));
    if texts.(v) <> "" then Tree.Builder.add_text b texts.(v);
    Tree.iter_children copy skeleton v;
    Tree.Builder.close_element b
  in
  copy Tree.root;
  let tree = Tree.Builder.finish b in
  let registry =
    if !pos >= Bytes.length buf then None
    else begin
      need 1;
      let flag = Bytes.get_uint8 buf !pos in
      incr pos;
      if flag = 0 then None
      else begin
        let n_subjects = read_varint () in
        let registry = Subject.create () in
        let memberships = ref [] in
        for sid = 0 to n_subjects - 1 do
          let name = read_string () in
          need 1;
          let kind =
            match Bytes.get_uint8 buf !pos with
            | 0 -> Subject.User
            | 1 -> Subject.Group
            | _ -> raise (Corrupt "bad subject kind")
          in
          incr pos;
          ignore (Subject.add registry ~name ~kind);
          let n_groups = read_varint () in
          for _ = 1 to n_groups do
            memberships := (sid, read_varint ()) :: !memberships
          done
        done;
        List.iter
          (fun (child, group) ->
            if group < 0 || group >= n_subjects then
              raise (Corrupt "membership out of range");
            Subject.add_membership registry ~child ~group)
          (List.rev !memberships);
        let n_modes = read_varint () in
        let modes = Mode.create () in
        for _ = 1 to n_modes do
          ignore (Mode.add modes (read_string ()))
        done;
        Some (registry, modes)
      end
    end
  in
  (Secure_store.assemble ?pool_capacity ~tree ~dol ~disk ~layout (), registry)

(** File convenience. *)
let save ?subjects ?modes path store =
  let oc = open_out_bin path in
  output_bytes oc (to_bytes ?subjects ?modes store);
  close_out oc

let load ?pool_capacity path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let buf = Bytes.create n in
  really_input ic buf 0 n;
  close_in ic;
  of_bytes ?pool_capacity buf
