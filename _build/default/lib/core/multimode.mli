(** Multi-mode DOL: one labeling across all (subject, mode) pairs — the
    extension sketched in the paper's §2/§2.1 footnotes ("our approach
    can also exploit correlations among action modes").  Bit of
    (subject s, mode m) = [m * n_subjects + s]. *)

type layout = { n_subjects : int; n_modes : int }

(** Column index of a (subject, mode) pair.
    @raise Invalid_argument out of range. *)
val bit : layout -> subject:int -> mode:int -> int

(** Combine one labeling per mode (same document, same subject universe)
    into a single multi-mode DOL.
    @raise Invalid_argument when the labelings disagree. *)
val combine : Dolx_policy.Labeling.t array -> layout * Dol.t

(** Accessibility of node [v] for [subject] under [mode]. *)
val accessible : layout * Dol.t -> subject:int -> mode:int -> int -> bool

(** Space of the alternative design: one independent DOL per mode. *)
val per_mode_storage_bytes : Dolx_policy.Labeling.t array -> int

val combined_storage_bytes : layout * Dol.t -> int
