(** Multi-mode DOL: one labeling across all (subject, mode) pairs.

    The paper restricts its presentation to a single action mode but
    notes that "the approach in this paper can be easily applied for
    multiple action modes in a similar way for multiple users" and that
    "there may also exist correlations among action modes … we believe
    our approach can also exploit correlations among action modes"
    (§2, §2.1).  This module implements that extension: the bit-vector
    columns are (subject, mode) pairs, so one embedded code per
    transition covers every mode, and correlated modes (e.g. a user who
    can delete can almost always write) share codebook entries instead
    of multiplying them.

    Bit layout: bit of (subject s, mode m) = m * n_subjects + s. *)

module Bitset = Dolx_util.Bitset
module Labeling = Dolx_policy.Labeling
module Acl = Dolx_policy.Acl

type layout = { n_subjects : int; n_modes : int }

let bit layout ~subject ~mode =
  if subject < 0 || subject >= layout.n_subjects then invalid_arg "Multimode: subject";
  if mode < 0 || mode >= layout.n_modes then invalid_arg "Multimode: mode";
  (mode * layout.n_subjects) + subject

(** Combine one labeling per mode (all over the same subject universe and
    document) into a single multi-mode DOL. *)
let combine (labelings : Labeling.t array) =
  let n_modes = Array.length labelings in
  if n_modes = 0 then invalid_arg "Multimode.combine: no modes";
  let n = Labeling.size labelings.(0) in
  let n_subjects = Acl.width (Labeling.store labelings.(0)) in
  Array.iter
    (fun lab ->
      if Labeling.size lab <> n || Acl.width (Labeling.store lab) <> n_subjects then
        invalid_arg "Multimode.combine: labelings disagree on document or subjects")
    labelings;
  let layout = { n_subjects; n_modes } in
  let width = n_subjects * n_modes in
  let builder = Dol.Streaming.create ~width in
  (* Hash-cons the combined ACLs by their per-mode acl-id tuples so the
     bitset concatenation work is done once per distinct combination. *)
  let cache = Hashtbl.create 256 in
  for v = 0 to n - 1 do
    let key = Array.map (fun lab -> Labeling.acl_id lab v) labelings in
    let bits =
      match Hashtbl.find_opt cache key with
      | Some bits -> bits
      | None ->
          let bits = Bitset.create width in
          Array.iteri
            (fun m lab ->
              let src = Labeling.acl lab v in
              Bitset.iter_set (fun s -> Bitset.set bits ((m * n_subjects) + s) true) src)
            labelings;
          Hashtbl.replace cache key bits;
          bits
    in
    ignore (Dol.Streaming.push builder bits)
  done;
  (layout, Dol.Streaming.finish builder)

(** Accessibility of node [v] for [subject] under [mode]. *)
let accessible (layout, dol) ~subject ~mode v =
  Dol.accessible dol ~subject:(bit layout ~subject ~mode) v

(** Space of the alternative design: one independent DOL per mode. *)
let per_mode_storage_bytes labelings =
  Array.fold_left
    (fun acc lab -> acc + Dol.storage_bytes (Dol.of_labeling lab))
    0 labelings

(** Space of the combined representation. *)
let combined_storage_bytes (_, dol) = Dol.storage_bytes dol
