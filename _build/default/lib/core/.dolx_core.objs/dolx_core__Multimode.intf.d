lib/core/multimode.mli: Dol Dolx_policy
