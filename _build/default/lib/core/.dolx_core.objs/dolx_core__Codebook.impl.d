lib/core/codebook.ml: Array Dolx_util Hashtbl
