lib/core/db_file.mli: Bytes Dolx_policy Dolx_util Secure_store
