lib/core/db_file.mli: Bytes Dolx_policy Secure_store
