lib/core/persist.mli: Buffer Bytes Dol
