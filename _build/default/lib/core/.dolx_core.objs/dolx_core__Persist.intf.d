lib/core/persist.mli: Bytes Dol
