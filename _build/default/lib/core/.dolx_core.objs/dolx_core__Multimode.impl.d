lib/core/multimode.ml: Array Dol Dolx_policy Dolx_util Hashtbl
