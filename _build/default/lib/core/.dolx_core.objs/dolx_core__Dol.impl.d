lib/core/dol.ml: Array Codebook Dolx_policy Dolx_util Dolx_xml Fmt Printf
