lib/core/update.mli: Bytes Dol Dolx_policy Dolx_util Dolx_xml Secure_store
