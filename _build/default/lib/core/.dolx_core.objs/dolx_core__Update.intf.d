lib/core/update.mli: Dol Dolx_policy Dolx_util Dolx_xml Secure_store
