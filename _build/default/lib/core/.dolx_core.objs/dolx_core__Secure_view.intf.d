lib/core/secure_view.mli: Dol Dolx_xml
