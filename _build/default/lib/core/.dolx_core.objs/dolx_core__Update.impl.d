lib/core/update.ml: Array Codebook Db_file Dol Dolx_policy Dolx_storage Dolx_util Dolx_xml List Secure_store
