lib/core/stream_filter.ml: Array Buffer Codebook Dol Dolx_xml Secure_view String
