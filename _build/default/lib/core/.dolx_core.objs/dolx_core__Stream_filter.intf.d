lib/core/stream_filter.mli: Dol Dolx_xml Secure_view
