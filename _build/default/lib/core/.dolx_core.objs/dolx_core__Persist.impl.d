lib/core/persist.ml: Array Buffer Bytes Codebook Dol Dolx_util Int32 List
