lib/core/secure_store.mli: Codebook Dol Dolx_storage Dolx_xml Format
