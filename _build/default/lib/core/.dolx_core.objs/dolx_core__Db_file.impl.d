lib/core/db_file.ml: Array Buffer Bytes Codebook Dol Dolx_policy Dolx_storage Dolx_util Dolx_xml Fun Int32 List Persist Printf Secure_store String
