lib/core/db_file.ml: Array Buffer Bytes Dol Dolx_policy Dolx_storage Dolx_util Dolx_xml List Persist Secure_store String
