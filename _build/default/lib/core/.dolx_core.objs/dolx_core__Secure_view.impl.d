lib/core/secure_view.ml: Dol Dolx_xml List
