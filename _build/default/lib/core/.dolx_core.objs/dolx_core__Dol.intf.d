lib/core/dol.mli: Codebook Dolx_policy Dolx_util Format
