lib/core/codebook.mli: Dolx_util
