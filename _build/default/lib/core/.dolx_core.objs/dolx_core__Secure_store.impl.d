lib/core/secure_store.ml: Array Codebook Dol Dolx_storage Dolx_xml Fmt List
