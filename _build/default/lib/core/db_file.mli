(** Single-file database format: page images + node values + tag names +
    DOL in one file — compile a labeled document once, open or ship it
    without the source XML or the policy.  Optionally self-describing:
    the subject registry and mode names can be embedded so ACL bits are
    addressable by name.  See docs/FORMAT.md. *)

exception Corrupt of string

(** Serialize a store (buffered pages are flushed first). *)
val to_bytes :
  ?subjects:Dolx_policy.Subject.registry -> ?modes:Dolx_policy.Mode.registry ->
  Secure_store.t -> Bytes.t

(** Load a store; also returns the embedded registries when present.
    @raise Corrupt on malformed input. *)
val of_bytes :
  ?pool_capacity:int -> Bytes.t ->
  Secure_store.t * (Dolx_policy.Subject.registry * Dolx_policy.Mode.registry) option

val save :
  ?subjects:Dolx_policy.Subject.registry -> ?modes:Dolx_policy.Mode.registry ->
  string -> Secure_store.t -> unit

(** @raise Corrupt on malformed input; [Sys_error] on I/O failure. *)
val load :
  ?pool_capacity:int -> string ->
  Secure_store.t * (Dolx_policy.Subject.registry * Dolx_policy.Mode.registry) option
