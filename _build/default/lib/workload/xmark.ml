(** An XMark-like auction-site document generator.

    The paper evaluates on XMark instances ("We generated synthetic
    access controls on XMark benchmarks", §5); the original generator is
    a C program, so we reimplement the element hierarchy here.  The tag
    vocabulary and nesting follow the XMark auction DTD closely enough
    that the paper's six benchmark queries (Table 1) traverse the same
    paths: regional items with [location]/[name]/[quantity] children,
    [category/description/text/bold], recursive [parlist]/[listitem]
    description bodies containing [keyword] and [emph], people, and open/
    closed auctions.

    Everything is driven by an explicit PRNG seed; [generate ~seed
    ~items ()] is fully deterministic. *)

module Tree = Dolx_xml.Tree
module Prng = Dolx_util.Prng

type config = {
  seed : int;
  items : int;            (* total items across the six regions *)
  max_parlist_depth : int;
  words_per_text : int;
}

let default_config = { seed = 42; items = 400; max_parlist_depth = 3; words_per_text = 6 }

let regions_split =
  [ ("africa", 0.06); ("asia", 0.22); ("australia", 0.11);
    ("europe", 0.30); ("namerica", 0.25); ("samerica", 0.06) ]

let wordlist =
  [| "duteous"; "amorous"; "bestir"; "cankers"; "furnish"; "mingled";
     "sorely"; "gilded"; "tranquil"; "vantage"; "willows"; "grafted";
     "dungeon"; "molten"; "merchant"; "obloquy"; "plumed"; "sundry";
     "vassal"; "wherefore" |]

let word rng = Prng.choose rng wordlist

let words rng n =
  String.concat " " (List.init (max 1 n) (fun _ -> word rng))

(* The text container of descriptions: inline bold / keyword / emph
   elements mixed with plain words. *)
let gen_text b rng cfg =
  ignore (Tree.Builder.open_element b "text");
  Tree.Builder.add_text b (words rng cfg.words_per_text);
  let inline = [| "bold"; "keyword"; "emph" |] in
  let n = Prng.int_in rng 0 3 in
  for _ = 1 to n do
    Tree.Builder.leaf b (Prng.choose rng inline) (word rng) |> ignore
  done;
  Tree.Builder.close_element b

let rec gen_parlist b rng cfg depth =
  ignore (Tree.Builder.open_element b "parlist");
  let n = Prng.int_in rng 1 3 in
  for _ = 1 to n do
    ignore (Tree.Builder.open_element b "listitem");
    if depth < cfg.max_parlist_depth && Prng.bool rng ~p:0.3 then
      gen_parlist b rng cfg (depth + 1)
    else gen_text b rng cfg;
    Tree.Builder.close_element b
  done;
  Tree.Builder.close_element b

let gen_description b rng cfg =
  ignore (Tree.Builder.open_element b "description");
  if Prng.bool rng ~p:0.4 then gen_parlist b rng cfg 1 else gen_text b rng cfg;
  Tree.Builder.close_element b

let gen_item b rng cfg ~id ~n_categories =
  ignore (Tree.Builder.open_element b "item");
  ignore (Tree.Builder.leaf b "location" (word rng));
  ignore (Tree.Builder.leaf b "quantity" (string_of_int (Prng.int_in rng 1 5)));
  ignore (Tree.Builder.leaf b "name" (Printf.sprintf "item%d" id));
  ignore (Tree.Builder.leaf b "payment" (word rng));
  gen_description b rng cfg;
  ignore (Tree.Builder.open_element b "shipping");
  Tree.Builder.add_text b (word rng);
  Tree.Builder.close_element b;
  let n = Prng.int_in rng 1 2 in
  for _ = 1 to n do
    ignore
      (Tree.Builder.leaf b "incategory"
         (Printf.sprintf "category%d" (Prng.int rng (max 1 n_categories))))
  done;
  if Prng.bool rng ~p:0.3 then begin
    ignore (Tree.Builder.open_element b "mailbox");
    let mails = Prng.int_in rng 1 2 in
    for _ = 1 to mails do
      ignore (Tree.Builder.open_element b "mail");
      ignore (Tree.Builder.leaf b "from" (word rng));
      ignore (Tree.Builder.leaf b "to" (word rng));
      ignore (Tree.Builder.leaf b "date" "01/01/2004");
      gen_text b rng cfg;
      Tree.Builder.close_element b
    done;
    Tree.Builder.close_element b
  end;
  Tree.Builder.close_element b

let gen_person b rng cfg ~id =
  ignore cfg;
  ignore (Tree.Builder.open_element b "person");
  ignore (Tree.Builder.leaf b "name" (Printf.sprintf "person%d" id));
  ignore (Tree.Builder.leaf b "emailaddress" (Printf.sprintf "mailto:p%d@example.org" id));
  if Prng.bool rng ~p:0.5 then
    ignore (Tree.Builder.leaf b "phone" (string_of_int (Prng.int rng 1000000)));
  if Prng.bool rng ~p:0.4 then begin
    ignore (Tree.Builder.open_element b "address");
    ignore (Tree.Builder.leaf b "street" (word rng));
    ignore (Tree.Builder.leaf b "city" (word rng));
    ignore (Tree.Builder.leaf b "country" (word rng));
    ignore (Tree.Builder.leaf b "zipcode" (string_of_int (Prng.int rng 100000)));
    Tree.Builder.close_element b
  end;
  if Prng.bool rng ~p:0.3 then
    ignore (Tree.Builder.leaf b "creditcard" (string_of_int (Prng.int rng 10000)));
  ignore (Tree.Builder.open_element b "profile");
  let interests = Prng.int_in rng 0 3 in
  for _ = 1 to interests do
    ignore (Tree.Builder.leaf b "interest" (word rng))
  done;
  ignore (Tree.Builder.leaf b "business" (if Prng.bool rng ~p:0.5 then "Yes" else "No"));
  if Prng.bool rng ~p:0.6 then
    ignore (Tree.Builder.leaf b "age" (string_of_int (Prng.int_in rng 18 80)));
  Tree.Builder.close_element b;
  Tree.Builder.close_element b

let gen_open_auction b rng cfg ~n_items ~n_persons ~id =
  ignore (Tree.Builder.open_element b "open_auction");
  ignore (Tree.Builder.leaf b "initial" (string_of_int (Prng.int_in rng 1 100)));
  if Prng.bool rng ~p:0.4 then
    ignore (Tree.Builder.leaf b "reserve" (string_of_int (Prng.int_in rng 50 500)));
  let bidders = Prng.int_in rng 0 3 in
  for _ = 1 to bidders do
    ignore (Tree.Builder.open_element b "bidder");
    ignore (Tree.Builder.leaf b "date" "02/02/2004");
    ignore (Tree.Builder.leaf b "personref" (Printf.sprintf "person%d" (Prng.int rng (max 1 n_persons))));
    ignore (Tree.Builder.leaf b "increase" (string_of_int (Prng.int_in rng 1 50)));
    Tree.Builder.close_element b
  done;
  ignore (Tree.Builder.leaf b "current" (string_of_int (Prng.int_in rng 1 1000)));
  ignore (Tree.Builder.leaf b "itemref" (Printf.sprintf "item%d" (Prng.int rng (max 1 n_items))));
  ignore (Tree.Builder.leaf b "seller" (Printf.sprintf "person%d" (Prng.int rng (max 1 n_persons))));
  ignore (Tree.Builder.open_element b "annotation");
  ignore (Tree.Builder.leaf b "author" (Printf.sprintf "person%d" (Prng.int rng (max 1 n_persons))));
  gen_description b rng cfg;
  ignore (Tree.Builder.leaf b "happiness" (string_of_int (Prng.int_in rng 1 10)));
  Tree.Builder.close_element b;
  ignore (Tree.Builder.leaf b "quantity" (string_of_int (Prng.int_in rng 1 5)));
  ignore (Tree.Builder.leaf b "type" (if Prng.bool rng ~p:0.5 then "Regular" else "Featured"));
  ignore (Tree.Builder.open_element b "interval");
  ignore (Tree.Builder.leaf b "start" "01/01/2004");
  ignore (Tree.Builder.leaf b "end" "12/31/2004");
  Tree.Builder.close_element b;
  ignore id;
  Tree.Builder.close_element b

let gen_closed_auction b rng cfg ~n_items ~n_persons =
  ignore (Tree.Builder.open_element b "closed_auction");
  ignore (Tree.Builder.leaf b "seller" (Printf.sprintf "person%d" (Prng.int rng (max 1 n_persons))));
  ignore (Tree.Builder.leaf b "buyer" (Printf.sprintf "person%d" (Prng.int rng (max 1 n_persons))));
  ignore (Tree.Builder.leaf b "itemref" (Printf.sprintf "item%d" (Prng.int rng (max 1 n_items))));
  ignore (Tree.Builder.leaf b "price" (string_of_int (Prng.int_in rng 1 1000)));
  ignore (Tree.Builder.leaf b "date" "03/03/2004");
  ignore (Tree.Builder.leaf b "quantity" (string_of_int (Prng.int_in rng 1 5)));
  ignore (Tree.Builder.leaf b "type" (if Prng.bool rng ~p:0.5 then "Regular" else "Featured"));
  ignore (Tree.Builder.open_element b "annotation");
  ignore (Tree.Builder.leaf b "author" (Printf.sprintf "person%d" (Prng.int rng (max 1 n_persons))));
  gen_description b rng cfg;
  ignore (Tree.Builder.leaf b "happiness" (string_of_int (Prng.int_in rng 1 10)));
  Tree.Builder.close_element b;
  Tree.Builder.close_element b

(** Generate a document.  Derived entity counts follow XMark's rough
    proportions: one person per item, one open auction per two items, one
    closed auction per four, one category per twenty. *)
let generate ?(config = default_config) () =
  let rng = Prng.create config.seed in
  let b = Tree.Builder.create () in
  let n_items = max 6 config.items in
  let n_persons = n_items in
  let n_open = max 1 (n_items / 2) in
  let n_closed = max 1 (n_items / 4) in
  let n_categories = max 1 (n_items / 20) in
  ignore (Tree.Builder.open_element b "site");
  (* regions *)
  ignore (Tree.Builder.open_element b "regions");
  let item_id = ref 0 in
  List.iter
    (fun (region, share) ->
      ignore (Tree.Builder.open_element b region);
      let count = max 1 (int_of_float (float_of_int n_items *. share)) in
      for _ = 1 to count do
        gen_item b rng config ~id:!item_id ~n_categories;
        incr item_id
      done;
      Tree.Builder.close_element b)
    regions_split;
  Tree.Builder.close_element b;
  (* categories *)
  ignore (Tree.Builder.open_element b "categories");
  for _ = 1 to n_categories do
    ignore (Tree.Builder.open_element b "category");
    ignore (Tree.Builder.leaf b "name" (word rng));
    gen_description b rng config;
    Tree.Builder.close_element b
  done;
  Tree.Builder.close_element b;
  (* catgraph *)
  ignore (Tree.Builder.open_element b "catgraph");
  for _ = 1 to n_categories do
    ignore (Tree.Builder.open_element b "edge");
    ignore (Tree.Builder.leaf b "from" (Printf.sprintf "category%d" (Prng.int rng n_categories)));
    ignore (Tree.Builder.leaf b "to" (Printf.sprintf "category%d" (Prng.int rng n_categories)));
    Tree.Builder.close_element b
  done;
  Tree.Builder.close_element b;
  (* people *)
  ignore (Tree.Builder.open_element b "people");
  for id = 0 to n_persons - 1 do
    gen_person b rng config ~id
  done;
  Tree.Builder.close_element b;
  (* open auctions *)
  ignore (Tree.Builder.open_element b "open_auctions");
  for id = 0 to n_open - 1 do
    gen_open_auction b rng config ~n_items ~n_persons ~id
  done;
  Tree.Builder.close_element b;
  (* closed auctions *)
  ignore (Tree.Builder.open_element b "closed_auctions");
  for _ = 1 to n_closed do
    gen_closed_auction b rng config ~n_items ~n_persons
  done;
  Tree.Builder.close_element b;
  Tree.Builder.close_element b;
  Tree.Builder.finish b

(** Generate a document with approximately [n] nodes (within ~15%). *)
let generate_nodes ?(seed = 42) n =
  (* Calibrate items per node empirically: one item contributes ~45 nodes
     of document across regions/people/auctions. *)
  let items = max 6 (n / 45) in
  generate ~config:{ default_config with seed; items } ()

(** The paper's six benchmark queries (Table 1).  Q3 is printed in the
    paper as category/name[description/text/bold]; since [name] has no
    element content in XMark that query is empty on any XMark instance,
    and §5.2 describes Q3 as "a single path", so we use the single-path
    reading — see EXPERIMENTS.md. *)
let queries =
  [
    ("Q1", "/site/regions/africa/item[location][name][quantity]");
    ("Q2", "/site/categories/category[name]/description/text/bold");
    ("Q3", "/site/categories/category/description/text/bold");
    ("Q4", "//parlist//parlist");
    ("Q5", "//listitem//keyword");
    ("Q6", "//item//emph");
  ]
