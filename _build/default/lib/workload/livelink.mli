(** Generative stand-in for the paper's proprietary OpenText LiveLink
    dataset (§5): a corporate folder tree, departments owning workspace
    subtrees, users inheriting department rights plus Zipf-concentrated
    collaboration grants, personal exceptions and shared-with-me sibling
    runs, and ten progressively narrower action modes.  Reproduces the
    properties the paper measures: inter-subject correlation (sublinear
    codebook, Fig. 5) and structural locality (sparse transitions,
    Fig. 6). *)

type config = {
  seed : int;
  target_nodes : int;
  n_departments : int;
  users_per_department : int;
  n_modes : int;
  max_depth : int;  (** the real system's maximum depth was 19 *)
}

val default_config : config

type t = {
  config : config;
  tree : Dolx_xml.Tree.t;
  subjects : Dolx_policy.Subject.registry;
  modes : Dolx_policy.Mode.registry;
  labelings : Dolx_policy.Labeling.t array;  (** indexed by mode *)
  users : Dolx_policy.Subject.id array;
  groups : Dolx_policy.Subject.id array;
  dept_roots : Dolx_xml.Tree.node array;
      (** folder subtree owned by each department *)
}

val generate : ?config:config -> unit -> t

(** All subject ids (users and groups) — the population sampled in
    Figs. 5(a)/6(a). *)
val all_subjects : t -> Dolx_policy.Subject.id array
