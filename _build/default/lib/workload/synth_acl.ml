(** Synthetic access-control generator (paper §5).

    "We generated synthetic access controls … by randomly choosing some
    nodes from the document as seeds, and then labeling these seeds as
    accessible or non-accessible.  We simulate horizontal structural
    locality by randomly setting the seeds' direct siblings with the same
    accessibility, provided that the siblings are not themselves seeds.
    Then, we simulate vertical structural locality by propagating
    accessibilities of labeled nodes to their descendants using the
    Most-Specific-Override policy … We always choose the document root as
    seed to ensure all nodes be labeled.

    The propagation ratio determines [the] percentage of nodes that are
    seeds while the accessibility ratio determines the percentage of
    seeds that are accessible." *)

module Tree = Dolx_xml.Tree
module Prng = Dolx_util.Prng
module Labeling = Dolx_policy.Labeling
module Acl = Dolx_policy.Acl
module Bitset = Dolx_util.Bitset

type params = {
  propagation_ratio : float;  (* fraction of nodes chosen as seeds *)
  accessibility_ratio : float; (* fraction of seeds labeled accessible *)
  sibling_copy_p : float;     (* horizontal-locality strength *)
}

let default = { propagation_ratio = 0.1; accessibility_ratio = 0.5; sibling_copy_p = 0.5 }

(** Single-subject accessibility as a bool array indexed by preorder. *)
let generate_bool tree ~params rng =
  let n = Tree.size tree in
  (* 0 = unlabeled, 1 = labeled accessible, 2 = labeled inaccessible *)
  let state = Array.make n 0 in
  let label v acc = state.(v) <- (if acc then 1 else 2) in
  (* seeds *)
  let seeds = ref [] in
  for v = 0 to n - 1 do
    if v = Tree.root || Prng.bool rng ~p:params.propagation_ratio then begin
      label v (Prng.bool rng ~p:params.accessibility_ratio);
      seeds := v :: !seeds
    end
  done;
  (* horizontal locality: copy each seed's accessibility onto its direct
     unlabeled siblings *)
  List.iter
    (fun v ->
      let acc = state.(v) = 1 in
      let p = Tree.parent tree v in
      if p <> Tree.nil then
        Tree.iter_children
          (fun sib ->
            if sib <> v && state.(sib) = 0 && Prng.bool rng ~p:params.sibling_copy_p
            then label sib acc)
          tree p)
    !seeds;
  (* vertical locality: Most-Specific-Override from the nearest labeled
     ancestor *)
  let out = Array.make n false in
  let rec go v inherited =
    let here = if state.(v) = 0 then inherited else state.(v) = 1 in
    out.(v) <- here;
    Tree.iter_children (fun c -> go c here) tree v
  in
  go Tree.root false;
  out

(** Single-subject labeling. *)
let generate tree ?(params = default) ~seed () =
  let rng = Prng.create seed in
  Labeling.of_bool_array (generate_bool tree ~params rng)

(** Multi-subject labeling: [n_subjects] independent draws, optionally
    with correlation — subject [i] copies subject [i mod n_archetypes]'s
    labels and then perturbs a [perturb] fraction of its seeds.  With
    [n_archetypes = n_subjects] all subjects are independent (the paper's
    worst case, §2.1). *)
let generate_multi tree ?(params = default) ~seed ~n_subjects
    ?(n_archetypes = 0) ?(perturb = 0.05) () =
  let n = Tree.size tree in
  let n_archetypes = if n_archetypes <= 0 then n_subjects else n_archetypes in
  let rng = Prng.create seed in
  let archetypes =
    Array.init (min n_archetypes n_subjects) (fun _ ->
        generate_bool tree ~params (Prng.split rng))
  in
  let per_subject =
    Array.init n_subjects (fun i ->
        let base = archetypes.(i mod Array.length archetypes) in
        if i < Array.length archetypes then base
        else begin
          (* correlated copy: flip whole subtrees for a small fraction of
             nodes, preserving structural locality *)
          let copy = Array.copy base in
          let rng = Prng.split rng in
          let flips = int_of_float (float_of_int n *. perturb /. 10.0) in
          for _ = 1 to max 1 flips do
            let v = Prng.int rng n in
            let last = Tree.subtree_end tree v in
            let acc = Prng.bool rng ~p:params.accessibility_ratio in
            for u = v to last do
              copy.(u) <- acc
            done
          done;
          copy
        end)
  in
  let store = Acl.create ~width:n_subjects in
  let node_acl =
    Array.init n (fun v ->
        let bits = Bitset.create n_subjects in
        for s = 0 to n_subjects - 1 do
          if per_subject.(s).(v) then Bitset.set bits s true
        done;
        Acl.intern store bits)
  in
  Labeling.create ~store ~node_acl
