(** A generative stand-in for the paper's multi-user Unix file system
    dataset ("the access control data from a multiuser Unix file system
    at the University of Waterloo.  This system has 182 users and 65 user
    groups, and includes more than 1.3 million files/directories", §5).

    Permission-bit semantics: a subject can read a file iff it has the
    r-bit on the file under owner/group/other resolution *and* the x-bit
    on every ancestor directory.  Group subjects are modeled as processes
    holding only that group.  The correlations the paper measures arise
    from group membership and from the small set of distinct
    (owner, group, mode) combinations in real trees. *)

module Tree = Dolx_xml.Tree
module Prng = Dolx_util.Prng
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Acl = Dolx_policy.Acl
module Labeling = Dolx_policy.Labeling
module Bitset = Dolx_util.Bitset

type config = {
  seed : int;
  target_nodes : int;
  n_users : int;
  n_groups : int;
}

let default_config = { seed = 11; target_nodes = 20_000; n_users = 182; n_groups = 65 }

type perm = { owner : int; group : int; mode : int (* 9-bit rwxrwxrwx *) }

type t = {
  config : config;
  tree : Tree.t;
  subjects : Subject.registry;
  modes : Mode.registry;
  read_labeling : Labeling.t;
  write_labeling : Labeling.t;
  users : Subject.id array;
  groups : Subject.id array;
  perms : perm array; (* per preorder *)
}

let common_file_modes = [| 0o644; 0o640; 0o600; 0o664; 0o444; 0o660 |]

let common_dir_modes = [| 0o755; 0o750; 0o700; 0o775; 0o770 |]

(* Grow a directory subtree of exactly [budget] nodes; every node gets a
   permission record drawn from the area's defaults with small
   perturbation.  Returns the number of nodes created. *)
let rec grow b rng perms ~budget ~depth ~owner ~group ~dir_mode ~file_mode =
  let made = ref 0 in
  while !made < budget do
    let remaining = budget - !made in
    let is_dir = depth <= 12 && remaining > 2 && Prng.bool rng ~p:0.35 in
    let v = Tree.Builder.open_element b (if is_dir then "dir" else "file") in
    let mode =
      if Prng.bool rng ~p:0.9 then if is_dir then dir_mode else file_mode
      else Prng.choose rng (if is_dir then common_dir_modes else common_file_modes)
    in
    perms := (v, { owner; group; mode }) :: !perms;
    incr made;
    if is_dir then begin
      let share = Prng.int_in rng 1 (max 1 ((remaining - 1) * 2 / 3)) in
      made :=
        !made
        + grow b rng perms ~budget:(min (budget - !made) share) ~depth:(depth + 1)
            ~owner ~group ~dir_mode ~file_mode
    end;
    Tree.Builder.close_element b
  done;
  !made

let generate ?(config = default_config) () =
  let rng = Prng.create config.seed in
  let subjects = Subject.create () in
  let groups =
    Array.init config.n_groups (fun g -> Subject.add_group subjects (Printf.sprintf "grp%d" g))
  in
  let users =
    Array.init config.n_users (fun u ->
        let id = Subject.add_user subjects (Printf.sprintf "user%d" u) in
        (* primary group + a few secondary memberships *)
        let primary = u mod config.n_groups in
        Subject.add_membership subjects ~child:id ~group:groups.(primary);
        let extra = Prng.int_in rng 0 2 in
        for _ = 1 to extra do
          Subject.add_membership subjects ~child:id
            ~group:groups.(Prng.int rng config.n_groups)
        done;
        id)
  in
  (* membership bitsets per group, over the full subject universe *)
  let width = Subject.count subjects in
  let group_members = Array.make config.n_groups (Bitset.create width) in
  for g = 0 to config.n_groups - 1 do
    let bits = Bitset.create width in
    Bitset.set bits groups.(g) true;
    Array.iter
      (fun u -> if List.mem groups.(g) (Subject.direct_groups subjects u) then Bitset.set bits u true)
      users;
    group_members.(g) <- bits
  done;
  (* build the tree: /home/<user>..., /projects/<group>..., /usr (world) *)
  let b = Tree.Builder.create () in
  let perms = ref [] in
  let root = Tree.Builder.open_element b "root" in
  perms := (root, { owner = -1; group = -1; mode = 0o755 }) :: !perms;
  let root_area name mode =
    let v = Tree.Builder.open_element b name in
    perms := (v, { owner = -1; group = -1; mode }) :: !perms;
    v
  in
  let home_budget = config.target_nodes / 2 in
  let proj_budget = config.target_nodes / 3 in
  let usr_budget = config.target_nodes / 6 in
  ignore (root_area "home" 0o755);
  let per_user = max 3 (home_budget / config.n_users) in
  Array.iteri
    (fun i _u ->
      let v = Tree.Builder.open_element b "dir" in
      let mode = if Prng.bool rng ~p:0.7 then 0o750 else 0o755 in
      let group = i mod config.n_groups in
      perms := (v, { owner = i; group; mode }) :: !perms;
      ignore
        (grow b rng perms ~budget:(per_user - 1) ~depth:3 ~owner:i ~group
           ~dir_mode:(if mode = 0o750 then 0o750 else 0o755)
           ~file_mode:(if mode = 0o750 then 0o640 else 0o644));
      Tree.Builder.close_element b)
    users;
  Tree.Builder.close_element b;
  ignore (root_area "projects" 0o755);
  let per_group = max 3 (proj_budget / config.n_groups) in
  Array.iteri
    (fun g _gid ->
      let v = Tree.Builder.open_element b "dir" in
      let owner = Prng.int rng config.n_users in
      let restricted = Prng.bool rng ~p:0.6 in
      perms := (v, { owner; group = g; mode = (if restricted then 0o770 else 0o775) }) :: !perms;
      ignore
        (grow b rng perms ~budget:(per_group - 1) ~depth:3 ~owner ~group:g
           ~dir_mode:(if restricted then 0o770 else 0o775)
           ~file_mode:(if restricted then 0o660 else 0o664));
      Tree.Builder.close_element b)
    groups;
  Tree.Builder.close_element b;
  ignore (root_area "usr" 0o755);
  ignore
    (grow b rng perms ~budget:usr_budget ~depth:2 ~owner:(-1) ~group:(-1)
       ~dir_mode:0o755 ~file_mode:0o644);
  Tree.Builder.close_element b;
  Tree.Builder.close_element b;
  let tree = Tree.Builder.finish b in
  let n = Tree.size tree in
  let perm_arr = Array.make n { owner = -1; group = -1; mode = 0o755 } in
  List.iter (fun (v, p) -> perm_arr.(v) <- p) !perms;
  (* Resolve permission bits into subject bitsets; memoized per distinct
     (owner, group, mode, bit-class). *)
  let memo = Hashtbl.create 256 in
  let bits_for p ~shift =
    (* shift 2 = r, 1 = w, 0 = x within each rwx triple *)
    let key = (p.owner, p.group, p.mode, shift) in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
        let owner_ok = p.mode land (1 lsl (6 + shift)) <> 0 in
        let group_ok = p.mode land (1 lsl (3 + shift)) <> 0 in
        let other_ok = p.mode land (1 lsl shift) <> 0 in
        let bits = Bitset.create width in
        (* users *)
        Array.iteri
          (fun i uid ->
            let in_group =
              p.group >= 0 && Bitset.get group_members.(p.group) uid
            in
            let ok =
              if p.owner = i then owner_ok
              else if in_group then group_ok
              else other_ok
            in
            if ok then Bitset.set bits uid true)
          users;
        (* group subjects: a process holding exactly that group *)
        Array.iteri
          (fun g gid ->
            let ok = if p.group = g then group_ok else other_ok in
            if ok then Bitset.set bits gid true)
          groups;
        Hashtbl.replace memo key bits;
        bits
  in
  let store_r = Acl.create ~width in
  let store_w = Acl.create ~width in
  let node_r = Array.make n 0 in
  let node_w = Array.make n 0 in
  let rec go v reach =
    let p = perm_arr.(v) in
    node_r.(v) <- Acl.intern store_r (Bitset.inter reach (bits_for p ~shift:2));
    node_w.(v) <- Acl.intern store_w (Bitset.inter reach (bits_for p ~shift:1));
    if not (Tree.is_leaf tree v) then begin
      let reach' = Bitset.inter reach (bits_for p ~shift:0) in
      Tree.iter_children (fun c -> go c reach') tree v
    end
  in
  go Tree.root (Bitset.full width);
  let modes = Mode.create () in
  ignore (Mode.add modes "read");
  ignore (Mode.add modes "write");
  {
    config;
    tree;
    subjects;
    modes;
    read_labeling = Labeling.create ~store:store_r ~node_acl:node_r;
    write_labeling = Labeling.create ~store:store_w ~node_acl:node_w;
    users;
    groups;
    perms = perm_arr;
  }

let all_subjects t = Array.init (Subject.count t.subjects) Fun.id
