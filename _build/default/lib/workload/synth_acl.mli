(** Synthetic access-control generator — the paper's §5 recipe: random
    seed nodes labeled accessible/inaccessible, horizontal locality by
    sibling copying, vertical locality by Most-Specific-Override
    propagation, with the document root always a seed. *)

type params = {
  propagation_ratio : float;   (** fraction of nodes chosen as seeds *)
  accessibility_ratio : float; (** fraction of seeds labeled accessible *)
  sibling_copy_p : float;      (** horizontal-locality strength *)
}

(** 10% seeds, 50% accessible, sibling copy 0.5. *)
val default : params

(** Single-subject accessibility vector, indexed by preorder. *)
val generate_bool : Dolx_xml.Tree.t -> params:params -> Dolx_util.Prng.t -> bool array

(** Single-subject labeling. *)
val generate :
  Dolx_xml.Tree.t -> ?params:params -> seed:int -> unit -> Dolx_policy.Labeling.t

(** Multi-subject labeling.  Subjects are drawn from [n_archetypes]
    independent profiles (default: all independent — the paper's §2.1
    worst case); non-archetype subjects copy a profile and perturb a
    [perturb] fraction of subtrees, giving the correlation real systems
    show. *)
val generate_multi :
  Dolx_xml.Tree.t -> ?params:params -> seed:int -> n_subjects:int ->
  ?n_archetypes:int -> ?perturb:float -> unit -> Dolx_policy.Labeling.t
