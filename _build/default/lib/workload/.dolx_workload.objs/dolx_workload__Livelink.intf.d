lib/workload/livelink.mli: Dolx_policy Dolx_xml
