lib/workload/synth_acl.mli: Dolx_policy Dolx_util Dolx_xml
