lib/workload/unixfs.ml: Array Dolx_policy Dolx_util Dolx_xml Fun Hashtbl List Printf
