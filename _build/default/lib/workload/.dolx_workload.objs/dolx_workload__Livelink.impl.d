lib/workload/livelink.ml: Array Dolx_policy Dolx_util Dolx_xml Fun List Printf
