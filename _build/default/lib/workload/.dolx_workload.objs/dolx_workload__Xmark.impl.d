lib/workload/xmark.ml: Dolx_util Dolx_xml List Printf String
