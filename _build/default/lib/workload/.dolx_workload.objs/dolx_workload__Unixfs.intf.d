lib/workload/unixfs.mli: Dolx_policy Dolx_xml
