lib/workload/xmark.mli: Dolx_xml
