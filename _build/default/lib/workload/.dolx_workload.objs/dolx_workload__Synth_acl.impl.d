lib/workload/synth_acl.ml: Array Dolx_policy Dolx_util Dolx_xml List
