(** Generative stand-in for the paper's multi-user Unix file-system
    dataset (§5: 182 users, 65 groups, 1.3M files).  Permission-bit
    semantics: a subject reads a file iff it holds the r-bit under
    owner/group/other resolution and the x-bit on every ancestor
    directory; group subjects model processes holding only that group. *)

type config = {
  seed : int;
  target_nodes : int;
  n_users : int;
  n_groups : int;
}

(** 182 users / 65 groups, 20k nodes. *)
val default_config : config

type perm = { owner : int; group : int; mode : int (** 9-bit rwxrwxrwx *) }

type t = {
  config : config;
  tree : Dolx_xml.Tree.t;
  subjects : Dolx_policy.Subject.registry;
  modes : Dolx_policy.Mode.registry;
  read_labeling : Dolx_policy.Labeling.t;
  write_labeling : Dolx_policy.Labeling.t;
  users : Dolx_policy.Subject.id array;
  groups : Dolx_policy.Subject.id array;
  perms : perm array;  (** per preorder *)
}

val generate : ?config:config -> unit -> t

val all_subjects : t -> Dolx_policy.Subject.id array
