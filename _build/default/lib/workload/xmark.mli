(** XMark-like auction-site document generator (the paper evaluates on
    XMark instances, §5).  The tag vocabulary and nesting follow the
    XMark auction DTD closely enough that the six benchmark queries of
    Table 1 traverse the same paths.  Fully deterministic under an
    explicit seed. *)

type config = {
  seed : int;
  items : int;               (** total items across the six regions *)
  max_parlist_depth : int;   (** recursion cap for parlist/listitem *)
  words_per_text : int;
}

val default_config : config

(** Generate a document. *)
val generate : ?config:config -> unit -> Dolx_xml.Tree.t

(** Generate a document with approximately [n] nodes (within ~15%). *)
val generate_nodes : ?seed:int -> int -> Dolx_xml.Tree.t

(** The paper's six benchmark queries, as (id, XPath) pairs.  Q3 uses
    the single-path reading — see EXPERIMENTS.md. *)
val queries : (string * string) list
