(** A generative stand-in for the paper's OpenText LiveLink dataset.

    The real dataset — "the access control information from a production
    instance of OpenText LiveLink, which provides web-based collaboration
    and knowledge management services in a corporate intranet … data items
    in a tree-structure with an average depth of 7.9 and a maximum depth
    of 19 … a total of 8639 access control subjects (users and groups)
    … ten different access modes" (§5) — is proprietary, so we model the
    generating process: departments own folder subtrees; users inherit
    their departments' rights and add sparse personal exceptions; higher
    action modes are progressively narrower variants of the base mode.
    This reproduces the two properties the paper measures: strong
    inter-subject correlation (sublinear codebook growth, Fig. 5) and
    structural locality (sparse transitions, Fig. 6). *)

module Tree = Dolx_xml.Tree
module Prng = Dolx_util.Prng
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Rule = Dolx_policy.Rule
module Propagate = Dolx_policy.Propagate
module Labeling = Dolx_policy.Labeling

type config = {
  seed : int;
  target_nodes : int;
  n_departments : int;
  users_per_department : int;
  n_modes : int;
  max_depth : int;
}

let default_config =
  {
    seed = 7;
    target_nodes = 20_000;
    n_departments = 12;
    users_per_department = 25;
    n_modes = 10;
    max_depth = 19;
  }

type t = {
  config : config;
  tree : Tree.t;
  subjects : Subject.registry;
  modes : Mode.registry;
  labelings : Labeling.t array; (* indexed by mode *)
  users : Subject.id array;
  groups : Subject.id array;
  dept_roots : Tree.node array; (* folder subtree owned by each department *)
}

(* Grow a folder subtree of exactly [budget] nodes below the currently
   open element of [b]; fanout and subtree sizes are drawn randomly,
   depth capped.  Returns the number of nodes created (= budget). *)
let rec grow_folder b rng ~budget ~depth ~max_depth =
  let made = ref 0 in
  while !made < budget do
    let remaining = budget - !made in
    let is_folder = depth < max_depth && remaining > 2 && Prng.bool rng ~p:0.45 in
    ignore (Tree.Builder.open_element b (if is_folder then "folder" else "document"));
    incr made;
    if is_folder then begin
      (* the folder swallows a random share of what is left *)
      let share = Prng.int_in rng 1 (max 1 ((remaining - 1) / 2)) in
      made :=
        !made
        + grow_folder b rng ~budget:(min (budget - !made) share) ~depth:(depth + 1)
            ~max_depth
    end;
    Tree.Builder.close_element b
  done;
  !made

let generate ?(config = default_config) () =
  let rng = Prng.create config.seed in
  let b = Tree.Builder.create () in
  ignore (Tree.Builder.open_element b "repository");
  let budget_per_dept = max 10 (config.target_nodes / (config.n_departments + 1)) in
  (* Department workspaces; remember where each starts. *)
  let dept_starts = Array.make config.n_departments 0 in
  for d = 0 to config.n_departments - 1 do
    dept_starts.(d) <- Tree.Builder.open_element b "workspace";
    ignore (grow_folder b rng ~budget:budget_per_dept ~depth:2 ~max_depth:config.max_depth);
    Tree.Builder.close_element b
  done;
  (* A shared, broadly readable area. *)
  let shared_start = Tree.Builder.open_element b "shared" in
  ignore (grow_folder b rng ~budget:budget_per_dept ~depth:2 ~max_depth:config.max_depth);
  Tree.Builder.close_element b;
  Tree.Builder.close_element b;
  let tree = Tree.Builder.finish b in
  (* Subjects: one group per department plus its users. *)
  let subjects = Subject.create () in
  let groups =
    Array.init config.n_departments (fun d ->
        Subject.add_group subjects (Printf.sprintf "dept%d" d))
  in
  let users = ref [] in
  let dept_users =
    Array.init config.n_departments (fun d ->
        Array.init config.users_per_department (fun i ->
            let u = Subject.add_user subjects (Printf.sprintf "u%d_%d" d i) in
            Subject.add_membership subjects ~child:u ~group:groups.(d);
            users := u :: !users;
            u))
  in
  let users = Array.of_list (List.rev !users) in
  (* Action modes: mode 0 is the broad "see" right; higher modes hold with
     geometrically decreasing probability, modeling edit/delete/admin. *)
  let modes = Mode.create () in
  let mode_names =
    [| "see"; "see-contents"; "modify"; "edit-attrs"; "reserve"; "add-items";
       "delete-versions"; "delete"; "edit-perms"; "admin" |]
  in
  for m = 0 to config.n_modes - 1 do
    ignore
      (Mode.add modes
         (if m < Array.length mode_names then mode_names.(m)
          else Printf.sprintf "mode%d" m))
  done;
  (* Rules.  Department rights are materialized both for the group subject
     and for each member user — as a crawl of the real system would record
     them — which is what creates the inter-subject correlation. *)
  let rules = ref [] in
  let add_rule r = rules := r :: !rules in
  let n = Tree.size tree in
  (* Rights concentrate on a shared pool of popular folders with a Zipf
     profile — in production systems most ACL anchors are a small set of
     project/team folders, which is what drives the strong inter-subject
     correlation of Figs. 5/6. *)
  let anchor_pool = Array.init 256 (fun _ -> Prng.int rng n) in
  let zipf = Prng.zipf_sampler ~n:(Array.length anchor_pool) ~s:1.1 in
  let pick_anchor () = anchor_pool.(zipf rng) in
  let mode_keep_p m = 0.85 ** float_of_int m in
  (* grant [node] to department [d] (group + all members) in mode [m] *)
  let dept_grant d m node =
    add_rule (Rule.grant ~subject:groups.(d) ~mode:m node);
    Array.iter (fun u -> add_rule (Rule.grant ~subject:u ~mode:m node)) dept_users.(d)
  in
  let dept_deny d m node =
    add_rule (Rule.deny ~subject:groups.(d) ~mode:m node);
    Array.iter (fun u -> add_rule (Rule.deny ~subject:u ~mode:m node)) dept_users.(d)
  in
  for d = 0 to config.n_departments - 1 do
    let root = dept_starts.(d) in
    let root_end = root + Tree.subtree_size tree root - 1 in
    for m = 0 to config.n_modes - 1 do
      if m = 0 || Prng.bool rng ~p:(mode_keep_p m) then begin
        dept_grant d m root;
        (* restricted areas inside the workspace *)
        let denies = Prng.int_in rng 2 6 in
        for _ = 1 to denies do
          dept_deny d m (Prng.int_in rng root root_end)
        done
      end
    done;
    (* scattered collaboration grants on popular folders *)
    let scatter = Prng.int_in rng 6 14 in
    for _ = 1 to scatter do
      let node = pick_anchor () in
      let m = Prng.int rng config.n_modes in
      dept_grant d m node
    done;
    (* occasional access to a whole other workspace *)
    if Prng.bool rng ~p:0.4 then begin
      let other = Prng.int rng config.n_departments in
      if other <> d then dept_grant other 0 root
    end
  done;
  (* Shared area: everyone sees it. *)
  for s = 0 to Subject.count subjects - 1 do
    add_rule (Rule.grant ~subject:s ~mode:0 shared_start)
  done;
  (* Sparse personal exceptions: private folders, revocations, and
     shared-with-me runs of sibling documents (horizontal locality: a
     user is granted a handful of adjacent items in a folder they cannot
     otherwise see — frequent in the real system and the case where DOL's
     document-order runs beat CAM's per-subtree labels). *)
  Array.iter
    (fun u ->
      let personal = Prng.int_in rng 3 10 in
      for _ = 1 to personal do
        let v = pick_anchor () in
        let m = Prng.int rng config.n_modes in
        if Prng.bool rng ~p:0.7 then add_rule (Rule.grant ~subject:u ~mode:m v)
        else add_rule (Rule.deny ~subject:u ~mode:m v)
      done;
      let shared_runs = Prng.int_in rng 2 6 in
      for _ = 1 to shared_runs do
        let m = Prng.int rng config.n_modes in
        let v = ref (pick_anchor ()) in
        let run = Prng.int_in rng 1 5 in
        let steps = ref 0 in
        while !v <> Tree.nil && !steps < run do
          add_rule (Rule.grant ~scope:Rule.Self ~subject:u ~mode:m !v);
          v := Tree.next_sibling tree !v;
          incr steps
        done
      done)
    users;
  let rules = !rules in
  let labelings =
    Array.init config.n_modes (fun m ->
        Propagate.compile tree ~subjects ~mode:m ~default:Propagate.Closed rules)
  in
  { config; tree; subjects; modes; labelings; users; groups; dept_roots = dept_starts }

(** All subject ids (users and groups), the population sampled in
    Figs. 5(a)/6(a). *)
let all_subjects t = Array.init (Subject.count t.subjects) Fun.id
