(** Pattern-tree decomposition (paper §3.1): "The NoK query processor
    first partitions the pattern tree into NoK subtrees, each containing
    only parent-child or following-sibling relationships … Then the
    processor finds matches for these NoK subtrees … Finally it combines
    the matched results using structural joins on the ancestor-descendant
    relationship."

    The trunk (root → returning node) is cut at every descendant-axis
    edge; each resulting [segment] is a NoK pattern over child edges whose
    non-trunk branches are evaluated as existential predicates.  A
    predicate branch may itself contain descendant edges; those are
    handled inside the match primitive rather than by a separate join,
    which is sound because predicates are existential. *)

type step = {
  pnode : Pattern.pnode;           (* the trunk node *)
  preds : Pattern.pnode list;      (* non-trunk children: predicates *)
}

type segment = {
  entry_axis : Pattern.axis;       (* how the segment root attaches *)
  steps : step list;               (* linked by Child axis *)
}

type plan = { segments : segment list; pattern : Pattern.t }

let plan pattern =
  let trunk = Pattern.trunk pattern in
  let trunk_ids =
    List.fold_left (fun s (p : Pattern.pnode) -> p.Pattern.id :: s) [] trunk
  in
  let is_trunk (p : Pattern.pnode) = List.mem p.Pattern.id trunk_ids in
  let to_step (p : Pattern.pnode) =
    { pnode = p; preds = List.filter (fun c -> not (is_trunk c)) p.Pattern.children }
  in
  (* split the trunk at Descendant edges *)
  let rec split acc current entry = function
    | [] -> List.rev ({ entry_axis = entry; steps = List.rev current } :: acc)
    | (p : Pattern.pnode) :: rest ->
        if current = [] then split acc [ to_step p ] entry rest
        else if p.Pattern.axis = Pattern.Descendant then
          split
            ({ entry_axis = entry; steps = List.rev current } :: acc)
            [ to_step p ] Pattern.Descendant rest
        else split acc (to_step p :: current) entry rest
  in
  let entry =
    match trunk with p :: _ -> p.Pattern.axis | [] -> Pattern.Child
  in
  { segments = split [] [] entry trunk; pattern }

(** Number of NoK subtrees along the trunk (= number of structural joins
    + 1). *)
let segment_count plan = List.length plan.segments

(** Does the plan need any structural join at all? *)
let needs_join plan = segment_count plan > 1

let pp_segment ppf s =
  Fmt.pf ppf "%s%a"
    (match s.entry_axis with
    | Pattern.Child -> "/"
    | Pattern.Descendant -> "//"
    | Pattern.Following_sibling -> "/following-sibling::")
    (Fmt.list ~sep:(Fmt.any "/") (fun ppf st ->
         match st.pnode.Pattern.test with
         | Pattern.Tag t -> Fmt.string ppf t
         | Pattern.Wildcard -> Fmt.string ppf "*"))
    s.steps

let pp ppf plan =
  Fmt.pf ppf "plan[%a]" (Fmt.list ~sep:(Fmt.any " <AD> ") pp_segment) plan.segments
