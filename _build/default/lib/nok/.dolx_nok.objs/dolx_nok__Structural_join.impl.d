lib/nok/structural_join.ml: Array Dolx_core Dolx_xml Hashtbl Lazy List
