lib/nok/engine.ml: Buffer Decompose Dolx_core Dolx_index Dolx_xml Fmt Fun List Nok_match Pattern Printf Structural_join Xpath
