lib/nok/nok_match.mli: Dolx_core Dolx_index Dolx_xml Pattern
