lib/nok/pattern.ml: Fmt List Option
