lib/nok/structural_join.mli: Dolx_core
