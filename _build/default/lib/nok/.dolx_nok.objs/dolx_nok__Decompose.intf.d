lib/nok/decompose.mli: Format Pattern
