lib/nok/pattern.mli: Format
