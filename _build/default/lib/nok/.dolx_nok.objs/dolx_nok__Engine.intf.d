lib/nok/engine.mli: Dolx_core Dolx_index Dolx_xml Nok_match Pattern
