lib/nok/xpath.mli: Pattern
