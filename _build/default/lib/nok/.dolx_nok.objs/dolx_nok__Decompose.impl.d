lib/nok/decompose.ml: Fmt List Pattern
