lib/nok/nok_match.ml: Dolx_core Dolx_index Dolx_xml List Pattern
