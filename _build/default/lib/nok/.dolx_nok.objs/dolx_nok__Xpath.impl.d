lib/nok/xpath.ml: Pattern String
