(** Parser for the XPath subset used by the paper's workload (Table 1):
    absolute paths with child ([/]) and descendant ([//]) axes, name tests
    and wildcards, nested structural predicates, and text-equality
    predicates.

    Grammar:
    {v
      query     ::= axis step (axis step)*
      axis      ::= '/' | '//' | '/child::' | '/following-sibling::'
      step      ::= test predicate*
      test      ::= name | '*'
      predicate ::= '[' relpath ('=' string)? ']'
      relpath   ::= step (axis step)*        (leading axis is Child)
      string    ::= '"' chars '"'
    v}

    The returning node is the final step of the outermost path.  Examples:
    [/site/regions/africa/item\[location\]\[name\]\[quantity\]],
    [//listitem//keyword], [/site/people/person\[name="alice"\]]. *)

exception Parse_error of { position : int; message : string }

let error pos msg = raise (Parse_error { position = pos; message = msg })

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let eof st = st.pos >= String.length st.input

let skip_ws st =
  while (match peek st with Some (' ' | '\t') -> true | _ -> false) do
    st.pos <- st.pos + 1
  done

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let parse_name st =
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error start "expected an element name";
  String.sub st.input start (st.pos - start)

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let parse_axis st =
  match peek st with
  | Some '/' ->
      st.pos <- st.pos + 1;
      if peek st = Some '/' then begin
        st.pos <- st.pos + 1;
        Some Pattern.Descendant
      end
      else if looking_at st "following-sibling::" then begin
        st.pos <- st.pos + String.length "following-sibling::";
        Some Pattern.Following_sibling
      end
      else if looking_at st "child::" then begin
        st.pos <- st.pos + String.length "child::";
        Some Pattern.Child
      end
      else Some Pattern.Child
  | _ -> None

let parse_test st =
  match peek st with
  | Some '*' ->
      st.pos <- st.pos + 1;
      Pattern.Wildcard
  | _ -> Pattern.Tag (parse_name st)

let parse_string st =
  (match peek st with
  | Some '"' -> st.pos <- st.pos + 1
  | _ -> error st.pos "expected a string literal");
  let start = st.pos in
  while (match peek st with Some c when c <> '"' -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  if eof st then error start "unterminated string literal";
  let s = String.sub st.input start (st.pos - start) in
  st.pos <- st.pos + 1;
  s

(* A step list builds a right-nested chain of pattern nodes; the deepest
   step of a predicate path may carry a value constraint. *)
let rec parse_steps st ~first_axis ~returning_last =
  let axis = first_axis in
  skip_ws st;
  let test = parse_test st in
  let preds = parse_predicates st [] in
  let rest_axis = parse_axis st in
  match rest_axis with
  | Some a ->
      let tail = parse_steps st ~first_axis:a ~returning_last in
      Pattern.make ~axis ~returning:false test (preds @ [ tail ])
  | None ->
      (* value constraint directly on the last step: name="v" *)
      let value =
        skip_ws st;
        if peek st = Some '=' then begin
          st.pos <- st.pos + 1;
          skip_ws st;
          Some (parse_string st)
        end
        else None
      in
      Pattern.make ~axis ~value ~returning:returning_last test preds

and parse_predicates st acc =
  skip_ws st;
  match peek st with
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      let axis =
        match parse_axis st with Some a -> a | None -> Pattern.Child
      in
      let p = parse_steps st ~first_axis:axis ~returning_last:false in
      skip_ws st;
      (match peek st with
      | Some ']' -> st.pos <- st.pos + 1
      | _ -> error st.pos "expected ']'");
      parse_predicates st (acc @ [ p ])
  | _ -> acc

(** Parse an absolute twig query. *)
let parse input =
  let st = { input; pos = 0 } in
  skip_ws st;
  let axis =
    match parse_axis st with
    | Some Pattern.Following_sibling ->
        error st.pos "a query cannot start with following-sibling::"
    | Some a -> a
    | None -> error st.pos "query must start with / or //"
  in
  let root = parse_steps st ~first_axis:axis ~returning_last:true in
  skip_ws st;
  if not (eof st) then error st.pos "trailing input after query";
  Pattern.of_root root

let parse_exn = parse

let parse_opt input = try Some (parse input) with Parse_error _ -> None
