(** Structural joins on the ancestor–descendant relationship:
    Stack-Tree-Desc (Al-Khalifa et al., ICDE 2002) and the secure ε-STD
    variants for the Gabillon–Bruno path semantics of §4.2. *)

module Store = Dolx_core.Secure_store

(** Stack-Tree-Desc over document-order-sorted candidate lists: all pairs
    [(a, d)] with [a] from [alist] a proper ancestor of [d] from [dlist],
    grouped by descendant, innermost ancestor first. *)
val stack_tree_desc : Store.t -> alist:int list -> dlist:int list -> (int * int) list

(** All nodes strictly between ancestor [a] and descendant [d]
    accessible?  [memo] shares per-node verdicts across calls. *)
val path_accessible :
  Store.t -> subject:int -> memo:(int -> bool) option -> a:int -> d:int -> bool

(** ε-STD, straw-man: every pair re-walks its connecting path against
    the store — the cost the paper warns about ("this checking may
    involve lots of page reads"). *)
val secure_stack_tree_desc_unmemoized :
  Store.t -> subject:int -> alist:int list -> dlist:int list -> (int * int) list

(** ε-STD with a per-join accessibility memo: each node fetched and
    checked at most once. *)
val secure_stack_tree_desc_naive :
  Store.t -> subject:int -> alist:int list -> dlist:int list -> (int * int) list

(** ε-STD, stack-cached (in the spirit of the paper's [18]): path
    accessibility is maintained incrementally on the STD stack with lazy
    segment verdicts, deciding each pair by one running conjunction —
    "only load each page once if necessary". *)
val secure_stack_tree_desc :
  Store.t -> subject:int -> alist:int list -> dlist:int list -> (int * int) list

(** Distinct descendants of a pair list, ascending. *)
val descendants_of_pairs : (int * int) list -> int list

(** Distinct ancestors of a pair list, ascending. *)
val ancestors_of_pairs : (int * int) list -> int list
