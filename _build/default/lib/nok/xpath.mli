(** Parser for the XPath subset of the paper's workload (Table 1):
    absolute paths with child ([/]), descendant ([//]) and
    [following-sibling::] axes, name tests and wildcards, nested
    structural predicates, and text-equality predicates ([name="v"]).
    The returning node is the final step of the outermost path. *)

exception Parse_error of { position : int; message : string }

(** Parse an absolute twig query.  @raise Parse_error on bad input. *)
val parse : string -> Pattern.t

val parse_exn : string -> Pattern.t

val parse_opt : string -> Pattern.t option
