(** Pattern-tree decomposition (paper §3.1): the trunk (root → returning
    node) is cut at every descendant-axis edge; each resulting NoK
    [segment] runs over next-of-kin edges, with non-trunk branches
    evaluated as existential predicates.  Consecutive segments are
    combined by structural joins. *)

type step = {
  pnode : Pattern.pnode;       (** the trunk node *)
  preds : Pattern.pnode list;  (** non-trunk children: predicates *)
}

type segment = {
  entry_axis : Pattern.axis;   (** how the segment root attaches *)
  steps : step list;           (** linked by next-of-kin axes *)
}

type plan = { segments : segment list; pattern : Pattern.t }

val plan : Pattern.t -> plan

(** Number of NoK subtrees along the trunk (= structural joins + 1). *)
val segment_count : plan -> int

val needs_join : plan -> bool

val pp_segment : Format.formatter -> segment -> unit

val pp : Format.formatter -> plan -> unit
