(** Twig-query pattern trees (paper §3.1: "A NoK query processor accepts
    twig queries described by pattern trees").

    Each pattern node carries the axis of the edge connecting it to its
    parent ([Child] or [Descendant]); the root's axis describes how it
    relates to the document (a leading [/] or [//]).  Exactly one node is
    the returning node (§4.1: "One node in the NoK pattern tree is set as
    returning node"). *)

type axis =
  | Child
  | Descendant
  | Following_sibling
      (** the other next-of-kin relationship of NoK subtrees (§3.1) *)

type test = Tag of string | Wildcard

type pnode = {
  id : int;
  axis : axis;
  test : test;
  value : string option; (* equality constraint on the node's text *)
  children : pnode list;
  returning : bool;
}

type t = { root : pnode; node_count : int }

let rec fold f acc p = List.fold_left (fold f) (f acc p) p.children

let node_count t = t.node_count

let returning_node t =
  match fold (fun acc p -> if p.returning then p :: acc else acc) [] t.root with
  | [ p ] -> p
  | [] -> invalid_arg "Pattern: no returning node"
  | _ -> invalid_arg "Pattern: multiple returning nodes"

(** Path of pattern nodes from the root to the returning node — the
    query's trunk. *)
let trunk t =
  let rec find p =
    if p.returning then Some [ p ]
    else
      List.fold_left
        (fun acc c -> match acc with Some _ -> acc | None -> Option.map (fun l -> p :: l) (find c))
        None p.children
  in
  match find t.root with
  | Some l -> l
  | None -> invalid_arg "Pattern: no returning node"

(** {1 Construction} *)

let next_id = ref 0

let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

let make ?(axis = Child) ?(value = None) ?(returning = false) test children =
  { id = fresh_id (); axis; test; value; children; returning }

let of_root root =
  let count = fold (fun acc _ -> acc + 1) 0 root in
  let returning = fold (fun acc p -> if p.returning then acc + 1 else acc) 0 root in
  if returning <> 1 then invalid_arg "Pattern.of_root: exactly one returning node required";
  { root; node_count = count }

(** Does this pattern contain only next-of-kin (parent/child and
    following-sibling) edges below the root — i.e. is it a single NoK
    subtree (paper §3.1)? *)
let is_single_nok t =
  let rec go ~is_root p =
    (is_root || p.axis = Child || p.axis = Following_sibling)
    && List.for_all (go ~is_root:false) p.children
  in
  go ~is_root:true t.root

let rec pp_pnode ppf p =
  let axis =
    match p.axis with
    | Child -> "/"
    | Descendant -> "//"
    | Following_sibling -> "/following-sibling::"
  in
  let test = match p.test with Tag s -> s | Wildcard -> "*" in
  Fmt.pf ppf "%s%s%s%s" axis test
    (match p.value with Some v -> Fmt.str "=%S" v | None -> "")
    (if p.returning then "!" else "");
  match p.children with
  | [] -> ()
  | kids -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ";") pp_pnode) kids

let pp ppf t = pp_pnode ppf t.root
