(** NoK pattern matching against the secured store: the visit/check
    primitives of ε-NoK and a verbatim port of the paper's Algorithm 1.

    Every node visited costs a page touch; in secure modes the node's
    accessibility is checked "immediately after it is loaded (by
    FIRST-CHILD or FOLLOWING-SIBLING)" (§4.1), and inaccessible nodes are
    skipped with their subtrees — the binding-elimination semantics of
    Cho et al. for next-of-kin patterns. *)

module Store = Dolx_core.Secure_store

(** Evaluation mode.  [subject = None] disables access control;
    [header_skip] enables the §3.3 page-header optimization;
    [path_semantics] switches descendant steps (including those inside
    predicates) to the Gabillon–Bruno semantics, where every node on the
    connecting path must be accessible. *)
type mode = { subject : int option; header_skip : bool; path_semantics : bool }

val insecure : mode

val secure : ?header_skip:bool -> ?path_semantics:bool -> int -> mode

val subject_of : mode -> int option

(** Visit node [v]: fetch its page (accounted I/O, or header-skip) and
    check access.  [true] when evaluation may bind or traverse [v]. *)
val visit : Store.t -> mode -> Dolx_xml.Tree.node -> bool

(** Under path semantics: all nodes strictly between [ctx] and its
    descendant [u] accessible? *)
val path_clear : Store.t -> mode -> ctx:Dolx_xml.Tree.node -> Dolx_xml.Tree.node -> bool

(** Does [v] pass the pattern node's tag test? *)
val test_ok : Store.t -> Pattern.test -> Dolx_xml.Tree.node -> bool

(** Does [v] pass the text-equality constraint? *)
val value_ok : Store.t -> string option -> Dolx_xml.Tree.node -> bool

(** Existential match of pattern node [p] (with its axis) in the context
    of data node [ctx] — the predicate-evaluation primitive. *)
val exists_match : Store.t -> Dolx_index.Tag_index.t -> mode -> Pattern.pnode ->
  Dolx_xml.Tree.node -> bool

(** Full qualification of a candidate binding: visit/test/value plus all
    [preds] existentially. *)
val qualifies :
  Store.t -> Dolx_index.Tag_index.t -> mode -> Pattern.pnode ->
  preds:Pattern.pnode list -> Dolx_xml.Tree.node -> bool

(** {1 Algorithm 1, verbatim}

    A faithful port of the paper's ε-NoK "NPM(proot, sroot, R)" for
    child-only patterns with unordered children — the executable
    specification the test-suite checks the engine against. *)

(** [npm store mode proot sroot r]: match [proot]'s pattern subtree at
    [sroot], appending returning-node witnesses to [r] (reset on
    failure, as in the paper's lines 14–16).  Pre-condition: [sroot] is
    accessible and matches [proot]'s test. *)
val npm : Store.t -> mode -> Pattern.pnode -> Dolx_xml.Tree.node ->
  Dolx_xml.Tree.node list ref -> bool

(** Run Algorithm 1 from a candidate root, with the pre-condition check;
    [Some witnesses] on a match. *)
val npm_run :
  Store.t -> mode -> Pattern.t -> Dolx_xml.Tree.node ->
  Dolx_xml.Tree.node list option
