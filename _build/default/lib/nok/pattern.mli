(** Twig-query pattern trees (paper §3.1).  Each pattern node carries the
    axis of the edge to its parent; the root's axis describes how it
    attaches to the document (leading [/] or [//]).  Exactly one node is
    the returning node (§4.1). *)

type axis =
  | Child
  | Descendant
  | Following_sibling
      (** the other next-of-kin relationship of NoK subtrees (§3.1) *)

type test = Tag of string | Wildcard

type pnode = {
  id : int;               (** unique within the process *)
  axis : axis;
  test : test;
  value : string option;  (** equality constraint on the node's text *)
  children : pnode list;
  returning : bool;
}

type t = { root : pnode; node_count : int }

(** Depth-first fold over a pattern subtree. *)
val fold : ('a -> pnode -> 'a) -> 'a -> pnode -> 'a

val node_count : t -> int

(** @raise Invalid_argument unless exactly one returning node exists. *)
val returning_node : t -> pnode

(** Pattern nodes from the root to the returning node — the trunk. *)
val trunk : t -> pnode list

(** Construct a pattern node (fresh id). *)
val make :
  ?axis:axis -> ?value:string option -> ?returning:bool -> test -> pnode list ->
  pnode

(** Package a pattern-node tree.
    @raise Invalid_argument unless exactly one node is returning. *)
val of_root : pnode -> t

(** Only next-of-kin (child / following-sibling) edges below the root —
    a single NoK subtree (§3.1)? *)
val is_single_nok : t -> bool

val pp_pnode : Format.formatter -> pnode -> unit

val pp : Format.formatter -> t -> unit
