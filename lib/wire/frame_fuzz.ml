(** Seeded property checks for the frame codec — shared by the
    [fuzz_diff.exe --frames] fuzzer, the CI canary and the corpus
    replay in [dune runtest].

    Each seed derives a small batch of random frames (hostile strings,
    edge-case ints) and checks, per seed:
    - encode → decode round-trips every frame exactly;
    - short reads: any re-chunking of the byte stream yields the same
      frames;
    - torn prefixes: a stream cut at any point yields exactly the
      frames fully contained before the cut, then [None] — the decoder
      never reads past the cut and never misparses a partial frame;
    - hostile input: random garbage and single-byte mutations of valid
      frames either decode or raise {!Frame.Corrupt} — never any other
      exception, never a runaway allocation (the length prefix is
      rejected before payload allocation);
    - the length-prefix bound: zero, negative (sign bit set) and
      oversized prefixes are rejected with [Corrupt]. *)

module Prng = Dolx_util.Prng
module Engine = Dolx_nok.Engine

let gen_string g =
  let n = Prng.int g 13 in
  String.init n (fun _ -> Char.chr (Prng.int g 256))

(* Edge-heavy non-negative ints: varint boundaries and large values. *)
let gen_int g =
  match Prng.int g 6 with
  | 0 -> 0
  | 1 -> Prng.int g 128
  | 2 -> 127 + Prng.int g 3
  | 3 -> 16383 + Prng.int g 3
  | 4 -> Prng.int g 1_000_000
  | _ -> Prng.bits g

let gen_semantics g =
  match Prng.int g 3 with
  | 0 -> Engine.Insecure
  | 1 -> Engine.Secure (gen_int g)
  | _ -> Engine.Secure_path (gen_int g)

let gen_frame g =
  match Prng.int g 12 with
  | 0 -> Frame.Request (Frame.Hello { client = gen_string g })
  | 1 ->
      Frame.Request
        (Frame.Submit
           {
             id = gen_int g;
             tenant = gen_string g;
             xpath = gen_string g;
             semantics = gen_semantics g;
           })
  | 2 -> Frame.Request (Frame.Next { id = gen_int g })
  | 3 -> Frame.Request (Frame.Close { id = gen_int g })
  | 4 -> Frame.Request Frame.Stats
  | 5 -> Frame.Response (Frame.Welcome { server = gen_string g })
  | 6 -> Frame.Response (Frame.Accepted { id = gen_int g })
  | 7 | 8 ->
      (* over-weighted: multi-answer chunks are where off-by-ones live *)
      let n = Prng.int g 21 in
      Frame.Response
        (Frame.Chunk
           { id = gen_int g; answers = List.init n (fun _ -> gen_int g) })
  | 9 -> Frame.Response (Frame.End { id = gen_int g })
  | 10 ->
      Frame.Response (Frame.Error { id = gen_int g; message = gen_string g })
  | _ ->
      let n = Prng.int g 6 in
      Frame.Response
        (Frame.Stats_reply
           (List.init n (fun _ -> (gen_string g, gen_int g))))

let concat_bytes pieces =
  let total = List.fold_left (fun n b -> n + Bytes.length b) 0 pieces in
  let out = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun b ->
      Bytes.blit b 0 out !off (Bytes.length b);
      off := !off + Bytes.length b)
    pieces;
  out

(* Decode everything [stream] holds; returns the frames, or an error
   description on any exception other than the expected protocol. *)
let decode_all stream =
  let d = Frame.decoder () in
  Frame.feed d stream 0 (Bytes.length stream);
  let rec go acc =
    match Frame.next d with Some f -> go (f :: acc) | None -> List.rev acc
  in
  go []

let describe_frames frames =
  String.concat "; "
    (List.map (fun f -> Format.asprintf "%a" Frame.pp f) frames)

(* Feed [stream] in chunks cut at [cuts] (sorted positions), pulling
   after every feed; returns all frames decoded. *)
let decode_chunked stream cuts =
  let d = Frame.decoder () in
  let acc = ref [] in
  let pull () =
    let rec go () =
      match Frame.next d with
      | Some f ->
          acc := f :: !acc;
          go ()
      | None -> ()
    in
    go ()
  in
  let prev = ref 0 in
  List.iter
    (fun cut ->
      Frame.feed d stream !prev (cut - !prev);
      prev := cut;
      pull ())
    (cuts @ [ Bytes.length stream ]);
  List.rev !acc

let check_seed seed =
  let g = Prng.create (0x51CE + seed) in
  let frames = List.init (1 + Prng.int g 4) (fun _ -> gen_frame g) in
  let encoded = List.map Frame.to_bytes frames in
  let stream = concat_bytes encoded in
  let fail fmt = Printf.ksprintf (fun s -> Some s) fmt in
  (* 1. whole-stream round trip *)
  match decode_all stream with
  | exception e ->
      fail "round-trip raised %s on [%s]" (Printexc.to_string e)
        (describe_frames frames)
  | got when not (List.equal Frame.equal got frames) ->
      fail "round-trip mismatch: sent [%s], got [%s]" (describe_frames frames)
        (describe_frames got)
  | _ -> (
      (* 2. short reads: random re-chunking decodes identically *)
      let n = Bytes.length stream in
      let cuts =
        List.init (Prng.int g 8) (fun _ -> Prng.int g (n + 1))
        |> List.sort_uniq compare
      in
      match decode_chunked stream cuts with
      | exception e -> fail "chunked decode raised %s" (Printexc.to_string e)
      | got when not (List.equal Frame.equal got frames) ->
          fail "chunked decode mismatch at cuts [%s]"
            (String.concat "," (List.map string_of_int cuts))
      | _ -> (
          (* 3. torn prefix: only fully-contained frames come out; the
             decoder never raises and never invents a frame *)
          let cut = Prng.int g (n + 1) in
          let expected_before_cut =
            let rec go off frames sizes =
              match (frames, sizes) with
              | f :: fs, sz :: rest when off + sz <= cut ->
                  f :: go (off + sz) fs rest
              | _ -> []
            in
            go 0 frames (List.map Bytes.length encoded)
          in
          match decode_chunked stream [ cut ] with
          | exception e ->
              fail "torn prefix at %d raised %s" cut (Printexc.to_string e)
          | _ -> (
              let d = Frame.decoder () in
              Frame.feed d stream 0 cut;
              let rec drain acc =
                match Frame.next d with
                | Some f -> drain (f :: acc)
                | None -> List.rev acc
              in
              match drain [] with
              | exception e ->
                  fail "torn prefix at %d raised %s" cut (Printexc.to_string e)
              | got when not (List.equal Frame.equal got expected_before_cut)
                ->
                  fail
                    "torn prefix at %d yielded %d frames, expected %d \
                     (decoder read past the cut?)"
                    cut (List.length got)
                    (List.length expected_before_cut)
              | _ -> (
                  (* 4. hostile input: mutations and garbage must decode
                     or raise Corrupt — nothing else *)
                  let hostile =
                    if n > 0 && Prng.bool g ~p:0.5 then begin
                      let b = Bytes.copy stream in
                      let i = Prng.int g n in
                      Bytes.set b i
                        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int g 8)));
                      b
                    end
                    else
                      Bytes.init (Prng.int g 64) (fun _ ->
                          Char.chr (Prng.int g 256))
                  in
                  match decode_all hostile with
                  | _ -> None
                  | exception Frame.Corrupt _ -> None
                  | exception e ->
                      fail "hostile input raised %s (want Corrupt only)"
                        (Printexc.to_string e)))))

(* The length-prefix bound is deterministic; checked once per run, not
   per seed. *)
let check_length_bounds () =
  let header v =
    let b = Bytes.create 8 in
    Bytes.set_int32_be b 0 v;
    b
  in
  let expect_corrupt name v =
    let d = Frame.decoder () in
    let b = header v in
    Frame.feed d b 0 (Bytes.length b);
    match Frame.next d with
    | exception Frame.Corrupt _ -> None
    | _ -> Some (Printf.sprintf "%s length prefix not rejected" name)
  in
  match expect_corrupt "zero" 0l with
  | Some e -> Some e
  | None -> (
      match expect_corrupt "negative" 0xFFFFFFFFl with
      | Some e -> Some e
      | None ->
          expect_corrupt "oversized"
            (Int32.of_int (Frame.default_max_frame + 1)))
