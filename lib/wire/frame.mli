(** The wire protocol's frame grammar and codec (see
    docs/ARCHITECTURE.md §14).

    Every frame is a 4-byte big-endian length prefix followed by a body
    of exactly that many bytes: a one-byte tag and a tag-specific
    payload of varints and length-prefixed strings.  The decoder is
    incremental — bytes arrive in arbitrary splits (short reads) and a
    frame is surfaced only once it is complete — and hostile-input
    safe: the length prefix is bounds-checked {e before} any
    payload-sized allocation, every varint is decoded with an explicit
    limit ({!Dolx_util.Varint.read_opt}), and a body that does not parse
    to exactly its declared length raises {!Corrupt}. *)

module Engine = Dolx_nok.Engine

(** Raised on malformed input: a length prefix outside
    [1 .. max_frame], an unknown tag, a truncated or overlong payload.
    Once raised, the decoder is poisoned — the connection it fed from
    cannot be resynchronized and must be dropped. *)
exception Corrupt of string

(** Requests travel client → server. [Submit.id] is a client-chosen
    stream id, fresh per submission on that connection; [Next], [Close]
    refer to it. *)
type request =
  | Hello of { client : string }
  | Submit of {
      id : int;
      tenant : string;
      xpath : string;
      semantics : Engine.semantics;
    }
  | Next of { id : int }
  | Close of { id : int }
  | Stats

(** Responses travel server → client.  Every request gets exactly one
    response: [Hello]→[Welcome]; [Submit]→[Accepted]/[Overloaded]/
    [Error]; [Next]→[Chunk]/[End]/[Error]; [Close]→[End] (idempotent
    ack); [Stats]→[Stats_reply]. *)
type response =
  | Welcome of { server : string }
  | Accepted of { id : int }
  | Chunk of { id : int; answers : int list }
  | End of { id : int }
  | Error of { id : int; message : string }
  | Overloaded of { id : int }
  | Stats_reply of (string * int) list

type t = Request of request | Response of response

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Hard ceiling on the body length the decoder will buffer (1 MiB);
    encoders refuse to produce larger frames. *)
val default_max_frame : int

(** Serialize a frame (length prefix included).
    @raise Invalid_argument when the body exceeds [max_frame]. *)
val to_bytes : ?max_frame:int -> t -> Bytes.t

(** {1 Incremental decoding} *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder

(** Append [len] bytes of [b] starting at [off] to the pending input. *)
val feed : decoder -> Bytes.t -> int -> int -> unit

(** Pop the next complete frame; [None] means the pending bytes end
    mid-frame (feed more).  The decoder never inspects bytes past the
    frame it returns.
    @raise Corrupt on malformed input (decoder poisoned thereafter). *)
val next : decoder -> t option

(** Bytes fed but not yet consumed as frames. *)
val buffered : decoder -> int

(** Planted-bug switch for the codec fuzz canary: armed at startup by
    [DOLX_FUZZ_PLANT_BUG=frame], it makes the decoder silently drop the
    last answer of any multi-answer [Chunk] — the kind of off-by-one a
    round-trip fuzzer must catch.  Tests may toggle the ref. *)
val planted_bug : bool ref
