(** The blocking server loop: accepts concurrent sessions on a Unix
    domain socket and maps each session's submits to {!Serve} tickets.

    One thread per session runs a strict request→response loop over the
    {!Frame} grammar.  A client disconnect — clean EOF, a mid-frame
    cut, or a write failing with [EPIPE]/[ECONNRESET] after the client
    was killed — is handled as ticket {!Dolx_serve.Serve.close} for
    every stream the session still holds, so the readers' epoch pins
    release at the next chunk boundary and a dead client can never leak
    a pinned snapshot.

    Shutdown order matters: {!stop} the wire server first (it joins the
    session threads), then shut down the {!Dolx_serve.Serve.t} — a
    session blocked awaiting a chunk needs live workers to drain. *)

module Serve = Dolx_serve.Serve

type t

(** Listen on [path] (an existing socket file is replaced) and start
    the accept thread.  [name] is echoed in [Welcome] frames;
    [fault_plan] injects wire faults into every session's sends (tests
    only).  SIGPIPE is ignored process-wide so a dead peer surfaces as
    an [EPIPE] write error, not a signal. *)
val start :
  ?max_frame:int ->
  ?name:string ->
  ?fault_plan:Conn.fault_plan ->
  Serve.t ->
  path:string ->
  t

val path : t -> string

(** Sessions currently connected. *)
val sessions : t -> int

(** Total sessions ever accepted. *)
val accepted : t -> int

(** Sessions that ended with a disconnect (EOF / cut / reset) rather
    than a clean last request. *)
val disconnects : t -> int

(** Stop accepting, cut every live session, join all threads, and
    remove the socket file.  Idempotent. *)
val stop : t -> unit
