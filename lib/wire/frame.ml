(** Frame codec: length-prefixed binary frames (see frame.mli and
    docs/ARCHITECTURE.md §14 for the grammar).

    Layout: [u32_be body_len | tag:u8 | payload].  Payload atoms are
    LEB128 varints ({!Dolx_util.Varint}) and varint-length-prefixed
    strings.  The decoder validates the length prefix against
    [max_frame] before allocating anything payload-sized, decodes every
    varint with an explicit limit, and requires each body to parse to
    exactly its declared length. *)

module Varint = Dolx_util.Varint
module Engine = Dolx_nok.Engine

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type request =
  | Hello of { client : string }
  | Submit of {
      id : int;
      tenant : string;
      xpath : string;
      semantics : Engine.semantics;
    }
  | Next of { id : int }
  | Close of { id : int }
  | Stats

type response =
  | Welcome of { server : string }
  | Accepted of { id : int }
  | Chunk of { id : int; answers : int list }
  | End of { id : int }
  | Error of { id : int; message : string }
  | Overloaded of { id : int }
  | Stats_reply of (string * int) list

type t = Request of request | Response of response

let equal (a : t) (b : t) = a = b

let default_max_frame = 1 lsl 20

(* Armed only via DOLX_FUZZ_PLANT_BUG=frame; tests may toggle the ref. *)
let planted_bug = ref (Sys.getenv_opt "DOLX_FUZZ_PLANT_BUG" = Some "frame")

(* --- tags --- *)

let tag_hello = 0x01
and tag_submit = 0x02
and tag_next = 0x03
and tag_close = 0x04
and tag_stats = 0x05

let tag_welcome = 0x81
and tag_accepted = 0x82
and tag_chunk = 0x83
and tag_end = 0x84
and tag_error = 0x85
and tag_overloaded = 0x86
and tag_stats_reply = 0x87

(* --- encoding --- *)

let add_varint buf x =
  let scratch = Bytes.create Varint.max_len in
  let n = Varint.write scratch 0 x in
  Buffer.add_subbytes buf scratch 0 n

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_semantics buf = function
  | Engine.Insecure -> add_varint buf 0
  | Engine.Secure s ->
      add_varint buf 1;
      add_varint buf s
  | Engine.Secure_path s ->
      add_varint buf 2;
      add_varint buf s

let encode_body buf = function
  | Request (Hello { client }) ->
      Buffer.add_char buf (Char.chr tag_hello);
      add_string buf client
  | Request (Submit { id; tenant; xpath; semantics }) ->
      Buffer.add_char buf (Char.chr tag_submit);
      add_varint buf id;
      add_string buf tenant;
      add_string buf xpath;
      add_semantics buf semantics
  | Request (Next { id }) ->
      Buffer.add_char buf (Char.chr tag_next);
      add_varint buf id
  | Request (Close { id }) ->
      Buffer.add_char buf (Char.chr tag_close);
      add_varint buf id
  | Request Stats -> Buffer.add_char buf (Char.chr tag_stats)
  | Response (Welcome { server }) ->
      Buffer.add_char buf (Char.chr tag_welcome);
      add_string buf server
  | Response (Accepted { id }) ->
      Buffer.add_char buf (Char.chr tag_accepted);
      add_varint buf id
  | Response (Chunk { id; answers }) ->
      Buffer.add_char buf (Char.chr tag_chunk);
      add_varint buf id;
      add_varint buf (List.length answers);
      List.iter (add_varint buf) answers
  | Response (End { id }) ->
      Buffer.add_char buf (Char.chr tag_end);
      add_varint buf id
  | Response (Error { id; message }) ->
      Buffer.add_char buf (Char.chr tag_error);
      add_varint buf id;
      add_string buf message
  | Response (Overloaded { id }) ->
      Buffer.add_char buf (Char.chr tag_overloaded);
      add_varint buf id
  | Response (Stats_reply kvs) ->
      Buffer.add_char buf (Char.chr tag_stats_reply);
      add_varint buf (List.length kvs);
      List.iter
        (fun (k, v) ->
          add_string buf k;
          add_varint buf v)
        kvs

let to_bytes ?(max_frame = default_max_frame) frame =
  let body = Buffer.create 64 in
  encode_body body frame;
  let len = Buffer.length body in
  if len < 1 || len > max_frame then
    invalid_arg
      (Printf.sprintf "Frame.to_bytes: body of %d bytes exceeds max_frame %d"
         len max_frame);
  let out = Bytes.create (4 + len) in
  Bytes.set_int32_be out 0 (Int32.of_int len);
  Bytes.blit (Buffer.to_bytes body) 0 out 4 len;
  out

(* --- decoding --- *)

type decoder = {
  mutable data : Bytes.t;  (* pending input: [start, start + len) *)
  mutable start : int;
  mutable len : int;
  mutable poisoned : bool;
  max_frame : int;
}

let decoder ?(max_frame = default_max_frame) () =
  { data = Bytes.create 256; start = 0; len = 0; poisoned = false; max_frame }

let buffered d = d.len

let feed d src off n =
  if off < 0 || n < 0 || off + n > Bytes.length src then
    invalid_arg "Frame.feed: bad slice";
  if d.start + d.len + n > Bytes.length d.data then begin
    (* compact, then grow if still needed *)
    Bytes.blit d.data d.start d.data 0 d.len;
    d.start <- 0;
    if d.len + n > Bytes.length d.data then begin
      let cap = max (d.len + n) (2 * Bytes.length d.data) in
      let bigger = Bytes.create cap in
      Bytes.blit d.data 0 bigger 0 d.len;
      d.data <- bigger
    end
  end;
  Bytes.blit src off d.data (d.start + d.len) n;
  d.len <- d.len + n

(* Body readers: [pos] advances inside [lo, limit); everything is
   bounds-checked against [limit] so a decoder can never touch bytes
   beyond the frame it was asked to parse. *)

let read_varint d pos ~limit =
  match Varint.read_opt d.data ~pos:!pos ~limit with
  | None -> corrupt "truncated or overlong varint in frame body"
  | Some (v, pos') ->
      pos := pos';
      v

let read_string d pos ~limit =
  let n = read_varint d pos ~limit in
  (* subtraction form: [!pos + n] could overflow for n near max_int *)
  if n < 0 || n > limit - !pos then corrupt "string runs past the frame body";
  let s = Bytes.sub_string d.data !pos n in
  pos := !pos + n;
  s

let read_semantics d pos ~limit =
  match read_varint d pos ~limit with
  | 0 -> Engine.Insecure
  | 1 -> Engine.Secure (read_varint d pos ~limit)
  | 2 -> Engine.Secure_path (read_varint d pos ~limit)
  | k -> corrupt "unknown semantics tag %d" k

let decode_body d lo ~limit =
  let pos = ref lo in
  let tag = Char.code (Bytes.get d.data !pos) in
  incr pos;
  let varint () = read_varint d pos ~limit in
  let string () = read_string d pos ~limit in
  let frame =
    if tag = tag_hello then Request (Hello { client = string () })
    else if tag = tag_submit then
      let id = varint () in
      let tenant = string () in
      let xpath = string () in
      let semantics = read_semantics d pos ~limit in
      Request (Submit { id; tenant; xpath; semantics })
    else if tag = tag_next then Request (Next { id = varint () })
    else if tag = tag_close then Request (Close { id = varint () })
    else if tag = tag_stats then Request Stats
    else if tag = tag_welcome then Response (Welcome { server = string () })
    else if tag = tag_accepted then Response (Accepted { id = varint () })
    else if tag = tag_chunk then begin
      let id = varint () in
      let n = varint () in
      (* each answer is >= 1 byte, so a count beyond the remaining body
         cannot be legal: reject before allocating the list *)
      if n > limit - !pos then corrupt "chunk count %d exceeds frame body" n;
      (* explicit loop: List.init's evaluation order is unspecified *)
      let answers = ref [] in
      for _ = 1 to n do
        answers := varint () :: !answers
      done;
      let answers = List.rev !answers in
      let answers =
        if !planted_bug && n > 1 then List.filteri (fun i _ -> i < n - 1) answers
        else answers
      in
      Response (Chunk { id; answers })
    end
    else if tag = tag_end then Response (End { id = varint () })
    else if tag = tag_error then
      let id = varint () in
      Response (Error { id; message = string () })
    else if tag = tag_overloaded then Response (Overloaded { id = varint () })
    else if tag = tag_stats_reply then begin
      let n = varint () in
      if n > (limit - !pos) / 2 then
        corrupt "stats count %d exceeds frame body" n;
      let kvs = ref [] in
      for _ = 1 to n do
        let k = string () in
        let v = varint () in
        kvs := (k, v) :: !kvs
      done;
      Response (Stats_reply (List.rev !kvs))
    end
    else corrupt "unknown frame tag 0x%02x" tag
  in
  if !pos <> limit then
    corrupt "%d trailing bytes after frame payload" (limit - !pos);
  frame

let next d =
  if d.poisoned then corrupt "decoder poisoned by earlier corrupt input";
  if d.len < 4 then None
  else begin
    let body_len = Int32.to_int (Bytes.get_int32_be d.data d.start) in
    (* check the declared length before any allocation sized by it: a
       negative (sign-bit set) or oversized prefix is rejected here *)
    if body_len < 1 || body_len > d.max_frame then begin
      d.poisoned <- true;
      corrupt "frame length %d outside [1, %d]" body_len d.max_frame
    end;
    if d.len < 4 + body_len then None
    else begin
      let lo = d.start + 4 in
      match decode_body d lo ~limit:(lo + body_len) with
      | frame ->
          d.start <- d.start + 4 + body_len;
          d.len <- d.len - (4 + body_len);
          if d.len = 0 then d.start <- 0;
          Some frame
      | exception (Corrupt _ as e) ->
          d.poisoned <- true;
          raise e
    end
  end

(* --- printing --- *)

let semantics_name = function
  | Engine.Insecure -> "insecure"
  | Engine.Secure s -> Printf.sprintf "secure:%d" s
  | Engine.Secure_path s -> Printf.sprintf "secure-path:%d" s

let pp ppf = function
  | Request (Hello { client }) -> Format.fprintf ppf "hello(%s)" client
  | Request (Submit { id; tenant; xpath; semantics }) ->
      Format.fprintf ppf "submit(#%d %s %S %s)" id tenant xpath
        (semantics_name semantics)
  | Request (Next { id }) -> Format.fprintf ppf "next(#%d)" id
  | Request (Close { id }) -> Format.fprintf ppf "close(#%d)" id
  | Request Stats -> Format.fprintf ppf "stats"
  | Response (Welcome { server }) -> Format.fprintf ppf "welcome(%s)" server
  | Response (Accepted { id }) -> Format.fprintf ppf "accepted(#%d)" id
  | Response (Chunk { id; answers }) ->
      Format.fprintf ppf "chunk(#%d %d answers)" id (List.length answers)
  | Response (End { id }) -> Format.fprintf ppf "end(#%d)" id
  | Response (Error { id; message }) ->
      Format.fprintf ppf "error(#%d %S)" id message
  | Response (Overloaded { id }) -> Format.fprintf ppf "overloaded(#%d)" id
  | Response (Stats_reply kvs) ->
      Format.fprintf ppf "stats-reply(%d keys)" (List.length kvs)
