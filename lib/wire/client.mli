(** Client side of the wire protocol: a blocking connection to a
    {!Server} socket, with remote streams mirroring the
    {!Dolx_serve.Serve} ticket surface ([submit] / [next_chunk] /
    [collect] / [close_stream]).

    One request is in flight at a time per connection; interleave
    several streams by alternating their [next_chunk] calls. *)

module Engine = Dolx_nok.Engine

(** The server reported a failure for this request (worker-side
    evaluation error, unknown tenant, protocol violation). *)
exception Server_error of string

type t

(** Connect to the socket at [path] and perform the hello exchange.
    [retry_for] (seconds, default 0) keeps retrying while the socket
    does not exist yet or refuses — for clients racing a server that is
    still starting up. *)
val connect :
  ?retry_for:float -> ?max_frame:int -> ?client:string -> string -> t

(** The name the server sent in its [Welcome]. *)
val server_name : t -> string

(** Close the connection.  Open streams are implicitly abandoned — the
    server closes their tickets on seeing the disconnect. *)
val close : t -> unit

(** Slam the connection shut with no goodbye, mid-anything — what a
    killed client process looks like to the server. *)
val abort : t -> unit

(** {1 Streams} *)

type stream

(** Submit a query; returns once the server acknowledges it.
    @raise Dolx_serve.Serve.Overloaded when the server shed it.
    @raise Server_error on an immediate server-side failure. *)
val submit : t -> tenant:string -> string -> Engine.semantics -> stream

(** Pull the next chunk; [[]] means the stream completed.
    @raise Server_error when the query failed worker-side. *)
val next_chunk : stream -> int list

(** Drain to a single answer list. *)
val collect : stream -> int list

(** Tell the server to cancel the stream (its reader pin releases at
    the next chunk boundary).  Idempotent. *)
val close_stream : stream -> unit

(** {1 Introspection} *)

(** Server statistics (key/value) via a [Stats] request. *)
val stats : t -> (string * int) list
