(** Framed connection over an fd; see conn.mli. *)

module Prng = Dolx_util.Prng
module Metrics = Dolx_obs.Metrics

exception Closed of { mid_frame : bool }

let c_frames_out = Metrics.counter "wire.frames_out"

let c_frames_in = Metrics.counter "wire.frames_in"

let c_faults = Metrics.counter "wire.injected_faults"

type fault_plan = {
  fault_prng : Prng.t;
  short_write_p : float;
  torn_frame_p : float;
  reset_p : float;
}

let fault_plan ?(short_write_p = 0.0) ?(torn_frame_p = 0.0) ?(reset_p = 0.0)
    prng =
  { fault_prng = prng; short_write_p; torn_frame_p; reset_p }

type t = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  max_frame : int;
  rbuf : Bytes.t;
  m : Mutex.t;  (* serializes sends; recv is owned by one thread *)
  mutable plan : fault_plan option;
  mutable closed : bool;
  mutable short_writes : int;
  mutable torn_frames : int;
  mutable resets : int;
}

let of_fd ?(max_frame = Frame.default_max_frame) fd =
  {
    fd;
    dec = Frame.decoder ~max_frame ();
    max_frame;
    rbuf = Bytes.create 4096;
    m = Mutex.create ();
    plan = None;
    closed = false;
    short_writes = 0;
    torn_frames = 0;
    resets = 0;
  }

let set_fault_plan t plan = t.plan <- plan

let short_writes t = t.short_writes

let torn_frames t = t.torn_frames

let resets t = t.resets

let shutdown t =
  if not t.closed then
    try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let abort t = close t

(* A write error means the peer vanished (the reader will also see it);
   surface every flavor as Closed. *)
let rec write_or_closed t buf off len =
  match Unix.write t.fd buf off len with
  | n -> n
  | exception Unix.Unix_error (EINTR, _, _) -> write_or_closed t buf off len
  | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN), _, _)
    ->
      raise (Closed { mid_frame = false })

let rec write_all t buf off len =
  if len > 0 then begin
    let n = write_or_closed t buf off len in
    write_all t buf (off + n) (len - n)
  end

(* Dribble the frame a few bytes at a time — exercises the peer's
   reassembly of short reads without changing the byte stream. *)
let write_dribbled t prng buf len =
  let off = ref 0 in
  while !off < len do
    let n = min (Prng.int_in prng 1 7) (len - !off) in
    write_all t buf !off n;
    off := !off + n
  done

let send t frame =
  if t.closed then raise (Closed { mid_frame = false });
  let buf = Frame.to_bytes ~max_frame:t.max_frame frame in
  let len = Bytes.length buf in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      match t.plan with
      | Some p when Prng.bool p.fault_prng ~p:p.reset_p ->
          (* abrupt reset: the peer sees the cut with no partial frame *)
          t.resets <- t.resets + 1;
          Metrics.incr c_faults;
          close t;
          raise (Closed { mid_frame = false })
      | Some p when len > 1 && Prng.bool p.fault_prng ~p:p.torn_frame_p ->
          (* torn frame: a strict prefix reaches the peer, then the cut *)
          let cut = Prng.int_in p.fault_prng 1 (len - 1) in
          t.torn_frames <- t.torn_frames + 1;
          Metrics.incr c_faults;
          write_all t buf 0 cut;
          close t;
          raise (Closed { mid_frame = false })
      | Some p when Prng.bool p.fault_prng ~p:p.short_write_p ->
          t.short_writes <- t.short_writes + 1;
          Metrics.incr c_faults;
          write_dribbled t p.fault_prng buf len;
          Metrics.incr c_frames_out
      | _ ->
          write_all t buf 0 len;
          Metrics.incr c_frames_out)

let rec recv t =
  match Frame.next t.dec with
  | Some frame ->
      Metrics.incr c_frames_in;
      frame
  | None ->
      let rec read_retrying () =
        match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
        | n -> n
        | exception Unix.Unix_error (EINTR, _, _) -> read_retrying ()
        | exception
            Unix.Unix_error ((ECONNRESET | EBADF | ENOTCONN | EPIPE), _, _)
          ->
            0
      in
      let n = if t.closed then 0 else read_retrying () in
      if n = 0 then raise (Closed { mid_frame = Frame.buffered t.dec > 0 })
      else begin
        Frame.feed t.dec t.rbuf 0 n;
        recv t
      end
