(** A framed connection over a file descriptor: blocking send/recv of
    {!Frame.t} values with partial-write handling, plus a modeled fault
    layer in the {!Dolx_storage.Disk} idiom — a PRNG-driven
    {!fault_plan} injects short writes (frames dribbled a few bytes at
    a time), torn frames (the connection cut after a random prefix of a
    frame) and abrupt resets, so the peer's reassembly and
    disconnect-handling paths can be exercised deterministically. *)

(** The peer is gone: EOF, [EPIPE], [ECONNRESET], or an injected tear /
    reset.  [mid_frame] is true when the cut left a partial frame in
    the receive buffer. *)
exception Closed of { mid_frame : bool }

(** A reproducible failure schedule; all probabilities are per-frame
    and drawn from [fault_prng].  Defaults (all 0) inject nothing. *)
type fault_plan = {
  fault_prng : Dolx_util.Prng.t;
  short_write_p : float;  (** per send: dribble the frame 1–7 bytes at a time *)
  torn_frame_p : float;  (** per send: write a strict prefix, then cut *)
  reset_p : float;  (** per send: cut the connection before writing *)
}

val fault_plan :
  ?short_write_p:float ->
  ?torn_frame_p:float ->
  ?reset_p:float ->
  Dolx_util.Prng.t ->
  fault_plan

type t

val of_fd : ?max_frame:int -> Unix.file_descr -> t

val set_fault_plan : t -> fault_plan option -> unit

(** Counters of injected faults on this connection. *)
val short_writes : t -> int

val torn_frames : t -> int

val resets : t -> int

(** Serialize and write one frame, honoring the fault plan.
    @raise Closed when the peer is gone (or a tear/reset fired). *)
val send : t -> Frame.t -> unit

(** Block for the next complete frame.
    @raise Closed on EOF ([mid_frame] reports a mid-frame cut).
    @raise Frame.Corrupt on undecodable input. *)
val recv : t -> Frame.t

(** Wake the peer-facing half: [shutdown(2)] both directions so a
    thread blocked in {!recv} on this connection sees EOF.  Unlike
    {!close} this is safe to call from another thread — the descriptor
    stays valid until its owner closes it. *)
val shutdown : t -> unit

(** Close the descriptor (idempotent).  Only the thread that owns the
    connection should call this; cross-thread teardown uses
    {!shutdown}. *)
val close : t -> unit

(** Close abruptly without any protocol goodbye — what a killed client
    looks like to the peer. *)
val abort : t -> unit
