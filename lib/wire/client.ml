(** Wire client; see client.mli. *)

module Engine = Dolx_nok.Engine
module Serve = Dolx_serve.Serve

exception Server_error of string

type t = {
  conn : Conn.t;
  m : Mutex.t;  (* serializes request/response exchanges *)
  mutable name : string;
  mutable next_id : int;
}

type stream = { cl : t; id : int; mutable finished : bool }

(* One request, one response: send, then block for the reply.  The
   protocol is strictly alternating per connection, so the next frame
   is always the answer to [req].  [mk_req] runs under the mutex so any
   per-connection state it reads (e.g. next_id) is race-free. *)
let exchange_with t mk_req =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      let req = mk_req () in
      Conn.send t.conn (Frame.Request req);
      match Conn.recv t.conn with
      | Frame.Response resp -> resp
      | Frame.Request _ ->
          raise (Server_error "protocol violation: server sent a request"))

let exchange t req = exchange_with t (fun () -> req)

let connect ?(retry_for = 0.0) ?max_frame ?(client = "dolx-client") path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec dial () =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        dial ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  let t =
    {
      conn = Conn.of_fd ?max_frame (dial ());
      m = Mutex.create ();
      name = "";
      next_id = 0;
    }
  in
  (match exchange t (Frame.Hello { client }) with
  | Frame.Welcome { server } -> t.name <- server
  | resp ->
      Conn.close t.conn;
      raise (Server_error (Format.asprintf "bad hello reply: %a" Frame.pp
                             (Frame.Response resp))));
  t

let server_name t = t.name

let close t = Conn.close t.conn

let abort t = Conn.close t.conn

let submit t ~tenant xpath semantics =
  let id = ref (-1) in
  let resp =
    exchange_with t (fun () ->
        id := t.next_id;
        t.next_id <- !id + 1;
        Frame.Submit { id = !id; tenant; xpath; semantics })
  in
  let id = !id in
  match resp with
  | Frame.Accepted { id = id' } when id' = id -> { cl = t; id; finished = false }
  | Frame.Overloaded { id = id' } when id' = id -> raise Serve.Overloaded
  | Frame.Error { id = id'; message } when id' = id -> raise (Server_error message)
  | resp ->
      raise
        (Server_error
           (Format.asprintf "unexpected submit reply: %a" Frame.pp
              (Frame.Response resp)))

let next_chunk st =
  if st.finished then []
  else
    match exchange st.cl (Frame.Next { id = st.id }) with
    | Frame.Chunk { id; answers } when id = st.id -> answers
    | Frame.End { id } when id = st.id ->
        st.finished <- true;
        []
    | Frame.Error { id; message } when id = st.id ->
        st.finished <- true;
        raise (Server_error message)
    | resp ->
        raise
          (Server_error
             (Format.asprintf "unexpected next reply: %a" Frame.pp
                (Frame.Response resp)))

let collect st =
  let rec go acc =
    match next_chunk st with
    | [] -> List.concat (List.rev acc)
    | chunk -> go (chunk :: acc)
  in
  go []

let close_stream st =
  if not st.finished then begin
    st.finished <- true;
    match exchange st.cl (Frame.Close { id = st.id }) with
    | Frame.End _ -> ()
    | resp ->
        raise
          (Server_error
             (Format.asprintf "unexpected close reply: %a" Frame.pp
                (Frame.Response resp)))
  end

let stats t =
  match exchange t Frame.Stats with
  | Frame.Stats_reply kvs -> kvs
  | resp ->
      raise
        (Server_error
           (Format.asprintf "unexpected stats reply: %a" Frame.pp
              (Frame.Response resp)))
