(** Wire server: session threads bridging socket frames to Serve
    tickets; see server.mli. *)

module Serve = Dolx_serve.Serve
module Metrics = Dolx_obs.Metrics

let c_sessions = Metrics.counter "wire.sessions"

let c_disconnects = Metrics.counter "wire.disconnects"

let c_protocol_errors = Metrics.counter "wire.protocol_errors"

type session = { ss_conn : Conn.t; ss_thread : Thread.t }

type t = {
  srv : Serve.t;
  listen_fd : Unix.file_descr;
  sock_path : string;
  server_name : string;
  max_frame : int;
  fault_plan : Conn.fault_plan option;
  m : Mutex.t;
  live : (int, session) Hashtbl.t;
  mutable next_session : int;
  mutable accepted : int;
  mutable disconnects : int;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
}

let path t = t.sock_path

let sessions t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.live in
  Mutex.unlock t.m;
  n

let accepted t =
  Mutex.lock t.m;
  let n = t.accepted in
  Mutex.unlock t.m;
  n

let disconnects t =
  Mutex.lock t.m;
  let n = t.disconnects in
  Mutex.unlock t.m;
  n

let stats_reply t =
  let s = Serve.stats t.srv in
  Frame.Stats_reply
    [
      ("served", s.Serve.served);
      ("shed", s.Serve.shed);
      ("queued", s.Serve.queued);
      ("pinned_readers", s.Serve.pinned_readers);
      ("open_shards", s.Serve.open_shards);
      ("peak_buffered", s.Serve.peak_buffered);
      ("sessions", Hashtbl.length t.live);
      ("accepted", t.accepted);
      ("disconnects", t.disconnects);
    ]

(* One request, one response.  Submit errors (unknown tenant, admission
   shed) are reported on the stream id; a worker-side evaluation error
   surfaces at the Next that would have pulled past it. *)
let handle_request t tickets = function
  | Frame.Hello { client = _ } ->
      Frame.Response (Frame.Welcome { server = t.server_name })
  | Frame.Submit { id; tenant; xpath; semantics } ->
      if Hashtbl.mem tickets id then
        Frame.Response
          (Frame.Error { id; message = "stream id already in use" })
      else begin
        match Serve.submit t.srv ~tenant xpath semantics with
        | tk ->
            Hashtbl.replace tickets id tk;
            Frame.Response (Frame.Accepted { id })
        | exception Serve.Overloaded ->
            Frame.Response (Frame.Overloaded { id })
        | exception e ->
            Frame.Response (Frame.Error { id; message = Printexc.to_string e })
      end
  | Frame.Next { id } -> (
      match Hashtbl.find_opt tickets id with
      | None -> Frame.Response (Frame.Error { id; message = "unknown stream id" })
      | Some tk -> (
          match Serve.next_chunk tk with
          | [] ->
              Hashtbl.remove tickets id;
              Frame.Response (Frame.End { id })
          | answers -> Frame.Response (Frame.Chunk { id; answers })
          | exception e ->
              Hashtbl.remove tickets id;
              Frame.Response (Frame.Error { id; message = Printexc.to_string e })
          ))
  | Frame.Close { id } ->
      (match Hashtbl.find_opt tickets id with
      | Some tk ->
          Serve.close tk;
          Hashtbl.remove tickets id
      | None -> ());
      Frame.Response (Frame.End { id })
  | Frame.Stats ->
      Mutex.lock t.m;
      let reply = stats_reply t in
      Mutex.unlock t.m;
      Frame.Response reply

let unregister t sid ~disconnected =
  Mutex.lock t.m;
  Hashtbl.remove t.live sid;
  if disconnected then begin
    t.disconnects <- t.disconnects + 1;
    Metrics.incr c_disconnects
  end;
  Mutex.unlock t.m

(* The session loop.  Every exit path — clean EOF, mid-frame cut,
   undecodable input, a write landing on a dead peer — closes all the
   session's tickets, so its readers' epoch pins release at the next
   chunk boundary. *)
let session_loop t sid conn =
  let tickets : (int, Serve.ticket) Hashtbl.t = Hashtbl.create 8 in
  let disconnected = ref false in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter (fun _ tk -> Serve.close tk) tickets;
      Conn.close conn;
      unregister t sid ~disconnected:!disconnected)
    (fun () ->
      try
        let rec loop () =
          match Conn.recv conn with
          | Frame.Request req ->
              Conn.send conn (handle_request t tickets req);
              loop ()
          | Frame.Response _ ->
              (* a client must never send response frames *)
              Metrics.incr c_protocol_errors;
              disconnected := true
        in
        loop ()
      with
      | Conn.Closed _ -> disconnected := true
      | Frame.Corrupt _ ->
          Metrics.incr c_protocol_errors;
          disconnected := true
      | _ ->
          (* anything else (codec bug, stray Unix_error) still counts as
             a protocol error and must not skip ticket/fd cleanup *)
          Metrics.incr c_protocol_errors;
          disconnected := true)

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        let conn = Conn.of_fd ~max_frame:t.max_frame fd in
        Conn.set_fault_plan conn t.fault_plan;
        Mutex.lock t.m;
        if t.stopping then begin
          Mutex.unlock t.m;
          Conn.close conn
        end
        else begin
          let sid = t.next_session in
          t.next_session <- sid + 1;
          t.accepted <- t.accepted + 1;
          Metrics.incr c_sessions;
          let thread = Thread.create (fun () -> session_loop t sid conn) () in
          Hashtbl.replace t.live sid { ss_conn = conn; ss_thread = thread };
          Mutex.unlock t.m
        end;
        loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
        (* listener closed by stop *)
        ()
  in
  loop ()

let start ?(max_frame = Frame.default_max_frame) ?(name = "dolx")
    ?fault_plan srv ~path =
  (* a dead peer must surface as an EPIPE write error, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (ADDR_UNIX path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      srv;
      listen_fd;
      sock_path = path;
      server_name = name;
      max_frame;
      fault_plan;
      m = Mutex.create ();
      live = Hashtbl.create 16;
      next_session = 0;
      accepted = 0;
      disconnects = 0;
      stopping = false;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  Mutex.lock t.m;
  if t.stopping then Mutex.unlock t.m
  else begin
    t.stopping <- true;
    Mutex.unlock t.m;
    (* shutdown(2) the listener — it wakes a thread blocked in accept(2)
       (returning EINVAL), which plain close does not — then reap the
       accept thread and release the fd *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    t.accept_thread <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* cut every live session with shutdown(2) — it wakes a thread
       blocked in read, which plain close does not; each session loop
       then sees Closed, closes its tickets, closes its own fd and
       unregisters itself *)
    Mutex.lock t.m;
    let live = Hashtbl.fold (fun _ s acc -> s :: acc) t.live [] in
    Mutex.unlock t.m;
    List.iter (fun s -> Conn.shutdown s.ss_conn) live;
    List.iter (fun s -> Thread.join s.ss_thread) live;
    if Sys.file_exists t.sock_path then
      try Unix.unlink t.sock_path with Unix.Unix_error _ -> ()
  end
