(** Multi-tenant streaming query service.

    A {!t} owns a fixed pool of worker domains, a registry of tenant
    shards, and per-tenant FIFO queues drained by stride-based weighted
    fair queuing.  Clients submit XPath queries and receive a {!ticket}
    — a bounded stream of answer chunks with backpressure: the worker
    evaluating the query blocks once [buffer_chunks] chunks are waiting,
    so per-query buffered-result memory stays bounded no matter how
    large the answer set or how slow the consumer.

    Isolation and lifecycle:

    - each query runs on its own {!Secure_store.reader} over the
      tenant's shard — an epoch-pinned snapshot, so concurrent writers
      never leak in-flight updates into a running stream; the pin is
      released when the stream is drained, {!close}d early, or fails;
    - tenant shards backed by a {!Db_file} are opened on demand and
      evicted least-recently-used beyond [shard_cap] (only when no
      query holds a reader on them), so serving many tenants does not
      keep every store resident;
    - admission control bounds the total queued work: past [max_queued]
      a {!submit} is shed with {!Overloaded} — never silently dropped.

    Locking: [t.m] guards the scheduler and shard registry; each ticket
    has its own mutex.  A domain never holds both at once — workers
    dequeue under [t.m], release it, then produce under the ticket's
    lock — so a stalled consumer can never wedge the scheduler. *)

module Store = Dolx_core.Secure_store
module Db_file = Dolx_core.Db_file
module Tag_index = Dolx_index.Tag_index
module Engine = Dolx_nok.Engine
module Xpath = Dolx_nok.Xpath
module Metrics = Dolx_obs.Metrics

exception Overloaded

let c_submitted = Metrics.counter "serve.submitted"

let c_served = Metrics.counter "serve.served"

let c_shed = Metrics.counter "serve.shed"

let c_shard_opens = Metrics.counter "serve.shard_opens"

let c_shard_evictions = Metrics.counter "serve.shard_evictions"

(** {1 Tickets} *)

type ticket = {
  tk_m : Mutex.t;
  tk_c : Condition.t;
  tk_chunks : int list Queue.t;
  tk_buffer_chunks : int;       (* producer blocks past this many *)
  mutable tk_closed : bool;     (* consumer cancelled *)
  mutable tk_finished : bool;   (* producer pushed its last chunk *)
  mutable tk_released : bool;   (* worker fully done: reader released *)
  mutable tk_error : exn option;
  mutable tk_emitted : int;
  mutable tk_peak : int;        (* stream high-water of buffered answers *)
  mutable tk_seq : int;         (* completion order stamp, -1 while open *)
}

let make_ticket buffer_chunks =
  {
    tk_m = Mutex.create ();
    tk_c = Condition.create ();
    tk_chunks = Queue.create ();
    tk_buffer_chunks = buffer_chunks;
    tk_closed = false;
    tk_finished = false;
    tk_released = false;
    tk_error = None;
    tk_emitted = 0;
    tk_peak = 0;
    tk_seq = -1;
  }

(* Producer side: push one chunk, honoring backpressure.  Returns
   [false] when the consumer closed the ticket — the worker should stop
   evaluating. *)
let ticket_push tk chunk =
  Mutex.lock tk.tk_m;
  while
    (not tk.tk_closed) && Queue.length tk.tk_chunks >= tk.tk_buffer_chunks
  do
    Condition.wait tk.tk_c tk.tk_m
  done;
  let alive = not tk.tk_closed in
  if alive then begin
    Queue.add chunk tk.tk_chunks;
    tk.tk_emitted <- tk.tk_emitted + List.length chunk;
    Condition.broadcast tk.tk_c
  end;
  Mutex.unlock tk.tk_m;
  alive

(* Producer side: terminal transition.  Buffered chunks stay readable
   (unless the consumer closed first); [next_chunk] drains them and then
   reports end-of-stream or the error. *)
let ticket_finish tk ?error ~peak () =
  Mutex.lock tk.tk_m;
  tk.tk_finished <- true;
  tk.tk_released <- true;
  (match error with Some _ when tk.tk_error = None -> tk.tk_error <- error | _ -> ());
  tk.tk_peak <- max tk.tk_peak peak;
  Condition.broadcast tk.tk_c;
  Mutex.unlock tk.tk_m

let next_chunk tk =
  Mutex.lock tk.tk_m;
  let rec wait () =
    match Queue.take_opt tk.tk_chunks with
    | Some chunk ->
        Condition.broadcast tk.tk_c;
        Mutex.unlock tk.tk_m;
        chunk
    | None ->
        if tk.tk_closed then begin
          Mutex.unlock tk.tk_m;
          invalid_arg "Serve.next_chunk: ticket was closed"
        end
        else if tk.tk_finished then begin
          let err = tk.tk_error in
          Mutex.unlock tk.tk_m;
          match err with Some e -> raise e | None -> []
        end
        else begin
          Condition.wait tk.tk_c tk.tk_m;
          wait ()
        end
  in
  wait ()

let close tk =
  Mutex.lock tk.tk_m;
  if not tk.tk_closed then begin
    tk.tk_closed <- true;
    Queue.clear tk.tk_chunks;
    Condition.broadcast tk.tk_c
  end;
  Mutex.unlock tk.tk_m

(* Wait until the worker has fully let go of the query's resources
   (reader released, stream closed) — or until shutdown does it for a
   job that never ran. *)
let await_release tk =
  Mutex.lock tk.tk_m;
  while not tk.tk_released do
    Condition.wait tk.tk_c tk.tk_m
  done;
  Mutex.unlock tk.tk_m

let collect tk =
  let rec go acc =
    match next_chunk tk with
    | [] -> List.concat (List.rev acc)
    | chunk -> go (chunk :: acc)
  in
  go []

let ticket_emitted tk =
  Mutex.lock tk.tk_m;
  let n = tk.tk_emitted in
  Mutex.unlock tk.tk_m;
  n

let ticket_peak_buffered tk =
  Mutex.lock tk.tk_m;
  let n = tk.tk_peak in
  Mutex.unlock tk.tk_m;
  n

let completion_seq tk =
  Mutex.lock tk.tk_m;
  let s = tk.tk_seq in
  Mutex.unlock tk.tk_m;
  s

(** {1 Shard registry} *)

type shard_source =
  | Mem of Store.t * Tag_index.t
  | Db of string  (* Db_file path, opened on demand *)

type shard = {
  sh_source : shard_source;
  mutable sh_open : (Store.t * Tag_index.t) option;
  mutable sh_refs : int;      (* queries holding a reader on this shard *)
  mutable sh_last_use : int;  (* registry clock stamp *)
}

(** {1 Scheduler} *)

type job = {
  jb_xpath : string;
  jb_semantics : Engine.semantics;
  jb_tenant : string;
  jb_ticket : ticket;
}

type tenant = {
  tn_name : string;
  tn_weight : float;
  mutable tn_pass : float;  (* stride virtual time *)
  tn_jobs : job Queue.t;
  tn_shard : shard;
  mutable tn_served : int;
}

type t = {
  m : Mutex.t;
  work : Condition.t;
  tenants : (string, tenant) Hashtbl.t;
  chunk : int;
  buffer_chunks : int;
  max_queued : int;
  shard_cap : int;
  mutable clock : int;        (* shard LRU stamps *)
  mutable queued : int;       (* jobs accepted, not yet picked *)
  mutable vclock : float;     (* max pass ever dispatched *)
  mutable seq : int;          (* completion order counter *)
  mutable served : int;
  mutable shed : int;
  mutable shard_opens : int;
  mutable shard_evictions : int;
  mutable peak_buffered : int; (* max stream high-water across queries *)
  mutable running : ticket list; (* in-flight queries, for shutdown *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let open_shards t =
  Hashtbl.fold (fun _ tn n -> if tn.tn_shard.sh_open <> None then n + 1 else n)
    t.tenants 0

(* Called under [t.m].  Opens the shard if needed, bumps its refcount
   and LRU stamp, and evicts idle Db-backed shards beyond the cap.
   Mem shards count toward nothing and are never evicted — their
   lifetime belongs to the caller. *)
let acquire_shard t tenant =
  let sh = tenant.tn_shard in
  t.clock <- t.clock + 1;
  sh.sh_last_use <- t.clock;
  (match (sh.sh_open, sh.sh_source) with
  | Some _, _ -> ()
  | None, Mem (store, index) -> sh.sh_open <- Some (store, index)
  | None, Db path ->
      let store, _registries = Db_file.load path in
      let index = Tag_index.build (Store.tree store) in
      sh.sh_open <- Some (store, index);
      t.shard_opens <- t.shard_opens + 1;
      Metrics.incr c_shard_opens;
      (* evict LRU idle Db shards beyond the cap *)
      let open_db =
        Hashtbl.fold
          (fun _ tn acc ->
            match (tn.tn_shard.sh_source, tn.tn_shard.sh_open) with
            | Db _, Some _ -> tn.tn_shard :: acc
            | _ -> acc)
          t.tenants []
      in
      let excess = List.length open_db - t.shard_cap in
      if excess > 0 then
        List.to_seq
          (List.sort (fun a b -> compare a.sh_last_use b.sh_last_use) open_db)
        |> Seq.filter (fun s -> s.sh_refs = 0 && s != sh)
        |> Seq.take excess
        |> Seq.iter (fun s ->
               s.sh_open <- None;
               t.shard_evictions <- t.shard_evictions + 1;
               Metrics.incr c_shard_evictions));
  sh.sh_refs <- sh.sh_refs + 1;
  match sh.sh_open with
  | Some (store, index) -> (store, index)
  | None -> assert false

let release_shard t tenant =
  Mutex.lock t.m;
  tenant.tn_shard.sh_refs <- tenant.tn_shard.sh_refs - 1;
  Mutex.unlock t.m

(* Stride scheduling: pick the non-empty tenant queue with the smallest
   pass value (ties broken by name for determinism); advance its pass by
   1/weight.  A tenant going idle and returning re-enters at the current
   virtual clock ([submit] lifts its pass), so sleepers cannot hoard
   credit and flooders cannot starve light tenants: between any two
   picks of a flooding tenant, every backlogged tenant of equal weight
   is picked once. *)
let pick_job t =
  let best =
    Hashtbl.fold
      (fun _ tn acc ->
        if Queue.is_empty tn.tn_jobs then acc
        else
          match acc with
          | Some b
            when (b.tn_pass, b.tn_name) <= (tn.tn_pass, tn.tn_name) ->
              acc
          | _ -> Some tn)
      t.tenants None
  in
  match best with
  | None -> None
  | Some tn ->
      let job = Queue.pop tn.tn_jobs in
      t.queued <- t.queued - 1;
      t.vclock <- Float.max t.vclock tn.tn_pass;
      tn.tn_pass <- tn.tn_pass +. (1.0 /. tn.tn_weight);
      Some (tn, job)

(* Evaluate one job to its ticket.  The reader pin, the stream and the
   ticket are all released on every path — including consumer close,
   evaluation error, and parse error. *)
let run_job t tenant job =
  let tk = job.jb_ticket in
  if tk.tk_closed then begin
    Mutex.lock t.m;
    t.running <- List.filter (fun r -> r != tk) t.running;
    Mutex.unlock t.m;
    ticket_finish tk ~peak:0 ()
  end
  else begin
    Mutex.lock t.m;
    let store, index = acquire_shard t tenant in
    Mutex.unlock t.m;
    let reader = Store.reader store in
    let finished = ref false in
    let finish ?error ~peak () =
      if !finished then ()
      else begin
      finished := true;
      Store.release reader;
      release_shard t tenant;
      Mutex.lock t.m;
      t.running <- List.filter (fun r -> r != tk) t.running;
      t.seq <- t.seq + 1;
      let seq = t.seq in
      (match error with
      | None ->
          t.served <- t.served + 1;
          tenant.tn_served <- tenant.tn_served + 1;
          t.peak_buffered <- max t.peak_buffered peak
      | Some _ -> ());
      Mutex.unlock t.m;
      Mutex.lock tk.tk_m;
      tk.tk_seq <- seq;
      Mutex.unlock tk.tk_m;
      ticket_finish tk ?error ~peak ();
      if error = None then Metrics.incr c_served
      end
    in
    match
      Engine.stream ~chunk:t.chunk reader index
        (Xpath.parse job.jb_xpath) job.jb_semantics
    with
    | exception e -> finish ~error:e ~peak:0 ()
    | stream -> (
        let rec pump () =
          match Engine.stream_next stream with
          | [] -> finish ~peak:(Engine.stream_peak_buffered stream) ()
          | chunk ->
              if ticket_push tk chunk then pump ()
              else begin
                (* consumer closed mid-stream: flush the partial
                   statistics and stop evaluating *)
                Engine.stream_close stream;
                finish ~peak:(Engine.stream_peak_buffered stream) ()
              end
        in
        match pump () with
        | () -> ()
        | exception e ->
            Engine.stream_close stream;
            finish ~error:e ~peak:(Engine.stream_peak_buffered stream) ())
  end

let worker_loop t =
  Mutex.lock t.m;
  let rec next () =
    if t.stop then Mutex.unlock t.m
    else
      match pick_job t with
      | None ->
          Condition.wait t.work t.m;
          next ()
      | Some (tenant, job) ->
          t.running <- job.jb_ticket :: t.running;
          Mutex.unlock t.m;
          run_job t tenant job;
          Mutex.lock t.m;
          next ()
  in
  next ()

(** {1 Service lifecycle} *)

let create ?(jobs = 2) ?(chunk = 256) ?(buffer_chunks = 4) ?(max_queued = 1024)
    ?(shard_cap = 8) () =
  if jobs < 1 then invalid_arg "Serve.create: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Serve.create: chunk must be >= 1";
  if buffer_chunks < 1 then invalid_arg "Serve.create: buffer_chunks must be >= 1";
  if max_queued < 1 then invalid_arg "Serve.create: max_queued must be >= 1";
  if shard_cap < 1 then invalid_arg "Serve.create: shard_cap must be >= 1";
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      tenants = Hashtbl.create 16;
      chunk;
      buffer_chunks;
      max_queued;
      shard_cap;
      clock = 0;
      queued = 0;
      vclock = 0.0;
      seq = 0;
      served = 0;
      shed = 0;
      shard_opens = 0;
      shard_evictions = 0;
      peak_buffered = 0;
      running = [];
      stop = false;
      domains = [||];
    }
  in
  t.domains <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let add_tenant t ?(weight = 1.0) name source =
  if weight <= 0.0 then invalid_arg "Serve.add_tenant: weight must be > 0";
  Mutex.lock t.m;
  if Hashtbl.mem t.tenants name then begin
    Mutex.unlock t.m;
    invalid_arg ("Serve.add_tenant: duplicate tenant " ^ name)
  end;
  Hashtbl.replace t.tenants name
    {
      tn_name = name;
      tn_weight = weight;
      tn_pass = t.vclock;
      tn_jobs = Queue.create ();
      tn_shard = { sh_source = source; sh_open = None; sh_refs = 0; sh_last_use = 0 };
      tn_served = 0;
    };
  Mutex.unlock t.m

let submit t ~tenant xpath semantics =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Serve.submit: service is shut down"
  end;
  match Hashtbl.find_opt t.tenants tenant with
  | None ->
      Mutex.unlock t.m;
      invalid_arg ("Serve.submit: unknown tenant " ^ tenant)
  | Some tn ->
      if t.queued >= t.max_queued then begin
        t.shed <- t.shed + 1;
        Mutex.unlock t.m;
        Metrics.incr c_shed;
        raise Overloaded
      end;
      let tk = make_ticket t.buffer_chunks in
      (* re-entering tenants join at the current virtual time: an idle
         queue's stale pass would otherwise grant it a catch-up burst *)
      if Queue.is_empty tn.tn_jobs then tn.tn_pass <- Float.max tn.tn_pass t.vclock;
      Queue.add
        { jb_xpath = xpath; jb_semantics = semantics; jb_tenant = tenant;
          jb_ticket = tk }
        tn.tn_jobs;
      t.queued <- t.queued + 1;
      Condition.signal t.work;
      Mutex.unlock t.m;
      Metrics.incr c_submitted;
      tk

let shutdown t =
  Mutex.lock t.m;
  if t.stop then Mutex.unlock t.m
  else begin
    t.stop <- true;
    Condition.broadcast t.work;
    let in_flight = t.running in
    Mutex.unlock t.m;
    (* cancel in-flight streams: a worker blocked on a full ticket whose
       consumer went away would otherwise never observe [stop] *)
    List.iter close in_flight;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    (* fail any job still queued — accepted work is never silently
       dropped, even across shutdown *)
    Mutex.lock t.m;
    Hashtbl.iter
      (fun _ tn ->
        Queue.iter
          (fun job ->
            ticket_finish job.jb_ticket
              ~error:(Failure "Serve: shut down before the query ran")
              ~peak:0 ())
          tn.tn_jobs;
        Queue.clear tn.tn_jobs)
      t.tenants;
    t.queued <- 0;
    Mutex.unlock t.m
  end

let with_service ?jobs ?chunk ?buffer_chunks ?max_queued ?shard_cap f =
  let t = create ?jobs ?chunk ?buffer_chunks ?max_queued ?shard_cap () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** {1 Statistics} *)

type stats = {
  served : int;
  shed : int;
  queued : int;
  tenants : (string * int) list;  (* per-tenant served counts *)
  shard_opens : int;
  shard_evictions : int;
  open_shards : int;
  peak_buffered : int;
  pinned_readers : int;
}

(* Epoch pins held across every distinct store the service can reach —
   open shards and resident Mem shards alike (an evicted Db shard has no
   store, hence no pins).  Stores are deduplicated by physical identity:
   several tenants may share one store.  The pin counts are read after
   releasing [t.m] — [Epoch.pin_count] takes the epoch lock, and we
   never hold both. *)
let pinned_readers t =
  Mutex.lock t.m;
  let stores =
    Hashtbl.fold
      (fun _ tn acc ->
        let store =
          match (tn.tn_shard.sh_open, tn.tn_shard.sh_source) with
          | Some (store, _), _ -> Some store
          | None, Mem (store, _) -> Some store
          | None, Db _ -> None
        in
        match store with
        | Some s when not (List.memq s acc) -> s :: acc
        | _ -> acc)
      t.tenants []
  in
  Mutex.unlock t.m;
  List.fold_left
    (fun n s ->
      n + Dolx_storage.Epoch.pin_count (Dolx_storage.Disk.epoch (Store.disk s)))
    0 stores

let stats t =
  Mutex.lock t.m;
  let s =
    {
      served = t.served;
      shed = t.shed;
      queued = t.queued;
      tenants =
        List.sort compare
          (Hashtbl.fold (fun name tn acc -> (name, tn.tn_served) :: acc)
             t.tenants []);
      shard_opens = t.shard_opens;
      shard_evictions = t.shard_evictions;
      open_shards = open_shards t;
      peak_buffered = t.peak_buffered;
      pinned_readers = 0;
    }
  in
  Mutex.unlock t.m;
  { s with pinned_readers = pinned_readers t }
