(** Multi-tenant streaming query service.

    Sessions submit XPath queries for a tenant and pull answers through
    a {!ticket} — a bounded chunk stream with backpressure.  Work is
    drained from per-tenant FIFO queues onto a pool of worker domains by
    stride-based weighted fair queuing; total queued work is bounded by
    admission control ({!Overloaded}); tenant shards backed by a
    {!Dolx_core.Db_file} are opened on demand and LRU-evicted when idle.

    Each in-flight query evaluates on its own epoch-pinned
    {!Dolx_core.Secure_store.reader} via {!Dolx_nok.Engine.stream}, so
    answers come from a consistent snapshot and per-query buffered
    memory is bounded by [chunk * (buffer_chunks + 1)] answers plus the
    stream's document-order reorder margin — never by the result size.

    {b Drain ordering.} Backpressure is real: a worker producing a
    result larger than the ticket buffer blocks until the client
    drains.  A client holding many tickets must therefore drain each
    tenant's tickets in submission order (one session per tenant is the
    natural shape) — that order matches the scheduler's per-tenant FIFO
    dispatch, which guarantees progress.  A single consumer draining
    all tenants' tickets in one fixed global order can stall against
    the weighted-fair dispatch when results exceed the buffer bound;
    {!close} any ticket you abandon instead. *)

module Store = Dolx_core.Secure_store
module Engine = Dolx_nok.Engine

(** Raised by {!submit} when the global queue is at [max_queued]. *)
exception Overloaded

(** {1 Service} *)

type t

(** Where a tenant's data lives: an already-resident store (never
    evicted, lifetime owned by the caller) or a {!Dolx_core.Db_file}
    path (opened on demand, idle handles LRU-evicted past the shard
    cap). *)
type shard_source =
  | Mem of Store.t * Dolx_index.Tag_index.t
  | Db of string

(** [create ()] starts the worker domains.
    - [jobs]: worker domains draining the queues (default 2);
    - [chunk]: answers per stream chunk (default 256);
    - [buffer_chunks]: chunks a ticket buffers before the producing
      worker blocks (default 4);
    - [max_queued]: admission bound on jobs accepted but not yet
      running (default 1024);
    - [shard_cap]: max idle+active [Db]-backed shards kept open
      (default 8).
    @raise Invalid_argument on any parameter < 1. *)
val create :
  ?jobs:int -> ?chunk:int -> ?buffer_chunks:int -> ?max_queued:int ->
  ?shard_cap:int -> unit -> t

(** Register a tenant.  [weight] (default 1.0) sets its fair share:
    a weight-2 tenant is picked twice as often as a weight-1 tenant
    when both are backlogged.
    @raise Invalid_argument on a duplicate name or [weight <= 0]. *)
val add_tenant : t -> ?weight:float -> string -> shard_source -> unit

type ticket

(** Queue a query for a tenant; returns immediately with the ticket.
    @raise Overloaded when the admission bound is hit (the query was
    never accepted).
    @raise Invalid_argument on an unknown tenant or a shut-down
    service.  A malformed XPath query is reported through the ticket
    (the parse runs on the worker), not here. *)
val submit : t -> tenant:string -> string -> Engine.semantics -> ticket

(** Stop accepting work, cancel in-flight streams (as by {!close}),
    join the worker domains, and fail every job still queued with a
    ticket error — accepted work is never silently dropped.
    Idempotent. *)
val shutdown : t -> unit

(** Bracket {!create} / {!shutdown} around [f]. *)
val with_service :
  ?jobs:int -> ?chunk:int -> ?buffer_chunks:int -> ?max_queued:int ->
  ?shard_cap:int -> (t -> 'a) -> 'a

(** {1 Tickets} *)

(** Block for the next chunk of answers (document order, distinct,
    at most [chunk] long).  [[]] means the stream is complete.
    Re-raises the worker-side error (e.g. [Xpath.Parse_error]) if the
    query failed.
    @raise Invalid_argument on a ticket already {!close}d. *)
val next_chunk : ticket -> int list

(** Cancel the stream: discard buffered chunks and tell the producing
    worker to stop.  The worker closes its engine stream and releases
    the reader's epoch pin at the next chunk boundary.  Idempotent. *)
val close : ticket -> unit

(** Drain the ticket to a single answer list. *)
val collect : ticket -> int list

(** Block until the worker has released the query's resources (reader
    pin freed) — what epoch-release tests synchronize on after
    {!close}. *)
val await_release : ticket -> unit

(** Answers pushed into the ticket so far. *)
val ticket_emitted : ticket -> int

(** The engine stream's buffered-answer high-water mark (available
    after the stream finishes). *)
val ticket_peak_buffered : ticket -> int

(** Global completion-order stamp (1-based), or -1 while in flight —
    fairness tests assert on the interleaving. *)
val completion_seq : ticket -> int

(** {1 Statistics} *)

type stats = {
  served : int;                  (* queries completed successfully *)
  shed : int;                    (* submissions refused with Overloaded *)
  queued : int;                  (* accepted, not yet picked *)
  tenants : (string * int) list; (* per-tenant served counts, sorted *)
  shard_opens : int;             (* Db_file loads performed *)
  shard_evictions : int;         (* idle shards dropped past the cap *)
  open_shards : int;             (* currently resident shards *)
  peak_buffered : int;           (* max stream high-water across queries *)
  pinned_readers : int;          (* epoch pins live across all shards *)
}

val stats : t -> stats

(** Epoch pins currently held across every store the service can reach
    (deduplicated by physical identity).  Each in-flight query holds
    exactly one pin from submission pickup until its stream drains,
    fails, or is {!close}d — so after all tickets release, this returns
    to the service's baseline.  The wire layer exposes it so a leaked
    pin after a client disconnect is observable from outside the
    process. *)
val pinned_readers : t -> int
