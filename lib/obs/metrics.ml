(** A dependency-free metrics registry: named counters, gauges and
    log-scale histograms.

    The paper's headline result — ε-NoK secure evaluation costs ≈2% over
    insecure evaluation (§5.2) — is a claim about {e counters}: page
    touches, buffer hits, disk I/Os, access checks.  This registry is the
    one place those counters live, so the CLI, the bench harness and the
    tests all read the same numbers.  The storage and engine modules keep
    their original [stats] records (every existing accessor still works);
    they additionally route each increment through a registry counter, so
    the two views are equal by construction whenever they are reset
    together.

    Cost model: a counter increment is one [bool ref] dereference, one
    branch and one [Atomic.fetch_and_add] — cheap enough to leave enabled
    on the hot path (the [obs] micro-bench bounds the overhead at < 2% on
    the Table-1 query suite).  Disabling a registry reduces every
    instrument to the dereference and branch.

    Concurrency: counters and gauges are [Atomic.t]-backed, so the same
    named cell can be bumped from several domains (the [Dolx_exec] pool)
    without losing increments — the dual-written legacy stats records
    stay per-instance (one owner domain each), and their sums equal the
    registry totals exactly.  Histograms remain single-writer: they back
    span tracing, which only records on the main domain.

    Histograms are log-scale (one bucket per power of two, exponents
    −32…31) with an exact reservoir for the first {!reservoir_cap}
    samples: while the reservoir holds every sample, percentiles are the
    exact {!Dolx_util.Stats.percentile} nearest-rank answer; after that
    they fall back to a bucket walk whose answer is within the bucket's
    factor-of-two resolution. *)

module Stats = Dolx_util.Stats

let reservoir_cap = 512

let n_buckets = 64

(* exponent −32 maps to bucket 0 *)
let exp_bias = 32

type counter = { c_name : string; count : int Atomic.t; c_on : bool ref }

type gauge = { g_name : string; value : float Atomic.t; g_on : bool ref }

type histogram = {
  h_name : string;
  h_on : bool ref;
  buckets : int array; (* counts per power-of-two bucket *)
  mutable zeros : int; (* samples <= 0 *)
  mutable h_count : int;
  mutable dropped : int; (* non-finite observations, never mixed in *)
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  reservoir : float array;
  mutable exact : bool; (* reservoir still holds every sample *)
}

type t = {
  enabled : bool ref;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create ?(enabled = true) () =
  {
    enabled = ref enabled;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

(** The process-wide registry every instrumented module registers in. *)
let default = create ()

let enabled t = !(t.enabled)

let set_enabled t b = t.enabled := b

(** {1 Counters} *)

let counter ?(reg = default) name =
  match Hashtbl.find_opt reg.counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = Atomic.make 0; c_on = reg.enabled } in
      Hashtbl.add reg.counters name c;
      c

let incr c = if !(c.c_on) then Atomic.incr c.count

let add c n = if !(c.c_on) then ignore (Atomic.fetch_and_add c.count n)

let count c = Atomic.get c.count

let counter_name c = c.c_name

let find_counter ?(reg = default) name = Hashtbl.find_opt reg.counters name

(** Current value of counter [name], 0 when it was never registered. *)
let counter_value ?(reg = default) name =
  match Hashtbl.find_opt reg.counters name with
  | Some c -> Atomic.get c.count
  | None -> 0

(** {1 Gauges} *)

let gauge ?(reg = default) name =
  match Hashtbl.find_opt reg.gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; value = Atomic.make 0.0; g_on = reg.enabled } in
      Hashtbl.add reg.gauges name g;
      g

let gauge_set g v = if !(g.g_on) then Atomic.set g.value v

let gauge_add g v =
  if !(g.g_on) then begin
    (* CAS loop: adds from concurrent domains must not be lost *)
    let rec go () =
      let old = Atomic.get g.value in
      if not (Atomic.compare_and_set g.value old (old +. v)) then go ()
    in
    go ()
  end

let gauge_value g = Atomic.get g.value

let gauge_name g = g.g_name

(** {1 Histograms} *)

let histogram ?(reg = default) name =
  match Hashtbl.find_opt reg.histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_on = reg.enabled;
          buckets = Array.make n_buckets 0;
          zeros = 0;
          h_count = 0;
          dropped = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          reservoir = Array.make reservoir_cap 0.0;
          exact = true;
        }
      in
      Hashtbl.add reg.histograms name h;
      h

let histogram_name h = h.h_name

(* Bucket index for a strictly positive finite value: floor(log2 v)
   clamped to the covered exponent range. *)
let bucket_of v =
  let e = int_of_float (Float.floor (Float.log2 v)) in
  let e = if e < -exp_bias then -exp_bias else if e > 31 then 31 else e in
  e + exp_bias

(* Geometric midpoint of bucket [i]'s range [2^e, 2^(e+1)). *)
let representative i = 1.5 *. Float.pow 2.0 (float_of_int (i - exp_bias))

let observe h v =
  if !(h.h_on) then
    if not (Float.is_finite v) then h.dropped <- h.dropped + 1
    else begin
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      if h.exact then begin
        if h.h_count <= reservoir_cap then h.reservoir.(h.h_count - 1) <- v
        else h.exact <- false
      end;
      if v <= 0.0 then h.zeros <- h.zeros + 1
      else h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1
    end

let observations h = h.h_count

(** [percentile h p], [p] in [0,100].  Exact ({!Dolx_util.Stats}
    nearest-rank) while every sample is still in the reservoir; the
    log-bucket approximation (answer within its bucket's factor of two)
    beyond that.  NaN when the histogram is empty. *)
let percentile h p =
  if h.h_count = 0 then nan
  else if h.exact then
    Stats.percentile p (Array.to_list (Array.sub h.reservoir 0 h.h_count))
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.h_count)) in
      max 1 (min h.h_count r)
    in
    if rank <= h.zeros then 0.0
    else begin
      let seen = ref h.zeros in
      let result = ref h.h_max in
      (try
         for i = 0 to n_buckets - 1 do
           seen := !seen + h.buckets.(i);
           if !seen >= rank then begin
             result := representative i;
             raise Exit
           end
         done
       with Exit -> ());
      (* never report beyond the observed extremes *)
      Float.min h.h_max (Float.max h.h_min !result)
    end
  end

type summary = {
  count : int;
  dropped : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summary h =
  {
    count = h.h_count;
    dropped = h.dropped;
    sum = h.h_sum;
    mean = (if h.h_count = 0 then nan else h.h_sum /. float_of_int h.h_count);
    min = (if h.h_count = 0 then nan else h.h_min);
    max = (if h.h_count = 0 then nan else h.h_max);
    p50 = percentile h 50.0;
    p95 = percentile h 95.0;
    p99 = percentile h 99.0;
  }

(** {1 Registry-wide operations} *)

(** Zero every instrument; registrations (and handles held by the
    instrumented modules) survive. *)
let reset t =
  Hashtbl.iter (fun _ (c : counter) -> Atomic.set c.count 0) t.counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.value 0.0) t.gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.zeros <- 0;
      h.h_count <- 0;
      h.dropped <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity;
      h.exact <- true)
    t.histograms

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** {1 Export} *)

let to_json t =
  let counters =
    List.map
      (fun (k, (c : counter)) -> (k, Json.num_of_int (Atomic.get c.count)))
      (sorted_bindings t.counters)
  in
  let gauges =
    List.map
      (fun (k, g) -> (k, Json.Num (Atomic.get g.value)))
      (sorted_bindings t.gauges)
  in
  let histograms =
    List.map
      (fun (k, h) ->
        let s = summary h in
        ( k,
          Json.Obj
            [
              ("count", Json.num_of_int s.count);
              ("dropped", Json.num_of_int s.dropped);
              ("sum", Json.Num s.sum);
              ("mean", Json.Num s.mean);
              ("min", Json.Num s.min);
              ("max", Json.Num s.max);
              ("p50", Json.Num s.p50);
              ("p95", Json.Num s.p95);
              ("p99", Json.Num s.p99);
            ] ))
      (sorted_bindings t.histograms)
  in
  Json.Obj
    [
      ("enabled", Json.Bool !(t.enabled));
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let to_json_string t = Json.to_string (to_json t)

let pp ppf t =
  let fnum x =
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
    else Printf.sprintf "%.3f" x
  in
  Format.fprintf ppf "counters:@.";
  List.iter
    (fun (k, (c : counter)) ->
      Format.fprintf ppf "  %-34s %d@." k (Atomic.get c.count))
    (sorted_bindings t.counters);
  (match sorted_bindings t.gauges with
  | [] -> ()
  | gauges ->
      Format.fprintf ppf "gauges:@.";
      List.iter
        (fun (k, g) ->
          Format.fprintf ppf "  %-34s %s@." k (fnum (Atomic.get g.value)))
        gauges);
  match sorted_bindings t.histograms with
  | [] -> ()
  | hs ->
      Format.fprintf ppf "histograms:@.";
      List.iter
        (fun (k, h) ->
          let s = summary h in
          if s.count = 0 then Format.fprintf ppf "  %-34s (empty)@." k
          else
            Format.fprintf ppf
              "  %-34s n=%d sum=%s min=%s p50=%s p95=%s p99=%s max=%s@." k
              s.count (fnum s.sum) (fnum s.min) (fnum s.p50) (fnum s.p95)
              (fnum s.p99) (fnum s.max))
        hs
