(** Metrics registry: named counters, gauges and log-scale histograms.

    Instruments are registered once (module-initialization time, by
    name) and then updated through the returned handle — an update is a
    [bool ref] dereference, a branch and an atomic add, cheap enough for
    the storage/engine hot paths.  Disabling a registry turns every
    update into the dereference + branch alone.

    Counters and gauges are [Atomic.t]-backed: increments from several
    domains (the {!Dolx_exec} pool evaluating a batch) are never lost,
    so the dual-written per-instance stats records sum exactly to the
    registry totals.  Histograms are single-writer (they back span
    tracing, which records only on the main domain).

    The legacy per-module [stats] records ({!Dolx_storage.Disk.stats},
    {!Dolx_storage.Buffer_pool.stats}, [Secure_store.io_stats]) remain
    the per-instance view; registry counters aggregate the same
    increments process-wide.  Reset both together (e.g.
    [Metrics.reset Metrics.default] next to [Store.reset_stats]) and the
    two views stay equal by construction — the [obs] test suite asserts
    this parity on a Table-1 query run. *)

type t

type counter

type gauge

type histogram

(** Samples kept verbatim per histogram; percentiles are exact while the
    sample count is below this, bucket-approximated beyond. *)
val reservoir_cap : int

val create : ?enabled:bool -> unit -> t

(** The process-wide registry all built-in instrumentation uses. *)
val default : t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** {1 Counters} *)

(** Get or create (registry defaults to {!default}). *)
val counter : ?reg:t -> string -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val count : counter -> int

val counter_name : counter -> string

val find_counter : ?reg:t -> string -> counter option

(** Current value, 0 when never registered. *)
val counter_value : ?reg:t -> string -> int

(** {1 Gauges} *)

val gauge : ?reg:t -> string -> gauge

val gauge_set : gauge -> float -> unit

val gauge_add : gauge -> float -> unit

val gauge_value : gauge -> float

val gauge_name : gauge -> string

(** {1 Histograms}

    Log-scale: one bucket per power of two (exponents −32…31), plus a
    bucket for values ≤ 0.  Non-finite observations are counted as
    [dropped] and never mixed into the distribution. *)

val histogram : ?reg:t -> string -> histogram

val histogram_name : histogram -> string

val observe : histogram -> float -> unit

val observations : histogram -> int

(** [percentile h p], [p] in [0,100]; nearest-rank, exact
    ({!Dolx_util.Stats.percentile}) while all samples fit the reservoir,
    within the bucket's factor-of-two resolution beyond.  NaN when
    empty. *)
val percentile : histogram -> float -> float

type summary = {
  count : int;
  dropped : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summary : histogram -> summary

(** {1 Registry-wide} *)

(** Zero every instrument; registrations and handles survive. *)
val reset : t -> unit

(** [{"enabled":…,"counters":{…},"gauges":{…},"histograms":{…}}] with
    keys sorted, histogram values summarized (count/sum/min/max/mean/
    p50/p95/p99). *)
val to_json : t -> Json.t

val to_json_string : t -> string

val pp : Format.formatter -> t -> unit
