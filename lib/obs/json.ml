(** A minimal JSON value type with a printer and a parser.

    The observability layer must not pull in a JSON dependency (the rest
    of the tree is dependency-free), but its exports have to be real,
    machine-readable JSON: the CI gate parses the output of
    [dolx query --metrics=json] and the tests round-trip every exporter.
    This module is the whole of what that needs — objects, arrays,
    strings with escapes, finite numbers, booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; message : string }

let () =
  Printexc.register_printer (function
    | Parse_error { pos; message } ->
        Some (Printf.sprintf "Json.Parse_error(at %d: %s)" pos message)
    | _ -> None)

let num_of_int i = Num (float_of_int i)

(** {1 Printing} *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no NaN/infinity; map them to null rather than emit garbage. *)
let add_num b x =
  if not (Float.is_finite x) then Buffer.add_string b "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.12g" x)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> add_num b x
  | Str s -> escape_string b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(** {1 Parsing} *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail message = raise (Parse_error { pos = !pos; message }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   (* ASCII range only — all this layer ever emits *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape %C" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(** {1 Accessors} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None
