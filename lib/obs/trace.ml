(** Span-based tracing with monotonic timing and nesting.

    [with_span "nok.match" f] times [f] and records a span; spans opened
    while another is running nest (the collector tracks the current
    depth), so a finished trace renders as a tree of the evaluator's
    phases — index seeding, per-segment ε-NoK matching, structural
    joins — with per-phase wall time.

    Tracing is {e off} by default: a disabled collector reduces
    [with_span] to one branch and a closure call, which is what lets the
    instrumentation live permanently in the engine.  When enabled, every
    finished span is also observed (in microseconds) into the
    [span.<name>] histogram of the collector's metrics registry, so
    p50/p95/p99 per phase come for free.

    The clock is pluggable ({!set_clock}) because the library must stay
    dependency-free: the default is [Sys.time] (monotone per-process CPU
    seconds); the CLI and the bench harness install
    [Unix.gettimeofday].  Tests install a deterministic counter clock,
    which is how span timing is asserted exactly. *)

type span = {
  name : string;
  depth : int; (* nesting depth at the time the span opened *)
  seq : int; (* start order — children have larger seq than parents *)
  start : float; (* clock seconds relative to the collector's epoch *)
  dur : float; (* clock seconds *)
}

type t = {
  mutable on : bool;
  mutable clock : unit -> float;
  mutable epoch : float;
  mutable depth : int;
  mutable next_seq : int;
  mutable spans : span list; (* finished spans, most recent first *)
  mutable n_spans : int;
  cap : int;
  metrics : Metrics.t;
}

let create ?(enabled = false) ?(cap = 4096) ?(metrics = Metrics.default) () =
  {
    on = enabled;
    clock = Sys.time;
    epoch = 0.0;
    depth = 0;
    next_seq = 0;
    spans = [];
    n_spans = 0;
    cap;
    metrics;
  }

(** The collector the built-in instrumentation records into. *)
let default = create ()

let enabled t = t.on

let set_enabled ?(c = default) b =
  if b && not c.on then c.epoch <- c.clock ();
  c.on <- b

let set_clock ?(c = default) clock =
  c.clock <- clock;
  c.epoch <- clock ()

(** Drop recorded spans and restart the epoch; the enabled flag is
    unchanged. *)
let reset ?(c = default) () =
  c.spans <- [];
  c.n_spans <- 0;
  c.depth <- 0;
  c.next_seq <- 0;
  c.epoch <- c.clock ()

let record c span =
  if c.n_spans < c.cap then begin
    c.spans <- span :: c.spans;
    c.n_spans <- c.n_spans + 1
  end;
  (* aggregate even when the span list is full *)
  Metrics.observe
    (Metrics.histogram ~reg:c.metrics ("span." ^ span.name))
    (span.dur *. 1e6)

let with_span ?(c = default) name f =
  (* The collector's nesting state is single-writer: spans are recorded
     only on the main domain, so engine code running on a [Dolx_exec]
     worker domain passes through untimed instead of racing on
     [depth]/[spans].  Parallel runs are profiled by the per-reader
     counters, not by spans. *)
  if not (c.on && Domain.is_main_domain ()) then f ()
  else begin
    let depth = c.depth in
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    c.depth <- depth + 1;
    let t0 = c.clock () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = c.clock () in
        c.depth <- depth;
        record c
          {
            name;
            depth;
            seq;
            start = t0 -. c.epoch;
            dur = Float.max 0.0 (t1 -. t0);
          })
      f
  end

(** Finished spans in start (seq) order. *)
let spans c =
  List.sort (fun a b -> compare a.seq b.seq) c.spans

let span_count c = c.n_spans

let to_json ?(c = default) () =
  Json.Arr
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.Str s.name);
             ("depth", Json.num_of_int s.depth);
             ("seq", Json.num_of_int s.seq);
             ("start_us", Json.Num (s.start *. 1e6));
             ("dur_us", Json.Num (s.dur *. 1e6));
           ])
       (spans c))

let pp ?(c = default) ppf () =
  List.iter
    (fun (s : span) ->
      Format.fprintf ppf "%s%s %.1fus@."
        (String.make (2 * s.depth) ' ')
        s.name (s.dur *. 1e6))
    (spans c)
