(** Minimal dependency-free JSON: enough for the metrics/trace exporters
    (objects, arrays, strings, finite numbers) plus a strict parser so
    tests and CI can round-trip every export. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; message : string }

val num_of_int : int -> t

(** Serialize.  Non-finite numbers print as [null] (JSON has no NaN). *)
val to_string : t -> string

(** Strict parse of a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)
val parse : string -> t

(** Field lookup on an [Obj]; [None] on other values or missing keys. *)
val member : string -> t -> t option

val to_float : t -> float option

(** [Some i] only for integral numbers. *)
val to_int : t -> int option
