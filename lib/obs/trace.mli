(** Span-based tracing: [with_span "nok.match" f] times [f] on a
    monotonic clock and records a nested span.  Disabled (the default),
    [with_span] is one branch + a closure call; enabled, each finished
    span also feeds the [span.<name>] histogram (microseconds) of the
    collector's metrics registry for p50/p95/p99 per phase. *)

type span = {
  name : string;
  depth : int;  (** nesting depth when the span opened *)
  seq : int;  (** start order; children have larger [seq] than parents *)
  start : float;  (** clock seconds since the collector's epoch *)
  dur : float;  (** clock seconds *)
}

type t

(** [cap] bounds retained spans (aggregation continues past it);
    [metrics] receives the [span.*] histograms (default
    {!Metrics.default}). *)
val create : ?enabled:bool -> ?cap:int -> ?metrics:Metrics.t -> unit -> t

(** The collector the built-in instrumentation records into. *)
val default : t

val enabled : t -> bool

val set_enabled : ?c:t -> bool -> unit

(** Replace the clock (default [Sys.time]; the CLI and bench install
    [Unix.gettimeofday]).  Must be monotone non-decreasing. *)
val set_clock : ?c:t -> (unit -> float) -> unit

(** Drop recorded spans and restart the epoch. *)
val reset : ?c:t -> unit -> unit

(** Run [f] inside a span.  Exception-safe: the span closes (and the
    exception propagates) even when [f] raises. *)
val with_span : ?c:t -> string -> (unit -> 'a) -> 'a

(** Finished spans, start order. *)
val spans : t -> span list

val span_count : t -> int

(** Array of [{name, depth, seq, start_us, dur_us}]. *)
val to_json : ?c:t -> unit -> Json.t

(** Indented tree, one line per span. *)
val pp : ?c:t -> Format.formatter -> unit -> unit
