(** Deterministic (query, semantics) workload streams over the paper's
    six XMark benchmark queries — the input of the batch-throughput
    experiments and of the parallel-vs-sequential determinism suite.
    Fully reproducible from the seed. *)

(** Mirrors [Dolx_nok.Engine.semantics] without depending on the
    evaluator (the workload layer sits below it). *)
type semantics =
  | Insecure
  | Secure of int  (** subject *)
  | Secure_path of int  (** subject *)

val semantics_name : semantics -> string

type entry = { query_id : string; xpath : string; semantics : semantics }

val pp_entry : Format.formatter -> entry -> unit

(** [generate ~n ~subjects ~seed ()] draws [n] entries: uniform over
    {!Xmark.queries}; [Insecure] with probability [insecure_p] (default
    0.1), otherwise secure for a uniform subject with path semantics at
    probability [path_p] (default 0.25) among secure draws.
    @raise Invalid_argument when [n < 0] or [subjects < 1]. *)
val generate :
  ?insecure_p:float -> ?path_p:float -> n:int -> subjects:int -> seed:int ->
  unit -> entry list
