(** Deterministic query workloads for throughput experiments: a stream
    of (XPath, evaluation semantics) pairs drawn from the paper's six
    XMark benchmark queries (Table 1) over a configurable subject
    population.  The mix is what a multi-tenant server sees — many
    subjects, mostly secure evaluations, the occasional unsecured
    administrative scan — and is fully reproducible from its seed, so
    the parallel executor can be checked byte-for-byte against the
    sequential engine on the same stream. *)

module Prng = Dolx_util.Prng

(* Mirrors [Dolx_nok.Engine.semantics] without depending on the engine:
   the workload layer stays below the evaluator in the library DAG. *)
type semantics =
  | Insecure
  | Secure of int  (** subject *)
  | Secure_path of int  (** subject *)

let semantics_name = function
  | Insecure -> "insecure"
  | Secure s -> Printf.sprintf "secure(%d)" s
  | Secure_path s -> Printf.sprintf "secure-path(%d)" s

type entry = { query_id : string; xpath : string; semantics : semantics }

let pp_entry ppf e =
  Fmt.pf ppf "%s %s [%s]" e.query_id (semantics_name e.semantics) e.xpath

(** [generate ~n ~subjects ~seed ()] draws [n] entries: the query is
    uniform over {!Xmark.queries}; the semantics is [Insecure] with
    probability [insecure_p] (default 0.1), otherwise secure for a
    uniform subject in [0, subjects), with path semantics
    (Gabillon–Bruno) at probability [path_p] (default 0.25) among the
    secure draws.
    @raise Invalid_argument when [n < 0] or [subjects < 1]. *)
let generate ?(insecure_p = 0.1) ?(path_p = 0.25) ~n ~subjects ~seed () =
  if n < 0 then invalid_arg "Query_mix.generate: negative n";
  if subjects < 1 then invalid_arg "Query_mix.generate: subjects < 1";
  let prng = Prng.create seed in
  let queries = Array.of_list Xmark.queries in
  List.init n (fun _ ->
      let query_id, xpath = Prng.choose prng queries in
      let semantics =
        if Prng.bool prng ~p:insecure_p then Insecure
        else
          let subject = Prng.int prng subjects in
          if Prng.bool prng ~p:path_p then Secure_path subject
          else Secure subject
      in
      { query_id; xpath; semantics })
