(** Succinct balanced-parentheses tree tier (see succinct.mli).

    Layout: the BP vector lives in a [Bytes.t], LSB-first within each
    byte; '(' = 1, ')' = 0.  Directories are per 512-bit block: ones
    before the block ([blk_rank], from which the excess at a block
    boundary is [2*rank - pos]), and the min/max prefix excess attained
    inside the block.  Because prefix excess is a +-1 walk, the set of
    values it attains over a contiguous range is exactly [min, max] —
    that is what lets [find_close] / [enclose] decide per block (and per
    64-block superblock) whether the target excess occurs inside, then
    finish with one bitwise scan.  Select keeps one sampled block index
    per 256 ones.  Everything together is ~3 bits per node. *)

module Tree = Dolx_xml.Tree

let block_bits = 512

let block_bytes = block_bits / 8

let sup_blocks = 64 (* blocks per superblock *)

let sel_gap = 256 (* ones per select sample *)

(* Byte popcount table. *)
let pop8 =
  let a = Array.make 256 0 in
  for i = 1 to 255 do
    a.(i) <- a.(i lsr 1) + (i land 1)
  done;
  a

type t = {
  bits : Bytes.t;
  len : int; (* bit length = 2n *)
  n : int;
  blk_rank : int array; (* nblocks+1: ones strictly before block b *)
  blk_min : int array; (* min prefix excess attained inside block b *)
  blk_max : int array;
  sup_min : int array;
  sup_max : int array;
  sel : int array; (* sel.(j) = block holding the (j*sel_gap + 1)-th one *)
}

let node_count t = t.n

let length t = t.len

let bit bits i = Char.code (Bytes.unsafe_get bits (i lsr 3)) lsr (i land 7) land 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Succinct.get";
  bit t.bits i = 1

let build tree =
  let n = Tree.size tree in
  if n = 0 then invalid_arg "Succinct.build: empty tree";
  let len = 2 * n in
  let bits = Bytes.make ((len + 7) / 8) '\000' in
  let pos = ref 0 in
  for v = 0 to n - 1 do
    let p = !pos in
    Bytes.set_uint8 bits (p lsr 3)
      (Bytes.get_uint8 bits (p lsr 3) lor (1 lsl (p land 7)));
    (* the closes after v are 0-bits, already in place *)
    pos := p + 1 + Tree.closes_after tree v
  done;
  assert (!pos = len);
  let nblocks = (len + block_bits - 1) / block_bits in
  let nsup = (nblocks + sup_blocks - 1) / sup_blocks in
  let blk_rank = Array.make (nblocks + 1) 0 in
  let blk_min = Array.make nblocks max_int in
  let blk_max = Array.make nblocks min_int in
  let sup_min = Array.make nsup max_int in
  let sup_max = Array.make nsup min_int in
  let nsel = (n + sel_gap - 1) / sel_gap in
  let sel = Array.make (max 1 nsel) 0 in
  let ones = ref 0 and exc = ref 0 and j = ref 0 in
  for b = 0 to nblocks - 1 do
    blk_rank.(b) <- !ones;
    let lo = b * block_bits and hi = min len ((b + 1) * block_bits) in
    for i = lo to hi - 1 do
      if bit bits i = 1 then begin
        incr ones;
        incr exc
      end
      else decr exc;
      if !exc < blk_min.(b) then blk_min.(b) <- !exc;
      if !exc > blk_max.(b) then blk_max.(b) <- !exc
    done;
    let s = b / sup_blocks in
    if blk_min.(b) < sup_min.(s) then sup_min.(s) <- blk_min.(b);
    if blk_max.(b) > sup_max.(s) then sup_max.(s) <- blk_max.(b);
    (* record the first block whose running count reaches each sample *)
    while !j < nsel && (!j * sel_gap) + 1 <= !ones do
      sel.(!j) <- b;
      incr j
    done
  done;
  blk_rank.(nblocks) <- !ones;
  { bits; len; n; blk_rank; blk_min; blk_max; sup_min; sup_max; sel }

let rank1 t i =
  if i < 0 || i > t.len then invalid_arg "Succinct.rank1";
  let b = i / block_bits in
  let r = ref t.blk_rank.(b) in
  let full = i lsr 3 in
  for k = b * block_bytes to full - 1 do
    r := !r + pop8.(Bytes.get_uint8 t.bits k)
  done;
  let rem = i land 7 in
  if rem > 0 then
    r := !r + pop8.(Bytes.get_uint8 t.bits full land ((1 lsl rem) - 1));
  !r

let excess t i = (2 * rank1 t i) - i

let select1 t k =
  if k < 1 || k > t.n then invalid_arg "Succinct.select1";
  let b = ref t.sel.((k - 1) / sel_gap) in
  while t.blk_rank.(!b + 1) < k do
    incr b
  done;
  let rem = ref (k - t.blk_rank.(!b)) in
  let byte = ref (!b * block_bytes) in
  let c = ref pop8.(Bytes.get_uint8 t.bits !byte) in
  while !c < !rem do
    rem := !rem - !c;
    incr byte;
    c := pop8.(Bytes.get_uint8 t.bits !byte)
  done;
  let v = ref (Bytes.get_uint8 t.bits !byte) in
  let bitpos = ref 0 in
  while
    if !v land 1 = 1 then begin
      decr rem;
      !rem > 0
    end
    else true
  do
    v := !v lsr 1;
    incr bitpos
  done;
  (!byte lsl 3) + !bitpos

(* Excess at a block boundary, from the rank directory alone. *)
let blk_excess t b = (2 * t.blk_rank.(b)) - (b * block_bits)

let find_close t p =
  if p < 0 || p >= t.len || bit t.bits p = 0 then
    invalid_arg "Succinct.find_close";
  (* the matching close q is the first q > p with exc(q+1) = exc(p) *)
  let target = excess t p in
  let bend = min t.len ((p / block_bits + 1) * block_bits) in
  let cur = ref (target + 1) in
  let i = ref (p + 1) in
  let res = ref (-1) in
  while !res < 0 && !i < bend do
    cur := !cur + (if bit t.bits !i = 1 then 1 else -1);
    if !cur = target then res := !i else incr i
  done;
  if !res >= 0 then !res
  else begin
    let nblocks = Array.length t.blk_min in
    let b = ref ((p / block_bits) + 1) in
    let searching = ref true in
    while !searching do
      if !b >= nblocks then failwith "Succinct.find_close: unbalanced";
      if !b mod sup_blocks = 0 && t.sup_min.(!b / sup_blocks) > target then
        b := !b + sup_blocks
      else if t.blk_min.(!b) > target then incr b
      else searching := false
    done;
    let lo = !b * block_bits in
    let cur = ref (blk_excess t !b) in
    let i = ref lo in
    let res = ref (-1) in
    while !res < 0 do
      cur := !cur + (if bit t.bits !i = 1 then 1 else -1);
      if !cur = target then res := !i else incr i
    done;
    !res
  end

let enclose t p =
  if p < 0 || p >= t.len || bit t.bits p = 0 then invalid_arg "Succinct.enclose";
  let e = excess t p in
  if e = 0 then -1 (* root *)
  else if e = 1 then 0 (* child of the root *)
  else begin
    (* parent's open is the largest q < p with exc(q) = e - 1 *)
    let target = e - 1 in
    let bstart = p / block_bits * block_bits in
    let cur = ref e in
    let i = ref (p - 1) in
    let res = ref (-1) in
    while !res < 0 && !i >= bstart do
      cur := !cur - (if bit t.bits !i = 1 then 1 else -1);
      if !cur = target then res := !i else decr i
    done;
    if !res >= 0 then !res
    else begin
      let b = ref ((p / block_bits) - 1) in
      let searching = ref true in
      while !searching do
        if !b < 0 then failwith "Succinct.enclose: unbalanced";
        if
          (!b + 1) mod sup_blocks = 0
          &&
          let s = !b / sup_blocks in
          t.sup_min.(s) > target || t.sup_max.(s) < target
        then b := !b - sup_blocks
        else if t.blk_min.(!b) > target || t.blk_max.(!b) < target then decr b
        else searching := false
      done;
      let hi = min t.len ((!b + 1) * block_bits) in
      let cur = ref ((2 * t.blk_rank.(!b + 1)) - hi) in
      let q = ref hi in
      let res = ref (-1) in
      while !res < 0 do
        if !cur = target then res := !q
        else begin
          decr q;
          cur := !cur - (if bit t.bits !q = 1 then 1 else -1)
        end
      done;
      !res
    end
  end

let pos_of t v = select1 t (v + 1)

let node_of t p = rank1 t (p + 1) - 1

let parent t v =
  if v = 0 then Tree.nil
  else
    let q = enclose t (pos_of t v) in
    node_of t q

let first_child t v =
  let p = pos_of t v in
  if p + 1 < t.len && bit t.bits (p + 1) = 1 then v + 1 else Tree.nil

let subtree_size t v =
  let p = pos_of t v in
  (find_close t p - p + 1) / 2

let subtree_end t v = v + subtree_size t v - 1

let next_sibling t v =
  let p = pos_of t v in
  let c = find_close t p in
  if c + 1 < t.len && bit t.bits (c + 1) = 1 then v + ((c - p + 1) / 2)
  else Tree.nil

let depth t v = excess t (pos_of t v)

let is_leaf t v = first_child t v = Tree.nil

let is_ancestor t a d = a < d && d <= subtree_end t a

let size_bits t =
  (8 * Bytes.length t.bits)
  + 64
    * (Array.length t.blk_rank + Array.length t.blk_min
     + Array.length t.blk_max + Array.length t.sup_min
     + Array.length t.sup_max + Array.length t.sel)

let bits_per_node t = float_of_int (size_bits t) /. float_of_int t.n
