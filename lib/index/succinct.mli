(** Succinct balanced-parentheses tree tier.

    The document tree as a 2n-bit balanced-parentheses (BP) vector — the
    materialized form of the paper's §3.1 document-order string
    "(a(b)(c)…)" — with o(n)-bit rank/select and min-excess block
    directories, so all the structural primitives NoK navigation needs
    ([parent], [first_child], [next_sibling], [subtree_size], [depth])
    are answered in O(1)-ish time from ~3 bits per node instead of the
    arena's 5 machine words per node.  Preorder rank [v] corresponds to
    the (v+1)-th open parenthesis, so node identities are shared with
    the arena {!Dolx_xml.Tree} and every index keyed by preorder.

    The image is immutable: build it once per published tree (structural
    updates rebuild the store, and with it this tier). *)

type t

(** Encode [tree].  O(n) time; the result holds no reference to the
    arena. *)
val build : Dolx_xml.Tree.t -> t

(** Nodes encoded (= [Tree.size]). *)
val node_count : t -> int

(** Bit-vector length, always [2 * node_count]. *)
val length : t -> int

(** {1 Bitvector primitives} *)

(** Bit at position [i]: [true] = '(' (an open). *)
val get : t -> int -> bool

(** Number of set bits in [\[0, i)]. *)
val rank1 : t -> int -> int

(** Position of the [k]-th set bit (1-based); [1 <= k <= node_count]. *)
val select1 : t -> int -> int

(** Excess of the first [i] bits: opens minus closes.  [excess t p] for
    an open at [p] equals the node's depth. *)
val excess : t -> int -> int

(** Position of the close matching the open at [p] (min-excess block
    search). *)
val find_close : t -> int -> int

(** Position of the open enclosing the open at [p] — the parent's open —
    or [-1] for the root. *)
val enclose : t -> int -> int

(** {1 Preorder <-> position maps} *)

(** Position of node [v]'s open parenthesis. *)
val pos_of : t -> Dolx_xml.Tree.node -> int

(** Node whose open parenthesis sits at position [p] (which must hold an
    open). *)
val node_of : t -> int -> Dolx_xml.Tree.node

(** {1 Navigation (preorder in, preorder out)}

    All agree exactly with the arena tree the image was built from;
    [Tree.nil] marks an absent parent/child/sibling. *)

val parent : t -> Dolx_xml.Tree.node -> Dolx_xml.Tree.node

val first_child : t -> Dolx_xml.Tree.node -> Dolx_xml.Tree.node

val next_sibling : t -> Dolx_xml.Tree.node -> Dolx_xml.Tree.node

val subtree_size : t -> Dolx_xml.Tree.node -> int

(** Preorder of the last node in [v]'s subtree. *)
val subtree_end : t -> Dolx_xml.Tree.node -> Dolx_xml.Tree.node

val depth : t -> Dolx_xml.Tree.node -> int

val is_leaf : t -> Dolx_xml.Tree.node -> bool

(** Proper ancestorship via interval containment. *)
val is_ancestor : t -> Dolx_xml.Tree.node -> Dolx_xml.Tree.node -> bool

(** {1 Size accounting} *)

(** Total bits held: the vector plus every directory (rank, min/max
    excess, superblock, select samples), counting directory entries at
    64 bits each. *)
val size_bits : t -> int

(** [size_bits / node_count] — the acceptance headline; ~3 with 512-bit
    blocks. *)
val bits_per_node : t -> float
