(** Path summary / DataGuide (see path_summary.mli). *)

module Tree = Dolx_xml.Tree

type cls = int

type t = {
  tags : int array; (* class -> tag id *)
  parents : int array; (* class -> parent class, -1 for root *)
  children : cls list array; (* ascending *)
  extents : int array;
  span_lo : int array;
  span_hi : int array;
  leafy : bool array;
  cls_of : int array; (* data node -> class *)
  by_tag : (int, cls list) Hashtbl.t; (* tag -> classes, ascending *)
  n_leaf_paths : int;
}

let build tree =
  let n = Tree.size tree in
  let cls_of = Array.make n (-1) in
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rev_tags = ref [] and rev_parents = ref [] in
  let n_cls = ref 0 in
  (* one preorder pass: a node's parent precedes it, so the parent's
     class is already assigned when the node is reached *)
  for v = 0 to n - 1 do
    let pc = if v = 0 then -1 else cls_of.(Tree.parent tree v) in
    let tg = Tree.tag tree v in
    let c =
      match Hashtbl.find_opt tbl (pc, tg) with
      | Some c -> c
      | None ->
          let c = !n_cls in
          incr n_cls;
          Hashtbl.add tbl (pc, tg) c;
          rev_tags := tg :: !rev_tags;
          rev_parents := pc :: !rev_parents;
          c
    in
    cls_of.(v) <- c
  done;
  let m = !n_cls in
  let tags = Array.make m 0 and parents = Array.make m (-1) in
  List.iteri (fun i tg -> tags.(m - 1 - i) <- tg) !rev_tags;
  List.iteri (fun i p -> parents.(m - 1 - i) <- p) !rev_parents;
  let extents = Array.make m 0 in
  let span_lo = Array.make m max_int and span_hi = Array.make m (-1) in
  let leafy = Array.make m false in
  for v = 0 to n - 1 do
    let c = cls_of.(v) in
    extents.(c) <- extents.(c) + 1;
    if v < span_lo.(c) then span_lo.(c) <- v;
    if v > span_hi.(c) then span_hi.(c) <- v;
    if Tree.is_leaf tree v then leafy.(c) <- true
  done;
  let children = Array.make m [] in
  for c = m - 1 downto 1 do
    children.(parents.(c)) <- c :: children.(parents.(c))
  done;
  let by_tag = Hashtbl.create 64 in
  for c = m - 1 downto 0 do
    let cur = Option.value ~default:[] (Hashtbl.find_opt by_tag tags.(c)) in
    Hashtbl.replace by_tag tags.(c) (c :: cur)
  done;
  let n_leaf_paths =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 leafy
  in
  {
    tags;
    parents;
    children;
    extents;
    span_lo;
    span_hi;
    leafy;
    cls_of;
    by_tag;
    n_leaf_paths;
  }

let node_count t = Array.length t.tags

let leaf_path_count t = t.n_leaf_paths

let class_of t v = t.cls_of.(v)

let tag t c : Dolx_xml.Tag.id = t.tags.(c)

let parent t c = t.parents.(c)

let children t c = t.children.(c)

let extent t c = t.extents.(c)

let span t c = (t.span_lo.(c), t.span_hi.(c))

let has_leaf t c = t.leafy.(c)

let classes_with_tag t (tg : Dolx_xml.Tag.id) =
  Option.value ~default:[] (Hashtbl.find_opt t.by_tag tg)

let bytes t =
  let m = node_count t in
  8
  * (Array.length t.cls_of (* node -> class map *)
    + (6 * m) (* tags/parents/extents/spans/leafy *)
    + m (* children list spine *)
    + (2 * Hashtbl.length t.by_tag))
