(** Path summary (DataGuide): one summary node — a "class" — per
    distinct root-to-node tag path in the document.

    Every data node belongs to exactly one class (the class of its tag
    path), so the classes of one tag partition that tag's extent.  Each
    class carries its extent cardinality, the preorder span of the
    extent, and the parent/children adjacency of the summary tree; the
    class tag id is the pointer into the {!Tag_index} postings.  The
    DataGuide property — every data edge has a summary edge — is what
    makes class-level query matching a sound (conservative) filter: a
    data node can only participate in a match if its class does.

    Immutable per published tree, like {!Succinct}. *)

type t

(** A summary node.  Class ids are dense, preorder-of-first-occurrence;
    the root's class is [0] and [parent] ids are always smaller than
    their children's. *)
type cls = int

val build : Dolx_xml.Tree.t -> t

(** Number of classes = distinct root-to-node tag paths. *)
val node_count : t -> int

(** Classes whose extent contains at least one leaf — the distinct
    root-to-leaf tag paths. *)
val leaf_path_count : t -> int

(** The class of data node [v]. *)
val class_of : t -> Dolx_xml.Tree.node -> cls

val tag : t -> cls -> Dolx_xml.Tag.id

(** Parent class, [-1] for the root class. *)
val parent : t -> cls -> cls

(** Child classes, ascending. *)
val children : t -> cls -> cls list

(** Extent cardinality. *)
val extent : t -> cls -> int

(** Inclusive preorder span [lo, hi] of the extent (not necessarily
    contiguous inside). *)
val span : t -> cls -> int * int

val has_leaf : t -> cls -> bool

(** All classes carrying the tag, ascending. *)
val classes_with_tag : t -> Dolx_xml.Tag.id -> cls list

(** Heap bytes held (arrays + the per-node class map). *)
val bytes : t -> int
