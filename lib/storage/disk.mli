(** A simulated block device: in-memory pages with faithful accounting of
    reads, writes and a synthetic latency model, so the paper's I/O
    claims (§3.3, §3.4) are measured rather than asserted — plus a
    modeled fault layer (per-page CRC32C verified on read, and
    PRNG-driven injection of transient read errors, permanent bad pages,
    torn writes and bit flips) so the storage stack above can be tested
    for fail-secure behavior.

    Thread-safety: {!read}, {!write}, {!allocate}, {!mark_bad} and
    {!clear_bad} are serialized by an internal mutex, so one disk can be
    shared by the per-domain buffer pools of [Dolx_exec] readers.
    Configuration setters ({!set_fault_plan}, {!set_verify_reads}) and
    {!reset_stats} are for quiescent use between runs. *)

type fault_kind =
  | Transient_read  (** the read failed but a retry may succeed *)
  | Bad_page  (** the page is permanently unreadable/unwritable *)
  | Checksum_mismatch  (** stored bytes do not match the recorded CRC32C *)

val fault_kind_name : fault_kind -> string

exception Fault of { page : int; kind : fault_kind }

(** A reproducible failure schedule.  All probabilities are per-I/O and
    drawn from [fault_prng]; see {!fault_plan} for defaults (all 0). *)
type fault_plan = {
  fault_prng : Dolx_util.Prng.t;
  transient_read_p : float;  (** per read: raise [Transient_read] *)
  torn_write_p : float;  (** per write: persist only a random prefix *)
  bit_flip_p : float;  (** per write: flip one random stored bit *)
  bad_page_p : float;  (** per write: page goes permanently bad after *)
}

val fault_plan :
  ?transient_read_p:float ->
  ?torn_write_p:float ->
  ?bit_flip_p:float ->
  ?bad_page_p:float ->
  Dolx_util.Prng.t ->
  fault_plan

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable allocations : int;
  mutable transient_faults : int;  (** injected transient read errors *)
  mutable torn_writes : int;  (** injected torn writes *)
  mutable bit_flips : int;  (** injected bit flips *)
  mutable checksum_failures : int;  (** reads rejected by CRC verification *)
  mutable versions_saved : int;  (** page images retained for pinned epochs *)
  mutable versions_retired : int;  (** retained images dropped at the horizon *)
}

type t

(** [read_cost_us]/[write_cost_us]: simulated microseconds charged per
    page I/O (defaults 100/120, SSD-like).  [crc_cost_us] (default 2.0,
    hardware-CRC32C-like for a 4K page) is charged per verified read;
    [verify_reads] (default [true]) controls whether reads verify the
    per-page checksum at all. *)
val create :
  ?page_size:int ->
  ?read_cost_us:float ->
  ?write_cost_us:float ->
  ?crc_cost_us:float ->
  ?verify_reads:bool ->
  unit ->
  t

val page_size : t -> int

val page_count : t -> int

(** The epoch clock of this device.  Readers pin it to get a stable
    image; writers advance it when they publish an update (see
    {!Epoch}). *)
val epoch : t -> Epoch.t

val stats : t -> stats

(** Accumulated simulated I/O time in microseconds. *)
val simulated_us : t -> float

(** Share of {!simulated_us} spent verifying page checksums. *)
val crc_us : t -> float

(** Zero the counters and the simulated clock. *)
val reset_stats : t -> unit

(** Install ([Some]) or clear ([None]) the failure schedule.  Pages that
    already went permanently bad stay bad. *)
val set_fault_plan : t -> fault_plan option -> unit

(** Toggle read-time checksum verification (for overhead A/B runs). *)
val set_verify_reads : t -> bool -> unit

(** Make a page permanently bad (reads and writes raise [Bad_page]).
    @raise Invalid_argument on an out-of-range id. *)
val mark_bad : t -> int -> unit

(** Undo {!mark_bad} / an injected bad page — the "sector remapped"
    event of a fault schedule; lets tests drive recovery after a write
    failure.  No-op when the page is not bad. *)
val clear_bad : t -> int -> unit

val is_bad : t -> int -> bool

(** Allocate a fresh zeroed page; returns its id. *)
val allocate : t -> int

(** Read page [id] into [dst] (a full-page buffer).  With [?epoch], read
    the image that was live at that (pinned) epoch: superseded images
    come from the copy-on-write version chain, still CRC-verified against
    the checksum they had when retained.
    @raise Fault on a bad page, an injected transient error, or a
    checksum mismatch (torn write or bit rot detected).
    @raise Invalid_argument on an out-of-range id (the message names the
    page id and the page count). *)
val read : ?epoch:int -> t -> int -> Page.t -> unit

(** Write [src] to page [id].  The CRC of the intended image is always
    recorded; injected torn writes and bit flips corrupt the stored
    bytes without touching it, so damage surfaces on the next verified
    read.
    While any epoch is pinned, the image being overwritten is retained
    on the page's version chain (copy-on-write) so pinned readers keep a
    consistent view; see {!retire}.
    @raise Fault when the page is permanently bad.
    @raise Invalid_argument on an out-of-range id. *)
val write : t -> int -> Page.t -> unit

(** Drop retained page versions no reader can reach any more (those
    whose visibility ends at or below {!Epoch.horizon}); returns the
    number dropped.  Called by the store after each publish and each
    reader release. *)
val retire : t -> int

(** Number of page versions currently retained for pinned readers. *)
val live_versions : t -> int
