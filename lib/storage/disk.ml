(** A simulated block device with modeled faults.

    Pages are stored in memory; the point is faithful accounting of page
    reads and writes (and an optional synthetic latency model) so that the
    paper's I/O arguments — "the access control check for d requires no
    additional I/O" (§3.3), "the cost for updating accessibility of a
    subtree with N nodes would be N/B page reads and writes" (§3.4) — can
    be measured rather than asserted.

    On top of the idealized device sits a fault model, because an access
    control store must not fail open when hardware misbehaves:

    - every write records a CRC32C of the intended page image; every read
      re-verifies it, so any divergence between intended and stored bytes
      surfaces as a typed {!Fault} instead of silently corrupt labels;
    - a {!fault_plan} (driven by an explicit [Prng.t], so every failure
      schedule is reproducible) injects transient read errors, permanent
      bad pages, torn writes (only a prefix of the page persists) and
      random bit flips. *)

module Prng = Dolx_util.Prng
module Crc = Dolx_util.Crc
module Metrics = Dolx_obs.Metrics

(* Process-wide mirrors of the per-instance stats record (see
   docs/ARCHITECTURE.md, "Observability"): every increment below is
   routed to both, so the registry totals equal the legacy record sums
   whenever they are reset together. *)
let c_reads = Metrics.counter "disk.reads"

let c_writes = Metrics.counter "disk.writes"

let c_allocations = Metrics.counter "disk.allocations"

let c_transient_faults = Metrics.counter "disk.transient_faults"

let c_torn_writes = Metrics.counter "disk.torn_writes"

let c_bit_flips = Metrics.counter "disk.bit_flips"

let c_checksum_failures = Metrics.counter "disk.checksum_failures"

let c_bad_page_faults = Metrics.counter "disk.bad_page_faults"

let g_simulated_us = Metrics.gauge "disk.simulated_us"

let g_crc_us = Metrics.gauge "disk.crc_us"

type fault_kind =
  | Transient_read  (** the read failed but a retry may succeed *)
  | Bad_page  (** the page is permanently unreadable/unwritable *)
  | Checksum_mismatch  (** stored bytes do not match the recorded CRC32C *)

let fault_kind_name = function
  | Transient_read -> "transient read error"
  | Bad_page -> "bad page"
  | Checksum_mismatch -> "checksum mismatch"

exception Fault of { page : int; kind : fault_kind }

let () =
  Printexc.register_printer (function
    | Fault { page; kind } ->
        Some (Printf.sprintf "Disk.Fault(page %d: %s)" page (fault_kind_name kind))
    | _ -> None)

type fault_plan = {
  fault_prng : Prng.t;
  transient_read_p : float;  (** per read: raise [Transient_read] *)
  torn_write_p : float;  (** per write: persist only a random prefix *)
  bit_flip_p : float;  (** per write: flip one random stored bit *)
  bad_page_p : float;  (** per write: page goes permanently bad after *)
}

let fault_plan ?(transient_read_p = 0.0) ?(torn_write_p = 0.0)
    ?(bit_flip_p = 0.0) ?(bad_page_p = 0.0) prng =
  { fault_prng = prng; transient_read_p; torn_write_p; bit_flip_p; bad_page_p }

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable allocations : int;
  mutable transient_faults : int;  (** injected transient read errors *)
  mutable torn_writes : int;  (** injected torn writes *)
  mutable bit_flips : int;  (** injected bit flips *)
  mutable checksum_failures : int;  (** reads rejected by CRC verification *)
}

type t = {
  page_size : int;
  mutable pages : Page.t array;
  mutable crcs : int array; (* CRC32C of the *intended* image of each page *)
  mutable count : int;
  stats : stats;
  (* Synthetic cost model: simulated microseconds charged per page I/O,
     accumulated so experiments can report "disk time". *)
  read_cost_us : float;
  write_cost_us : float;
  crc_cost_us : float;
  mutable simulated_us : float;
  mutable crc_us : float; (* share of simulated_us spent verifying CRCs *)
  mutable verify_reads : bool;
  mutable plan : fault_plan option;
  bad : (int, unit) Hashtbl.t; (* permanently failed pages *)
  zero_crc : int; (* CRC of an all-zero page, stored at allocation *)
  (* One device, many domains: [Dolx_exec] readers share the disk while
     holding private buffer pools, so the page store, the stats record
     and the fault machinery are serialized here.  Contention is low by
     construction — the pools absorb > 95% of touches, so the lock is
     taken only on real page I/O. *)
  m : Mutex.t;
}

let locked t f =
  Mutex.lock t.m;
  match f () with
  | v ->
      Mutex.unlock t.m;
      v
  | exception e ->
      Mutex.unlock t.m;
      raise e

let create ?(page_size = Page.default_size) ?(read_cost_us = 100.0)
    ?(write_cost_us = 120.0) ?(crc_cost_us = 2.0) ?(verify_reads = true) () =
  {
    page_size;
    pages = Array.make 16 (Page.create 0);
    crcs = Array.make 16 0;
    count = 0;
    stats =
      {
        reads = 0;
        writes = 0;
        allocations = 0;
        transient_faults = 0;
        torn_writes = 0;
        bit_flips = 0;
        checksum_failures = 0;
      };
    read_cost_us;
    write_cost_us;
    crc_cost_us;
    simulated_us = 0.0;
    crc_us = 0.0;
    verify_reads;
    plan = None;
    bad = Hashtbl.create 8;
    zero_crc = Crc.digest (Page.create page_size);
    m = Mutex.create ();
  }

let page_size t = t.page_size

let page_count t = t.count

let stats t = t.stats

let simulated_us t = t.simulated_us

let crc_us t = t.crc_us

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.transient_faults <- 0;
  t.stats.torn_writes <- 0;
  t.stats.bit_flips <- 0;
  t.stats.checksum_failures <- 0;
  t.simulated_us <- 0.0;
  t.crc_us <- 0.0

let set_fault_plan t plan = t.plan <- plan

let set_verify_reads t b = t.verify_reads <- b

let mark_bad t id =
  if id < 0 || id >= t.count then
    invalid_arg
      (Printf.sprintf "Disk.mark_bad: page %d out of range (page count %d)" id
         t.count);
  locked t (fun () -> Hashtbl.replace t.bad id ())

(** Undo {!mark_bad} / an injected bad page — the "sector remapped"
    event of a fault-injection schedule, letting tests exercise recovery
    after a write failure. *)
let clear_bad t id = locked t (fun () -> Hashtbl.remove t.bad id)

let is_bad t id = Hashtbl.mem t.bad id

(** Allocate a fresh zeroed page, returning its id. *)
let allocate t =
  locked t @@ fun () ->
  if t.count >= Array.length t.pages then begin
    let pages = Array.make (2 * Array.length t.pages) (Page.create 0) in
    Array.blit t.pages 0 pages 0 t.count;
    t.pages <- pages;
    let crcs = Array.make (Array.length pages) 0 in
    Array.blit t.crcs 0 crcs 0 t.count;
    t.crcs <- crcs
  end;
  let id = t.count in
  t.pages.(id) <- Page.create t.page_size;
  t.crcs.(id) <- t.zero_crc;
  t.count <- id + 1;
  t.stats.allocations <- t.stats.allocations + 1;
  Metrics.incr c_allocations;
  id

let check t id op =
  if id < 0 || id >= t.count then
    invalid_arg
      (Printf.sprintf "Disk.%s: page %d out of range (page count %d)" op id
         t.count)

let draw plan p = p > 0.0 && Prng.bool plan.fault_prng ~p

(** Read page [id] into [dst] (a full-page buffer).
    @raise Fault on a bad page, an injected transient error, or a
    checksum mismatch between the stored bytes and the CRC recorded at
    write time (torn write or bit rot). *)
let read t id dst =
  locked t @@ fun () ->
  check t id "read";
  t.stats.reads <- t.stats.reads + 1;
  Metrics.incr c_reads;
  t.simulated_us <- t.simulated_us +. t.read_cost_us;
  Metrics.gauge_add g_simulated_us t.read_cost_us;
  if Hashtbl.mem t.bad id then begin
    Metrics.incr c_bad_page_faults;
    raise (Fault { page = id; kind = Bad_page })
  end;
  (match t.plan with
  | Some plan when draw plan plan.transient_read_p ->
      t.stats.transient_faults <- t.stats.transient_faults + 1;
      Metrics.incr c_transient_faults;
      raise (Fault { page = id; kind = Transient_read })
  | _ -> ());
  Bytes.blit t.pages.(id) 0 dst 0 t.page_size;
  if t.verify_reads then begin
    t.simulated_us <- t.simulated_us +. t.crc_cost_us;
    t.crc_us <- t.crc_us +. t.crc_cost_us;
    Metrics.gauge_add g_simulated_us t.crc_cost_us;
    Metrics.gauge_add g_crc_us t.crc_cost_us;
    if Crc.digest_sub dst ~pos:0 ~len:t.page_size <> t.crcs.(id) then begin
      t.stats.checksum_failures <- t.stats.checksum_failures + 1;
      Metrics.incr c_checksum_failures;
      raise (Fault { page = id; kind = Checksum_mismatch })
    end
  end

(** Write [src] to page [id].  The CRC of the *intended* image is always
    recorded; an injected torn write or bit flip corrupts the stored
    bytes without touching it, so the damage is caught by the next
    verified read.
    @raise Fault when the page has gone permanently bad. *)
let write t id src =
  locked t @@ fun () ->
  check t id "write";
  t.stats.writes <- t.stats.writes + 1;
  Metrics.incr c_writes;
  t.simulated_us <- t.simulated_us +. t.write_cost_us;
  Metrics.gauge_add g_simulated_us t.write_cost_us;
  if Hashtbl.mem t.bad id then begin
    Metrics.incr c_bad_page_faults;
    raise (Fault { page = id; kind = Bad_page })
  end;
  t.crcs.(id) <- Crc.digest_sub src ~pos:0 ~len:t.page_size;
  (match t.plan with
  | Some plan when draw plan plan.torn_write_p ->
      t.stats.torn_writes <- t.stats.torn_writes + 1;
      Metrics.incr c_torn_writes;
      let keep = Prng.int plan.fault_prng t.page_size in
      Bytes.blit src 0 t.pages.(id) 0 keep
  | _ -> Bytes.blit src 0 t.pages.(id) 0 t.page_size);
  (match t.plan with
  | Some plan when draw plan plan.bit_flip_p ->
      t.stats.bit_flips <- t.stats.bit_flips + 1;
      Metrics.incr c_bit_flips;
      let bit = Prng.int plan.fault_prng (t.page_size * 8) in
      let b = Bytes.get_uint8 t.pages.(id) (bit / 8) in
      Bytes.set_uint8 t.pages.(id) (bit / 8) (b lxor (1 lsl (bit mod 8)))
  | _ -> ());
  match t.plan with
  | Some plan when draw plan plan.bad_page_p -> Hashtbl.replace t.bad id ()
  | _ -> ()
