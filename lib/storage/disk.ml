(** A simulated block device with modeled faults.

    Pages are stored in memory; the point is faithful accounting of page
    reads and writes (and an optional synthetic latency model) so that the
    paper's I/O arguments — "the access control check for d requires no
    additional I/O" (§3.3), "the cost for updating accessibility of a
    subtree with N nodes would be N/B page reads and writes" (§3.4) — can
    be measured rather than asserted.

    On top of the idealized device sits a fault model, because an access
    control store must not fail open when hardware misbehaves:

    - every write records a CRC32C of the intended page image; every read
      re-verifies it, so any divergence between intended and stored bytes
      surfaces as a typed {!Fault} instead of silently corrupt labels;
    - a {!fault_plan} (driven by an explicit [Prng.t], so every failure
      schedule is reproducible) injects transient read errors, permanent
      bad pages, torn writes (only a prefix of the page persists) and
      random bit flips. *)

module Prng = Dolx_util.Prng
module Crc = Dolx_util.Crc
module Metrics = Dolx_obs.Metrics

(* Process-wide mirrors of the per-instance stats record (see
   docs/ARCHITECTURE.md, "Observability"): every increment below is
   routed to both, so the registry totals equal the legacy record sums
   whenever they are reset together. *)
let c_reads = Metrics.counter "disk.reads"

let c_writes = Metrics.counter "disk.writes"

let c_allocations = Metrics.counter "disk.allocations"

let c_transient_faults = Metrics.counter "disk.transient_faults"

let c_torn_writes = Metrics.counter "disk.torn_writes"

let c_bit_flips = Metrics.counter "disk.bit_flips"

let c_checksum_failures = Metrics.counter "disk.checksum_failures"

let c_bad_page_faults = Metrics.counter "disk.bad_page_faults"

let g_simulated_us = Metrics.gauge "disk.simulated_us"

let g_crc_us = Metrics.gauge "disk.crc_us"

let c_versions_saved = Metrics.counter "disk.versions_saved"

let c_versions_retired = Metrics.counter "disk.versions_retired"

let g_versions_live = Metrics.gauge "disk.versions_live"

type fault_kind =
  | Transient_read  (** the read failed but a retry may succeed *)
  | Bad_page  (** the page is permanently unreadable/unwritable *)
  | Checksum_mismatch  (** stored bytes do not match the recorded CRC32C *)

let fault_kind_name = function
  | Transient_read -> "transient read error"
  | Bad_page -> "bad page"
  | Checksum_mismatch -> "checksum mismatch"

exception Fault of { page : int; kind : fault_kind }

let () =
  Printexc.register_printer (function
    | Fault { page; kind } ->
        Some (Printf.sprintf "Disk.Fault(page %d: %s)" page (fault_kind_name kind))
    | _ -> None)

type fault_plan = {
  fault_prng : Prng.t;
  transient_read_p : float;  (** per read: raise [Transient_read] *)
  torn_write_p : float;  (** per write: persist only a random prefix *)
  bit_flip_p : float;  (** per write: flip one random stored bit *)
  bad_page_p : float;  (** per write: page goes permanently bad after *)
}

let fault_plan ?(transient_read_p = 0.0) ?(torn_write_p = 0.0)
    ?(bit_flip_p = 0.0) ?(bad_page_p = 0.0) prng =
  { fault_prng = prng; transient_read_p; torn_write_p; bit_flip_p; bad_page_p }

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable allocations : int;
  mutable transient_faults : int;  (** injected transient read errors *)
  mutable torn_writes : int;  (** injected torn writes *)
  mutable bit_flips : int;  (** injected bit flips *)
  mutable checksum_failures : int;  (** reads rejected by CRC verification *)
  mutable versions_saved : int;  (** page images retained for pinned epochs *)
  mutable versions_retired : int;  (** retained images dropped at the horizon *)
}

type t = {
  page_size : int;
  mutable pages : Page.t array;
  mutable crcs : int array; (* CRC32C of the *intended* image of each page *)
  mutable count : int;
  stats : stats;
  (* Synthetic cost model: simulated microseconds charged per page I/O,
     accumulated so experiments can report "disk time". *)
  read_cost_us : float;
  write_cost_us : float;
  crc_cost_us : float;
  mutable simulated_us : float;
  mutable crc_us : float; (* share of simulated_us spent verifying CRCs *)
  mutable verify_reads : bool;
  mutable plan : fault_plan option;
  bad : (int, unit) Hashtbl.t; (* permanently failed pages *)
  zero_crc : int; (* CRC of an all-zero page, stored at allocation *)
  (* MVCC: the epoch clock plus per-page version chains.  A chain entry
     [(visible_until, crc, image)] is the image a page had before the
     update window ending at epoch [visible_until] overwrote it — a
     reader pinned at epoch [e] sees the oldest entry with
     [visible_until > e], or the live page when the chain has none.
     Chains are kept newest-first (descending [visible_until]). *)
  epoch : Epoch.t;
  versions : (int, (int * int * Page.t) list) Hashtbl.t;
  (* One device, many domains: [Dolx_exec] readers share the disk while
     holding private buffer pools, so the page store, the stats record
     and the fault machinery are serialized here.  Contention is low by
     construction — the pools absorb > 95% of touches, so the lock is
     taken only on real page I/O. *)
  m : Mutex.t;
}

let locked t f =
  Mutex.lock t.m;
  match f () with
  | v ->
      Mutex.unlock t.m;
      v
  | exception e ->
      Mutex.unlock t.m;
      raise e

let create ?(page_size = Page.default_size) ?(read_cost_us = 100.0)
    ?(write_cost_us = 120.0) ?(crc_cost_us = 2.0) ?(verify_reads = true) () =
  {
    page_size;
    pages = Array.make 16 (Page.create 0);
    crcs = Array.make 16 0;
    count = 0;
    stats =
      {
        reads = 0;
        writes = 0;
        allocations = 0;
        transient_faults = 0;
        torn_writes = 0;
        bit_flips = 0;
        checksum_failures = 0;
        versions_saved = 0;
        versions_retired = 0;
      };
    read_cost_us;
    write_cost_us;
    crc_cost_us;
    simulated_us = 0.0;
    crc_us = 0.0;
    verify_reads;
    plan = None;
    bad = Hashtbl.create 8;
    zero_crc = Crc.digest (Page.create page_size);
    epoch = Epoch.create ();
    versions = Hashtbl.create 16;
    m = Mutex.create ();
  }

let page_size t = t.page_size

let epoch t = t.epoch

let page_count t = t.count

let stats t = t.stats

let simulated_us t = t.simulated_us

let crc_us t = t.crc_us

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.transient_faults <- 0;
  t.stats.torn_writes <- 0;
  t.stats.bit_flips <- 0;
  t.stats.checksum_failures <- 0;
  t.simulated_us <- 0.0;
  t.crc_us <- 0.0

let set_fault_plan t plan = t.plan <- plan

let set_verify_reads t b = t.verify_reads <- b

let mark_bad t id =
  if id < 0 || id >= t.count then
    invalid_arg
      (Printf.sprintf "Disk.mark_bad: page %d out of range (page count %d)" id
         t.count);
  locked t (fun () -> Hashtbl.replace t.bad id ())

(** Undo {!mark_bad} / an injected bad page — the "sector remapped"
    event of a fault-injection schedule, letting tests exercise recovery
    after a write failure. *)
let clear_bad t id = locked t (fun () -> Hashtbl.remove t.bad id)

let is_bad t id = Hashtbl.mem t.bad id

(** Allocate a fresh zeroed page, returning its id. *)
let allocate t =
  locked t @@ fun () ->
  if t.count >= Array.length t.pages then begin
    let pages = Array.make (2 * Array.length t.pages) (Page.create 0) in
    Array.blit t.pages 0 pages 0 t.count;
    t.pages <- pages;
    let crcs = Array.make (Array.length pages) 0 in
    Array.blit t.crcs 0 crcs 0 t.count;
    t.crcs <- crcs
  end;
  let id = t.count in
  t.pages.(id) <- Page.create t.page_size;
  t.crcs.(id) <- t.zero_crc;
  t.count <- id + 1;
  t.stats.allocations <- t.stats.allocations + 1;
  Metrics.incr c_allocations;
  id

let check t id op =
  if id < 0 || id >= t.count then
    invalid_arg
      (Printf.sprintf "Disk.%s: page %d out of range (page count %d)" op id
         t.count)

let draw plan p = p > 0.0 && Prng.bool plan.fault_prng ~p

(* The image of [id] visible at epoch [e]: the oldest retained version
   with [visible_until > e], or the live page.  Chains are descending by
   [visible_until], so the scan stops at the first entry at or below [e]. *)
let version_at t id e =
  match Hashtbl.find_opt t.versions id with
  | None -> None
  | Some chain ->
      let rec oldest_above acc = function
        | (vu, crc, img) :: rest when vu > e ->
            oldest_above (Some (crc, img)) rest
        | _ -> acc
      in
      oldest_above None chain

(** Read page [id] into [dst] (a full-page buffer).  With [?epoch], read
    the image that was live at that (pinned) epoch: superseded images
    come from the version chain, still verified against the CRC they had
    when retained.
    @raise Fault on a bad page, an injected transient error, or a
    checksum mismatch between the stored bytes and the CRC recorded at
    write time (torn write or bit rot). *)
let read ?epoch t id dst =
  locked t @@ fun () ->
  check t id "read";
  t.stats.reads <- t.stats.reads + 1;
  Metrics.incr c_reads;
  t.simulated_us <- t.simulated_us +. t.read_cost_us;
  Metrics.gauge_add g_simulated_us t.read_cost_us;
  if Hashtbl.mem t.bad id then begin
    Metrics.incr c_bad_page_faults;
    raise (Fault { page = id; kind = Bad_page })
  end;
  (match t.plan with
  | Some plan when draw plan plan.transient_read_p ->
      t.stats.transient_faults <- t.stats.transient_faults + 1;
      Metrics.incr c_transient_faults;
      raise (Fault { page = id; kind = Transient_read })
  | _ -> ());
  let src, crc =
    match epoch with
    | None -> (t.pages.(id), t.crcs.(id))
    | Some e -> (
        match version_at t id e with
        | Some (crc, img) -> (img, crc)
        | None -> (t.pages.(id), t.crcs.(id)))
  in
  Bytes.blit src 0 dst 0 t.page_size;
  if t.verify_reads then begin
    t.simulated_us <- t.simulated_us +. t.crc_cost_us;
    t.crc_us <- t.crc_us +. t.crc_cost_us;
    Metrics.gauge_add g_simulated_us t.crc_cost_us;
    Metrics.gauge_add g_crc_us t.crc_cost_us;
    if Crc.digest_sub dst ~pos:0 ~len:t.page_size <> crc then begin
      t.stats.checksum_failures <- t.stats.checksum_failures + 1;
      Metrics.incr c_checksum_failures;
      raise (Fault { page = id; kind = Checksum_mismatch })
    end
  end

(** Write [src] to page [id].  The CRC of the *intended* image is always
    recorded; an injected torn write or bit flip corrupts the stored
    bytes without touching it, so the damage is caught by the next
    verified read.
    @raise Fault when the page has gone permanently bad. *)
let write t id src =
  locked t @@ fun () ->
  check t id "write";
  t.stats.writes <- t.stats.writes + 1;
  Metrics.incr c_writes;
  t.simulated_us <- t.simulated_us +. t.write_cost_us;
  Metrics.gauge_add g_simulated_us t.write_cost_us;
  if Hashtbl.mem t.bad id then begin
    Metrics.incr c_bad_page_faults;
    raise (Fault { page = id; kind = Bad_page })
  end;
  (* Copy-on-write: with readers pinned, retain the image being
     overwritten.  All writes of one update window share the tag
     [current + 1] (the epoch the update will publish as), so only the
     first overwrite of a page per window saves a copy. *)
  if Epoch.pinned t.epoch then begin
    let vu = Epoch.current t.epoch + 1 in
    let chain = Option.value (Hashtbl.find_opt t.versions id) ~default:[] in
    match chain with
    | (vu0, _, _) :: _ when vu0 = vu -> ()
    | _ ->
        Hashtbl.replace t.versions id
          ((vu, t.crcs.(id), Bytes.copy t.pages.(id)) :: chain);
        t.stats.versions_saved <- t.stats.versions_saved + 1;
        Metrics.incr c_versions_saved;
        Metrics.gauge_add g_versions_live 1.0
  end;
  t.crcs.(id) <- Crc.digest_sub src ~pos:0 ~len:t.page_size;
  (match t.plan with
  | Some plan when draw plan plan.torn_write_p ->
      t.stats.torn_writes <- t.stats.torn_writes + 1;
      Metrics.incr c_torn_writes;
      let keep = Prng.int plan.fault_prng t.page_size in
      Bytes.blit src 0 t.pages.(id) 0 keep
  | _ -> Bytes.blit src 0 t.pages.(id) 0 t.page_size);
  (match t.plan with
  | Some plan when draw plan plan.bit_flip_p ->
      t.stats.bit_flips <- t.stats.bit_flips + 1;
      Metrics.incr c_bit_flips;
      let bit = Prng.int plan.fault_prng (t.page_size * 8) in
      let b = Bytes.get_uint8 t.pages.(id) (bit / 8) in
      Bytes.set_uint8 t.pages.(id) (bit / 8) (b lxor (1 lsl (bit mod 8)))
  | _ -> ());
  match t.plan with
  | Some plan when draw plan plan.bad_page_p -> Hashtbl.replace t.bad id ()
  | _ -> ()

(** Drop retained page versions that no reader can reach any more: a
    version whose [visible_until] is at or below the epoch horizon (the
    oldest pinned epoch, or the current epoch when nothing is pinned)
    has no possible reader left.  Returns the number of versions
    dropped. *)
let retire t =
  locked t @@ fun () ->
  let horizon = Epoch.horizon t.epoch in
  let updates =
    Hashtbl.fold
      (fun id chain acc ->
        let keep = List.filter (fun (vu, _, _) -> vu > horizon) chain in
        if List.length keep = List.length chain then acc
        else (id, keep, List.length chain - List.length keep) :: acc)
      t.versions []
  in
  let dropped = ref 0 in
  List.iter
    (fun (id, keep, n) ->
      dropped := !dropped + n;
      if keep = [] then Hashtbl.remove t.versions id
      else Hashtbl.replace t.versions id keep)
    updates;
  if !dropped > 0 then begin
    t.stats.versions_retired <- t.stats.versions_retired + !dropped;
    Metrics.add c_versions_retired !dropped;
    Metrics.gauge_add g_versions_live (-.float_of_int !dropped)
  end;
  !dropped

(** Number of page versions currently retained for pinned readers. *)
let live_versions t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ chain acc -> acc + List.length chain) t.versions 0
