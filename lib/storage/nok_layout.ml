(** Block-oriented NoK storage with embedded access-control codes.

    This is the paper's §3 physical representation.  The document
    structure is "encoded by listing the nodes in document order, with
    embedded markup to indicate where subtrees begin and end" (§3.1) —
    open parens are elided, so each node record carries its tag and the
    number of close-parens that follow it.  DOL transition nodes are
    "embedded into the NoK structural data" (§3.2): a record optionally
    carries an access-control code.

    Per-page layout:
    {v
      header (15 bytes):
        u16  number of node records
        u32  preorder of the first node
        u32  access-control code in force at the first node
        u16  depth of the first node          (NoK meta-data)
        u8   flags: bit0 = change bit (§3.2)
        u16  bytes used by records
      records, one per node, in document order:
        u8     flags: bit0 = carries an access-control code
        varint tag id
        varint close-paren count after this node
        varint code                            (only if flags bit0)
    v}

    "In the physical encoding, we treat the first node in each block as if
    it were a transition node, regardless of whether it is actually a
    transition node.  The access control code for this initial transition
    node is stored in the block header" (§3.2) — hence the first record of
    a page never carries an inline code.

    "For each disk block, there is a small access control header … By
    keeping all the page headers in memory … the NoK query processor can
    implement I/O optimizations" (§3.2): the in-memory page table below
    holds, per logical page, the first preorder, first code, change bit
    and first depth, and is consulted without any I/O.

    MVCC: the whole in-memory page table lives in one immutable {!view}
    record.  Updates never mutate a published view — {!rewrite_page}
    builds fresh arrays and swaps the [view] pointer — so a {!freeze}-d
    snapshot handle keeps reading a consistent table while the live
    layout moves on (its page {e images} come from the disk's version
    chains via an epoch-pinned buffer pool). *)

module Tree = Dolx_xml.Tree
module Varint = Dolx_util.Varint
module Binsearch = Dolx_util.Binsearch
module Int_vec = Dolx_util.Int_vec

let header_bytes = 15

type header = {
  first_pre : int;
  first_code : int;
  change : bool; (* a transition node other than the initial one is present *)
  first_depth : int;
}

(* Scan cursor for [code_in_force]: NoK evaluation visits nodes in
   near-document order, so the code in force is maintained incrementally
   instead of replaying the page from its start on every ACCESS check —
   this is what makes the check effectively free, as the paper's
   evaluator has the page cursor positioned already.

   Cursors are separate values so every reader handle (each domain of a
   parallel run) advances its own; [cur_gen] snapshots the layout's
   rewrite generation, so a cursor left pointing into a page that was
   since rewritten self-invalidates instead of misreading. *)
type cursor = {
  mutable cur_lp : int;   (* logical page the cursor is on, -1 = invalid *)
  mutable cur_pre : int;  (* last preorder processed *)
  mutable cur_pos : int;  (* byte offset of the record after cur_pre *)
  mutable cur_code : int; (* code in force at cur_pre *)
  mutable cur_gen : int;  (* layout generation the position is valid for *)
}

(* The complete in-memory page table as one immutable value: readers
   load [t.view] once per operation and see a consistent table even
   while the writer swaps in a successor. *)
type view = {
  phys : int array;        (* logical page -> physical disk page *)
  first_pres : int array;  (* in-memory page table, logical order *)
  first_codes : int array;
  changes : bool array;
  first_depths : int array;
  n_pages : int;
  vgen : int; (* bumped by every page rewrite; stamps cursors *)
}

type t = {
  disk : Disk.t;
  mutable view : view;
  frozen : bool; (* a snapshot handle: all mutation entry points raise *)
  n_nodes : int;
  own_cursor : cursor; (* default cursor for single-handle use *)
  (* Update tracking for journaled persistence: which logical pages were
     rewritten in place since the last [drain_dirty], and whether a page
     split renumbered the logical order (invalidating recorded ids). *)
  dirty : (int, unit) Hashtbl.t;
  mutable renumbered : bool;
}

let fresh_cursor () =
  { cur_lp = -1; cur_pre = -1; cur_pos = 0; cur_code = 0; cur_gen = 0 }

(** A fresh, unpositioned cursor for [t] — one per reader handle. *)
let cursor (_ : t) = fresh_cursor ()

type record = {
  pre : int;
  tag : int;
  closes : int;
  code : int option; (* inline transition code, never on the first record *)
}

let page_count t = t.view.n_pages

let node_count t = t.n_nodes

let disk t = t.disk

(** A snapshot handle over the current page table: shares the disk but
    never observes later {!rewrite_page}s (the live layout swaps in a
    fresh view instead of mutating this one).  Mutating a frozen handle
    raises [Invalid_argument].  Pair it with an epoch-pinned
    {!Buffer_pool} so the page images match the table. *)
let freeze t =
  {
    t with
    frozen = true;
    own_cursor = fresh_cursor ();
    dirty = Hashtbl.create 1;
    renumbered = false;
  }

let frozen t = t.frozen

(** In-memory header of logical page [lp] — no I/O. *)
let header t lp =
  let vw = t.view in
  if lp < 0 || lp >= vw.n_pages then invalid_arg "Nok_layout.header";
  {
    first_pre = vw.first_pres.(lp);
    first_code = vw.first_codes.(lp);
    change = vw.changes.(lp);
    first_depth = vw.first_depths.(lp);
  }

(** Logical page holding preorder [pre] — binary search of the in-memory
    page table, no I/O. *)
let page_of t pre =
  if pre < 0 || pre >= t.n_nodes then invalid_arg "Nok_layout.page_of";
  match Binsearch.predecessor t.view.first_pres pre with
  | Some lp -> lp
  | None -> assert false

let physical_page t lp = t.view.phys.(lp)

(** {1 Record encoding} *)

let record_bytes r =
  1
  + Varint.encoded_length r.tag
  + Varint.encoded_length r.closes
  + match r.code with Some c -> Varint.encoded_length c | None -> 0

let encode_records page ~n ~first_pre ~first_code ~first_depth ~change records =
  Page.set_u16 page 0 n;
  Page.set_u32 page 2 first_pre;
  Page.set_u32 page 6 first_code;
  Page.set_u16 page 10 first_depth;
  Page.set_u8 page 12 (if change then 1 else 0);
  let pos = ref header_bytes in
  List.iter
    (fun r ->
      let flags = match r.code with Some _ -> 1 | None -> 0 in
      Bytes.set_uint8 page !pos flags;
      incr pos;
      pos := Varint.write page !pos r.tag;
      pos := Varint.write page !pos r.closes;
      match r.code with Some c -> pos := Varint.write page !pos c | None -> ())
    records;
  Page.set_u16 page 13 (!pos - header_bytes)

(** Decode all records of a raw page image (no pool, no layout). *)
let decode_image page =
  let n = Page.get_u16 page 0 in
  let first_pre = Page.get_u32 page 2 in
  let pos = ref header_bytes in
  List.init n (fun i ->
      let flags = Bytes.get_uint8 page !pos in
      incr pos;
      let tag, p = Varint.read page !pos in
      pos := p;
      let closes, p = Varint.read page !pos in
      pos := p;
      let code =
        if flags land 1 <> 0 then begin
          let c, p = Varint.read page !pos in
          pos := p;
          Some c
        end
        else None
      in
      { pre = first_pre + i; tag; closes; code })

(** {1 Building} *)

(** Lay the document out on [disk] in document order.

    [transitions] is the DOL transition list as sorted [(preorder, code)]
    pairs with the root at index 0 (see [Dolx_core.Dol]).  [fill] bounds
    the fraction of each page used at build time, leaving slack so that
    accessibility updates that add a transition code usually fit in
    place. *)
let build ?(fill = 0.9) disk tree ~transitions =
  if fill <= 0.0 || fill > 1.0 then invalid_arg "Nok_layout.build: fill";
  let n = Tree.size tree in
  let page_size = Disk.page_size disk in
  if page_size < 64 then invalid_arg "Nok_layout.build: page size must be >= 64";
  let budget =
    min page_size
      (max (header_bytes + 16) (int_of_float (float_of_int page_size *. fill)))
  in
  let trans_pres = Array.map fst transitions in
  let trans_codes = Array.map snd transitions in
  if Array.length trans_pres = 0 || trans_pres.(0) <> 0 then
    invalid_arg "Nok_layout.build: transitions must start at the root";
  let code_at pre =
    match Binsearch.predecessor trans_pres pre with
    | Some i -> trans_codes.(i)
    | None -> assert false
  in
  let is_transition pre =
    match Binsearch.find trans_pres pre with Some _ -> true | None -> false
  in
  let phys = Int_vec.create () in
  let first_pres = Int_vec.create () in
  let first_codes = Int_vec.create () in
  let first_depths = Int_vec.create () in
  let changes = ref [] in
  (* Accumulate records for the current page, flush when the budget would
     be exceeded. *)
  let current = ref [] in
  let current_bytes = ref header_bytes in
  let current_first = ref 0 in
  let current_change = ref false in
  let flush () =
    if !current <> [] then begin
      let records = List.rev !current in
      let first_pre = !current_first in
      let pid = Disk.allocate disk in
      let page = Page.create page_size in
      encode_records page ~n:(List.length records) ~first_pre
        ~first_code:(code_at first_pre) ~first_depth:(Tree.depth tree first_pre)
        ~change:!current_change records;
      Disk.write disk pid page;
      Int_vec.push phys pid;
      Int_vec.push first_pres first_pre;
      Int_vec.push first_codes (code_at first_pre);
      Int_vec.push first_depths (Tree.depth tree first_pre);
      changes := !current_change :: !changes;
      current := [];
      current_bytes := header_bytes;
      current_change := false
    end
  in
  for v = 0 to n - 1 do
    if !current = [] then current_first := v;
    let is_page_first = !current = [] in
    let code = if (not is_page_first) && is_transition v then Some (code_at v) else None in
    let r = { pre = v; tag = Tree.tag tree v; closes = Tree.closes_after tree v; code } in
    let rb = record_bytes r in
    if !current_bytes + rb > budget && !current <> [] then begin
      flush ();
      current_first := v;
      (* re-evaluate as a page-first record: no inline code *)
      let r = { r with code = None } in
      current := [ r ];
      current_bytes := header_bytes + record_bytes r
    end
    else begin
      current := r :: !current;
      current_bytes := !current_bytes + rb;
      if r.code <> None then current_change := true
    end
  done;
  flush ();
  {
    disk;
    view =
      {
        phys = Int_vec.to_array phys;
        first_pres = Int_vec.to_array first_pres;
        first_codes = Int_vec.to_array first_codes;
        changes = Array.of_list (List.rev !changes);
        first_depths = Int_vec.to_array first_depths;
        n_pages = Int_vec.length phys;
        vgen = 0;
      };
    frozen = false;
    n_nodes = n;
    own_cursor = fresh_cursor ();
    dirty = Hashtbl.create 8;
    renumbered = false;
  }

(** Attach to an existing disk whose pages [0, n_pages) hold a layout in
    logical order (as written by a database file loader): the in-memory
    page table is reconstructed from the page headers in one scan. *)
let attach disk ~n_pages =
  if n_pages <= 0 then invalid_arg "Nok_layout.attach: no pages";
  let page_size = Disk.page_size disk in
  let buf = Page.create page_size in
  let first_pres = Array.make n_pages 0 in
  let first_codes = Array.make n_pages 0 in
  let first_depths = Array.make n_pages 0 in
  let changes = Array.make n_pages false in
  let n_nodes = ref 0 in
  for lp = 0 to n_pages - 1 do
    Disk.read disk lp buf;
    let n = Page.get_u16 buf 0 in
    first_pres.(lp) <- Page.get_u32 buf 2;
    first_codes.(lp) <- Page.get_u32 buf 6;
    first_depths.(lp) <- Page.get_u16 buf 10;
    changes.(lp) <- Page.get_u8 buf 12 land 1 <> 0;
    if first_pres.(lp) <> !n_nodes then
      invalid_arg "Nok_layout.attach: pages not in dense logical order";
    n_nodes := !n_nodes + n
  done;
  {
    disk;
    view =
      {
        phys = Array.init n_pages Fun.id;
        first_pres;
        first_codes;
        changes;
        first_depths;
        n_pages;
        vgen = 0;
      };
    frozen = false;
    n_nodes = !n_nodes;
    own_cursor = fresh_cursor ();
    dirty = Hashtbl.create 8;
    renumbered = false;
  }

(** Page image of logical page [lp] (for database-file export), bypassing
    the pool. *)
let page_image t lp =
  let vw = t.view in
  if lp < 0 || lp >= vw.n_pages then invalid_arg "Nok_layout.page_image";
  let buf = Page.create (Disk.page_size t.disk) in
  Disk.read t.disk vw.phys.(lp) buf;
  buf

(** {1 Page-level access through a buffer pool} *)

(** Fetch the page holding [pre]; returns its logical page id.  This is
    the only way query evaluation touches data, so the pool's counters
    capture all I/O. *)
let touch t pool pre =
  let lp = page_of t pre in
  ignore (Buffer_pool.get pool (t.view.phys.(lp)));
  lp

let records t pool lp =
  let vw = t.view in
  if lp < 0 || lp >= vw.n_pages then invalid_arg "Nok_layout.records";
  decode_image (Buffer_pool.get pool vw.phys.(lp))

(** The access-control code in force at node [pre] (§3.3): fetch the
    node's page, start from the header code and replay inline transition
    codes up to [pre].  No I/O beyond the node's own page.  This is the
    per-node ACCESS hot path of Algorithm 1, so it scans the raw record
    bytes in place instead of materializing records.  [cu] is the
    caller's scan cursor: consecutive forward lookups on one page resume
    instead of replaying from the page start. *)
let code_in_force_at t cu pool pre =
  let vw = t.view in
  if pre < 0 || pre >= t.n_nodes then invalid_arg "Nok_layout.page_of";
  let lp =
    match Binsearch.predecessor vw.first_pres pre with
    | Some lp -> lp
    | None -> assert false
  in
  let page = Buffer_pool.get pool vw.phys.(lp) in
  if not vw.changes.(lp) then vw.first_codes.(lp)
  else begin
    let n = Page.get_u16 page 0 in
    let first_pre = Page.get_u32 page 2 in
    let stop = min (pre - first_pre) (n - 1) in
    (* resume from the cursor when scanning forward on the same page (and
       no rewrite invalidated the recorded byte position) *)
    let start, pos0, code0 =
      if
        cu.cur_gen = vw.vgen && cu.cur_lp = lp
        && cu.cur_pre <= first_pre + stop
        && cu.cur_pre >= first_pre
      then (cu.cur_pre - first_pre + 1, cu.cur_pos, cu.cur_code)
      else (0, header_bytes, vw.first_codes.(lp))
    in
    let code = ref code0 in
    let pos = ref pos0 in
    let skip_varint () =
      while Bytes.get_uint8 page !pos >= 128 do
        incr pos
      done;
      incr pos
    in
    for _i = start to stop do
      let flags = Bytes.get_uint8 page !pos in
      incr pos;
      skip_varint () (* tag *);
      skip_varint () (* closes *);
      if flags land 1 <> 0 then begin
        let c, p = Varint.read page !pos in
        code := c;
        pos := p
      end
    done;
    cu.cur_gen <- vw.vgen;
    cu.cur_lp <- lp;
    cu.cur_pre <- first_pre + stop;
    cu.cur_pos <- !pos;
    cu.cur_code <- !code;
    !code
  end

let code_in_force t pool pre = code_in_force_at t t.own_cursor pool pre

(** {1 Updates} *)

(** Rewrite logical page [lp] with new records.  The first record must
    keep the page's [first_pre]; its code, if any, moves into the header.
    If the encoded size exceeds the page, the page is split in two —
    "updates are confined within a contiguous region of the affected
    data" (§3.4, update locality).

    Copy-on-write: the page-table arrays of the current view are never
    mutated — fresh arrays go into a successor view — so frozen
    snapshot handles sharing the old view stay consistent. *)
let rewrite_page t pool lp records ~code_before =
  if t.frozen then
    invalid_arg "Nok_layout.rewrite_page: frozen snapshot handle";
  let vw = t.view in
  (match records with
  | [] -> invalid_arg "Nok_layout.rewrite_page: empty"
  | r :: _ ->
      if r.pre <> vw.first_pres.(lp) then
        invalid_arg "Nok_layout.rewrite_page: first preorder must be preserved");
  let page_size = Disk.page_size t.disk in
  let encode_into ~first_depth records =
    match records with
    | [] -> assert false
    | first :: rest ->
        let first_code =
          match first.code with Some c -> c | None -> code_before first.pre
        in
        let records = { first with code = None } :: rest in
        let change = List.exists (fun r -> r.code <> None) rest in
        let page = Page.create page_size in
        encode_records page ~n:(List.length records) ~first_pre:first.pre
          ~first_code ~first_depth ~change records;
        (page, first_code, change)
  in
  let total =
    header_bytes
    + List.fold_left (fun acc r -> acc + record_bytes r) 0 records
    (* first record never stores an inline code *)
    - (match records with
      | { code = Some c; _ } :: _ -> Varint.encoded_length c
      | _ -> 0)
  in
  if total <= page_size then begin
    let page, first_code, change =
      encode_into ~first_depth:vw.first_depths.(lp) records
    in
    let pid = vw.phys.(lp) in
    Disk.write t.disk pid page;
    if Buffer_pool.resident pool pid then begin
      Bytes.blit page 0 (Buffer_pool.get pool pid) 0 page_size;
      ()
    end;
    let first_codes = Array.copy vw.first_codes in
    first_codes.(lp) <- first_code;
    let changes = Array.copy vw.changes in
    changes.(lp) <- change;
    t.view <- { vw with first_codes; changes; vgen = vw.vgen + 1 };
    Hashtbl.replace t.dirty lp ()
  end
  else begin
    (* Split: first half stays on this physical page, second half goes to
       a freshly allocated page spliced into the logical order. *)
    let arr = Array.of_list records in
    let k = Array.length arr in
    let mid = max 1 (k / 2) in
    let left = Array.to_list (Array.sub arr 0 mid) in
    let right = Array.to_list (Array.sub arr mid (k - mid)) in
    let right_first = (List.hd right).pre in
    let new_pid = Disk.allocate t.disk in
    (* Splice the new logical page in at lp+1. *)
    let splice a v =
      let n = Array.length a in
      Array.init (n + 1) (fun i ->
          if i <= lp then a.(i) else if i = lp + 1 then v else a.(i - 1))
    in
    (* Depth of the right page's first node must be recomputed by the
       caller; we derive it from the left page's records by replaying the
       parenthesis balance. *)
    let depth_after =
      List.fold_left
        (fun d r -> d + 1 - r.closes)
        (vw.first_depths.(lp) - 1)
        left
      (* after processing left records, depth of next node = d + 1 *)
      + 1
    in
    let phys = splice vw.phys new_pid in
    let first_pres = splice vw.first_pres right_first in
    let first_codes = splice vw.first_codes 0 (* fixed below *) in
    let first_depths = splice vw.first_depths depth_after in
    let changes = splice vw.changes false in
    let page_l, first_code_l, change_l =
      encode_into ~first_depth:first_depths.(lp) left
    in
    Disk.write t.disk phys.(lp) page_l;
    first_codes.(lp) <- first_code_l;
    changes.(lp) <- change_l;
    (* Code in force just before the right page's first node: replay left. *)
    let code_before_right =
      List.fold_left
        (fun c r -> match r.code with Some c' -> c' | None -> c)
        first_code_l left
    in
    let right =
      match right with
      | ({ code = None; _ } as r) :: rest ->
          { r with code = Some code_before_right } :: rest
      | r :: _ as right ->
          ignore r;
          right
      | [] -> assert false
    in
    let page_r, first_code_r, change_r =
      encode_into ~first_depth:first_depths.(lp + 1) right
    in
    Disk.write t.disk new_pid page_r;
    first_codes.(lp + 1) <- first_code_r;
    changes.(lp + 1) <- change_r;
    (* Invalidate any stale pool copy of the split page. *)
    if Buffer_pool.resident pool phys.(lp) then
      Bytes.blit page_l 0 (Buffer_pool.get pool phys.(lp)) 0 page_size;
    t.view <-
      {
        phys;
        first_pres;
        first_codes;
        changes;
        first_depths;
        n_pages = vw.n_pages + 1;
        vgen = vw.vgen + 1;
      };
    (* Splitting shifts every logical page id after [lp]: previously
       recorded dirty ids no longer name the same pages. *)
    t.renumbered <- true
  end

(** Report and clear the pages rewritten since the last drain.  After a
    split the logical numbering changed, so the only safe answer is
    [`Renumbered] (journal everything). *)
let drain_dirty t =
  let result =
    if t.renumbered then `Renumbered
    else if Hashtbl.length t.dirty = 0 then `Clean
    else
      `Pages
        (List.sort compare (Hashtbl.fold (fun lp () acc -> lp :: acc) t.dirty []))
  in
  Hashtbl.reset t.dirty;
  t.renumbered <- false;
  result

(** {1 Verification} *)

(** Rebuild the document tree by scanning all pages in logical order —
    exercises the full decode path; used by round-trip tests. *)
let decode_tree t pool ~tag_table =
  let b = Tree.Builder.create ~table:tag_table () in
  let names = tag_table in
  for lp = 0 to t.view.n_pages - 1 do
    List.iter
      (fun r ->
        ignore (Tree.Builder.open_element b (Dolx_xml.Tag.name names r.tag));
        for _ = 1 to r.closes do
          Tree.Builder.close_element b
        done)
      (records t pool lp)
  done;
  Tree.Builder.finish b

(** Recover the full (pre, code) transition list from the physical pages,
    including the synthetic per-page initial transitions collapsed away:
    returns the code in force at every node — O(N), test use only. *)
let codes_of_all_nodes t pool =
  let vw = t.view in
  let out = Array.make t.n_nodes 0 in
  let code = ref (-1) in
  for lp = 0 to vw.n_pages - 1 do
    let rs = records t pool lp in
    (match rs with
    | [] -> ()
    | first :: _ ->
        ignore first;
        code := vw.first_codes.(lp));
    List.iteri
      (fun i r ->
        (match r.code with
        | Some c -> code := c
        | None -> if i = 0 then code := vw.first_codes.(lp))
        ;
        out.(r.pre) <- !code)
      rs
  done;
  out

(** Total bytes occupied on disk by the layout. *)
let storage_bytes t = t.view.n_pages * Disk.page_size t.disk

(** Bytes of in-memory page headers (the paper estimates "3Mb to 10Mb as
    page header for processing 1Tb XML data"). *)
let header_table_bytes t = t.view.n_pages * 11 (* 4 + 4 + 2 + 1 per entry *)
