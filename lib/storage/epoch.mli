(** The epoch clock behind snapshot isolation (one per {!Disk}).

    Writers {!advance} the clock once per published update; readers
    {!pin} the current epoch for the duration of a query so the disk
    retains the page images that were live at that instant.  The
    {!horizon} (oldest pinned epoch, or the current epoch when nothing
    is pinned) is the retirement rule: versions visible only below it
    can never be read again. *)

type t

val create : unit -> t

val current : t -> int

(** Advance the clock (the publish point of an update); returns the new
    epoch. *)
val advance : t -> int

(** Pin the current epoch and return it; until the matching {!unpin},
    page versions visible at that epoch are retained. *)
val pin : t -> int

(** Release one pin on epoch [e].
    @raise Invalid_argument when [e] is not currently pinned. *)
val unpin : t -> int -> unit

(** Is any epoch pinned right now? *)
val pinned : t -> bool

val pin_count : t -> int

(** Oldest pinned epoch, or [current] when nothing is pinned. *)
val horizon : t -> int
