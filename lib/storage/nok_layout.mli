(** Block-oriented NoK storage with embedded access-control codes — the
    paper's §3 physical representation.

    Document structure is stored as document-order node records (tag +
    close-paren count, the compacted string of §3.1); DOL transition
    nodes additionally carry an access-control code (§3.2).  The first
    node of every page is treated as a transition whose code lives in the
    page header, and an in-memory page table (first preorder, first code,
    change bit, first depth per page) supports the I/O optimizations of
    §3.2/§3.3 without touching disk. *)

module Tree = Dolx_xml.Tree

(** Fixed per-page header size in bytes. *)
val header_bytes : int

type header = {
  first_pre : int;
  first_code : int;
  change : bool;  (** a transition other than the initial one is present *)
  first_depth : int;
}

type t

(** One node record.  Exposed concretely so update code can rewrite
    pages; [code] is never [Some _] on a page's first record. *)
type record = {
  pre : int;
  tag : int;
  closes : int;
  code : int option;
}

val page_count : t -> int

val node_count : t -> int

val disk : t -> Disk.t

(** A snapshot handle over the current page table: shares the disk but
    never observes later {!rewrite_page}s (rewrites are copy-on-write —
    the live layout swaps in a fresh table instead of mutating the one
    this handle holds).  Pair it with an epoch-pinned {!Buffer_pool} so
    the page images match the table.  Mutating a frozen handle raises
    [Invalid_argument]. *)
val freeze : t -> t

val frozen : t -> bool

(** In-memory header of logical page [lp] — no I/O. *)
val header : t -> int -> header

(** Logical page holding preorder [pre] — binary search of the in-memory
    page table, no I/O. *)
val page_of : t -> int -> int

val physical_page : t -> int -> int

(** Encoded size of a record in bytes. *)
val record_bytes : record -> int

(** Low-level page encoder (shared with {!Stream_layout}): write a
    header + records into a page buffer. *)
val encode_records :
  Page.t -> n:int -> first_pre:int -> first_code:int -> first_depth:int ->
  change:bool -> record list -> unit

(** Lay the document out on [disk] in document order.  [transitions] is
    the DOL transition list as sorted [(preorder, code)] pairs starting
    at the root; [fill] bounds page occupancy at build time (default
    0.9 — the slack absorbs accessibility updates in place, §3.4).
    @raise Invalid_argument on pages < 64 bytes or bad transitions. *)
val build : ?fill:float -> Disk.t -> Tree.t -> transitions:(int * int) array -> t

(** Attach to a disk whose pages [0, n_pages) hold a layout in dense
    logical order (a database-file load): the page table is rebuilt from
    the page headers.  @raise Invalid_argument on out-of-order pages. *)
val attach : Disk.t -> n_pages:int -> t

(** Raw image of logical page [lp], bypassing the pool (database-file
    export). *)
val page_image : t -> int -> Page.t

(** Fetch the page holding [pre] through the pool (accounted I/O);
    returns its logical page id. *)
val touch : t -> Buffer_pool.t -> int -> int

(** Decode all records of logical page [lp]. *)
val records : t -> Buffer_pool.t -> int -> record list

(** Decode all records of a raw page image (no pool, no layout) —
    database-file recovery use. *)
val decode_image : Page.t -> record list

(** A private scan-resume position for {!code_in_force_at}.  Each reader
    handle owns one; positions self-invalidate after any
    {!rewrite_page} (generation stamp), so a stale cursor degrades to a
    from-page-start replay, never a wrong code. *)
type cursor

(** A fresh (invalid) cursor for this layout. *)
val cursor : t -> cursor

(** The access-control code in force at node [pre] (§3.3): the header
    code replayed through the inline codes up to [pre], on the node's own
    page only.  Consecutive forward lookups resume from [cu], mirroring
    the NoK evaluator's sequential page cursor.  Distinct cursors make
    lookups independent, so concurrent readers (each with a private
    buffer pool) can share one layout. *)
val code_in_force_at : t -> cursor -> Buffer_pool.t -> int -> int

(** {!code_in_force_at} on the layout's own built-in cursor —
    single-handle use only. *)
val code_in_force : t -> Buffer_pool.t -> int -> int

(** Rewrite logical page [lp] with new records (same first preorder; an
    inline code on the first record moves into the header).  Splits the
    page when the encoding no longer fits — update locality, §3.4.
    [code_before pre] must give the code in force at [pre] when the first
    record carries none. *)
val rewrite_page :
  t -> Buffer_pool.t -> int -> record list -> code_before:(int -> int) -> unit

(** Logical pages rewritten since the last drain (sorted), [`Clean] when
    none, or [`Renumbered] when a page split shifted logical ids — then
    previously recorded ids are meaningless and callers must treat every
    page as changed.  Clears the tracked state. *)
val drain_dirty : t -> [ `Clean | `Pages of int list | `Renumbered ]

(** Rebuild the document by scanning all pages — the full decode path;
    for round-trip tests.  [tag_table] must resolve the stored tag ids
    (i.e. be the original document's table). *)
val decode_tree : t -> Buffer_pool.t -> tag_table:Dolx_xml.Tag.table -> Tree.t

(** The code in force at every node, by a full scan — O(N), test use. *)
val codes_of_all_nodes : t -> Buffer_pool.t -> int array

(** Bytes occupied on disk. *)
val storage_bytes : t -> int

(** Bytes of the in-memory page-header table. *)
val header_table_bytes : t -> int
