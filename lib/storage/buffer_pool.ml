(** A buffer pool over the simulated {!Disk} with LRU replacement.

    Pages are fetched through the pool so every experiment can report
    logical page touches, buffer hits, and physical disk I/O separately.
    The ε-NoK evaluation result (≈2% overhead, paper §5.2) rests on the
    access-control check being buffer-resident ("piggy-backed") — the
    counters here are what demonstrate it.

    Disk faults are handled, not ignored: transient read errors are
    retried a bounded number of times (counted in [stats.retries]), and
    {!flush_all} attempts every dirty frame before reporting failures,
    so one bad page cannot silently discard unrelated dirty pages. *)

module Lru = Dolx_util.Lru
module Metrics = Dolx_obs.Metrics

let c_touches = Metrics.counter "pool.touches"

let c_hits = Metrics.counter "pool.hits"

let c_misses = Metrics.counter "pool.misses"

let c_retries = Metrics.counter "pool.retries"

let c_evictions = Metrics.counter "pool.evictions"

let c_eviction_flush_failures = Metrics.counter "pool.eviction_flush_failures"

let c_flush_failures = Metrics.counter "pool.flush_failures"

let c_flushes = Metrics.counter "pool.flushes"

exception Flush_failed of (int * exn) list

let () =
  Printexc.register_printer (function
    | Flush_failed failures ->
        Some
          (Printf.sprintf "Buffer_pool.Flush_failed([%s])"
             (String.concat "; "
                (List.map
                   (fun (pid, exn) ->
                     Printf.sprintf "page %d: %s" pid (Printexc.to_string exn))
                   failures)))
    | _ -> None)

type stats = {
  mutable touches : int; (* logical page accesses *)
  mutable hits : int;
  mutable misses : int;
  mutable retries : int; (* re-reads after transient disk faults *)
  mutable evictions : int; (* frames recycled to make room *)
  mutable eviction_flush_failures : int;
      (* evictions aborted because the victim's dirty flush faulted; the
         victim stays resident, so no modified page is ever dropped *)
}

type frame = {
  mutable page_id : int;
  data : Page.t;
  mutable dirty : bool;
  (* The frame's position in the recency list, so a hit touches the LRU
     through the node (pointer compare when already MRU) instead of a
     second hash lookup. *)
  mutable lnode : Lru.node;
}

type t = {
  disk : Disk.t;
  capacity : int;
  max_read_retries : int;
  (* [Some e]: a reader pool pinned at epoch [e] — misses resolve
     through the disk's version chains to the image live at [e].
     Pinned pools never hold dirty frames (readers do not write). *)
  epoch : int option;
  frames : (int, frame) Hashtbl.t; (* page_id -> frame *)
  lru : Lru.t;
  stats : stats;
}

let create ?(capacity = 64) ?(max_read_retries = 3) ?epoch disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create";
  if max_read_retries < 0 then
    invalid_arg "Buffer_pool.create: negative max_read_retries";
  {
    disk;
    capacity;
    max_read_retries;
    epoch;
    frames = Hashtbl.create (2 * capacity);
    lru = Lru.create ~capacity_hint:capacity ();
    stats =
      {
        touches = 0;
        hits = 0;
        misses = 0;
        retries = 0;
        evictions = 0;
        eviction_flush_failures = 0;
      };
  }

let disk t = t.disk

let stats t = t.stats

let reset_stats t =
  t.stats.touches <- 0;
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.retries <- 0;
  t.stats.evictions <- 0;
  t.stats.eviction_flush_failures <- 0

let flush_frame t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.page_id frame.data;
    frame.dirty <- false
  end

let evict_one t =
  match Lru.pop_lru t.lru with
  | None -> failwith "Buffer_pool: all frames pinned (impossible: no pinning)"
  | Some victim ->
      let frame = Hashtbl.find t.frames victim in
      (* Flush the victim BEFORE unregistering it.  The old order
         (remove, then flush) orphaned the frame when the write faulted:
         the dirty page was silently lost and a later [get] re-read the
         stale on-disk copy.  On a flush fault the victim is re-queued
         as most-recently-used — still resident, still dirty — and the
         fault propagates; a permanently bad page then surfaces on every
         further eviction attempt instead of failing open. *)
      (match flush_frame t frame with
      | () -> ()
      | exception e ->
          t.stats.eviction_flush_failures <- t.stats.eviction_flush_failures + 1;
          Metrics.incr c_eviction_flush_failures;
          frame.lnode <- Lru.insert t.lru victim;
          raise e);
      Hashtbl.remove t.frames victim;
      t.stats.evictions <- t.stats.evictions + 1;
      Metrics.incr c_evictions;
      frame

(* Read with bounded retry: only [Transient_read] faults are retried —
   bad pages and checksum mismatches are not going to get better. *)
let read_retrying t id dst =
  let rec go attempts_left =
    try Disk.read ?epoch:t.epoch t.disk id dst with
    | Disk.Fault { kind = Disk.Transient_read; _ } when attempts_left > 0 ->
        t.stats.retries <- t.stats.retries + 1;
        Metrics.incr c_retries;
        go (attempts_left - 1)
  in
  go t.max_read_retries

(** Fetch page [id], reading from disk on a miss.  The returned bytes are
    the pool's frame: treat as read-only unless followed by
    [mark_dirty].  The hit path is one hash lookup (the LRU is touched
    through the frame's node, a no-op when the frame is already MRU). *)
let get t id =
  t.stats.touches <- t.stats.touches + 1;
  Metrics.incr c_touches;
  match Hashtbl.find_opt t.frames id with
  | Some frame ->
      t.stats.hits <- t.stats.hits + 1;
      Metrics.incr c_hits;
      Lru.touch_node t.lru frame.lnode;
      frame.data
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      Metrics.incr c_misses;
      let frame =
        if Hashtbl.length t.frames >= t.capacity then begin
          let f = evict_one t in
          f.page_id <- id;
          f
        end
        else
          {
            page_id = id;
            data = Page.create (Disk.page_size t.disk);
            dirty = false;
            lnode = Lru.detached ();
          }
      in
      (match read_retrying t id frame.data with
      | () -> ()
      | exception e ->
          (* Recycled frames must not stay registered under their old id
             with stale dirty state; the read never populated [frame]. *)
          frame.dirty <- false;
          raise e);
      frame.dirty <- false;
      Hashtbl.replace t.frames id frame;
      frame.lnode <- Lru.insert t.lru id;
      frame.data

(** Declare that the cached copy of [id] has been modified in place. *)
let mark_dirty t id =
  match Hashtbl.find_opt t.frames id with
  | Some frame -> frame.dirty <- true
  | None ->
      invalid_arg
        (Printf.sprintf
           "Buffer_pool.mark_dirty: page %d not resident (mark_dirty must \
            follow the get that produced the frame, before any other get \
            that could evict it)"
           id)

(** Write all dirty frames back to disk.  Every dirty frame is attempted;
    failures are collected and reported together. *)
let flush_all t =
  Metrics.incr c_flushes;
  let failures = ref [] in
  Hashtbl.iter
    (fun pid frame ->
      try flush_frame t frame
      with e -> failures := (pid, e) :: !failures)
    t.frames;
  match !failures with
  | [] -> ()
  | fs ->
      Metrics.add c_flush_failures (List.length fs);
      raise (Flush_failed (List.sort (fun (a, _) (b, _) -> compare a b) fs))

(** Drop everything (writing dirty pages back); resets residency but not
    counters. *)
let clear t =
  let flush_error = try flush_all t; None with e -> Some e in
  Hashtbl.reset t.frames;
  while Lru.pop_lru t.lru <> None do
    ()
  done;
  match flush_error with None -> () | Some e -> raise e

let resident t id = Hashtbl.mem t.frames id
