(** The epoch clock behind snapshot isolation.

    One clock per simulated {!Disk}.  Writers advance the clock once per
    published update; readers pin the current epoch for the duration of
    a query and see the page images that were live at that instant (the
    disk retains superseded images in per-page version chains, see
    {!Disk}).  The {!horizon} — the oldest pinned epoch, or the current
    epoch when nothing is pinned — is the retirement rule: a version
    visible only below the horizon can never be read again and is
    dropped.

    All operations are mutex-serialized; pin/unpin sit on the query
    setup path (not the per-node hot path), so contention is bounded by
    query arrival rate, not evaluation work. *)

module Metrics = Dolx_obs.Metrics

let c_advances = Metrics.counter "epoch.advances"

let c_pins = Metrics.counter "epoch.pins"

let g_current = Metrics.gauge "epoch.current"

let g_active_pins = Metrics.gauge "epoch.active_pins"

type t = {
  m : Mutex.t;
  mutable current : int;
  pins : (int, int) Hashtbl.t; (* epoch -> number of pins at that epoch *)
  mutable n_pins : int;
}

let create () =
  { m = Mutex.create (); current = 0; pins = Hashtbl.create 8; n_pins = 0 }

let locked t f =
  Mutex.lock t.m;
  match f () with
  | v ->
      Mutex.unlock t.m;
      v
  | exception e ->
      Mutex.unlock t.m;
      raise e

let current t = locked t (fun () -> t.current)

(** Advance the clock (the publish point of an update) and return the
    new epoch. *)
let advance t =
  locked t @@ fun () ->
  t.current <- t.current + 1;
  Metrics.incr c_advances;
  Metrics.gauge_set g_current (float_of_int t.current);
  t.current

(** Pin the current epoch and return it.  Until the matching {!unpin},
    page versions visible at the returned epoch are retained. *)
let pin t =
  locked t @@ fun () ->
  let e = t.current in
  Hashtbl.replace t.pins e
    (1 + Option.value (Hashtbl.find_opt t.pins e) ~default:0);
  t.n_pins <- t.n_pins + 1;
  Metrics.incr c_pins;
  Metrics.gauge_set g_active_pins (float_of_int t.n_pins);
  e

(** @raise Invalid_argument when [e] is not currently pinned. *)
let unpin t e =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.pins e with
  | None -> invalid_arg (Printf.sprintf "Epoch.unpin: epoch %d not pinned" e)
  | Some 1 -> Hashtbl.remove t.pins e
  | Some k -> Hashtbl.replace t.pins e (k - 1));
  t.n_pins <- t.n_pins - 1;
  Metrics.gauge_set g_active_pins (float_of_int t.n_pins)

let pinned t = locked t (fun () -> t.n_pins > 0)

let pin_count t = locked t (fun () -> t.n_pins)

(** The retirement horizon: the oldest pinned epoch, or the current
    epoch when nothing is pinned.  A page version whose visibility ends
    at or below the horizon has no possible reader left. *)
let horizon t =
  locked t @@ fun () ->
  if t.n_pins = 0 then t.current
  else Hashtbl.fold (fun e _ acc -> min e acc) t.pins max_int
