(** A buffer pool over the simulated {!Disk} with LRU replacement.  The
    counters here are what demonstrate the paper's key claim that ε-NoK's
    access checks are served from already-resident pages (§3.3, §5.2).

    Transient disk read faults are retried a bounded number of times;
    {!flush_all} attempts every dirty frame before reporting failures. *)

(** Raised by {!flush_all} (and {!clear}) after attempting every dirty
    frame: the pages that could not be written back, with the exception
    each write raised, sorted by page id.  Frames that did flush are
    clean; the failed ones remain dirty. *)
exception Flush_failed of (int * exn) list

type stats = {
  mutable touches : int;  (** logical page accesses *)
  mutable hits : int;
  mutable misses : int;
  mutable retries : int;  (** re-reads after transient disk faults *)
  mutable evictions : int;  (** frames recycled to make room *)
  mutable eviction_flush_failures : int;
      (** evictions aborted because the victim's dirty flush faulted; the
          victim stays resident (and dirty), so no modified page is
          dropped *)
}

type t

(** [max_read_retries] (default 3) bounds how many times a miss's disk
    read is retried after a [Disk.Fault Transient_read]; permanent
    faults ([Bad_page], [Checksum_mismatch]) are never retried.
    [?epoch] pins the pool to a snapshot: misses resolve through the
    disk's version chains to the page images live at that (pinned)
    epoch.  Pinned pools are for readers — they must never hold dirty
    frames.
    @raise Invalid_argument when [capacity < 1] or
    [max_read_retries < 0]. *)
val create : ?capacity:int -> ?max_read_retries:int -> ?epoch:int -> Disk.t -> t

val disk : t -> Disk.t

val stats : t -> stats

val reset_stats : t -> unit

(** Fetch a page, reading from disk on a miss (evicting LRU when full).
    The returned bytes are the pool's frame: read-only unless followed by
    {!mark_dirty}.
    @raise Disk.Fault when the read keeps failing after
    [max_read_retries] retries, the page is bad, or its checksum does
    not verify.  The pool is left consistent: the page is simply not
    resident.  Also raised when eviction is needed and the victim's
    dirty flush faults — the victim then stays resident and dirty
    (counted in [eviction_flush_failures]); no modified page is ever
    silently dropped. *)
val get : t -> int -> Page.t

(** Declare the cached copy of page [id] modified in place.

    {b Contract}: call this immediately after the {!get} that returned
    the frame you mutated, {e before} any other [get] — a later [get]
    may evict the (still clean-looking) frame and the modification is
    silently lost.  Calling it on a non-resident page therefore raises
    rather than degrades to a no-op.
    @raise Invalid_argument when the page is not resident. *)
val mark_dirty : t -> int -> unit

(** Write all dirty frames back to disk.  Every dirty frame is attempted
    even when some fail.
    @raise Flush_failed listing each page that could not be written. *)
val flush_all : t -> unit

(** Flush and drop all frames (counters kept).  Frames are dropped even
    when flushing fails.
    @raise Flush_failed as for {!flush_all}. *)
val clear : t -> unit

val resident : t -> int -> bool
