(** Seeded generators for differential fuzzing.

    Everything is derived deterministically from a {!params} record: the
    same parameters always produce the same document, policy, queries and
    update trace (see {!fingerprint}).  Each component draws from its own
    splitmix64 sub-stream, and list-shaped components (rules, queries,
    trace) sub-seed every element independently, so shrinking one
    parameter (fewer rules, shorter trace) leaves the other components —
    and the surviving prefix — bit-identical.  That prefix stability is
    what lets the shrinker of {!Diff} reduce a failing case by simply
    regenerating it with smaller parameters. *)

module Tree = Dolx_xml.Tree
module Pattern = Dolx_nok.Pattern

(** The self-contained description of one fuzz case.  [seed] picks the
    random streams; the size fields bound each component. *)
type params = {
  seed : int;
  nodes : int;      (** document node budget *)
  n_users : int;
  n_groups : int;
  n_rules : int;
  n_queries : int;
  trace_len : int;
  rule_mask : int;  (** [-1] keeps all [n_rules] rules; otherwise bit [i]
                        keeps rule [i] — lets the shrinker drop a single
                        rule from the middle of the set *)
}

(** Number of rules surviving [rule_mask]. *)
val effective_rules : params -> int

(** Sizes drawn from [seed] itself: mostly small documents with a heavy
    tail, 1–4 users, 0–2 groups, up to ~12 rules, 1–3 queries and up to
    8 trace operations. *)
val params_of_seed : int -> params

(** A generated query: the pattern the engines evaluate, plus the XPath
    source when the query was generated as a path string. *)
type query = { pat : Pattern.t; src : string option }

(** One raw trace operation.  Node/subject operands are unresolved
    random draws — {!Diff} reduces them modulo the document size and
    subject width at application time, so a trace stays applicable as
    structural operations grow and shrink the document. *)
type op =
  | Set_node of { subject : int; grant : bool; node : int }
  | Set_subtree of { subject : int; grant : bool; node : int }
  | Delete_subtree of { node : int }
  | Insert_subtree of { parent : int; sibling : int; frag_seed : int; frag_nodes : int }
  | Add_subject of { like : int option }
  | Remove_subject of { subject : int }
  | Compact
  | Query of query

type case = {
  params : params;
  tree : Tree.t;
  subjects : Dolx_policy.Subject.registry;
  modes : Dolx_policy.Mode.registry;
  mode : Dolx_policy.Mode.id;
  rules : Dolx_policy.Rule.t list;
  queries : query list;
  trace : op list;
  page_size : int;  (** store page size, drawn from the seed *)
}

(** Generate the case described by [params].  Total over all components;
    never raises for [params] with positive sizes. *)
val case : params -> case

(** Random document with skewed depth/fanout and a tag alphabet drawn
    from a fixed pool; leaves occasionally carry text from a small
    vocabulary.  Used both for the main document and for inserted
    fragments. *)
val tree : seed:int -> nodes:int -> Tree.t

(** A standalone random accessibility matrix [subject -> node -> bool]
    for an inserted fragment ([width] rows, [Tree.size] columns). *)
val fragment_matrix : seed:int -> width:int -> Tree.t -> bool array array

(** One-line description for reports: the XPath source when the query
    came from a path string, otherwise a canonical shape string. *)
val query_to_string : query -> string

(** Canonical digest of every generated component (structure string,
    rules, query shapes, trace shapes) — equal iff the generated case is
    semantically identical.  Pattern ids are excluded, so two
    generations of the same seed fingerprint equally. *)
val fingerprint : case -> string
