module Tree = Dolx_xml.Tree
module Subject = Dolx_policy.Subject
module Propagate = Dolx_policy.Propagate
module Labeling = Dolx_policy.Labeling
module Dol = Dolx_core.Dol
module Store = Dolx_core.Secure_store
module Update = Dolx_core.Update
module Db_file = Dolx_core.Db_file
module Group_commit = Dolx_core.Group_commit
module Disk = Dolx_storage.Disk
module Tag_index = Dolx_index.Tag_index
module Engine = Dolx_nok.Engine
module Exec = Dolx_exec.Exec
module Prng = Dolx_util.Prng
module Bitset = Dolx_util.Bitset

type config = {
  run_index : bool;
  succinct : bool;
  summary : bool;
  jobs : int;
  faults : bool;
  recovery : bool;
}

let base_config =
  {
    run_index = true;
    succinct = true;
    summary = true;
    jobs = 1;
    faults = false;
    recovery = false;
  }

let lattice =
  [
    base_config;
    { base_config with run_index = false };
    { base_config with succinct = false };
    { base_config with summary = false };
    { base_config with succinct = false; summary = false };
    { base_config with jobs = 4 };
    { base_config with faults = true };
    { base_config with recovery = true };
  ]

(* Every case probes both run-index settings internally (the checks
   toggle per handle), so the rotation alternates the store-level
   setting and cycles the expensive extras. *)
let config_for_case i =
  let i = abs i in
  let run_index = i land 1 = 0 in
  let succinct = (i lsr 1) land 1 = 0 in
  let summary = (i lsr 2) land 1 = 0 in
  match i mod 3 with
  | 0 -> { base_config with run_index; succinct; summary; jobs = 4 }
  | 1 -> { base_config with run_index; succinct; summary; faults = true }
  | _ -> { base_config with run_index; succinct; summary; recovery = true }

let config_name c =
  Printf.sprintf "runs=%s,succ=%s,sum=%s,jobs=%d,faults=%s,recovery=%s"
    (if c.run_index then "on" else "off")
    (if c.succinct then "on" else "off")
    (if c.summary then "on" else "off")
    c.jobs
    (if c.faults then "on" else "off")
    (if c.recovery then "on" else "off")

type mismatch = { params : Gen.params; config : config; check : string; detail : string }

exception Check_failed of string * string

let failf check fmt = Printf.ksprintf (fun d -> raise (Check_failed (check, d))) fmt

(* --- per-case mutable state: the stack under test + the oracle --- *)

type st = {
  cfg : config;
  case : Gen.case;
  oracle : Oracle.t;
  mutable tree : Tree.t;
  mutable store : Store.t;
  mutable index : Tag_index.t;
  torn_rng : Prng.t;  (* extra tear points for update_images *)
  fault_seed : int;
}

let install_faults st =
  if st.cfg.faults then
    Disk.set_fault_plan (Store.disk st.store)
      (Some (Disk.fault_plan ~transient_read_p:0.01 (Prng.create st.fault_seed)))

(* Structural updates renumber preorders: rebuild the physical layout
   (as Update's contract requires) and the tag index. *)
let apply_flags cfg store =
  Store.set_run_index store cfg.run_index;
  Store.set_succinct store cfg.succinct;
  Store.set_summary store cfg.summary

let rebuilt st dol' =
  st.store <- Store.rebuild st.store st.tree dol';
  apply_flags st.cfg st.store;
  install_faults st;
  st.index <- Tag_index.build st.tree

(* --- cross-checks --- *)

let ints l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

let with_runs_toggled st f =
  Store.set_run_index st.store (not st.cfg.run_index);
  Fun.protect ~finally:(fun () -> Store.set_run_index st.store st.cfg.run_index) f

(* Every access check the store exposes, against the oracle matrix, on
   both run-index settings.  Big cases are stride-sampled (the first
   nodes are always probed). *)
let check_matrix st tag =
  let n = Tree.size st.tree and w = Oracle.width st.oracle in
  let stride = max 1 (n * w / 4096) in
  let probe s v =
    let want = Oracle.accessible st.oracle ~subject:s v in
    if Store.accessible st.store ~subject:s v <> want then
      failf tag "accessible s=%d v=%d: store %b, oracle %b" s v (not want) want;
    if Store.accessible_with_skip st.store ~subject:s v <> want then
      failf tag "accessible_with_skip s=%d v=%d: store %b, oracle %b" s v (not want) want
  in
  let sweep () =
    let i = ref 0 in
    for s = 0 to w - 1 do
      for v = 0 to n - 1 do
        if v < 8 || !i mod stride = 0 then probe s v;
        incr i
      done
    done
  in
  sweep ();
  with_runs_toggled st sweep

let oracle_sem st = function
  | Engine.Insecure -> Oracle.Any
  | Engine.Secure s -> Oracle.Bound (fun v -> Oracle.accessible st.oracle ~subject:s v)
  | Engine.Secure_path s -> Oracle.Path (fun v -> Oracle.accessible st.oracle ~subject:s v)

let sem_name = function
  | Engine.Insecure -> "insecure"
  | Engine.Secure s -> Printf.sprintf "secure(%d)" s
  | Engine.Secure_path s -> Printf.sprintf "secure-path(%d)" s

(* All three semantics, secure ones for the first few subjects. *)
let all_sems st =
  let w = min (Oracle.width st.oracle) 3 in
  Engine.Insecure
  :: List.concat (List.init w (fun s -> [ Engine.Secure s; Engine.Secure_path s ]))

let check_query st tag (q : Gen.query) =
  List.iter
    (fun sem ->
      let want = Oracle.eval st.tree (oracle_sem st sem) q.Gen.pat in
      let engine label =
        let got = (Engine.run st.store st.index q.Gen.pat sem).Engine.answers in
        if got <> want then
          failf tag "%s under %s%s: engine %s, oracle %s" (Gen.query_to_string q)
            (sem_name sem) label (ints got) (ints want)
      in
      engine "";
      with_runs_toggled st (fun () -> engine " (runs toggled)"))
    (all_sems st)

(* Executor batch (inter-query) plus one intra-query parallel run. *)
let check_exec st tag =
  if st.cfg.jobs > 1 then
    let tasks =
      List.concat_map
        (fun q -> List.map (fun sem -> (q, sem)) (all_sems st))
        st.case.Gen.queries
    in
    if tasks <> [] then
      Exec.with_executor ~jobs:st.cfg.jobs st.store st.index (fun ex ->
          let results = Exec.run_batch ex (List.map (fun (q, s) -> (q.Gen.pat, s)) tasks) in
          List.iter2
            (fun (q, sem) (r : Engine.result) ->
              let want = Oracle.eval st.tree (oracle_sem st sem) q.Gen.pat in
              if r.Engine.answers <> want then
                failf tag "batch %s under %s: executor %s, oracle %s"
                  (Gen.query_to_string q) (sem_name sem) (ints r.Engine.answers)
                  (ints want))
            tasks results;
          let q, sem = List.hd tasks in
          let want = Oracle.eval st.tree (oracle_sem st sem) q.Gen.pat in
          let got = (Exec.run ex q.Gen.pat sem).Engine.answers in
          if got <> want then
            failf tag "intra-query %s under %s: executor %s, oracle %s"
              (Gen.query_to_string q) (sem_name sem) (ints got) (ints want))

(* --- trace application --- *)

let store_matrix store w =
  let n = Tree.size (Store.tree store) in
  Array.init w (fun s -> Array.init n (fun v -> Store.accessible store ~subject:s v))

(* Accessibility update: applied directly, or — under [recovery] —
   through the journaled crash-replay, checking that every crash image
   loads as exactly the pre- or exactly the post-update matrix. *)
let apply_access st i upd =
  let tag =
    Printf.sprintf "trace[%d].%s" i
      (match upd with `Node _ -> "set-node" | `Subtree _ -> "set-subtree")
  in
  let stack_update store =
    match upd with
    | `Node (s, g, v) -> ignore (Update.set_node_accessibility store ~subject:s ~grant:g v)
    | `Subtree (s, g, v) -> Update.set_subtree_accessibility store ~subject:s ~grant:g v
  in
  let oracle_update () =
    match upd with
    | `Node (s, g, v) -> Oracle.set_node st.oracle ~subject:s ~grant:g v
    | `Subtree (s, g, v) ->
        Oracle.set_range st.oracle ~subject:s ~grant:g ~lo:v ~hi:(Tree.subtree_end st.tree v)
  in
  if not st.cfg.recovery then begin
    (* MVCC snapshot isolation: a reader pinned before the update keeps
       the pre-update matrix; a reader opened after sees exactly the
       post-update matrix.  Probed on the touched range plus a few
       strided points so a stale or mixed snapshot is caught on the spot
       (this is the deterministic companion to [check_linearizable]). *)
    let n = Tree.size st.tree and w = Oracle.width st.oracle in
    let v0, v1 =
      match upd with
      | `Node (_, _, v) -> (v, v)
      | `Subtree (_, _, v) -> (v, Tree.subtree_end st.tree v)
    in
    let probes =
      List.sort_uniq compare
        (List.filter
           (fun v -> v >= 0 && v < n)
           [ 0; n - 1; v0 - 1; v0; (v0 + v1) / 2; v1; v1 + 1; n / 3 ])
    in
    let pre = Oracle.snapshot st.oracle in
    let pinned = Store.reader st.store in
    Fun.protect
      ~finally:(fun () -> Store.release pinned)
      (fun () ->
        stack_update st.store;
        oracle_update ();
        List.iter
          (fun v ->
            for s = 0 to w - 1 do
              let got = Store.accessible pinned ~subject:s v in
              if got <> pre.(s).(v) then
                failf tag
                  "mvcc-stale: pinned reader s=%d v=%d saw %b, pre-update %b" s
                  v got pre.(s).(v)
            done)
          probes;
        Store.with_reader st.store (fun fresh ->
            List.iter
              (fun v ->
                for s = 0 to w - 1 do
                  let want = Oracle.accessible st.oracle ~subject:s v in
                  if Store.accessible fresh ~subject:s v <> want then
                    failf tag
                      "mvcc-fresh: post-update reader s=%d v=%d saw %b, \
                       oracle %b"
                      s v (not want) want
                done)
              probes))
  end
  else begin
    let w = Oracle.width st.oracle in
    let pre = Oracle.snapshot st.oracle in
    let base = Db_file.to_bytes st.store in
    oracle_update ();
    let post = Oracle.snapshot st.oracle in
    let images = Db_file.update_images ~torn:st.torn_rng ~base stack_update in
    let last = List.length images - 1 in
    List.iteri
      (fun k img ->
        let loaded, _ = Db_file.of_bytes img in
        let want = if k = last then post else pre in
        if store_matrix loaded w <> want then
          failf tag "crash image %d/%d does not load as the %s-update state" k
            (last + 1)
            (if k = last then "post" else "pre"))
      images;
    (* continue the trace from the committed image, like a real restart *)
    let committed, _ = Db_file.of_bytes (List.nth images last) in
    apply_flags st.cfg committed;
    st.store <- committed;
    st.tree <- Store.tree committed;
    install_faults st;
    st.index <- Tag_index.build st.tree
  end

(* --- linearizability under genuinely concurrent updates (jobs > 1) ---

   One writer (the calling domain) applies [k] accessibility updates,
   bumping an atomic schedule counter after each publish; reader domains
   repeatedly open an epoch-pinned reader and probe a fixed sample of
   (subject, node) points plus one query.  Every reader iteration must
   observe exactly one oracle state S_j with j in [lo, hi+1], where lo
   and hi are the counter before and after the probe window (the +1
   because the writer publishes before bumping the counter).  A torn
   snapshot — runs from two policy states, or a page at the wrong
   version — matches no single S_j and fails here. *)
let check_linearizable st ~seed tag =
  let n = Tree.size st.tree and w = Oracle.width st.oracle in
  let prng = Prng.create seed in
  let k = 4 in
  let apply_to oracle (s, v, grant, subtree) =
    if subtree then
      Oracle.set_range oracle ~subject:s ~grant ~lo:v
        ~hi:(Tree.subtree_end st.tree v)
    else Oracle.set_node oracle ~subject:s ~grant v
  in
  let scratch = Oracle.create (Oracle.snapshot st.oracle) in
  let states = Array.make (k + 1) (Oracle.snapshot scratch) in
  let upds =
    List.init k (fun j ->
        let s = Prng.int prng w and v = Prng.int prng n in
        let subtree = Prng.bool prng ~p:0.3 in
        (* flip the node's current bit, so every update is a real change
           and every consecutive pair of states is distinguishable at a
           probed point *)
        let u = (s, v, not (Oracle.accessible scratch ~subject:s v), subtree) in
        apply_to scratch u;
        states.(j + 1) <- Oracle.snapshot scratch;
        u)
  in
  let probes =
    let stride = max 1 (n / 8) in
    let rec pts v = if v >= n then [ n - 1 ] else v :: pts (v + stride) in
    List.sort_uniq compare (pts 0 @ List.map (fun (_, v, _, _) -> v) upds)
  in
  let query =
    match st.case.Gen.queries with q :: _ -> Some q.Gen.pat | [] -> None
  in
  let counter = Atomic.make 0 in
  let failures = Atomic.make [] in
  let record f =
    let rec add () =
      let old = Atomic.get failures in
      if not (Atomic.compare_and_set failures old (f :: old)) then add ()
    in
    add ()
  in
  let reader () =
    let iter = ref 0 in
    let continue = ref true in
    while !continue do
      incr iter;
      let lo = Atomic.get counter in
      let obs, qans =
        Store.with_reader st.store (fun r ->
            let obs =
              List.map
                (fun v -> List.init w (fun s -> Store.accessible r ~subject:s v))
                probes
            in
            let qans =
              Option.map
                (fun pat ->
                  (Engine.run r st.index pat (Engine.Secure 0)).Engine.answers)
                query
            in
            (obs, qans))
      in
      let hi = min (Atomic.get counter + 1) k in
      let matches j =
        let m = states.(j) in
        List.for_all2
          (fun v row -> List.for_all2 (fun s b -> m.(s).(v) = b) (List.init w Fun.id) row)
          probes obs
        &&
        match (query, qans) with
        | Some pat, Some ans ->
            ans = Oracle.eval st.tree (Oracle.Bound (fun v -> m.(0).(v))) pat
        | _ -> true
      in
      let rec any j = j <= hi && (matches j || any (j + 1)) in
      if not (any lo) then
        record
          (Printf.sprintf
             "reader iteration %d: observation matches no single state in \
              [%d,%d]"
             !iter lo hi);
      if Atomic.get counter >= k then continue := false
    done
  in
  (* a reader pinned before the schedule: must read S_0 throughout,
     checked deterministically right after the first update (which, by
     the flip construction, changed a bit this reader must not see) and
     again once the writer is done *)
  let held = Store.reader st.store in
  let check_held ctx =
    List.iter
      (fun v ->
        for s = 0 to w - 1 do
          if Store.accessible held ~subject:s v <> states.(0).(s).(v) then
            record
              (Printf.sprintf "pinned reader drifted off S0 at s=%d v=%d (%s)"
                 s v ctx)
        done)
      probes
  in
  let readers =
    List.init (max 1 (st.cfg.jobs - 1)) (fun _ -> Domain.spawn reader)
  in
  List.iteri
    (fun j u ->
      (match u with
      | s, v, grant, true ->
          Update.set_subtree_accessibility st.store ~subject:s ~grant v
      | s, v, grant, false ->
          ignore (Update.set_node_accessibility st.store ~subject:s ~grant v));
      Atomic.set counter (j + 1);
      if j = 0 then check_held "after first update")
    upds;
  List.iter Domain.join readers;
  check_held "after full schedule";
  Store.release held;
  (* fold the schedule into the trace oracle so the case continues *)
  List.iter (apply_to st.oracle) upds;
  match Atomic.get failures with
  | [] -> ()
  | f :: _ -> failf tag "%s" f

(* --- group commit & torn-batch recovery (recovery configs) ---

   Chain three updates as journal records on a clean image: every
   committed prefix must load as exactly the state after that many
   records, PRNG-chosen torn cuts must load as SOME prefix state, replay
   must be idempotent (load + re-serialize + reload preserves the
   state), and [Group_commit.submit_batch] over the same updates from
   the same base must produce the identical image with the predicted
   flush count. *)
let check_group_crash st tag =
  let n = Tree.size st.tree and w = Oracle.width st.oracle in
  let prng = Prng.create (st.fault_seed lxor 0x6C01) in
  let k = 3 in
  let upds =
    List.init k (fun _ ->
        (Prng.int prng w, Prng.int prng n, Prng.bool prng ~p:0.5))
  in
  let scratch = Oracle.create (Oracle.snapshot st.oracle) in
  let states = Array.make (k + 1) (Oracle.snapshot scratch) in
  List.iteri
    (fun j (s, v, g) ->
      Oracle.set_node scratch ~subject:s ~grant:g v;
      states.(j + 1) <- Oracle.snapshot scratch)
    upds;
  let fs =
    List.map
      (fun (s, v, g) store ->
        ignore (Update.set_node_accessibility store ~subject:s ~grant:g v))
      upds
  in
  let base = Db_file.to_bytes st.store in
  let images =
    Array.of_list
      (List.rev
         (List.fold_left
            (fun acc f ->
              Db_file.append_update ~image:(List.hd acc) f :: acc)
            [ base ] fs))
  in
  Array.iteri
    (fun j img ->
      let loaded, _ = Db_file.of_bytes img in
      if store_matrix loaded w <> states.(j) then
        failf tag "committed prefix %d/%d does not load as state %d" j k j;
      (* idempotent replay: rolling the journal forward and compacting
         must preserve the state exactly (a second recovery pass over
         the same records is a no-op) *)
      let replayed, _ = Db_file.of_bytes (Db_file.to_bytes loaded) in
      if store_matrix replayed w <> states.(j) then
        failf tag "re-serialized image %d/%d changed state on reload" j k)
    images;
  let final = images.(k) in
  let base_len = Bytes.length base in
  let span = Bytes.length final - (base_len - 1) in
  for _ = 1 to 6 do
    let cut = base_len - 1 + Prng.int prng (span + 1) in
    let torn = Bytes.sub final 0 cut in
    let loaded, _ = Db_file.of_bytes torn in
    let m = store_matrix loaded w in
    if not (Array.exists (fun sm -> m = sm) states) then
      failf tag "torn image (cut at %d/%d) loads as no batch-prefix state" cut
        (Bytes.length final)
  done;
  let gc = Group_commit.create base in
  Group_commit.submit_batch gc fs;
  if not (Bytes.equal (Group_commit.image gc) final) then
    failf tag "group-commit image differs from sequential appends";
  let stats = Group_commit.stats gc in
  let mb = Group_commit.max_batch gc in
  let want_flushes = (k + mb - 1) / mb in
  if stats.Group_commit.flushes <> want_flushes then
    failf tag "group commit used %d flushes for %d records (want %d)"
      stats.Group_commit.flushes k want_flushes;
  let clean = Group_commit.checkpoint gc in
  let loaded, _ = Db_file.of_bytes clean in
  if store_matrix loaded w <> states.(k) then
    failf tag "checkpointed image does not load as the final state"

let dol_of_matrix fm n =
  let w = Array.length fm in
  let b = Dol.Streaming.create ~width:w in
  for v = 0 to n - 1 do
    let bs = Bitset.create w in
    for s = 0 to w - 1 do
      Bitset.set bs s fm.(s).(v)
    done;
    ignore (Dol.Streaming.push b bs)
  done;
  Dol.Streaming.finish b

(* Raw generated operands are reduced modulo the current document size /
   subject width here, so traces stay applicable as the document and the
   subject population grow and shrink. *)
let apply_op st i (op : Gen.op) =
  let n = Tree.size st.tree in
  let w = Oracle.width st.oracle in
  (match op with
  | Gen.Query q -> check_query st (Printf.sprintf "trace[%d].query" i) q
  | Gen.Set_node { subject; grant; node } ->
      apply_access st i (`Node (subject mod w, grant, node mod n))
  | Gen.Set_subtree { subject; grant; node } ->
      apply_access st i (`Subtree (subject mod w, grant, node mod n))
  | Gen.Delete_subtree { node } ->
      let v = node mod n in
      if v <> Tree.root then begin
        let hi = Tree.subtree_end st.tree v in
        let dol' = Update.dol_delete (Store.dol st.store) ~lo:v ~hi in
        st.tree <- Tree.remove_subtree st.tree v;
        Oracle.delete_range st.oracle ~lo:v ~hi;
        rebuilt st dol'
      end
  | Gen.Insert_subtree { parent; sibling; frag_seed; frag_nodes } ->
      let p = parent mod n in
      let kids = Tree.children st.tree p in
      let after =
        match sibling mod (List.length kids + 1) with
        | 0 -> Tree.nil
        | k -> List.nth kids (k - 1)
      in
      let frag = Gen.tree ~seed:frag_seed ~nodes:(max 1 frag_nodes) in
      let fm = Gen.fragment_matrix ~seed:frag_seed ~width:w frag in
      let fdol = dol_of_matrix fm (Tree.size frag) in
      let tree', at = Tree.insert_subtree st.tree ~parent:p ~after frag in
      let dol' = Update.dol_insert (Store.dol st.store) ~at fdol in
      st.tree <- tree';
      Oracle.insert_at st.oracle ~at fm;
      rebuilt st dol'
  | Gen.Add_subject { like } ->
      let like = Option.map (fun s -> s mod w) like in
      let s' =
        match like with
        | Some l -> Update.store_add_subject st.store ~like:l ()
        | None -> Update.store_add_subject st.store ()
      in
      if s' <> w then
        failf (Printf.sprintf "trace[%d].add-subject" i) "new index %d, expected %d" s' w;
      Oracle.add_subject st.oracle ~like
  | Gen.Remove_subject { subject } ->
      if w > 1 then begin
        Update.store_remove_subject st.store (subject mod w);
        Oracle.remove_subject st.oracle (subject mod w)
      end
  | Gen.Compact -> Update.compact (Store.dol st.store));
  check_matrix st (Printf.sprintf "trace[%d].post-matrix" i)

(* --- one full case under one configuration --- *)

let check_params cfg (params : Gen.params) =
  try
    let case = Gen.case params in
    let user_acc =
      Oracle.mso_users case.Gen.tree ~subjects:case.Gen.subjects ~mode:case.Gen.mode
        ~default:false case.Gen.rules
    in
    let lab =
      Propagate.compile case.Gen.tree ~subjects:case.Gen.subjects ~mode:case.Gen.mode
        ~default:Propagate.Closed case.Gen.rules
    in
    let ulab, uorder = Labeling.materialize_users lab ~registry:case.Gen.subjects in
    if uorder <> Array.of_list (Subject.users case.Gen.subjects) then
      failf "materialize-users" "user order differs from Subject.users";
    let dol = Dol.of_labeling ulab in
    Dol.validate dol;
    let store =
      Store.create ~page_size:case.Gen.page_size ~pool_capacity:8 ~run_index:cfg.run_index
        ~succinct:cfg.succinct ~path_summary:cfg.summary case.Gen.tree dol
    in
    let st =
      {
        cfg;
        case;
        oracle = Oracle.create user_acc;
        tree = case.Gen.tree;
        store;
        index = Tag_index.build case.Gen.tree;
        torn_rng = Prng.create (params.Gen.seed lxor 0x70A2);
        fault_seed = params.Gen.seed lxor 0xFA17;
      }
    in
    install_faults st;
    check_matrix st "compile.matrix";
    List.iteri (fun i q -> check_query st (Printf.sprintf "query[%d]" i) q) case.Gen.queries;
    check_exec st "exec";
    List.iteri (fun i op -> apply_op st i op) case.Gen.trace;
    if case.Gen.trace <> [] then begin
      check_matrix st "post-trace.matrix";
      List.iteri
        (fun i q -> check_query st (Printf.sprintf "post-trace.query[%d]" i) q)
        case.Gen.queries;
      check_exec st "post-trace.exec"
    end;
    (* run the schedules LAST: both mutate state (linearizable folds its
       updates into the oracle), so running them here keeps the rest of
       the case's trajectory — and its shrink behavior — independent of
       these checks *)
    if cfg.jobs > 1 then begin
      check_linearizable st ~seed:(params.Gen.seed lxor 0x11EA) "linearizable";
      check_matrix st "linearizable.post-matrix"
    end;
    if cfg.recovery then check_group_crash st "group-crash";
    None
  with
  | Check_failed (check, detail) -> Some { params; config = cfg; check; detail }
  | Disk.Fault { kind = Disk.Transient_read; _ } when cfg.faults ->
      (* injected fault escaped the pool's bounded retries: not a bug *)
      None
  | e -> Some { params; config = cfg; check = "exception"; detail = Printexc.to_string e }

let check_all p =
  List.fold_left
    (fun acc cfg -> match acc with Some _ -> acc | None -> check_params cfg p)
    None lattice

(* --- shrinking: regenerate with smaller parameters (prefix-stable
   sub-seeding in Gen keeps the surviving components identical) --- *)

let dedup xs =
  List.rev (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let shrink_candidates (p : Gen.params) =
  let open Gen in
  (* dropping any single rule, in addition to suffix truncation — a
     failure often hinges on one rule in the middle of the set *)
  let full = if p.rule_mask = -1 then (1 lsl max 0 p.n_rules) - 1 else p.rule_mask in
  let mask_drops =
    List.filter_map
      (fun i ->
        if full land (1 lsl i) <> 0 then Some { p with rule_mask = full land lnot (1 lsl i) }
        else None)
      (List.init (max 0 p.n_rules) Fun.id)
  in
  let cands =
    [
      { p with nodes = p.nodes / 2 };
      { p with nodes = p.nodes * 3 / 4 };
      { p with nodes = p.nodes - 1 };
      { p with trace_len = 0 };
      { p with trace_len = p.trace_len / 2 };
      { p with trace_len = p.trace_len - 1 };
      { p with n_rules = 0 };
      { p with n_rules = p.n_rules / 2 };
      { p with n_rules = p.n_rules - 1 };
      { p with n_queries = 1 };
      { p with n_queries = p.n_queries - 1 };
      { p with n_groups = 0 };
      { p with n_groups = p.n_groups - 1 };
      { p with n_users = p.n_users - 1 };
    ]
    @ mask_drops
  in
  let valid q =
    q.nodes >= 1 && q.n_users >= 1 && q.n_groups >= 0 && q.n_rules >= 0
    && q.n_queries >= 0 && q.trace_len >= 0
    (* monotone: never grow any component *)
    && q.nodes <= p.nodes && q.n_users <= p.n_users && q.n_groups <= p.n_groups
    && q.n_rules <= p.n_rules && q.n_queries <= p.n_queries
    && q.trace_len <= p.trace_len
    && Gen.effective_rules q <= Gen.effective_rules p
    && q <> p
  in
  dedup (List.filter valid cands)

let shrink cfg p0 =
  let checks = ref 0 in
  let limit = 200 in
  let rec go p =
    let rec try_cands = function
      | [] -> p
      | c :: rest ->
          if !checks >= limit then p
          else begin
            incr checks;
            match check_params cfg c with Some _ -> go c | None -> try_cands rest
          end
    in
    try_cands (shrink_candidates p)
  in
  let best = go p0 in
  (best, !checks)

(* --- repro lines and corpus files --- *)

let repro_line (p : Gen.params) =
  Printf.sprintf
    "DOLX-FUZZ v1 seed=%d nodes=%d users=%d groups=%d rules=%d queries=%d trace=%d%s"
    p.Gen.seed p.Gen.nodes p.Gen.n_users p.Gen.n_groups p.Gen.n_rules p.Gen.n_queries
    p.Gen.trace_len
    (if p.Gen.rule_mask = -1 then "" else Printf.sprintf " rmask=%d" p.Gen.rule_mask)

let parse_repro line =
  match
    String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
  with
  | "DOLX-FUZZ" :: "v1" :: fields -> (
      try
        let get k =
          let prefix = k ^ "=" in
          match List.find_opt (String.starts_with ~prefix) fields with
          | None -> raise Exit
          | Some f ->
              let v =
                int_of_string
                  (String.sub f (String.length prefix)
                     (String.length f - String.length prefix))
              in
              if v < 0 || v > 1_000_000_000 then raise Exit;
              v
        in
        let p =
          {
            Gen.seed = get "seed";
            nodes = get "nodes";
            n_users = get "users";
            n_groups = get "groups";
            n_rules = get "rules";
            n_queries = get "queries";
            trace_len = get "trace";
            rule_mask = (try get "rmask" with Exit -> -1);
          }
        in
        if p.Gen.nodes >= 1 && p.Gen.n_users >= 1 then Some p else None
      with _ -> None)
  | _ -> None

let describe m =
  Printf.sprintf "%s [%s]\n  %s\n  %s" m.check (config_name m.config)
    (repro_line m.params) m.detail

let replay_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fails = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           match parse_repro line with
           | None -> ()
           | Some p -> (
               match check_all p with
               | None -> ()
               | Some m -> fails := (!lineno, describe m) :: !fails)
         done
       with End_of_file -> ());
      List.rev !fails)

let write_corpus ~dir m =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let sanitize s =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c | _ -> '-')
      s
  in
  let path =
    Filename.concat dir
      (Printf.sprintf "case-%d-%s.seed" m.params.Gen.seed (sanitize m.check))
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "# %s [%s]\n# %s\n%s\n" m.check (config_name m.config)
        (String.concat " " (String.split_on_char '\n' m.detail))
        (repro_line m.params));
  path
