module Tree = Dolx_xml.Tree
module Subject = Dolx_policy.Subject
module Rule = Dolx_policy.Rule
module Pattern = Dolx_nok.Pattern

(* --- Most-Specific-Override, one independent walk per subject --- *)

(* Verdict of the rules anchored at one node for one subject: grants are
   applied first, denies second, so any deny wins at equal specificity. *)
let verdict rules = not (List.exists (fun (r : Rule.t) -> r.Rule.sign = Rule.Deny) rules)

let mso_subject tree ~mode ~default ~subject rules =
  let n = Tree.size tree in
  let self_rules = Array.make n [] in
  let subtree_rules = Array.make n [] in
  List.iter
    (fun (r : Rule.t) ->
      if r.Rule.mode = mode && r.Rule.subject = subject then
        match r.Rule.scope with
        | Rule.Self -> self_rules.(r.Rule.node) <- r :: self_rules.(r.Rule.node)
        | Rule.Subtree -> subtree_rules.(r.Rule.node) <- r :: subtree_rules.(r.Rule.node))
    rules;
  let acc = Array.make n default in
  let rec go v inherited =
    let ctx = if subtree_rules.(v) <> [] then verdict subtree_rules.(v) else inherited in
    acc.(v) <- (if self_rules.(v) <> [] then verdict self_rules.(v) else ctx);
    Tree.iter_children (fun c -> go c ctx) tree v
  in
  go Tree.root default;
  acc

(* Own transitive group closure (self + memberships), cycle-tolerant. *)
let closure registry id =
  let seen = Hashtbl.create 8 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter go (Subject.direct_groups registry id)
    end
  in
  go id;
  Hashtbl.fold (fun s () acc -> s :: acc) seen []

let mso_users tree ~subjects ~mode ~default rules =
  let per_subject =
    Array.init (Subject.count subjects) (fun s ->
        mso_subject tree ~mode ~default ~subject:s rules)
  in
  let users = Array.of_list (Subject.users subjects) in
  Array.map
    (fun u ->
      let cls = closure subjects u in
      Array.init (Tree.size tree) (fun v ->
          List.exists (fun s -> per_subject.(s).(v)) cls))
    users

(* --- brute-force twig evaluation (mirrors test/reference.ml) --- *)

type sem = Any | Bound of (int -> bool) | Path of (int -> bool)

let access = function Any -> fun _ -> true | Bound f | Path f -> f

let test_ok tree (p : Pattern.pnode) v =
  (match p.Pattern.test with
  | Pattern.Wildcard -> true
  | Pattern.Tag name -> Tree.tag_name tree v = name)
  && match p.Pattern.value with None -> true | Some s -> Tree.text tree v = s

let axis_candidates tree sem (p : Pattern.pnode) ctx =
  match p.Pattern.axis with
  | Pattern.Child -> Tree.children tree ctx
  | Pattern.Following_sibling ->
      let rec later u acc =
        if u = Tree.nil then List.rev acc else later (Tree.next_sibling tree u) (u :: acc)
      in
      later (Tree.next_sibling tree ctx) []
  | Pattern.Descendant ->
      let last = Tree.subtree_end tree ctx in
      let ok_path u =
        match sem with
        | Path f ->
            let rec up v = v = ctx || (f v && up (Tree.parent tree v)) in
            up (Tree.parent tree u)
        | Any | Bound _ -> true
      in
      List.filter ok_path (List.init (last - ctx) (fun i -> ctx + 1 + i))

let rec sat tree sem (p : Pattern.pnode) v =
  test_ok tree p v
  && access sem v
  && List.for_all
       (fun c -> List.exists (fun u -> sat tree sem c u) (axis_candidates tree sem c v))
       p.Pattern.children

let eval tree sem (pattern : Pattern.t) =
  let trunk = Pattern.trunk pattern in
  let trunk_ids = List.map (fun (p : Pattern.pnode) -> p.Pattern.id) trunk in
  let preds (p : Pattern.pnode) =
    List.filter
      (fun (c : Pattern.pnode) -> not (List.mem c.Pattern.id trunk_ids))
      p.Pattern.children
  in
  let node_ok (p : Pattern.pnode) v =
    test_ok tree p v
    && access sem v
    && List.for_all
         (fun c -> List.exists (fun u -> sat tree sem c u) (axis_candidates tree sem c v))
         (preds p)
  in
  match trunk with
  | [] -> []
  | first :: rest ->
      let all_nodes = List.init (Tree.size tree) Fun.id in
      let start =
        match first.Pattern.axis with
        | Pattern.Child -> List.filter (node_ok first) [ Tree.root ]
        | Pattern.Following_sibling -> invalid_arg "Oracle: leading following-sibling"
        | Pattern.Descendant -> List.filter (node_ok first) all_nodes
      in
      let step bindings (p : Pattern.pnode) =
        List.sort_uniq compare
          (List.concat_map
             (fun v -> List.filter (node_ok p) (axis_candidates tree sem p v))
             bindings)
      in
      List.sort_uniq compare (List.fold_left step start rest)

(* --- mutable matrix mirroring update traces --- *)

type t = { mutable acc : bool array array }

let create acc = { acc = Array.map Array.copy acc }

let width t = Array.length t.acc

let accessible t ~subject v = t.acc.(subject).(v)

let snapshot t = Array.map Array.copy t.acc

let set_node t ~subject ~grant v = t.acc.(subject).(v) <- grant

let set_range t ~subject ~grant ~lo ~hi =
  for v = lo to hi do
    t.acc.(subject).(v) <- grant
  done

let delete_range t ~lo ~hi =
  t.acc <-
    Array.map
      (fun row ->
        Array.append (Array.sub row 0 lo)
          (Array.sub row (hi + 1) (Array.length row - hi - 1)))
      t.acc

let insert_at t ~at frag =
  if Array.length frag <> Array.length t.acc then
    invalid_arg "Oracle.insert_at: width mismatch";
  t.acc <-
    Array.mapi
      (fun s row ->
        Array.concat
          [ Array.sub row 0 at; frag.(s); Array.sub row at (Array.length row - at) ])
      t.acc

let add_subject t ~like =
  let n = if Array.length t.acc = 0 then 0 else Array.length t.acc.(0) in
  let row =
    match like with
    | Some s -> Array.copy t.acc.(s)
    | None -> Array.make n false
  in
  t.acc <- Array.append t.acc [| row |]

let remove_subject t s =
  t.acc <- Array.append (Array.sub t.acc 0 s) (Array.sub t.acc (s + 1) (width t - s - 1))
