(** Differential driver: cross-checks the full DOL stack against
    {!Oracle} on generated cases, across a configuration lattice, and
    shrinks failures to minimal reproducible parameter sets.

    One case exercises, in order: policy compilation
    ([Propagate] + [Labeling.materialize_users] vs direct MSO), every
    access check ([Secure_store.accessible] / [accessible_with_skip],
    with the run index both as configured and toggled), query answers
    under all three semantics ([Engine.run] vs brute force, again on
    both run-index settings), the update trace ([Update] accessibility /
    structural / subject-set operations against the oracle matrix), and
    per-configuration extras: a [jobs]-wide executor batch, transient
    fault injection, and crash-recovery replay of accessibility updates
    through [Db_file.update_images] (every crash image must load to
    exactly the pre- or exactly the post-update matrix). *)

type config = {
  run_index : bool;  (** store-level run index setting (the opposite is
                         also probed inside every check) *)
  succinct : bool;   (** navigation through the succinct BP tier *)
  summary : bool;    (** DataGuide candidate-class pruning + the
                         summary-path plan in the engine *)
  jobs : int;        (** > 1 adds an executor-batch cross-check *)
  faults : bool;     (** transient-read fault injection on the disk *)
  recovery : bool;   (** accessibility updates go through journaled
                         crash-replay; every image is checked *)
}

(** Plain sequential configuration: run index on, no extras. *)
val base_config : config

(** The checked points of the lattice (run index on/off, succinct
    on/off, summary on/off, jobs 1/4, faults, recovery) — used when
    replaying corpus seeds. *)
val lattice : config list

(** Deterministic per-case rotation through the lattice used by the
    driver and the bench. *)
val config_for_case : int -> config

val config_name : config -> string

type mismatch = {
  params : Gen.params;
  config : config;
  check : string;   (** which cross-check diverged, e.g. "query[1]" *)
  detail : string;
}

(** Human-readable report: check, configuration, repro line, detail. *)
val describe : mismatch -> string

(** Run one case under one configuration.  [None] means every
    cross-check agreed with the oracle.  Unexpected exceptions are
    reported as mismatches; an escaped transient-read fault under
    [faults] is treated as a benign skip. *)
val check_params : config -> Gen.params -> mismatch option

(** {!check_params} across the whole {!lattice}; first divergence wins. *)
val check_all : Gen.params -> mismatch option

(** Greedy shrink under the mismatch's configuration: repeatedly halve /
    decrement the tree budget, drop rules, truncate the trace and drop
    queries while the case still fails.  Returns the smallest failing
    parameters found and the number of re-checks spent. *)
val shrink : config -> Gen.params -> Gen.params * int

(** {1 Repro lines and corpus}

    A repro line is a self-contained seed line like
    ["DOLX-FUZZ v1 seed=71 nodes=18 users=2 groups=0 rules=3 queries=1 trace=2"].
    Corpus files under [test/corpus/] hold one repro line per failure
    (plus [#] comments) and are replayed by the test-suite. *)

val repro_line : Gen.params -> string

(** [None] when the line is not a repro line (comments, blanks). *)
val parse_repro : string -> Gen.params option

(** Replay every repro line of a corpus file across the lattice;
    returns the failures as [(line_number, report)] pairs. *)
val replay_file : string -> (int * string) list

(** Write a corpus file for a shrunk failure; returns its path. *)
val write_corpus : dir:string -> mismatch -> string
