(** The differential oracle: obviously-correct reference semantics for
    the whole stack, computed directly on the in-memory tree — no DOL,
    no codebook, no pages, no index, no runs.

    Three layers:
    - {!mso_users}: rule compilation by direct Most-Specific-Override
      recursion (per subject, independent walks) plus an internal
      group-closure union, materializing effective user rights — the
      reference for [Propagate.compile] + [Labeling.materialize_users].
    - {!eval}: brute-force twig evaluation over an accessibility
      predicate, enumerating candidates exhaustively — the reference for
      the NoK engine under all three semantics.
    - {!t}: a mutable user-by-node boolean matrix mirroring update
      traces (accessibility, structural and subject-set operations) —
      the reference for [Update] + store rebuilds.

    The query evaluator intentionally duplicates [test/reference.ml];
    the test-suite cross-checks the two on fixed fixtures so the copies
    cannot drift apart silently. *)

module Tree = Dolx_xml.Tree
module Pattern = Dolx_nok.Pattern

(** {1 Rule compilation} *)

(** Effective user accessibility [user_pos -> node -> bool], rows in
    [Subject.users] order: per-subject Most-Specific-Override (closest
    labeled ancestor wins; [Self] beats [Subtree] at a node; [Deny]
    beats [Grant] at equal specificity), then each user's row is the
    union over its transitive group closure (paper footnote 4).
    [default] is the verdict with no applicable rule. *)
val mso_users :
  Tree.t -> subjects:Dolx_policy.Subject.registry -> mode:Dolx_policy.Mode.id ->
  default:bool -> Dolx_policy.Rule.t list -> bool array array

(** {1 Brute-force query evaluation} *)

type sem =
  | Any                      (** no access control *)
  | Bound of (int -> bool)   (** Cho et al.: every bound node accessible *)
  | Path of (int -> bool)    (** Gabillon–Bruno: + connecting paths *)

(** All bindings of the returning node, in document order, distinct. *)
val eval : Tree.t -> sem -> Pattern.t -> int list

(** {1 Mutable accessibility matrix (update-trace mirror)} *)

type t

val create : bool array array -> t

(** Number of subjects (matrix rows). *)
val width : t -> int

val accessible : t -> subject:int -> int -> bool

(** Deep copy of the matrix (for pre/post crash-image comparison). *)
val snapshot : t -> bool array array

val set_node : t -> subject:int -> grant:bool -> int -> unit

val set_range : t -> subject:int -> grant:bool -> lo:int -> hi:int -> unit

(** Remove columns [lo, hi] (a deleted subtree's preorder range). *)
val delete_range : t -> lo:int -> hi:int -> unit

(** Insert a fragment's columns so its root lands at preorder [at].
    @raise Invalid_argument on a width mismatch. *)
val insert_at : t -> at:int -> bool array array -> unit

(** Append a subject row: a copy of [like]'s row, or all-deny. *)
val add_subject : t -> like:int option -> unit

(** Remove a subject row; higher rows shift down (codebook semantics). *)
val remove_subject : t -> int -> unit
