(** Seeded generators for differential fuzzing — see gen.mli for the
    determinism and prefix-stability contract. *)

module Tree = Dolx_xml.Tree
module Prng = Dolx_util.Prng
module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode
module Rule = Dolx_policy.Rule
module Pattern = Dolx_nok.Pattern
module Xpath = Dolx_nok.Xpath

type params = {
  seed : int;
  nodes : int;
  n_users : int;
  n_groups : int;
  n_rules : int;
  n_queries : int;
  trace_len : int;
  rule_mask : int;
}

let effective_rules (p : params) =
  if p.rule_mask = -1 then max 0 p.n_rules
  else begin
    let n = ref 0 in
    for i = 0 to p.n_rules - 1 do
      if p.rule_mask land (1 lsl i) <> 0 then incr n
    done;
    !n
  end

type query = { pat : Pattern.t; src : string option }

type op =
  | Set_node of { subject : int; grant : bool; node : int }
  | Set_subtree of { subject : int; grant : bool; node : int }
  | Delete_subtree of { node : int }
  | Insert_subtree of { parent : int; sibling : int; frag_seed : int; frag_nodes : int }
  | Add_subject of { like : int option }
  | Remove_subject of { subject : int }
  | Compact
  | Query of query

type case = {
  params : params;
  tree : Tree.t;
  subjects : Subject.registry;
  modes : Mode.registry;
  mode : Mode.id;
  rules : Rule.t list;
  queries : query list;
  trace : op list;
  page_size : int;
}

(* Independent sub-stream per (seed, salt): splitmix64 scrambles any
   distinct seed, so a cheap injective-enough mix suffices. *)
let sub_rng seed salt =
  Prng.create ((((seed + 0x51ED27) * 0x2545F49) lxor (salt * 0x9E3779B)) land max_int)

let tag_pool = [| "a"; "b"; "c"; "d"; "e"; "item"; "name"; "key" |]
let vocab = [| "x"; "y"; "z"; "v0"; "v1" |]

let tree ~seed ~nodes =
  let rng = sub_rng seed 0x7E3 in
  let nodes = max 1 nodes in
  let alpha = 2 + Prng.int rng (Array.length tag_pool - 1) in
  let tags = Array.sub tag_pool 0 alpha in
  (* skew knobs: probability a child swallows the whole remaining budget
     (deep chains) and probability a leaf carries text *)
  let deep_bias = 0.6 *. Prng.float rng in
  let text_p = 0.5 *. Prng.float rng in
  let b = Tree.Builder.create () in
  let rec go budget depth =
    ignore (Tree.Builder.open_element b (Prng.choose rng tags));
    if budget > 1 then begin
      let remaining = ref (budget - 1) in
      while !remaining > 0 do
        let child_budget =
          if depth > 60 then 1
          else if Prng.bool rng ~p:deep_bias then !remaining
          else 1 + Prng.int rng !remaining
        in
        go child_budget (depth + 1);
        remaining := !remaining - child_budget
      done
    end
    else if Prng.bool rng ~p:text_p then
      Tree.Builder.add_text b (Prng.choose rng vocab);
    Tree.Builder.close_element b
  in
  go nodes 0;
  Tree.Builder.finish b

let fragment_matrix ~seed ~width tree =
  let rng = sub_rng seed 0xF7A6 in
  let n = Tree.size tree in
  Array.init width (fun _ ->
      let density = Prng.float rng in
      Array.init n (fun _ -> Prng.bool rng ~p:density))

(* --- subjects: users, groups, adversarially overlapping memberships --- *)

let subjects ~seed ~n_users ~n_groups =
  let rng = sub_rng seed 0x5AB in
  let reg = Subject.create () in
  let groups =
    List.init n_groups (fun i -> Subject.add_group reg (Printf.sprintf "g%d" i))
  in
  let users =
    List.init n_users (fun i -> Subject.add_user reg (Printf.sprintf "u%d" i))
  in
  List.iter
    (fun u ->
      List.iter
        (fun g -> if Prng.bool rng ~p:0.4 then Subject.add_membership reg ~child:u ~group:g)
        groups)
    users;
  (* occasionally nest groups (cycles are tolerated by closure) *)
  List.iter
    (fun g ->
      if groups <> [] && Prng.bool rng ~p:0.3 then begin
        let g' = Prng.choose_list rng groups in
        if g' <> g then Subject.add_membership reg ~child:g ~group:g'
      end)
    groups;
  reg

(* --- rules: grant/deny x self/subtree, anchors biased to overlap --- *)

let rule ~seed ~i ~n_subjects ~tree_size ~mode =
  let rng = sub_rng seed (0x300 + i) in
  let subject = Prng.int rng n_subjects in
  let sign = if Prng.bool rng ~p:0.55 then Rule.Grant else Rule.Deny in
  let scope = if Prng.bool rng ~p:0.7 then Rule.Subtree else Rule.Self in
  let node =
    let r = Prng.float rng in
    if r < 0.25 then 0 (* root: maximal cascade overlap *)
    else if r < 0.55 then Prng.int rng (min 8 tree_size)
    else Prng.int rng tree_size
  in
  Rule.make ~subject ~mode ~node ~sign ~scope

(* --- queries: random twigs and random XPath-subset strings --- *)

type shape = {
  ax : Pattern.axis;
  tst : Pattern.test;
  vl : string option;
  kids : shape list;
}

let gen_test rng tags =
  if Prng.bool rng ~p:0.15 then Pattern.Wildcard
  else Pattern.Tag (Prng.choose rng tags)

let gen_value rng = if Prng.bool rng ~p:0.12 then Some (Prng.choose rng vocab) else None

let rec gen_shape rng tags ~budget ~root =
  let ax =
    if root then if Prng.bool rng ~p:0.7 then Pattern.Descendant else Pattern.Child
    else
      match Prng.int rng 10 with
      | 0 -> Pattern.Following_sibling
      | 1 | 2 | 3 | 4 -> Pattern.Descendant
      | _ -> Pattern.Child
  in
  let n_kids = if budget <= 1 then 0 else Prng.int rng (min 3 budget) in
  let kids = ref [] in
  let left = ref (budget - 1) in
  for _ = 1 to n_kids do
    if !left > 0 then begin
      let kb = 1 + Prng.int rng !left in
      kids := gen_shape rng tags ~budget:kb ~root:false :: !kids;
      left := !left - kb
    end
  done;
  { ax; tst = gen_test rng tags; vl = gen_value rng; kids = List.rev !kids }

let shape_count s =
  let rec go s = List.fold_left (fun a k -> a + go k) 1 s.kids in
  go s

let pattern_of_shape shape ~returning_at =
  let counter = ref (-1) in
  let rec conv s =
    incr counter;
    let me = !counter in
    let kids = List.map conv s.kids in
    Pattern.make ~axis:s.ax ~value:s.vl ~returning:(me = returning_at) s.tst kids
  in
  Pattern.of_root (conv shape)

let gen_twig rng tags =
  let budget = 1 + Prng.int rng 5 in
  let shape = gen_shape rng tags ~budget ~root:true in
  let k = shape_count shape in
  { pat = pattern_of_shape shape ~returning_at:(Prng.int rng k); src = None }

let gen_path rng tags =
  let buf = Buffer.create 32 in
  let steps = 1 + Prng.int rng 3 in
  for i = 0 to steps - 1 do
    let axis =
      if i = 0 then if Prng.bool rng ~p:0.6 then "//" else "/"
      else
        match Prng.int rng 8 with
        | 0 -> "/following-sibling::"
        | 1 | 2 | 3 -> "//"
        | _ -> "/"
    in
    Buffer.add_string buf axis;
    Buffer.add_string buf
      (if Prng.bool rng ~p:0.1 then "*" else Prng.choose rng tags);
    if Prng.bool rng ~p:0.25 then begin
      Buffer.add_char buf '[';
      Buffer.add_string buf (Prng.choose rng tags);
      if Prng.bool rng ~p:0.4 then
        Buffer.add_string buf (Printf.sprintf "=%S" (Prng.choose rng vocab));
      Buffer.add_char buf ']'
    end
  done;
  let src = Buffer.contents buf in
  { pat = Xpath.parse src; src = Some src }

let gen_query rng tags =
  if Prng.bool rng ~p:0.5 then gen_twig rng tags else gen_path rng tags

(* Tag names occurring in the document, so queries can actually hit. *)
let tree_tags tree =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Tree.iter
    (fun v ->
      let t = Tree.tag_name tree v in
      if not (Hashtbl.mem seen t) then begin
        Hashtbl.add seen t ();
        out := t :: !out
      end)
    tree;
  Array.of_list (List.rev !out)

(* --- trace --- *)

let gen_op ~seed ~i ~tags =
  let rng = sub_rng seed (0x7A0 + i) in
  let r = Prng.float rng in
  if r < 0.20 then
    Set_node { subject = Prng.bits rng; grant = Prng.bool rng ~p:0.5; node = Prng.bits rng }
  else if r < 0.35 then
    Set_subtree { subject = Prng.bits rng; grant = Prng.bool rng ~p:0.5; node = Prng.bits rng }
  else if r < 0.60 then Query (gen_query rng tags)
  else if r < 0.68 then Delete_subtree { node = Prng.bits rng }
  else if r < 0.76 then
    Insert_subtree
      {
        parent = Prng.bits rng;
        sibling = Prng.bits rng;
        frag_seed = Prng.bits rng;
        frag_nodes = 1 + Prng.geometric rng ~p:0.6 ~max:9;
      }
  else if r < 0.84 then
    Add_subject { like = (if Prng.bool rng ~p:0.5 then Some (Prng.bits rng) else None) }
  else if r < 0.90 then Remove_subject { subject = Prng.bits rng }
  else Compact

let params_of_seed seed =
  let rng = sub_rng seed 0xBEEF in
  let nodes =
    let r = Prng.float rng in
    if r < 0.5 then 4 + Prng.int rng 37
    else if r < 0.85 then 40 + Prng.int rng 121
    else 160 + Prng.int rng 241
  in
  {
    seed;
    nodes;
    n_users = 1 + Prng.int rng 4;
    n_groups = Prng.int rng 3;
    n_rules = Prng.int rng 13;
    n_queries = 1 + Prng.int rng 3;
    trace_len = Prng.int rng 9;
    rule_mask = -1;
  }

let case (p : params) =
  let tree = tree ~seed:p.seed ~nodes:p.nodes in
  let subjects = subjects ~seed:p.seed ~n_users:(max 1 p.n_users) ~n_groups:p.n_groups in
  let modes = Mode.create () in
  let mode = Mode.add modes "read" in
  let n_subjects = Subject.count subjects in
  let tree_size = Tree.size tree in
  let rules =
    List.init (max 0 p.n_rules) (fun i ->
        rule ~seed:p.seed ~i ~n_subjects ~tree_size ~mode)
  in
  (* the shrinker clears individual mask bits to drop single rules while
     keeping every other component (same per-index sub-seeds) identical *)
  let rules =
    if p.rule_mask = -1 then rules
    else List.filteri (fun i _ -> p.rule_mask land (1 lsl i) <> 0) rules
  in
  let tags = tree_tags tree in
  let queries =
    List.init (max 0 p.n_queries) (fun i -> gen_query (sub_rng p.seed (0x900 + i)) tags)
  in
  let trace = List.init (max 0 p.trace_len) (fun i -> gen_op ~seed:p.seed ~i ~tags) in
  let page_size = [| 128; 256; 512 |].(Prng.int (sub_rng p.seed 0xA9E) 3) in
  { params = p; tree; subjects; modes; mode; rules; queries; trace; page_size }

(* --- canonical fingerprint (pattern ids excluded) --- *)

let rec pnode_str (p : Pattern.pnode) =
  Printf.sprintf "%c%s%s%s(%s)"
    (match p.Pattern.axis with
    | Pattern.Child -> '/'
    | Pattern.Descendant -> 'D'
    | Pattern.Following_sibling -> 'F')
    (match p.Pattern.test with Pattern.Wildcard -> "*" | Pattern.Tag t -> t)
    (match p.Pattern.value with None -> "" | Some v -> "=" ^ v)
    (if p.Pattern.returning then "!" else "")
    (String.concat "," (List.map pnode_str p.Pattern.children))

let query_str q = pnode_str q.pat.Pattern.root

let query_to_string q = match q.src with Some s -> s | None -> query_str q

let op_str = function
  | Set_node { subject; grant; node } -> Printf.sprintf "N%d:%b:%d" subject grant node
  | Set_subtree { subject; grant; node } -> Printf.sprintf "S%d:%b:%d" subject grant node
  | Delete_subtree { node } -> Printf.sprintf "X%d" node
  | Insert_subtree { parent; sibling; frag_seed; frag_nodes } ->
      Printf.sprintf "I%d:%d:%d:%d" parent sibling frag_seed frag_nodes
  | Add_subject { like } ->
      Printf.sprintf "A%s" (match like with None -> "-" | Some s -> string_of_int s)
  | Remove_subject { subject } -> Printf.sprintf "R%d" subject
  | Compact -> "C"
  | Query q -> "Q" ^ query_str q

let fingerprint (c : case) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Tree.structure_string c.tree);
  Tree.iter
    (fun v ->
      let t = Tree.text c.tree v in
      if t <> "" then Buffer.add_string b (Printf.sprintf "|%d=%s" v t))
    c.tree;
  Buffer.add_string b
    (Printf.sprintf ";subj=%d" (Subject.count c.subjects));
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf ";m%d:%s" s
           (String.concat "," (List.map string_of_int (Subject.direct_groups c.subjects s)))))
    (List.init (Subject.count c.subjects) Fun.id);
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string b
        (Printf.sprintf ";r%d%c%c@%d" r.Rule.subject
           (match r.Rule.sign with Rule.Grant -> '+' | Rule.Deny -> '-')
           (match r.Rule.scope with Rule.Self -> 's' | Rule.Subtree -> 't')
           r.Rule.node))
    c.rules;
  List.iter (fun q -> Buffer.add_string b (";q" ^ query_str q)) c.queries;
  List.iter (fun o -> Buffer.add_string b (";o" ^ op_str o)) c.trace;
  Buffer.add_string b (Printf.sprintf ";pg=%d" c.page_size);
  Buffer.contents b
