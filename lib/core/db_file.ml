(** Single-file database format: a complete secured store — page images,
    node values, tag names and the DOL — in one file, so a labeled
    document compiled once can be opened again (or shipped) without the
    source XML or the policy.

    Structure and values are stored separately, as in the paper's NoK
    storage ("the structure of the data tree is stored separately from
    the node values", §3.1): the page images carry structure + embedded
    access-control codes; a value section carries the text content.

    Format v2.  Every section is length-prefixed and carries a CRC32C so
    integrity is verified {e before} any byte is parsed; page images are
    checksummed individually so corruption is localized to a page; a
    journal region at the tail makes multi-page accessibility updates
    atomic (see below).

    {v
      file := "DOLXDB" u8(version=2)
              section(meta):     varint page_size
                                 varint n_tags (len-prefixed names, id order)
              section(dol):      Persist body (no trailing CRC of its own)
              varint n_pages
              n_pages * { page_size bytes image, u32 CRC32C }
              section(texts):    varint n_texts
                                 pairs: varint preorder, len-prefixed text
                                 (only non-empty texts are stored)
              section(registry): u8 has_registry
                                 if 1: subjects + modes (see docs/FORMAT.md)
              journal:           u8 flag (0 = none)
                                 if 1: record+
              record :=          varint payload_len, payload,
                                 u32 CRC32C(payload), u8 0xC3

      section(x) := varint body_len, body, u32 CRC32C(body)

      journal payload := varint new_n_pages
                         varint n_entries
                         n_entries * (varint lp, page_size bytes image)
                         varint dol_len, Persist body
    v}

    {b Journal protocol} (write-ahead redo): an update that touches
    several label pages is made durable by appending the new page images
    and the new DOL as a journal record, sealed by the CRC and the 0xC3
    commit mark, to an otherwise {e unmodified} base file.  The journal
    region holds a {e sequence} of such records — group commit
    ({!append_update}, [Dolx_core.Group_commit]) batches several updates
    into one file write by appending one record per update.  On load,
    records are rolled forward in order; the first record that is not
    sealed (flag byte with no payload, a torn payload prefix, a bad CRC,
    a missing commit mark) ends the scan and the tail is ignored — every
    batch prefix is an expected crash artifact, yielding exactly the
    state as of the last committed record.  Recovery therefore never
    observes a hybrid of two updates' labels.

    {b Fail-secure recovery}: a page image whose checksum does not
    verify is unrecoverable label data.  By default loading fails
    ([`Fail]); with [`Deny_subtree] the affected preorder range is
    replaced by structural filler labeled with a deny-all code and
    reported as quarantined — recovery may lose data but must never
    grant access the intact file would not have granted. *)

module Tree = Dolx_xml.Tree
module Tag = Dolx_xml.Tag
module Disk = Dolx_storage.Disk
module Nok_layout = Dolx_storage.Nok_layout
module Page = Dolx_storage.Page
module Varint = Dolx_util.Varint
module Crc = Dolx_util.Crc
module Bitset = Dolx_util.Bitset
module Prng = Dolx_util.Prng
module Metrics = Dolx_obs.Metrics

let c_journal_writes = Metrics.counter "db.journal_writes"

let c_journal_bytes = Metrics.counter "db.journal_bytes"

let magic = "DOLXDB"

let version = 2

let commit_mark = 0xC3

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let add_varint buf x =
  let tmp = Bytes.create Varint.max_len in
  let len = Varint.write tmp 0 x in
  Buffer.add_subbytes buf tmp 0 len

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_u32 buf x = Buffer.add_int32_le buf (Int32.of_int x)

(* Length-prefixed, checksummed section: the CRC covers the body and is
   verified before the body is parsed. *)
let add_section buf body =
  add_varint buf (Bytes.length body);
  Buffer.add_bytes buf body;
  add_u32 buf (Crc.digest body)

module Subject = Dolx_policy.Subject
module Mode = Dolx_policy.Mode

(** {1 Writing} *)

let registry_body ?subjects ?modes () =
  let buf = Buffer.create 256 in
  (match subjects with
  | None -> Buffer.add_uint8 buf 0
  | Some registry ->
      Buffer.add_uint8 buf 1;
      add_varint buf (Subject.count registry);
      for sid = 0 to Subject.count registry - 1 do
        add_string buf (Subject.name registry sid);
        Buffer.add_uint8 buf
          (match Subject.kind registry sid with
          | Subject.User -> 0
          | Subject.Group -> 1);
        let groups = Subject.direct_groups registry sid in
        add_varint buf (List.length groups);
        List.iter (add_varint buf) groups
      done;
      (match modes with
      | None -> add_varint buf 0
      | Some m ->
          add_varint buf (Mode.count m);
          for i = 0 to Mode.count m - 1 do
            add_string buf (Mode.name m i)
          done));
  Buffer.to_bytes buf

(** Serialize a store.  Buffered pages are flushed first so the images
    reflect all applied updates; the written file is clean (no journal),
    so the layout's dirty-page tracking is drained too.  Passing the
    [subjects]/[modes] registries makes the file self-describing: tools
    can then address ACL bits by name. *)
let to_bytes ?subjects ?modes store =
  Dolx_storage.Buffer_pool.flush_all (Secure_store.pool store);
  ignore (Nok_layout.drain_dirty (Secure_store.layout store));
  let tree = Secure_store.tree store in
  let layout = Secure_store.layout store in
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf version;
  (* meta *)
  let meta = Buffer.create 256 in
  add_varint meta (Disk.page_size (Secure_store.disk store));
  let table = Tree.tag_table tree in
  add_varint meta (Tag.count table);
  Tag.iter (fun _ name -> add_string meta name) table;
  add_section buf (Buffer.to_bytes meta);
  (* dol *)
  let dol_body = Buffer.create 1024 in
  Persist.write_body dol_body (Secure_store.dol store);
  add_section buf (Buffer.to_bytes dol_body);
  (* pages, individually checksummed *)
  add_varint buf (Nok_layout.page_count layout);
  for lp = 0 to Nok_layout.page_count layout - 1 do
    let img = Nok_layout.page_image layout lp in
    Buffer.add_bytes buf img;
    add_u32 buf (Crc.digest img)
  done;
  (* texts *)
  let texts_body = Buffer.create 1024 in
  let texts = ref [] in
  let n_texts = ref 0 in
  Tree.iter
    (fun v ->
      let txt = Tree.text tree v in
      if txt <> "" then begin
        texts := (v, txt) :: !texts;
        incr n_texts
      end)
    tree;
  add_varint texts_body !n_texts;
  List.iter
    (fun (v, txt) ->
      add_varint texts_body v;
      add_string texts_body txt)
    (List.rev !texts);
  add_section buf (Buffer.to_bytes texts_body);
  (* registry *)
  add_section buf (registry_body ?subjects ?modes ());
  (* no journal *)
  Buffer.add_uint8 buf 0;
  Buffer.to_bytes buf

(** {1 Reading} *)

(* Bounds-checked reader over untrusted bytes; every failure is a typed
   [Corrupt], never [Invalid_argument] or an out-of-bounds access. *)
module R = struct
  type t = {
    buf : Bytes.t;
    mutable pos : int;
    limit : int;
    mutable what : string;
  }

  let make ?(pos = 0) ?limit ~what buf =
    let limit = match limit with Some l -> l | None -> Bytes.length buf in
    { buf; pos; limit; what }

  let need r n =
    if n < 0 || r.pos + n > r.limit then corrupt "%s: truncated" r.what

  let u8 r =
    need r 1;
    let b = Bytes.get_uint8 r.buf r.pos in
    r.pos <- r.pos + 1;
    b

  let u32 r =
    need r 4;
    let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) land 0xFFFFFFFF in
    r.pos <- r.pos + 4;
    v

  let varint r =
    match Varint.read_opt r.buf ~pos:r.pos ~limit:r.limit with
    | None -> corrupt "%s: bad varint" r.what
    | Some (x, p) ->
        r.pos <- p;
        x

  let bytes r n =
    need r n;
    let b = Bytes.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    b

  let string r =
    let len = varint r in
    need r len;
    let s = Bytes.sub_string r.buf r.pos len in
    r.pos <- r.pos + len;
    s

  let at_end r = r.pos = r.limit

  (* Read a section: length-prefixed body whose CRC is verified before
     the caller parses a single body byte. *)
  let section r ~what =
    let saved = r.what in
    r.what <- what;
    let body = bytes r (varint r) in
    let crc = u32 r in
    r.what <- saved;
    if Crc.digest body <> crc then corrupt "%s: section checksum mismatch" what;
    make ~what body
end

let parse_meta r =
  let page_size = R.varint r in
  if page_size < 64 then corrupt "meta: bad page size";
  let n_tags = R.varint r in
  let table = Tag.create () in
  for _ = 1 to n_tags do
    ignore (Tag.intern table (R.string r))
  done;
  if not (R.at_end r) then corrupt "meta: trailing garbage";
  (page_size, table)

let parse_dol (r : R.t) =
  try Persist.of_body r.R.buf ~limit:r.R.limit
  with Persist.Corrupt m -> corrupt "dol: %s" m

let parse_texts r ~n_nodes =
  let n_texts = R.varint r in
  let texts = Array.make n_nodes "" in
  for _ = 1 to n_texts do
    let v = R.varint r in
    if v < 0 || v >= n_nodes then corrupt "texts: text for unknown node";
    texts.(v) <- R.string r
  done;
  if not (R.at_end r) then corrupt "texts: trailing garbage";
  texts

let parse_registry r =
  match R.u8 r with
  | 0 ->
      if not (R.at_end r) then corrupt "registry: trailing garbage";
      None
  | 1 ->
      let n_subjects = R.varint r in
      let registry = Subject.create () in
      let memberships = ref [] in
      for sid = 0 to n_subjects - 1 do
        let name = R.string r in
        let kind =
          match R.u8 r with
          | 0 -> Subject.User
          | 1 -> Subject.Group
          | _ -> corrupt "registry: bad subject kind"
        in
        (try ignore (Subject.add registry ~name ~kind)
         with Invalid_argument m -> corrupt "registry: %s" m);
        let n_groups = R.varint r in
        for _ = 1 to n_groups do
          memberships := (sid, R.varint r) :: !memberships
        done
      done;
      List.iter
        (fun (child, group) ->
          if group < 0 || group >= n_subjects then
            corrupt "registry: membership out of range";
          try Subject.add_membership registry ~child ~group
          with Invalid_argument m -> corrupt "registry: %s" m)
        (List.rev !memberships);
      let n_modes = R.varint r in
      let modes = Mode.create () in
      for _ = 1 to n_modes do
        try ignore (Mode.add modes (R.string r))
        with Invalid_argument m -> corrupt "registry: %s" m
      done;
      if not (R.at_end r) then corrupt "registry: trailing garbage";
      Some (registry, modes)
  | _ -> corrupt "registry: bad flag"

(* Defensive phase-1 scan of the journal region starting at the flag
   byte.  The region holds a sequence of records (group commit appends
   one per update); committed records — CRC-valid payloads sealed by the
   commit mark — are returned in order.  The first record that fails to
   seal ends the scan and the tail is ignored: every prefix of a record
   batch is an expected crash artifact, never [Corrupt].  Interior
   inconsistencies of a {e sealed} record still raise. *)
let parse_journal r ~page_size =
  if R.at_end r then [] (* file truncated right before the flag *)
  else
    match R.u8 r with
    | 0 ->
        if not (R.at_end r) then corrupt "journal: trailing garbage";
        []
    | 1 ->
        (* Sealed by CRC + commit mark: interior inconsistencies are no
           longer crash artifacts and must raise. *)
        let parse_payload payload =
          let j = R.make ~what:"journal" payload in
          let new_n_pages = R.varint j in
          let n_entries = R.varint j in
          if new_n_pages <= 0 || n_entries < 0 then corrupt "journal: bad counts";
          let entries =
            List.init n_entries (fun _ ->
                let lp = R.varint j in
                let img = R.bytes j page_size in
                (lp, img))
          in
          let dol_len = R.varint j in
          let dol_body = R.bytes j dol_len in
          if not (R.at_end j) then corrupt "journal: trailing garbage";
          let dol =
            try Persist.of_body dol_body ~limit:(Bytes.length dol_body)
            with Persist.Corrupt m -> corrupt "journal dol: %s" m
          in
          (new_n_pages, entries, dol)
        in
        let rec records acc =
          if R.at_end r then List.rev acc
          else
            match
              (* any structural shortfall below = torn record, not
                 Corrupt: stop and ignore the tail *)
              let payload_len =
                match Varint.read_opt r.R.buf ~pos:r.R.pos ~limit:r.R.limit with
                | None -> raise Exit
                | Some (x, p) ->
                    r.R.pos <- p;
                    x
              in
              if payload_len < 0 || r.R.pos + payload_len + 5 > r.R.limit then
                raise Exit;
              let payload = R.bytes r payload_len in
              let crc = R.u32 r in
              if Crc.digest payload <> crc then raise Exit;
              if R.u8 r <> commit_mark then raise Exit;
              payload
            with
            | exception Exit -> List.rev acc
            | payload -> records (parse_payload payload :: acc)
        in
        records []
    | _ -> corrupt "journal: bad flag"

(* Roll a committed journal forward over the base page images.  Returns
   the patched image array and which of them are still unverified
   (journaled images are covered by the journal CRC, so they are good).
   When the page count changed (a split renumbered the layout), the
   journal must carry every page. *)
let apply_journal ~images ~bad (new_n_pages, entries, dol) =
  let base_n = Array.length images in
  if new_n_pages = base_n then begin
    List.iter
      (fun (lp, img) ->
        if lp < 0 || lp >= base_n then corrupt "journal: page %d out of range" lp;
        images.(lp) <- img;
        bad.(lp) <- false)
      entries;
    (images, bad, dol)
  end
  else begin
    let images' = Array.make new_n_pages Bytes.empty in
    let seen = Array.make new_n_pages false in
    List.iter
      (fun (lp, img) ->
        if lp < 0 || lp >= new_n_pages then
          corrupt "journal: page %d out of range" lp;
        images'.(lp) <- img;
        seen.(lp) <- true)
      entries;
    if not (Array.for_all Fun.id seen) then
      corrupt "journal: page count changed but journal does not cover all pages";
    (images', Array.make new_n_pages false, dol)
  end

(* Fail-secure quarantine synthesis: replace each maximal run of
   checksum-failed pages by filler records carrying a deny-all code.

   Walking the good pages gives, at each bad run, the preorder and depth
   the run must start at and the preorder/depth of the first node after
   it; the run is filled with a descending chain (closes = 0) whose last
   node closes exactly enough parens to land on the next good page's
   depth, so the structure outside the run is preserved node-for-node.
   The affected preorder range is reported for [Secure_store] to deny. *)
let synthesize_quarantine ~images ~bad ~page_size ~dol ~n_tags =
  let n = Array.length images in
  let n_nodes = Dol.n_nodes dol in
  if n_tags <= 0 then corrupt "pages: corrupt pages and no tags to recover with";
  let cb = Dol.codebook dol in
  let deny = Codebook.intern cb (Bitset.create (Codebook.width cb)) in
  let out = ref [] (* reversed good + synthesized images *) in
  let quarantine = ref [] in
  let n_so_far = ref 0 in
  let depth_next = ref 0 in
  (* Pack a run of k filler nodes starting at [pre0]/[d0], total closes
     on the last node, into fresh page images. *)
  let emit_run ~pre0 ~d0 ~k ~total_closes =
    let budget = page_size in
    let i = ref 0 in
    while !i < k do
      let first = !i in
      let bytes_used = ref Nok_layout.header_bytes in
      let recs = ref [] in
      let continue = ref true in
      while !continue && !i < k do
        let r =
          {
            Nok_layout.pre = pre0 + !i;
            tag = 0;
            closes = (if !i = k - 1 then total_closes else 0);
            code = None;
          }
        in
        let rb = Nok_layout.record_bytes r in
        if !bytes_used + rb > budget && !recs <> [] then continue := false
        else begin
          recs := r :: !recs;
          bytes_used := !bytes_used + rb;
          incr i
        end
      done;
      let recs = List.rev !recs in
      let page = Page.create page_size in
      Nok_layout.encode_records page ~n:(List.length recs)
        ~first_pre:(pre0 + first) ~first_code:deny ~first_depth:(d0 + first)
        ~change:false recs;
      out := page :: !out
    done
  in
  let lp = ref 0 in
  while !lp < n do
    if not bad.(!lp) then begin
      let img = images.(!lp) in
      let hdr_ok =
        Bytes.length img = page_size
        && Page.get_u16 img 0 > 0
        && Page.get_u32 img 2 = !n_so_far
      in
      if not hdr_ok then corrupt "pages: inconsistent page %d after recovery" !lp;
      let records =
        try Nok_layout.decode_image img
        with _ -> corrupt "pages: undecodable page %d after recovery" !lp
      in
      let d = ref (Page.get_u16 img 10) in
      List.iter (fun r -> d := !d + 1 - r.Nok_layout.closes) records;
      depth_next := !d;
      n_so_far := !n_so_far + List.length records;
      out := img :: !out;
      incr lp
    end
    else begin
      let d_start = !depth_next in
      let pre0 = !n_so_far in
      while !lp < n && bad.(!lp) do
        incr lp
      done;
      let k, d_next =
        if !lp < n then
          let img = images.(!lp) in
          if Bytes.length img <> page_size then
            corrupt "pages: inconsistent page %d after recovery" !lp
          else (Page.get_u32 img 2 - pre0, Page.get_u16 img 10)
        else (n_nodes - pre0, 0)
      in
      let total_closes = d_start + k - d_next in
      if k <= 0 || total_closes < 0 then
        corrupt "pages: unrecoverable corruption (cannot rebalance lost range)";
      emit_run ~pre0 ~d0:d_start ~k ~total_closes;
      quarantine := (pre0, pre0 + k - 1) :: !quarantine;
      n_so_far := pre0 + k;
      depth_next := d_next
    end
  done;
  if !n_so_far <> n_nodes then
    corrupt "pages: structure / DOL size mismatch after recovery";
  (Array.of_list (List.rev !out), List.rev !quarantine)

(** Load a store from bytes.

    [on_bad_page] selects the recovery policy for page images whose
    checksum does not verify: [`Fail] (default) raises [Corrupt] naming
    the pages; [`Deny_subtree] replaces the lost preorder ranges with
    deny-all filler and reports them via {!Secure_store.quarantined}.
    A journal sealed by its CRC and commit mark is rolled forward;
    any torn journal is ignored (the load yields the pre-update state).
    @raise Corrupt on malformed input — never [Invalid_argument] or an
    out-of-bounds error. *)
let of_bytes ?pool_capacity ?(on_bad_page = `Fail) buf =
  let r = R.make ~what:"db" buf in
  let hdr = R.bytes r (String.length magic + 1) in
  if Bytes.sub_string hdr 0 (String.length magic) <> magic then
    corrupt "bad magic";
  if Bytes.get_uint8 hdr (String.length magic) <> version then
    corrupt "unsupported version";
  let page_size, table = parse_meta (R.section r ~what:"meta") in
  let dol = parse_dol (R.section r ~what:"dol") in
  let n_pages = R.varint r in
  if n_pages <= 0 then corrupt "no pages";
  if n_pages > (r.R.limit - r.R.pos) / (page_size + 4) then
    corrupt "pages: truncated";
  let images = Array.make n_pages Bytes.empty in
  let bad = Array.make n_pages false in
  for lp = 0 to n_pages - 1 do
    let img = R.bytes r page_size in
    let crc = R.u32 r in
    images.(lp) <- img;
    bad.(lp) <- Crc.digest img <> crc
  done;
  let texts = parse_texts (R.section r ~what:"texts") ~n_nodes:(Dol.n_nodes dol) in
  let registry = parse_registry (R.section r ~what:"registry") in
  (* Journal before damage assessment: a committed record may rewrite
     the very pages whose base images are corrupt.  Records are rolled
     forward in order; replay is idempotent because each record carries
     whole page images and the full DOL (pure redo). *)
  let images, bad, dol =
    List.fold_left
      (fun (images, bad, _dol) j -> apply_journal ~images ~bad j)
      (images, bad, dol)
      (parse_journal r ~page_size)
  in
  let images, quarantine =
    if Array.exists Fun.id bad then
      match on_bad_page with
      | `Fail ->
          let pages =
            Array.to_list bad
            |> List.mapi (fun lp b -> if b then Some (string_of_int lp) else None)
            |> List.filter_map Fun.id
            |> String.concat ", "
          in
          corrupt "page image checksum mismatch (pages %s)" pages
      | `Deny_subtree ->
          synthesize_quarantine ~images ~bad ~page_size ~dol
            ~n_tags:(Tag.count table)
    else (images, [])
  in
  let n_pages = Array.length images in
  let disk = Disk.create ~page_size () in
  Array.iter
    (fun img ->
      let pid = Disk.allocate disk in
      Disk.write disk pid img)
    images;
  let layout =
    try Nok_layout.attach disk ~n_pages
    with Invalid_argument m | Failure m -> corrupt "%s" m
  in
  (* rebuild structure from the pages, then attach the values *)
  let skeleton =
    let pool = Dolx_storage.Buffer_pool.create ~capacity:8 disk in
    try Nok_layout.decode_tree layout pool ~tag_table:table
    with Invalid_argument m | Failure m -> corrupt "pages: %s" m
  in
  if Tree.size skeleton <> Dol.n_nodes dol then
    corrupt "structure / DOL size mismatch";
  (* replay the skeleton with texts to get the full tree *)
  let tree =
    try
      let b = Tree.Builder.create ~table () in
      let rec copy v =
        ignore (Tree.Builder.open_element b (Tree.tag_name skeleton v));
        if texts.(v) <> "" then Tree.Builder.add_text b texts.(v);
        Tree.iter_children copy skeleton v;
        Tree.Builder.close_element b
      in
      copy Tree.root;
      Tree.Builder.finish b
    with Invalid_argument m | Failure m -> corrupt "pages: %s" m
  in
  let store =
    try
      Secure_store.assemble ?pool_capacity ~quarantine ~tree ~dol ~disk ~layout
        ()
    with Invalid_argument m -> corrupt "%s" m
  in
  (store, registry)

(** {1 Journaled updates}

    [update_images ~base f] loads the clean image [base], applies the
    update [f], and returns the durable byte images a crashing writer
    could leave behind, in order: the untouched base (crash before the
    journal write), torn journal prefixes, the full journal without its
    commit mark, and finally the committed image.  Every image loads:
    all but the last yield exactly the pre-update state, the last yields
    exactly the post-update state.  [torn] adds PRNG-chosen extra tear
    points.  The committed image is last, so
    [List.nth images (List.length images - 1)] is the update's durable
    result (see {!apply_update}). *)
(* Flush buffered pages and drain the layout's dirty tracking into one
   journal-record payload; [None] when no page changed (the [`Clean]
   drain — dol-only changes are not journaled, matching the historical
   single-record behavior). *)
let update_payload store =
  Dolx_storage.Buffer_pool.flush_all (Secure_store.pool store);
  let layout = Secure_store.layout store in
  match Nok_layout.drain_dirty layout with
  | `Clean -> None
  | (`Pages _ | `Renumbered) as dirty ->
      let entries =
        match dirty with
        | `Pages lps -> lps
        | `Renumbered -> List.init (Nok_layout.page_count layout) Fun.id
      in
      let payload = Buffer.create 4096 in
      add_varint payload (Nok_layout.page_count layout);
      add_varint payload (List.length entries);
      List.iter
        (fun lp ->
          add_varint payload lp;
          Buffer.add_bytes payload (Nok_layout.page_image layout lp))
        entries;
      let dol_body = Buffer.create 1024 in
      Persist.write_body dol_body (Secure_store.dol store);
      add_varint payload (Buffer.length dol_body);
      Buffer.add_buffer payload dol_body;
      Some (Buffer.to_bytes payload)

let update_images ?pool_capacity ?torn ~base f =
  let base_len = Bytes.length base in
  if base_len = 0 || Bytes.get_uint8 base (base_len - 1) <> 0 then
    invalid_arg "Db_file.update_images: base image is not clean (has a journal)";
  let store, _registry = of_bytes ?pool_capacity base in
  f store;
  match update_payload store with
  | None -> [ base ]
  | Some payload ->
      Metrics.incr c_journal_writes;
      Metrics.add c_journal_bytes (Bytes.length payload);
      (* stem = base minus its trailing journal flag byte *)
      let journal = Buffer.create (Bytes.length payload + 16) in
      Buffer.add_subbytes journal base 0 (base_len - 1);
      Buffer.add_uint8 journal 1;
      add_varint journal (Bytes.length payload);
      Buffer.add_bytes journal payload;
      add_u32 journal (Crc.digest payload);
      let uncommitted = Buffer.to_bytes journal in
      Buffer.add_uint8 journal commit_mark;
      let committed = Buffer.to_bytes journal in
      let flagged = Bytes.sub committed 0 base_len in
      let tears =
        let span = Bytes.length uncommitted - base_len in
        let mid = Bytes.sub committed 0 (base_len + (span / 2)) in
        match torn with
        | None -> [ mid ]
        | Some prng ->
            mid
            :: List.init 3 (fun _ ->
                   Bytes.sub committed 0 (base_len + 1 + Prng.int prng span))
      in
      (base :: flagged :: tears) @ [ uncommitted; committed ]

(** Apply an update durably: journal it, then compact by loading the
    committed image (exercising roll-forward) and rewriting a clean
    file.  The registries embedded in [base], if any, are re-embedded. *)
let apply_update ?pool_capacity ~base f =
  let images = update_images ?pool_capacity ~base f in
  let committed = List.nth images (List.length images - 1) in
  let store, registry = of_bytes ?pool_capacity committed in
  match registry with
  | None -> to_bytes store
  | Some (subjects, modes) -> to_bytes ~subjects ~modes store

(** Append one update to [image] as a journal record, without
    compacting: the group-commit building block.  [image] may be clean
    (its trailing flag byte is flipped to 1 and the record appended) or
    already journaled (the record is purely appended), so successive
    appends chain — each result is a byte prefix of the next, and a
    crash that tears the file anywhere inside the appended region loads
    as the state after some {e prefix} of the batch.  Replay is
    idempotent: records are pure redo (whole page images + full DOL).
    Compact with {!apply_update} / {!to_bytes} when the batch is done.
    @raise Invalid_argument when [image] is neither clean nor
    journaled. *)
let append_update ?pool_capacity ~image f =
  let len = Bytes.length image in
  if len = 0 then invalid_arg "Db_file.append_update: empty image";
  let last = Bytes.get_uint8 image (len - 1) in
  if last <> 0 && last <> commit_mark then
    invalid_arg "Db_file.append_update: image is neither clean nor journaled";
  let store, _registry = of_bytes ?pool_capacity image in
  f store;
  match update_payload store with
  | None -> image
  | Some payload ->
      Metrics.incr c_journal_writes;
      Metrics.add c_journal_bytes (Bytes.length payload);
      let buf = Buffer.create (len + Bytes.length payload + 16) in
      if last = 0 then begin
        (* clean image: flip the journal flag, then the first record *)
        Buffer.add_subbytes buf image 0 (len - 1);
        Buffer.add_uint8 buf 1
      end
      else Buffer.add_bytes buf image;
      add_varint buf (Bytes.length payload);
      Buffer.add_bytes buf payload;
      add_u32 buf (Crc.digest payload);
      Buffer.add_uint8 buf commit_mark;
      Buffer.to_bytes buf

(** Byte extent [(offset, length)] of logical page [lp]'s image + CRC
    inside a database image — for corruption-injection tests.
    @raise Corrupt when the prefix up to the page array is malformed or
    [lp] is out of range. *)
let page_extent buf lp =
  let r = R.make ~what:"db" buf in
  let hdr = R.bytes r (String.length magic + 1) in
  if Bytes.sub_string hdr 0 (String.length magic) <> magic then
    corrupt "bad magic";
  if Bytes.get_uint8 hdr (String.length magic) <> version then
    corrupt "unsupported version";
  let page_size, _ = parse_meta (R.section r ~what:"meta") in
  let (_ : Dol.t) = parse_dol (R.section r ~what:"dol") in
  let n_pages = R.varint r in
  if lp < 0 || lp >= n_pages then
    corrupt "page_extent: page %d out of range (page count %d)" lp n_pages;
  let off = r.R.pos + (lp * (page_size + 4)) in
  R.need r ((lp + 1) * (page_size + 4));
  (off, page_size + 4)

(** File convenience.  Channels are closed even when serialization or
    parsing raises. *)
let save ?subjects ?modes path store =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc (to_bytes ?subjects ?modes store))

let load ?pool_capacity ?on_bad_page path =
  let ic = open_in_bin path in
  let buf =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let buf = Bytes.create n in
        really_input ic buf 0 n;
        buf)
  in
  of_bytes ?pool_capacity ?on_bad_page buf
