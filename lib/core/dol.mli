(** DOL — Document Ordered Labeling, the paper's core contribution (§2).

    "We define a transition node to be a secured tree node whose
    accessibility is different from its document-order predecessor …
    The DOL … is simply a list, in document order, of the tree's
    transition nodes, together with their accessibilities"; for multiple
    subjects each transition carries a {!Codebook} code (§2.1).

    This is the logical DOL; the physical, page-embedded form lives in
    {!Secure_store} / [Dolx_storage.Nok_layout].  The representation is
    exposed (not abstract) because {!Update} performs transition-list
    surgery on it; treat the fields as read-only elsewhere. *)

type t = {
  mutable codebook : Codebook.t;
      (** replaced wholesale (copy-on-write) by subject add/remove so
          snapshot holders keep the old book; see {!snapshot} *)
  mutable trans_pre : int array;   (** sorted transition preorders; [.(0) = 0] *)
  mutable trans_code : int array;  (** parallel codes *)
  mutable n_nodes : int;
  mutable generation : int;        (** bumped on every in-place mutation *)
}

val codebook : t -> Codebook.t

(** A shallow copy pinning the current arrays and codebook.  In-place
    updates replace the live record's arrays wholesale (and subject
    add/remove swaps in a fresh codebook), so the snapshot keeps
    answering from the state it captured — this is what a
    [Secure_store] publishes to reader handles at each epoch.  Only the
    updating thread may take one (it reads the mutable fields). *)
val snapshot : t -> t

(** Mutation stamp.  {!Update} bumps it whenever the transition list or
    the subject population changes; derived structures ({!Access_runs},
    cursors) compare stamps to detect staleness. *)
val generation : t -> int

(** Invalidate every derived structure holding the current stamp. *)
val bump_generation : t -> unit

val n_nodes : t -> int

(** Number of transition nodes — the paper's Fig. 6 metric. *)
val transition_count : t -> int

(** The transition list as sorted [(preorder, code)] pairs. *)
val transitions : t -> (int * int) list

(** {1 Construction} *)

(** Build from a materialized labeling in one document-order pass. *)
val of_labeling : Dolx_policy.Labeling.t -> t

(** Single-subject DOL from a boolean accessibility array. *)
val of_bool_array : bool array -> t

(** Streaming one-pass construction (paper §2: "constructed on-the-fly
    using a single pass through a labeled XML document"). *)
module Streaming : sig
  type builder

  val create : width:int -> builder

  (** Feed the ACL of the next node in document order.  Returns
      [Some code] when the node is a transition node (a control
      character would be emitted into the stream). *)
  val push : builder -> Dolx_util.Bitset.t -> Codebook.code option

  (** @raise Invalid_argument when no nodes were pushed. *)
  val finish : builder -> t
end

(** {1 Lookup (§3.3)} *)

(** Index of the transition governing node [v] — the nearest preceding
    transition node. *)
val governing_index : t -> int -> int

(** The access-control code in force at node [v]. *)
val code_at : t -> int -> Codebook.code

(** The full ACL in force at node [v]. *)
val acl_at : t -> int -> Dolx_util.Bitset.t

(** The accessibility function of paper §2. *)
val accessible : t -> subject:int -> int -> bool

(** Is [v] itself a transition node? *)
val is_transition : t -> int -> bool

(** {1 Resumable lookup}

    Document-order scans ({!Secure_view}, {!Stream_filter}, the
    {!Access_runs} builder) repeat [code_at] on ascending preorders; a
    cursor resumes from the previous governing transition so such scans
    cost O(1) amortized per node.  Any access pattern is still correct:
    backward seeks restart with a binary search, and a generation
    mismatch after an update forces a restart too. *)

type cursor

val cursor : t -> cursor

(** [code_at] through a cursor. *)
val code_at_cur : t -> cursor -> int -> Codebook.code

(** [accessible] through a cursor. *)
val accessible_cur : t -> cursor -> subject:int -> int -> bool

(** {1 Space accounting (paper §5.1)} *)

(** Bytes of the in-memory codebook. *)
val codebook_bytes : t -> int

(** Bytes of the embedded transition codes. *)
val embedded_bytes : t -> int

val storage_bytes : t -> int

(** Transition nodes per document node. *)
val transition_density : t -> float

(** {1 Verification} *)

(** Check that the DOL answers exactly like [labeling] on every node and
    subject.  @raise Failure on mismatch. *)
val verify_against : t -> Dolx_policy.Labeling.t -> unit

(** Check internal invariants (sorted transitions starting at the root,
    valid codes).  @raise Failure on violation. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
