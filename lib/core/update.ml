(** DOL maintenance under accessibility and structural updates (§3.4).

    All operations preserve the DOL invariants and obey Proposition 1:
    "For each of the above operations (accessibility update or structural
    update), the number of transition nodes of the new DOL will be at most
    2 more than the number of transition nodes in the original data (and
    the data to be inserted)."  Property tests assert this bound.

    Accessibility updates also maintain the physical representation:
    affected pages are read, patched and written back, so the paper's
    update-cost claims (one page read + write for a node update, ~N/B for
    a subtree of N nodes, §3.4) are measurable from the disk counters. *)

module Tree = Dolx_xml.Tree
module Bitset = Dolx_util.Bitset
module Int_vec = Dolx_util.Int_vec
module Binsearch = Dolx_util.Binsearch
module Nok_layout = Dolx_storage.Nok_layout
module Metrics = Dolx_obs.Metrics

let c_node_updates = Metrics.counter "update.node_updates"

let c_subtree_updates = Metrics.counter "update.subtree_updates"

let c_pages_refreshed = Metrics.counter "update.pages_refreshed"

(** {1 Logical transition-list surgery} *)

(* Replace all transitions with preorder in [lo, hi] by [repl] (sorted
   (pre, code) pairs within the window), then drop redundant transitions
   around the seam (a transition whose code equals its predecessor's). *)
let splice (dol : Dol.t) ~lo ~hi repl =
  let pres = dol.Dol.trans_pre and codes = dol.Dol.trans_code in
  let k = Array.length pres in
  (* index of first transition with pre >= lo *)
  let il = match Binsearch.successor pres lo with Some i -> i | None -> k in
  (* index after last transition with pre <= hi *)
  let ih =
    match Binsearch.predecessor pres hi with
    | Some i when pres.(i) >= lo -> i + 1
    | Some _ | None -> il
  in
  let out_pre = Int_vec.create ~capacity:(k + List.length repl) () in
  let out_code = Int_vec.create ~capacity:(k + List.length repl) () in
  let push p c =
    (* skip transitions that repeat the code already in force *)
    if Int_vec.is_empty out_code || Int_vec.last out_code <> c then begin
      Int_vec.push out_pre p;
      Int_vec.push out_code c
    end
  in
  for i = 0 to il - 1 do
    push pres.(i) codes.(i)
  done;
  List.iter (fun (p, c) -> push p c) repl;
  for i = ih to k - 1 do
    push pres.(i) codes.(i)
  done;
  dol.Dol.trans_pre <- Int_vec.to_array out_pre;
  dol.Dol.trans_code <- Int_vec.to_array out_code;
  (* every accessibility update funnels through here: invalidate cursors
     and run indexes derived from the old transition list *)
  Dol.bump_generation dol

(** {1 Accessibility updates (logical)} *)

(** Set a single node's accessibility for one subject.  Returns [true] if
    the DOL changed.  This is the paper's algorithm verbatim: locate the
    nearest preceding transition node; if it already gives the desired
    right, stop; otherwise make the node a transition with the updated
    code and make the following node a transition restoring the old code. *)
let dol_set_node (dol : Dol.t) ~subject ~grant v =
  let c = Dol.code_at dol v in
  let c' = Codebook.with_bit dol.Dol.codebook c subject grant in
  if c' = c then false
  else begin
    let n = dol.Dol.n_nodes in
    let repl =
      if v + 1 < n then [ (v, c'); (v + 1, Dol.code_at dol (v + 1)) ]
      else [ (v, c') ]
    in
    splice dol ~lo:v ~hi:(min (v + 1) (n - 1)) repl;
    true
  end

(** Set one subject's accessibility over the whole preorder range
    [lo, hi] (a subtree, in practice).  Other subjects' rights within the
    range are preserved: each distinct code occurring in the range is
    remapped through the codebook. *)
let dol_set_range (dol : Dol.t) ~subject ~grant ~lo ~hi =
  if lo < 0 || hi >= dol.Dol.n_nodes || lo > hi then invalid_arg "Update.dol_set_range";
  let cb = dol.Dol.codebook in
  let n = dol.Dol.n_nodes in
  let after = if hi + 1 < n then Some (hi + 1, Dol.code_at dol (hi + 1)) else None in
  (* Transitions strictly inside (lo, hi], remapped. *)
  let pres = dol.Dol.trans_pre and codes = dol.Dol.trans_code in
  let inner = ref [] in
  Array.iteri
    (fun i p ->
      if p > lo && p <= hi then
        inner := (p, Codebook.with_bit cb codes.(i) subject grant) :: !inner)
    pres;
  let head = (lo, Codebook.with_bit cb (Dol.code_at dol lo) subject grant) in
  let repl =
    (head :: List.rev !inner) @ match after with Some e -> [ e ] | None -> []
  in
  splice dol ~lo ~hi:(min (hi + 1) (n - 1)) repl

(** Set the accessibility of node [v]'s whole subtree (paper: "if we are
    to set the accessibility of a whole subtree"). *)
let dol_set_subtree (dol : Dol.t) tree ~subject ~grant v =
  dol_set_range dol ~subject ~grant ~lo:v ~hi:(Tree.subtree_end tree v)

(** Replace the full ACL over [lo, hi] with [bits] (all subjects at
    once) — used when inserted data arrives with a uniform ACL. *)
let dol_set_range_acl (dol : Dol.t) ~lo ~hi bits =
  if lo < 0 || hi >= dol.Dol.n_nodes || lo > hi then
    invalid_arg "Update.dol_set_range_acl";
  let n = dol.Dol.n_nodes in
  let c = Codebook.intern dol.Dol.codebook bits in
  let after = if hi + 1 < n then [ (hi + 1, Dol.code_at dol (hi + 1)) ] else [] in
  splice dol ~lo ~hi:(min (hi + 1) (n - 1)) ((lo, c) :: after)

(** {1 Structural updates (logical, functional)} *)

(** Extract the DOL of the preorder range [lo, hi] as a standalone DOL
    (fresh codebook).  Used to carry access rights along with a moved or
    copied subtree. *)
let extract_range (dol : Dol.t) ~lo ~hi =
  if lo < 0 || hi >= dol.Dol.n_nodes || lo > hi then invalid_arg "Update.extract_range";
  let cb = Codebook.create ~width:(Codebook.width dol.Dol.codebook) in
  let pres = Int_vec.create () in
  let codes = Int_vec.create () in
  let push p c =
    if Int_vec.is_empty codes || Int_vec.last codes <> c then begin
      Int_vec.push pres p;
      Int_vec.push codes c
    end
  in
  push 0 (Codebook.intern cb (Dol.acl_at dol lo));
  Array.iteri
    (fun i p ->
      if p > lo && p <= hi then
        push (p - lo)
          (Codebook.intern cb (Codebook.get dol.Dol.codebook dol.Dol.trans_code.(i))))
    dol.Dol.trans_pre;
  {
    Dol.codebook = cb;
    trans_pre = Int_vec.to_array pres;
    trans_code = Int_vec.to_array codes;
    n_nodes = hi - lo + 1;
    generation = 0;
  }

(** Insert a fragment of [m] nodes, carrying its own DOL [sub], so that
    its root lands at preorder [at] of the result (0 < at <= n: document
    roots cannot be displaced).  Returns a new DOL over n + m nodes; the
    main codebook absorbs the fragment's ACLs ("we assume the nodes
    inserted have access controls already", §3.4). *)
let dol_insert (dol : Dol.t) ~at (sub : Dol.t) =
  let n = dol.Dol.n_nodes and m = Dol.n_nodes sub in
  if at <= 0 || at > n then invalid_arg "Update.dol_insert: bad position";
  if Codebook.width sub.Dol.codebook <> Codebook.width dol.Dol.codebook then
    invalid_arg "Update.dol_insert: subject-set width mismatch";
  let cb = dol.Dol.codebook in
  let pres = Int_vec.create () in
  let codes = Int_vec.create () in
  let push p c =
    if Int_vec.is_empty codes || Int_vec.last codes <> c then begin
      Int_vec.push pres p;
      Int_vec.push codes c
    end
  in
  (* main transitions before the insertion point *)
  Array.iteri
    (fun i p -> if p < at then push p dol.Dol.trans_code.(i))
    dol.Dol.trans_pre;
  (* the fragment, re-interned and shifted *)
  Array.iteri
    (fun i p ->
      push (p + at) (Codebook.intern cb (Codebook.get sub.Dol.codebook sub.Dol.trans_code.(i))))
    sub.Dol.trans_pre;
  (* restore the code of the node that now follows the fragment *)
  if at < n then push (at + m) (Dol.code_at dol at);
  (* main transitions at or after the insertion point, shifted *)
  Array.iteri
    (fun i p -> if p >= at then push (p + m) dol.Dol.trans_code.(i))
    dol.Dol.trans_pre;
  { Dol.codebook = cb; trans_pre = Int_vec.to_array pres;
    trans_code = Int_vec.to_array codes; n_nodes = n + m; generation = 0 }

(** Delete the preorder range [lo, hi] (a subtree).  Returns a new DOL
    over n - (hi - lo + 1) nodes. *)
let dol_delete (dol : Dol.t) ~lo ~hi =
  let n = dol.Dol.n_nodes in
  if lo <= 0 || hi >= n || lo > hi then invalid_arg "Update.dol_delete: bad range";
  let m = hi - lo + 1 in
  let pres = Int_vec.create () in
  let codes = Int_vec.create () in
  let push p c =
    if Int_vec.is_empty codes || Int_vec.last codes <> c then begin
      Int_vec.push pres p;
      Int_vec.push codes c
    end
  in
  Array.iteri (fun i p -> if p < lo then push p dol.Dol.trans_code.(i)) dol.Dol.trans_pre;
  if hi + 1 < n then push lo (Dol.code_at dol (hi + 1));
  Array.iteri
    (fun i p -> if p > hi then push (p - m) dol.Dol.trans_code.(i))
    dol.Dol.trans_pre;
  { Dol.codebook = dol.Dol.codebook; trans_pre = Int_vec.to_array pres;
    trans_code = Int_vec.to_array codes; n_nodes = n - m; generation = 0 }

(** Move the range [lo, hi] so that it starts at position [at] of the
    intermediate (post-delete) document.  Composition of {!dol_delete}
    and {!dol_insert}; each step obeys Proposition 1. *)
let dol_move (dol : Dol.t) ~lo ~hi ~at =
  let sub = extract_range dol ~lo ~hi in
  let without = dol_delete dol ~lo ~hi in
  dol_insert without ~at sub

(** {1 Subject-set updates (§3.4)} *)

(** Add a subject column; rights optionally copied from [like].  "No
    changes to the embedded transition nodes and the references are
    required." Returns the new subject's index. *)
let add_subject (dol : Dol.t) ?like () =
  let s = Codebook.add_subject dol.Dol.codebook ?like () in
  (* subject indices shifted / new column: derived run indexes are stale *)
  Dol.bump_generation dol;
  s

(** Remove a subject.  Only the codebook changes; the embedded codes may
    become redundant and are cleaned lazily by {!compact}. *)
let remove_subject (dol : Dol.t) subject =
  Codebook.remove_subject dol.Dol.codebook subject;
  Dol.bump_generation dol

(** Lazy correction pass: drop transitions whose ACL (not merely code)
    equals the ACL in force before them. *)
let compact (dol : Dol.t) =
  let cb = dol.Dol.codebook in
  let pres = Int_vec.create () in
  let codes = Int_vec.create () in
  let last_bits = ref None in
  Array.iteri
    (fun i p ->
      let c = dol.Dol.trans_code.(i) in
      let bits = Codebook.get cb c in
      let same = match !last_bits with Some b -> Bitset.equal b bits | None -> false in
      if not same then begin
        Int_vec.push pres p;
        Int_vec.push codes c;
        last_bits := Some bits
      end)
    dol.Dol.trans_pre;
  dol.Dol.trans_pre <- Int_vec.to_array pres;
  dol.Dol.trans_code <- Int_vec.to_array codes;
  Dol.bump_generation dol

(** {1 Physical write-through} *)

(* After a logical accessibility update over [lo, hi], re-emit every page
   intersecting [lo, hi+1] from the logical DOL.  Pages are read, patched
   and written back through the layout, so disk counters reflect the
   paper's N/B claim. *)
let refresh_pages (store : Secure_store.t) ~lo ~hi =
  let layout = Secure_store.layout store in
  let pool = Secure_store.pool store in
  let dol = Secure_store.dol store in
  let n = Dol.n_nodes dol in
  let hi = min (hi + 1) (n - 1) in
  let rec go pre =
    if pre <= hi then begin
      let lp = Nok_layout.page_of layout pre in
      let rs = Nok_layout.records layout pool lp in
      let first_pre =
        match rs with r :: _ -> r.Nok_layout.pre | [] -> assert false
      in
      let count = List.length rs in
      let rs' =
        List.map
          (fun (r : Nok_layout.record) ->
            let code =
              if r.Nok_layout.pre <> first_pre && Dol.is_transition dol r.Nok_layout.pre
              then Some (Dol.code_at dol r.Nok_layout.pre)
              else None
            in
            { r with Nok_layout.code })
          rs
      in
      Nok_layout.rewrite_page layout pool lp rs' ~code_before:(Dol.code_at dol);
      Metrics.incr c_pages_refreshed;
      go (first_pre + count)
    end
  in
  go lo

(** Single-node accessibility update on a secured store: logical DOL
    change + page write-back ("the cost for update a specific node is a
    page read followed by a page write", §3.4).  Runs as one
    {!Secure_store.with_write} window: readers pinned before it keep the
    pre-image, readers created after it see the whole update. *)
let set_node_accessibility store ~subject ~grant v =
  Secure_store.with_write store (fun store ->
      Metrics.incr c_node_updates;
      let changed = dol_set_node (Secure_store.dol store) ~subject ~grant v in
      if changed then refresh_pages store ~lo:v ~hi:(v + 1);
      changed)

(** Subtree accessibility update on a secured store (~N/B page I/Os);
    one update window like {!set_node_accessibility}. *)
let set_subtree_accessibility store ~subject ~grant v =
  Secure_store.with_write store (fun store ->
      Metrics.incr c_subtree_updates;
      let tree = Secure_store.tree store in
      let dol = Secure_store.dol store in
      let hi = Tree.subtree_end tree v in
      dol_set_range dol ~subject ~grant ~lo:v ~hi;
      refresh_pages store ~lo:v ~hi)

(** {1 Store-level subject updates}

    The dol-level {!add_subject} / {!remove_subject} mutate the codebook
    in place, which is unsafe once snapshot readers share it.  The
    store-level variants copy-on-write the codebook (entries are shared;
    the column surgery happens on the copy), swap it into the live DOL
    and publish a new epoch — pinned readers keep the old book. *)

let store_add_subject store ?like () =
  Secure_store.with_write store (fun store ->
      let dol = Secure_store.dol store in
      let cb = Codebook.copy (Dol.codebook dol) in
      let s = Codebook.add_subject cb ?like () in
      dol.Dol.codebook <- cb;
      Dol.bump_generation dol;
      s)

let store_remove_subject store subject =
  Secure_store.with_write store (fun store ->
      let dol = Secure_store.dol store in
      let cb = Codebook.copy (Dol.codebook dol) in
      Codebook.remove_subject cb subject;
      dol.Dol.codebook <- cb;
      Dol.bump_generation dol)

(** Store-level {!compact}: the lazy correction pass as one update
    window, with the affected pages re-emitted. *)
let store_compact store =
  Secure_store.with_write store (fun store ->
      let dol = Secure_store.dol store in
      compact dol;
      let n = Dol.n_nodes dol in
      if n > 0 then refresh_pages store ~lo:0 ~hi:(n - 1))

(** Patch a DOL in place so that it matches [labeling] over the given
    preorder [runs] — the DOL side of incremental accessibility-map
    maintenance ([Dolx_policy.Incremental] reports the runs its rule
    updates touched).  Each run is split into maximal sub-runs of equal
    ACL and applied with one range update per sub-run. *)
let sync_ranges (dol : Dol.t) labeling runs =
  let module Labeling = Dolx_policy.Labeling in
  let module Acl = Dolx_policy.Acl in
  let store = Labeling.store labeling in
  List.iter
    (fun (lo, hi) ->
      let u = ref lo in
      while !u <= hi do
        let id = Labeling.acl_id labeling !u in
        let stop = ref !u in
        while !stop + 1 <= hi && Labeling.acl_id labeling (!stop + 1) = id do
          incr stop
        done;
        dol_set_range_acl dol ~lo:!u ~hi:!stop (Acl.get store id);
        u := !stop + 1
      done)
    runs

(** {1 Durable (journaled) updates}

    Crash-safe variants over a clean database image ({!Db_file}): the
    update is journaled with a commit mark before the file is compacted,
    so a crash at any point leaves an image that loads as exactly the
    pre- or exactly the post-update labeling — never a hybrid. *)

(** Durable {!set_node_accessibility}: returns the new clean image. *)
let durable_node_update ?pool_capacity ~base ~subject ~grant v =
  Db_file.apply_update ?pool_capacity ~base (fun store ->
      ignore (set_node_accessibility store ~subject ~grant v))

(** Durable {!set_subtree_accessibility}: returns the new clean image. *)
let durable_subtree_update ?pool_capacity ~base ~subject ~grant v =
  Db_file.apply_update ?pool_capacity ~base (fun store ->
      set_subtree_accessibility store ~subject ~grant v)
