(** A secured XML store: the NoK page layout with embedded DOL codes, a
    buffer pool, and the in-memory codebook + page-header table (paper
    §3.2).  All navigation used by query evaluation goes through this
    module so page touches, buffer hits and disk I/O are accounted. *)

module Tree = Dolx_xml.Tree

type t

(** Lay [tree] and its DOL out on a fresh simulated disk.  [fill] bounds
    page occupancy at build time (slack absorbs update growth, §3.4).
    [run_index] (default [true]) enables the per-subject access-run
    index ({!Access_runs}): checks are answered from materialized
    accessible intervals instead of page decodes, and the engine can
    prune candidate sets by range intersection.  Disable it to measure
    the paper's unaided §3.3 path.
    [succinct] (default [true]) routes structural navigation through the
    balanced-parentheses tier ({!Dolx_index.Succinct}); [path_summary]
    (default [true]) enables DataGuide candidate-class pruning in the
    engine.  Both images are always built (they are per-epoch snapshot
    state); the flags only govern use, per handle, so on/off benchmark
    sides share one physical store.
    @raise Invalid_argument on tree/DOL size mismatch. *)
val create :
  ?page_size:int -> ?pool_capacity:int -> ?fill:float -> ?run_index:bool ->
  ?succinct:bool -> ?path_summary:bool -> Tree.t -> Dol.t -> t

(** Assemble from pre-built parts (used by {!Db_file}); the layout must
    already live on [disk].  [quarantine] lists inclusive preorder ranges
    whose access-control labels were lost to storage corruption: every
    access check inside a quarantined range answers [false] for every
    subject (fail-secure — recovery must never fail open).
    @raise Invalid_argument on a malformed range. *)
val assemble :
  ?pool_capacity:int -> ?quarantine:(int * int) list -> ?run_index:bool ->
  ?succinct:bool -> ?path_summary:bool ->
  tree:Tree.t -> dol:Dol.t -> disk:Dolx_storage.Disk.t ->
  layout:Dolx_storage.Nok_layout.t -> unit -> t

(** A read-only evaluation handle pinned to the store's current epoch:
    it captures the last-published DOL / layout snapshot and an
    epoch-pinned buffer pool, so it sees an immutable image of the store
    even while {!with_write} windows (splices, subject changes,
    quarantine transitions) run concurrently.  Handles may evaluate
    queries from separate domains — the disk serializes physical page
    I/O internally.  [pool_capacity] defaults to the parent's.
    Call {!release} (or use {!with_reader}) when done so superseded page
    versions can be retired. *)
val reader : ?pool_capacity:int -> t -> t

(** Release a reader's epoch pin.  Idempotent; no-op on the live store
    handle.  The reader must not be used afterwards. *)
val release : t -> unit

(** [with_reader t f] = [f (reader t)] with a guaranteed {!release}. *)
val with_reader : ?pool_capacity:int -> t -> (t -> 'a) -> 'a

(** Epoch this handle reads at: the pinned epoch for a reader, the
    current epoch of the store's clock otherwise. *)
val snapshot_epoch : t -> int

(** [with_write t f] runs [f t] as one serialized update window and, on
    success, publishes the resulting state as a new epoch: readers
    created afterwards see all of [f]'s effects, readers pinned before
    keep their snapshot.  On exception nothing is published (the next
    successful window supersedes the partial state; pinned readers stay
    consistent via the disk's page-version chains).
    @raise Invalid_argument on a reader handle. *)
val with_write : t -> (t -> 'a) -> 'a

(** The quarantined preorder ranges (sorted, inclusive); empty for stores
    built or rebuilt from source. *)
val quarantined : t -> (int * int) list

val tree : t -> Tree.t

val dol : t -> Dol.t

val layout : t -> Dolx_storage.Nok_layout.t

val pool : t -> Dolx_storage.Buffer_pool.t

val disk : t -> Dolx_storage.Disk.t

val codebook : t -> Codebook.t

(** {1 Run index}

    The per-subject access-run index is shared by all reader handles
    (builds are internally synchronized); each handle owns a private
    run cursor, so concurrent readers never share scan state. *)

val run_index : t -> Access_runs.t

val run_index_enabled : t -> bool

(** Toggle run-index use on this handle (e.g. for on/off benchmark
    comparisons over the same physical store). *)
val set_run_index : t -> bool -> unit

(** {1 Succinct tree tier & path summary}

    Immutable per published epoch: built at store creation, re-stamped
    into each published snapshot alongside the frozen layout, and
    captured by {!reader} handles, so concurrent readers at different
    epochs each see a consistent image.  The [set_*] toggles are
    per-handle (a reader inherits the parent handle's setting at
    creation), mirroring {!set_run_index}. *)

val succinct : t -> Dolx_index.Succinct.t

val path_summary : t -> Dolx_index.Path_summary.t

(** Is navigation served from the succinct tier on this handle? *)
val succinct_enabled : t -> bool

val set_succinct : t -> bool -> unit

(** Is DataGuide candidate-class pruning available to the engine on this
    handle? *)
val summary_enabled : t -> bool

val set_summary : t -> bool -> unit

(** Re-publish the [succinct.bits_per_node] / [summary.nodes] gauges
    after a registry reset. *)
val refresh_gauges : t -> unit

(** {1 Fuzzer fault site}

    Deliberately wrong behavior used by the differential fuzzer to prove
    it catches and shrinks a planted bug: when armed, {!accessible} and
    {!accessible_with_skip} report node 3 inaccessible regardless of its
    label.  Armed at startup by [DOLX_FUZZ_PLANT_BUG=access] (or [=1]);
    tests may toggle the ref directly.  Never set on production paths. *)
val planted_bug : bool ref

(** Second planted fault site, for the MVCC linearizability checks: when
    armed, {!reader} skips epoch pinning and hands out the live store
    structures, so a reader overlapping an update can observe a
    half-applied splice.  Armed by [DOLX_FUZZ_PLANT_BUG=stale] (or
    [=stale-snapshot]); tests may toggle the ref directly. *)
val planted_stale : bool ref

(** {1 Statistics} *)

type io_stats = {
  page_touches : int;   (** logical page accesses through the pool *)
  pool_hits : int;
  pool_misses : int;
  disk_reads : int;
  disk_writes : int;
  access_checks : int;  (** ACCESS evaluations (§3.3) *)
  header_skips : int;   (** page loads avoided via the header check *)
  codebook_lookups : int;  (** [Codebook.grants] evaluations *)
  run_answers : int;  (** checks answered by the run index (no page decode) *)
}

val io_stats : t -> io_stats

val reset_stats : t -> unit

val pp_io : Format.formatter -> io_stats -> unit

(** {1 Navigation}

    Positions come from the succinct structure without I/O; the caller
    decides whether to visit (fetch) a node — that is what lets the
    header optimization of §3.3 skip provably-inaccessible pages. *)

(** Fetch the page holding [v] (accounted I/O). *)
val touch : t -> Tree.node -> unit

(** FIRST-CHILD of Algorithm 1; {!Tree.nil} if none. *)
val first_child : t -> Tree.node -> Tree.node

(** FOLLOWING-SIBLING of Algorithm 1; {!Tree.nil} if none. *)
val following_sibling : t -> Tree.node -> Tree.node

val parent : t -> Tree.node -> Tree.node

val subtree_end : t -> Tree.node -> Tree.node

(** Proper ancestorship (interval containment; no I/O). *)
val is_ancestor : t -> Tree.node -> Tree.node -> bool

val tag : t -> Tree.node -> Dolx_xml.Tag.id

val text : t -> Tree.node -> string

(** {1 Access checks (§3.3)} *)

(** ACCESS of Algorithm 1: the code in force is found on [v]'s own page,
    so no I/O beyond the page the evaluator already loaded to visit
    [v]. *)
val accessible : t -> subject:int -> Tree.node -> bool

(** Header-only test: the in-memory page table already proves every node
    on [v]'s page inaccessible to [subject] (first code denies, change
    bit clear). No I/O. *)
val page_provably_inaccessible : t -> subject:int -> Tree.node -> bool

(** ACCESS with the header optimization: consult the in-memory header
    first; fetch the page only when it cannot decide.  With the run
    index on, both this and {!accessible} answer from runs without any
    page access — the run verdict subsumes the header skip. *)
val accessible_with_skip : t -> subject:int -> Tree.node -> bool

(** {1 Run-index range queries}

    Set-level accessibility; no page I/O.  Each helper degrades to a
    conservative identity when the run index is off, so callers need no
    mode split. *)

(** Least accessible preorder [>= v]; [v] itself when the index is off,
    [Dol.n_nodes] when no accessible node remains. *)
val next_accessible : t -> subject:int -> Tree.node -> Tree.node

(** Drop inaccessible nodes from a sorted candidate list (galloping
    intersection with the accessible runs); identity when off. *)
val intersect_accessible : t -> subject:int -> Tree.node list -> Tree.node list

(** Is every node of [\[lo, hi\]] provably accessible (contained in one
    accessible run)?  [false] means "unknown" when the index is off. *)
val span_provably_accessible : t -> subject:int -> lo:int -> hi:int -> bool

(** Fraction of nodes accessible to [subject] (cost-model input); 1.0
    when the index is off. *)
val accessible_fraction : t -> subject:int -> float

(** {1 Structural reorganization}

    Accessibility updates are applied in place (see {!Update}); a
    structural update renumbers every following preorder, so the store is
    rebuilt: [rebuild t tree' dol'] lays the new document out on a fresh
    disk with [t]'s page-size and pool configuration. *)
val rebuild : t -> Tree.t -> Dol.t -> t
