(** Single-file database format v2: page images + node values + tag
    names + DOL in one file — compile a labeled document once, open or
    ship it without the source XML or the policy.  Optionally
    self-describing: the subject registry and mode names can be embedded
    so ACL bits are addressable by name.

    Robustness (see docs/FORMAT.md for the exact layout):
    - every section carries a CRC32C verified {e before} parsing; page
      images are checksummed individually;
    - a write-ahead journal region makes multi-page accessibility
      updates atomic: a load sees exactly the pre-update or exactly the
      post-update labeling, never a hybrid;
    - recovery from unrecoverable page corruption is fail-secure: the
      affected preorder range can be quarantined (denied for every
      subject), never silently granted;
    - {!of_bytes} treats input as untrusted and raises only {!Corrupt}
      on malformed bytes. *)

exception Corrupt of string

(** Serialize a store (buffered pages are flushed and the layout's
    dirty-page tracking drained first).  The result is a clean image —
    its journal region is empty. *)
val to_bytes :
  ?subjects:Dolx_policy.Subject.registry -> ?modes:Dolx_policy.Mode.registry ->
  Secure_store.t -> Bytes.t

(** Load a store; also returns the embedded registries when present.

    [on_bad_page] selects the policy for page images whose checksum does
    not verify: [`Fail] (default) raises [Corrupt] naming the pages;
    [`Deny_subtree] replaces each lost run with structural filler
    carrying a deny-all code and reports the preorder ranges via
    {!Secure_store.quarantined} — data may be lost, access is never
    gained.  The journal region holds a sequence of records (group
    commit appends one per update); records sealed by their CRC and
    commit mark are rolled forward in order, and the first torn record
    (crash artifact) ends the scan — the load yields the state as of the
    last committed record.
    @raise Corrupt on malformed input — never [Invalid_argument] or an
    out-of-bounds error. *)
val of_bytes :
  ?pool_capacity:int -> ?on_bad_page:[ `Fail | `Deny_subtree ] -> Bytes.t ->
  Secure_store.t * (Dolx_policy.Subject.registry * Dolx_policy.Mode.registry) option

(** [update_images ~base f] loads the clean image [base], applies the
    update [f] to the store, and returns every durable image a crash
    during the journaled commit could leave behind, in write order:
    the untouched base, the journal flag alone, torn journal prefixes
    (plus [torn]-PRNG-chosen extra tear points), the sealed journal
    without its commit mark, and last the committed image.  Every image
    loads via {!of_bytes}; all but the last yield exactly the pre-update
    state, the last exactly the post-update state.  When [f] changed
    nothing, the result is [[base]].
    @raise Invalid_argument when [base] is not a clean image. *)
val update_images :
  ?pool_capacity:int -> ?torn:Dolx_util.Prng.t -> base:Bytes.t ->
  (Secure_store.t -> unit) -> Bytes.t list

(** Apply an update durably: journal it, reload the committed image
    (exercising journal roll-forward), and compact to a clean image.
    Registries embedded in [base] are re-embedded. *)
val apply_update :
  ?pool_capacity:int -> base:Bytes.t -> (Secure_store.t -> unit) -> Bytes.t

(** Append one update to [image] as a journal record without compacting
    — the group-commit building block ([Dolx_core.Group_commit] batches
    several appends into one flush).  [image] may be clean or already
    journaled; each result is a byte prefix of the next append's result,
    so a crash tearing the file anywhere in the appended region loads
    (via {!of_bytes}) as the state after some prefix of the batch, and
    replaying a record batch is idempotent (records are pure redo).
    When [f] changed no page, returns [image] unchanged.
    @raise Invalid_argument when [image] is neither clean nor
    journaled. *)
val append_update :
  ?pool_capacity:int -> image:Bytes.t -> (Secure_store.t -> unit) -> Bytes.t

(** Byte extent [(offset, length)] of logical page [lp]'s image + CRC
    inside a database image — for corruption-injection tests.
    @raise Corrupt when the image prefix is malformed or [lp] is out of
    range. *)
val page_extent : Bytes.t -> int -> int * int

val save :
  ?subjects:Dolx_policy.Subject.registry -> ?modes:Dolx_policy.Mode.registry ->
  string -> Secure_store.t -> unit

(** @raise Corrupt on malformed input; [Sys_error] on I/O failure. *)
val load :
  ?pool_capacity:int -> ?on_bad_page:[ `Fail | `Deny_subtree ] -> string ->
  Secure_store.t * (Dolx_policy.Subject.registry * Dolx_policy.Mode.registry) option
