(** DOL maintenance under accessibility and structural updates (paper
    §3.4).  Every operation preserves the DOL invariants and obeys
    Proposition 1: the number of transition nodes grows by at most 2
    (counting the inserted fragment's own transitions for inserts).

    The [dol_*] operations are logical; {!set_node_accessibility} and
    {!set_subtree_accessibility} additionally patch the affected disk
    pages, so the paper's update-cost claims (one page read + write per
    node update, ~N/B for a subtree) are measurable. *)

module Tree = Dolx_xml.Tree

(** {1 Accessibility updates (logical)} *)

(** Set a single node's accessibility for one subject; [true] if the DOL
    changed.  The paper's algorithm verbatim. *)
val dol_set_node : Dol.t -> subject:int -> grant:bool -> Tree.node -> bool

(** Set one subject's accessibility over the preorder range [lo, hi],
    preserving all other subjects' rights within it. *)
val dol_set_range : Dol.t -> subject:int -> grant:bool -> lo:int -> hi:int -> unit

(** {!dol_set_range} over [v]'s whole subtree. *)
val dol_set_subtree : Dol.t -> Tree.t -> subject:int -> grant:bool -> Tree.node -> unit

(** Replace the full ACL over [lo, hi] (all subjects at once). *)
val dol_set_range_acl : Dol.t -> lo:int -> hi:int -> Dolx_util.Bitset.t -> unit

(** {1 Structural updates (logical, functional)} *)

(** The DOL of preorder range [lo, hi] as a standalone DOL with a fresh
    codebook — carries access rights along with a moved/copied subtree. *)
val extract_range : Dol.t -> lo:int -> hi:int -> Dol.t

(** Insert a fragment (with its own DOL) so its root lands at preorder
    [at] (0 < at <= n).  The main codebook absorbs the fragment's ACLs.
    @raise Invalid_argument on bad positions or subject-width mismatch. *)
val dol_insert : Dol.t -> at:int -> Dol.t -> Dol.t

(** Delete the preorder range [lo, hi] (a subtree). *)
val dol_delete : Dol.t -> lo:int -> hi:int -> Dol.t

(** Move range [lo, hi] to start at position [at] of the post-delete
    document: {!dol_delete} then {!dol_insert}, each within
    Proposition 1. *)
val dol_move : Dol.t -> lo:int -> hi:int -> at:int -> Dol.t

(** {1 Subject-set updates (§3.4)} *)

(** Add a subject column (rights optionally copied from [like]); no
    change to embedded transitions.  Returns the new subject's index. *)
val add_subject : Dol.t -> ?like:int -> unit -> int

(** Remove a subject; only the codebook changes (redundancy cleaned
    lazily by {!compact}). *)
val remove_subject : Dol.t -> int -> unit

(** Lazy correction pass: drop transitions whose ACL equals the ACL in
    force before them. *)
val compact : Dol.t -> unit

(** {1 Physical write-through} *)

(** Re-emit every page intersecting [lo, hi+1] from the store's logical
    DOL (read-modify-write; may split pages). *)
val refresh_pages : Secure_store.t -> lo:int -> hi:int -> unit

(** Single-node accessibility update on a secured store: logical change
    plus page write-back ("a page read followed by a page write").  Runs
    as one {!Secure_store.with_write} window — readers pinned before it
    keep the pre-image, readers created after see the whole update. *)
val set_node_accessibility :
  Secure_store.t -> subject:int -> grant:bool -> Tree.node -> bool

(** Subtree accessibility update on a secured store (~N/B page I/Os);
    one update window like {!set_node_accessibility}. *)
val set_subtree_accessibility :
  Secure_store.t -> subject:int -> grant:bool -> Tree.node -> unit

(** {1 Store-level subject updates}

    The dol-level {!add_subject} / {!remove_subject} mutate the codebook
    in place — unsafe once snapshot readers share it.  These variants
    copy-on-write the codebook and publish a new epoch, so pinned
    readers keep the old book. *)

(** {!add_subject} on a store, as one update window with a codebook
    copy-on-write.  Returns the new subject's index. *)
val store_add_subject : Secure_store.t -> ?like:int -> unit -> int

(** {!remove_subject} on a store, as one update window with a codebook
    copy-on-write. *)
val store_remove_subject : Secure_store.t -> int -> unit

(** {!compact} on a store, as one update window with the affected pages
    re-emitted. *)
val store_compact : Secure_store.t -> unit

(** Patch a DOL so it matches [labeling] over the given preorder runs —
    the DOL side of incremental accessibility-map maintenance (see
    [Dolx_policy.Incremental]). *)
val sync_ranges : Dol.t -> Dolx_policy.Labeling.t -> (int * int) list -> unit

(** {1 Durable (journaled) updates}

    Crash-safe variants over a clean {!Db_file} image: the update is
    journaled (write-ahead, commit-marked) before the file is compacted,
    so a crash at any point leaves an image loading as exactly the pre-
    or exactly the post-update labeling — never a hybrid. *)

(** Durable {!set_node_accessibility}: returns the new clean image. *)
val durable_node_update :
  ?pool_capacity:int -> base:Bytes.t -> subject:int -> grant:bool ->
  Tree.node -> Bytes.t

(** Durable {!set_subtree_accessibility}: returns the new clean image. *)
val durable_subtree_update :
  ?pool_capacity:int -> base:Bytes.t -> subject:int -> grant:bool ->
  Tree.node -> Bytes.t
