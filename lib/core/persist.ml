(** Serialization of DOLs (codebook + transition list) to bytes.

    DOL is "disk-oriented" (paper §1); the page-embedded codes live in
    the {!Secure_store} layout, but the codebook and the logical
    transition list also need a durable form — for shipping a secured
    document to another site (dissemination), for restarting, and for
    the streaming filter.  Format v2 (little-endian):

    {v
      magic   "DOLX"            4 bytes
      version u8                = 2
      width   varint            subjects per ACL
      nnodes  varint
      ncodes  varint            codebook entries
      entries ncodes * ceil(width/8) bytes, entry order = code order
      ntrans  varint
      trans   ntrans * (varint delta_pre, varint code)
      crc     u32               CRC32C over all preceding bytes
    v}

    Transition preorders are delta-encoded: sorted ascending, the paper's
    structural locality makes the deltas small, so they varint-compress
    well.

    This is an access-control artifact, so [of_bytes] treats its input as
    untrusted: the trailing checksum is verified before anything is
    parsed, every varint is bounds- and overflow-checked, and counts are
    sanity-capped against the input length — any malformed input raises
    {!Corrupt}, never [Invalid_argument] or an out-of-bounds error. *)

module Bitset = Dolx_util.Bitset
module Varint = Dolx_util.Varint
module Crc = Dolx_util.Crc

let magic = "DOLX"

let version = 2

exception Corrupt of string

let bitset_to_bytes bits =
  let width = Bitset.width bits in
  let nbytes = (width + 7) / 8 in
  let out = Bytes.make nbytes '\000' in
  Bitset.iter_set
    (fun i ->
      let b = Bytes.get_uint8 out (i / 8) in
      Bytes.set_uint8 out (i / 8) (b lor (1 lsl (i mod 8))))
    bits;
  out

let bitset_of_bytes ~width buf pos =
  let bits = Bitset.create width in
  for i = 0 to width - 1 do
    if Bytes.get_uint8 buf (pos + (i / 8)) land (1 lsl (i mod 8)) <> 0 then
      Bitset.set bits i true
  done;
  bits

(** Serialize a DOL (body only, no trailing CRC) into [buf]. *)
let write_body buf (dol : Dol.t) =
  let cb = Dol.codebook dol in
  let width = Codebook.width cb in
  let entry_bytes = (width + 7) / 8 in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf version;
  let add_varint x =
    let tmp = Bytes.create Varint.max_len in
    let len = Varint.write tmp 0 x in
    Buffer.add_subbytes buf tmp 0 len
  in
  add_varint width;
  add_varint (Dol.n_nodes dol);
  add_varint (Codebook.count cb);
  Codebook.iter
    (fun _ bits ->
      let b = bitset_to_bytes bits in
      assert (Bytes.length b = entry_bytes);
      Buffer.add_bytes buf b)
    cb;
  let transitions = Dol.transitions dol in
  add_varint (List.length transitions);
  let prev = ref 0 in
  List.iter
    (fun (pre, code) ->
      add_varint (pre - !prev);
      add_varint code;
      prev := pre)
    transitions

(** Serialize a DOL. *)
let to_bytes (dol : Dol.t) =
  let buf = Buffer.create 1024 in
  write_body buf dol;
  let body = Buffer.to_bytes buf in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  Bytes.set_int32_le out (Bytes.length body) (Int32.of_int (Crc.digest body));
  out

(* Parse the body of a checksummed blob: bytes [0, limit) of [buf].
   Shared with Db_file, whose journal embeds a DOL body. *)
let of_body buf ~limit =
  let pos = ref 0 in
  let need n =
    if n < 0 || !pos + n > limit then raise (Corrupt "truncated input")
  in
  need 5;
  if Bytes.sub_string buf 0 4 <> magic then raise (Corrupt "bad magic");
  if Bytes.get_uint8 buf 4 <> version then raise (Corrupt "unsupported version");
  pos := 5;
  let read_varint () =
    match Varint.read_opt buf ~pos:!pos ~limit with
    | None -> raise (Corrupt "bad varint")
    | Some (x, p) ->
        pos := p;
        x
  in
  let width = read_varint () in
  let n_nodes = read_varint () in
  let n_codes = read_varint () in
  if width < 0 || n_nodes <= 0 || n_codes <= 0 then raise (Corrupt "bad header");
  let entry_bytes = (width + 7) / 8 in
  (* Cap the counts by what the remaining bytes could possibly hold
     before allocating anything proportional to them. *)
  if entry_bytes > 0 && n_codes > (limit - !pos) / entry_bytes then
    raise (Corrupt "truncated input");
  let cb = Codebook.create ~width in
  for _ = 1 to n_codes do
    need entry_bytes;
    let bits = bitset_of_bytes ~width buf !pos in
    pos := !pos + entry_bytes;
    (* verbatim, not interned: duplicate entries are a legal state after
       subject removals (cleaned lazily by Update.compact), and embedded
       codes reference entry indices *)
    ignore (Codebook.append_exact cb bits)
  done;
  let n_trans = read_varint () in
  if n_trans <= 0 then raise (Corrupt "no transitions");
  if n_trans > (limit - !pos) / 2 then raise (Corrupt "truncated input");
  let pres = Array.make n_trans 0 in
  let codes = Array.make n_trans 0 in
  let prev = ref 0 in
  for i = 0 to n_trans - 1 do
    let delta = read_varint () in
    let code = read_varint () in
    if code >= n_codes then raise (Corrupt "dangling code");
    let pre = !prev + delta in
    if (i = 0 && pre <> 0) || (i > 0 && delta = 0) || pre >= n_nodes then
      raise (Corrupt "bad transition order");
    pres.(i) <- pre;
    codes.(i) <- code;
    prev := pre
  done;
  if !pos <> limit then raise (Corrupt "trailing garbage");
  { Dol.codebook = cb; trans_pre = pres; trans_code = codes; n_nodes;
    generation = 0 }

(** Deserialize.  @raise Corrupt on malformed input. *)
let of_bytes buf =
  let len = Bytes.length buf in
  if len < 4 then raise (Corrupt "truncated input");
  let body_len = len - 4 in
  let stored = Int32.to_int (Bytes.get_int32_le buf body_len) land 0xFFFFFFFF in
  if Crc.digest_sub buf ~pos:0 ~len:body_len <> stored then
    raise (Corrupt "checksum mismatch");
  of_body buf ~limit:body_len

(** File convenience.  Channels are closed even when serialization or
    parsing raises. *)
let save path dol =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc (to_bytes dol))

let load path =
  let ic = open_in_bin path in
  let buf =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let buf = Bytes.create n in
        really_input ic buf 0 n;
        buf)
  in
  of_bytes buf

(** Serialized size in bytes, without materializing. *)
let serialized_bytes dol = Bytes.length (to_bytes dol)
