(** A secured XML store: the NoK page layout with embedded DOL codes, a
    buffer pool, and the in-memory codebook + page-header table (§3.2).

    All navigation used by query evaluation goes through this module so
    that page touches, buffer hits and disk reads are accounted; the
    access check for a node is served from the node's own (already
    resident) page — "the access control check for d requires no
    additional I/O" (§3.3). *)

module Tree = Dolx_xml.Tree
module Nok_layout = Dolx_storage.Nok_layout
module Buffer_pool = Dolx_storage.Buffer_pool
module Disk = Dolx_storage.Disk
module Epoch = Dolx_storage.Epoch
module Metrics = Dolx_obs.Metrics
module Succinct = Dolx_index.Succinct
module Path_summary = Dolx_index.Path_summary

let c_access_checks = Metrics.counter "store.access_checks"

let g_succ_bits = Metrics.gauge "succinct.bits_per_node"

let g_summary_nodes = Metrics.gauge "summary.nodes"

let c_header_skips = Metrics.counter "store.header_skips"

let c_codebook_lookups = Metrics.counter "store.codebook_lookups"

let c_run_answers = Metrics.counter "store.run_answers"

(* Deliberate fault site for the differential fuzzer's self-test (see
   docs/ARCHITECTURE.md): when armed, node 3 is reported inaccessible
   regardless of its label, so the fuzzer must catch and shrink the
   divergence.  Armed only via DOLX_FUZZ_PLANT_BUG; tests may also
   toggle the ref in-process. *)
let planted_bug =
  ref
    (match Sys.getenv_opt "DOLX_FUZZ_PLANT_BUG" with
    | Some ("access" | "1") -> true
    | _ -> false)

(* Second planted fault site, for the MVCC linearizability checks: when
   armed, {!reader} skips epoch pinning and hands out the LIVE dol /
   layout / un-pinned pool, so a reader overlapping an update observes a
   half-applied splice.  Armed by DOLX_FUZZ_PLANT_BUG=stale(-snapshot). *)
let planted_stale =
  ref
    (match Sys.getenv_opt "DOLX_FUZZ_PLANT_BUG" with
    | Some ("stale" | "stale-snapshot") -> true
    | _ -> false)

(* What a writer publishes at the end of each update window: the epoch
   the state became current at, plus immutable snapshots of the DOL and
   the page-table view.  Readers pair this with an epoch-pinned buffer
   pool (page images from the disk's version chains) for a fully
   consistent image. *)
type pub = {
  p_epoch : int;
  p_dol : Dol.t; (* shallow snapshot: arrays never mutated in place *)
  p_layout : Nok_layout.t; (* frozen *)
  (* The succinct structural tier and the path summary ride the same
     snapshot: tree structure is immutable within a store's lifetime
     (structural updates go through [rebuild]), so publishing re-stamps
     the same immutable images at the new epoch. *)
  p_succ : Succinct.t;
  p_summary : Path_summary.t;
}

type t = {
  tree : Tree.t;
  (* Succinct balanced-parentheses image of [tree] and its DataGuide
     path summary — per-epoch immutable, rebuilt with the store. *)
  succ : Succinct.t;
  summary : Path_summary.t;
  mutable use_succinct : bool;
  mutable use_summary : bool;
  mutable dol : Dol.t;
  layout : Nok_layout.t;
  pool : Buffer_pool.t;
  disk : Disk.t;
  pool_capacity : int;
  (* Scan-resume cursor for [Nok_layout.code_in_force_at]: per handle,
     so reader handles never share scan state. *)
  cursor : Nok_layout.cursor;
  (* Per-subject access-run index (shared across reader handles; builds
     are internally synchronized) and this handle's private run cursor. *)
  runs : Access_runs.t;
  mutable use_runs : bool;
  run_cursor : Access_runs.cursor;
  mutable access_checks : int;
  mutable header_skips : int; (* page loads avoided via the header check *)
  mutable codebook_lookups : int; (* Codebook.grants evaluations *)
  mutable run_answers : int; (* checks answered by the run index *)
  (* Fail-secure quarantine: sorted disjoint preorder ranges [lo, hi]
     whose label pages could not be recovered after corruption.  Access
     to a quarantined node is denied for every subject — recovery must
     never fail open. *)
  quarantine : (int * int) array;
  (* MVCC shared state (one per store family, shared by all handles):
     the snapshot the writer last published, and the writer lock
     serializing update windows.  [epoch_pin] is per-handle: [Some e]
     marks an epoch-pinned reader handle. *)
  published : pub Atomic.t;
  write_m : Mutex.t;
  mutable epoch_pin : int option;
}

(* Build the per-epoch structural tier and publish its size gauges. *)
let structural_tier tree =
  let succ = Succinct.build tree in
  let summary = Path_summary.build tree in
  Metrics.gauge_set g_succ_bits (Succinct.bits_per_node succ);
  Metrics.gauge_set g_summary_nodes
    (float_of_int (Path_summary.node_count summary));
  (succ, summary)

let create ?(page_size = 4096) ?(pool_capacity = 64) ?(fill = 0.9)
    ?(run_index = true) ?(succinct = true) ?(path_summary = true) tree dol =
  if Dol.n_nodes dol <> Tree.size tree then
    invalid_arg "Secure_store.create: tree / DOL size mismatch";
  let disk = Disk.create ~page_size () in
  let transitions =
    Array.of_list (Dol.transitions dol)
  in
  let layout = Nok_layout.build ~fill disk tree ~transitions in
  let pool = Buffer_pool.create ~capacity:pool_capacity disk in
  let succ, summary = structural_tier tree in
  { tree; succ; summary;
    use_succinct = succinct; use_summary = path_summary;
    dol; layout; pool; disk; pool_capacity;
    cursor = Nok_layout.cursor layout;
    runs = Access_runs.create dol;
    use_runs = run_index;
    run_cursor = Access_runs.cursor ();
    access_checks = 0;
    header_skips = 0; codebook_lookups = 0; run_answers = 0;
    quarantine = [||];
    published =
      Atomic.make
        {
          p_epoch = Epoch.current (Disk.epoch disk);
          p_dol = Dol.snapshot dol;
          p_layout = Nok_layout.freeze layout;
          p_succ = succ;
          p_summary = summary;
        };
    write_m = Mutex.create ();
    epoch_pin = None }

(** Assemble a store from pre-built parts (database-file loading): the
    layout must already live on [disk].  [quarantine] lists preorder
    ranges whose labels were lost to corruption and must be denied. *)
let assemble ?(pool_capacity = 64) ?(quarantine = []) ?(run_index = true)
    ?(succinct = true) ?(path_summary = true) ~tree ~dol ~disk ~layout () =
  if Dol.n_nodes dol <> Tree.size tree then
    invalid_arg "Secure_store.assemble: tree / DOL size mismatch";
  List.iter
    (fun (lo, hi) ->
      if lo < 0 || hi < lo || hi >= Tree.size tree then
        invalid_arg "Secure_store.assemble: bad quarantine range")
    quarantine;
  let quarantine_a =
    Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) quarantine)
  in
  let pool = Buffer_pool.create ~capacity:pool_capacity disk in
  let succ, summary = structural_tier tree in
  { tree; succ; summary;
    use_succinct = succinct; use_summary = path_summary;
    dol; layout; pool; disk; pool_capacity;
    cursor = Nok_layout.cursor layout;
    (* quarantined ranges are subtracted at run-build time, so a run
       verdict is already fail-secure *)
    runs = Access_runs.create ~deny:quarantine dol;
    use_runs = run_index;
    run_cursor = Access_runs.cursor ();
    access_checks = 0;
    header_skips = 0; codebook_lookups = 0; run_answers = 0;
    quarantine = quarantine_a;
    published =
      Atomic.make
        {
          p_epoch = Epoch.current (Disk.epoch disk);
          p_dol = Dol.snapshot dol;
          p_layout = Nok_layout.freeze layout;
          p_succ = succ;
          p_summary = summary;
        };
    write_m = Mutex.create ();
    epoch_pin = None }

(** A read-only evaluation handle over the same store: shares the
    immutable parts (tree, DOL, layout, disk, quarantine) but owns a
    fresh buffer pool, scan cursor and I/O statistics.  Handles can be
    used concurrently from separate domains as long as no mutation
    ({!Update}, {!rebuild}) runs — the disk serializes physical I/O
    internally, and everything else a reader touches is private or
    read-only.  [pool_capacity] defaults to the parent's. *)
let reader ?pool_capacity t =
  let pool_capacity =
    match pool_capacity with Some c -> c | None -> t.pool_capacity
  in
  if !planted_stale then
    (* Planted MVCC bug: hand out the LIVE dol / layout and an un-pinned
       pool, so this "reader" observes in-flight updates — the
       linearizability fuzz must catch it. *)
    {
      t with
      pool = Buffer_pool.create ~capacity:pool_capacity t.disk;
      cursor = Nok_layout.cursor t.layout;
      run_cursor = Access_runs.cursor ();
      pool_capacity;
      access_checks = 0;
      header_skips = 0;
      codebook_lookups = 0;
      run_answers = 0;
      epoch_pin = None;
    }
  else begin
    (* Pin-then-validate: pin the current epoch, then check that the
       published snapshot is the one current at that epoch.  The writer
       publishes the new snapshot BEFORE advancing the epoch, so a
       mismatch only happens in that short window — retry. *)
    let ep = Disk.epoch t.disk in
    let rec pin () =
      let e = Epoch.pin ep in
      let s = Atomic.get t.published in
      if s.p_epoch = e then (e, s)
      else begin
        Epoch.unpin ep e;
        Domain.cpu_relax ();
        pin ()
      end
    in
    let e, s = pin () in
    {
      t with
      dol = s.p_dol;
      layout = s.p_layout;
      succ = s.p_succ;
      summary = s.p_summary;
      pool = Buffer_pool.create ~capacity:pool_capacity ~epoch:e t.disk;
      cursor = Nok_layout.cursor s.p_layout;
      run_cursor = Access_runs.cursor ();
      pool_capacity;
      access_checks = 0;
      header_skips = 0;
      codebook_lookups = 0;
      run_answers = 0;
      epoch_pin = Some e;
    }
  end

(** Release a reader's epoch pin (idempotent; no-op on non-pinned
    handles).  Retirement of page versions nobody can see anymore
    piggybacks on release, so long-running stores do not accumulate
    superseded images. *)
let release t =
  match t.epoch_pin with
  | None -> ()
  | Some e ->
      t.epoch_pin <- None;
      Epoch.unpin (Disk.epoch t.disk) e;
      ignore (Disk.retire t.disk)

(** Epoch this handle reads at: the pinned epoch for a reader, the
    current epoch for the live store. *)
let snapshot_epoch t =
  match t.epoch_pin with
  | Some e -> e
  | None -> Epoch.current (Disk.epoch t.disk)

let with_reader ?pool_capacity t f =
  let r = reader ?pool_capacity t in
  Fun.protect ~finally:(fun () -> release r) (fun () -> f r)

(* Publish the live state as the next epoch's snapshot.  Order matters:
   set the new [pub] (stamped current+1) first, THEN advance the clock —
   readers pin-then-validate, so they only ever pair epoch [e] with the
   snapshot published for [e]. *)
let publish t =
  let ep = Disk.epoch t.disk in
  Atomic.set t.published
    {
      p_epoch = Epoch.current ep + 1;
      p_dol = Dol.snapshot t.dol;
      p_layout = Nok_layout.freeze t.layout;
      p_succ = t.succ;
      p_summary = t.summary;
    };
  ignore (Epoch.advance ep);
  ignore (Disk.retire t.disk)

(** Run [f] as one update window: takes the writer lock, runs [f] on the
    live store, and on success publishes the result as a new epoch so
    subsequent readers see it (readers pinned before the window keep
    their snapshot).  On exception the epoch is NOT advanced — pages
    already written have their pre-images saved in the disk's version
    chains, so pinned readers are still consistent, and the next
    successful window supersedes the partial state.
    @raise Invalid_argument when called on a reader handle. *)
let with_write t f =
  (match t.epoch_pin with
  | Some _ -> invalid_arg "Secure_store.with_write: reader handle"
  | None -> ());
  Mutex.lock t.write_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.write_m)
    (fun () ->
      let r = f t in
      publish t;
      r)

let quarantined t = Array.to_list t.quarantine

let in_quarantine t v =
  (* Few ranges in practice; linear scan with early exit on sorted lo. *)
  let n = Array.length t.quarantine in
  let rec go i =
    if i >= n then false
    else
      let lo, hi = t.quarantine.(i) in
      if v < lo then false else v <= hi || go (i + 1)
  in
  n > 0 && go 0

let tree t = t.tree
let dol t = t.dol
let layout t = t.layout
let pool t = t.pool
let disk t = t.disk
let codebook t = Dol.codebook t.dol
let run_index t = t.runs
let run_index_enabled t = t.use_runs
let set_run_index t b = t.use_runs <- b
let succinct t = t.succ
let path_summary t = t.summary
let succinct_enabled t = t.use_succinct
let set_succinct t b = t.use_succinct <- b
let summary_enabled t = t.use_summary
let set_summary t b = t.use_summary <- b

(** Re-publish the structural-tier size gauges (they are zeroed by a
    registry [Metrics.reset], e.g. at the start of a measured window). *)
let refresh_gauges t =
  Metrics.gauge_set g_succ_bits (Succinct.bits_per_node t.succ);
  Metrics.gauge_set g_summary_nodes
    (float_of_int (Path_summary.node_count t.summary))

(** {1 Statistics} *)

type io_stats = {
  page_touches : int;
  pool_hits : int;
  pool_misses : int;
  disk_reads : int;
  disk_writes : int;
  access_checks : int;
  header_skips : int;
  codebook_lookups : int;
  run_answers : int;
}

let io_stats t =
  let ps = Buffer_pool.stats t.pool in
  let ds = Disk.stats t.disk in
  {
    page_touches = ps.Buffer_pool.touches;
    pool_hits = ps.Buffer_pool.hits;
    pool_misses = ps.Buffer_pool.misses;
    disk_reads = ds.Disk.reads;
    disk_writes = ds.Disk.writes;
    access_checks = t.access_checks;
    header_skips = t.header_skips;
    codebook_lookups = t.codebook_lookups;
    run_answers = t.run_answers;
  }

let reset_stats t =
  Buffer_pool.reset_stats t.pool;
  Disk.reset_stats t.disk;
  t.access_checks <- 0;
  t.header_skips <- 0;
  t.codebook_lookups <- 0;
  t.run_answers <- 0

let pp_io ppf s =
  Fmt.pf ppf
    "touches=%d hits=%d misses=%d disk_reads=%d disk_writes=%d checks=%d \
     skips=%d lookups=%d run_answers=%d"
    s.page_touches s.pool_hits s.pool_misses s.disk_reads s.disk_writes
    s.access_checks s.header_skips s.codebook_lookups s.run_answers

(** {1 Navigation (with I/O accounting)}

    The structural answers come from the succinct encoding; every visited
    node costs a touch of its page, which is how the paper's NoK evaluator
    behaves ("nodes connected by next-of-kin relationships are clustered …
    a NoK query processor can match a NoK pattern using just a few I/O
    operations", §3.1). *)

let touch t v = ignore (Nok_layout.touch t.layout t.pool v)

(** FIRST-CHILD of Algorithm 1: position of the first child, computed from
    the succinct structure without fetching the child's page — the caller
    decides whether to visit (fetch) it, which is what lets the header
    optimization of §3.3 skip provably-inaccessible pages.  Served from
    the balanced-parentheses tier when it is enabled (the default) and
    from the arena otherwise; both agree exactly.  Returns [Tree.nil] if
    none. *)
let first_child t v =
  if t.use_succinct then Succinct.first_child t.succ v
  else Tree.first_child t.tree v

(** FOLLOWING-SIBLING of Algorithm 1.  Returns [Tree.nil] if none. *)
let following_sibling t v =
  if t.use_succinct then Succinct.next_sibling t.succ v
  else Tree.next_sibling t.tree v

let parent t v =
  if t.use_succinct then Succinct.parent t.succ v else Tree.parent t.tree v

let subtree_end t v =
  if t.use_succinct then Succinct.subtree_end t.succ v
  else Tree.subtree_end t.tree v

let is_ancestor t a d =
  if t.use_succinct then Succinct.is_ancestor t.succ a d
  else Tree.is_ancestor t.tree a d

let tag t v = Tree.tag t.tree v

let text t v = Tree.text t.tree v

(** {1 Access checks (§3.3)} *)

(** ACCESS of Algorithm 1: the code in force at [v] is found on [v]'s own
    page, so this incurs no I/O beyond the page the evaluator already
    loaded to visit [v]. *)
let grants (t : t) code subject =
  t.codebook_lookups <- t.codebook_lookups + 1;
  Metrics.incr c_codebook_lookups;
  Codebook.grants (Dol.codebook t.dol) code subject

(* Answer one check from the run index through this handle's cursor. *)
let run_verdict (t : t) ~subject v =
  t.run_answers <- t.run_answers + 1;
  Metrics.incr c_run_answers;
  Access_runs.accessible t.runs t.run_cursor ~dol:t.dol ~subject v

let accessible (t : t) ~subject v =
  t.access_checks <- t.access_checks + 1;
  Metrics.incr c_access_checks;
  if !planted_bug && v = 3 then false
  else if in_quarantine t v then false
  else if t.use_runs then run_verdict t ~subject v
  else
    let code = Nok_layout.code_in_force_at t.layout t.cursor t.pool v in
    grants t code subject

(** Header-only test: true when the in-memory page table already proves
    every node on [v]'s page is inaccessible to [subject] ("if the
    starting transition node in the header indicates non-accessible …
    and the change bit … is not set … the query processor could avoid
    loading that page", §3.3). *)
let page_provably_inaccessible t ~subject v =
  let lp = Nok_layout.page_of t.layout v in
  let h = Nok_layout.header t.layout lp in
  (not h.Nok_layout.change)
  && not (grants t h.Nok_layout.first_code subject)

(** ACCESS with the header optimization: consult the in-memory header
    first and only fall back to loading the page when it cannot decide. *)
let accessible_with_skip (t : t) ~subject v =
  t.access_checks <- t.access_checks + 1;
  Metrics.incr c_access_checks;
  if !planted_bug && v = 3 then false
  else if in_quarantine t v then false
  else if t.use_runs then begin
    (* subsumes the header skip: a run verdict needs no page at all,
       whereas the header can only prove whole-page denial.  A granted
       node is still read by the evaluator, so its page is touched —
       the run index only elides I/O for denied nodes. *)
    let ok = run_verdict t ~subject v in
    if ok then touch t v;
    ok
  end
  else if page_provably_inaccessible t ~subject v then begin
    t.header_skips <- t.header_skips + 1;
    Metrics.incr c_header_skips;
    false
  end
  else
    let code = Nok_layout.code_in_force_at t.layout t.cursor t.pool v in
    grants t code subject

(** {1 Run-index range queries}

    Set-level accessibility, only available when the run index is on.
    Each helper degrades to a conservative identity when the index is
    off, so callers need no mode split; none of them touches a page. *)

(** Least accessible preorder [>= v]; [v] itself when the index is off
    (no skipping), [n_nodes] when no accessible node remains. *)
let next_accessible t ~subject v =
  if not t.use_runs then v
  else
    match
      Access_runs.next_accessible
        (Access_runs.runs_for t.runs ~dol:t.dol ~subject)
        v
    with
    | Some u -> u
    | None -> Dol.n_nodes t.dol

(** Drop inaccessible nodes from a sorted candidate list (galloping
    intersection with the accessible runs); identity when off. *)
let intersect_accessible t ~subject vs =
  if not t.use_runs then vs
  else Access_runs.intersect (Access_runs.runs_for t.runs ~dol:t.dol ~subject) vs

(** Is every node in [\[lo, hi\]] provably accessible (single-run
    containment)?  [false] means "unknown" when the index is off. *)
let span_provably_accessible t ~subject ~lo ~hi =
  lo > hi
  || (t.use_runs
     && Access_runs.span_inside
          (Access_runs.runs_for t.runs ~dol:t.dol ~subject)
          ~lo ~hi)

(** Accessible fraction for [subject] (cost-model input); 1.0 when the
    index is off, i.e. assume nothing can be pruned. *)
let accessible_fraction t ~subject =
  if not t.use_runs then 1.0
  else
    Access_runs.accessible_fraction
      (Access_runs.runs_for t.runs ~dol:t.dol ~subject)

(** {1 Structural reorganization}

    Accessibility updates are applied in place (see {!Update}); structural
    updates (subtree insert/delete/move) change every following preorder,
    which a dense-preorder layout cannot absorb locally — the paper's
    scheme renumbers too, since nodes are identified by document position.
    [rebuild] lays the new document + DOL out on a fresh disk, reusing the
    page-size/fill configuration of [t]. *)
let rebuild t tree dol =
  let page_size = Dolx_storage.Disk.page_size t.disk in
  create ~page_size ~pool_capacity:t.pool_capacity ~run_index:t.use_runs
    ~succinct:t.use_succinct ~path_summary:t.use_summary tree dol
