(** Secure views: materialize the sub-document a subject is allowed to
    see.

    Two pruning semantics mirror the query semantics of §4:

    - {!Prune_subtree} (Gabillon–Bruno, [11]): an inaccessible node hides
      its entire subtree, accessible descendants included.
    - {!Lift_children} (the view analogue of Cho et al.): an inaccessible
      node is elided but its accessible descendants are kept, re-attached
      to the nearest accessible ancestor (preserving document order).

    This implements the dissemination use-case from the paper's
    conclusion ("The DOL approach can be similarly used for dissemination
    of XML data to multiple users"), and the one-pass structure makes it
    suitable for streaming: the view is produced by a single document-
    order scan consulting the DOL. *)

module Tree = Dolx_xml.Tree

type semantics = Prune_subtree | Lift_children

exception Root_inaccessible

(** Build the view tree for [subject].  Raises {!Root_inaccessible} if
    the subject cannot see the document root (under either semantics
    there is then nothing to attach children to — [Lift_children] with an
    invisible root would need a synthetic root, which callers can add
    themselves). *)
let view ?(semantics = Prune_subtree) tree dol ~subject =
  if Dol.n_nodes dol <> Tree.size tree then
    invalid_arg "Secure_view.view: tree / DOL mismatch";
  if not (Dol.accessible dol ~subject Tree.root) then raise Root_inaccessible;
  (* the scan visits nodes in document order, so a resumable cursor
     answers each accessibility check in O(1) amortized *)
  let cur = Dol.cursor dol in
  (* share the tag table so view node tests and indexes keep the
     original document's tag ids *)
  let b = Tree.Builder.create ~table:(Tree.tag_table tree) () in
  let rec copy v =
    (* pre-condition: v is accessible *)
    ignore (Tree.Builder.open_element b (Tree.tag_name tree v));
    let txt = Tree.text tree v in
    if txt <> "" then Tree.Builder.add_text b txt;
    Tree.iter_children (fun c -> descend c) tree v;
    Tree.Builder.close_element b
  and descend v =
    if Dol.accessible_cur dol cur ~subject v then copy v
    else
      match semantics with
      | Prune_subtree -> ()
      | Lift_children -> Tree.iter_children (fun c -> descend c) tree v
  in
  copy Tree.root;
  Tree.Builder.finish b

(** Nodes of the original document visible in the view, in document
    order — useful for counting without materializing. *)
let visible_nodes ?(semantics = Prune_subtree) tree dol ~subject =
  let acc = ref [] in
  let cur = Dol.cursor dol in
  let rec go v ~path_ok =
    let ok = Dol.accessible_cur dol cur ~subject v in
    let visible =
      match semantics with Prune_subtree -> ok && path_ok | Lift_children -> ok
    in
    if visible then acc := v :: !acc;
    let child_path_ok =
      match semantics with Prune_subtree -> ok && path_ok | Lift_children -> true
    in
    if child_path_ok || semantics = Lift_children then
      Tree.iter_children (fun c -> go c ~path_ok:child_path_ok) tree v
  in
  go Tree.root ~path_ok:true;
  List.rev !acc

(** Number of visible nodes. *)
let visible_count ?semantics tree dol ~subject =
  List.length (visible_nodes ?semantics tree dol ~subject)
