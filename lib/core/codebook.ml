(** The DOL codebook: dictionary compression of access control lists.

    "Each distinct access control list that appears in the secured tree is
    recorded once in a codebook… With each transition node in the DOL we
    record a reference to the appropriate access control list in the code
    book" (paper §2.1).  The codebook is kept in memory (§3.2).

    Codes are dense ints.  The codebook owns its ACL bit-vectors; entries
    are never removed (subject deletion shrinks their width instead, and
    "any such redundancy can be corrected lazily", §3.4). *)

module Bitset = Dolx_util.Bitset

type code = int

module Tbl = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.hash
end)

type t = {
  mutable entries : Bitset.t array;
  mutable codes : code Tbl.t;
  mutable count : int;
  mutable width : int; (* number of subjects *)
  (* Per-subject decoded column: byte [c] is non-zero iff entry [c]
     grants the subject, so the ACCESS check of Algorithm 1 is a single
     byte load instead of a bit extraction behind two bounds checks.
     Built lazily per subject; a slice shorter than [count] simply means
     codes interned since it was built miss to the slow path.  [Atomic]
     gives publication safety when evaluator domains share the book;
     subject addition/removal (single-threaded maintenance phases)
     reallocate the array wholesale. *)
  mutable slices : Bytes.t Atomic.t array;
}

let make_slices width = Array.init width (fun _ -> Atomic.make Bytes.empty)

let create ~width =
  {
    entries = Array.make 8 (Bitset.create width);
    codes = Tbl.create 64;
    count = 0;
    width;
    slices = make_slices width;
  }

let width t = t.width

(** An independent copy sharing the (immutable) ACL bit-vectors.  This is
    the copy-on-write step for subject addition/removal under snapshot
    isolation: width changes rewrite every entry in place (and removal
    shifts subject indices), so a store mutates a copy and swaps it into
    the live DOL, leaving snapshot holders on the old book.  Plain
    interning needs no copy — it is append-only and never disturbs
    existing entries. *)
let copy t =
  {
    entries = Array.copy t.entries;
    codes = Tbl.copy t.codes;
    count = t.count;
    width = t.width;
    slices = make_slices t.width;
  }

(** Number of codebook entries (the paper's Fig. 5 metric). *)
let count t = t.count

(** Intern an ACL, returning its code. *)
let intern t bits =
  if Bitset.width bits <> t.width then invalid_arg "Codebook.intern: width mismatch";
  match Tbl.find_opt t.codes bits with
  | Some c -> c
  | None ->
      if t.count >= Array.length t.entries then begin
        let entries = Array.make (2 * Array.length t.entries) bits in
        Array.blit t.entries 0 entries 0 t.count;
        t.entries <- entries
      end;
      let c = t.count in
      t.entries.(c) <- bits;
      Tbl.replace t.codes bits c;
      t.count <- c + 1;
      c

(** Append an entry verbatim, preserving its index even when an equal
    entry already exists.  Persistence uses this to reconstruct a
    codebook that legally holds duplicates after subject removals
    (§3.4 keeps them until {!Update.compact}); the intern table still
    maps each ACL to its lowest code, so interning converges lazily. *)
let append_exact t bits =
  if Bitset.width bits <> t.width then
    invalid_arg "Codebook.append_exact: width mismatch";
  if t.count >= Array.length t.entries then begin
    let entries = Array.make (2 * Array.length t.entries) bits in
    Array.blit t.entries 0 entries 0 t.count;
    t.entries <- entries
  end;
  let c = t.count in
  t.entries.(c) <- bits;
  if not (Tbl.mem t.codes bits) then Tbl.replace t.codes bits c;
  t.count <- c + 1;
  c

let get t c =
  if c < 0 || c >= t.count then invalid_arg "Codebook.get: unknown code";
  t.entries.(c)

let rebuild_slice t subject =
  let b = Bytes.make t.count '\000' in
  for c = 0 to t.count - 1 do
    if Bitset.get t.entries.(c) subject then Bytes.unsafe_set b c '\001'
  done;
  Atomic.set t.slices.(subject) b

(** "The s-th bit in that code book entry indicates the accessibility of
    the node for subject s" (§3.3).  Served from the subject's decoded
    slice — one byte load on the hot path. *)
let grants t c subject =
  if subject >= 0 && subject < Array.length t.slices then begin
    let b = Atomic.get t.slices.(subject) in
    if c >= 0 && c < Bytes.length b && c < t.count then
      Bytes.unsafe_get b c <> '\000'
    else begin
      (* slow path: validate [c] exactly as before, then (re)decode the
         column so later lookups for this subject hit *)
      let r = Bitset.get (get t c) subject in
      rebuild_slice t subject;
      r
    end
  end
  else Bitset.get (get t c) subject

(** Code for the ACL equal to entry [c] with [subject]'s bit set to [b]. *)
let with_bit t c subject b =
  let bits = get t c in
  if Bitset.get bits subject = b then c else intern t (Bitset.with_bit bits subject b)

(** Add a new subject column.  If [like] is given, the new subject's
    rights are initialized to match that existing subject's (paper §3.4:
    "add a new subject … whose access rights initially match those of some
    existing subject … by simply adding an additional column to each entry
    in the in-memory codebook"). *)
let add_subject t ?like () =
  let new_width = t.width + 1 in
  let fresh = Tbl.create (2 * t.count) in
  for c = 0 to t.count - 1 do
    let old_bits = t.entries.(c) in
    let bits = Bitset.resize old_bits new_width in
    let bits =
      match like with
      | Some s when Bitset.get old_bits s -> Bitset.with_bit bits t.width true
      | _ -> bits
    in
    t.entries.(c) <- bits;
    (* Distinct old entries stay distinct after adding a column. *)
    Tbl.replace fresh bits c
  done;
  t.codes <- fresh;
  t.width <- new_width;
  t.slices <- make_slices new_width;
  t.width - 1

(** Drop a subject column.  This may leave duplicate entries ("unnecessary
    codes embedded in the structural data", §3.4) — they are kept, and the
    intern table maps each ACL to the lowest code carrying it, so future
    interning converges lazily. *)
let remove_subject t subject =
  if subject < 0 || subject >= t.width then invalid_arg "Codebook.remove_subject";
  let new_width = t.width - 1 in
  let fresh = Tbl.create (2 * t.count) in
  for c = t.count - 1 downto 0 do
    let bits = Bitset.remove_bit t.entries.(c) subject in
    t.entries.(c) <- bits;
    Tbl.replace fresh bits c
  done;
  t.codes <- fresh;
  t.width <- new_width;
  t.slices <- make_slices new_width

(** Number of duplicate (redundant) entries after subject removals. *)
let redundant_entries t =
  let seen = Tbl.create (2 * t.count) in
  let dup = ref 0 in
  for c = 0 to t.count - 1 do
    if Tbl.mem seen t.entries.(c) then incr dup
    else Tbl.replace seen t.entries.(c) ()
  done;
  !dup

(** Bytes to store the codebook: one bit per subject per entry, as in the
    paper's accounting ("at 1000 bytes per codebook entry — one bit per
    subject for all 8000 subjects", §5.1). *)
let storage_bytes t = t.count * ((t.width + 7) / 8)

(** Bytes needed for one embedded code reference given the current number
    of entries (the paper assumes "each DOL transition node requires a
    2 byte access control code (for the 4000 codebook entries)"). *)
let code_bytes t =
  let rec go bytes cap = if cap >= t.count then bytes else go (bytes + 1) (cap * 256) in
  go 1 256

let iter f t =
  for c = 0 to t.count - 1 do
    f c t.entries.(c)
  done
