(** Secure filtering of streaming XML (paper §7: "The physical layout
    makes it easy to embed into streaming XML data as control characters
    and many one-pass algorithms on streaming XML data can be made
    secure").

    The filter consumes SAX events in document order together with the
    DOL (whose transition codes are exactly the "control characters"
    interleaved in the stream), and re-emits only the events a subject
    may see.  Constant state beyond the element stack: the current
    position in the transition list and a suppression depth.

    Semantics match {!Secure_view}:
    - [Prune_subtree]: an inaccessible element suppresses its whole
      subtree (Gabillon–Bruno);
    - [Lift_children]: only the inaccessible element's own markup and
      text are dropped; accessible descendants pass through (their events
      splice into the enclosing accessible element). *)

module Parser = Dolx_xml.Parser

type semantics = Secure_view.semantics = Prune_subtree | Lift_children

type t = {
  dol : Dol.t;
  subject : int;
  semantics : semantics;
  emit : Parser.event -> unit;
  mutable next_pre : int;      (* preorder of the next Start event *)
  cur : Dol.cursor;            (* position in the transition list *)
  mutable accessible_now : bool;
  (* per open element: was it emitted (true) or filtered (false)? *)
  mutable emitted_stack : bool list;
  (* depth below a pruned element, Prune_subtree only *)
  mutable pruned_depth : int;
  mutable events_in : int;
  mutable events_out : int;
}

let create ?(semantics = Prune_subtree) dol ~subject ~emit =
  {
    dol;
    subject;
    semantics;
    emit;
    next_pre = 0;
    cur = Dol.cursor dol;
    accessible_now = false;
    emitted_stack = [];
    pruned_depth = 0;
    events_in = 0;
    events_out = 0;
  }

let events_in t = t.events_in

let events_out t = t.events_out

(* Advance the transition cursor to the element about to start; this is
   the stream consuming one embedded control character when present. *)
let advance_access t =
  t.accessible_now <-
    Dol.accessible_cur t.dol t.cur ~subject:t.subject t.next_pre

let out t ev =
  t.events_out <- t.events_out + 1;
  t.emit ev

(** Feed one event.  Events must arrive in document order and be well
    nested.  @raise Invalid_argument when more elements arrive than the
    DOL covers. *)
let push t (ev : Parser.event) =
  t.events_in <- t.events_in + 1;
  match ev with
  | Parser.Start (name, attrs) ->
      if t.next_pre >= Dol.n_nodes t.dol then
        invalid_arg "Stream_filter: more elements than the DOL covers";
      advance_access t;
      t.next_pre <- t.next_pre + 1;
      if t.pruned_depth > 0 then begin
        (* inside a pruned subtree *)
        t.pruned_depth <- t.pruned_depth + 1;
        t.emitted_stack <- false :: t.emitted_stack
      end
      else if t.accessible_now then begin
        t.emitted_stack <- true :: t.emitted_stack;
        out t (Parser.Start (name, attrs))
      end
      else begin
        t.emitted_stack <- false :: t.emitted_stack;
        match t.semantics with
        | Prune_subtree -> t.pruned_depth <- 1
        | Lift_children -> ()
      end
  | Parser.Text s -> (
      match t.emitted_stack with
      | true :: _ when t.pruned_depth = 0 -> out t (Parser.Text s)
      | _ -> ())
  | Parser.End name -> (
      match t.emitted_stack with
      | [] -> invalid_arg "Stream_filter: unbalanced End event"
      | emitted :: rest ->
          t.emitted_stack <- rest;
          if t.pruned_depth > 0 then t.pruned_depth <- t.pruned_depth - 1
          else if emitted then out t (Parser.End name))

(** Filter a whole document string; returns the filtered serialization.
    Convenience wrapper for tests and tools: [Stream_filter] itself is
    incremental. *)
let filter_string ?semantics dol ~subject input =
  let buf = Buffer.create (String.length input) in
  let depth = ref 0 in
  let emit (ev : Parser.event) =
    match ev with
    | Parser.Start (name, _) ->
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        Buffer.add_char buf '>';
        incr depth
    | Parser.Text s -> Buffer.add_string buf (Dolx_xml.Serializer.escape_text s)
    | Parser.End name ->
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>';
        decr depth
  in
  let t = create ?semantics dol ~subject ~emit in
  Parser.parse_events input (push t);
  Buffer.contents buf
