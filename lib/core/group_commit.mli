(** Group commit: batch concurrent durable updates into shared flushes.

    Keeps the current {!Db_file} image in memory; domains submit update
    closures, a leader drains up to [max_batch] of them, appends one
    journal record per update ({!Db_file.append_update}) and makes the
    whole batch durable with a {e single} modeled flush before waking
    the submitters.  Crash safety is the record format's: a torn batch
    loads as the state after some prefix of the committed records, and
    replay is idempotent.  The wait is bounded by [max_batch]: a
    submitter waits for at most one in-flight batch plus its own.

    Flushes are modeled (counted and priced at [flush_cost_us]), like
    every storage cost in this repository, so benchmarks report modeled
    durable throughput independent of host fsync behavior.  Metrics:
    [commit.batches], [commit.records], [commit.flushes]. *)

type t

type stats = {
  batches : int;  (** leader drains (one flush each) *)
  records : int;  (** updates committed through batches *)
  flushes : int;  (** modeled flushes (= batches + checkpoints) *)
  modeled_flush_us : int;  (** flushes × flush_cost_us *)
}

(** [create image] starts a commit group over a database image (clean
    or journaled).  [max_batch] (default 8) bounds records per flush;
    [flush_cost_us] (default 5000) prices one modeled flush.
    @raise Invalid_argument on an empty image or [max_batch < 1]. *)
val create : ?pool_capacity:int -> ?max_batch:int -> ?flush_cost_us:int ->
  Bytes.t -> t

val max_batch : t -> int

(** Submit one durable update and block until it is flushed.  The first
    waiter becomes the batch leader; later waiters piggyback on its
    flush.  An update that raises commits nothing; its exception is
    re-raised here while the rest of its batch commits normally. *)
val submit : t -> (Secure_store.t -> unit) -> unit

(** Deterministic batching for a single caller: apply the updates in
    order, one flush per [max_batch] chunk — exactly
    [ceil (n / max_batch)] flushes.  Must not race with other
    submitters on the same [t].  Re-raises the first failing update's
    exception after all chunks are flushed. *)
val submit_batch : t -> (Secure_store.t -> unit) list -> unit

(** The current durable image (journaled between checkpoints). *)
val image : t -> Bytes.t

(** Compact the image to a clean one (journal rolled forward,
    registries re-embedded), install and return it.  Costs one modeled
    flush; serializes with in-flight batches. *)
val checkpoint : t -> Bytes.t

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
