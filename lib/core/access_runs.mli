(** Per-subject access-run index.

    DOL accessibility is piecewise-constant over document order: between
    two transition nodes every node carries the same ACL, and for a
    fixed subject consecutive transitions frequently agree.  This module
    materializes, per subject, the maximal disjoint preorder intervals
    ("runs") on which the subject's accessibility is [true] — typically
    far fewer runs than transitions — turning hot-path checks into
    O(log r) interval lookups, document-order scans into O(1) cursor
    advances that skip whole denied runs, and candidate-set filtering
    into a single galloping intersection.

    Lifecycle (same shape as the per-subject codebook grant slices):
    runs are built lazily on first use, published through an [Atomic.t]
    snapshot so concurrent readers ({!Dolx_exec} pool domains) look them
    up lock-free, stamped with {!Dol.generation} and rebuilt when an
    {!Update} bumps the stamp, and bounded by an LRU of materialized
    subjects so wide subject populations cannot exhaust memory.

    Deny ranges (quarantined subtrees from a damaged database image) are
    subtracted at build time, so a run verdict is exactly the secured
    store's verdict, fail-secure included. *)

(** The index: one per store, shared by all reader handles. *)
type t

(** One subject's materialized runs at a fixed generation.  Immutable;
    safe to share across domains. *)
type runs

(** [create ?capacity ?deny dol] — [capacity] bounds the number of
    subjects materialized at once (default {!default_capacity});
    [deny] lists preorder intervals (inclusive) that must answer
    inaccessible regardless of the DOL, e.g. quarantined pages. *)
val create : ?capacity:int -> ?deny:(int * int) list -> Dol.t -> t

val default_capacity : int

val capacity : t -> int

(** Number of subjects currently materialized. *)
val materialized : t -> int

(** Total bytes held by materialized runs. *)
val total_bytes : t -> int

(** Iterate over materialized subjects (snapshot; no locking). *)
val iter_materialized : (int -> runs -> unit) -> t -> unit

(** Materialized runs for [subject] at the current generation of the
    live DOL: served from the snapshot when fresh (lock-free), built
    under a mutex when absent or stale.  Counted by metrics [runs.hits]
    / [runs.builds]; LRU evictions by [runs.evictions]. *)
val runs : t -> subject:int -> runs

(** {!runs} as seen by [dol] — the live DOL for the writer, a pinned
    snapshot for an epoch reader.  Entries are keyed by
    (subject, generation), so runs from distinct policy states coexist
    and a snapshot reader never mixes runs from two generations. *)
val runs_for : t -> dol:Dol.t -> subject:int -> runs

(** {1 Queries on materialized runs} *)

val run_count : runs -> int

(** Nodes covered by accessible runs. *)
val covered : runs -> int

(** [covered / n_nodes]. *)
val accessible_fraction : runs -> float

val bytes : runs -> int

(** O(log r) membership: is node [v] inside an accessible run? *)
val mem : runs -> int -> bool

(** Least accessible preorder [>= v], if any. *)
val next_accessible : runs -> int -> int option

(** Does one run contain the whole interval [\[lo, hi\]]?  Because runs
    are maximal and disjoint, this holds iff every node in the interval
    is accessible.  Empty intervals ([lo > hi]) are contained. *)
val span_inside : runs -> lo:int -> hi:int -> bool

(** Galloping intersection of a sorted candidate list with the
    accessible runs; preserves order and multiplicity. *)
val intersect : runs -> int list -> int list

(** {1 Cursors}

    A cursor caches the runs value and the last run position for one
    (subject, generation) pair, so a document-order traversal advances
    monotonically instead of binary-searching per node.  Cursors are
    cheap, unsynchronized, and private to one reader; create one per
    handle.  Any access pattern is correct — backward seeks restart. *)

type cursor

val cursor : unit -> cursor

(** [accessible t cu ~dol ~subject v] — membership through the cursor,
    revalidating subject and generation (of [dol], the caller's DOL —
    live or pinned snapshot) as needed. *)
val accessible : t -> cursor -> dol:Dol.t -> subject:int -> int -> bool

(** {1 Introspection} *)

val pp_runs : Format.formatter -> runs -> unit
