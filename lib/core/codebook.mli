(** The DOL codebook: dictionary compression of access-control lists
    (paper §2.1).  Each distinct ACL appearing at a transition is stored
    once; transitions carry small codes.  The codebook is kept in memory
    (§3.2).  Entries are never removed — subject deletion narrows them
    instead, and redundancy "can be corrected lazily" (§3.4). *)

module Bitset = Dolx_util.Bitset

type code = int

type t

val create : width:int -> t

(** Number of subjects (bits per entry). *)
val width : t -> int

(** An independent copy (sharing the immutable ACL bit-vectors) — the
    copy-on-write step for subject addition/removal under snapshot
    isolation: mutate the copy, swap it into the live DOL, and snapshot
    holders keep the old book.  Plain {!intern} needs no copy (it is
    append-only). *)
val copy : t -> t

(** Number of entries — the paper's Fig. 5 metric. *)
val count : t -> int

(** Intern an ACL, returning its code. *)
val intern : t -> Bitset.t -> code

(** Append an entry verbatim, preserving its index even when an equal
    entry already exists — a codebook legally holds duplicates after
    subject removals until {!Update.compact} runs, and persistence must
    reconstruct such a book exactly (embedded codes reference entry
    indices).  Future {!intern}s still return the lowest code per ACL.
    @raise Invalid_argument on a width mismatch. *)
val append_exact : t -> Bitset.t -> code

(** @raise Invalid_argument on an unknown code. *)
val get : t -> code -> Bitset.t

(** "The s-th bit in that code book entry indicates the accessibility of
    the node for subject s" (§3.3).  Served from a lazily decoded
    per-subject byte slice, so the per-node check of Algorithm 1 is a
    single byte load; the slice self-repairs after {!intern} and is
    dropped on subject addition/removal.  Safe for concurrent readers
    (the slice is published through an [Atomic]); mutators must be
    quiescent. *)
val grants : t -> code -> int -> bool

(** Code of the ACL equal to entry [c] with [subject]'s bit set to [b]. *)
val with_bit : t -> code -> int -> bool -> code

(** Add a subject column, optionally copying rights from [like] (§3.4).
    Returns the new subject's index. *)
val add_subject : t -> ?like:int -> unit -> int

(** Drop a subject column.  May leave duplicate entries; see
    {!redundant_entries} and [Update.compact]. *)
val remove_subject : t -> int -> unit

(** Number of duplicate entries left behind by subject removals. *)
val redundant_entries : t -> int

(** Bytes for the codebook: one bit per subject per entry (the paper's
    §5.1 accounting). *)
val storage_bytes : t -> int

(** Bytes of one embedded code reference given the current entry count
    (the paper's "2 byte access control code for 4000 entries"). *)
val code_bytes : t -> int

val iter : (code -> Bitset.t -> unit) -> t -> unit
