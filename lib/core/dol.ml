(** DOL — Document Ordered Labeling (the paper's core contribution, §2).

    "We define a transition node to be a secured tree node whose
    accessibility is different from its document-order predecessor…  The
    DOL corresponding to a given secured tree is simply a list, in
    document order, of the tree's transition nodes, together with their
    accessibilities."  For multiple subjects, each transition node carries
    a code into the {!Codebook} (§2.1).

    This module is the logical DOL: sorted parallel arrays of transition
    preorders and codes, plus the codebook.  The physical, page-embedded
    representation lives in {!Dol_store}. *)

module Tree = Dolx_xml.Tree
module Bitset = Dolx_util.Bitset
module Binsearch = Dolx_util.Binsearch
module Int_vec = Dolx_util.Int_vec
module Labeling = Dolx_policy.Labeling
module Acl = Dolx_policy.Acl

type t = {
  mutable codebook : Codebook.t;
  (* replaced wholesale (copy-on-write) by subject add/remove so
     snapshot holders keep the old book *)
  mutable trans_pre : int array;  (* sorted transition-node preorders; [0] = 0 *)
  mutable trans_code : int array; (* parallel codes *)
  mutable n_nodes : int;
  mutable generation : int;       (* bumped on every in-place mutation *)
}

let codebook t = t.codebook

(* A shallow copy pinning the current arrays and codebook: in-place
   updates splice fresh arrays into the live record (and subject ops
   swap in a fresh codebook), so the copy keeps answering from the
   captured state.  Writer-side only — reads the mutable fields. *)
let snapshot t =
  {
    codebook = t.codebook;
    trans_pre = t.trans_pre;
    trans_code = t.trans_code;
    n_nodes = t.n_nodes;
    generation = t.generation;
  }

let generation t = t.generation

let bump_generation t = t.generation <- t.generation + 1

let n_nodes t = t.n_nodes

(** The number of transition nodes (the paper's Fig. 6 metric). *)
let transition_count t = Array.length t.trans_pre

let transitions t = Array.to_list (Array.map2 (fun p c -> (p, c)) t.trans_pre t.trans_code)

(** {1 Construction} *)

(** Build from a materialized labeling in one document-order pass. *)
let of_labeling labeling =
  let store = Labeling.store labeling in
  let n = Labeling.size labeling in
  if n = 0 then invalid_arg "Dol.of_labeling: empty labeling";
  let codebook = Codebook.create ~width:(Acl.width store) in
  let pres = Int_vec.create () in
  let codes = Int_vec.create () in
  let prev = ref (-1) in
  for v = 0 to n - 1 do
    let acl_id = Labeling.acl_id labeling v in
    (* The root is always a transition node (§2). *)
    if acl_id <> !prev then begin
      Int_vec.push pres v;
      Int_vec.push codes (Codebook.intern codebook (Acl.get store acl_id));
      prev := acl_id
    end
  done;
  {
    codebook;
    trans_pre = Int_vec.to_array pres;
    trans_code = Int_vec.to_array codes;
    n_nodes = n;
    generation = 0;
  }

(** Build a single-subject DOL from a boolean accessibility array. *)
let of_bool_array acc = of_labeling (Labeling.of_bool_array acc)

(** Streaming one-pass construction (paper §2: "a document order encoding
    of access rights can be constructed on-the-fly using a single pass
    through a labeled XML document"; §7: embeddable "into streaming XML
    data as control characters").  Feed ACLs in document order. *)
module Streaming = struct
  type builder = {
    codebook : Codebook.t;
    pres : Int_vec.t;
    codes : Int_vec.t;
    mutable last_code : int;
    mutable next_pre : int;
  }

  let create ~width =
    {
      codebook = Codebook.create ~width;
      pres = Int_vec.create ();
      codes = Int_vec.create ();
      last_code = -1;
      next_pre = 0;
    }

  (** Feed the ACL of the next node in document order.  Returns [Some code]
      if this node is a transition node (i.e. a control character would be
      emitted into the stream), [None] otherwise. *)
  let push b bits =
    let code = Codebook.intern b.codebook bits in
    let v = b.next_pre in
    b.next_pre <- v + 1;
    if code <> b.last_code then begin
      Int_vec.push b.pres v;
      Int_vec.push b.codes code;
      b.last_code <- code;
      Some code
    end
    else None

  let finish b =
    if b.next_pre = 0 then invalid_arg "Dol.Streaming.finish: no nodes";
    {
      codebook = b.codebook;
      trans_pre = Int_vec.to_array b.pres;
      trans_code = Int_vec.to_array b.codes;
      n_nodes = b.next_pre;
      generation = 0;
    }
end

(** {1 Lookup} *)

(** Index (into the transition arrays) of the transition governing node
    [v]: the nearest preceding transition node (§3.3). *)
let governing_index t v =
  if v < 0 || v >= t.n_nodes then invalid_arg "Dol: node out of range";
  match Binsearch.predecessor t.trans_pre v with
  | Some i -> i
  | None -> assert false (* trans_pre.(0) = 0 covers every node *)

(** The access-control code in force at node [v]. *)
let code_at t v = t.trans_code.(governing_index t v)

(** The full ACL in force at node [v]. *)
let acl_at t v = Codebook.get t.codebook (code_at t v)

(** [accessible t ~subject v] — the accessibility function (§2). *)
let accessible t ~subject v = Codebook.grants t.codebook (code_at t v) subject

(** Is [v] itself a transition node? *)
let is_transition t v =
  let i = governing_index t v in
  t.trans_pre.(i) = v

(** {1 Resumable lookup}

    A cursor remembers the governing-transition index of the previous
    lookup so a document-order scan pays O(1) amortized per node instead
    of a full binary search each time.  Backward seeks and long forward
    jumps fall back to binary search; a generation mismatch (the DOL was
    mutated since the last lookup) forces a restart, so a stale cursor
    can never return pre-update codes. *)

type cursor = { mutable c_idx : int; mutable c_gen : int }

let cursor t = { c_idx = 0; c_gen = t.generation }

(* Linear steps to try before giving up and binary-searching; keeps a
   sequential scan at O(1) per node without making random jumps O(k). *)
let cursor_linear_budget = 8

let governing_index_cur t cu v =
  if v < 0 || v >= t.n_nodes then invalid_arg "Dol: node out of range";
  let pres = t.trans_pre in
  let k = Array.length pres in
  if cu.c_gen <> t.generation || cu.c_idx >= k || pres.(cu.c_idx) > v then begin
    (* stale or backward: restart from a fresh binary search *)
    cu.c_gen <- t.generation;
    cu.c_idx <- governing_index t v
  end
  else begin
    let i = ref cu.c_idx in
    let steps = ref 0 in
    while !i + 1 < k && pres.(!i + 1) <= v && !steps < cursor_linear_budget do
      incr i;
      incr steps
    done;
    if !i + 1 < k && pres.(!i + 1) <= v then i := governing_index t v;
    cu.c_idx <- !i
  end;
  cu.c_idx

let code_at_cur t cu v = t.trans_code.(governing_index_cur t cu v)

let accessible_cur t cu ~subject v =
  Codebook.grants t.codebook (code_at_cur t cu v) subject

(** {1 Space accounting (paper §5.1)} *)

(** Bytes for the in-memory codebook. *)
let codebook_bytes t = Codebook.storage_bytes t.codebook

(** Bytes for the embedded transition codes ("DOL … stores only an access
    control code per transition node"). *)
let embedded_bytes t = transition_count t * Codebook.code_bytes t.codebook

let storage_bytes t = codebook_bytes t + embedded_bytes t

(** Density: transition nodes per document node. *)
let transition_density t =
  float_of_int (transition_count t) /. float_of_int t.n_nodes

(** {1 Verification helpers} *)

(** Check that [t] agrees with [labeling] on every node and subject —
    the defining property of a DOL.  Raises [Failure] on mismatch. *)
let verify_against t labeling =
  if Labeling.size labeling <> t.n_nodes then failwith "Dol.verify: size mismatch";
  let cu = cursor t in
  for v = 0 to t.n_nodes - 1 do
    let want = Labeling.acl labeling v in
    let got = Codebook.get t.codebook (code_at_cur t cu v) in
    if not (Bitset.equal want got) then
      failwith (Printf.sprintf "Dol.verify: ACL mismatch at node %d" v)
  done

(** Internal invariants: strictly increasing preorders starting at 0, no
    two consecutive transitions with the same code, all codes valid. *)
let validate t =
  let k = Array.length t.trans_pre in
  if k = 0 then failwith "Dol.validate: no transitions";
  if Array.length t.trans_code <> k then failwith "Dol.validate: parallel array mismatch";
  if t.trans_pre.(0) <> 0 then failwith "Dol.validate: first transition must be the root";
  for i = 0 to k - 1 do
    if t.trans_code.(i) < 0 || t.trans_code.(i) >= Codebook.count t.codebook then
      failwith "Dol.validate: dangling code";
    if i > 0 then begin
      if t.trans_pre.(i) <= t.trans_pre.(i - 1) then
        failwith "Dol.validate: preorders not strictly increasing";
      if t.trans_pre.(i) >= t.n_nodes then failwith "Dol.validate: transition out of range"
    end
  done

let pp ppf t =
  Fmt.pf ppf "DOL: %d nodes, %d transitions, %d codebook entries (%d B total)"
    t.n_nodes (transition_count t)
    (Codebook.count t.codebook)
    (storage_bytes t)
