(** Group commit: batch concurrent durable updates into shared flushes.

    Per-update durability ({!Db_file.apply_update}) pays one journal
    write {e and} one flush (the fsync equivalent of the simulated
    storage) per update.  This module keeps the current database image
    in memory and lets any number of domains submit update closures;
    a leader drains the queue, applies up to [max_batch] updates as
    journal records appended to the image ({!Db_file.append_update}),
    and makes the whole batch durable with a {e single} flush before
    waking the submitters.  Crash safety is inherited from the record
    format: a torn batch loads as the state after some prefix of the
    committed records, and replay is idempotent (records are pure redo).

    The wait is bounded: a leader never drains more than [max_batch]
    requests, so a submitter waits for at most one in-flight batch plus
    its own; with the queue saturated, each flush amortizes over
    [max_batch] updates.

    The flush itself is modeled, as all storage costs in this repository
    are: it is counted (metrics [commit.flushes], {!stats}) and priced
    at [flush_cost_us] microseconds, so benchmarks can report modeled
    durable throughput without depending on host fsync behavior. *)

module Metrics = Dolx_obs.Metrics

let c_batches = Metrics.counter "commit.batches"

let c_records = Metrics.counter "commit.records"

let c_flushes = Metrics.counter "commit.flushes"

type stats = {
  batches : int;  (** leader drains (one flush each) *)
  records : int;  (** updates committed through batches *)
  flushes : int;  (** modeled flushes (= batches + checkpoints) *)
  modeled_flush_us : int;  (** flushes × flush_cost_us *)
}

type t = {
  m : Mutex.t;
  cond : Condition.t;
  pool_capacity : int option;
  max_batch : int;
  flush_cost_us : int;
  mutable image : Bytes.t; (* current durable image (journaled or clean) *)
  mutable next_ticket : int;
  mutable durable : int; (* tickets < durable are flushed *)
  mutable leader : bool; (* a leader is applying a batch / checkpoint *)
  mutable queue : (int * (Secure_store.t -> unit)) list; (* oldest first *)
  failed : (int, exn) Hashtbl.t; (* accessed under [m] only *)
  mutable batches : int;
  mutable records : int;
  mutable flushes : int;
}

let create ?pool_capacity ?(max_batch = 8) ?(flush_cost_us = 5_000) image =
  if max_batch < 1 then invalid_arg "Group_commit.create: max_batch < 1";
  if Bytes.length image = 0 then
    invalid_arg "Group_commit.create: empty image";
  {
    m = Mutex.create ();
    cond = Condition.create ();
    pool_capacity;
    max_batch;
    flush_cost_us;
    image;
    next_ticket = 0;
    durable = 0;
    leader = false;
    queue = [];
    failed = Hashtbl.create 8;
    batches = 0;
    records = 0;
    flushes = 0;
  }

let max_batch t = t.max_batch

let split_at k xs =
  let rec go k acc = function
    | x :: rest when k > 0 -> go (k - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go k [] xs

(* Leader work, outside the lock: append each update of [batch] to
   [img] as a journal record.  An update that raises commits nothing
   (its record is never appended) and is reported to its submitter; the
   rest of the batch proceeds on the unchanged image. *)
let apply_batch t img batch =
  List.fold_left
    (fun (img, failures) (ticket, f) ->
      match Db_file.append_update ?pool_capacity:t.pool_capacity ~image:img f with
      | img' -> (img', failures)
      | exception e -> (img, (ticket, e) :: failures))
    (img, []) batch

(* Under [t.m]: record one finished batch and wake everyone. *)
let finish_batch t img n failures =
  t.image <- img;
  List.iter (fun (ticket, e) -> Hashtbl.replace t.failed ticket e) failures;
  t.batches <- t.batches + 1;
  t.records <- t.records + n;
  t.flushes <- t.flushes + 1;
  Metrics.incr c_batches;
  Metrics.add c_records n;
  Metrics.incr c_flushes;
  t.leader <- false;
  Condition.broadcast t.cond

(** Submit one durable update and wait until it (and every update
    batched with it) is flushed.  The first waiter becomes the batch
    leader; later waiters piggyback on its flush.  Re-raises [f]'s
    exception in the submitting domain; the image then excludes [f]'s
    record but keeps the rest of its batch. *)
let submit t f =
  Mutex.lock t.m;
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  t.queue <- t.queue @ [ (ticket, f) ];
  let rec wait () =
    if t.durable > ticket then begin
      let r = Hashtbl.find_opt t.failed ticket in
      Hashtbl.remove t.failed ticket;
      Mutex.unlock t.m;
      match r with Some e -> raise e | None -> ()
    end
    else if t.leader then begin
      Condition.wait t.cond t.m;
      wait ()
    end
    else begin
      t.leader <- true;
      let batch, rest = split_at t.max_batch t.queue in
      t.queue <- rest;
      let img = t.image in
      Mutex.unlock t.m;
      let img, failures =
        match apply_batch t img batch with
        | r -> r
        | exception e ->
            (* append_update only raises through [f]; anything else is a
               bug, but never leave the leader flag stuck. *)
            Mutex.lock t.m;
            t.leader <- false;
            Condition.broadcast t.cond;
            Mutex.unlock t.m;
            raise e
      in
      Mutex.lock t.m;
      (match List.rev batch with
      | (last, _) :: _ -> t.durable <- last + 1
      | [] -> ());
      finish_batch t img (List.length batch) failures;
      wait ()
    end
  in
  wait ()

(** Deterministic batching for a single caller: apply [fs] in order,
    flushing once per [max_batch] chunk — exactly
    [ceil (length fs / max_batch)] flushes.  Must not race with other
    submitters of the same [t] (it serializes on the leader flag, but
    interleaving would make the chunking nondeterministic).  Re-raises
    the first failing update's exception after its chunk is flushed. *)
let submit_batch t fs =
  let rec chunks acc = function
    | [] -> List.rev acc
    | fs ->
        let b, rest = split_at t.max_batch fs in
        chunks (b :: acc) rest
  in
  let first_failure = ref None in
  List.iter
    (fun batch ->
      Mutex.lock t.m;
      while t.leader do
        Condition.wait t.cond t.m
      done;
      t.leader <- true;
      let img = t.image in
      Mutex.unlock t.m;
      let tagged = List.map (fun f -> (-1, f)) batch in
      let img, failures = apply_batch t img tagged in
      Mutex.lock t.m;
      finish_batch t img (List.length batch) [];
      Mutex.unlock t.m;
      match (!first_failure, List.rev failures) with
      | None, (_, e) :: _ -> first_failure := Some e
      | _ -> ())
    (chunks [] fs);
  match !first_failure with Some e -> raise e | None -> ()

(** The current durable image (journaled between checkpoints). *)
let image t =
  Mutex.lock t.m;
  let img = t.image in
  Mutex.unlock t.m;
  img

(** Compact the journaled image to a clean one (journal rolled forward,
    registries re-embedded), install it and return it.  Costs one
    modeled flush.  Serializes with in-flight batches. *)
let checkpoint t =
  Mutex.lock t.m;
  while t.leader do
    Condition.wait t.cond t.m
  done;
  t.leader <- true;
  let img = t.image in
  Mutex.unlock t.m;
  let clean =
    match
      (match Db_file.of_bytes ?pool_capacity:t.pool_capacity img with
      | store, None -> Db_file.to_bytes store
      | store, Some (subjects, modes) -> Db_file.to_bytes ~subjects ~modes store)
    with
    | clean -> clean
    | exception e ->
        Mutex.lock t.m;
        t.leader <- false;
        Condition.broadcast t.cond;
        Mutex.unlock t.m;
        raise e
  in
  Mutex.lock t.m;
  t.image <- clean;
  t.flushes <- t.flushes + 1;
  Metrics.incr c_flushes;
  t.leader <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.m;
  clean

let stats t =
  Mutex.lock t.m;
  let s =
    {
      batches = t.batches;
      records = t.records;
      flushes = t.flushes;
      modeled_flush_us = t.flushes * t.flush_cost_us;
    }
  in
  Mutex.unlock t.m;
  s

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "batches=%d records=%d flushes=%d modeled_flush_us=%d" s.batches
    s.records s.flushes s.modeled_flush_us
