(** Per-subject access-run index — see the interface for the design.

    Concurrency: the table of materialized subjects is an immutable
    sorted array published through an [Atomic.t].  Lookups binary-search
    the snapshot with no lock; builds and evictions serialize on a
    mutex, re-check the snapshot, and publish a fresh array.  LRU
    recency is a per-entry [int Atomic.t] stamped from a global tick, so
    hits on the lock-free path still update recency without contending
    on the mutex. *)

module Binsearch = Dolx_util.Binsearch
module Int_vec = Dolx_util.Int_vec
module Metrics = Dolx_obs.Metrics

let c_builds = Metrics.counter "runs.builds"

let c_hits = Metrics.counter "runs.hits"

let c_evictions = Metrics.counter "runs.evictions"

let g_bytes = Metrics.gauge "runs.bytes"

let g_subjects = Metrics.gauge "runs.subjects"

type runs = {
  r_subject : int;
  r_generation : int;
  r_n : int;  (* n_nodes at build time *)
  starts : int array;  (* sorted run starts *)
  stops : int array;   (* parallel inclusive run ends; disjoint, maximal *)
  r_covered : int;     (* sum of run lengths *)
}

type entry = { e_runs : runs; e_used : int Atomic.t }

type t = {
  dol : Dol.t; (* the live DOL; snapshot readers pass their own *)
  deny : (int * int) array;  (* sorted disjoint inaccessible intervals *)
  cap : int;
  lock : Mutex.t;
  tick : int Atomic.t;
  (* Sorted by (subject, generation): entries for distinct generations
     coexist, so an epoch-pinned reader keeps hitting the runs built
     from its DOL snapshot while the live store fills in fresh ones;
     stale generations age out through the LRU. *)
  table : ((int * int) * entry) array Atomic.t;
}

let default_capacity = 64

let normalize_deny deny =
  let ranges =
    List.filter (fun (lo, hi) -> lo <= hi) deny
    |> List.sort compare
  in
  (* coalesce overlapping / adjacent intervals *)
  let rec merge = function
    | (a, b) :: (c, d) :: rest when c <= b + 1 -> merge ((a, max b d) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  Array.of_list (merge ranges)

let create ?(capacity = default_capacity) ?(deny = []) dol =
  if capacity < 1 then invalid_arg "Access_runs.create: capacity < 1";
  {
    dol;
    deny = normalize_deny deny;
    cap = capacity;
    lock = Mutex.create ();
    tick = Atomic.make 0;
    table = Atomic.make [||];
  }

let capacity t = t.cap

let materialized t = Array.length (Atomic.get t.table)

(** {1 Building} *)

(* Subtract the deny intervals from one candidate run [lo, hi], pushing
   the surviving pieces.  [di] is a monotone index into [deny]. *)
let push_minus_deny deny di starts stops lo hi =
  let nd = Array.length deny in
  let lo = ref lo in
  (* skip deny intervals entirely before the run *)
  while !di < nd && snd deny.(!di) < !lo do incr di done;
  let j = ref !di in
  while !lo <= hi do
    if !j >= nd || fst deny.(!j) > hi then begin
      Int_vec.push starts !lo;
      Int_vec.push stops hi;
      lo := hi + 1
    end
    else begin
      let dlo, dhi = deny.(!j) in
      if dlo > !lo then begin
        Int_vec.push starts !lo;
        Int_vec.push stops (dlo - 1)
      end;
      lo := dhi + 1;
      incr j
    end
  done

(* Materialize [subject]'s accessible runs from [dol] at generation
   [gen].  One pass over the transition list: consecutive transitions
   whose codes grant the subject coalesce into a single run. *)
let build t dol subject gen =
  let cb = Dol.codebook dol in
  let pres = dol.Dol.trans_pre and codes = dol.Dol.trans_code in
  let k = Array.length pres in
  let n = Dol.n_nodes dol in
  let starts = Int_vec.create () and stops = Int_vec.create () in
  let covered = ref 0 in
  let di = ref 0 in
  let i = ref 0 in
  while !i < k do
    if Codebook.grants cb codes.(!i) subject then begin
      let lo = pres.(!i) in
      incr i;
      while !i < k && Codebook.grants cb codes.(!i) subject do incr i done;
      let hi = if !i < k then pres.(!i) - 1 else n - 1 in
      let before = Int_vec.length starts in
      push_minus_deny t.deny di starts stops lo hi;
      for j = before to Int_vec.length starts - 1 do
        covered := !covered + Int_vec.get stops j - Int_vec.get starts j + 1
      done
    end
    else incr i
  done;
  Metrics.incr c_builds;
  {
    r_subject = subject;
    r_generation = gen;
    r_n = n;
    starts = Int_vec.to_array starts;
    stops = Int_vec.to_array stops;
    r_covered = !covered;
  }

(** {1 Table} *)

let lookup table key =
  let lo = ref 0 and hi = ref (Array.length table - 1) in
  let res = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k, e = table.(mid) in
    let c = compare (k : int * int) key in
    if c = 0 then begin
      res := Some e;
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let touch t e = Atomic.set e.e_used (Atomic.fetch_and_add t.tick 1)

let bytes r = (2 * 8 * Array.length r.starts) + 48

let total_bytes t =
  Array.fold_left (fun acc (_, e) -> acc + bytes e.e_runs) 0 (Atomic.get t.table)

let iter_materialized f t =
  Array.iter (fun ((s, _), e) -> f s e.e_runs) (Atomic.get t.table)

let publish_gauges t =
  Metrics.gauge_set g_bytes (float_of_int (total_bytes t));
  Metrics.gauge_set g_subjects (float_of_int (materialized t))

(* Under [t.lock]: insert/replace [key]'s entry, evicting the least
   recently used other entries when over capacity. *)
let install t key e =
  let old = Atomic.get t.table in
  let others = Array.of_list (List.filter (fun (k, _) -> k <> key) (Array.to_list old)) in
  let others =
    if Array.length others >= t.cap then begin
      (* evict the least recently used until one slot is free *)
      let victims = Array.length others - t.cap + 1 in
      let by_use = Array.copy others in
      Array.sort
        (fun (_, a) (_, b) -> compare (Atomic.get a.e_used) (Atomic.get b.e_used))
        by_use;
      let evicted = Array.sub by_use 0 victims in
      Metrics.add c_evictions victims;
      Array.of_list
        (List.filter
           (fun (k, _) -> not (Array.exists (fun (v, _) -> v = k) evicted))
           (Array.to_list others))
    end
    else others
  in
  let table = Array.append others [| (key, e) |] in
  Array.sort (fun (a, _) (b, _) -> compare a b) table;
  Atomic.set t.table table;
  publish_gauges t

(** Materialized runs for [subject] as seen by [dol] — the live DOL for
    the writer, a pinned snapshot for an epoch reader.  [dol] must share
    the store's subject population history (its generation identifies
    the policy state the runs were built from). *)
let runs_for t ~dol ~subject =
  if subject < 0 then invalid_arg "Access_runs.runs: negative subject";
  let gen = Dol.generation dol in
  let key = (subject, gen) in
  match lookup (Atomic.get t.table) key with
  | Some e ->
      Metrics.incr c_hits;
      touch t e;
      e.e_runs
  | None ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          (* re-check: another domain may have built while we waited *)
          match lookup (Atomic.get t.table) key with
          | Some e ->
              Metrics.incr c_hits;
              touch t e;
              e.e_runs
          | None ->
              let r = build t dol subject gen in
              let e = { e_runs = r; e_used = Atomic.make 0 } in
              touch t e;
              install t key e;
              r)

let runs t ~subject = runs_for t ~dol:t.dol ~subject

(** {1 Queries} *)

let run_count r = Array.length r.starts

let covered r = r.r_covered

let accessible_fraction r =
  if r.r_n = 0 then 0.0 else float_of_int r.r_covered /. float_of_int r.r_n

(* Least run index [i] with [stops.(i) >= v], or [length] when none.
   [hint] makes monotone scans O(1) amortized: try a few linear steps
   from the hint before binary-searching. *)
let seek r hint v =
  let stops = r.stops in
  let len = Array.length stops in
  let bin () = match Binsearch.successor stops v with Some j -> j | None -> len in
  if len = 0 then 0
  else if hint >= 0 && hint <= len
          && (hint = len || stops.(hint) >= v)
          && (hint = 0 || stops.(hint - 1) < v) then hint
  else if hint >= 0 && hint < len && stops.(hint) < v then begin
    let i = ref (hint + 1) in
    let steps = ref 0 in
    while !i < len && stops.(!i) < v && !steps < 8 do incr i; incr steps done;
    if !i < len && stops.(!i) < v then bin () else !i
  end
  else bin ()

let mem r v =
  let i = seek r (-1) v in
  i < Array.length r.starts && r.starts.(i) <= v

let next_accessible r v =
  let i = seek r (-1) v in
  if i >= Array.length r.starts then None else Some (max v r.starts.(i))

let span_inside r ~lo ~hi =
  lo > hi
  ||
  let i = seek r (-1) lo in
  i < Array.length r.starts && r.starts.(i) <= lo && r.stops.(i) >= hi

let intersect r xs =
  let len = Array.length r.starts in
  if len = 0 then []
  else begin
    let i = ref 0 in
    List.filter
      (fun v ->
        i := seek r !i v;
        !i < len && r.starts.(!i) <= v)
      xs
  end

(** {1 Cursors} *)

type cursor = { mutable cr : runs option; mutable ci : int }

let cursor () = { cr = None; ci = 0 }

let accessible t cu ~dol ~subject v =
  let gen = Dol.generation dol in
  let r =
    match cu.cr with
    | Some r when r.r_subject = subject && r.r_generation = gen -> r
    | _ ->
        let r = runs_for t ~dol ~subject in
        cu.cr <- Some r;
        cu.ci <- 0;
        r
  in
  let i = seek r cu.ci v in
  cu.ci <- i;
  i < Array.length r.starts && r.starts.(i) <= v

let pp_runs ppf r =
  Format.fprintf ppf "subject %d: %d runs covering %d/%d nodes (%d B, gen %d)"
    r.r_subject (run_count r) r.r_covered r.r_n (bytes r) r.r_generation
