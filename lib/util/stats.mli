(** Descriptive statistics for the benchmark harness and workload
    self-reports. *)

val mean : float list -> float

val mean_arr : float array -> float

(** Sample standard deviation. *)
val stddev : float list -> float

(** [percentile p l], [p] in [0,100], nearest-rank method.  Non-finite
    samples are dropped before ranking (NaN would poison the sort);
    returns NaN when no finite sample remains.  [percentile 0.] is the
    minimum, [percentile 100.] the maximum.
    @raise Invalid_argument when [p] is outside [0,100] or non-finite. *)
val percentile : float -> float list -> float

(** [percentile 50.]. *)
val median : float list -> float

(** Counts per distinct value, ascending. *)
val histogram : 'a list -> ('a * int) list

(** [ratio a b] — [a /. b], NaN when [b = 0]. *)
val ratio : float -> float -> float

val ratio_int : int -> int -> float
