(** CRC32C (Castagnoli) checksums, table-driven, no dependencies.

    Shared by every on-disk format in the repository: the simulated
    disk's per-page checksums, the [Dolx_core.Persist] DOL blobs and the
    [Dolx_core.Db_file] section/journal checksums all use this code so a
    single implementation is exercised (and fuzzed) everywhere.

    CRC32C rather than CRC32: the Castagnoli polynomial has better error
    detection for the short-burst corruptions a torn page write produces,
    and is what real storage stacks (iSCSI, ext4, Btrfs) checksum with. *)

(* Reflected Castagnoli polynomial. *)
let poly = 0x82F63B78

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** Checksum of [len] bytes of [buf] starting at [pos].
    @raise Invalid_argument on an out-of-range slice. *)
let digest_sub buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc.digest_sub";
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Bytes.get_uint8 buf i) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

(** Checksum of a whole byte buffer. *)
let digest buf = digest_sub buf ~pos:0 ~len:(Bytes.length buf)

(** Checksum of a string. *)
let digest_string s = digest (Bytes.unsafe_of_string s)
