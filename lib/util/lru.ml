(** LRU eviction policy over int keys (page ids).

    Doubly-linked intrusive list plus a hash table, O(1) touch/evict.
    The buffer pool uses this to decide which page frame to reuse. *)

type node = {
  key : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  table : (int, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable size : int;
}

let create ?(capacity_hint = 64) () =
  { table = Hashtbl.create capacity_hint; head = None; tail = None; size = 0 }

let size t = t.size

let mem t key = Hashtbl.mem t.table key

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

(** Mark [key] as most recently used, inserting it if absent. *)
let touch t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      unlink t n;
      push_front t n
  | None ->
      let n = { key; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      t.size <- t.size + 1

let node_key n = n.key

let detached () = { key = -1; prev = None; next = None }

let insert t key =
  let n = { key; prev = None; next = None } in
  Hashtbl.replace t.table key n;
  push_front t n;
  t.size <- t.size + 1;
  n

(** Touch through a node handle: no hash lookup, and when the node is
    already most-recently-used (the common case for a scan that stays on
    one page) no pointer surgery either. *)
let touch_node t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

(** Remove [key] entirely (e.g. page pinned or freed). *)
let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table key;
      t.size <- t.size - 1

(** Evict and return the least-recently-used key, if any. *)
let pop_lru t =
  match t.tail with
  | None -> None
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.size <- t.size - 1;
      Some n.key

(** Keys from most- to least-recently used (for tests). *)
let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
