(** LRU eviction policy over int keys (page ids): O(1) touch, remove and
    evict. *)

type t

val create : ?capacity_hint:int -> unit -> t

(** Number of tracked keys. *)
val size : t -> int

val mem : t -> int -> bool

(** Mark [key] most-recently-used, inserting it if absent. *)
val touch : t -> int -> unit

(** {1 Node handles}

    A caller that keeps the list node alongside its own per-key state
    (the buffer pool stores it in the frame) can touch without the hash
    lookup [touch] pays: {!touch_node} is a pointer comparison when the
    node is already most-recently-used, and an unlink/relink otherwise. *)

(** A handle to [key]'s position in the recency list. *)
type node

(** The key a node stands for. *)
val node_key : node -> int

(** A placeholder node not linked into any list — initialize a slot
    before the first {!insert}.  Touching it is an error. *)
val detached : unit -> node

(** Insert [key] as most-recently-used and return its node.  [key] must
    not be present (the buffer pool inserts only after a miss). *)
val insert : t -> int -> node

(** Mark the node most-recently-used: O(1), no hashing, and a no-op when
    it is already the head.  The node must be linked (returned by
    {!insert} and not since evicted). *)
val touch_node : t -> node -> unit

(** Forget [key] (no-op when absent). *)
val remove : t -> int -> unit

(** Evict and return the least-recently-used key, if any. *)
val pop_lru : t -> int option

(** Keys from most- to least-recently used (for tests). *)
val to_list : t -> int list
