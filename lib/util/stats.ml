(** Small descriptive-statistics helpers used by the benchmark harness and
    the workload generators' self-reports. *)

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let mean_arr a =
  if Array.length a = 0 then nan
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
      sqrt (ss /. float_of_int (List.length l - 1))

(** [percentile p l] with p in [0,100], nearest-rank method.

    Non-finite samples are dropped before ranking: a stray [nan] would
    otherwise poison the polymorphic sort silently (nan compares
    arbitrarily) and return a garbage rank.  These summaries feed the
    observability histograms, so they must be right.  An out-of-range or
    non-finite [p] is a caller bug and fails loudly. *)
let percentile p l =
  if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p out of [0,100]";
  match List.filter Float.is_finite l with
  | [] -> nan
  | finite ->
      let sorted = List.sort Float.compare finite in
      let n = List.length sorted in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      List.nth sorted (rank - 1)

let median l = percentile 50.0 l

(** Integer histogram: counts per value. *)
let histogram values =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let c = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (c + 1))
    values;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Pretty ratio with a guard against division by zero. *)
let ratio a b = if b = 0.0 then nan else a /. b

let ratio_int a b = ratio (float_of_int a) (float_of_int b)
