(** Multicore query execution over a shared secured store.

    One store, many domains: an {!t} owns a fixed pool of worker domains
    and one {!Secure_store.reader} handle per worker slot.  The handles
    share the immutable evaluation state (succinct tree, DOL, NoK page
    layout, codebook, tag index) and the simulated disk — which
    serializes physical page I/O internally — while each keeps a private
    buffer pool, scan cursor and statistics, so evaluation never takes a
    lock on the hot path.

    Two parallel shapes are offered:

    - {!run_batch}: inter-query parallelism — independent (pattern,
      semantics) jobs spread over the pool, results in submission order;
    - {!run}: intra-query parallelism — one query whose per-segment
      candidate roots are partitioned into contiguous document-order
      chunks evaluated concurrently, merged back into one sorted run
      before each structural join.

    Both are byte-identical to sequential {!Engine.run} on the same
    inputs: chunks are merged with the same sort-and-dedup the engine
    applies, and results are collected by index, never by completion
    order.  Reader handles are epoch-pinned snapshots taken when the
    executor is created, so concurrent {!Secure_store.with_write}
    windows (updates) may overlap evaluation — the executor keeps
    answering from the state it was created at.  {!shutdown} (or
    {!with_executor}) releases the pins so superseded page versions can
    be retired. *)

module Store = Dolx_core.Secure_store
module Disk = Dolx_storage.Disk
module Tag_index = Dolx_index.Tag_index
module Value_index = Dolx_index.Value_index
module Engine = Dolx_nok.Engine
module Pattern = Dolx_nok.Pattern
module Xpath = Dolx_nok.Xpath
module Decompose = Dolx_nok.Decompose
module Structural_join = Dolx_nok.Structural_join
module Metrics = Dolx_obs.Metrics

(* The registry hands out one cell per name, so these are the very same
   counters [Engine.run] bumps — the parallel driver keeps the process
   totals coherent no matter which path served a query. *)
let c_queries = Metrics.counter "engine.queries"

let c_segments = Metrics.counter "engine.segments"

let c_joins = Metrics.counter "engine.joins"

let c_candidates = Metrics.counter "engine.candidates_scanned"

let c_answers = Metrics.counter "engine.answers"

(** {1 Domain pool} *)

(* Tasks receive the worker slot executing them, which indexes the
   reader array; results are written into caller-owned arrays by task
   index, so completion order never shows. *)
type pool = {
  jobs : int;
  mutable domains : unit Domain.t array;
  m : Mutex.t;
  work : Condition.t; (* a task was queued, or [stop] was set *)
  idle : Condition.t; (* [pending] reached zero *)
  queue : (int -> unit) Queue.t;
  mutable pending : int; (* tasks queued or executing *)
  mutable stop : bool;
  mutable error : exn option; (* first task failure of the current batch *)
}

let rec worker_loop pool slot =
  Mutex.lock pool.m;
  let rec next () =
    if pool.stop then Mutex.unlock pool.m
    else
      match Queue.take_opt pool.queue with
      | None ->
          Condition.wait pool.work pool.m;
          next ()
      | Some task ->
          Mutex.unlock pool.m;
          let err = match task slot with () -> None | exception e -> Some e in
          Mutex.lock pool.m;
          (match err with
          | Some e when pool.error = None -> pool.error <- Some e
          | _ -> ());
          pool.pending <- pool.pending - 1;
          if pool.pending = 0 then Condition.broadcast pool.idle;
          next ()
  in
  next ()

and make_pool jobs =
  let pool =
    {
      jobs;
      domains = [||];
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stop = false;
      error = None;
    }
  in
  if jobs > 1 then
    pool.domains <-
      Array.init jobs (fun slot -> Domain.spawn (fun () -> worker_loop pool slot));
  pool

(* Run every task to completion (a barrier).  [jobs = 1] executes inline
   on the calling domain — the pool then has no domains at all, so the
   sequential path is exactly the sequential engine. *)
let run_tasks pool tasks =
  match tasks with
  | [] -> ()
  | tasks when pool.jobs = 1 -> List.iter (fun task -> task 0) tasks
  | tasks ->
      Mutex.lock pool.m;
      pool.error <- None;
      List.iter (fun task -> Queue.add task pool.queue) tasks;
      pool.pending <- pool.pending + List.length tasks;
      Condition.broadcast pool.work;
      while pool.pending > 0 do
        Condition.wait pool.idle pool.m
      done;
      let err = pool.error in
      pool.error <- None;
      Mutex.unlock pool.m;
      (match err with Some e -> raise e | None -> ())

let shutdown_pool pool =
  if Array.length pool.domains > 0 then begin
    Mutex.lock pool.m;
    pool.stop <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

(** {1 Executor} *)

type t = {
  store : Store.t; (* parent handle; shared immutable state lives here *)
  index : Tag_index.t;
  value_index : Value_index.t option;
  options : Engine.options;
  readers : Store.t array; (* one per worker slot *)
  pool : pool;
}

let create ?(options = Engine.default_options) ?value_index ?pool_capacity
    ?(jobs = 1) store index =
  if jobs < 1 then invalid_arg "Exec.create: jobs must be >= 1";
  {
    store;
    index;
    value_index;
    options;
    readers = Array.init jobs (fun _ -> Store.reader ?pool_capacity store);
    pool = make_pool jobs;
  }

let jobs t = t.pool.jobs

let readers t = Array.to_list t.readers

(* Idempotent: joins the worker domains, then releases every reader's
   epoch pin (itself idempotent) so page versions can be retired.  Safe
   to call from a [Fun.protect] finalizer after a mid-query exception —
   workers drain to the stop flag and join rather than leak. *)
let shutdown t =
  shutdown_pool t.pool;
  Mutex.lock t.pool.m;
  t.pool.stop <- true;
  Mutex.unlock t.pool.m;
  Array.iter Store.release t.readers

let is_shutdown t =
  Mutex.lock t.pool.m;
  let s = t.pool.stop in
  Mutex.unlock t.pool.m;
  s

(** Worker domains still alive (0 after {!shutdown} — teardown
    regression tests assert on this). *)
let live_domains t = Array.length t.pool.domains

let with_executor ?options ?value_index ?pool_capacity ?jobs store index f =
  let t = create ?options ?value_index ?pool_capacity ?jobs store index in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** {1 Inter-query parallelism} *)

let run_batch t queries =
  let items = Array.of_list queries in
  let n = Array.length items in
  let results = Array.make n None in
  let tasks =
    List.init n (fun i slot ->
        let pattern, semantics = items.(i) in
        results.(i) <-
          Some
            (Engine.run ~options:t.options ?value_index:t.value_index
               t.readers.(slot) t.index pattern semantics))
  in
  run_tasks t.pool tasks;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> failwith "Exec.run_batch: task did not produce a result")
       results)

let query_batch t queries =
  run_batch t
    (List.map (fun (xpath, semantics) -> (Xpath.parse xpath, semantics)) queries)

(** {1 Intra-query parallelism} *)

(* Chunks smaller than this are not worth a task handoff. *)
let min_chunk = 32

(* Evaluate one segment with its candidate roots split into contiguous
   document-order chunks.  Per-chunk outputs are sorted-deduplicated
   lists; their concatenation re-sorted and deduplicated is exactly what
   the sequential engine computes over the whole root list (expansion is
   per-root, so partitioning the roots partitions the raw expansion). *)
let par_eval_segment t mode seg roots =
  let n_roots = List.length roots in
  if t.pool.jobs = 1 || n_roots < 2 * min_chunk then begin
    let scanned = ref 0 in
    let out = Engine.eval_segment t.readers.(0) t.index mode seg roots scanned in
    (out, !scanned)
  end
  else begin
    let arr = Array.of_list roots in
    let chunk =
      max min_chunk ((n_roots + (4 * t.pool.jobs) - 1) / (4 * t.pool.jobs))
    in
    let n_chunks = (n_roots + chunk - 1) / chunk in
    let outs = Array.make n_chunks [] in
    let counts = Array.make n_chunks 0 in
    let tasks =
      List.init n_chunks (fun ci slot ->
          let lo = ci * chunk in
          let hi = min n_roots (lo + chunk) in
          let sub = Array.to_list (Array.sub arr lo (hi - lo)) in
          let scanned = ref 0 in
          outs.(ci) <-
            Engine.eval_segment t.readers.(slot) t.index mode seg sub scanned;
          counts.(ci) <- !scanned)
    in
    run_tasks t.pool tasks;
    let out = List.sort_uniq compare (List.concat (Array.to_list outs)) in
    (out, Array.fold_left ( + ) 0 counts)
  end

(* The same driver as [Engine.run], with the segment evaluation fanned
   out; joins consume the merged sorted runs sequentially on reader 0
   (the workers are idle between barriers, so the handle is unshared). *)
let run t pattern semantics =
  let plan = Decompose.plan pattern in
  let mode = Engine.match_mode t.options semantics in
  let main = t.readers.(0) in
  let summary = Engine.summary_analysis main pattern semantics in
  let scanned = ref 0 in
  let joins = ref 0 in
  let rec go segments roots =
    match segments with
    | [] -> roots
    | (seg : Decompose.segment) :: rest -> (
        let bindings, seg_scanned = par_eval_segment t mode seg roots in
        scanned := !scanned + seg_scanned;
        match rest with
        | [] -> bindings
        | next :: _ ->
            if bindings = [] then []
            else begin
              incr joins;
              let next_step =
                match next.Decompose.steps with
                | s :: _ -> s
                | [] -> invalid_arg "Exec: empty segment"
              in
              let dlist =
                Engine.join_candidates ?value_index:t.value_index ?summary main
                  t.index ~semantics ~bindings next_step.Decompose.pnode
              in
              let pairs =
                match semantics with
                | Engine.Secure_path subject ->
                    Structural_join.secure_stack_tree_desc main ~subject
                      ~alist:bindings ~dlist
                | Engine.Insecure | Engine.Secure _ ->
                    Structural_join.stack_tree_desc main ~alist:bindings ~dlist
              in
              go rest (Structural_join.descendants_of_pairs pairs)
            end)
  in
  let first_roots () =
    Engine.first_roots ?value_index:t.value_index ?summary main t.index
      semantics plan
  in
  (* the summary-path plan, when it applies, runs on the main reader —
     identical answers to the fanned-out navigational evaluation *)
  let answers =
    match summary with
    | Some sp -> (
        match
          Engine.try_summary_path ?value_index:t.value_index ~summary:sp main
            t.index mode semantics plan scanned
        with
        | Some answers -> answers
        | None -> go plan.Decompose.segments (first_roots ()))
    | None -> go plan.Decompose.segments (first_roots ())
  in
  let segments = Decompose.segment_count plan in
  Metrics.incr c_queries;
  Metrics.add c_segments segments;
  Metrics.add c_joins !joins;
  Metrics.add c_candidates !scanned;
  Metrics.add c_answers (List.length answers);
  {
    Engine.answers;
    segments;
    joins = !joins;
    candidates_scanned = !scanned;
  }

let query t xpath semantics = run t (Xpath.parse xpath) semantics

(** {1 Streaming evaluation}

    The pooled counterpart of {!Engine.stream}: staging (every segment
    but the last, and the joins between them) fans each segment out with
    {!par_eval_segment}; the last segment's roots are then pulled
    through an {!Engine.stream_of_source} cursor in groups big enough to
    keep the pool busy ([4 * min_chunk * jobs] roots per refill), so the
    stream parallelizes refills while the cursor's barrier logic keeps
    emission in exact document order.  Draining equals {!run}'s answers
    byte for byte; jobs = 1 degenerates to the sequential engine. *)

let stream ?chunk t pattern semantics =
  let plan = Decompose.plan pattern in
  let mode = Engine.match_mode t.options semantics in
  let main = t.readers.(0) in
  let summary = Engine.summary_analysis main pattern semantics in
  let scanned = ref 0 in
  let joins = ref 0 in
  let rec stage segments roots =
    match segments with
    | [] -> Engine.Filtered ([], fun _ -> true)
    | [ (seg : Decompose.segment) ] ->
        Engine.Tail
          {
            roots;
            group = 4 * min_chunk * t.pool.jobs;
            eval =
              (fun group ->
                let out, seg_scanned = par_eval_segment t mode seg group in
                scanned := !scanned + seg_scanned;
                out);
          }
    | (seg : Decompose.segment) :: (next :: _ as rest) ->
        let bindings, seg_scanned = par_eval_segment t mode seg roots in
        scanned := !scanned + seg_scanned;
        if bindings = [] then Engine.Filtered ([], fun _ -> true)
        else begin
          incr joins;
          let next_step =
            match next.Decompose.steps with
            | s :: _ -> s
            | [] -> invalid_arg "Exec: empty segment"
          in
          let dlist =
            Engine.join_candidates ?value_index:t.value_index ?summary main
              t.index ~semantics ~bindings next_step.Decompose.pnode
          in
          let pairs =
            match semantics with
            | Engine.Secure_path subject ->
                Structural_join.secure_stack_tree_desc main ~subject
                  ~alist:bindings ~dlist
            | Engine.Insecure | Engine.Secure _ ->
                Structural_join.stack_tree_desc main ~alist:bindings ~dlist
          in
          stage rest (Structural_join.descendants_of_pairs pairs)
        end
  in
  let staged () =
    stage plan.Decompose.segments
      (Engine.first_roots ?value_index:t.value_index ?summary main t.index
         semantics plan)
  in
  let source =
    match summary with
    | Some sp -> (
        match
          Engine.summary_path_filter ?value_index:t.value_index ~summary:sp
            main t.index mode semantics plan scanned
        with
        | Some (cands, keep) -> Engine.Filtered (cands, keep)
        | None -> staged ())
    | None -> staged ()
  in
  Engine.stream_of_source ?chunk
    ~segments:(Decompose.segment_count plan)
    ~scanned ~joins source

let stream_query ?chunk t xpath semantics =
  stream ?chunk t (Xpath.parse xpath) semantics

(** {1 Statistics} *)

(* Pool- and store-level fields are per-reader and sum exactly; the disk
   is shared, so its counters are taken once (each reader's io_stats
   reports the same shared numbers). *)
let aggregate_io t =
  let zero =
    {
      Store.page_touches = 0;
      pool_hits = 0;
      pool_misses = 0;
      disk_reads = 0;
      disk_writes = 0;
      access_checks = 0;
      header_skips = 0;
      codebook_lookups = 0;
      run_answers = 0;
    }
  in
  let tot =
    Array.fold_left
      (fun acc r ->
        let s = Store.io_stats r in
        {
          acc with
          Store.page_touches = acc.Store.page_touches + s.Store.page_touches;
          pool_hits = acc.Store.pool_hits + s.Store.pool_hits;
          pool_misses = acc.Store.pool_misses + s.Store.pool_misses;
          access_checks = acc.Store.access_checks + s.Store.access_checks;
          header_skips = acc.Store.header_skips + s.Store.header_skips;
          codebook_lookups =
            acc.Store.codebook_lookups + s.Store.codebook_lookups;
          run_answers = acc.Store.run_answers + s.Store.run_answers;
        })
      zero t.readers
  in
  let ds = Disk.stats (Store.disk t.store) in
  { tot with Store.disk_reads = ds.Disk.reads; disk_writes = ds.Disk.writes }

let reset_stats t =
  Array.iter Store.reset_stats t.readers;
  Disk.reset_stats (Store.disk t.store)
