(** Multicore query execution over a shared secured store.

    An executor owns a fixed pool of worker domains and one
    {!Dolx_core.Secure_store.reader} handle per worker slot: the handles
    share the immutable evaluation state (succinct tree, DOL, page
    layout, codebook, tag index) and the simulated disk (which
    serializes physical I/O internally) while keeping private buffer
    pools, scan cursors and statistics — no lock is taken on the
    evaluation hot path.

    Results are byte-identical to sequential {!Engine.run} on the same
    inputs: batch results are collected in submission order, and
    intra-query candidate chunks are merged with the engine's own
    sort-and-dedup.  The reader handles are epoch-pinned snapshots taken
    at {!create}, so store updates ({!Dolx_core.Secure_store.with_write}
    windows) may run concurrently with evaluation — the executor keeps
    answering from its creation-time state until shut down. *)

module Store = Dolx_core.Secure_store
module Engine = Dolx_nok.Engine

type t

(** [create ?options ?value_index ?pool_capacity ?jobs store index]
    builds an executor with [jobs] worker slots (default 1 —
    sequential, no domains spawned).  [pool_capacity] sizes each
    reader's private buffer pool (defaults to the parent store's).
    @raise Invalid_argument when [jobs < 1]. *)
val create :
  ?options:Engine.options -> ?value_index:Dolx_index.Value_index.t ->
  ?pool_capacity:int -> ?jobs:int -> Store.t -> Dolx_index.Tag_index.t -> t

(** Number of worker slots. *)
val jobs : t -> int

(** The per-slot reader handles (for statistics inspection). *)
val readers : t -> Store.t list

(** Join the worker domains and release every reader's epoch pin (so
    superseded page versions can be retired).  The executor must not be
    used afterwards.  Idempotent; with [jobs = 1] there are no domains
    but the pins are still released. *)
val shutdown : t -> unit

(** Has {!shutdown} run? *)
val is_shutdown : t -> bool

(** Worker domains still alive: [jobs] while running (0 for [jobs = 1],
    which spawns none), 0 after {!shutdown} — teardown regression tests
    assert on this. *)
val live_domains : t -> int

(** Bracket {!create} / {!shutdown} around [f]; the worker domains are
    joined even when [f] raises. *)
val with_executor :
  ?options:Engine.options -> ?value_index:Dolx_index.Value_index.t ->
  ?pool_capacity:int -> ?jobs:int -> Store.t -> Dolx_index.Tag_index.t ->
  (t -> 'a) -> 'a

(** {1 Inter-query parallelism} *)

(** Evaluate independent queries across the pool.  Results are in
    submission order, each equal to [Engine.run] on the same input.  A
    task exception is re-raised after the batch drains. *)
val run_batch : t -> (Dolx_nok.Pattern.t * Engine.semantics) list -> Engine.result list

(** {!run_batch} over XPath strings.
    @raise Dolx_nok.Xpath.Parse_error on a malformed query. *)
val query_batch : t -> (string * Engine.semantics) list -> Engine.result list

(** {1 Intra-query parallelism} *)

(** Evaluate one query with each segment's candidate roots partitioned
    into contiguous document-order chunks across the pool; chunk outputs
    are merged (sorted, deduplicated) before each structural join.
    Answers and statistics equal [Engine.run] on the same input. *)
val run : t -> Dolx_nok.Pattern.t -> Engine.semantics -> Engine.result

(** {!run} on an XPath string. *)
val query : t -> string -> Engine.semantics -> Engine.result

(** {1 Streaming evaluation} *)

(** Pooled counterpart of {!Engine.stream}: staging fans every non-final
    segment out across the pool; the last segment's candidate roots are
    then evaluated lazily in pool-sized groups as the cursor is pulled.
    Drained answers equal {!run}'s byte for byte ([jobs = 1] degenerates
    to the sequential engine).  The stream borrows the executor's
    readers — exhaust or {!Engine.stream_close} it before {!shutdown}. *)
val stream :
  ?chunk:int -> t -> Dolx_nok.Pattern.t -> Engine.semantics -> Engine.stream

(** {!stream} on an XPath string. *)
val stream_query : ?chunk:int -> t -> string -> Engine.semantics -> Engine.stream

(** {1 Statistics} *)

(** Sum of the per-reader pool/store statistics; the shared disk's
    counters are included once. *)
val aggregate_io : t -> Store.io_stats

(** Zero every reader's statistics and the shared disk's. *)
val reset_stats : t -> unit
