(** Shape statistics for documents — used to validate that the simulated
    LiveLink / Unix-FS trees match the shapes the paper reports (avg depth
    7.9, max depth 19 for LiveLink). *)

type t = {
  nodes : int;
  leaves : int;
  max_depth : int;
  avg_depth : float;
  max_fanout : int;
  avg_fanout : float;          (** over internal nodes *)
  distinct_tags : int;
  distinct_paths : int;
  distinct_leaf_paths : int;
}

let compute tree =
  let n = Tree.size tree in
  let depths = Array.make n 0 in
  let leaves = ref 0 in
  let max_depth = ref 0 in
  let sum_depth = ref 0 in
  let max_fanout = ref 0 in
  let sum_fanout = ref 0 in
  let internal = ref 0 in
  (* inline DataGuide walk: a path class per distinct (parent class, tag)
     pair — counts root-to-node tag paths without materializing them *)
  let cls = Array.make (max n 1) 0 in
  let path_tbl = Hashtbl.create 64 in
  let n_paths = ref 0 in
  let leafy = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    let p = Tree.parent tree v in
    depths.(v) <- (if p = Tree.nil then 0 else depths.(p) + 1);
    if depths.(v) > !max_depth then max_depth := depths.(v);
    sum_depth := !sum_depth + depths.(v);
    let pc = if p = Tree.nil then -1 else cls.(p) in
    let key = (pc, (Tree.tag tree v : Tag.id)) in
    (match Hashtbl.find_opt path_tbl key with
    | Some c -> cls.(v) <- c
    | None ->
        cls.(v) <- !n_paths;
        Hashtbl.add path_tbl key !n_paths;
        incr n_paths);
    if Tree.is_leaf tree v then begin
      incr leaves;
      Hashtbl.replace leafy cls.(v) ()
    end
    else begin
      incr internal;
      let fanout = List.length (Tree.children tree v) in
      sum_fanout := !sum_fanout + fanout;
      if fanout > !max_fanout then max_fanout := fanout
    end
  done;
  {
    nodes = n;
    leaves = !leaves;
    max_depth = !max_depth;
    avg_depth = float_of_int !sum_depth /. float_of_int n;
    max_fanout = !max_fanout;
    avg_fanout =
      (if !internal = 0 then 0.0
       else float_of_int !sum_fanout /. float_of_int !internal);
    distinct_tags = Tag.count (Tree.tag_table tree);
    distinct_paths = !n_paths;
    distinct_leaf_paths = Hashtbl.length leafy;
  }

let pp ppf s =
  Fmt.pf ppf
    "nodes=%d leaves=%d max_depth=%d avg_depth=%.2f max_fanout=%d \
     avg_fanout=%.2f tags=%d paths=%d leaf_paths=%d"
    s.nodes s.leaves s.max_depth s.avg_depth s.max_fanout s.avg_fanout
    s.distinct_tags s.distinct_paths s.distinct_leaf_paths
