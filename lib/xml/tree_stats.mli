(** Shape statistics for documents — used to validate that simulated
    datasets match the shapes the paper reports (e.g. LiveLink's average
    depth 7.9, maximum 19). *)

type t = {
  nodes : int;
  leaves : int;
  max_depth : int;
  avg_depth : float;
  max_fanout : int;
  avg_fanout : float;  (** over internal nodes *)
  distinct_tags : int;
  distinct_paths : int;       (** distinct root-to-node tag paths (DataGuide size) *)
  distinct_leaf_paths : int;  (** distinct root-to-leaf tag paths *)
}

val compute : Tree.t -> t

val pp : Format.formatter -> t -> unit
