(** DataGuide class analysis of a twig pattern.

    Matches the pattern against the path summary at the class level:
    every pattern node gets the set of summary classes whose data nodes
    could possibly bind it.  The analysis is conservative (a superset):
    tag tests and axes are enforced exactly (the DataGuide property
    guarantees every data child/descendant/sibling edge has a summary
    counterpart), value tests are ignored, and predicate branches are
    checked structurally only.  A data node whose class is outside its
    pattern node's set therefore provably cannot participate in any
    match, so filtering candidates by class — and discarding whole
    classes with empty or inaccessible extents — preserves answers
    exactly.

    Key invariant used by the engine's summary-path plan: for a chain of
    child-axis pattern steps, a data node's class being admissible for
    the last step implies each ancestor's class is admissible for the
    corresponding earlier step (summary parents are unique). *)

module Ps = Dolx_index.Path_summary

type t

(** Analyze [pattern] (trunk and predicate branches) against the
    summary.  [table] resolves tag names to ids. *)
val analyze : table:Dolx_xml.Tag.table -> Ps.t -> Pattern.t -> t

(** Admissible classes of a pattern node, as a per-class membership
    array (length {!Ps.node_count}).  The array is live analysis state —
    callers must not mutate it. *)
val classes : t -> Pattern.pnode -> bool array

(** No admissible class — the pattern node (and so the whole query)
    cannot match. *)
val empty_for : t -> Pattern.pnode -> bool

(** Keep only candidates whose class is admissible for the pattern
    node.  Preserves order. *)
val restrict : t -> Pattern.pnode -> int list -> int list

(** Sum of admissible extent cardinalities — the exact number of data
    nodes carrying an admissible tag path (classes of one tag partition
    its extent), used by the join cost model. *)
val cardinality : t -> Pattern.pnode -> int

(** Drop admissible classes whose extent span is dead according to
    [dead] (e.g. no accessible preorder inside [lo, hi]); applied to
    every pattern node's set.  Returns the number of classes dropped.
    Sound for secure semantics: matches need accessible witnesses. *)
val drop_dead_spans : t -> dead:(lo:int -> hi:int -> bool) -> int

(** Classes discarded by the structural analysis itself, summed over
    pattern nodes (vs the tag-only baseline).  Feeds the
    [engine.summary_pruned] counter together with {!drop_dead_spans}. *)
val pruned_classes : t -> int
