(** DataGuide class analysis of a twig pattern (see summary_prune.mli).

    Two passes over the pattern tree.  Top-down: a node's set is the
    axis-expansion of its parent's set intersected with its tag test
    (classes are reached top-down, so summary adjacency — parents always
    smaller than children — lets child/descendant closures run in one
    array sweep).  Bottom-up: a class survives only if every child
    pattern edge has a witness class in the child's set under the edge's
    axis.  Both passes relax value tests and sibling order, keeping the
    result a superset of the truth. *)

module Ps = Dolx_index.Path_summary
module Tag = Dolx_xml.Tag

type t = {
  ps : Ps.t;
  sets : (int, bool array) Hashtbl.t; (* pattern-node id -> classes *)
  mutable pruned : int;
}

let count_set s =
  let n = ref 0 in
  Array.iter (fun b -> if b then incr n) s;
  !n

let analyze ~table ps (pattern : Pattern.t) =
  let m = Ps.node_count ps in
  let sets = Hashtbl.create 16 in
  let t = { ps; sets; pruned = 0 } in
  let tag_set (test : Pattern.test) =
    let s = Array.make m false in
    (match test with
    | Pattern.Wildcard -> Array.fill s 0 m true
    | Pattern.Tag name -> (
        match Tag.find_opt table name with
        | Some id -> List.iter (fun c -> s.(c) <- true) (Ps.classes_with_tag ps id)
        | None -> ()));
    s
  in
  let children_of src =
    let s = Array.make m false in
    for c = 0 to m - 1 do
      if src.(c) then List.iter (fun d -> s.(d) <- true) (Ps.children ps c)
    done;
    s
  in
  (* classes with a PROPER ancestor in [src]; parents precede children,
     so one ascending sweep closes the relation *)
  let descendants_of src =
    let s = Array.make m false in
    for c = 1 to m - 1 do
      let p = Ps.parent ps c in
      if src.(p) || s.(p) then s.(c) <- true
    done;
    s
  in
  (* classes sharing a parent with some class in [src]; sibling order is
     not tracked by the summary, so this includes preceding siblings and
     the class itself — conservative *)
  let siblings_of src =
    let s = Array.make m false in
    for c = 0 to m - 1 do
      if src.(c) then begin
        let p = Ps.parent ps c in
        if p >= 0 then List.iter (fun d -> s.(d) <- true) (Ps.children ps p)
      end
    done;
    s
  in
  let rec down (p : Pattern.pnode) parent_set =
    let base = tag_set p.Pattern.test in
    let s =
      match parent_set with
      | None -> (
          (* the pattern root attaches to the document *)
          match p.Pattern.axis with
          | Pattern.Child ->
              (* binds the document root: class 0 only *)
              let s = Array.make m false in
              if m > 0 then s.(0) <- base.(0);
              s
          | Pattern.Descendant -> base
          | Pattern.Following_sibling -> base (* rejected by the engine *))
      | Some ps_set ->
          let reach =
            match p.Pattern.axis with
            | Pattern.Child -> children_of ps_set
            | Pattern.Descendant -> descendants_of ps_set
            | Pattern.Following_sibling -> siblings_of ps_set
          in
          for c = 0 to m - 1 do
            reach.(c) <- reach.(c) && base.(c)
          done;
          reach
    in
    Hashtbl.replace sets p.Pattern.id s;
    List.iter (fun q -> down q (Some s)) p.Pattern.children;
    (* bottom-up: keep only classes with a witness for every child edge *)
    List.iter
      (fun (q : Pattern.pnode) ->
        let qs = Hashtbl.find sets q.Pattern.id in
        let ok =
          match q.Pattern.axis with
          | Pattern.Child ->
              let ok = Array.make m false in
              for d = 1 to m - 1 do
                if qs.(d) then ok.(Ps.parent ps d) <- true
              done;
              ok
          | Pattern.Descendant ->
              (* classes with a proper descendant in qs: descending sweep *)
              let ok = Array.make m false in
              for d = m - 1 downto 1 do
                if qs.(d) || ok.(d) then ok.(Ps.parent ps d) <- true
              done;
              ok
          | Pattern.Following_sibling ->
              let ok = Array.make m false in
              for d = 0 to m - 1 do
                if qs.(d) then begin
                  let p = Ps.parent ps d in
                  if p >= 0 then
                    List.iter (fun e -> ok.(e) <- true) (Ps.children ps p)
                end
              done;
              ok
        in
        for c = 0 to m - 1 do
          if s.(c) && not ok.(c) then s.(c) <- false
        done)
      p.Pattern.children;
    t.pruned <- t.pruned + (count_set base - count_set s)
  in
  down pattern.Pattern.root None;
  t

let classes t (p : Pattern.pnode) =
  match Hashtbl.find_opt t.sets p.Pattern.id with
  | Some s -> s
  | None -> invalid_arg "Summary_prune.classes: node not in analyzed pattern"

let empty_for t p = not (Array.exists Fun.id (classes t p))

let restrict t p cands =
  let s = classes t p in
  List.filter (fun v -> s.(Ps.class_of t.ps v)) cands

let cardinality t p =
  let s = classes t p in
  let total = ref 0 in
  Array.iteri (fun c b -> if b then total := !total + Ps.extent t.ps c) s;
  !total

let drop_dead_spans t ~dead =
  let dropped = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      Array.iteri
        (fun c b ->
          if b then begin
            let lo, hi = Ps.span t.ps c in
            if dead ~lo ~hi then begin
              s.(c) <- false;
              incr dropped
            end
          end)
        s)
    t.sets;
  t.pruned <- t.pruned + !dropped;
  !dropped

let pruned_classes t = t.pruned
