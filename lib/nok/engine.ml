(** Secure twig-query evaluation: NoK subtree matching + structural joins
    (paper §4).

    The evaluator follows the paper's architecture: the pattern tree is
    decomposed ({!Decompose}) into NoK subtrees connected by ancestor–
    descendant edges; the first subtree's candidate roots come from the
    tag index ("by using B+ trees on the subtree root's value or tag
    names to start the matching", §4.1); each subtree is matched by
    navigational NPM with per-node ACCESS checks in the secure modes; and
    consecutive subtrees are combined with (ε-)Stack-Tree-Desc.

    Semantics: under [Secure] (Cho et al., the paper's default, §4) a
    binding survives iff every *bound* node is accessible; intermediate
    nodes on ancestor–descendant paths are unconstrained.  Under
    [Secure_path] (Gabillon–Bruno, §4.2) the connecting paths must be
    fully accessible too, enforced by ε-STD. *)

module Store = Dolx_core.Secure_store
module Tree = Dolx_xml.Tree
module Tag = Dolx_xml.Tag
module Tag_index = Dolx_index.Tag_index
module Path_summary = Dolx_index.Path_summary
module Metrics = Dolx_obs.Metrics
module Trace = Dolx_obs.Trace

let c_queries = Metrics.counter "engine.queries"

let c_segments = Metrics.counter "engine.segments"

let c_joins = Metrics.counter "engine.joins"

let c_candidates = Metrics.counter "engine.candidates_scanned"

let c_answers = Metrics.counter "engine.answers"

let c_plan_index = Metrics.counter "engine.plan_index_join"

let c_plan_subtree = Metrics.counter "engine.plan_subtree_scan"

let c_plan_summary = Metrics.counter "engine.plan_summary_prune"

let c_plan_path = Metrics.counter "engine.plan_summary_path"

let c_pruned = Metrics.counter "engine.candidates_pruned"

let c_summary_pruned = Metrics.counter "engine.summary_pruned"

type semantics =
  | Insecure              (** plain NoK evaluation, no access control *)
  | Secure of int         (** ε-NoK for the given subject (Cho et al.) *)
  | Secure_path of int    (** ε-NoK + ε-STD (Gabillon–Bruno, §4.2) *)

(** Use the in-memory page-header skip optimization of §3.3? *)
type options = { header_skip : bool }

let default_options = { header_skip = true }

let match_mode options = function
  | Insecure -> Nok_match.insecure
  | Secure s -> Nok_match.secure ~header_skip:options.header_skip s
  | Secure_path s ->
      Nok_match.secure ~header_skip:options.header_skip ~path_semantics:true s

type result = {
  answers : int list;     (* returning-node bindings, document order *)
  segments : int;         (* NoK subtrees evaluated *)
  joins : int;            (* structural joins performed *)
  candidates_scanned : int;
}

(* Candidate roots for a segment whose entry axis is Descendant: all
   nodes with the right tag — and, when the step also constrains the
   node's text and a value index is available, only the nodes with that
   exact value ("B+ trees on the subtree root's value or tag names to
   start the matching", §4.1). *)
let index_candidates ?value_index store index (p : Pattern.pnode) =
  match p.Pattern.test with
  | Pattern.Tag name -> (
      let table = Tree.tag_table (Store.tree store) in
      match Tag.find_opt table name with
      | Some id -> (
          match (p.Pattern.value, value_index) with
          | Some value, Some vi -> Dolx_index.Value_index.postings vi id ~value
          | _ -> Tag_index.postings index id)
      | None -> [])
  | Pattern.Wildcard -> List.init (Tree.size (Store.tree store)) Fun.id

let subject_of = function Insecure -> None | Secure s | Secure_path s -> Some s

(* Deliberate fault site for the differential fuzzer's self-test: when
   armed, run-index pruning silently drops node 2 from every candidate
   set, so secure answers lose it while the runs-off path keeps it.
   Armed only via DOLX_FUZZ_PLANT_BUG=prune; tests may toggle the ref. *)
let planted_bug = ref (Sys.getenv_opt "DOLX_FUZZ_PLANT_BUG" = Some "prune")

(* Drop candidates the subject provably cannot access (run-index
   intersection).  Safe under both secure semantics: a pruned candidate
   would fail its own [visit] when qualified or when re-seeding the next
   segment, so the surviving answers are unchanged. *)
let prune_candidates store semantics cands =
  match subject_of semantics with
  | None -> cands
  | Some s ->
      if not (Store.run_index_enabled store) then cands
      else begin
        let kept = Store.intersect_accessible store ~subject:s cands in
        Metrics.add c_pruned (List.length cands - List.length kept);
        if !planted_bug then List.filter (fun v -> v <> 2) kept else kept
      end

let ceil_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 n

(* Class analysis of this query against the path summary, when the
   handle has the summary tier enabled.  Under secure semantics the
   run index additionally kills classes whose whole extent span holds
   no accessible node — those classes can supply no witness, bound or
   existential.  Classes discarded either way feed the
   [engine.summary_pruned] counter. *)
let summary_analysis store pattern semantics =
  if not (Store.summary_enabled store) then None
  else begin
    let ps = Store.path_summary store in
    let table = Tree.tag_table (Store.tree store) in
    let sp = Summary_prune.analyze ~table ps pattern in
    (match subject_of semantics with
    | Some s when Store.run_index_enabled store ->
        let dead ~lo ~hi = Store.next_accessible store ~subject:s lo > hi in
        ignore (Summary_prune.drop_dead_spans sp ~dead)
    | _ -> ());
    Metrics.add c_summary_pruned (Summary_prune.pruned_classes sp);
    Some sp
  end

(* Candidates for the next segment's entry step at a structural join.
   Two access paths produce the same final answers — the join keeps only
   descendants of the current bindings, so probing each binding's
   subtree range ([postings_in]) instead of materializing the global
   postings list is purely a cost decision.  The model compares

     global:   card x (materialize + feed the join)
     subtree:  one B+ descent per binding
               + card x coverage x (materialize + feed the join)

   where coverage is the fraction of the document inside binding
   subtrees, and the join-feed terms are discounted by the subject's
   accessible fraction (denied candidates are run-pruned before the
   join sees them).  The run count enters both sides symmetrically as
   the intersection cost, so it never flips a decision between secure
   and insecure evaluation of the same query. *)
let join_candidates ?value_index ?summary store index ~semantics ~bindings
    (p : Pattern.pnode) =
  let class_filter cands =
    match summary with
    | None -> cands
    | Some sp ->
        Metrics.incr c_plan_summary;
        Summary_prune.restrict sp p cands
  in
  let prune cands = prune_candidates store semantics (class_filter cands) in
  match summary with
  | Some sp when Summary_prune.empty_for sp p ->
      (* every admissible class is gone — skip the postings entirely *)
      Metrics.incr c_plan_summary;
      []
  | _ -> (
  match p.Pattern.test with
  | Pattern.Wildcard -> prune (index_candidates ?value_index store index p)
  | Pattern.Tag _ when p.Pattern.value <> None && value_index <> None ->
      (* value postings are already maximally selective *)
      prune (index_candidates ?value_index store index p)
  | Pattern.Tag name -> (
      let tree = Store.tree store in
      match Tag.find_opt (Tree.tag_table tree) name with
      | None -> []
      | Some id ->
          let card =
            (* with the summary, the exact number of nodes on an
               admissible tag path (classes of one tag partition its
               extent) — tighter than the whole-tag count *)
            match summary with
            | Some sp -> float_of_int (Summary_prune.cardinality sp p)
            | None -> float_of_int (Tag_index.count index id)
          in
          let n = max 1 (Tree.size tree) in
          let spans =
            List.fold_left
              (fun acc b -> acc + (Tree.subtree_end tree b - b + 1))
              0 bindings
          in
          let coverage = Float.min 1.0 (float_of_int spans /. float_of_int n) in
          let af =
            match subject_of semantics with
            | Some s -> Store.accessible_fraction store ~subject:s
            | None -> 1.0
          in
          let probes =
            float_of_int (List.length bindings * ceil_log2 n)
          in
          let cost_global = card *. (1.0 +. af) in
          let cost_subtree = probes +. (card *. coverage *. (1.0 +. af)) in
          if cost_subtree < cost_global then begin
            Metrics.incr c_plan_subtree;
            prune
              (List.sort_uniq compare
                 (List.concat_map
                    (fun b ->
                      Tag_index.postings_in index id ~lo:b
                        ~hi:(Tree.subtree_end tree b))
                    bindings))
          end
          else begin
            Metrics.incr c_plan_index;
            prune (Tag_index.postings index id)
          end))

(* Candidate roots for a first segment entered on the descendant axis:
   index postings, class-filtered, run-pruned. *)
let seed_candidates ?value_index ?summary store index semantics
    (s : Decompose.step) =
  let p = s.Decompose.pnode in
  match summary with
  | Some sp when Summary_prune.empty_for sp p ->
      Metrics.incr c_plan_summary;
      []
  | _ ->
      let cands = index_candidates ?value_index store index p in
      let cands =
        match summary with
        | None -> cands
        | Some sp ->
            Metrics.incr c_plan_summary;
            Summary_prune.restrict sp p cands
      in
      prune_candidates store semantics cands

(* Evaluate one NoK segment from the given candidate roots (sorted).
   Returns the bindings of the segment's last trunk step, sorted and
   deduplicated. *)
let eval_segment store index mode (seg : Decompose.segment) roots scanned =
  match seg.Decompose.steps with
  | [] -> invalid_arg "Engine: empty segment"
  | first :: rest ->
      let qualify step v =
        Nok_match.qualifies store index mode step.Decompose.pnode
          ~preds:step.Decompose.preds v
      in
      let start =
        List.filter
          (fun r ->
            incr scanned;
            qualify first r)
          roots
      in
      let expand step bindings =
        let start b =
          (* a trunk step binds among b's children (Child) or among b's
             later siblings (Following_sibling) *)
          match step.Decompose.pnode.Pattern.axis with
          | Pattern.Child -> Store.first_child store b
          | Pattern.Following_sibling -> Store.following_sibling store b
          | Pattern.Descendant -> invalid_arg "Engine: descendant step inside a segment"
        in
        List.concat_map
          (fun b ->
            let rec scan u acc =
              if u = Tree.nil then List.rev acc
              else begin
                incr scanned;
                let acc = if qualify step u then u :: acc else acc in
                scan (Store.following_sibling store u) acc
              end
            in
            scan (start b) [])
          bindings
      in
      let out = List.fold_left (fun bs step -> expand step bs) start rest in
      List.sort_uniq compare out

(* Summary-path plan: when the trunk uses only child and descendant
   axes and ends in a tag test, the query is resolved bottom-up from
   the LAST step's class-filtered postings instead of top-down through
   segment evaluation and structural joins.  [match_up i v] decides
   whether [v] can carry step [i] with all earlier steps bound above it:
   child edges have a unique parent; descendant edges search proper
   ancestors, skipping any whose summary class is inadmissible for the
   earlier step (a pure array lookup, no I/O).  Verdicts are memoized
   per (step, node), so every distinct chain node is qualified — and its
   page visited — at most once, however many candidates share it.

   Answer-equivalent to the segment/join plan under all three
   semantics: the same [Nok_match.qualifies] checks (tag, value,
   predicate branches, access mode) decide membership at every
   position, existential ancestor choice matches the semi-join
   semantics, and descendant edges re-check connecting paths with
   [Nok_match.path_clear], which enforces exactly the ε-STD condition
   (and is a no-op outside path semantics).

   [summary_path_filter] returns the plan as data — the sorted
   candidate list and the qualification predicate — so the streaming
   evaluator can apply the filter lazily, one candidate at a time,
   instead of materializing the whole answer list.  [try_summary_path]
   is the eager composition the materializing paths use. *)
let summary_path_filter ?value_index ~summary store index mode semantics
    (plan : Decompose.plan) scanned =
  let steps =
    Array.of_list
      (List.concat_map
         (fun (s : Decompose.segment) -> s.Decompose.steps)
         plan.Decompose.segments)
  in
  let k = Array.length steps - 1 in
  let axis i = steps.(i).Decompose.pnode.Pattern.axis in
  let usable =
    k >= 0
    && (match steps.(k).Decompose.pnode.Pattern.test with
       | Pattern.Tag _ -> true
       | Pattern.Wildcard -> false)
    &&
    let rec no_fs i = i > k || (axis i <> Pattern.Following_sibling && no_fs (i + 1)) in
    no_fs 0
  in
  if not usable then None
  else begin
    Metrics.incr c_plan_path;
    let last = steps.(k).Decompose.pnode in
    if Summary_prune.empty_for summary last then Some ([], fun _ -> false)
    else begin
      let cands = index_candidates ?value_index store index last in
      let cands = Summary_prune.restrict summary last cands in
      let cands = prune_candidates store semantics cands in
      let ps = Store.path_summary store in
      let adm =
        Array.map
          (fun (st : Decompose.step) ->
            Summary_prune.classes summary st.Decompose.pnode)
          steps
      in
      let admissible i v = adm.(i).(Path_summary.class_of ps v) in
      let qualify i v =
        incr scanned;
        Nok_match.qualifies store index mode steps.(i).Decompose.pnode
          ~preds:steps.(i).Decompose.preds v
      in
      let n = Tree.size (Store.tree store) in
      let memo = Hashtbl.create 512 in
      let rec match_up i v =
        match Hashtbl.find_opt memo ((i * n) + v) with
        | Some b -> b
        | None ->
            let above =
              if i = 0 then
                match axis 0 with
                | Pattern.Child -> v = Tree.root
                | Pattern.Descendant | Pattern.Following_sibling -> true
              else
                match axis i with
                | Pattern.Child ->
                    let u = Store.parent store v in
                    u <> Tree.nil && match_up (i - 1) u
                | Pattern.Descendant ->
                    let rec search u =
                      u <> Tree.nil
                      && ((admissible (i - 1) u
                          && match_up (i - 1) u
                          && Nok_match.path_clear store mode ~ctx:u v)
                         || search (Store.parent store u))
                    in
                    search (Store.parent store v)
                | Pattern.Following_sibling -> false
            in
            let b = above && qualify i v in
            Hashtbl.add memo ((i * n) + v) b;
            b
      in
      Some (cands, fun v -> match_up k v)
    end
  end

let try_summary_path ?value_index ~summary store index mode semantics plan
    scanned =
  match
    summary_path_filter ?value_index ~summary store index mode semantics plan
      scanned
  with
  | None -> None
  | Some (cands, keep) -> Some (List.filter keep cands)

(* Candidate roots of the plan's first segment: the document root for a
   child entry, class-filtered + run-pruned index postings for a
   descendant entry. *)
let first_roots ?value_index ?summary store index semantics
    (plan : Decompose.plan) =
  Trace.with_span "engine.index_seed" @@ fun () ->
  match plan.Decompose.segments with
  | [] -> []
  | seg :: _ -> (
      match seg.Decompose.entry_axis with
      | Pattern.Child -> [ Tree.root ]
      | Pattern.Following_sibling ->
          invalid_arg "Engine: query cannot start with following-sibling::"
      | Pattern.Descendant -> (
          match seg.Decompose.steps with
          | s :: _ -> seed_candidates ?value_index ?summary store index semantics s
          | [] -> []))

(* The segment/join pipeline, stopped just short of the last segment:
   either the answers are already decided ([Done]), or evaluation has
   narrowed to the last segment over its sorted candidate roots
   ([Last]).  [run] finishes with one [eval_segment] call; [stream]
   finishes by pulling the same roots through the cursor — both see
   exactly the intermediate state this function computed, so their
   answers and statistics agree by construction. *)
type staged =
  | Done of int list
  | Last of Decompose.segment * int list

let stage ?value_index ?summary store index mode semantics ~scanned ~joins
    (plan : Decompose.plan) =
  let rec go segments roots =
    match segments with
    | [] -> Done []
    | [ (seg : Decompose.segment) ] -> Last (seg, roots)
    | (seg : Decompose.segment) :: (next :: _ as rest) ->
        let bindings =
          Trace.with_span "engine.segment" @@ fun () ->
          eval_segment store index mode seg roots scanned
        in
        if bindings = [] then Done []
        else begin
          incr joins;
          Trace.with_span "engine.join" @@ fun () ->
          let next_step =
            match next.Decompose.steps with
            | s :: _ -> s
            | [] -> invalid_arg "Engine: empty segment"
          in
          let dlist =
            join_candidates ?value_index ?summary store index ~semantics
              ~bindings next_step.Decompose.pnode
          in
          let pairs =
            match semantics with
            | Secure_path subject ->
                Structural_join.secure_stack_tree_desc store ~subject
                  ~alist:bindings ~dlist
            | Insecure | Secure _ ->
                Structural_join.stack_tree_desc store ~alist:bindings ~dlist
          in
          let surviving = Structural_join.descendants_of_pairs pairs in
          go rest surviving
        end
  in
  go plan.Decompose.segments
    (first_roots ?value_index ?summary store index semantics plan)

let run ?(options = default_options) ?value_index store index pattern semantics =
  Trace.with_span "engine.query" @@ fun () ->
  let plan = Decompose.plan pattern in
  let mode = match_mode options semantics in
  let summary = summary_analysis store pattern semantics in
  let scanned = ref 0 in
  let joins = ref 0 in
  let staged =
    match summary with
    | Some sp -> (
        match
          try_summary_path ?value_index ~summary:sp store index mode semantics
            plan scanned
        with
        | Some answers -> Done answers
        | None ->
            stage ?value_index ?summary store index mode semantics ~scanned
              ~joins plan)
    | None -> stage ?value_index store index mode semantics ~scanned ~joins plan
  in
  let answers =
    match staged with
    | Done answers -> answers
    | Last (seg, roots) ->
        Trace.with_span "engine.segment" @@ fun () ->
        eval_segment store index mode seg roots scanned
  in
  let segments = Decompose.segment_count plan in
  Metrics.incr c_queries;
  Metrics.add c_segments segments;
  Metrics.add c_joins !joins;
  Metrics.add c_candidates !scanned;
  Metrics.add c_answers (List.length answers);
  { answers; segments; joins = !joins; candidates_scanned = !scanned }

(** {1 Streaming evaluation}

    A pull cursor over the same pipeline: staging (every segment but the
    last, with its joins) runs once when the stream is built; answers
    are then produced chunk by chunk from the last segment's candidate
    roots, so per-query result memory is bounded by the chunk size plus
    the document-order reorder margin — never by the answer count.

    Ordering invariant: every answer produced from a candidate root [r]
    has preorder >= [r] (the root binds the segment's first trunk step,
    and child / following-sibling expansion only moves forward in
    preorder).  Roots are consumed in ascending order, so once every
    root below a barrier has been evaluated, buffered answers below that
    barrier are final and can be emitted — the emitted sequence is
    exactly [sort_uniq] of the per-root outputs, i.e. byte-identical to
    {!run}'s answer list. *)

(* Union of two sorted duplicate-free lists. *)
let merge_uniq xs ys =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], l | l, [] -> List.rev_append acc l
    | x :: xs', y :: ys' ->
        if x < y then go (x :: acc) xs' ys
        else if y < x then go (y :: acc) xs ys'
        else go (x :: acc) xs' ys'
  in
  go [] xs ys

let rec take_n n l =
  if n = 0 then ([], l)
  else match l with [] -> ([], []) | x :: rest ->
    let taken, rem = take_n (n - 1) rest in
    (x :: taken, rem)

type stream_source =
  | Filtered of int list * (int -> bool)
  | Tail of { roots : int list; group : int; eval : int list -> int list }

type stream = {
  st_chunk : int;
  st_segments : int;
  st_scanned : int ref;
  st_joins : int ref;
  mutable st_src : src;
  mutable st_emitted : int;
  mutable st_peak : int;  (* high-water mark of buffered answers *)
  mutable st_done : bool; (* terminal: counters flushed, no more chunks *)
}

and src =
  | S_filter of int list * (int -> bool)
  | S_tail of tail
  | S_end

and tail = {
  tl_eval : int list -> int list;
  tl_group : int;
  mutable tl_roots : int list;   (* remaining candidate roots, ascending *)
  mutable tl_pending : int list; (* sorted answers >= the next barrier *)
}

let stream_of_source ?(chunk = 256) ~segments ~scanned ~joins source =
  if chunk < 1 then invalid_arg "Engine.stream: chunk must be >= 1";
  let src =
    match source with
    | Filtered (cands, keep) -> S_filter (cands, keep)
    | Tail { roots; group; eval } ->
        if group < 1 then invalid_arg "Engine.stream: group must be >= 1";
        S_tail { tl_eval = eval; tl_group = group; tl_roots = roots; tl_pending = [] }
  in
  {
    st_chunk = chunk;
    st_segments = segments;
    st_scanned = scanned;
    st_joins = joins;
    st_src = src;
    st_emitted = 0;
    st_peak = 0;
    st_done = false;
  }

(* Flush the stream's totals into the process counters exactly once —
   at exhaustion, or at [stream_close] for a stream abandoned early (the
   partial tallies are what the query actually cost). *)
let stream_finalize st =
  if not st.st_done then begin
    st.st_done <- true;
    st.st_src <- S_end;
    Metrics.incr c_queries;
    Metrics.add c_segments st.st_segments;
    Metrics.add c_joins !(st.st_joins);
    Metrics.add c_candidates !(st.st_scanned);
    Metrics.add c_answers st.st_emitted
  end

let stream_next st =
  if st.st_done then []
  else begin
    let buf = ref [] in
    let n = ref 0 in
    let emit v =
      buf := v :: !buf;
      incr n;
      st.st_emitted <- st.st_emitted + 1
    in
    let rec fill () =
      if !n < st.st_chunk then
        match st.st_src with
        | S_end -> ()
        | S_filter ([], _) -> st.st_src <- S_end
        | S_filter (v :: rest, keep) ->
            st.st_src <- S_filter (rest, keep);
            if keep v then begin
              emit v;
              st.st_peak <- max st.st_peak !n
            end;
            fill ()
        | S_tail t -> (
            let barrier =
              match t.tl_roots with r :: _ -> r | [] -> max_int
            in
            match t.tl_pending with
            | a :: rest when a < barrier ->
                t.tl_pending <- rest;
                emit a;
                fill ()
            | _ -> (
                match t.tl_roots with
                | [] ->
                    (* pending is empty: everything below max_int was
                       emittable and the branch above drained it *)
                    st.st_src <- S_end
                | _ ->
                    let group, rest = take_n t.tl_group t.tl_roots in
                    t.tl_roots <- rest;
                    t.tl_pending <- merge_uniq t.tl_pending (t.tl_eval group);
                    st.st_peak <-
                      max st.st_peak (!n + List.length t.tl_pending);
                    fill ()))
    in
    fill ();
    if !n = 0 then begin
      stream_finalize st;
      []
    end
    else List.rev !buf
  end

let stream_close st = stream_finalize st

let stream_finished st = st.st_done

let stream_emitted st = st.st_emitted

let stream_peak_buffered st = st.st_peak

let stream_chunk_size st = st.st_chunk

let stream_scanned st = !(st.st_scanned)

let stream_joins st = !(st.st_joins)

let stream_segments st = st.st_segments

let stream ?(options = default_options) ?value_index ?chunk store index pattern
    semantics =
  let plan = Decompose.plan pattern in
  let mode = match_mode options semantics in
  let summary = summary_analysis store pattern semantics in
  let scanned = ref 0 in
  let joins = ref 0 in
  let staged_source () =
    match stage ?value_index ?summary store index mode semantics ~scanned ~joins plan with
    | Done answers -> Filtered (answers, fun _ -> true)
    | Last (seg, roots) ->
        (* group 1: pending never holds more than one root's overlap *)
        Tail
          {
            roots;
            group = 1;
            eval = (fun g -> eval_segment store index mode seg g scanned);
          }
  in
  let source =
    Trace.with_span "engine.stream_stage" @@ fun () ->
    match summary with
    | Some sp -> (
        match
          summary_path_filter ?value_index ~summary:sp store index mode
            semantics plan scanned
        with
        | Some (cands, keep) -> Filtered (cands, keep)
        | None -> staged_source ())
    | None -> staged_source ()
  in
  stream_of_source ?chunk ~segments:(Decompose.segment_count plan) ~scanned
    ~joins source

(* Drain a stream to a list — the reference the equality tests compare
   against [run]. *)
let stream_collect st =
  let rec go acc =
    match stream_next st with [] -> List.concat (List.rev acc) | c -> go (c :: acc)
  in
  go []

(** {1 Full binding tuples}

    [run] returns the returning-node bindings, which is what the paper's
    experiments count.  The paper's formal result model (§4) is richer:
    "the (unsecured) evaluation of a twig query Q returns all of the
    possible sets of bindings of query pattern nodes to data nodes".
    [bindings] materializes those tuples for the trunk (predicates stay
    existential, as in XPath): one entry per trunk step, in trunk order.
    Enumeration is a straightforward navigational product — use it for
    result construction and auditing; it does not use the structural-join
    plan, so it is not the I/O-optimal path.  [limit] caps the number of
    tuples materialized. *)
let bindings ?(options = default_options) ?(limit = max_int) store index pattern
    semantics =
  let mode = match_mode options semantics in
  let trunk = Pattern.trunk pattern in
  let trunk_ids = List.map (fun (p : Pattern.pnode) -> p.Pattern.id) trunk in
  let preds (p : Pattern.pnode) =
    List.filter
      (fun (c : Pattern.pnode) -> not (List.mem c.Pattern.id trunk_ids))
      p.Pattern.children
  in
  let qualify p v = Nok_match.qualifies store index mode p ~preds:(preds p) v in
  let tree = Store.tree store in
  let candidates (p : Pattern.pnode) ctx =
    match p.Pattern.axis with
    | Pattern.Child ->
        let rec scan u acc =
          if u = Tree.nil then List.rev acc
          else scan (Store.following_sibling store u) (u :: acc)
        in
        scan (Store.first_child store ctx) []
    | Pattern.Following_sibling ->
        let rec scan u acc =
          if u = Tree.nil then List.rev acc
          else scan (Store.following_sibling store u) (u :: acc)
        in
        scan (Store.following_sibling store ctx) []
    | Pattern.Descendant ->
        let last = Tree.subtree_end tree ctx in
        let all = List.init (last - ctx) (fun i -> ctx + 1 + i) in
        if mode.Nok_match.path_semantics then
          List.filter (fun u -> Nok_match.path_clear store mode ~ctx u) all
        else all
  in
  let out = ref [] in
  let count = ref 0 in
  let rec go steps ctx acc =
    if !count < limit then
      match steps with
      | [] ->
          incr count;
          out := List.rev acc :: !out
      | (p : Pattern.pnode) :: rest ->
          List.iter
            (fun u -> if !count < limit && qualify p u then go rest u (u :: acc))
            (candidates p ctx)
  in
  (match trunk with
  | [] -> ()
  | (first : Pattern.pnode) :: rest -> (
      match first.Pattern.axis with
      | Pattern.Child -> if qualify first Tree.root then go rest Tree.root [ Tree.root ]
      | Pattern.Following_sibling ->
          invalid_arg "Engine.bindings: query cannot start with following-sibling::"
      | Pattern.Descendant ->
          let roots = index_candidates store index first in
          List.iter
            (fun r -> if !count < limit && qualify first r then go rest r [ r ])
            roots));
  List.rev !out

(** Human-readable evaluation plan: the NoK segments, the joins between
    them, and the index candidate count seeding each segment.  The
    database-explain view of §3.1's decomposition. *)
let explain store index pattern =
  let plan = Decompose.plan pattern in
  let buf = Buffer.create 256 in
  List.iteri
    (fun i (seg : Decompose.segment) ->
      if i > 0 then Buffer.add_string buf "\n  |X| structural join (ancestor-descendant)\n"
      else Buffer.add_char buf '\n';
      Buffer.add_string buf (Fmt.str "  segment %d: %a" (i + 1) Decompose.pp_segment seg);
      (match seg.Decompose.steps with
      | first :: _ ->
          let n_candidates =
            match seg.Decompose.entry_axis with
            | Pattern.Child -> 1
            | Pattern.Following_sibling -> 0
            | Pattern.Descendant ->
                List.length (index_candidates store index first.Decompose.pnode)
          in
          Buffer.add_string buf (Printf.sprintf "  [%d index candidates]" n_candidates);
          let preds = List.concat_map (fun st -> st.Decompose.preds) seg.Decompose.steps in
          if preds <> [] then
            Buffer.add_string buf
              (Printf.sprintf "  [%d predicate branches]" (List.length preds))
      | [] -> ()))
    plan.Decompose.segments;
  Buffer.contents buf

(** Convenience: parse and run an XPath string. *)
let query ?options ?value_index store index xpath semantics =
  run ?options ?value_index store index (Xpath.parse xpath) semantics

(** Count of answers only. *)
let count ?options ?value_index store index xpath semantics =
  List.length (query ?options ?value_index store index xpath semantics).answers
