(** NoK pattern matching against the secured store, secure (ε-NoK,
    Algorithm 1) and unsecured.

    Evaluation modes:
    - [Insecure]: the plain NoK evaluator — no access checks.
    - [Secure subject]: ε-NoK — every node is checked as it is visited
      ("a node's accessibility is checked immediately after it is loaded
      (by FIRST-CHILD or FOLLOWING-SIBLING)", §4.1); inaccessible nodes
      are skipped together with their subtrees, which implements the
      binding-elimination semantics of Cho et al. for NoK (child-edge)
      patterns.
    - [Secure_skip subject]: ε-NoK plus the in-memory page-header
      optimization of §3.3 (avoid loading pages that are provably fully
      inaccessible). *)

module Store = Dolx_core.Secure_store
module Tree = Dolx_xml.Tree
module Tag = Dolx_xml.Tag
module Tag_index = Dolx_index.Tag_index

(** Evaluation mode.  [subject = None] disables access control;
    [header_skip] enables the §3.3 page-header optimization;
    [path_semantics] switches predicate evaluation to the Gabillon–Bruno
    semantics, where descendant steps additionally require every node on
    the connecting path to be accessible. *)
type mode = { subject : int option; header_skip : bool; path_semantics : bool }

let insecure = { subject = None; header_skip = false; path_semantics = false }

let secure ?(header_skip = true) ?(path_semantics = false) subject =
  { subject = Some subject; header_skip; path_semantics }

let subject_of mode = mode.subject

(** Visit node [v]: fetch its page (accounted I/O) and check access.
    Returns whether evaluation may bind or traverse [v]. *)
let visit store mode v =
  match mode.subject with
  | None ->
      Store.touch store v;
      true
  | Some s ->
      if mode.header_skip then Store.accessible_with_skip store ~subject:s v
      else begin
        Store.touch store v;
        Store.accessible store ~subject:s v
      end

(** Under path semantics: are all nodes strictly between [ctx] and its
    descendant [u] accessible?  (Both endpoints are checked by [visit]
    at their own binding sites.) *)
let path_clear store mode ~ctx u =
  (not mode.path_semantics)
  ||
  match mode.subject with
  | None -> true
  | Some s ->
      (* run containment: every node strictly between [ctx] and [u] has
         preorder in (ctx, u), so one accessible run covering that span
         proves the path clear without walking (or touching) it *)
      Store.span_provably_accessible store ~subject:s ~lo:(ctx + 1) ~hi:(u - 1)
      ||
      let rec up v = v = ctx || (visit store mode v && up (Store.parent store v)) in
      up (Store.parent store u)

let test_ok store (test : Pattern.test) v =
  match test with
  | Pattern.Wildcard -> true
  | Pattern.Tag name -> (
      let table = Tree.tag_table (Store.tree store) in
      match Tag.find_opt table name with
      | Some id -> Store.tag store v = id
      | None -> false)

let value_ok store (value : string option) v =
  match value with None -> true | Some s -> Store.text store v = s

(** Existential match of pattern node [p] (with its axis) in the context
    of data node [ctx]: does some data node under [ctx] satisfy [p] and,
    recursively, all of [p]'s children?  Used for predicates. *)
let rec exists_match store index mode (p : Pattern.pnode) ctx =
  match p.Pattern.axis with
  | (Pattern.Child | Pattern.Following_sibling) as axis ->
      let rec scan u =
        if u = Tree.nil then false
        else if
          visit store mode u && test_ok store p.Pattern.test u
          && value_ok store p.Pattern.value u
          && children_match store index mode p u
        then true
        else scan (Store.following_sibling store u)
      in
      let start =
        match axis with
        | Pattern.Child -> Store.first_child store ctx
        | Pattern.Following_sibling | Pattern.Descendant ->
            Store.following_sibling store ctx
      in
      scan start
  | Pattern.Descendant -> (
      let last = Store.subtree_end store ctx in
      match p.Pattern.test with
      | Pattern.Tag name -> (
          let table = Tree.tag_table (Store.tree store) in
          match Tag.find_opt table name with
          | None -> false
          | Some id ->
              let cands = Tag_index.postings_in index id ~lo:(ctx + 1) ~hi:last in
              (* inaccessible candidates would fail [visit] one by one;
                 drop them wholesale by run intersection *)
              let cands =
                match mode.subject with
                | Some s -> Store.intersect_accessible store ~subject:s cands
                | None -> cands
              in
              List.exists
                (fun u ->
                  visit store mode u
                  && value_ok store p.Pattern.value u
                  && path_clear store mode ~ctx u
                  && children_match store index mode p u)
                cands)
      | Pattern.Wildcard ->
          (* skip whole denied runs: the next candidate worth visiting
             is the next accessible preorder (identity when insecure or
             the run index is off) *)
          let forward u =
            match mode.subject with
            | Some s -> Store.next_accessible store ~subject:s u
            | None -> u
          in
          let rec scan u =
            let u = if u <= last then forward u else u in
            u <= last
            && ((visit store mode u
                && value_ok store p.Pattern.value u
                && path_clear store mode ~ctx u
                && children_match store index mode p u)
               || scan (u + 1))
          in
          scan (ctx + 1))

and children_match store index mode (p : Pattern.pnode) v =
  List.for_all (fun c -> exists_match store index mode c v) p.Pattern.children

(** Full qualification of a candidate binding [v] for pattern node [p]:
    test, value, access, and all predicate children.  [v]'s axis
    relationship to its context must already hold. *)
let qualifies store index mode (p : Pattern.pnode) ~preds v =
  visit store mode v && test_ok store p.Pattern.test v
  && value_ok store p.Pattern.value v
  && List.for_all (fun c -> exists_match store index mode c v) preds

(** {1 Algorithm 1, verbatim}

    A faithful port of the paper's ε-NoK "NPM(proot, sroot, R)" for
    child-only (single NoK subtree) patterns with unordered children.  It
    is used by the test-suite as an executable specification to
    cross-check the production evaluator on single-segment queries whose
    returning node has no further descendants to enumerate.

    Pre-condition (as in the paper): sroot is accessible and matches
    proot's test. *)
let rec npm store mode (proot : Pattern.pnode) sroot r =
  let saved = !r in
  (* lines 1-2: LIST-APPEND(R, sroot) when proot is the returning node *)
  if proot.Pattern.returning then r := sroot :: !r;
  (* line 3: S <- all children of proot *)
  let s = ref proot.Pattern.children in
  (* line 4: u <- FIRST-CHILD(sroot) *)
  let u = ref (Store.first_child store sroot) in
  (* lines 5-13: repeat … until u = NIL or S = {} *)
  while !u <> Tree.nil && !s <> [] do
    (* line 6: ACCESS(u) — checked as soon as the node is reached; the
       recursion is skipped entirely for inaccessible children *)
    if visit store mode !u then begin
      let rec try_patterns = function
        | [] -> ()
        | p :: rest ->
            (* line 7: s matches u "with both tag name and value
               constraints" *)
            if
              test_ok store p.Pattern.test !u
              && value_ok store p.Pattern.value !u
            then begin
              (* line 9: b <- NPM(s, u, R); lines 10-11: remove s on
                 success *)
              if npm store mode p !u r then
                s := List.filter (fun q -> q.Pattern.id <> p.Pattern.id) !s
              else try_patterns rest
            end
            else try_patterns rest
      in
      try_patterns !s
    end;
    (* line 12: u <- FOLLOWING-SIBLING(u) *)
    u := Store.following_sibling store !u
  done;
  (* lines 14-16: failure resets R *)
  if !s <> [] then begin
    r := saved;
    false
  end
  else true

(** Run Algorithm 1 from a candidate subtree root.  Returns the matches
    of the returning node (in discovery order), or [None] if the pattern
    does not match at [sroot].  The pre-condition check (sroot accessible
    and matching the pattern root) happens here. *)
let npm_run store mode pattern sroot =
  let root = pattern.Pattern.root in
  if
    visit store mode sroot
    && test_ok store root.Pattern.test sroot
    && value_ok store root.Pattern.value sroot
  then begin
    let r = ref [] in
    if npm store mode root sroot r then Some (List.rev !r) else None
  end
  else None
