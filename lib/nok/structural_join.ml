(** Structural joins on the ancestor–descendant relationship.

    [stack_tree_desc] is the classic Stack-Tree-Desc algorithm of
    Al-Khalifa et al. (ICDE 2002), which the paper builds on ("we
    developed a secure structural join algorithm based on the widely
    accepted Stack Tree Desc (STD) algorithm", §4.2).

    The secure variants implement ε-STD for the path semantics of §4.2
    (Gabillon–Bruno): a join pair (a, d) survives only if every node on
    the path from [a] down to [d] is accessible.

    - [secure_stack_tree_desc_naive] re-walks the ancestor chain for
      every candidate pair, with a per-join accessibility memo.  Its page
      access pattern is what the paper warns about: "the nodes between
      the ancestors and descendants are not necessarily clustered on the
      same physical pages as the NoK subtrees, so this checking may
      involve lots of page reads".
    - [secure_stack_tree_desc] is the optimized algorithm in the spirit
      of the paper's technical-report variant [18]: path accessibility is
      computed incrementally on the STD stack, so every tree edge on a
      candidate path is examined (and its page touched) at most once per
      join — "only load each page once if necessary, regardless of the
      accessibility distribution". *)

module Store = Dolx_core.Secure_store
module Tree = Dolx_xml.Tree

(** Stack-Tree-Desc over sorted (document-order) candidate lists.
    [alist] are potential ancestors, [dlist] potential descendants;
    returns all pairs (a, d) with [a] a proper ancestor of [d], grouped
    by descendant, innermost ancestor first within a group. *)
let stack_tree_desc store ~alist ~dlist =
  let a = Array.of_list alist and d = Array.of_list dlist in
  let na = Array.length a and nd = Array.length d in
  let stack = ref [] in
  let out = ref [] in
  let ai = ref 0 and di = ref 0 in
  let pop_finished v =
    let rec go = function
      | top :: rest when not (Store.is_ancestor store top v) -> go rest
      | s -> s
    in
    stack := go !stack
  in
  while !di < nd do
    if !ai < na && a.(!ai) < d.(!di) then begin
      pop_finished a.(!ai);
      stack := a.(!ai) :: !stack;
      incr ai
    end
    else begin
      let dv = d.(!di) in
      pop_finished dv;
      (* every remaining stack entry is an ancestor of dv *)
      List.iter (fun av -> if av <> dv then out := (av, dv) :: !out) !stack;
      incr di
    end
  done;
  List.rev !out

(* Shared accessibility memo: each node is fetched and checked at most
   once per join. *)
let make_checker store ~subject =
  let memo = Hashtbl.create 256 in
  fun v ->
    match Hashtbl.find_opt memo v with
    | Some b -> b
    | None ->
        Store.touch store v;
        let b = Store.accessible store ~subject v in
        Hashtbl.replace memo v b;
        b

(** Are all nodes strictly between ancestor [a] and descendant [d]
    accessible?  ([a] and [d] themselves were checked when their NoK
    fragments matched.) *)
let path_accessible store ~subject ~memo ~a ~d =
  (* run containment: when [a] is an ancestor of [d], every node on the
     connecting path has preorder in (a, d); a single accessible run
     covering [a+1, d-1] proves the path clear with no page access.
     (The guard matters: for non-ancestor pairs the walk climbs past [a]
     through nodes outside that span.) *)
  if
    Store.is_ancestor store a d
    && Store.span_provably_accessible store ~subject ~lo:(a + 1) ~hi:(d - 1)
  then true
  else
    let check =
      match memo with
      | Some f -> f
      | None -> make_checker store ~subject
    in
    let rec up v = v = a || v = Tree.nil || (check v && up (Store.parent store v)) in
    up (Store.parent store d)

(** ε-STD, unmemoized: the straw-man the paper warns about — every pair
    re-walks its connecting path against the store, so a node shared by
    many pairs is fetched and checked over and over ("this checking may
    involve lots of page reads", §4.2). *)
let secure_stack_tree_desc_unmemoized store ~subject ~alist ~dlist =
  let check v =
    Store.touch store v;
    Store.accessible store ~subject v
  in
  List.filter
    (fun (a, d) ->
      let rec up v = v = a || v = Tree.nil || (check v && up (Store.parent store v)) in
      up (Store.parent store d))
    (stack_tree_desc store ~alist ~dlist)

(** ε-STD, naive: filter STD pairs by re-walking each connecting path. *)
let secure_stack_tree_desc_naive store ~subject ~alist ~dlist =
  let check = make_checker store ~subject in
  List.filter
    (fun (a, d) -> path_accessible store ~subject ~memo:(Some check) ~a ~d)
    (stack_tree_desc store ~alist ~dlist)

(** ε-STD, stack-cached: each stack entry carries whether the path
    segment from the entry below it (exclusive) up to and including
    itself is fully accessible; a pair (entry, d) is then decided by one
    running conjunction instead of a chain walk per pair. *)
let secure_stack_tree_desc store ~subject ~alist ~dlist =
  let check = make_checker store ~subject in
  (* seg_acc: all nodes on the path from this entry's node (inclusive)
     up to — but excluding — the node of the entry below it are
     accessible.  For the bottom entry only the node itself counts. *)
  let a = Array.of_list alist and d = Array.of_list dlist in
  let na = Array.length a and nd = Array.length d in
  let stack = ref [] (* (node, seg_acc) list, top = deepest *) in
  let out = ref [] in
  let ai = ref 0 and di = ref 0 in
  let pop_finished v =
    let rec go = function
      | (top, _) :: rest when not (Store.is_ancestor store top v) -> go rest
      | s -> s
    in
    stack := go !stack
  in
  (* all nodes strictly between [stop] and [v] (both exclusive) ok?
     [stop] is an ancestor of [v] at every call site, so single-run
     containment of (stop, v) decides without walking. *)
  let clear_between ~stop v =
    Store.span_provably_accessible store ~subject ~lo:(stop + 1) ~hi:(v - 1)
    ||
    let rec up u = u = stop || u = Tree.nil || (check u && up (Store.parent store u)) in
    up (Store.parent store v)
  in
  while !di < nd do
    if !ai < na && a.(!ai) < d.(!di) then begin
      let av = a.(!ai) in
      pop_finished av;
      (* The segment verdict is lazy: it is paid for only if some
         descendant actually joins below this entry, so an ancestor that
         never participates in a pair costs nothing.  A single run
         covering the segment — the entry's own node included — decides
         it with no page access, mirroring [path_accessible]. *)
      let seg =
        match !stack with
        | (below, _) :: _ ->
            lazy
              (Store.span_provably_accessible store ~subject ~lo:(below + 1)
                 ~hi:av
              || (check av && clear_between ~stop:below av))
        | [] ->
            lazy
              (Store.span_provably_accessible store ~subject ~lo:av ~hi:av
              || check av)
      in
      stack := (av, seg) :: !stack;
      incr ai
    end
    else begin
      let dv = d.(!di) in
      pop_finished dv;
      (match !stack with
      | [] -> ()
      | (top, _) :: _ ->
          let ok = ref (clear_between ~stop:top dv) in
          let rec emit = function
            | [] -> ()
            | (node, seg) :: rest ->
                if !ok then begin
                  if node <> dv then out := (node, dv) :: !out;
                  (* crossing this entry costs its own node + segment —
                     paid only if an entry further down exists; once the
                     path is broken, every deeper pair is broken too, so
                     stop without forcing the remaining segments *)
                  match rest with
                  | [] -> ()
                  | _ ->
                      ok := Lazy.force seg;
                      emit rest
                end
          in
          emit !stack);
      incr di
    end
  done;
  List.rev !out

(** Semi-join views used by the evaluation pipeline. *)

let descendants_of_pairs pairs = List.sort_uniq compare (List.map snd pairs)

let ancestors_of_pairs pairs = List.sort_uniq compare (List.map fst pairs)
