(** Secure twig-query evaluation (paper §4): tag-index seeded NoK
    subtree matching combined with (ε-)Stack-Tree-Desc structural joins.

    Semantics: under {!Secure} (Cho et al., the paper's default) a
    binding survives iff every bound node is accessible — intermediate
    nodes on ancestor–descendant paths are unconstrained, so plain STD
    suffices after ε-NoK (the paper's Theorem 1).  Under {!Secure_path}
    (Gabillon–Bruno, §4.2) connecting paths must be fully accessible
    too, enforced by ε-STD and path-checked predicates. *)

module Store = Dolx_core.Secure_store

type semantics =
  | Insecure            (** plain NoK evaluation, no access control *)
  | Secure of int       (** ε-NoK for the given subject (Cho et al.) *)
  | Secure_path of int  (** ε-NoK + ε-STD (Gabillon–Bruno, §4.2) *)

(** Evaluation options. *)
type options = {
  header_skip : bool;  (** use the in-memory page-header optimization (§3.3) *)
}

val default_options : options

val match_mode : options -> semantics -> Nok_match.mode

type result = {
  answers : int list;  (** returning-node bindings, document order, distinct *)
  segments : int;      (** NoK subtrees evaluated *)
  joins : int;         (** structural joins performed *)
  candidates_scanned : int;
}

(** Evaluate a pattern.  When a [value_index] is supplied, segment roots
    with a text-equality constraint draw their candidates from it
    instead of the (larger) tag postings. *)
val run :
  ?options:options -> ?value_index:Dolx_index.Value_index.t -> Store.t ->
  Dolx_index.Tag_index.t -> Pattern.t -> semantics -> result

(** Parse and evaluate an XPath string.
    @raise Xpath.Parse_error on a malformed query. *)
val query :
  ?options:options -> ?value_index:Dolx_index.Value_index.t -> Store.t ->
  Dolx_index.Tag_index.t -> string -> semantics -> result

(** Number of answers only. *)
val count :
  ?options:options -> ?value_index:Dolx_index.Value_index.t -> Store.t ->
  Dolx_index.Tag_index.t -> string -> semantics -> int

(** Materialize full trunk-binding tuples — the paper's §4 result model
    ("all of the possible sets of bindings"): each tuple lists one data
    node per trunk step, in trunk order; predicates remain existential.
    A navigational product for result construction and auditing, not the
    I/O-optimal join path.  [limit] caps the tuples materialized. *)
val bindings :
  ?options:options -> ?limit:int -> Store.t -> Dolx_index.Tag_index.t ->
  Pattern.t -> semantics -> Dolx_xml.Tree.node list list

(** Human-readable evaluation plan: segments, joins, per-segment index
    candidate counts. *)
val explain : Store.t -> Dolx_index.Tag_index.t -> Pattern.t -> string

(** {1 Evaluator internals}

    Exposed for [Dolx_exec], which re-drives the segment pipeline with
    candidate lists partitioned across domains.  Results are identical
    to what {!run} computes from the same inputs. *)

(** Candidate roots for a descendant-entry segment step: tag postings,
    or value postings when the step constrains text and a value index is
    given.  Sorted in document order. *)
val index_candidates :
  ?value_index:Dolx_index.Value_index.t -> Store.t -> Dolx_index.Tag_index.t ->
  Pattern.pnode -> int list

(** Drop candidates the subject provably cannot access (run-index
    intersection); identity under [Insecure] or with the run index off.
    Answer-preserving: a pruned candidate would fail its own access
    check at qualification time. *)
val prune_candidates : Store.t -> semantics -> int list -> int list

(** Deliberate fault site for the differential fuzzer's self-test: when
    armed, {!prune_candidates} silently drops node 2 from every pruned
    candidate set (run index on, secure semantics only).  Armed at
    startup by [DOLX_FUZZ_PLANT_BUG=prune]; tests may toggle the ref
    directly.  Never set on production paths. *)
val planted_bug : bool ref

(** Cost-based candidate selection for the next segment's entry step at
    a structural join: chooses between the global index postings and
    per-binding subtree probes using tag cardinality, binding subtree
    coverage and run statistics (accessible fraction), then run-prunes
    the result.  Both access paths yield identical final answers.
    [Dolx_exec] must use this same function so parallel plans match
    sequential ones exactly. *)
val join_candidates :
  ?value_index:Dolx_index.Value_index.t -> ?summary:Summary_prune.t ->
  Store.t -> Dolx_index.Tag_index.t ->
  semantics:semantics -> bindings:int list -> Pattern.pnode -> int list

(** Class analysis of the query against the handle's path summary
    ({!Summary_prune}); [None] when the summary tier is disabled on this
    handle.  Under secure semantics, classes whose extent span holds no
    accessible node are additionally dropped via the run index.  Updates
    the [engine.summary_pruned] counter. *)
val summary_analysis :
  Store.t -> Pattern.t -> semantics -> Summary_prune.t option

(** Candidate roots for a first segment entered on the descendant axis:
    index postings, class-filtered when a summary analysis is given,
    then run-pruned.  {!run} and [Dolx_exec] share this seeding. *)
val seed_candidates :
  ?value_index:Dolx_index.Value_index.t -> ?summary:Summary_prune.t ->
  Store.t -> Dolx_index.Tag_index.t -> semantics -> Decompose.step -> int list

(** Summary-path plan: when the trunk uses only child and descendant
    axes and ends in a tag test, answer the query bottom-up from the
    last step's class-filtered postings, verifying each candidate's
    ancestor binding chain with per-(step, node) memoization and
    class-guided ancestor search.  [None] when the plan shape does not
    apply (a following-sibling step, or a wildcard last step); [Some
    answers] is identical to the segment/join result under all three
    semantics.  [scanned] is incremented per qualification. *)
val try_summary_path :
  ?value_index:Dolx_index.Value_index.t -> summary:Summary_prune.t ->
  Store.t -> Dolx_index.Tag_index.t -> Nok_match.mode -> semantics ->
  Decompose.plan -> int ref -> int list option

(** Evaluate one NoK segment from the given (sorted) candidate roots;
    returns the bindings of the segment's last trunk step, sorted and
    deduplicated.  [scanned] is incremented per candidate examined. *)
val eval_segment :
  Store.t -> Dolx_index.Tag_index.t -> Nok_match.mode -> Decompose.segment ->
  int list -> int ref -> int list
