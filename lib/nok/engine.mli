(** Secure twig-query evaluation (paper §4): tag-index seeded NoK
    subtree matching combined with (ε-)Stack-Tree-Desc structural joins.

    Semantics: under {!Secure} (Cho et al., the paper's default) a
    binding survives iff every bound node is accessible — intermediate
    nodes on ancestor–descendant paths are unconstrained, so plain STD
    suffices after ε-NoK (the paper's Theorem 1).  Under {!Secure_path}
    (Gabillon–Bruno, §4.2) connecting paths must be fully accessible
    too, enforced by ε-STD and path-checked predicates. *)

module Store = Dolx_core.Secure_store

type semantics =
  | Insecure            (** plain NoK evaluation, no access control *)
  | Secure of int       (** ε-NoK for the given subject (Cho et al.) *)
  | Secure_path of int  (** ε-NoK + ε-STD (Gabillon–Bruno, §4.2) *)

(** Evaluation options. *)
type options = {
  header_skip : bool;  (** use the in-memory page-header optimization (§3.3) *)
}

val default_options : options

val match_mode : options -> semantics -> Nok_match.mode

type result = {
  answers : int list;  (** returning-node bindings, document order, distinct *)
  segments : int;      (** NoK subtrees evaluated *)
  joins : int;         (** structural joins performed *)
  candidates_scanned : int;
}

(** Evaluate a pattern.  When a [value_index] is supplied, segment roots
    with a text-equality constraint draw their candidates from it
    instead of the (larger) tag postings. *)
val run :
  ?options:options -> ?value_index:Dolx_index.Value_index.t -> Store.t ->
  Dolx_index.Tag_index.t -> Pattern.t -> semantics -> result

(** Parse and evaluate an XPath string.
    @raise Xpath.Parse_error on a malformed query. *)
val query :
  ?options:options -> ?value_index:Dolx_index.Value_index.t -> Store.t ->
  Dolx_index.Tag_index.t -> string -> semantics -> result

(** Number of answers only. *)
val count :
  ?options:options -> ?value_index:Dolx_index.Value_index.t -> Store.t ->
  Dolx_index.Tag_index.t -> string -> semantics -> int

(** Materialize full trunk-binding tuples — the paper's §4 result model
    ("all of the possible sets of bindings"): each tuple lists one data
    node per trunk step, in trunk order; predicates remain existential.
    A navigational product for result construction and auditing, not the
    I/O-optimal join path.  [limit] caps the tuples materialized. *)
val bindings :
  ?options:options -> ?limit:int -> Store.t -> Dolx_index.Tag_index.t ->
  Pattern.t -> semantics -> Dolx_xml.Tree.node list list

(** Human-readable evaluation plan: segments, joins, per-segment index
    candidate counts. *)
val explain : Store.t -> Dolx_index.Tag_index.t -> Pattern.t -> string

(** {1 Evaluator internals}

    Exposed for [Dolx_exec], which re-drives the segment pipeline with
    candidate lists partitioned across domains.  Results are identical
    to what {!run} computes from the same inputs. *)

(** Candidate roots for a descendant-entry segment step: tag postings,
    or value postings when the step constrains text and a value index is
    given.  Sorted in document order. *)
val index_candidates :
  ?value_index:Dolx_index.Value_index.t -> Store.t -> Dolx_index.Tag_index.t ->
  Pattern.pnode -> int list

(** Drop candidates the subject provably cannot access (run-index
    intersection); identity under [Insecure] or with the run index off.
    Answer-preserving: a pruned candidate would fail its own access
    check at qualification time. *)
val prune_candidates : Store.t -> semantics -> int list -> int list

(** Deliberate fault site for the differential fuzzer's self-test: when
    armed, {!prune_candidates} silently drops node 2 from every pruned
    candidate set (run index on, secure semantics only).  Armed at
    startup by [DOLX_FUZZ_PLANT_BUG=prune]; tests may toggle the ref
    directly.  Never set on production paths. *)
val planted_bug : bool ref

(** Cost-based candidate selection for the next segment's entry step at
    a structural join: chooses between the global index postings and
    per-binding subtree probes using tag cardinality, binding subtree
    coverage and run statistics (accessible fraction), then run-prunes
    the result.  Both access paths yield identical final answers.
    [Dolx_exec] must use this same function so parallel plans match
    sequential ones exactly. *)
val join_candidates :
  ?value_index:Dolx_index.Value_index.t -> ?summary:Summary_prune.t ->
  Store.t -> Dolx_index.Tag_index.t ->
  semantics:semantics -> bindings:int list -> Pattern.pnode -> int list

(** Class analysis of the query against the handle's path summary
    ({!Summary_prune}); [None] when the summary tier is disabled on this
    handle.  Under secure semantics, classes whose extent span holds no
    accessible node are additionally dropped via the run index.  Updates
    the [engine.summary_pruned] counter. *)
val summary_analysis :
  Store.t -> Pattern.t -> semantics -> Summary_prune.t option

(** Candidate roots for a first segment entered on the descendant axis:
    index postings, class-filtered when a summary analysis is given,
    then run-pruned.  {!run} and [Dolx_exec] share this seeding. *)
val seed_candidates :
  ?value_index:Dolx_index.Value_index.t -> ?summary:Summary_prune.t ->
  Store.t -> Dolx_index.Tag_index.t -> semantics -> Decompose.step -> int list

(** Summary-path plan: when the trunk uses only child and descendant
    axes and ends in a tag test, answer the query bottom-up from the
    last step's class-filtered postings, verifying each candidate's
    ancestor binding chain with per-(step, node) memoization and
    class-guided ancestor search.  [None] when the plan shape does not
    apply (a following-sibling step, or a wildcard last step); [Some
    answers] is identical to the segment/join result under all three
    semantics.  [scanned] is incremented per qualification. *)
val try_summary_path :
  ?value_index:Dolx_index.Value_index.t -> summary:Summary_prune.t ->
  Store.t -> Dolx_index.Tag_index.t -> Nok_match.mode -> semantics ->
  Decompose.plan -> int ref -> int list option

(** Lazy form of {!try_summary_path}: instead of filtering eagerly,
    returns the sorted candidate list together with the qualification
    predicate, so a stream can apply it candidate by candidate.
    [try_summary_path] = [List.filter keep cands]. *)
val summary_path_filter :
  ?value_index:Dolx_index.Value_index.t -> summary:Summary_prune.t ->
  Store.t -> Dolx_index.Tag_index.t -> Nok_match.mode -> semantics ->
  Decompose.plan -> int ref -> (int list * (int -> bool)) option

(** Candidate roots of the plan's first segment: the document root for a
    child entry, class-filtered + run-pruned index postings for a
    descendant entry. *)
val first_roots :
  ?value_index:Dolx_index.Value_index.t -> ?summary:Summary_prune.t ->
  Store.t -> Dolx_index.Tag_index.t -> semantics -> Decompose.plan -> int list

(** Evaluate one NoK segment from the given (sorted) candidate roots;
    returns the bindings of the segment's last trunk step, sorted and
    deduplicated.  [scanned] is incremented per candidate examined. *)
val eval_segment :
  Store.t -> Dolx_index.Tag_index.t -> Nok_match.mode -> Decompose.segment ->
  int list -> int ref -> int list

(** {1 Streaming evaluation}

    A pull cursor over the {!run} pipeline: all segments but the last
    (and their joins) are staged when the stream is built; answers are
    then produced chunk by chunk from the last segment's candidate
    roots, so per-query buffered-result memory is bounded by the chunk
    size plus the document-order reorder margin — never by the answer
    count.  Draining a stream yields exactly {!run}'s answer list and
    flushes the same [engine.*] counters, once, at exhaustion (or at
    {!stream_close} for a stream abandoned early). *)

(** Where a stream draws its answers from.  [Filtered] walks a sorted
    candidate list through a qualification predicate (summary-path
    plans, or already-final answers with a constant-true predicate).
    [Tail] evaluates the plan's last segment lazily: [roots] are its
    sorted candidate roots, [eval] maps a group of roots to that group's
    sorted answers, and [group] is how many roots each refill evaluates
    at once (bigger groups amortize [eval] overhead — e.g. a parallel
    fan-out — at the cost of a larger reorder margin). *)
type stream_source =
  | Filtered of int list * (int -> bool)
  | Tail of { roots : int list; group : int; eval : int list -> int list }

type stream

(** Build a stream over a staged source.  [chunk] (default 256) bounds
    each {!stream_next} batch; [segments]/[scanned]/[joins] are the
    plan's statistics, flushed into the process counters at
    finalization.  @raise Invalid_argument on [chunk < 1] or a [Tail]
    group [< 1]. *)
val stream_of_source :
  ?chunk:int -> segments:int -> scanned:int ref -> joins:int ref ->
  stream_source -> stream

(** Stage a pattern into a stream (the lazy counterpart of {!run}). *)
val stream :
  ?options:options -> ?value_index:Dolx_index.Value_index.t -> ?chunk:int ->
  Store.t -> Dolx_index.Tag_index.t -> Pattern.t -> semantics -> stream

(** Next chunk of answers, document order, distinct, at most [chunk]
    long.  [[]] means exhausted; the stream is finalized and every later
    call returns [[]]. *)
val stream_next : stream -> int list

(** Finalize early: flush the partial statistics and drop the source.
    Idempotent; a later {!stream_next} returns [[]]. *)
val stream_close : stream -> unit

(** Drain to a list — equals [(run ...).answers] from the same inputs. *)
val stream_collect : stream -> int list

val stream_finished : stream -> bool
val stream_emitted : stream -> int

(** High-water mark of answers buffered at once (chunk in progress +
    reorder margin) — the bound asserted by [bench serve]. *)
val stream_peak_buffered : stream -> int

val stream_chunk_size : stream -> int
val stream_scanned : stream -> int
val stream_joins : stream -> int
val stream_segments : stream -> int
