(** MVCC bench: reader throughput under continuous updates, and group
    commit vs per-record flushing.

    Part 1 — snapshot-isolated readers.  A 4-domain executor (readers
    epoch-pinned at creation) runs a fixed query batch twice: once with
    the writer idle, once while a writer domain continuously applies
    accessibility updates ({!Update.set_node_accessibility} windows)
    for the whole measured interval.  Updates force copy-on-write page
    versions, so the contended run exercises the version-chain read
    path.  Throughput is compared on the repo's modeled account
    ([wall + sim_io / jobs], as in the parallel bench — on a 1-core
    host wall time only shows domains time-sharing the CPU); the gate
    is contended >= 80% of writer-idle.  The pinned readers' answers
    must be byte-identical across both runs: updates may not leak into
    a pinned snapshot.

    Part 2 — group commit.  The same 64 durable updates are committed
    through {!Group_commit} twice: [max_batch = 1] (per-record
    flushing) vs [max_batch = 16].  Flushes are modeled (counted and
    priced at [flush_cost_us]), so modeled durable time is
    [wall + flushes * flush_cost]; the gate is >= 2x speedup from
    batching, with byte-identical final images.

    Results land in BENCH_mvcc.json (validated by ci/check_bench.py). *)

module Tree = Dolx_xml.Tree
module Dol = Dolx_core.Dol
module Store = Dolx_core.Secure_store
module Update = Dolx_core.Update
module Db_file = Dolx_core.Db_file
module Group_commit = Dolx_core.Group_commit
module Disk = Dolx_storage.Disk
module Nok_layout = Dolx_storage.Nok_layout
module Tag_index = Dolx_index.Tag_index
module Engine = Dolx_nok.Engine
module Xpath = Dolx_nok.Xpath
module Exec = Dolx_exec.Exec
module Xmark = Dolx_workload.Xmark
module Synth_acl = Dolx_workload.Synth_acl
module Query_mix = Dolx_workload.Query_mix
module Json = Dolx_obs.Json
open Bench_common

let page_size = 1024

let reader_pool_capacity = 16

let read_cost_us = 400.0

let n_subjects = 6

let jobs = 4

let semantics = function
  | Query_mix.Insecure -> Engine.Insecure
  | Query_mix.Secure s -> Engine.Secure s
  | Query_mix.Secure_path s -> Engine.Secure_path s

let setup () =
  let tree = Xmark.generate_nodes ~seed:91 (30_000 * scale) in
  let labeling = Synth_acl.generate_multi tree ~seed:92 ~n_subjects () in
  let dol = Dol.of_labeling labeling in
  let disk = Disk.create ~page_size ~read_cost_us () in
  let layout =
    Nok_layout.build disk tree ~transitions:(Array.of_list (Dol.transitions dol))
  in
  let store =
    Store.assemble ~pool_capacity:reader_pool_capacity ~tree ~dol ~disk ~layout ()
  in
  (tree, store, Tag_index.build tree)

(* Run [batch] on a fresh [jobs]-wide executor; while it runs, [writer]
   (if any) applies updates until signalled.  Returns the answers, wall
   seconds, simulated-I/O seconds and the number of updates applied. *)
let run_point store index batch ~with_writer =
  let exec = Exec.create ~pool_capacity:reader_pool_capacity ~jobs store index in
  ignore (Exec.run_batch exec [ List.hd batch ]);
  Exec.reset_stats exec;
  Disk.reset_stats (Store.disk store);
  let stop = Atomic.make false in
  let updates = Atomic.make 0 in
  let writer =
    if not with_writer then None
    else
      Some
        (Domain.spawn (fun () ->
             let n = Tree.size (Store.tree store) in
             let v = ref 1 in
             while not (Atomic.get stop) do
               let grant = not (Store.accessible store ~subject:0 !v) in
               ignore (Update.set_node_accessibility store ~subject:0 ~grant !v);
               Atomic.incr updates;
               v := 1 + ((!v + 97) mod (n - 1));
               (* continuous but not CPU-saturating: leave the core to
                  the readers between update windows *)
               Unix.sleepf 0.0002
             done))
  in
  let t0 = Unix.gettimeofday () in
  let results = Exec.run_batch exec batch in
  let wall = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Option.iter Domain.join writer;
  let sim_io = Disk.simulated_us (Store.disk store) /. 1e6 in
  Exec.shutdown exec;
  (List.map (fun r -> r.Engine.answers) results, wall, sim_io, Atomic.get updates)

let readers_under_updates () =
  let tree, store, index = setup () in
  let entries = Query_mix.generate ~n:(32 * scale) ~subjects:n_subjects ~seed:93 () in
  let batch =
    List.map
      (fun e -> (Xpath.parse e.Query_mix.xpath, semantics e.Query_mix.semantics))
      entries
  in
  let n = List.length batch in
  header "MVCC: reader throughput under continuous updates";
  Printf.printf "XMark instance: %d nodes, %d queries on %d reader domains\n%!"
    (Tree.size tree) n jobs;
  let idle_ans, idle_wall, idle_io, _ = run_point store index batch ~with_writer:false in
  let cont_ans, cont_wall, cont_io, updates =
    run_point store index batch ~with_writer:true
  in
  let identical = idle_ans = cont_ans in
  let modeled w io = w +. (io /. float_of_int jobs) in
  let idle_m = modeled idle_wall idle_io and cont_m = modeled cont_wall cont_io in
  let qps m = float_of_int n /. Float.max m 1e-9 in
  let ratio = qps cont_m /. Float.max (qps idle_m) 1e-9 in
  table
    [
      [ "writer"; "wall ms"; "sim io ms"; "modeled ms"; "modeled q/s" ];
      [ "idle"; fmt_f (idle_wall *. 1e3); fmt_f (idle_io *. 1e3);
        fmt_f (idle_m *. 1e3); fmt_f (qps idle_m) ];
      [ Printf.sprintf "%d updates" updates; fmt_f (cont_wall *. 1e3);
        fmt_f (cont_io *. 1e3); fmt_f (cont_m *. 1e3); fmt_f (qps cont_m) ];
    ];
  Printf.printf
    "pinned answers %s across runs; contended throughput %.1f%% of idle (%s \
     80%% target)\n%!"
    (if identical then "identical" else "DIVERGED")
    (100. *. ratio)
    (if ratio >= 0.8 then "meets" else "MISSES");
  ( Json.Obj
      [
        ("nodes", Json.num_of_int (Tree.size tree));
        ("queries", Json.num_of_int n);
        ("jobs", Json.num_of_int jobs);
        ("updates_during_run", Json.num_of_int updates);
        ("idle_modeled_s", Json.Num idle_m);
        ("contended_modeled_s", Json.Num cont_m);
        ("idle_qps", Json.Num (qps idle_m));
        ("contended_qps", Json.Num (qps cont_m));
        ("ratio", Json.Num ratio);
        ("answers_identical", Json.Bool identical);
      ],
    identical && ratio >= 0.8 && updates > 0 )

let group_commit () =
  header "MVCC: group commit vs per-record flushing";
  let tree = Xmark.generate_nodes ~seed:94 (1_500 * scale) in
  let labeling = Synth_acl.generate_multi tree ~seed:95 ~n_subjects:4 () in
  let store = Store.create ~page_size:512 ~pool_capacity:8 tree (Dol.of_labeling labeling) in
  let n = Tree.size tree in
  let base = Db_file.to_bytes store in
  let k = 64 in
  let updates =
    List.init k (fun i st ->
        let v = 1 + ((i * 131) mod (n - 1)) in
        let s = i mod 4 in
        let grant = not (Store.accessible st ~subject:s v) in
        ignore (Update.set_node_accessibility st ~subject:s ~grant v))
  in
  let commit ~max_batch =
    let gc = Group_commit.create ~max_batch base in
    let t0 = Unix.gettimeofday () in
    Group_commit.submit_batch gc updates;
    let wall = Unix.gettimeofday () -. t0 in
    let s = Group_commit.stats gc in
    let modeled = wall +. (float_of_int s.Group_commit.modeled_flush_us /. 1e6) in
    (Group_commit.image gc, s, wall, modeled)
  in
  let img1, s1, wall1, m1 = commit ~max_batch:1 in
  let img16, s16, wall16, m16 = commit ~max_batch:16 in
  let identical = Bytes.equal img1 img16 in
  let speedup = m1 /. Float.max m16 1e-9 in
  table
    [
      [ "path"; "records"; "flushes"; "wall ms"; "modeled ms" ];
      [ "per-record"; string_of_int s1.Group_commit.records;
        string_of_int s1.Group_commit.flushes; fmt_f (wall1 *. 1e3);
        fmt_f (m1 *. 1e3) ];
      [ "batch=16"; string_of_int s16.Group_commit.records;
        string_of_int s16.Group_commit.flushes; fmt_f (wall16 *. 1e3);
        fmt_f (m16 *. 1e3) ];
    ];
  Printf.printf
    "final images %s; modeled durable speedup %.2fx (%s 2x target)\n%!"
    (if identical then "byte-identical" else "DIVERGED")
    speedup
    (if speedup >= 2.0 then "meets" else "MISSES");
  ( Json.Obj
      [
        ("records", Json.num_of_int k);
        ("flushes_per_record", Json.num_of_int s1.Group_commit.flushes);
        ("flushes_batched", Json.num_of_int s16.Group_commit.flushes);
        ("modeled_per_record_s", Json.Num m1);
        ("modeled_batched_s", Json.Num m16);
        ("speedup", Json.Num speedup);
        ("images_identical", Json.Bool identical);
      ],
    identical && speedup >= 2.0
    && s16.Group_commit.flushes < s1.Group_commit.flushes )

let run () =
  let readers_doc, readers_ok = readers_under_updates () in
  let commit_doc, commit_ok = group_commit () in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "mvcc");
        ("readers", readers_doc);
        ("group_commit", commit_doc);
      ]
  in
  let path = "BENCH_mvcc.json" in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string doc));
  Printf.printf "wrote %s\n%!" path;
  if not (readers_ok && commit_ok) then exit 1
